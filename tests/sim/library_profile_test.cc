#include "sim/library_profile.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace staratlas {
namespace {

TEST(LibraryProfile, PresetsAreValid) {
  bulk_rna_profile().validate();
  single_cell_profile().validate();
}

TEST(LibraryProfile, BulkIsMostlyMappableSingleCellIsNot) {
  const LibraryProfile bulk = bulk_rna_profile();
  const LibraryProfile sc = single_cell_profile();
  const double bulk_mappable =
      bulk.exonic_fraction + bulk.intronic_fraction + bulk.intergenic_fraction;
  const double sc_mappable =
      sc.exonic_fraction + sc.intronic_fraction + sc.intergenic_fraction;
  EXPECT_GT(bulk_mappable, 0.8);
  EXPECT_LT(sc_mappable, 0.30);  // the paper's early-stop threshold
}

TEST(LibraryProfile, ValidateRejectsBadSum) {
  LibraryProfile profile = bulk_rna_profile();
  profile.junk_fraction += 0.1;
  EXPECT_THROW(profile.validate(), InvalidArgument);
}

TEST(LibraryProfile, ValidateRejectsCrazyErrorRate) {
  LibraryProfile profile = bulk_rna_profile();
  profile.error_rate = 0.5;
  EXPECT_THROW(profile.validate(), InvalidArgument);
}

TEST(LibraryProfile, ValidateRejectsTinyReads) {
  LibraryProfile profile = bulk_rna_profile();
  profile.read_length = 10;
  EXPECT_THROW(profile.validate(), InvalidArgument);
}

TEST(LibraryProfile, ProfileForDispatch) {
  EXPECT_EQ(profile_for(LibraryType::kBulk).type, LibraryType::kBulk);
  EXPECT_EQ(profile_for(LibraryType::kSingleCell).type,
            LibraryType::kSingleCell);
}

TEST(LibraryType, Names) {
  EXPECT_STREQ(library_type_name(LibraryType::kBulk), "bulk");
  EXPECT_STREQ(library_type_name(LibraryType::kSingleCell), "single_cell");
}

}  // namespace
}  // namespace staratlas
