#include "sim/read_simulator.h"

#include <gtest/gtest.h>

#include "testutil.h"

namespace staratlas {
namespace {

using staratlas::testing::world;

TEST(ReadSimulator, ProducesRequestedCount) {
  const auto& w = world();
  const ReadSet reads =
      w.simulator->simulate(bulk_rna_profile(), 500, Rng(1));
  EXPECT_EQ(reads.size(), 500u);
  EXPECT_GT(reads.fastq_bytes.bytes(), 500u * 100);
}

TEST(ReadSimulator, ReadShapes) {
  const auto& w = world();
  const LibraryProfile profile = bulk_rna_profile();
  const ReadSet reads = w.simulator->simulate(profile, 300, Rng(2));
  for (const FastqRecord& read : reads.reads) {
    EXPECT_EQ(read.sequence.size(), profile.read_length);
    EXPECT_EQ(read.quality.size(), profile.read_length);
    EXPECT_FALSE(read.name.empty());
    for (char c : read.sequence) {
      EXPECT_TRUE(c == 'A' || c == 'C' || c == 'G' || c == 'T' || c == 'N');
    }
  }
}

TEST(ReadSimulator, DeterministicInSeed) {
  const auto& w = world();
  const ReadSet a = w.simulator->simulate(bulk_rna_profile(), 100, Rng(5));
  const ReadSet b = w.simulator->simulate(bulk_rna_profile(), 100, Rng(5));
  ASSERT_EQ(a.size(), b.size());
  for (usize i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.reads[i].sequence, b.reads[i].sequence);
    EXPECT_EQ(a.reads[i].quality, b.reads[i].quality);
  }
}

TEST(ReadSimulator, DifferentSeedsDiffer) {
  const auto& w = world();
  const ReadSet a = w.simulator->simulate(bulk_rna_profile(), 50, Rng(5));
  const ReadSet b = w.simulator->simulate(bulk_rna_profile(), 50, Rng(6));
  usize same = 0;
  for (usize i = 0; i < a.size(); ++i) {
    same += a.reads[i].sequence == b.reads[i].sequence ? 1 : 0;
  }
  EXPECT_LT(same, 5u);
}

TEST(ReadSimulator, MixtureRoughlyRespected) {
  const auto& w = world();
  const LibraryProfile profile = bulk_rna_profile();
  const ReadSet reads = w.simulator->simulate(profile, 4'000, Rng(7));
  usize exon = 0;
  usize junk = 0;
  usize repeat = 0;
  for (const FastqRecord& read : reads.reads) {
    if (read.name.find(".exon") != std::string::npos) ++exon;
    if (read.name.find(".junk") != std::string::npos) ++junk;
    if (read.name.find(".repeat") != std::string::npos) ++repeat;
  }
  const double n = static_cast<double>(reads.size());
  EXPECT_NEAR(exon / n, profile.exonic_fraction, 0.03);
  EXPECT_NEAR(junk / n, profile.junk_fraction, 0.02);
  EXPECT_NEAR(repeat / n, profile.repeat_fraction, 0.02);
}

TEST(ReadSimulator, ExonicReadsComeFromTranscripts) {
  const auto& w = world();
  LibraryProfile profile = bulk_rna_profile();
  profile.exonic_fraction = 1.0;
  profile.intronic_fraction = 0.0;
  profile.intergenic_fraction = 0.0;
  profile.repeat_fraction = 0.0;
  profile.junk_fraction = 0.0;
  profile.error_rate = 0.0;
  const ReadSet reads = w.simulator->simulate(profile, 30, Rng(9));
  // Every error-free exonic read (or its reverse complement) must occur in
  // some gene's transcript sequence.
  const Annotation& annotation = w.synthesizer->annotation();
  std::vector<std::string> transcripts;
  for (const Gene& gene : annotation.genes()) {
    transcripts.push_back(gene.transcript_sequence(w.r111));
  }
  for (const FastqRecord& read : reads.reads) {
    bool found = false;
    const std::string rc = [&] {
      std::string copy = read.sequence;
      std::reverse(copy.begin(), copy.end());
      for (auto& c : copy) {
        switch (c) {
          case 'A': c = 'T'; break;
          case 'T': c = 'A'; break;
          case 'C': c = 'G'; break;
          case 'G': c = 'C'; break;
          default: break;
        }
      }
      return copy;
    }();
    for (const std::string& transcript : transcripts) {
      if (transcript.find(read.sequence) != std::string::npos ||
          transcript.find(rc) != std::string::npos) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << read.name;
  }
}

TEST(ReadSimulator, RepeatReadsComeFromRepeatRegions) {
  const auto& w = world();
  LibraryProfile profile = bulk_rna_profile();
  profile.exonic_fraction = 0.0;
  profile.intronic_fraction = 0.0;
  profile.intergenic_fraction = 0.0;
  profile.repeat_fraction = 1.0;
  profile.junk_fraction = 0.0;
  const ReadSet reads = w.simulator->simulate(profile, 20, Rng(11));
  for (const FastqRecord& read : reads.reads) {
    EXPECT_NE(read.name.find(".repeat"), std::string::npos);
  }
}

TEST(ReadSimulator, ErrorRateApproximatelyApplied) {
  const auto& w = world();
  LibraryProfile clean = bulk_rna_profile();
  clean.exonic_fraction = 1.0;
  clean.intronic_fraction = clean.intergenic_fraction = 0.0;
  clean.repeat_fraction = clean.junk_fraction = 0.0;
  clean.error_rate = 0.0;
  LibraryProfile noisy = clean;
  noisy.error_rate = 0.05;
  const ReadSet a = w.simulator->simulate(clean, 200, Rng(13));
  const ReadSet b = w.simulator->simulate(noisy, 200, Rng(13));
  // Same seed, same sampling stream except error draws; count differing
  // bases between pairs (positions line up because the generators consume
  // the same sequence of draws apart from the per-base error branch).
  // Rather than rely on stream alignment, just check noisy reads diverge
  // from any transcript by roughly the error rate — simpler: reads should
  // not be identical between the two sets on average.
  usize identical = 0;
  for (usize i = 0; i < a.size(); ++i) {
    identical += a.reads[i].sequence == b.reads[i].sequence ? 1 : 0;
  }
  EXPECT_LT(identical, a.size());
}

}  // namespace
}  // namespace staratlas
