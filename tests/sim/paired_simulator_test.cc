#include <gtest/gtest.h>

#include "index/packed_sequence.h"
#include "sim/read_simulator.h"
#include "testutil.h"

namespace staratlas {
namespace {

using staratlas::testing::world;

TEST(PairedSimulator, ProducesMatchedMates) {
  const auto& w = world();
  const ReadPairSet pairs = w.simulator->simulate_pairs(
      bulk_rna_profile(), 200, FragmentModel{}, Rng(1));
  ASSERT_EQ(pairs.mate1.size(), 200u);
  ASSERT_EQ(pairs.mate2.size(), 200u);
  for (usize i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(pairs.mate1[i].sequence.size(), 100u);
    EXPECT_EQ(pairs.mate2[i].sequence.size(), 100u);
    EXPECT_EQ(pairs.mate1[i].quality.size(), 100u);
  }
  EXPECT_GT(pairs.fastq_bytes.bytes(), 200u * 2 * 100);
}

TEST(PairedSimulator, DeterministicInSeed) {
  const auto& w = world();
  const ReadPairSet a = w.simulator->simulate_pairs(
      bulk_rna_profile(), 50, FragmentModel{}, Rng(9));
  const ReadPairSet b = w.simulator->simulate_pairs(
      bulk_rna_profile(), 50, FragmentModel{}, Rng(9));
  for (usize i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.mate1[i].sequence, b.mate1[i].sequence);
    EXPECT_EQ(a.mate2[i].sequence, b.mate2[i].sequence);
  }
}

TEST(PairedSimulator, ErrorFreeGenomicMatesAreFragmentEnds) {
  const auto& w = world();
  LibraryProfile profile = bulk_rna_profile();
  profile.exonic_fraction = 0.0;
  profile.intronic_fraction = 0.0;
  profile.intergenic_fraction = 1.0;
  profile.repeat_fraction = 0.0;
  profile.junk_fraction = 0.0;
  profile.error_rate = 0.0;
  const ReadPairSet pairs =
      w.simulator->simulate_pairs(profile, 20, FragmentModel{}, Rng(4));
  // Each mate (or its RC) must occur in a chromosome, and mate2's RC must
  // lie downstream of mate1 (or symmetrically for the flipped strand).
  usize verified = 0;
  for (usize i = 0; i < pairs.size(); ++i) {
    const std::string& m1 = pairs.mate1[i].sequence;
    const std::string m2rc = reverse_complement(pairs.mate2[i].sequence);
    for (usize c = 0; c < w.spec.num_chromosomes; ++c) {
      const std::string& chrom = w.r111.contig(static_cast<ContigId>(c)).sequence;
      const auto p1 = chrom.find(m1);
      const auto p2 = chrom.find(m2rc);
      if (p1 != std::string::npos && p2 != std::string::npos) {
        EXPECT_GE(p2 + 100, p1);  // mate2 end downstream of mate1 start
        EXPECT_LE(p2 - p1, 600u);
        ++verified;
        break;
      }
      // Flipped-strand fragments: mate1 is RC, mate2 forward.
      const auto q1 = chrom.find(reverse_complement(m1));
      const auto q2 = chrom.find(pairs.mate2[i].sequence);
      if (q1 != std::string::npos && q2 != std::string::npos) {
        EXPECT_GE(q1 + 100, q2);
        EXPECT_LE(q1 - q2, 600u);
        ++verified;
        break;
      }
    }
  }
  EXPECT_EQ(verified, pairs.size());
}

TEST(PairedSimulator, SingleCellPairsMostlyJunk) {
  const auto& w = world();
  const ReadPairSet pairs = w.simulator->simulate_pairs(
      single_cell_profile(), 300, FragmentModel{}, Rng(11));
  usize junk = 0;
  for (const auto& read : pairs.mate1) {
    junk += read.name.find("junk") != std::string::npos ? 1 : 0;
  }
  EXPECT_GT(junk, 180u);  // ~75% junk fraction
}

TEST(PairedSimulator, FragmentModelRespected) {
  const auto& w = world();
  LibraryProfile profile = bulk_rna_profile();
  profile.exonic_fraction = 0.0;
  profile.intronic_fraction = 0.0;
  profile.intergenic_fraction = 1.0;
  profile.repeat_fraction = 0.0;
  profile.junk_fraction = 0.0;
  profile.error_rate = 0.0;
  FragmentModel fragments;
  fragments.mean_length = 400;
  fragments.sd = 1;  // tight
  const ReadPairSet pairs =
      w.simulator->simulate_pairs(profile, 10, fragments, Rng(12));
  for (usize i = 0; i < pairs.size(); ++i) {
    const std::string& m1 = pairs.mate1[i].sequence;
    const std::string m2rc = reverse_complement(pairs.mate2[i].sequence);
    for (usize c = 0; c < w.spec.num_chromosomes; ++c) {
      const std::string& chrom = w.r111.contig(static_cast<ContigId>(c)).sequence;
      const auto p1 = chrom.find(m1);
      const auto p2 = chrom.find(m2rc);
      if (p1 != std::string::npos && p2 != std::string::npos) {
        EXPECT_NEAR(static_cast<double>(p2 + 100 - p1), 400.0, 6.0);
      }
    }
  }
}

}  // namespace
}  // namespace staratlas
