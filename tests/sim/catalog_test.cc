#include "sim/catalog.h"

#include <gtest/gtest.h>

#include <set>

namespace staratlas {
namespace {

TEST(Catalog, ExactSingleCellCount) {
  CatalogSpec spec;
  spec.num_samples = 1'000;
  spec.single_cell_fraction = 0.038;
  const auto catalog = make_catalog(spec);
  ASSERT_EQ(catalog.size(), 1'000u);
  usize single_cell = 0;
  for (const auto& sample : catalog) {
    single_cell += sample.type == LibraryType::kSingleCell ? 1 : 0;
  }
  // The paper's "38 out of 1000", exactly.
  EXPECT_EQ(single_cell, 38u);
}

TEST(Catalog, MeanSizeNearRequested) {
  CatalogSpec spec;
  spec.num_samples = 2'000;
  const auto catalog = make_catalog(spec);
  const CatalogSummary summary = summarize(catalog);
  EXPECT_NEAR(summary.mean_fastq.gib(), spec.mean_fastq.gib(),
              spec.mean_fastq.gib() * 0.08);
}

TEST(Catalog, DeterministicInSeed) {
  CatalogSpec spec;
  spec.num_samples = 50;
  const auto a = make_catalog(spec);
  const auto b = make_catalog(spec);
  for (usize i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].accession, b[i].accession);
    EXPECT_EQ(a[i].fastq_bytes.bytes(), b[i].fastq_bytes.bytes());
    EXPECT_EQ(a[i].type, b[i].type);
    EXPECT_EQ(a[i].seed, b[i].seed);
  }
}

TEST(Catalog, AccessionsUniqueAndWellFormed) {
  CatalogSpec spec;
  spec.num_samples = 200;
  const auto catalog = make_catalog(spec);
  std::set<std::string> accessions;
  for (const auto& sample : catalog) {
    EXPECT_EQ(sample.accession.substr(0, 3), "SRR");
    accessions.insert(sample.accession);
  }
  EXPECT_EQ(accessions.size(), catalog.size());
}

TEST(Catalog, SraSmallerThanFastq) {
  CatalogSpec spec;
  spec.num_samples = 100;
  for (const auto& sample : make_catalog(spec)) {
    EXPECT_LT(sample.sra_bytes, sample.fastq_bytes);
    EXPECT_GE(sample.num_reads, spec.min_reads);
  }
}

TEST(Catalog, ReadsScaleWithSize) {
  CatalogSpec spec;
  spec.num_samples = 300;
  const auto catalog = make_catalog(spec);
  // Largest sample should carry more synthetic reads than the smallest.
  const SraSample* smallest = &catalog[0];
  const SraSample* largest = &catalog[0];
  for (const auto& sample : catalog) {
    if (sample.fastq_bytes < smallest->fastq_bytes) smallest = &sample;
    if (largest->fastq_bytes < sample.fastq_bytes) largest = &sample;
  }
  EXPECT_GT(largest->num_reads, smallest->num_reads);
}

TEST(Catalog, SingleCellSamplesTagged) {
  CatalogSpec spec;
  spec.num_samples = 500;
  for (const auto& sample : make_catalog(spec)) {
    if (sample.type == LibraryType::kSingleCell) {
      EXPECT_EQ(sample.tissue, "single_cell");
    } else {
      EXPECT_NE(sample.tissue, "single_cell");
    }
  }
}

TEST(Catalog, SummaryTotals) {
  CatalogSpec spec;
  spec.num_samples = 10;
  const auto catalog = make_catalog(spec);
  const CatalogSummary summary = summarize(catalog);
  EXPECT_EQ(summary.num_samples, 10u);
  u64 bytes = 0;
  u64 reads = 0;
  for (const auto& sample : catalog) {
    bytes += sample.fastq_bytes.bytes();
    reads += sample.num_reads;
  }
  EXPECT_EQ(summary.total_fastq.bytes(), bytes);
  EXPECT_EQ(summary.total_reads, reads);
}

TEST(Catalog, PaperScaleCorpusIsTensOfTerabytes) {
  // §II: "at least 7216 files and 17TB of SRA data". Check our generator
  // extrapolates to that scale.
  CatalogSpec spec;
  spec.num_samples = 7'216;
  const auto catalog = make_catalog(spec);
  u64 sra_bytes = 0;
  for (const auto& sample : catalog) sra_bytes += sample.sra_bytes.bytes();
  EXPECT_GT(ByteSize(sra_bytes).tib(), 17.0);
}

}  // namespace
}  // namespace staratlas
