// Parameterized SQS semantics sweep: at-least-once delivery and DLQ
// behavior must hold for any (visibility timeout, max receives) pair.
#include <gtest/gtest.h>

#include "cloud/sqs.h"

namespace staratlas {
namespace {

struct SqsCase {
  double visibility_secs;
  u32 max_receives;
};

class SqsSweep : public ::testing::TestWithParam<SqsCase> {};

TEST_P(SqsSweep, MessageDeadLettersAfterExactlyMaxReceives) {
  const SqsCase param = GetParam();
  SimKernel kernel;
  SqsQueue queue(kernel, VirtualDuration::seconds(param.visibility_secs),
                 param.max_receives);
  queue.send("poison");
  u32 deliveries = 0;
  for (u32 attempt = 0; attempt < param.max_receives + 3; ++attempt) {
    auto message = queue.receive();
    if (!message) break;
    ++deliveries;
    EXPECT_EQ(message->receive_count, deliveries);
    kernel.run();  // never ack; expire
  }
  EXPECT_EQ(deliveries, param.max_receives);
  EXPECT_EQ(queue.dead_letter_queue().size(), 1u);
  EXPECT_EQ(queue.visible_count(), 0u);
}

TEST_P(SqsSweep, AckedMessagesNeverRedeliver) {
  const SqsCase param = GetParam();
  SimKernel kernel;
  SqsQueue queue(kernel, VirtualDuration::seconds(param.visibility_secs),
                 param.max_receives);
  for (int i = 0; i < 10; ++i) queue.send("m" + std::to_string(i));
  usize acked = 0;
  while (auto message = queue.receive()) {
    queue.delete_message(message->receipt_handle);
    ++acked;
  }
  kernel.run();
  EXPECT_EQ(acked, 10u);
  EXPECT_EQ(queue.approximate_depth(), 0u);
  EXPECT_TRUE(queue.dead_letter_queue().empty());
  EXPECT_EQ(queue.stats().visibility_expired, 0u);
}

TEST_P(SqsSweep, RedeliveryHappensAtTheTimeout) {
  const SqsCase param = GetParam();
  SimKernel kernel;
  SqsQueue queue(kernel, VirtualDuration::seconds(param.visibility_secs),
                 param.max_receives);
  queue.send("x");
  auto message = queue.receive();
  ASSERT_TRUE(message.has_value());
  // Just before the timeout: still in flight.
  kernel.run_until(VirtualTime(param.visibility_secs * 0.99));
  EXPECT_EQ(queue.visible_count(), 0u);
  // At/after the timeout: visible again (unless it dead-letters at 1).
  kernel.run_until(VirtualTime(param.visibility_secs * 1.01));
  if (param.max_receives > 1) {
    EXPECT_EQ(queue.visible_count(), 1u);
  } else {
    EXPECT_EQ(queue.dead_letter_queue().size(), 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, SqsSweep,
    ::testing::Values(SqsCase{30.0, 1}, SqsCase{30.0, 3}, SqsCase{600.0, 5},
                      SqsCase{3'600.0, 2}, SqsCase{14'400.0, 10}),
    [](const ::testing::TestParamInfo<SqsCase>& info) {
      return "v" + std::to_string(static_cast<int>(info.param.visibility_secs)) +
             "_r" + std::to_string(info.param.max_receives);
    });

}  // namespace
}  // namespace staratlas
