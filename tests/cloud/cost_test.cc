#include "cloud/cost.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace staratlas {
namespace {

TEST(Cost, InstanceTimeBilledPerSecond) {
  CostMeter meter;
  const InstanceType& r6a4x = instance_type("r6a.4xlarge");
  meter.add_instance_time(r6a4x, 3600.0, /*spot=*/false);
  EXPECT_NEAR(meter.total_usd(), r6a4x.on_demand_hourly, 1e-9);
  EXPECT_NEAR(meter.instance_hours(), 1.0, 1e-9);
}

TEST(Cost, SpotBilledAtSpotRate) {
  CostMeter meter;
  const InstanceType& r6a4x = instance_type("r6a.4xlarge");
  meter.add_instance_time(r6a4x, 1800.0, /*spot=*/true);
  EXPECT_NEAR(meter.category_usd("ec2_spot"), r6a4x.spot_hourly / 2.0, 1e-9);
  EXPECT_NEAR(meter.category_usd("ec2_ondemand"), 0.0, 1e-12);
}

TEST(Cost, CategoriesAccumulate) {
  CostMeter meter;
  meter.add("s3_storage", 1.5);
  meter.add("s3_storage", 0.5);
  meter.add("sqs_requests", 0.1);
  EXPECT_NEAR(meter.category_usd("s3_storage"), 2.0, 1e-12);
  EXPECT_NEAR(meter.total_usd(), 2.1, 1e-12);
  EXPECT_EQ(meter.breakdown().size(), 2u);
}

TEST(Cost, UnknownCategoryIsZero) {
  CostMeter meter;
  EXPECT_DOUBLE_EQ(meter.category_usd("nothing"), 0.0);
}

TEST(Cost, NegativeSecondsRejected) {
  CostMeter meter;
  EXPECT_THROW(
      meter.add_instance_time(instance_type("r6a.large"), -1.0, false),
      InternalError);
}

TEST(InstanceTypes, CatalogHasPaperInstance) {
  const InstanceType& type = instance_type("r6a.4xlarge");
  EXPECT_EQ(type.vcpus, 16u);
  EXPECT_NEAR(type.memory.gib(), 128.0, 1e-9);
  EXPECT_GT(type.on_demand_hourly, type.spot_hourly);
}

TEST(InstanceTypes, UnknownThrows) {
  EXPECT_THROW(instance_type("x1e.32xlarge"), InvalidArgument);
}

TEST(InstanceTypes, CatalogPricesMonotoneInSize) {
  // Within the r6a family, price scales with vCPUs.
  double last_price = 0.0;
  u32 last_vcpus = 0;
  for (const auto& type : instance_catalog()) {
    if (type.name.rfind("r6a.", 0) != 0) continue;
    if (type.vcpus > last_vcpus) {
      EXPECT_GT(type.on_demand_hourly, last_price);
      last_vcpus = type.vcpus;
      last_price = type.on_demand_hourly;
    }
  }
  EXPECT_GE(last_vcpus, 32u);
}

TEST(InstanceTypes, HourlyHelper) {
  const InstanceType& type = instance_type("m6a.4xlarge");
  EXPECT_DOUBLE_EQ(type.hourly(false), type.on_demand_hourly);
  EXPECT_DOUBLE_EQ(type.hourly(true), type.spot_hourly);
}

}  // namespace
}  // namespace staratlas
