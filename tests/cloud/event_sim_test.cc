#include "cloud/event_sim.h"

#include <gtest/gtest.h>

#include <vector>

namespace staratlas {
namespace {

TEST(SimKernel, RunsEventsInTimeOrder) {
  SimKernel kernel;
  std::vector<int> order;
  kernel.schedule_after(VirtualDuration::seconds(30), [&] { order.push_back(3); });
  kernel.schedule_after(VirtualDuration::seconds(10), [&] { order.push_back(1); });
  kernel.schedule_after(VirtualDuration::seconds(20), [&] { order.push_back(2); });
  kernel.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(kernel.now().secs(), 30.0);
  EXPECT_EQ(kernel.events_processed(), 3u);
}

TEST(SimKernel, SameTimestampStableOrder) {
  SimKernel kernel;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    kernel.schedule_after(VirtualDuration::seconds(1), [&order, i] {
      order.push_back(i);
    });
  }
  kernel.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimKernel, EventsCanScheduleEvents) {
  SimKernel kernel;
  double fired_at = -1.0;
  kernel.schedule_after(VirtualDuration::seconds(5), [&] {
    kernel.schedule_after(VirtualDuration::seconds(7),
                          [&] { fired_at = kernel.now().secs(); });
  });
  kernel.run();
  EXPECT_DOUBLE_EQ(fired_at, 12.0);
}

TEST(SimKernel, CancelPreventsExecution) {
  SimKernel kernel;
  bool ran = false;
  const auto id =
      kernel.schedule_after(VirtualDuration::seconds(1), [&] { ran = true; });
  kernel.cancel(id);
  kernel.run();
  EXPECT_FALSE(ran);
  kernel.cancel(id);  // double-cancel is a no-op
}

TEST(SimKernel, RunUntilStopsAtDeadline) {
  SimKernel kernel;
  int count = 0;
  kernel.schedule_after(VirtualDuration::seconds(1), [&] { ++count; });
  kernel.schedule_after(VirtualDuration::seconds(10), [&] { ++count; });
  kernel.run_until(VirtualTime(5.0));
  EXPECT_EQ(count, 1);
  EXPECT_DOUBLE_EQ(kernel.now().secs(), 5.0);
  EXPECT_EQ(kernel.pending_events(), 1u);
  kernel.run();
  EXPECT_EQ(count, 2);
}

TEST(SimKernel, NegativeDelayClampedToNow) {
  SimKernel kernel;
  bool ran = false;
  kernel.schedule_after(VirtualDuration::seconds(-5), [&] { ran = true; });
  kernel.run();
  EXPECT_TRUE(ran);
  EXPECT_DOUBLE_EQ(kernel.now().secs(), 0.0);
}

TEST(SimKernel, ClockNeverGoesBackward) {
  SimKernel kernel;
  double last = -1.0;
  for (int i = 10; i > 0; --i) {
    kernel.schedule_after(VirtualDuration::seconds(i), [&kernel, &last] {
      EXPECT_GE(kernel.now().secs(), last);
      last = kernel.now().secs();
    });
  }
  kernel.run();
}

}  // namespace
}  // namespace staratlas
