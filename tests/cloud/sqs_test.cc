#include "cloud/sqs.h"

#include <gtest/gtest.h>

namespace staratlas {
namespace {

TEST(Sqs, SendReceiveDelete) {
  SimKernel kernel;
  SqsQueue queue(kernel, VirtualDuration::minutes(5));
  queue.send("SRR1");
  queue.send("SRR2");
  EXPECT_EQ(queue.visible_count(), 2u);

  auto message = queue.receive();
  ASSERT_TRUE(message.has_value());
  EXPECT_EQ(message->body, "SRR1");  // FIFO-ish ordering
  EXPECT_EQ(queue.visible_count(), 1u);
  EXPECT_EQ(queue.in_flight_count(), 1u);
  EXPECT_EQ(queue.approximate_depth(), 2u);

  queue.delete_message(message->receipt_handle);
  EXPECT_EQ(queue.in_flight_count(), 0u);
  EXPECT_EQ(queue.stats().deleted, 1u);
}

TEST(Sqs, EmptyReceiveReturnsNullopt) {
  SimKernel kernel;
  SqsQueue queue(kernel, VirtualDuration::minutes(5));
  EXPECT_FALSE(queue.receive().has_value());
}

TEST(Sqs, VisibilityTimeoutRedelivers) {
  SimKernel kernel;
  SqsQueue queue(kernel, VirtualDuration::minutes(5));
  queue.send("SRR1");
  auto first = queue.receive();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->receive_count, 1u);

  // Let the visibility timeout expire without deleting.
  kernel.run();
  EXPECT_EQ(queue.visible_count(), 1u);
  EXPECT_EQ(queue.stats().visibility_expired, 1u);

  auto second = queue.receive();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->body, "SRR1");
  EXPECT_EQ(second->receive_count, 2u);
  queue.delete_message(second->receipt_handle);
  kernel.run();
  EXPECT_EQ(queue.approximate_depth(), 0u);
}

TEST(Sqs, DeleteAfterExpiryIsNoop) {
  SimKernel kernel;
  SqsQueue queue(kernel, VirtualDuration::seconds(10));
  queue.send("x");
  auto message = queue.receive();
  kernel.run();  // expires
  queue.delete_message(message->receipt_handle);
  EXPECT_EQ(queue.visible_count(), 1u);  // still redelivered
  EXPECT_EQ(queue.stats().deleted, 0u);
}

TEST(Sqs, DeadLetterAfterMaxReceives) {
  SimKernel kernel;
  SqsQueue queue(kernel, VirtualDuration::seconds(10), /*max_receives=*/3);
  queue.send("poison");
  for (int attempt = 0; attempt < 3; ++attempt) {
    auto message = queue.receive();
    ASSERT_TRUE(message.has_value()) << attempt;
    kernel.run();  // never delete; timeout expires
  }
  EXPECT_EQ(queue.visible_count(), 0u);
  ASSERT_EQ(queue.dead_letter_queue().size(), 1u);
  EXPECT_EQ(queue.dead_letter_queue()[0], "poison");
  EXPECT_EQ(queue.stats().dead_lettered, 1u);
}

TEST(Sqs, ReturnMessageRequeuesImmediately) {
  SimKernel kernel;
  SqsQueue queue(kernel, VirtualDuration::hours(1));
  queue.send("SRR1");
  auto message = queue.receive();
  queue.return_message(message->receipt_handle);
  EXPECT_EQ(queue.visible_count(), 1u);
  EXPECT_EQ(queue.in_flight_count(), 0u);
  // Redelivery preserves the receive count.
  auto again = queue.receive();
  EXPECT_EQ(again->receive_count, 2u);
}

TEST(Sqs, ExtendVisibilityPostponesExpiry) {
  SimKernel kernel;
  SqsQueue queue(kernel, VirtualDuration::minutes(5));
  queue.send("SRR1");
  auto message = queue.receive();
  ASSERT_TRUE(message.has_value());

  // Heartbeat just before the deadline restarts the timer from now.
  kernel.run_until(VirtualTime(4 * 60));
  EXPECT_TRUE(queue.extend_visibility(message->receipt_handle,
                                      VirtualDuration::minutes(5)));
  // The original deadline passes with the message still in flight.
  kernel.run_until(VirtualTime(6 * 60));
  EXPECT_EQ(queue.in_flight_count(), 1u);
  EXPECT_EQ(queue.stats().visibility_expired, 0u);
  EXPECT_EQ(queue.stats().visibility_extended, 1u);

  queue.delete_message(message->receipt_handle);
  kernel.run();
  EXPECT_EQ(queue.approximate_depth(), 0u);
  EXPECT_EQ(queue.stats().visibility_expired, 0u);
}

TEST(Sqs, ExtendVisibilityUnknownReceiptIsNoop) {
  SimKernel kernel;
  SqsQueue queue(kernel, VirtualDuration::seconds(10));
  queue.send("x");
  auto message = queue.receive();
  kernel.run();  // expires; the receipt is gone
  EXPECT_FALSE(queue.extend_visibility(message->receipt_handle,
                                       VirtualDuration::minutes(1)));
  EXPECT_FALSE(queue.extend_visibility(9999, VirtualDuration::minutes(1)));
  EXPECT_EQ(queue.stats().visibility_extended, 0u);
}

TEST(Sqs, DeadLetterCallbackSeesConsistentQueue) {
  SimKernel kernel;
  SqsQueue queue(kernel, VirtualDuration::seconds(10), /*max_receives=*/1);
  std::vector<std::string> dead;
  queue.set_on_dead_letter([&](const std::string& body) {
    dead.push_back(body);
    // The in-flight entry is erased before the callback runs, so a
    // re-entrant consumer sees the queue in its post-expiry state.
    EXPECT_EQ(queue.in_flight_count(), 0u);
    EXPECT_EQ(queue.dead_letter_queue().size(), 1u);
  });
  queue.send("poison");
  ASSERT_TRUE(queue.receive().has_value());
  kernel.run();  // expiry goes straight to the DLQ at max_receives=1
  ASSERT_EQ(dead.size(), 1u);
  EXPECT_EQ(dead[0], "poison");
  EXPECT_EQ(queue.stats().dead_lettered, 1u);
}

TEST(Sqs, StatsCount) {
  SimKernel kernel;
  SqsQueue queue(kernel, VirtualDuration::minutes(1));
  queue.send("a");
  queue.send("b");
  auto m1 = queue.receive();
  queue.delete_message(m1->receipt_handle);
  auto m2 = queue.receive();
  queue.delete_message(m2->receipt_handle);
  const SqsStats& stats = queue.stats();
  EXPECT_EQ(stats.sent, 2u);
  EXPECT_EQ(stats.received, 2u);
  EXPECT_EQ(stats.deleted, 2u);
  EXPECT_EQ(stats.visibility_expired, 0u);
}

}  // namespace
}  // namespace staratlas
