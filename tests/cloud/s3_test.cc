#include "cloud/s3.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace staratlas {
namespace {

TEST(S3, PutHeadGetRemove) {
  S3Bucket bucket("atlas-index");
  EXPECT_EQ(bucket.name(), "atlas-index");
  bucket.put("star-index-r111", ByteSize::from_gib(29.5));
  EXPECT_TRUE(bucket.contains("star-index-r111"));
  ASSERT_TRUE(bucket.head("star-index-r111").has_value());
  EXPECT_NEAR(bucket.head("star-index-r111")->gib(), 29.5, 1e-9);
  EXPECT_NEAR(bucket.get("star-index-r111").gib(), 29.5, 1e-9);
  bucket.remove("star-index-r111");
  EXPECT_FALSE(bucket.contains("star-index-r111"));
}

TEST(S3, MissingObjectThrowsOnGet) {
  S3Bucket bucket("b");
  EXPECT_THROW(bucket.get("nope"), InvalidArgument);
  EXPECT_FALSE(bucket.head("nope").has_value());
}

TEST(S3, OverwriteReplacesSize) {
  S3Bucket bucket("b");
  bucket.put("k", ByteSize(100));
  bucket.put("k", ByteSize(200));
  EXPECT_EQ(bucket.get("k").bytes(), 200u);
  EXPECT_EQ(bucket.num_objects(), 1u);
}

TEST(S3, TotalsAndCounters) {
  S3Bucket bucket("b");
  bucket.put("a", ByteSize(100));
  bucket.put("b", ByteSize(300));
  bucket.get("a");
  bucket.get("a");
  EXPECT_EQ(bucket.total_bytes().bytes(), 400u);
  EXPECT_EQ(bucket.put_count(), 2u);
  EXPECT_EQ(bucket.get_count(), 2u);
}

TEST(S3, TransferTimeMath) {
  // 1 GiB at 8 Gbps, 100% efficiency = 2^30 / 1e9 seconds.
  const VirtualDuration t =
      S3Bucket::transfer_time(ByteSize::from_gib(1.0), 8.0, 1.0);
  EXPECT_NEAR(t.secs(), 1073741824.0 / 1e9, 1e-6);
  // Efficiency scales linearly.
  const VirtualDuration t85 =
      S3Bucket::transfer_time(ByteSize::from_gib(1.0), 8.0, 0.85);
  EXPECT_NEAR(t85.secs(), t.secs() / 0.85, 1e-6);
}

TEST(S3, PaperIndexDownloadTimes) {
  // 29.5 GiB vs 85 GiB on a 6.25 Gbps NIC: the smaller index should
  // download ~2.9x faster — the paper's "reduces the initial overhead".
  const VirtualDuration small =
      S3Bucket::transfer_time(ByteSize::from_gib(29.5), 6.25);
  const VirtualDuration large =
      S3Bucket::transfer_time(ByteSize::from_gib(85.0), 6.25);
  EXPECT_NEAR(large / small, 85.0 / 29.5, 1e-9);
}

TEST(S3, TransferRejectsBadArgs) {
  EXPECT_THROW(S3Bucket::transfer_time(ByteSize(1), 0.0), InternalError);
  EXPECT_THROW(S3Bucket::transfer_time(ByteSize(1), 1.0, 0.0), InternalError);
  EXPECT_THROW(S3Bucket::transfer_time(ByteSize(1), 1.0, 1.5), InternalError);
}

}  // namespace
}  // namespace staratlas
