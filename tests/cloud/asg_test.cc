#include "cloud/asg.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace staratlas {
namespace {

struct AsgFixture {
  SimKernel kernel;
  CostMeter cost;
  Ec2Fleet fleet{kernel, cost, nullptr, VirtualDuration::seconds(30)};
  usize backlog = 0;

  AutoScalingGroup make_asg(AsgPolicy policy) {
    return AutoScalingGroup(kernel, fleet, instance_type("r6a.4xlarge"),
                            /*spot=*/false, policy,
                            [this] { return backlog; });
  }
};

TEST(Asg, ScalesOutToBacklog) {
  AsgFixture fx;
  AsgPolicy policy;
  policy.max_size = 10;
  policy.target_backlog_per_instance = 4.0;
  AutoScalingGroup asg = fx.make_asg(policy);
  fx.backlog = 20;  // -> desired ceil(20/4) = 5
  asg.start();
  fx.kernel.run_until(VirtualTime(10.0));
  EXPECT_EQ(asg.desired_capacity(), 5u);
  EXPECT_EQ(fx.fleet.launched_total(), 5u);
  asg.stop();
  fx.fleet.terminate_all();
}

TEST(Asg, ClampsToMaxSize) {
  AsgFixture fx;
  AsgPolicy policy;
  policy.max_size = 3;
  AutoScalingGroup asg = fx.make_asg(policy);
  fx.backlog = 1'000;
  asg.start();
  fx.kernel.run_until(VirtualTime(10.0));
  EXPECT_EQ(asg.desired_capacity(), 3u);
  EXPECT_EQ(fx.fleet.launched_total(), 3u);
  asg.stop();
  fx.fleet.terminate_all();
}

TEST(Asg, RespectsMinSizeWhenIdle) {
  AsgFixture fx;
  AsgPolicy policy;
  policy.min_size = 2;
  policy.max_size = 8;
  AutoScalingGroup asg = fx.make_asg(policy);
  fx.backlog = 0;
  asg.start();
  fx.kernel.run_until(VirtualTime(10.0));
  EXPECT_EQ(asg.desired_capacity(), 2u);
  asg.stop();
  fx.fleet.terminate_all();
}

TEST(Asg, ReevaluatesPeriodically) {
  AsgFixture fx;
  AsgPolicy policy;
  policy.max_size = 10;
  policy.target_backlog_per_instance = 2.0;
  policy.evaluation_period = VirtualDuration::minutes(1);
  AutoScalingGroup asg = fx.make_asg(policy);
  fx.backlog = 2;
  asg.start();
  fx.kernel.run_until(VirtualTime(10.0));
  EXPECT_EQ(fx.fleet.launched_total(), 1u);
  fx.backlog = 10;  // grows later
  fx.kernel.run_until(VirtualTime(100.0));
  EXPECT_EQ(asg.desired_capacity(), 5u);
  EXPECT_EQ(fx.fleet.launched_total(), 5u);
  asg.stop();
  fx.fleet.terminate_all();
}

TEST(Asg, ShouldReleaseWhenOverDesired) {
  AsgFixture fx;
  AsgPolicy policy;
  policy.max_size = 4;
  AutoScalingGroup asg = fx.make_asg(policy);
  fx.backlog = 8;  // desired 4
  asg.start();
  fx.kernel.run_until(VirtualTime(60.0));
  EXPECT_FALSE(asg.should_release());
  fx.backlog = 0;  // work done -> desired drops to 0 at next evaluation
  fx.kernel.run_until(VirtualTime(200.0));
  EXPECT_TRUE(asg.should_release());
  asg.stop();
  fx.fleet.terminate_all();
}

TEST(Asg, StopHaltsEvaluation) {
  AsgFixture fx;
  AsgPolicy policy;
  policy.max_size = 10;
  AutoScalingGroup asg = fx.make_asg(policy);
  fx.backlog = 4;
  asg.start();
  fx.kernel.run_until(VirtualTime(5.0));
  asg.stop();
  fx.backlog = 100;
  fx.kernel.run();  // no further evaluations scheduled
  EXPECT_LT(fx.fleet.launched_total(), 10u);
  fx.fleet.terminate_all();
}

TEST(Asg, InvalidPolicyRejected) {
  AsgFixture fx;
  AsgPolicy policy;
  policy.min_size = 5;
  policy.max_size = 2;
  EXPECT_THROW(fx.make_asg(policy), InternalError);
}

}  // namespace
}  // namespace staratlas
