#include "cloud/fault.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.h"

namespace staratlas {
namespace {

FaultConfig enabled_config(double rate = 0.3, u64 seed = 42) {
  FaultConfig config;
  config.enabled = true;
  config.transfer_failure_rate = rate;
  config.seed = seed;
  return config;
}

TEST(Fault, DefaultInjectorIsDisabled) {
  FaultInjector injector;
  EXPECT_FALSE(injector.enabled());
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(injector.sample_transfer_failure("prefetch").has_value());
  }
  EXPECT_EQ(injector.injected_total(), 0u);
  EXPECT_EQ(injector.injected("prefetch"), 0u);
}

TEST(Fault, EnabledFlagAloneInjectsNothing) {
  FaultConfig config;
  config.enabled = true;  // rate still 0
  FaultInjector injector(config);
  EXPECT_FALSE(injector.enabled());
  EXPECT_FALSE(injector.sample_transfer_failure("upload").has_value());
}

TEST(Fault, DeterministicAcrossInstances) {
  FaultInjector a(enabled_config());
  FaultInjector b(enabled_config());
  for (int i = 0; i < 200; ++i) {
    const auto fa = a.sample_transfer_failure("prefetch");
    const auto fb = b.sample_transfer_failure("prefetch");
    ASSERT_EQ(fa.has_value(), fb.has_value()) << i;
    if (fa) {
      EXPECT_DOUBLE_EQ(*fa, *fb) << i;
    }
  }
  EXPECT_EQ(a.injected_total(), b.injected_total());
  EXPECT_GT(a.injected_total(), 0u);
}

TEST(Fault, PerOpStreamsAreIndependent) {
  // Interleaving draws on another op must not perturb an op's stream.
  FaultInjector interleaved(enabled_config());
  FaultInjector solo(enabled_config());
  std::vector<std::optional<double>> from_interleaved, from_solo;
  for (int i = 0; i < 100; ++i) {
    (void)interleaved.sample_transfer_failure("prefetch");
    from_interleaved.push_back(interleaved.sample_transfer_failure("upload"));
    from_solo.push_back(solo.sample_transfer_failure("upload"));
  }
  EXPECT_EQ(from_interleaved, from_solo);
}

TEST(Fault, FailureRateRoughlyHonored) {
  FaultInjector injector(enabled_config(0.3));
  const int draws = 2000;
  int failures = 0;
  for (int i = 0; i < draws; ++i) {
    failures += injector.sample_transfer_failure("op").has_value() ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(failures) / draws, 0.3, 0.05);
  EXPECT_EQ(injector.injected("op"), static_cast<u64>(failures));
  EXPECT_EQ(injector.injected_total(), static_cast<u64>(failures));
}

TEST(Fault, FailureFractionInUnitInterval) {
  FaultInjector injector(enabled_config(0.9));
  for (int i = 0; i < 200; ++i) {
    if (const auto fraction = injector.sample_transfer_failure("op")) {
      EXPECT_GE(*fraction, 0.0);
      EXPECT_LT(*fraction, 1.0);
    }
  }
}

TEST(Fault, BackoffGrowsGeometricallyAndCaps) {
  FaultConfig config = enabled_config();
  config.transfer_backoff_base = VirtualDuration::seconds(30);
  config.transfer_backoff_multiplier = 2.0;
  config.transfer_backoff_cap = VirtualDuration::minutes(2);
  FaultInjector injector(config);
  EXPECT_DOUBLE_EQ(injector.backoff(1).secs(), 30.0);
  EXPECT_DOUBLE_EQ(injector.backoff(2).secs(), 60.0);
  EXPECT_DOUBLE_EQ(injector.backoff(3).secs(), 120.0);
  EXPECT_DOUBLE_EQ(injector.backoff(4).secs(), 120.0);  // capped
  EXPECT_DOUBLE_EQ(injector.backoff(10).secs(), 120.0);
}

TEST(Fault, ValidateRejectsBadConfig) {
  FaultConfig certain = enabled_config(1.0);  // would retry forever
  EXPECT_THROW(FaultInjector{certain}, InternalError);
  FaultConfig no_attempts = enabled_config();
  no_attempts.max_transfer_attempts = 0;
  EXPECT_THROW(FaultInjector{no_attempts}, InternalError);
  FaultConfig shrinking = enabled_config();
  shrinking.transfer_backoff_multiplier = 0.5;
  EXPECT_THROW(FaultInjector{shrinking}, InternalError);
}

}  // namespace
}  // namespace staratlas
