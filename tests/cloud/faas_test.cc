// FaaS worker classes: per-millisecond billing, Lambda's memory-to-vCPU
// allocation rule, and the InstanceType bridge into StageTimeModel.
#include "cloud/faas.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace staratlas {
namespace {

TEST(Faas, CatalogCoversLambdaMemoryTiers) {
  const auto& catalog = faas_catalog();
  ASSERT_EQ(catalog.size(), 5u);
  for (const FaasClass& cls : catalog) {
    EXPECT_GT(cls.memory.bytes(), 0u);
    EXPECT_GT(cls.vcpus, 0.0);
    EXPECT_GT(cls.cold_start_seconds, 0.0);
    EXPECT_LT(cls.cold_start_seconds, 1.0);  // sub-second, unlike EC2 boot
    EXPECT_EQ(&faas_class(cls.name), &cls);
  }
  // ~1 vCPU per 1769 MB: a 2 GB function is just over one core.
  const FaasClass& small = faas_class("fn-2gb");
  EXPECT_NEAR(small.vcpus, 2000.0 / 1769.0, 1e-9);
  EXPECT_THROW(faas_class("fn-512mb"), InvalidArgument);
}

TEST(Faas, InvokeCostRoundsUpToTheMillisecond) {
  const FaasClass& cls = faas_class("fn-2gb");
  // Sub-millisecond runs bill one full millisecond.
  EXPECT_DOUBLE_EQ(cls.invoke_cost(0.0001), cls.invoke_cost(0.001));
  EXPECT_GT(cls.invoke_cost(0.0011), cls.invoke_cost(0.001));
  // Zero-duration invocations still pay the per-request charge.
  EXPECT_DOUBLE_EQ(cls.invoke_cost(0.0), cls.usd_per_invocation);
  EXPECT_DOUBLE_EQ(cls.invoke_cost(-5.0), cls.usd_per_invocation);
  // One second of 2 GB: 2 GB-seconds at the GB-second rate plus request.
  EXPECT_NEAR(cls.invoke_cost(1.0),
              2.0 * cls.usd_per_gb_second + cls.usd_per_invocation, 1e-12);
}

TEST(Faas, CostScalesWithProvisionedMemory) {
  const double small = faas_class("fn-2gb").invoke_cost(10.0);
  const double large = faas_class("fn-10gb").invoke_cost(10.0);
  EXPECT_NEAR(large - faas_class("fn-10gb").usd_per_invocation,
              5.0 * (small - faas_class("fn-2gb").usd_per_invocation), 1e-12);
}

TEST(Faas, AsInstanceBridgesToStageModel) {
  const FaasClass& cls = faas_class("fn-10gb");
  const InstanceType type = cls.as_instance();
  EXPECT_EQ(type.name, "fn-10gb");
  EXPECT_EQ(type.vcpus, 6u);  // round(10000/1769) = round(5.65)
  EXPECT_EQ(type.memory.bytes(), cls.memory.bytes());
  // A full hour priced through either path is identical.
  EXPECT_DOUBLE_EQ(type.on_demand_hourly, cls.invoke_cost(3600.0));
  EXPECT_DOUBLE_EQ(type.spot_hourly, type.on_demand_hourly);
  // Fractional share below one core still presents at least 1 vCPU.
  EXPECT_GE(faas_class("fn-2gb").as_instance().vcpus, 1u);
}

}  // namespace
}  // namespace staratlas
