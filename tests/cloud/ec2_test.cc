#include "cloud/ec2.h"

#include <gtest/gtest.h>

namespace staratlas {
namespace {

struct Ec2Fixture {
  SimKernel kernel;
  CostMeter cost;
  SpotMarket spot{Rng(1), VirtualDuration::hours(1)};
  Ec2Fleet fleet{kernel, cost, &spot, VirtualDuration::seconds(45)};
};

TEST(Ec2, BootDelayThenReady) {
  Ec2Fixture fx;
  double ready_at = -1.0;
  fx.fleet.set_on_ready(
      [&](u64) { ready_at = fx.kernel.now().secs(); });
  const u64 id = fx.fleet.launch(instance_type("r6a.4xlarge"), false);
  EXPECT_EQ(fx.fleet.instance(id).state, InstanceState::kPending);
  fx.kernel.run();
  EXPECT_DOUBLE_EQ(ready_at, 45.0);
  EXPECT_EQ(fx.fleet.instance(id).state, InstanceState::kRunning);
  EXPECT_EQ(fx.fleet.running_count(), 1u);
  fx.fleet.terminate(id);
}

TEST(Ec2, TerminateBillsLifetime) {
  Ec2Fixture fx;
  const InstanceType& type = instance_type("r6a.4xlarge");
  const u64 id = fx.fleet.launch(type, false);
  fx.kernel.schedule_after(VirtualDuration::hours(2),
                           [&] { fx.fleet.terminate(id); });
  fx.kernel.run();
  EXPECT_NEAR(fx.cost.total_usd(), 2.0 * type.on_demand_hourly, 1e-6);
  EXPECT_EQ(fx.fleet.instance(id).state, InstanceState::kTerminated);
  // Double-terminate must not double-bill.
  fx.fleet.terminate(id);
  EXPECT_NEAR(fx.cost.total_usd(), 2.0 * type.on_demand_hourly, 1e-6);
}

TEST(Ec2, TerminateWhilePendingSuppressesReady) {
  Ec2Fixture fx;
  bool ready = false;
  fx.fleet.set_on_ready([&](u64) { ready = true; });
  const u64 id = fx.fleet.launch(instance_type("r6a.large"), false);
  fx.fleet.terminate(id);  // before boot completes
  fx.kernel.run();
  EXPECT_FALSE(ready);
}

TEST(Ec2, SpotGetsReclaimed) {
  Ec2Fixture fx;
  u64 interrupted_id = 0;
  fx.fleet.set_on_interrupted([&](u64 id) { interrupted_id = id; });
  const u64 id = fx.fleet.launch(instance_type("r6a.4xlarge"), true);
  fx.kernel.run();  // mean TTI is 1h; the exponential draw eventually fires
  EXPECT_EQ(interrupted_id, id);
  EXPECT_EQ(fx.fleet.instance(id).state, InstanceState::kTerminated);
  EXPECT_EQ(fx.fleet.interruptions(), 1u);
  EXPECT_GT(fx.cost.category_usd("ec2_spot"), 0.0);
}

TEST(Ec2, OnDemandNeverReclaimed) {
  Ec2Fixture fx;
  bool interrupted = false;
  fx.fleet.set_on_interrupted([&](u64) { interrupted = true; });
  const u64 id = fx.fleet.launch(instance_type("r6a.4xlarge"), false);
  fx.kernel.run_until(VirtualTime(3600.0 * 1000));
  EXPECT_FALSE(interrupted);
  EXPECT_EQ(fx.fleet.instance(id).state, InstanceState::kRunning);
  fx.fleet.terminate(id);
}

TEST(Ec2, TerminateCancelsReclaimTimer) {
  Ec2Fixture fx;
  bool interrupted = false;
  fx.fleet.set_on_interrupted([&](u64) { interrupted = true; });
  const u64 id = fx.fleet.launch(instance_type("r6a.4xlarge"), true);
  fx.fleet.terminate(id);
  fx.kernel.run();
  EXPECT_FALSE(interrupted);
  EXPECT_EQ(fx.fleet.interruptions(), 0u);
}

TEST(Ec2, TerminateAllSweepsFleet) {
  Ec2Fixture fx;
  for (int i = 0; i < 5; ++i) {
    fx.fleet.launch(instance_type("r6a.large"), false);
  }
  fx.kernel.run_until(VirtualTime(100.0));
  EXPECT_EQ(fx.fleet.running_count(), 5u);
  fx.fleet.terminate_all();
  EXPECT_EQ(fx.fleet.running_count(), 0u);
  EXPECT_EQ(fx.fleet.launched_total(), 5u);
  EXPECT_GT(fx.cost.total_usd(), 0.0);
}

}  // namespace
}  // namespace staratlas
