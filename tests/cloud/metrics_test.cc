#include "cloud/metrics.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.h"

namespace staratlas {
namespace {

TEST(MetricSeries, RecordsAndSummarizes) {
  MetricSeries series;
  EXPECT_TRUE(series.empty());
  series.add(VirtualTime(0), 2.0);
  series.add(VirtualTime(10), 4.0);
  series.add(VirtualTime(20), 3.0);
  EXPECT_EQ(series.points().size(), 3u);
  EXPECT_DOUBLE_EQ(series.max(), 4.0);
  EXPECT_DOUBLE_EQ(series.mean(), 3.0);
  EXPECT_DOUBLE_EQ(series.final_value(), 3.0);
}

TEST(MetricSeries, TimeWeightedMean) {
  MetricSeries series;
  series.add(VirtualTime(0), 10.0);   // holds for 10s
  series.add(VirtualTime(10), 0.0);   // holds for 30s
  series.add(VirtualTime(40), 99.0);  // endpoint, no weight
  EXPECT_DOUBLE_EQ(series.time_weighted_mean(), (10.0 * 10.0) / 40.0);
}

TEST(MetricSeries, MaxOfAllNegativeSeries) {
  // max() seeds from the first point, so a series that never goes
  // positive reports its true (negative) maximum instead of 0.
  MetricSeries series;
  series.add(VirtualTime(0), -5.0);
  series.add(VirtualTime(10), -1.5);
  series.add(VirtualTime(20), -9.0);
  EXPECT_DOUBLE_EQ(series.max(), -1.5);
}

TEST(MetricSeries, MaxOfEmptySeriesIsZero) {
  MetricSeries series;
  EXPECT_DOUBLE_EQ(series.max(), 0.0);
}

TEST(MetricSeries, RejectsTimeTravel) {
  MetricSeries series;
  series.add(VirtualTime(10), 1.0);
  EXPECT_THROW(series.add(VirtualTime(5), 1.0), InternalError);
}

TEST(MetricsRecorder, SeriesByName) {
  MetricsRecorder recorder;
  recorder.record("queue_depth", VirtualTime(0), 5.0);
  recorder.record("queue_depth", VirtualTime(60), 3.0);
  recorder.record("cost_usd", VirtualTime(0), 0.1);
  EXPECT_TRUE(recorder.has("queue_depth"));
  EXPECT_FALSE(recorder.has("nope"));
  EXPECT_THROW(recorder.series("nope"), InternalError);
  EXPECT_EQ(recorder.series("queue_depth").points().size(), 2u);
  EXPECT_EQ(recorder.names(),
            (std::vector<std::string>{"cost_usd", "queue_depth"}));
}

TEST(MetricsRecorder, CsvFormat) {
  MetricsRecorder recorder;
  recorder.record("a", VirtualTime(1.5), 2.0);
  recorder.record("b", VirtualTime(3.0), 4.5);
  std::ostringstream out;
  recorder.write_csv(out);
  EXPECT_EQ(out.str(), "metric,time_seconds,value\na,1.5,2\nb,3,4.5\n");
}

}  // namespace
}  // namespace staratlas
