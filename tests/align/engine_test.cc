#include "align/engine.h"

#include <gtest/gtest.h>

#include "common/error.h"

#include "sim/read_simulator.h"
#include "testutil.h"

namespace staratlas {
namespace {

using staratlas::testing::world;

ReadSet bulk_reads(usize n, u64 seed = 3) {
  return world().simulator->simulate(bulk_rna_profile(), n, Rng(seed));
}

TEST(Engine, StatsSumToProcessed) {
  const auto& w = world();
  AlignmentEngine engine(w.index111, &w.synthesizer->annotation(), {});
  const AlignmentRun run = engine.run(bulk_reads(2'000));
  EXPECT_EQ(run.stats.processed, 2'000u);
  EXPECT_EQ(run.stats.unique + run.stats.multi + run.stats.too_many +
                run.stats.unmapped,
            run.stats.processed);
  EXPECT_FALSE(run.aborted);
  EXPECT_GT(run.wall_seconds, 0.0);
}

TEST(Engine, OutcomesArrayMatchesStats) {
  const auto& w = world();
  AlignmentEngine engine(w.index111, &w.synthesizer->annotation(), {});
  const ReadSet reads = bulk_reads(1'000);
  const AlignmentRun run = engine.run(reads);
  ASSERT_EQ(run.outcomes.size(), reads.size());
  u64 unique = 0;
  for (ReadOutcome outcome : run.outcomes) {
    unique += outcome == ReadOutcome::kUniqueMapped ? 1 : 0;
  }
  EXPECT_EQ(unique, run.stats.unique);
}

TEST(Engine, DeterministicStatsAcrossThreadCounts) {
  const auto& w = world();
  const ReadSet reads = bulk_reads(1'500);
  MappingStats reference;
  for (usize threads : {1u, 2u, 4u}) {
    EngineConfig config;
    config.num_threads = threads;
    AlignmentEngine engine(w.index111, &w.synthesizer->annotation(),
                                 config);
    const AlignmentRun run = engine.run(reads);
    if (threads == 1) {
      reference = run.stats;
    } else {
      EXPECT_EQ(run.stats.unique, reference.unique) << threads;
      EXPECT_EQ(run.stats.multi, reference.multi) << threads;
      EXPECT_EQ(run.stats.too_many, reference.too_many) << threads;
      EXPECT_EQ(run.stats.unmapped, reference.unmapped) << threads;
    }
  }
}

TEST(Engine, GeneCountsTotalsConsistent) {
  const auto& w = world();
  AlignmentEngine engine(w.index111, &w.synthesizer->annotation(), {});
  const AlignmentRun run = engine.run(bulk_reads(2'000));
  const GeneCountsTable& counts = run.gene_counts;
  EXPECT_EQ(counts.per_gene.size(), w.synthesizer->annotation().num_genes());
  EXPECT_EQ(counts.total_counted() + counts.n_unmapped +
                counts.n_multimapping + counts.n_no_feature +
                counts.n_ambiguous,
            run.stats.processed);
  EXPECT_EQ(counts.n_unmapped, run.stats.unmapped);
  EXPECT_EQ(counts.n_multimapping, run.stats.multi + run.stats.too_many);
  EXPECT_GT(counts.total_counted(), 0u);
}

TEST(Engine, QuantDisabledSkipsCounts) {
  const auto& w = world();
  EngineConfig config;
  config.quant_gene_counts = false;
  AlignmentEngine engine(w.index111, nullptr, config);
  const AlignmentRun run = engine.run(bulk_reads(500));
  EXPECT_TRUE(run.gene_counts.per_gene.empty());
  EXPECT_GT(run.stats.processed, 0u);
}

TEST(Engine, QuantRequiresAnnotation) {
  const auto& w = world();
  EngineConfig config;
  config.quant_gene_counts = true;
  EXPECT_THROW(AlignmentEngine(w.index111, nullptr, config), InternalError);
}

TEST(Engine, CallbackInvokedAtIntervals) {
  const auto& w = world();
  EngineConfig config;
  config.progress_check_interval = 200;
  AlignmentEngine engine(w.index111, &w.synthesizer->annotation(),
                               config);
  usize calls = 0;
  u64 last_processed = 0;
  const AlignmentRun run =
      engine.run(bulk_reads(1'000), [&](const ProgressSnapshot& snap) {
        ++calls;
        EXPECT_GE(snap.processed, last_processed);
        last_processed = snap.processed;
        EXPECT_EQ(snap.total_reads, 1'000u);
        return EngineCommand::kContinue;
      });
  EXPECT_GE(calls, 3u);
  EXPECT_LE(calls, 6u);
  EXPECT_FALSE(run.aborted);
}

TEST(Engine, AbortStopsPromptly) {
  const auto& w = world();
  EngineConfig config;
  config.progress_check_interval = 100;
  config.chunk_size = 50;
  AlignmentEngine engine(w.index111, &w.synthesizer->annotation(),
                               config);
  const AlignmentRun run =
      engine.run(bulk_reads(4'000), [&](const ProgressSnapshot& snap) {
        return snap.processed >= 400 ? EngineCommand::kAbort
                                     : EngineCommand::kContinue;
      });
  EXPECT_TRUE(run.aborted);
  EXPECT_GE(run.stats.processed, 400u);
  EXPECT_LT(run.stats.processed, 2'000u);  // far from the full set
}

TEST(Engine, AbortWithThreadsStillStops) {
  const auto& w = world();
  EngineConfig config;
  config.progress_check_interval = 100;
  config.chunk_size = 50;
  config.num_threads = 4;
  AlignmentEngine engine(w.index111, &w.synthesizer->annotation(),
                               config);
  const AlignmentRun run =
      engine.run(bulk_reads(4'000), [&](const ProgressSnapshot&) {
        return EngineCommand::kAbort;  // abort at first checkpoint
      });
  EXPECT_TRUE(run.aborted);
  EXPECT_LT(run.stats.processed, 4'000u);
}

TEST(Engine, EmptyReadSet) {
  const auto& w = world();
  AlignmentEngine engine(w.index111, &w.synthesizer->annotation(), {});
  const AlignmentRun run = engine.run(ReadSet{});
  EXPECT_EQ(run.stats.processed, 0u);
  EXPECT_FALSE(run.aborted);
}

TEST(Engine, ProgressLogRecordsRun) {
  const auto& w = world();
  EngineConfig config;
  config.progress_check_interval = 250;
  AlignmentEngine engine(w.index111, &w.synthesizer->annotation(),
                               config);
  const AlignmentRun run = engine.run(
      bulk_reads(1'000), [](const ProgressSnapshot&) {
        return EngineCommand::kContinue;
      });
  EXPECT_GE(run.progress_log.entries().size(), 3u);
  const std::string rendered = run.progress_log.render();
  EXPECT_NE(rendered.find("Reads processed"), std::string::npos);
}

TEST(Engine, BulkMappingRateHigh) {
  const auto& w = world();
  AlignmentEngine engine(w.index111, &w.synthesizer->annotation(), {});
  const AlignmentRun run = engine.run(bulk_reads(3'000));
  EXPECT_GT(run.stats.mapped_rate(), 0.80);
}

TEST(Engine, SingleCellMappingRateBelowThreshold) {
  const auto& w = world();
  AlignmentEngine engine(w.index111, &w.synthesizer->annotation(), {});
  const ReadSet reads =
      w.simulator->simulate(single_cell_profile(), 3'000, Rng(8));
  const AlignmentRun run = engine.run(reads);
  EXPECT_LT(run.stats.mapped_rate(), 0.30);
  EXPECT_GT(run.stats.mapped_rate(), 0.05);
}

TEST(Engine, MappingRateNearlyEqualAcrossReleases) {
  // The paper's <1% mean mapping-rate difference between releases.
  const auto& w = world();
  const ReadSet reads = bulk_reads(3'000, 21);
  AlignmentEngine e108(w.index108, &w.synthesizer->annotation(), {});
  AlignmentEngine e111(w.index111, &w.synthesizer->annotation(), {});
  const double r108 = e108.run(reads).stats.mapped_rate();
  const double r111 = e111.run(reads).stats.mapped_rate();
  EXPECT_NEAR(r108, r111, 0.01);
}

}  // namespace
}  // namespace staratlas
