// v3 (raw text) vs v4 (2-bit packed text) outcome parity: the packed
// representation must change memory footprint, never results. The whole
// suite runs again under STARATLAS_FORCE_SCALAR=1 in the align_force_scalar
// ctest job, which pins the packed LCP and strip kernels to their scalar
// references — so raw/packed parity is enforced at every SIMD level.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "align/engine.h"
#include "common/rng.h"
#include "genome/model.h"
#include "index/genome_index.h"
#include "index/packed_text.h"
#include "sim/library_profile.h"
#include "sim/read_simulator.h"
#include "testutil.h"

namespace staratlas {
namespace {

using staratlas::testing::world;

struct TempIndexFile {
  explicit TempIndexFile(const GenomeIndex& index, u32 version)
      : path(::testing::TempDir() + "staratlas_parity_" +
             std::to_string(version) + "_" +
             std::to_string(reinterpret_cast<uintptr_t>(this)) + ".bin") {
    index.save_file(path, version);
  }
  ~TempIndexFile() { std::remove(path.c_str()); }
  const std::string path;
};

/// Loads the shared test index as v4, mmap when the platform has it (the
/// production attach path), stream otherwise.
const GenomeIndex& packed_index() {
  static const GenomeIndex* instance = [] {
    const TempIndexFile file(world().index111, GenomeIndex::kVersionV4);
    const IndexLoadMode mode = MappedFile::supported() ? IndexLoadMode::kMmap
                                                       : IndexLoadMode::kStream;
    return new GenomeIndex(GenomeIndex::load_file(file.path, mode));
  }();
  return *instance;
}

TEST(PackedParity, PackedLoadReportsPackedStats) {
  const GenomeIndex& packed = packed_index();
  const GenomeIndex& raw = world().index111;
  EXPECT_TRUE(packed.packed_text());
  EXPECT_TRUE(packed.text().empty());
  EXPECT_EQ(packed.text_size(), raw.text().size());
  EXPECT_EQ(packed.text_substr(0, raw.text().size()), raw.text());

  const IndexStats ps = packed.stats();
  const IndexStats rs = raw.stats();
  EXPECT_TRUE(ps.packed_text);
  EXPECT_FALSE(rs.packed_text);
  EXPECT_EQ(ps.genome_length, rs.genome_length);
  EXPECT_EQ(ps.suffix_array_bytes.bytes(), rs.suffix_array_bytes.bytes());
  // The headline: resident text shrinks ~4x (paged overlay keeps the
  // exception cost near zero at realistic N densities).
  const double ratio = static_cast<double>(rs.text_bytes.bytes()) /
                       static_cast<double>(ps.text_bytes.bytes());
  EXPECT_GT(ratio, 3.5);
  EXPECT_LE(ratio, 4.0);
}

TEST(PackedParity, MmpIdenticalOnRandomQueries) {
  const GenomeIndex& packed = packed_index();
  const GenomeIndex& raw = world().index111;
  const std::string& chrom = world().r111.contig(0).sequence;

  Rng rng(31);
  static const char kBases[] = "ACGTN";
  std::vector<std::string> queries = {"", "A", "NNNNN", "ACGT#ACGT"};
  for (int i = 0; i < 200; ++i) {
    const u64 len = 1 + rng.uniform(80);
    std::string q = chrom.substr(rng.uniform(chrom.size() - len), len);
    for (auto& c : q) {
      if (rng.uniform(100) < 5) c = kBases[rng.uniform(5)];
    }
    queries.push_back(std::move(q));
  }
  for (const std::string& q : queries) {
    const MmpResult a = raw.mmp(q);
    const MmpResult b = packed.mmp(q);
    EXPECT_EQ(a.length, b.length) << "query " << q;
    EXPECT_EQ(a.interval.lo, b.interval.lo) << "query " << q;
    EXPECT_EQ(a.interval.hi, b.interval.hi) << "query " << q;
  }
}

TEST(PackedParity, MmpBatchIdentical) {
  const GenomeIndex& packed = packed_index();
  const GenomeIndex& raw = world().index111;
  const std::string& chrom = world().r111.contig(1).sequence;

  Rng rng(37);
  std::vector<std::string> storage;
  for (int i = 0; i < 150; ++i) {
    const u64 len = 20 + rng.uniform(60);
    std::string q = chrom.substr(rng.uniform(chrom.size() - len), len);
    if (rng.uniform(4) == 0) q[rng.uniform(q.size())] = 'N';
    storage.push_back(std::move(q));
  }
  std::vector<std::string_view> queries(storage.begin(), storage.end());
  std::vector<MmpResult> raw_results(queries.size());
  std::vector<MmpResult> packed_results(queries.size());
  raw.mmp_batch(queries, raw_results);
  packed.mmp_batch(queries, packed_results);
  for (usize i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(raw_results[i].length, packed_results[i].length) << "query " << i;
    EXPECT_EQ(raw_results[i].interval.lo, packed_results[i].interval.lo)
        << "query " << i;
    EXPECT_EQ(raw_results[i].interval.hi, packed_results[i].interval.hi)
        << "query " << i;
  }
}

TEST(PackedParity, AlignmentRunBitIdentical) {
  const auto& w = world();
  const GenomeIndex& packed = packed_index();
  const ReadSet reads = w.simulator->simulate(bulk_rna_profile(), 400, Rng(91));

  EngineConfig config;
  config.num_threads = 2;
  config.chunk_size = 32;
  config.collect_junctions = true;

  AlignmentEngine raw_engine(w.index111, &w.synthesizer->annotation(), config);
  AlignmentEngine packed_engine(packed, &w.synthesizer->annotation(), config);
  const AlignmentRun a = raw_engine.run(reads);
  const AlignmentRun b = packed_engine.run(reads);

  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (usize i = 0; i < a.outcomes.size(); ++i) {
    ASSERT_EQ(a.outcomes[i], b.outcomes[i]) << "read " << i;
  }
  EXPECT_EQ(a.stats.unique, b.stats.unique);
  EXPECT_EQ(a.stats.multi, b.stats.multi);
  EXPECT_EQ(a.stats.unmapped, b.stats.unmapped);
  EXPECT_EQ(a.stats.seeds_generated, b.stats.seeds_generated);
  EXPECT_EQ(a.stats.windows_scored, b.stats.windows_scored);
  // The work counters are the strongest claim: the packed compare paths
  // must examine exactly the bases the raw paths examine.
  EXPECT_EQ(a.stats.bases_compared, b.stats.bases_compared);

  ASSERT_EQ(a.junctions.size(), b.junctions.size());
  for (usize j = 0; j < a.junctions.size(); ++j) {
    EXPECT_EQ(a.junctions[j].contig, b.junctions[j].contig) << "junction " << j;
    EXPECT_EQ(a.junctions[j].intron_start, b.junctions[j].intron_start)
        << "junction " << j;
    EXPECT_EQ(a.junctions[j].intron_end, b.junctions[j].intron_end)
        << "junction " << j;
    EXPECT_EQ(a.junctions[j].unique_reads, b.junctions[j].unique_reads)
        << "junction " << j;
  }
}

TEST(PackedParity, BlockNarrowMatchesPerCharNarrow) {
  // extend_interval_packed_block must equal len iterated per-char
  // extend_interval steps: the final interval when all len characters
  // match, the empty interval when the walk dies anywhere inside the
  // block. Checked at every depth of real walks so both outcomes occur.
  const GenomeIndex& packed = packed_index();
  const std::string& chrom = world().r111.contig(0).sequence;

  Rng rng(53);
  for (int iter = 0; iter < 60; ++iter) {
    const u64 len = 24 + rng.uniform(64);
    std::string q = chrom.substr(rng.uniform(chrom.size() - len), len);
    if (rng.uniform(2) == 0) {
      q[rng.uniform(q.size())] = "ACGTN"[rng.uniform(5)];
    }
    u64 qc[512 / 32 + 1];
    u64 qe[512 / 64 + 1];
    ASSERT_TRUE(pack_query(q, qc, qe));

    SaInterval interval{0, static_cast<u32>(packed.suffix_array().size())};
    usize depth = 0;
    while (depth < q.size() && !interval.empty()) {
      const u32 block_len = static_cast<u32>(
          std::min<u64>(kPackedBasesPerWord, q.size() - depth));
      const SaInterval block =
          packed.extend_interval_packed_block(interval, depth, qc, qe,
                                              block_len);
      SaInterval expect = interval;
      for (u32 j = 0; j < block_len && !expect.empty(); ++j) {
        expect = packed.extend_interval(expect, depth + j, q[depth + j]);
      }
      ASSERT_EQ(block.empty(), expect.empty())
          << "query " << q << " depth " << depth;
      if (!expect.empty()) {
        ASSERT_EQ(block.lo, expect.lo) << "query " << q << " depth " << depth;
        ASSERT_EQ(block.hi, expect.hi) << "query " << q << " depth " << depth;
      }
      interval = block;
      depth += block_len;
    }
  }
}

TEST(PackedParity, WideBlockNarrowingOnRepetitiveGenome) {
  // A highly repetitive genome keeps SA intervals wider than the batch
  // walker's direct-scan threshold (kT = 24) deep into every walk, so
  // the packed index narrows through many consecutive wide-block
  // equal-range passes — including blocks that come up empty mid-walk
  // (the per-char fallback) — before the direct scan takes over. Results
  // must match the raw-text index exactly. Runs under the
  // align_force_scalar job too, pinning the scalar packed kernels.
  const std::string motif = "ACGTTGCAACGGATCCTAGG";
  Rng rng(77);
  std::string seq;
  for (int rep = 0; rep < 600; ++rep) {
    seq += motif;
    if (rng.uniform(7) == 0) {
      seq[seq.size() - 1 - rng.uniform(motif.size())] =
          "ACGTN"[rng.uniform(5)];
    }
  }
  std::vector<Contig> contigs(1);
  contigs[0].name = "rep1";
  contigs[0].sequence = seq;
  const Assembly assembly("Repetitiva synthetica", 1,
                          AssemblyType::kToplevel, std::move(contigs));
  const GenomeIndex raw = GenomeIndex::build(assembly);
  const TempIndexFile file(raw, GenomeIndex::kVersionV4);
  const GenomeIndex packed =
      GenomeIndex::load_file(file.path, IndexLoadMode::kStream);
  ASSERT_TRUE(packed.packed_text());

  std::vector<std::string> storage;
  for (int i = 0; i < 250; ++i) {
    const u64 len = 40 + rng.uniform(200);
    std::string q = seq.substr(rng.uniform(seq.size() - len), len);
    // Mutated tails end walks at varied depths, exercising the
    // empty-block fallback at many interval widths.
    if (rng.uniform(3) == 0) {
      q[q.size() - 1 - rng.uniform(std::min<u64>(8, q.size()))] =
          "ACGTN"[rng.uniform(5)];
    }
    storage.push_back(std::move(q));
  }
  storage.push_back(motif + motif + motif);  // huge interval at full depth
  storage.push_back(std::string(200, 'A'));  // absent: dies immediately

  for (const std::string& q : storage) {
    const MmpResult a = raw.mmp(q);
    const MmpResult b = packed.mmp(q);
    ASSERT_EQ(a.length, b.length) << "query " << q;
    ASSERT_EQ(a.interval.lo, b.interval.lo) << "query " << q;
    ASSERT_EQ(a.interval.hi, b.interval.hi) << "query " << q;
  }

  std::vector<std::string_view> queries(storage.begin(), storage.end());
  std::vector<MmpResult> raw_results(queries.size());
  std::vector<MmpResult> packed_results(queries.size());
  raw.mmp_batch(queries, raw_results);
  packed.mmp_batch(queries, packed_results);
  for (usize i = 0; i < queries.size(); ++i) {
    ASSERT_EQ(raw_results[i].length, packed_results[i].length) << "query " << i;
    ASSERT_EQ(raw_results[i].interval.lo, packed_results[i].interval.lo)
        << "query " << i;
    ASSERT_EQ(raw_results[i].interval.hi, packed_results[i].interval.hi)
        << "query " << i;
  }
}

TEST(PackedParity, PackedSaveRoundTripsToEveryVersion) {
  // A packed load must be able to write v2/v3 (decoding on the fly) and
  // v4 again, all byte-faithful to the original genome.
  const GenomeIndex& packed = packed_index();
  const GenomeIndex& raw = world().index111;
  for (const u32 version :
       {GenomeIndex::kVersionV2, GenomeIndex::kVersionV3,
        GenomeIndex::kVersionV4}) {
    const TempIndexFile file(packed, version);
    const GenomeIndex loaded =
        GenomeIndex::load_file(file.path, IndexLoadMode::kStream);
    SCOPED_TRACE(version);
    EXPECT_EQ(loaded.text_size(), raw.text().size());
    EXPECT_EQ(loaded.text_substr(0, raw.text().size()), raw.text());
    const MmpResult a = raw.mmp("ACGTACGTAC");
    const MmpResult b = loaded.mmp("ACGTACGTAC");
    EXPECT_EQ(a.length, b.length);
    EXPECT_EQ(a.interval.lo, b.interval.lo);
    EXPECT_EQ(a.interval.hi, b.interval.hi);
  }
}

}  // namespace
}  // namespace staratlas
