#include "align/paired.h"

#include <gtest/gtest.h>

#include "index/packed_sequence.h"
#include "sim/read_simulator.h"
#include "testutil.h"

namespace staratlas {
namespace {

using staratlas::testing::world;

TEST(PairedAligner, PlantedFragmentConcordantUnique) {
  const auto& w = world();
  const PairedAligner aligner(w.index111, PairedParams{});
  const u64 frag_start = 61'000;
  const u64 frag_len = 280;
  const std::string fragment =
      w.r111.contig(0).sequence.substr(frag_start, frag_len);
  const std::string mate1 = fragment.substr(0, 100);
  const std::string mate2 = reverse_complement(fragment.substr(frag_len - 100));

  MappingStats work;
  const PairedAlignment result = aligner.align_pair(mate1, mate2, work);
  EXPECT_EQ(result.outcome, PairOutcome::kConcordantUnique);
  EXPECT_EQ(result.num_pairs, 1u);
  EXPECT_EQ(result.best_pair_score, 200u);
  EXPECT_FALSE(result.hit1.reverse);
  EXPECT_TRUE(result.hit2.reverse);
  EXPECT_EQ(w.index111.locate(result.hit1.text_pos).offset, frag_start);
  EXPECT_EQ(w.index111.locate(result.hit2.text_pos).offset,
            frag_start + frag_len - 100);
}

TEST(PairedAligner, SwappedStrandsStillConcordant) {
  const auto& w = world();
  const PairedAligner aligner(w.index111, PairedParams{});
  const std::string fragment = w.r111.contig(1).sequence.substr(12'000, 300);
  // Fragment sequenced from the other strand: mate1 is the RC end.
  const std::string mate1 = reverse_complement(fragment.substr(200));
  const std::string mate2 = fragment.substr(0, 100);
  MappingStats work;
  const PairedAlignment result = aligner.align_pair(mate1, mate2, work);
  EXPECT_EQ(result.outcome, PairOutcome::kConcordantUnique);
  EXPECT_TRUE(result.hit1.reverse);
  EXPECT_FALSE(result.hit2.reverse);
}

TEST(PairedAligner, MatesTooFarApartAreDiscordant) {
  const auto& w = world();
  PairedParams params;
  params.max_fragment_span = 5'000;
  const PairedAligner aligner(w.index111, params);
  const std::string& chrom = w.r111.contig(0).sequence;
  const std::string mate1 = chrom.substr(10'000, 100);
  const std::string mate2 = reverse_complement(chrom.substr(40'000, 100));
  MappingStats work;
  const PairedAlignment result = aligner.align_pair(mate1, mate2, work);
  EXPECT_EQ(result.outcome, PairOutcome::kDiscordant);
}

TEST(PairedAligner, SameStrandMatesAreDiscordant) {
  const auto& w = world();
  const PairedAligner aligner(w.index111, PairedParams{});
  const std::string& chrom = w.r111.contig(0).sequence;
  const std::string mate1 = chrom.substr(20'000, 100);
  const std::string mate2 = chrom.substr(20'150, 100);  // both forward
  MappingStats work;
  const PairedAlignment result = aligner.align_pair(mate1, mate2, work);
  EXPECT_EQ(result.outcome, PairOutcome::kDiscordant);
}

TEST(PairedAligner, OneMateJunk) {
  const auto& w = world();
  const PairedAligner aligner(w.index111, PairedParams{});
  const std::string mate1 = w.r111.contig(0).sequence.substr(30'000, 100);
  const std::string junk =
      "CCGGCCGGCCGGCCGGCCGGCCGGCCGGCCGGCCGGCCGGCCGGCCGGCCGG";
  MappingStats work;
  EXPECT_EQ(aligner.align_pair(mate1, junk, work).outcome,
            PairOutcome::kOneMateMapped);
  EXPECT_EQ(aligner.align_pair(junk, junk, work).outcome,
            PairOutcome::kUnmapped);
}

TEST(PairedAligner, SimulatedBulkPairsMostlyConcordant) {
  const auto& w = world();
  const ReadPairSet pairs = w.simulator->simulate_pairs(
      bulk_rna_profile(), 400, FragmentModel{}, Rng(5150));
  ASSERT_EQ(pairs.size(), 400u);
  const PairedAligner aligner(w.index111, PairedParams{});
  PairedStats stats;
  MappingStats work;
  for (usize i = 0; i < pairs.size(); ++i) {
    stats.add(aligner
                  .align_pair(pairs.mate1[i].sequence, pairs.mate2[i].sequence,
                              work)
                  .outcome);
  }
  EXPECT_EQ(stats.pairs, 400u);
  EXPECT_GT(stats.concordant_rate(), 0.75);
  // Junk pairs exist in the profile, so some unmapped too.
  EXPECT_GT(stats.unmapped, 0u);
}

TEST(PairedAligner, SpannedJunctionStaysConcordant) {
  // A fragment across an intron: mates land on different exons but the
  // genomic span stays within the cap.
  const auto& w = world();
  const Annotation& annotation = w.synthesizer->annotation();
  const Gene* gene = nullptr;
  for (const Gene& candidate : annotation.genes()) {
    if (candidate.exons.size() >= 2 && candidate.exonic_length() >= 300) {
      gene = &candidate;
      break;
    }
  }
  ASSERT_NE(gene, nullptr);
  const std::string transcript = gene->transcript_sequence(w.r111);
  std::string fragment = transcript.substr(0, 300);
  if (gene->strand == '-') fragment = reverse_complement(fragment);
  const std::string mate1 = fragment.substr(0, 100);
  const std::string mate2 = reverse_complement(fragment.substr(200));

  const PairedAligner aligner(w.index111, PairedParams{});
  MappingStats work;
  const PairedAlignment result = aligner.align_pair(mate1, mate2, work);
  EXPECT_TRUE(result.outcome == PairOutcome::kConcordantUnique ||
              result.outcome == PairOutcome::kConcordantMulti)
      << pair_outcome_name(result.outcome);
}

TEST(PairedStats, Accumulates) {
  PairedStats stats;
  stats.add(PairOutcome::kConcordantUnique);
  stats.add(PairOutcome::kConcordantMulti);
  stats.add(PairOutcome::kDiscordant);
  stats.add(PairOutcome::kOneMateMapped);
  stats.add(PairOutcome::kUnmapped);
  EXPECT_EQ(stats.pairs, 5u);
  EXPECT_DOUBLE_EQ(stats.concordant_rate(), 0.4);
}

TEST(PairOutcome, Names) {
  EXPECT_STREQ(pair_outcome_name(PairOutcome::kConcordantUnique),
               "concordant_unique");
  EXPECT_STREQ(pair_outcome_name(PairOutcome::kUnmapped), "unmapped");
}

}  // namespace
}  // namespace staratlas
