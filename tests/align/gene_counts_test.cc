#include "align/gene_counts.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.h"
#include "testutil.h"

namespace staratlas {
namespace {

using staratlas::testing::world;

// A hand-built world with two overlapping genes for ambiguity tests.
struct CountsFixture {
  Assembly assembly;
  Annotation annotation;
  GenomeIndex index;

  CountsFixture()
      : assembly(make_assembly()),
        annotation(make_annotation()),
        index(GenomeIndex::build(assembly)) {}

  static Assembly make_assembly() {
    std::string seq(2'000, 'A');
    Rng rng(15);
    static const char kBases[] = "ACGT";
    for (auto& c : seq) c = kBases[rng.uniform(4)];
    std::vector<Contig> contigs = {{"1", ContigClass::kChromosome, seq}};
    return Assembly("t", 111, AssemblyType::kToplevel, std::move(contigs));
  }

  static Annotation make_annotation() {
    Gene g1;
    g1.id = "G1";
    g1.contig = 0;
    g1.exons = {{100, 400}};
    Gene g2;
    g2.id = "G2";
    g2.contig = 0;
    g2.exons = {{350, 700}};  // overlaps G1's tail
    Gene g3;
    g3.id = "G3";
    g3.contig = 0;
    g3.exons = {{1'000, 1'300}};
    return Annotation({g1, g2, g3});
  }

  ReadAlignment unique_at(u64 offset, u64 length) const {
    ReadAlignment alignment;
    alignment.outcome = ReadOutcome::kUniqueMapped;
    AlignmentHit hit;
    hit.text_pos = offset;
    hit.segments = {{0, offset, length}};
    hit.score = static_cast<u32>(length);
    alignment.hits.push_back(hit);
    alignment.num_loci = 1;
    return alignment;
  }
};

TEST(GeneCounter, UniqueReadInSingleGeneCounted) {
  const CountsFixture fx;
  const GeneCounter counter(fx.annotation, fx.index);
  GeneCountsTable table(3);
  counter.count(fx.unique_at(150, 100), table);
  EXPECT_EQ(table.per_gene[0], 1u);
  EXPECT_EQ(table.per_gene[1], 0u);
  EXPECT_EQ(table.n_ambiguous, 0u);
}

TEST(GeneCounter, ReadInOverlapIsAmbiguous) {
  const CountsFixture fx;
  const GeneCounter counter(fx.annotation, fx.index);
  GeneCountsTable table(3);
  counter.count(fx.unique_at(360, 30), table);  // inside both G1 and G2
  EXPECT_EQ(table.n_ambiguous, 1u);
  EXPECT_EQ(table.per_gene[0], 0u);
  EXPECT_EQ(table.per_gene[1], 0u);
}

TEST(GeneCounter, IntergenicReadIsNoFeature) {
  const CountsFixture fx;
  const GeneCounter counter(fx.annotation, fx.index);
  GeneCountsTable table(3);
  counter.count(fx.unique_at(800, 100), table);
  EXPECT_EQ(table.n_no_feature, 1u);
}

TEST(GeneCounter, PartialOverlapStillCounts) {
  const CountsFixture fx;
  const GeneCounter counter(fx.annotation, fx.index);
  GeneCountsTable table(3);
  counter.count(fx.unique_at(950, 100), table);  // 50bp into G3
  EXPECT_EQ(table.per_gene[2], 1u);
}

TEST(GeneCounter, MultiMappedGoesToMultimappingBucket) {
  const CountsFixture fx;
  const GeneCounter counter(fx.annotation, fx.index);
  GeneCountsTable table(3);
  ReadAlignment alignment;
  alignment.outcome = ReadOutcome::kMultiMapped;
  counter.count(alignment, table);
  alignment.outcome = ReadOutcome::kTooManyLoci;
  counter.count(alignment, table);
  EXPECT_EQ(table.n_multimapping, 2u);
}

TEST(GeneCounter, UnmappedGoesToUnmappedBucket) {
  const CountsFixture fx;
  const GeneCounter counter(fx.annotation, fx.index);
  GeneCountsTable table(3);
  ReadAlignment alignment;
  alignment.outcome = ReadOutcome::kUnmapped;
  counter.count(alignment, table);
  EXPECT_EQ(table.n_unmapped, 1u);
}

TEST(GeneCounter, SplicedSegmentsQueryEachBlock) {
  const CountsFixture fx;
  const GeneCounter counter(fx.annotation, fx.index);
  GeneCountsTable table(3);
  ReadAlignment alignment;
  alignment.outcome = ReadOutcome::kUniqueMapped;
  AlignmentHit hit;
  hit.text_pos = 120;
  hit.segments = {{0, 120, 40}, {40, 1'050, 40}};  // G1 exon + G3 exon
  alignment.hits.push_back(hit);
  counter.count(alignment, table);
  EXPECT_EQ(table.n_ambiguous, 1u);  // touches two genes
}

TEST(GeneCounter, GenesOverlappingQueries) {
  const CountsFixture fx;
  const GeneCounter counter(fx.annotation, fx.index);
  EXPECT_EQ(counter.genes_overlapping(0, 0, 50).size(), 0u);
  EXPECT_EQ(counter.genes_overlapping(0, 120, 130).size(), 1u);
  EXPECT_EQ(counter.genes_overlapping(0, 360, 370).size(), 2u);
  EXPECT_EQ(counter.genes_overlapping(0, 399, 400).size(), 2u);
  EXPECT_EQ(counter.genes_overlapping(0, 400, 401).size(), 1u);  // G1 ends
  EXPECT_TRUE(counter.genes_overlapping(0, 10, 10).empty());     // empty range
}

TEST(GeneCountsTable, MergeAccumulates) {
  GeneCountsTable a(2);
  a.per_gene[0] = 3;
  a.n_unmapped = 1;
  GeneCountsTable b(2);
  b.per_gene[0] = 2;
  b.per_gene[1] = 5;
  b.n_ambiguous = 4;
  a += b;
  EXPECT_EQ(a.per_gene[0], 5u);
  EXPECT_EQ(a.per_gene[1], 5u);
  EXPECT_EQ(a.n_unmapped, 1u);
  EXPECT_EQ(a.n_ambiguous, 4u);
  EXPECT_EQ(a.total_counted(), 10u);
}

TEST(GeneCountsTable, MergeRejectsMismatchedGeneDimension) {
  // Regression: += used to silently resize, so a shard table counted
  // against a different annotation merged and miscounted.
  GeneCountsTable a(2);
  GeneCountsTable b(3);
  EXPECT_THROW(a += b, InternalError);
  EXPECT_THROW(b += a, InternalError);
  GeneCountsTable sized(2);
  EXPECT_THROW(GeneCountsTable() += sized, InternalError);
  EXPECT_NO_THROW(GeneCountsTable() += GeneCountsTable());
}

TEST(GeneCountsTable, TsvFormat) {
  const auto& w = world();
  GeneCountsTable table(w.synthesizer->annotation().num_genes());
  table.per_gene[0] = 7;
  table.n_unmapped = 2;
  std::ostringstream out;
  table.write_tsv(out, w.synthesizer->annotation());
  const std::string tsv = out.str();
  EXPECT_NE(tsv.find("N_unmapped\t2"), std::string::npos);
  EXPECT_NE(tsv.find("N_multimapping\t0"), std::string::npos);
  EXPECT_NE(tsv.find(w.synthesizer->annotation().gene(0).id + "\t7"),
            std::string::npos);
}

}  // namespace
}  // namespace staratlas
