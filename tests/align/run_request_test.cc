// EngineRunRequest: the single validated entrypoint in front of the
// engine's in-memory, streaming and sharded paths. Validation rules live
// in exactly one place (EngineRunRequest::validate), and execute() must
// reproduce the legacy entrypoints' results identically — they are now
// thin wrappers over it.
#include "align/run_request.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "align/engine.h"
#include "align/sharded.h"
#include "common/error.h"
#include "io/fastq.h"
#include "sim/library_profile.h"
#include "sim/read_simulator.h"
#include "testutil.h"

namespace staratlas {
namespace {

using staratlas::testing::world;

ReadSet sample_reads(usize n = 400, u64 seed = 77) {
  const auto& w = world();
  return w.simulator->simulate(bulk_rna_profile(), n, Rng(seed));
}

std::string to_fastq(const ReadSet& reads) {
  std::ostringstream out;
  write_fastq(out, reads.reads);
  return out.str();
}

EngineConfig engine_config(usize threads = 2) {
  EngineConfig config;
  config.num_threads = threads;
  config.collect_junctions = true;
  return config;
}

void expect_same_outcomes(const AlignmentRun& a, const AlignmentRun& b) {
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (usize i = 0; i < a.outcomes.size(); ++i) {
    ASSERT_EQ(a.outcomes[i], b.outcomes[i]) << "read " << i;
  }
  EXPECT_EQ(a.stats.processed, b.stats.processed);
  EXPECT_EQ(a.stats.unique, b.stats.unique);
  EXPECT_EQ(a.stats.multi, b.stats.multi);
  EXPECT_EQ(a.stats.unmapped, b.stats.unmapped);
}

// ---- validation: every rule rejected in the one shared place ----------

TEST(RunRequest, RejectsMissingAndAmbiguousSources) {
  EngineRunRequest request;
  EXPECT_THROW(request.validate(), InvalidArgument);

  const ReadSet reads = sample_reads(10);
  const std::string fastq = to_fastq(reads);
  request.reads = &reads;
  request.fastq_text = fastq;
  EXPECT_THROW(request.validate(), InvalidArgument);
}

TEST(RunRequest, RejectsDegenerateCounts) {
  const ReadSet reads = sample_reads(10);
  EngineRunRequest request;
  request.reads = &reads;
  request.num_shards = 0;
  EXPECT_THROW(request.validate(), InvalidArgument);

  request.num_shards = 1;
  request.batch_reads = 0;
  EXPECT_THROW(request.validate(), InvalidArgument);
}

TEST(RunRequest, RejectsShardingWithoutRawText) {
  const ReadSet reads = sample_reads(10);
  EngineRunRequest request;
  request.reads = &reads;
  request.mode = EngineRunRequest::Mode::kSharded;
  EXPECT_THROW(request.validate(), InvalidArgument);

  EngineRunRequest implied;
  implied.reads = &reads;
  implied.num_shards = 4;  // kAuto resolves to sharded, which needs text
  EXPECT_THROW(implied.validate(), InvalidArgument);
}

TEST(RunRequest, RejectsEarlyStopWithSharding) {
  // Historically the CLI enforced this; now every caller inherits it.
  const std::string fastq = to_fastq(sample_reads(10));
  EngineRunRequest request;
  request.fastq_text = fastq;
  request.num_shards = 4;
  request.early_stop = EarlyStopPolicy{};
  EXPECT_THROW(request.validate(), InvalidArgument);
}

TEST(RunRequest, RejectsInvalidEarlyStopPolicy) {
  const ReadSet reads = sample_reads(10);
  EngineRunRequest request;
  request.reads = &reads;
  request.early_stop = EarlyStopPolicy{};
  request.early_stop.checkpoint_fraction = 1.5;
  EXPECT_THROW(request.validate(), InvalidArgument);
}

TEST(RunRequest, RejectsShardedOutOnNonShardedModes) {
  const ReadSet reads = sample_reads(10);
  ShardedRun sharded;
  EngineRunRequest request;
  request.reads = &reads;
  request.sharded_out = &sharded;
  EXPECT_THROW(request.validate(), InvalidArgument);
}

TEST(RunRequest, AutoModeResolution) {
  const ReadSet reads = sample_reads(10);
  const std::string fastq = to_fastq(reads);

  EngineRunRequest memory;
  memory.reads = &reads;
  EXPECT_EQ(memory.resolved_mode(), EngineRunRequest::Mode::kMemory);

  EngineRunRequest stream;
  stream.fastq_text = fastq;
  EXPECT_EQ(stream.resolved_mode(), EngineRunRequest::Mode::kStream);

  EngineRunRequest sharded;
  sharded.fastq_text = fastq;
  sharded.num_shards = 4;
  EXPECT_EQ(sharded.resolved_mode(), EngineRunRequest::Mode::kSharded);
}

// ---- execute() parity with the legacy entrypoints ---------------------

TEST(RunRequest, ExecuteMemoryMatchesLegacyRun) {
  const auto& w = world();
  const ReadSet reads = sample_reads();
  AlignmentEngine engine(w.index111, &w.synthesizer->annotation(),
                         engine_config());
  const AlignmentRun legacy = engine.run(reads);

  EngineRunRequest request;
  request.reads = &reads;
  const AlignmentRun via_request = engine.execute(request);
  expect_same_outcomes(legacy, via_request);
}

TEST(RunRequest, ExecuteStreamFromTextMatchesMemoryRun) {
  const auto& w = world();
  const ReadSet reads = sample_reads();
  const std::string fastq = to_fastq(reads);
  AlignmentEngine engine(w.index111, &w.synthesizer->annotation(),
                         engine_config());
  const AlignmentRun memory = engine.run(reads);

  EngineRunRequest request;
  request.fastq_text = fastq;
  request.batch_reads = 64;
  request.total_reads_hint = reads.size();
  const AlignmentRun streamed = engine.execute(request);
  expect_same_outcomes(memory, streamed);
}

TEST(RunRequest, ExecuteShardedMatchesDirectScatterGather) {
  const auto& w = world();
  const ReadSet reads = sample_reads();
  const std::string fastq = to_fastq(reads);
  const Annotation* annotation = &w.synthesizer->annotation();

  ShardedConfig direct_config;
  direct_config.engine = engine_config();
  direct_config.num_shards = 4;
  const ShardedRun direct =
      align_sharded(fastq, w.index111, annotation, direct_config);

  AlignmentEngine engine(w.index111, annotation, engine_config());
  ShardedRun details;
  EngineRunRequest request;
  request.fastq_text = fastq;
  request.num_shards = 4;
  const AlignmentRun merged = engine.execute(request);
  expect_same_outcomes(direct.merged, merged);

  // With sharded_out the per-shard detail comes back too.
  request.sharded_out = &details;
  const AlignmentRun merged_again = engine.execute(request);
  expect_same_outcomes(direct.merged, merged_again);
  EXPECT_EQ(details.plan.num_shards(), 4u);
}

TEST(RunRequest, EngineOwnedEarlyStopAborts) {
  const auto& w = world();
  // Single-cell-shaped reads map poorly, tripping the early-stop rule.
  const ReadSet reads =
      w.simulator->simulate(single_cell_profile(), 400, Rng(99));
  AlignmentEngine engine(w.index111, &w.synthesizer->annotation(),
                         engine_config());

  EngineRunRequest request;
  request.reads = &reads;
  request.early_stop = EarlyStopPolicy{};
  EarlyStopDecision decision;
  request.early_stop_out = &decision;
  const AlignmentRun run = engine.execute(request);
  EXPECT_TRUE(run.aborted);
  EXPECT_TRUE(decision.evaluated);
  EXPECT_TRUE(decision.stopped);
  EXPECT_LT(run.stats.processed, reads.size());
}

TEST(RunRequest, UserCallbackStillSeesSnapshots) {
  const auto& w = world();
  const ReadSet reads = sample_reads(200);
  AlignmentEngine engine(w.index111, &w.synthesizer->annotation(),
                         engine_config());
  usize snapshots = 0;
  EngineRunRequest request;
  request.reads = &reads;
  request.callback = [&](const ProgressSnapshot&) {
    ++snapshots;
    return EngineCommand::kContinue;
  };
  engine.execute(request);
  EXPECT_GT(snapshots, 0u);
}

}  // namespace
}  // namespace staratlas
