#include "align/pseudo.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "index/packed_sequence.h"
#include "sim/read_simulator.h"
#include "testutil.h"

namespace staratlas {
namespace {

using staratlas::testing::world;

const PseudoAligner& pseudo() {
  static const PseudoAligner* instance = new PseudoAligner(
      world().r111, world().synthesizer->annotation());
  return *instance;
}

TEST(PseudoAligner, ExonicReadCompatibleWithSourceGene) {
  const auto& w = world();
  const Annotation& annotation = w.synthesizer->annotation();
  usize checked = 0;
  for (usize g = 0; g < annotation.num_genes() && checked < 10; ++g) {
    const Gene& gene = annotation.gene(static_cast<GeneId>(g));
    const std::string transcript = gene.transcript_sequence(w.r111);
    if (transcript.size() < 120) continue;
    const std::string read = transcript.substr(10, 100);
    const PseudoResult result = pseudo().classify(read);
    ASSERT_TRUE(result.mapped) << gene.id;
    EXPECT_NE(std::find(result.compatible.begin(), result.compatible.end(),
                        static_cast<GeneId>(g)),
              result.compatible.end())
        << gene.id;
    ++checked;
  }
  EXPECT_GE(checked, 5u);
}

TEST(PseudoAligner, ReverseComplementAlsoMaps) {
  const auto& w = world();
  const Gene& gene = w.synthesizer->annotation().gene(0);
  const std::string transcript = gene.transcript_sequence(w.r111);
  ASSERT_GE(transcript.size(), 120u);
  const std::string read =
      reverse_complement(transcript.substr(0, 100));
  EXPECT_TRUE(pseudo().classify(read).mapped);
}

TEST(PseudoAligner, JunkReadUnmapped) {
  const PseudoResult result = pseudo().classify(
      "CCGGCCGGCCGGCCGGCCGGCCGGCCGGCCGGCCGGCCGGCCGGCCGGCCGGCCGGCCGG");
  EXPECT_FALSE(result.mapped);
}

TEST(PseudoAligner, ShortReadUnmapped) {
  EXPECT_FALSE(pseudo().classify("ACGTACGT").mapped);
}

TEST(PseudoAligner, ToleratesSequencingErrors) {
  const auto& w = world();
  const Gene& gene = w.synthesizer->annotation().gene(1);
  const std::string transcript = gene.transcript_sequence(w.r111);
  ASSERT_GE(transcript.size(), 120u);
  std::string read = transcript.substr(0, 100);
  read[50] = read[50] == 'A' ? 'C' : 'A';  // one error mid-read
  EXPECT_TRUE(pseudo().classify(read).mapped);
}

TEST(PseudoAligner, BulkSampleRatesTrackAligner) {
  // Pseudo "mapped rate" should be close to the exonic fraction: it only
  // maps transcriptome reads (intronic/intergenic reads don't count —
  // that is exactly the semantic difference from a genome aligner).
  const auto& w = world();
  const ReadSet reads =
      w.simulator->simulate(bulk_rna_profile(), 2'000, Rng(64));
  std::vector<std::string> sequences;
  for (const auto& read : reads.reads) sequences.push_back(read.sequence);
  const PseudoStats stats = pseudo().run(sequences);
  EXPECT_EQ(stats.processed, 2'000u);
  EXPECT_NEAR(stats.mapped_rate(), bulk_rna_profile().exonic_fraction, 0.06);
  EXPECT_GT(stats.unique_gene, 0u);
  u64 counted = 0;
  for (u64 c : stats.gene_counts) counted += c;
  EXPECT_EQ(counted, stats.unique_gene);
}

TEST(PseudoAligner, SingleCellRateLowLikeAligner) {
  const auto& w = world();
  const ReadSet reads =
      w.simulator->simulate(single_cell_profile(), 2'000, Rng(65));
  std::vector<std::string> sequences;
  for (const auto& read : reads.reads) sequences.push_back(read.sequence);
  const PseudoStats stats = pseudo().run(sequences);
  EXPECT_LT(stats.mapped_rate(), 0.30);
}

TEST(PseudoAligner, ParamsValidated) {
  const auto& w = world();
  PseudoParams bad;
  bad.k = 5;
  EXPECT_THROW(
      PseudoAligner(w.r111, w.synthesizer->annotation(), bad),
      InternalError);
}

}  // namespace
}  // namespace staratlas
