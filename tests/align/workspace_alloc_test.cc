// The tentpole guarantee of the hot-path workspace refactor: steady-state
// Aligner::align with a warmed AlignWorkspace performs zero heap
// allocations per read. Referencing alloc_counter links the counting
// operator-new replacement into this test binary, so the counter sees
// every allocation the aligner would make.
#include <gtest/gtest.h>

#include "align/aligner.h"
#include "align/workspace.h"
#include "common/alloc_counter.h"
#include "sim/library_profile.h"
#include "sim/read_simulator.h"
#include "testutil.h"

namespace staratlas {
namespace {

using staratlas::testing::world;

TEST(WorkspaceAlloc, SteadyStateAlignIsAllocationFree) {
  const auto& w = world();
  const Aligner aligner(w.index111, AlignerParams{});
  const ReadSet reads = w.simulator->simulate(bulk_rna_profile(), 200, Rng(77));

  AlignWorkspace ws;
  MappingStats work;
  // Warm-up pass: buffers grow to the workload's high-water marks.
  for (const auto& read : reads.reads) {
    aligner.align(read.sequence, ws, work, ws.result);
  }

  // Steady state: re-aligning the same workload must not touch the heap.
  const u64 before = alloc_counter::thread_allocations();
  for (const auto& read : reads.reads) {
    aligner.align(read.sequence, ws, work, ws.result);
  }
  const u64 allocations = alloc_counter::thread_allocations() - before;
  EXPECT_EQ(allocations, 0u)
      << "steady-state align allocated " << allocations << " times over "
      << reads.size() << " reads";
}

TEST(WorkspaceAlloc, WarmedWorkspaceMatchesFreshResults) {
  const auto& w = world();
  const Aligner aligner(w.index111, AlignerParams{});
  const ReadSet reads = w.simulator->simulate(bulk_rna_profile(), 120, Rng(78));

  AlignWorkspace reused;
  MappingStats reused_work;
  // Warm on the whole set, then re-align and compare against fresh-state
  // alignment — reuse must never change results.
  for (const auto& read : reads.reads) {
    aligner.align(read.sequence, reused, reused_work, reused.result);
  }
  for (const auto& read : reads.reads) {
    MappingStats fresh_work;
    const ReadAlignment fresh = aligner.align(read.sequence, fresh_work);
    MappingStats warm_work;
    aligner.align(read.sequence, reused, warm_work, reused.result);
    const ReadAlignment& warm = reused.result;

    ASSERT_EQ(fresh.outcome, warm.outcome);
    ASSERT_EQ(fresh.best_score, warm.best_score);
    ASSERT_EQ(fresh.num_loci, warm.num_loci);
    ASSERT_EQ(fresh.hits.size(), warm.hits.size());
    for (usize i = 0; i < fresh.hits.size(); ++i) {
      EXPECT_EQ(fresh.hits[i].text_pos, warm.hits[i].text_pos);
      EXPECT_EQ(fresh.hits[i].reverse, warm.hits[i].reverse);
      EXPECT_EQ(fresh.hits[i].score, warm.hits[i].score);
      ASSERT_EQ(fresh.hits[i].segments.size(), warm.hits[i].segments.size());
      for (usize s = 0; s < fresh.hits[i].segments.size(); ++s) {
        EXPECT_EQ(fresh.hits[i].segments[s].read_start,
                  warm.hits[i].segments[s].read_start);
        EXPECT_EQ(fresh.hits[i].segments[s].text_start,
                  warm.hits[i].segments[s].text_start);
        EXPECT_EQ(fresh.hits[i].segments[s].length,
                  warm.hits[i].segments[s].length);
      }
    }
    EXPECT_EQ(fresh_work.seeds_generated, warm_work.seeds_generated);
    EXPECT_EQ(fresh_work.windows_scored, warm_work.windows_scored);
    EXPECT_EQ(fresh_work.bases_compared, warm_work.bases_compared);
  }
}

TEST(WorkspaceAlloc, SmallVecSpillAndRecovery) {
  // SmallVec sanity: inline until capacity, spills past it, survives
  // copy/move/clear cycles — the operations hit recycling relies on.
  SmallVec<int, 4> v;
  EXPECT_TRUE(v.is_inline());
  for (int i = 0; i < 4; ++i) v.push_back(i);
  EXPECT_TRUE(v.is_inline());
  v.push_back(4);  // spills
  EXPECT_FALSE(v.is_inline());
  ASSERT_EQ(v.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(v[i], i);

  SmallVec<int, 4> copy = v;
  ASSERT_EQ(copy.size(), 5u);
  EXPECT_EQ(copy.back(), 4);

  SmallVec<int, 4> moved = std::move(v);
  ASSERT_EQ(moved.size(), 5u);
  EXPECT_EQ(moved.front(), 0);
  EXPECT_TRUE(v.empty());  // NOLINT(bugprone-use-after-move): spec'd empty

  moved.clear();
  EXPECT_TRUE(moved.empty());
  moved.push_back(9);
  EXPECT_EQ(moved.front(), 9);

  SmallVec<int, 4> inline_move;
  inline_move.push_back(1);
  inline_move.push_back(2);
  SmallVec<int, 4> stolen = std::move(inline_move);
  ASSERT_EQ(stolen.size(), 2u);
  EXPECT_TRUE(stolen.is_inline());
  EXPECT_EQ(stolen[1], 2);
}

}  // namespace
}  // namespace staratlas
