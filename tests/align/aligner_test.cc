#include "align/aligner.h"

#include <gtest/gtest.h>

#include "index/packed_sequence.h"
#include "testutil.h"

namespace staratlas {
namespace {

using staratlas::testing::world;

TEST(Aligner, PlantedReadMapsUniquelyAtLocus) {
  const auto& w = world();
  const Aligner aligner(w.index111, AlignerParams{});
  const u64 planted = 41'000;
  const std::string read = w.r111.contig(0).sequence.substr(planted, 100);
  MappingStats work;
  const ReadAlignment result = aligner.align(read, work);
  EXPECT_EQ(result.outcome, ReadOutcome::kUniqueMapped);
  EXPECT_EQ(result.num_loci, 1u);
  ASSERT_EQ(result.hits.size(), 1u);
  EXPECT_FALSE(result.hits[0].reverse);
  const ContigLocus locus = w.index111.locate(result.hits[0].text_pos);
  EXPECT_EQ(locus.contig, 0u);
  EXPECT_EQ(locus.offset, planted);
  EXPECT_EQ(result.best_score, 100u);
}

TEST(Aligner, ReverseComplementMapsWithReverseFlag) {
  const auto& w = world();
  const Aligner aligner(w.index111, AlignerParams{});
  const u64 planted = 52'000;
  const std::string read = reverse_complement(
      w.r111.contig(0).sequence.substr(planted, 100));
  MappingStats work;
  const ReadAlignment result = aligner.align(read, work);
  EXPECT_EQ(result.outcome, ReadOutcome::kUniqueMapped);
  ASSERT_FALSE(result.hits.empty());
  EXPECT_TRUE(result.hits[0].reverse);
  EXPECT_EQ(w.index111.locate(result.hits[0].text_pos).offset, planted);
}

TEST(Aligner, JunkReadUnmapped) {
  const auto& w = world();
  const Aligner aligner(w.index111, AlignerParams{});
  MappingStats work;
  const std::string junk =
      "CCGGCCGGCCGGCCGGCCGGCCGGCCGGCCGGCCGGCCGGCCGGCCGGCCGGCCGGCCGG";
  const ReadAlignment result = aligner.align(junk, work);
  EXPECT_EQ(result.outcome, ReadOutcome::kUnmapped);
  EXPECT_TRUE(result.hits.empty());
}

TEST(Aligner, EmptyReadUnmapped) {
  const auto& w = world();
  const Aligner aligner(w.index111, AlignerParams{});
  MappingStats work;
  EXPECT_EQ(aligner.align("", work).outcome, ReadOutcome::kUnmapped);
}

TEST(Aligner, ScaffoldCopiesCauseMultimappingOn108) {
  const auto& w = world();
  const Aligner a108(w.index108, AlignerParams{});
  const Aligner a111(w.index111, AlignerParams{});
  // Sample exonic reads; many should be unique on 111 but multi on 108.
  usize multi_on_108 = 0;
  usize unique_on_111 = 0;
  usize n = 0;
  for (const Gene& gene : w.synthesizer->annotation().genes()) {
    if (gene.exons[0].length() < 100) continue;
    const std::string read =
        w.r111.contig(gene.contig).sequence.substr(gene.exons[0].start, 100);
    MappingStats work;
    if (a108.align(read, work).outcome == ReadOutcome::kMultiMapped) {
      ++multi_on_108;
    }
    if (a111.align(read, work).outcome == ReadOutcome::kUniqueMapped) {
      ++unique_on_111;
    }
    if (++n >= 12) break;
  }
  ASSERT_GE(n, 5u);
  EXPECT_GE(multi_on_108, n / 4);
  EXPECT_GE(unique_on_111, 9 * n / 10);
}

TEST(Aligner, RepeatReadStillMappedOnBothReleases) {
  const auto& w = world();
  const RepeatRegion& region = w.synthesizer->repeat_regions()[0];
  const std::string read = w.r111.contig(region.contig)
                               .sequence.substr(region.start + 300, 100);
  for (const GenomeIndex* index : {&w.index108, &w.index111}) {
    const Aligner aligner(*index, AlignerParams{});
    MappingStats work;
    const ReadAlignment result = aligner.align(read, work);
    EXPECT_NE(result.outcome, ReadOutcome::kUnmapped);
    EXPECT_GT(result.num_loci, 1u);
  }
}

TEST(Aligner, TooManyLociWhenNmaxTiny) {
  const auto& w = world();
  AlignerParams params;
  params.multimap_nmax = 1;  // anything with 2+ loci becomes too-many
  const Aligner aligner(w.index108, params);
  const RepeatRegion& region = w.synthesizer->repeat_regions()[0];
  const std::string read = w.r111.contig(region.contig)
                               .sequence.substr(region.start + 200, 100);
  MappingStats work;
  const ReadAlignment result = aligner.align(read, work);
  EXPECT_EQ(result.outcome, ReadOutcome::kTooManyLoci);
  EXPECT_TRUE(result.hits.empty());  // STAR drops their alignments
}

TEST(Aligner, MinMatchedFractionGatesMapping) {
  const auto& w = world();
  // 40 genome bases + 60 junk: 40% identity < 66% threshold -> unmapped.
  const std::string read =
      w.r111.contig(0).sequence.substr(60'000, 40) +
      std::string("CCGGCCGGCCGGCCGGCCGGCCGGCCGGCCGGCCGGCCGGCCGGCCGGCCGGCCGGCCGG")
          .substr(0, 60);
  const Aligner aligner(w.index111, AlignerParams{});
  MappingStats work;
  const ReadAlignment result = aligner.align(read, work);
  EXPECT_EQ(result.outcome, ReadOutcome::kUnmapped);
  EXPECT_GT(result.best_score, 0u);  // it found something, just too little
}

TEST(Aligner, HitsSortedBestFirstAndCapped) {
  const auto& w = world();
  AlignerParams params;
  const Aligner aligner(w.index108, params);
  const RepeatRegion& region = w.synthesizer->repeat_regions()[0];
  const std::string read = w.r111.contig(region.contig)
                               .sequence.substr(region.start + 500, 100);
  MappingStats work;
  const ReadAlignment result = aligner.align(read, work);
  ASSERT_FALSE(result.hits.empty());
  EXPECT_LE(result.hits.size(), params.multimap_nmax);
  for (usize i = 1; i < result.hits.size(); ++i) {
    EXPECT_GE(result.hits[i - 1].score, result.hits[i].score);
  }
}

TEST(Aligner, WorkCountersAccumulate) {
  const auto& w = world();
  const Aligner aligner(w.index111, AlignerParams{});
  MappingStats work;
  const std::string read = w.r111.contig(0).sequence.substr(70'000, 100);
  aligner.align(read, work);
  EXPECT_GT(work.seeds_generated, 0u);
  EXPECT_GT(work.windows_scored, 0u);
  EXPECT_GT(work.bases_compared, 0u);
  EXPECT_EQ(work.processed, 0u);  // outcome accounting is the engine's job
}

TEST(Aligner, DeterministicAcrossCalls) {
  const auto& w = world();
  const Aligner aligner(w.index108, AlignerParams{});
  const std::string read = w.r111.contig(1).sequence.substr(9'000, 100);
  MappingStats work1;
  MappingStats work2;
  const ReadAlignment r1 = aligner.align(read, work1);
  const ReadAlignment r2 = aligner.align(read, work2);
  EXPECT_EQ(r1.outcome, r2.outcome);
  EXPECT_EQ(r1.best_score, r2.best_score);
  EXPECT_EQ(r1.num_loci, r2.num_loci);
  ASSERT_EQ(r1.hits.size(), r2.hits.size());
  for (usize i = 0; i < r1.hits.size(); ++i) {
    EXPECT_EQ(r1.hits[i].text_pos, r2.hits[i].text_pos);
  }
}

}  // namespace
}  // namespace staratlas
