// Guards the workspace-reuse and pooled-engine changes against stale-state
// bugs: AlignmentRun outcomes, gene counts, and junctions must be
// bit-identical across thread counts and across repeated runs on a reused
// engine (whose workspaces and pool persist between runs).
#include <gtest/gtest.h>

#include "align/engine.h"
#include "sim/library_profile.h"
#include "sim/read_simulator.h"
#include "testutil.h"

namespace staratlas {
namespace {

using staratlas::testing::world;

ReadSet determinism_reads() {
  const auto& w = world();
  // A mixed profile so unique, multi, and unmapped outcomes all occur.
  return w.simulator->simulate(bulk_rna_profile(), 600, Rng(4242));
}

EngineConfig determinism_config(usize num_threads) {
  EngineConfig config;
  config.num_threads = num_threads;
  config.chunk_size = 32;  // plenty of chunks even at 8 threads
  config.collect_junctions = true;
  return config;
}

void expect_identical(const AlignmentRun& a, const AlignmentRun& b,
                      const std::string& label) {
  SCOPED_TRACE(label);
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (usize i = 0; i < a.outcomes.size(); ++i) {
    ASSERT_EQ(a.outcomes[i], b.outcomes[i]) << "read " << i;
  }
  EXPECT_EQ(a.stats.processed, b.stats.processed);
  EXPECT_EQ(a.stats.unique, b.stats.unique);
  EXPECT_EQ(a.stats.multi, b.stats.multi);
  EXPECT_EQ(a.stats.too_many, b.stats.too_many);
  EXPECT_EQ(a.stats.unmapped, b.stats.unmapped);
  EXPECT_EQ(a.stats.seeds_generated, b.stats.seeds_generated);
  EXPECT_EQ(a.stats.windows_scored, b.stats.windows_scored);
  EXPECT_EQ(a.stats.bases_compared, b.stats.bases_compared);

  ASSERT_EQ(a.gene_counts.per_gene.size(), b.gene_counts.per_gene.size());
  for (usize g = 0; g < a.gene_counts.per_gene.size(); ++g) {
    ASSERT_EQ(a.gene_counts.per_gene[g], b.gene_counts.per_gene[g])
        << "gene " << g;
  }
  EXPECT_EQ(a.gene_counts.n_unmapped, b.gene_counts.n_unmapped);
  EXPECT_EQ(a.gene_counts.n_multimapping, b.gene_counts.n_multimapping);
  EXPECT_EQ(a.gene_counts.n_no_feature, b.gene_counts.n_no_feature);
  EXPECT_EQ(a.gene_counts.n_ambiguous, b.gene_counts.n_ambiguous);

  ASSERT_EQ(a.junctions.size(), b.junctions.size());
  for (usize j = 0; j < a.junctions.size(); ++j) {
    EXPECT_EQ(a.junctions[j].contig, b.junctions[j].contig) << "junction " << j;
    EXPECT_EQ(a.junctions[j].intron_start, b.junctions[j].intron_start)
        << "junction " << j;
    EXPECT_EQ(a.junctions[j].intron_end, b.junctions[j].intron_end)
        << "junction " << j;
    EXPECT_EQ(a.junctions[j].unique_reads, b.junctions[j].unique_reads)
        << "junction " << j;
    EXPECT_EQ(a.junctions[j].multi_reads, b.junctions[j].multi_reads)
        << "junction " << j;
    EXPECT_EQ(a.junctions[j].max_overhang, b.junctions[j].max_overhang)
        << "junction " << j;
  }
}

TEST(Determinism, IdenticalAcrossThreadCounts) {
  const auto& w = world();
  const ReadSet reads = determinism_reads();

  AlignmentEngine e1(w.index111, &w.synthesizer->annotation(),
                     determinism_config(1));
  const AlignmentRun run1 = e1.run(reads);

  for (const usize threads : {usize{4}, usize{8}}) {
    AlignmentEngine engine(w.index111, &w.synthesizer->annotation(),
                           determinism_config(threads));
    const AlignmentRun run = engine.run(reads);
    expect_identical(run1, run, "threads=" + std::to_string(threads));
  }
}

TEST(Determinism, IdenticalAcrossRepeatedRunsOnReusedEngine) {
  const auto& w = world();
  const ReadSet reads = determinism_reads();

  // The same engine object runs the same sample three times; its pool and
  // per-worker workspaces persist, so any stale workspace state (seeds,
  // hit buffers, result slot) from run N would corrupt run N+1.
  AlignmentEngine engine(w.index111, &w.synthesizer->annotation(),
                         determinism_config(4));
  const AlignmentRun first = engine.run(reads);
  for (int rep = 0; rep < 2; ++rep) {
    const AlignmentRun again = engine.run(reads);
    expect_identical(first, again, "repeat=" + std::to_string(rep));
  }
}

TEST(Determinism, ReusedEngineIsCleanAcrossDifferentSamples) {
  const auto& w = world();
  const ReadSet sample_a = w.simulator->simulate(bulk_rna_profile(), 400,
                                                 Rng(7));
  const ReadSet sample_b = w.simulator->simulate(bulk_rna_profile(), 250,
                                                 Rng(8));

  // Interleave two different samples on one engine; each must produce the
  // same result as a fresh engine would.
  AlignmentEngine reused(w.index111, &w.synthesizer->annotation(),
                         determinism_config(4));
  const AlignmentRun a_warm = reused.run(sample_a);
  const AlignmentRun b_warm = reused.run(sample_b);
  const AlignmentRun a_again = reused.run(sample_a);

  AlignmentEngine fresh_a(w.index111, &w.synthesizer->annotation(),
                          determinism_config(4));
  AlignmentEngine fresh_b(w.index111, &w.synthesizer->annotation(),
                          determinism_config(4));
  expect_identical(fresh_a.run(sample_a), a_warm, "sample_a vs fresh");
  expect_identical(fresh_b.run(sample_b), b_warm, "sample_b vs fresh");
  expect_identical(a_warm, a_again, "sample_a warm vs again");
}

}  // namespace
}  // namespace staratlas
