#include "align/final_log.h"

#include <gtest/gtest.h>

#include "sim/read_simulator.h"
#include "testutil.h"

namespace staratlas {
namespace {

using staratlas::testing::world;

TEST(FinalLog, ContainsStarStyleSections) {
  const auto& w = world();
  AlignmentEngine engine(w.index111, &w.synthesizer->annotation(), {});
  const ReadSet reads = w.simulator->simulate(bulk_rna_profile(), 1'000, Rng(3));
  const AlignmentRun run = engine.run(reads);
  const std::string log = render_final_log(run, reads.size(), 100.0);

  EXPECT_NE(log.find("Number of input reads |\t1000"), std::string::npos);
  EXPECT_NE(log.find("UNIQUE READS:"), std::string::npos);
  EXPECT_NE(log.find("MULTI-MAPPING READS:"), std::string::npos);
  EXPECT_NE(log.find("UNMAPPED READS:"), std::string::npos);
  EXPECT_NE(log.find("Uniquely mapped reads number |\t" +
                     std::to_string(run.stats.unique)),
            std::string::npos);
  EXPECT_NE(log.find("Mapping speed"), std::string::npos);
  EXPECT_EQ(log.find("terminated early"), std::string::npos);
}

TEST(FinalLog, AbortedRunNoted) {
  AlignmentRun run;
  run.aborted = true;
  run.stats.processed = 100;
  run.stats.unmapped = 100;
  run.wall_seconds = 1.0;
  const std::string log = render_final_log(run, 1'000, 100.0);
  EXPECT_NE(log.find("terminated early"), std::string::npos);
}

TEST(FinalLog, PercentagesSum) {
  AlignmentRun run;
  run.stats.processed = 200;
  run.stats.unique = 100;
  run.stats.multi = 50;
  run.stats.too_many = 30;
  run.stats.unmapped = 20;
  run.wall_seconds = 2.0;
  const std::string log = render_final_log(run, 200, 100.0);
  EXPECT_NE(log.find("50.00%"), std::string::npos);  // unique
  EXPECT_NE(log.find("25.00%"), std::string::npos);  // multi
  EXPECT_NE(log.find("15.00%"), std::string::npos);  // too many
  EXPECT_NE(log.find("10.00%"), std::string::npos);  // unmapped
}

TEST(FinalLog, EmptyRunSafe) {
  AlignmentRun run;
  const std::string log = render_final_log(run, 0, 0.0);
  EXPECT_NE(log.find("Reads processed |\t0"), std::string::npos);
}

TEST(FinalLog, SpeedRowAlwaysPresent) {
  // Regression: the row used to vanish when wall_seconds <= 0, changing
  // the log's line count between measured and merged/zero-wall runs.
  AlignmentRun run;
  run.stats.processed = 100;
  run.stats.unique = 100;
  run.wall_seconds = 0.0;
  const std::string log = render_final_log(run, 100, 100.0);
  EXPECT_NE(log.find("Mapping speed, Million of reads per hour |\t0.00"),
            std::string::npos);
}

usize count_lines(const std::string& text) {
  usize lines = 0;
  for (char c : text) lines += c == '\n';
  return lines;
}

TEST(FinalLog, ZeroReadShardKeepsLogShape) {
  // A zero-read shard (scatter/gather tail) must render the same line
  // count as a populated run: percent rows print 0.00% (denominator
  // clamps to 1) and the speed row prints 0.00.
  AlignmentRun empty_shard;
  const std::string empty_log = render_final_log(empty_shard, 0, 0.0);

  AlignmentRun populated;
  populated.stats.processed = 50;
  populated.stats.unique = 40;
  populated.stats.unmapped = 10;
  populated.wall_seconds = 1.5;
  const std::string full_log = render_final_log(populated, 50, 100.0);

  EXPECT_EQ(count_lines(empty_log), count_lines(full_log));
  EXPECT_NE(empty_log.find("Uniquely mapped reads % |\t0.00%"),
            std::string::npos);
  EXPECT_NE(empty_log.find("% of reads unmapped |\t0.00%"),
            std::string::npos);
  EXPECT_NE(empty_log.find("Mapping speed"), std::string::npos);
}

}  // namespace
}  // namespace staratlas
