#include "align/extend.h"

#include <gtest/gtest.h>

#include "align/seed.h"
#include "index/packed_sequence.h"
#include "testutil.h"

namespace staratlas {
namespace {

using staratlas::testing::world;

std::vector<AlignmentHit> align_one(const GenomeIndex& index,
                                    const std::string& read,
                                    ExtendStats* stats_out = nullptr) {
  AlignerParams params;
  const SeedSearchResult seeds = find_seeds(index, read, params);
  ExtendStats stats;
  auto hits = score_windows(index, read, seeds.seeds, false, params, stats);
  if (stats_out) *stats_out = stats;
  return hits;
}

TEST(Extend, ExactReadScoresFullLength) {
  const auto& w = world();
  const std::string read = w.r111.contig(0).sequence.substr(12'000, 100);
  ExtendStats stats;
  const auto hits = align_one(w.index111, read, &stats);
  ASSERT_FALSE(hits.empty());
  u32 best = 0;
  for (const auto& hit : hits) best = std::max(best, hit.score);
  EXPECT_EQ(best, 100u);
  EXPECT_GE(stats.windows_scored, 1u);
}

TEST(Extend, BestHitAtPlantedLocus) {
  const auto& w = world();
  const u64 planted = 33'000;
  const std::string read = w.r111.contig(0).sequence.substr(planted, 100);
  const auto hits = align_one(w.index111, read);
  ASSERT_FALSE(hits.empty());
  const AlignmentHit* best = &hits[0];
  for (const auto& hit : hits) {
    if (hit.score > best->score) best = &hit;
  }
  const ContigLocus locus = w.index111.locate(best->text_pos);
  EXPECT_EQ(locus.contig, 0u);
  EXPECT_EQ(locus.offset, planted);
}

TEST(Extend, MismatchesLowerScoreButStillAlign) {
  const auto& w = world();
  std::string read = w.r111.contig(0).sequence.substr(45'000, 100);
  read[10] = read[10] == 'G' ? 'T' : 'G';
  read[70] = read[70] == 'A' ? 'C' : 'A';
  const auto hits = align_one(w.index111, read);
  ASSERT_FALSE(hits.empty());
  u32 best = 0;
  for (const auto& hit : hits) best = std::max(best, hit.score);
  EXPECT_GE(best, 90u);
  EXPECT_LE(best, 98u);
}

TEST(Extend, SplicedReadChainsAcrossIntron) {
  const auto& w = world();
  // Build a read spanning an exon-exon junction of a real gene.
  const Annotation& annotation = w.synthesizer->annotation();
  const Gene* multi_exon = nullptr;
  for (const Gene& gene : annotation.genes()) {
    if (gene.exons.size() >= 2 && gene.exons[0].length() >= 50 &&
        gene.exons[1].length() >= 50) {
      multi_exon = &gene;
      break;
    }
  }
  ASSERT_NE(multi_exon, nullptr);
  const std::string& chrom = w.r111.contig(multi_exon->contig).sequence;
  const std::string read =
      chrom.substr(multi_exon->exons[0].end - 50, 50) +
      chrom.substr(multi_exon->exons[1].start, 50);

  const auto hits = align_one(w.index111, read);
  ASSERT_FALSE(hits.empty());
  const AlignmentHit* best = &hits[0];
  for (const auto& hit : hits) {
    if (hit.score > best->score) best = &hit;
  }
  EXPECT_GE(best->score, 95u);
  // The alignment must be spliced: two segments with a genomic gap equal
  // to the intron length.
  ASSERT_GE(best->segments.size(), 2u);
  const AlignedSegment& first = best->segments.front();
  const AlignedSegment& last = best->segments.back();
  const u64 genomic_span =
      last.text_start + last.length - first.text_start;
  EXPECT_GT(genomic_span, 100u) << "alignment should span the intron";
}

TEST(Extend, SegmentsAscendAndMatchRead) {
  const auto& w = world();
  const std::string read = w.r111.contig(1).sequence.substr(7'777, 100);
  const auto hits = align_one(w.index111, read);
  ASSERT_FALSE(hits.empty());
  for (const auto& hit : hits) {
    for (usize s = 1; s < hit.segments.size(); ++s) {
      EXPECT_GE(hit.segments[s].read_start,
                hit.segments[s - 1].read_start + hit.segments[s - 1].length);
      EXPECT_GE(hit.segments[s].text_start,
                hit.segments[s - 1].text_start + hit.segments[s - 1].length);
    }
    EXPECT_EQ(hit.text_pos, hit.segments.front().text_start);
  }
}

TEST(Extend, NoSeedsNoHits) {
  const auto& w = world();
  AlignerParams params;
  ExtendStats stats;
  const auto hits =
      score_windows(w.index111, "ACGT", {}, false, params, stats);
  EXPECT_TRUE(hits.empty());
  EXPECT_EQ(stats.windows_scored, 0u);
}

TEST(Extend, Release108ProducesMoreWindows) {
  const auto& w = world();
  const std::string read = w.r111.contig(0).sequence.substr(22'000, 100);
  ExtendStats stats108;
  ExtendStats stats111;
  align_one(w.index108, read, &stats108);
  align_one(w.index111, read, &stats111);
  // The same read hits scaffold near-copies in the 108-style assembly.
  EXPECT_GE(stats108.windows_scored, stats111.windows_scored);
}

TEST(Extend, ReverseFlagPropagates) {
  const auto& w = world();
  const std::string read = w.r111.contig(0).sequence.substr(18'000, 80);
  AlignerParams params;
  const SeedSearchResult seeds = find_seeds(w.index111, read, params);
  ExtendStats stats;
  const auto hits =
      score_windows(w.index111, read, seeds.seeds, true, params, stats);
  ASSERT_FALSE(hits.empty());
  for (const auto& hit : hits) EXPECT_TRUE(hit.reverse);
}

}  // namespace
}  // namespace staratlas
