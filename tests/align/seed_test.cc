#include "align/seed.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "testutil.h"

namespace staratlas {
namespace {

using staratlas::testing::world;

TEST(SeedSearch, ExactReadYieldsGridSeeds) {
  const auto& w = world();
  const std::string read = w.r111.contig(0).sequence.substr(10'000, 100);
  AlignerParams params;
  const SeedSearchResult result = find_seeds(w.index111, read, params);
  // One full-length MMP from offset 0 plus one per later grid start.
  ASSERT_GE(result.seeds.size(), 2u);
  EXPECT_EQ(result.seeds[0].read_offset, 0u);
  EXPECT_EQ(result.seeds[0].length, 100u);
  bool has_grid_seed = false;
  for (const Seed& seed : result.seeds) {
    if (seed.read_offset == params.seed_search_start_lmax) has_grid_seed = true;
  }
  EXPECT_TRUE(has_grid_seed);
}

TEST(SeedSearch, ErrorSplitsRead) {
  const auto& w = world();
  std::string read = w.r111.contig(0).sequence.substr(20'000, 100);
  // Introduce a mismatch at position 40 (flip the base).
  read[40] = read[40] == 'A' ? 'C' : 'A';
  AlignerParams params;
  const SeedSearchResult result = find_seeds(w.index111, read, params);
  // First MMP stops at/near the error; a later seed resumes past it.
  ASSERT_GE(result.seeds.size(), 2u);
  EXPECT_EQ(result.seeds[0].read_offset, 0u);
  EXPECT_LE(result.seeds[0].length, 41u);
  bool covers_tail = false;
  for (const Seed& seed : result.seeds) {
    if (seed.read_offset + seed.length >= 95) covers_tail = true;
  }
  EXPECT_TRUE(covers_tail);
}

TEST(SeedSearch, JunkReadYieldsNoSeeds) {
  const auto& w = world();
  // Alternating motif absent from a random-ish genome at length >= 18.
  const std::string read =
      "CCCCCCGGGGGGCCCCCCGGGGGGCCCCCCGGGGGGCCCCCCGGGGGGCCCC";
  AlignerParams params;
  const SeedSearchResult result = find_seeds(w.index111, read, params);
  EXPECT_TRUE(result.seeds.empty());
  EXPECT_GT(result.mmp_calls, 1u);  // it kept trying along the read
}

TEST(SeedSearch, RespectsMaxSeeds) {
  const auto& w = world();
  const std::string read = w.r111.contig(0).sequence.substr(30'000, 100);
  AlignerParams params;
  params.max_seeds_per_read = 1;
  const SeedSearchResult result = find_seeds(w.index111, read, params);
  EXPECT_EQ(result.seeds.size(), 1u);
}

TEST(SeedSearch, MinLengthFiltersShortMatches) {
  const auto& w = world();
  const std::string genome_piece = w.r111.contig(0).sequence.substr(40'000, 100);
  AlignerParams params;
  params.seed_min_length = 101;  // longer than the read: nothing qualifies
  const SeedSearchResult result = find_seeds(w.index111, genome_piece, params);
  EXPECT_TRUE(result.seeds.empty());
}

TEST(SeedSearch, SeedIntervalsContainTrueLocus) {
  const auto& w = world();
  const u64 planted = 15'000;
  const std::string read = w.r111.contig(1).sequence.substr(planted, 80);
  AlignerParams params;
  const SeedSearchResult result = find_seeds(w.index111, read, params);
  ASSERT_FALSE(result.seeds.empty());
  const Seed& seed = result.seeds[0];
  bool found = false;
  for (u32 row = seed.interval.lo; row < seed.interval.hi; ++row) {
    const ContigLocus locus =
        w.index111.locate(w.index111.sa_position(row));
    if (locus.contig == 1 && locus.offset == planted) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(SeedSearch, WorkCountersPopulated) {
  const auto& w = world();
  const std::string read = w.r111.contig(0).sequence.substr(50'000, 100);
  const SeedSearchResult result = find_seeds(w.index111, read, AlignerParams{});
  EXPECT_GT(result.mmp_calls, 0u);
  EXPECT_GT(result.chars_matched, 90u);
}

}  // namespace
}  // namespace staratlas
