// Scalar/SIMD parity: every compiled X-drop kernel variant must return
// bit-identical ScanResults to the scalar reference on fuzzed inputs, and
// the batched alignment path (find_seeds_batch / Aligner::align_batch)
// must reproduce the per-read path exactly — outcomes, scores, hits,
// segments, and every work counter. These are the invariants that let the
// FIG3/FIG4 experiment outputs stay bit-identical across SIMD levels and
// batch shapes.
#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "align/aligner.h"
#include "align/extend.h"
#include "align/seed.h"
#include "align/workspace.h"
#include "common/rng.h"
#include "common/simd.h"
#include "sim/library_profile.h"
#include "sim/read_simulator.h"
#include "testutil.h"

namespace staratlas {
namespace {

using staratlas::testing::world;
using xdrop_kernels::ScanFn;
using xdrop_kernels::ScanResult;

std::string random_seq(Rng& rng, usize len) {
  std::string s;
  s.reserve(len);
  for (usize i = 0; i < len; ++i) s.push_back("ACGT"[rng.uniform(4)]);
  return s;
}

/// Copies `t` and flips each base with probability `p`, producing query/
/// text pairs whose mismatch density spans all-match to all-mismatch.
std::string corrupt(const std::string& t, Rng& rng, double p) {
  std::string q = t;
  for (char& c : q) {
    if (rng.chance(p)) c = "ACGT"[rng.uniform(4)];
  }
  return q;
}

void expect_scan_eq(const ScanResult& got, const ScanResult& want,
                    const char* what, usize trial) {
  EXPECT_EQ(got.best_matched, want.best_matched) << what << " trial " << trial;
  EXPECT_EQ(got.best_len, want.best_len) << what << " trial " << trial;
  EXPECT_EQ(got.compared, want.compared) << what << " trial " << trial;
}

TEST(SimdParity, XdropKernelsMatchScalarOnFuzzedInputs) {
  const ScanFn fwd_scalar = xdrop_kernels::fwd_kernel(SimdLevel::kScalar);
  const ScanFn bwd_scalar = xdrop_kernels::bwd_kernel(SimdLevel::kScalar);
  ASSERT_NE(fwd_scalar, nullptr);
  ASSERT_NE(bwd_scalar, nullptr);

  const SimdLevel levels[] = {SimdLevel::kSse2, SimdLevel::kAvx2};
  const double densities[] = {0.0, 0.02, 0.1, 0.5, 1.0};
  const int xdrops[] = {1, 8, 100};

  Rng rng(0xf022);
  int exercised = 0;
  for (usize trial = 0; trial < 400; ++trial) {
    const usize len = rng.uniform(301);  // 0..300: tails, strips, multi-strip
    const std::string t = random_seq(rng, len);
    const std::string q =
        corrupt(t, rng, densities[trial % std::size(densities)]);
    const int xdrop = xdrops[trial % 3];

    const ScanResult fwd_want = fwd_scalar(q.data(), t.data(), len, xdrop);
    // Backward kernels take pointers one past the bases they compare.
    const ScanResult bwd_want =
        bwd_scalar(q.data() + len, t.data() + len, len, xdrop);
    EXPECT_LE(fwd_want.compared, len);
    EXPECT_LE(bwd_want.compared, len);

    for (const SimdLevel level : levels) {
      const ScanFn fwd = xdrop_kernels::fwd_kernel(level);
      const ScanFn bwd = xdrop_kernels::bwd_kernel(level);
      if (fwd == nullptr || bwd == nullptr) continue;  // not in this build
      ++exercised;
      expect_scan_eq(fwd(q.data(), t.data(), len, xdrop), fwd_want,
                     simd_level_name(level), trial);
      expect_scan_eq(bwd(q.data() + len, t.data() + len, len, xdrop),
                     bwd_want, simd_level_name(level), trial);
    }
  }
#ifdef STARATLAS_X86_SIMD
  EXPECT_GT(exercised, 0) << "x86 build compiled no SIMD variant";
#endif
}

TEST(SimdParity, XdropKernelsMatchScalarOnAdversarialShapes) {
  // Mismatches planted exactly at strip boundaries (15/16/17, 31/32/33...)
  // and runs that straddle them — the cases where a strip-local scan could
  // diverge from the run-based scalar loop.
  const ScanFn fwd_scalar = xdrop_kernels::fwd_kernel(SimdLevel::kScalar);
  const ScanFn bwd_scalar = xdrop_kernels::bwd_kernel(SimdLevel::kScalar);
  const usize boundaries[] = {0,  1,  14, 15, 16, 17, 30, 31, 32,
                              33, 47, 48, 63, 64, 65, 95, 96, 97};
  const usize len = 128;
  for (const usize at : boundaries) {
    for (const int xdrop : {1, 3, 8, 100}) {
      std::string t(len, 'A');
      std::string q = t;
      q[at] = 'C';  // single mismatch at the boundary
      if (at + 1 < len) q[at + 1] = 'C';  // and a 2-run variant next to it
      const ScanResult fwd_want = fwd_scalar(q.data(), t.data(), len, xdrop);
      const ScanResult bwd_want =
          bwd_scalar(q.data() + len, t.data() + len, len, xdrop);
      for (const SimdLevel level : {SimdLevel::kSse2, SimdLevel::kAvx2}) {
        const ScanFn fwd = xdrop_kernels::fwd_kernel(level);
        const ScanFn bwd = xdrop_kernels::bwd_kernel(level);
        if (fwd == nullptr || bwd == nullptr) continue;
        expect_scan_eq(fwd(q.data(), t.data(), len, xdrop), fwd_want,
                       simd_level_name(level), at);
        expect_scan_eq(bwd(q.data() + len, t.data() + len, len, xdrop),
                       bwd_want, simd_level_name(level), at);
      }
    }
  }
}

void expect_seed_results_eq(const SeedSearchResult& batch,
                            const SeedSearchResult& solo, usize read) {
  EXPECT_EQ(batch.mmp_calls, solo.mmp_calls) << "read " << read;
  EXPECT_EQ(batch.chars_matched, solo.chars_matched) << "read " << read;
  ASSERT_EQ(batch.seeds.size(), solo.seeds.size()) << "read " << read;
  for (usize s = 0; s < solo.seeds.size(); ++s) {
    EXPECT_EQ(batch.seeds[s].read_offset, solo.seeds[s].read_offset);
    EXPECT_EQ(batch.seeds[s].length, solo.seeds[s].length);
    EXPECT_EQ(batch.seeds[s].interval.lo, solo.seeds[s].interval.lo);
    EXPECT_EQ(batch.seeds[s].interval.hi, solo.seeds[s].interval.hi);
  }
}

TEST(SimdParity, FindSeedsBatchMatchesPerReadFindSeeds) {
  const auto& w = world();
  const AlignerParams params;
  const ReadSet reads =
      w.simulator->simulate(bulk_rna_profile(), 300, Rng(4242));

  std::vector<std::string_view> views;
  for (const auto& read : reads.reads) views.push_back(read.sequence);

  std::vector<SeedSearchResult> batch(views.size());
  SeedBatchScratch scratch;
  find_seeds_batch(w.index111, views, params, batch, scratch);

  SeedSearchResult solo;
  for (usize i = 0; i < views.size(); ++i) {
    find_seeds(w.index111, views[i], params, solo);
    expect_seed_results_eq(batch[i], solo, i);
  }
}

void expect_alignments_eq(const ReadAlignment& batch,
                          const ReadAlignment& solo, usize read) {
  EXPECT_EQ(batch.outcome, solo.outcome) << "read " << read;
  EXPECT_EQ(batch.best_score, solo.best_score) << "read " << read;
  EXPECT_EQ(batch.num_loci, solo.num_loci) << "read " << read;
  EXPECT_EQ(batch.repetitive_capped, solo.repetitive_capped) << "read " << read;
  ASSERT_EQ(batch.hits.size(), solo.hits.size()) << "read " << read;
  for (usize h = 0; h < solo.hits.size(); ++h) {
    EXPECT_EQ(batch.hits[h].text_pos, solo.hits[h].text_pos);
    EXPECT_EQ(batch.hits[h].reverse, solo.hits[h].reverse);
    EXPECT_EQ(batch.hits[h].score, solo.hits[h].score);
    ASSERT_EQ(batch.hits[h].segments.size(), solo.hits[h].segments.size());
    for (usize s = 0; s < solo.hits[h].segments.size(); ++s) {
      EXPECT_EQ(batch.hits[h].segments[s].read_start,
                solo.hits[h].segments[s].read_start);
      EXPECT_EQ(batch.hits[h].segments[s].text_start,
                solo.hits[h].segments[s].text_start);
      EXPECT_EQ(batch.hits[h].segments[s].length,
                solo.hits[h].segments[s].length);
    }
  }
}

TEST(SimdParity, AlignBatchMatchesPerReadAlign) {
  const auto& w = world();
  const Aligner aligner(w.index111, AlignerParams{});
  const ReadSet reads =
      w.simulator->simulate(bulk_rna_profile(), 300, Rng(31337));

  // Per-read reference path.
  AlignWorkspace solo_ws;
  MappingStats solo_stats;
  std::vector<ReadAlignment> solo(reads.reads.size());
  for (usize i = 0; i < reads.reads.size(); ++i) {
    aligner.align(reads.reads[i].sequence, solo_ws, solo_stats, solo[i]);
  }

  // Batched path, in uneven chunk sizes (partial lanes, sub-lane chunks).
  AlignWorkspace batch_ws;
  MappingStats batch_stats;
  std::vector<ReadAlignment> batch(reads.reads.size());
  std::vector<std::string_view> views;
  usize begin = 0;
  const usize chunks[] = {1, 7, 64, 100, 128};
  for (usize c = 0; begin < reads.reads.size(); ++c) {
    const usize count =
        std::min(chunks[c % 5], reads.reads.size() - begin);
    views.clear();
    for (usize i = begin; i < begin + count; ++i) {
      views.push_back(reads.reads[i].sequence);
    }
    aligner.align_batch(views, batch_ws, batch_stats,
                        std::span(batch).subspan(begin, count));
    begin += count;
  }

  for (usize i = 0; i < reads.reads.size(); ++i) {
    expect_alignments_eq(batch[i], solo[i], i);
  }
  EXPECT_EQ(batch_stats.processed, solo_stats.processed);
  EXPECT_EQ(batch_stats.unique, solo_stats.unique);
  EXPECT_EQ(batch_stats.multi, solo_stats.multi);
  EXPECT_EQ(batch_stats.too_many, solo_stats.too_many);
  EXPECT_EQ(batch_stats.unmapped, solo_stats.unmapped);
  EXPECT_EQ(batch_stats.seeds_generated, solo_stats.seeds_generated);
  EXPECT_EQ(batch_stats.windows_scored, solo_stats.windows_scored);
  EXPECT_EQ(batch_stats.bases_compared, solo_stats.bases_compared);
}

}  // namespace
}  // namespace staratlas
