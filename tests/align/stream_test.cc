// run_stream must be a drop-in for run(): identical outcomes, stats, gene
// counts and junctions at every thread count, an early-stop abort landing
// on the same committed read count, bounded peak ingest memory, and an
// allocation-free steady state on the consumer side.
#include <gtest/gtest.h>

#include "align/engine.h"
#include "common/alloc_counter.h"
#include "common/error.h"
#include "sim/library_profile.h"
#include "sim/read_simulator.h"
#include "testutil.h"

namespace staratlas {
namespace {

using staratlas::testing::world;

ReadSet stream_reads(usize n = 600, u64 seed = 4242) {
  const auto& w = world();
  return w.simulator->simulate(bulk_rna_profile(), n, Rng(seed));
}

EngineConfig stream_config(usize num_threads) {
  EngineConfig config;
  config.num_threads = num_threads;
  config.chunk_size = 32;
  config.collect_junctions = true;
  return config;
}

void expect_identical(const AlignmentRun& a, const AlignmentRun& b,
                      const std::string& label) {
  SCOPED_TRACE(label);
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (usize i = 0; i < a.outcomes.size(); ++i) {
    ASSERT_EQ(a.outcomes[i], b.outcomes[i]) << "read " << i;
  }
  EXPECT_EQ(a.stats.processed, b.stats.processed);
  EXPECT_EQ(a.stats.unique, b.stats.unique);
  EXPECT_EQ(a.stats.multi, b.stats.multi);
  EXPECT_EQ(a.stats.too_many, b.stats.too_many);
  EXPECT_EQ(a.stats.unmapped, b.stats.unmapped);
  EXPECT_EQ(a.stats.seeds_generated, b.stats.seeds_generated);
  EXPECT_EQ(a.stats.windows_scored, b.stats.windows_scored);
  EXPECT_EQ(a.stats.bases_compared, b.stats.bases_compared);

  ASSERT_EQ(a.gene_counts.per_gene.size(), b.gene_counts.per_gene.size());
  for (usize g = 0; g < a.gene_counts.per_gene.size(); ++g) {
    ASSERT_EQ(a.gene_counts.per_gene[g], b.gene_counts.per_gene[g])
        << "gene " << g;
  }
  EXPECT_EQ(a.gene_counts.n_unmapped, b.gene_counts.n_unmapped);
  EXPECT_EQ(a.gene_counts.n_multimapping, b.gene_counts.n_multimapping);
  EXPECT_EQ(a.gene_counts.n_no_feature, b.gene_counts.n_no_feature);
  EXPECT_EQ(a.gene_counts.n_ambiguous, b.gene_counts.n_ambiguous);

  ASSERT_EQ(a.junctions.size(), b.junctions.size());
  for (usize j = 0; j < a.junctions.size(); ++j) {
    EXPECT_EQ(a.junctions[j].contig, b.junctions[j].contig) << "junction " << j;
    EXPECT_EQ(a.junctions[j].intron_start, b.junctions[j].intron_start)
        << "junction " << j;
    EXPECT_EQ(a.junctions[j].intron_end, b.junctions[j].intron_end)
        << "junction " << j;
    EXPECT_EQ(a.junctions[j].unique_reads, b.junctions[j].unique_reads)
        << "junction " << j;
    EXPECT_EQ(a.junctions[j].multi_reads, b.junctions[j].multi_reads)
        << "junction " << j;
    EXPECT_EQ(a.junctions[j].max_overhang, b.junctions[j].max_overhang)
        << "junction " << j;
  }
}

TEST(Stream, MatchesBatchRunAcrossThreadCounts) {
  const auto& w = world();
  const ReadSet reads = stream_reads();

  AlignmentEngine batch_engine(w.index111, &w.synthesizer->annotation(),
                               stream_config(1));
  const AlignmentRun reference = batch_engine.run(reads);

  for (const usize threads : {usize{1}, usize{4}, usize{8}}) {
    AlignmentEngine engine(w.index111, &w.synthesizer->annotation(),
                           stream_config(threads));
    const AlignmentRun streamed = engine.run_stream_reads(reads, 32);
    expect_identical(reference, streamed,
                     "threads=" + std::to_string(threads));
    EXPECT_FALSE(streamed.aborted);
    EXPECT_EQ(streamed.stream_batches, (reads.size() + 31) / 32);
  }
}

TEST(Stream, EarlyStopAbortsAtIdenticalReadCount) {
  const auto& w = world();
  const ReadSet reads = stream_reads();

  // Abort at the first checkpoint: batch mode on one thread defines the
  // reference processed count; in-order commit must reproduce it exactly
  // at every thread count.
  auto abort_at_first = [](const ProgressSnapshot&) {
    return EngineCommand::kAbort;
  };
  EngineConfig reference_config = stream_config(1);
  reference_config.progress_check_interval = 100;
  AlignmentEngine batch_engine(w.index111, &w.synthesizer->annotation(),
                               reference_config);
  const AlignmentRun reference = batch_engine.run(reads, abort_at_first);
  ASSERT_TRUE(reference.aborted);
  ASSERT_LT(reference.stats.processed, reads.size());

  for (const usize threads : {usize{1}, usize{4}, usize{8}}) {
    EngineConfig config = stream_config(threads);
    config.progress_check_interval = 100;
    AlignmentEngine engine(w.index111, &w.synthesizer->annotation(), config);
    const AlignmentRun streamed =
        engine.run_stream_reads(reads, config.chunk_size, abort_at_first);
    expect_identical(reference, streamed,
                     "abort threads=" + std::to_string(threads));
    EXPECT_TRUE(streamed.aborted);
  }
}

TEST(Stream, ReusedEngineInterleavesRunAndRunStream) {
  const auto& w = world();
  const ReadSet sample_a = stream_reads(400, 7);
  const ReadSet sample_b = stream_reads(250, 8);

  AlignmentEngine engine(w.index111, &w.synthesizer->annotation(),
                         stream_config(4));
  const AlignmentRun a_batch = engine.run(sample_a);
  const AlignmentRun b_stream = engine.run_stream_reads(sample_b, 32);
  const AlignmentRun a_stream = engine.run_stream_reads(sample_a, 32);
  const AlignmentRun b_batch = engine.run(sample_b);

  expect_identical(a_batch, a_stream, "sample_a batch vs stream");
  expect_identical(b_batch, b_stream, "sample_b batch vs stream");
}

TEST(Stream, ConsumerSideIsAllocationFreeAtSteadyState) {
  const auto& w = world();
  const ReadSet reads = stream_reads(500, 99);

  // Gene counting and junction collection merge into heap-backed tables
  // by design; the allocation-free claim is about the align/commit path.
  // One consumer thread pins the whole stream to one workspace: with
  // several consumers the scheduler decides which workspaces see work, so
  // a workspace left cold by the warm run can take batches in the
  // measured run and its first-touch growth would read as a steady-state
  // allocation. (The producer still runs on its own thread.)
  EngineConfig config;
  config.num_threads = 1;
  config.quant_gene_counts = false;
  config.collect_junctions = false;
  AlignmentEngine engine(w.index111, nullptr, config);

  // First run warms every slot arena, outcome buffer and workspace to the
  // workload's high-water marks.
  engine.run_stream_reads(reads, 64);
  const AlignmentRun warm = engine.run_stream_reads(reads, 64);
  EXPECT_EQ(warm.stream_consumer_allocs, 0u)
      << "streaming consumer path allocated at steady state";
  EXPECT_EQ(warm.stats.processed, reads.size());
}

TEST(Stream, PeakIngestMemoryBoundedByQueueDepth) {
  const auto& w = world();
  const ReadSet reads = stream_reads(2'000, 11);

  EngineConfig config;
  config.num_threads = 4;
  config.quant_gene_counts = false;
  config.stream_queue_depth = 4;
  AlignmentEngine engine(w.index111, nullptr, config);
  const AlignmentRun run = engine.run_stream_reads(reads, 50);

  EXPECT_EQ(run.stats.processed, reads.size());
  ASSERT_GT(run.stream_peak_arena_bytes, 0u);
  // 4 slots x 50 reads in flight out of 2000: the resident batch arenas
  // must stay well under the whole decoded FASTQ.
  EXPECT_LT(run.stream_peak_arena_bytes, reads.fastq_bytes.bytes());
}

TEST(Stream, EmptyStreamCompletesCleanly) {
  const auto& w = world();
  EngineConfig config;
  config.num_threads = 2;
  config.quant_gene_counts = false;
  AlignmentEngine engine(w.index111, nullptr, config);
  const BatchSource empty = [](ReadBatch&) { return false; };
  const AlignmentRun run = engine.run_stream(empty, 0);
  EXPECT_EQ(run.stats.processed, 0u);
  EXPECT_FALSE(run.aborted);
  EXPECT_TRUE(run.outcomes.empty());
  EXPECT_EQ(run.stream_batches, 0u);
}

TEST(Stream, ProducerExceptionPropagates) {
  const auto& w = world();
  const ReadSet reads = stream_reads(100, 3);
  EngineConfig config;
  config.num_threads = 2;
  config.quant_gene_counts = false;
  AlignmentEngine engine(w.index111, nullptr, config);
  usize calls = 0;
  const BatchSource flaky = [&](ReadBatch& batch) {
    if (++calls == 3) throw IoError("decoder blew up");
    for (usize i = 0; i < 10; ++i) {
      const auto& rec = reads.reads[(calls - 1) * 10 + i];
      batch.append(rec.name, rec.sequence, rec.quality);
    }
    return true;
  };
  EXPECT_THROW(engine.run_stream(flaky, reads.size()), IoError);
  // The engine must be reusable after a producer failure.
  const AlignmentRun run = engine.run_stream_reads(reads, 16);
  EXPECT_EQ(run.stats.processed, reads.size());
}

}  // namespace
}  // namespace staratlas
