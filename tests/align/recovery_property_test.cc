// Property sweep: reads planted at known genomic positions must be
// recovered by the aligner across releases, read lengths and error rates —
// the end-to-end correctness invariant everything else rests on.
#include <gtest/gtest.h>

#include "align/aligner.h"
#include "common/rng.h"
#include "index/packed_sequence.h"
#include "testutil.h"

namespace staratlas {
namespace {

using staratlas::testing::world;

struct RecoveryCase {
  int release;        // 108 or 111
  usize read_length;  // planted read length
  double error_rate;  // per-base substitutions applied
  double min_recovery;  // required fraction located at the planted locus
};

class PlantedReadRecovery : public ::testing::TestWithParam<RecoveryCase> {};

TEST_P(PlantedReadRecovery, FindsPlantedLocus) {
  const RecoveryCase param = GetParam();
  const auto& w = world();
  const GenomeIndex& index = param.release == 108 ? w.index108 : w.index111;
  const Aligner aligner(index, AlignerParams{});
  Rng rng(static_cast<u64>(param.release) * 1'000 + param.read_length);
  static const char kBases[] = "ACGT";

  const usize trials = 60;
  usize recovered = 0;
  for (usize trial = 0; trial < trials; ++trial) {
    // Plant within the gene zone of a random chromosome (repeat tails are
    // legitimately ambiguous).
    const auto contig = static_cast<ContigId>(
        rng.uniform(w.spec.num_chromosomes));
    const std::string& chrom = w.r111.contig(contig).sequence;
    const u64 zone = w.spec.chromosome_length * 70 / 100;
    const u64 pos = rng.uniform(zone - param.read_length);
    std::string read = chrom.substr(pos, param.read_length);
    for (auto& c : read) {
      if (rng.chance(param.error_rate)) c = kBases[rng.uniform(4)];
    }
    if (rng.chance(0.5)) read = reverse_complement(read);

    MappingStats work;
    const ReadAlignment result = aligner.align(read, work);
    if (result.hits.empty()) continue;
    // Recovered if ANY reported hit is the planted locus.
    for (const AlignmentHit& hit : result.hits) {
      const ContigLocus locus = index.locate(hit.text_pos);
      if (locus.contig == contig &&
          locus.offset + 5 >= pos && locus.offset <= pos + 5) {
        ++recovered;
        break;
      }
    }
  }
  EXPECT_GE(static_cast<double>(recovered),
            param.min_recovery * static_cast<double>(trials))
      << "recovered " << recovered << "/" << trials;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PlantedReadRecovery,
    ::testing::Values(
        // Error-free reads: near-perfect recovery on both releases.
        RecoveryCase{111, 100, 0.0, 0.98},
        RecoveryCase{108, 100, 0.0, 0.98},
        RecoveryCase{111, 50, 0.0, 0.95},
        RecoveryCase{108, 50, 0.0, 0.95},
        RecoveryCase{111, 150, 0.0, 0.98},
        // Realistic sequencing error.
        RecoveryCase{111, 100, 0.005, 0.95},
        RecoveryCase{108, 100, 0.005, 0.95},
        // Heavy error: still mostly recoverable at 100 bp.
        RecoveryCase{111, 100, 0.02, 0.85},
        RecoveryCase{108, 100, 0.02, 0.85},
        // Short + noisy is the hardest corner.
        RecoveryCase{111, 50, 0.01, 0.80}),
    [](const ::testing::TestParamInfo<RecoveryCase>& info) {
      const RecoveryCase& param = info.param;
      return "r" + std::to_string(param.release) + "_len" +
             std::to_string(param.read_length) + "_err" +
             std::to_string(static_cast<int>(param.error_rate * 1'000));
    });

}  // namespace
}  // namespace staratlas
