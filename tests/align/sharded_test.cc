// Scatter/gather determinism: align_sharded must reproduce the unsharded
// run BYTE-IDENTICALLY — gene counts TSV, junctions TSV, progress log and
// final log (wall time pinned) — for every shard/thread combination, with
// shard-local progress denominators and single-flight index attachment.
#include "align/sharded.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "align/final_log.h"
#include "align/junctions.h"
#include "common/error.h"
#include "io/fastq.h"
#include "sim/read_simulator.h"
#include "testutil.h"

namespace staratlas {
namespace {

using staratlas::testing::world;

std::string sample_fastq(usize n = 600, u64 seed = 4242) {
  const auto& w = world();
  const ReadSet reads = w.simulator->simulate(bulk_rna_profile(), n, Rng(seed));
  std::ostringstream out;
  write_fastq(out, reads.reads);
  return out.str();
}

ShardedConfig sharded_config(usize num_shards, usize num_threads) {
  ShardedConfig config;
  config.engine.num_threads = num_threads;
  config.engine.collect_junctions = true;
  config.engine.progress_check_interval = 64;
  config.num_shards = num_shards;
  config.batch_reads = 32;
  return config;
}

/// Renders every deterministic artifact of a run into one string; byte
/// equality of this is the PR's acceptance bar. Wall time is pinned to 0
/// so the final log's "Mapping speed" row is comparable.
std::string render_artifacts(AlignmentRun run, u64 total_reads) {
  const auto& w = world();
  run.wall_seconds = 0.0;
  std::string out;
  out += "== final ==\n" + render_final_log(run, total_reads, 100.0);
  out += "== progress ==\n" + run.progress_log.render();
  std::ostringstream counts;
  run.gene_counts.write_tsv(counts, w.synthesizer->annotation());
  out += "== counts ==\n" + counts.str();
  std::ostringstream sj;
  write_junctions_tsv(sj, run.junctions, w.index111);
  out += "== junctions ==\n" + sj.str();
  return out;
}

void expect_same_outcomes(const AlignmentRun& a, const AlignmentRun& b) {
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (usize i = 0; i < a.outcomes.size(); ++i) {
    ASSERT_EQ(a.outcomes[i], b.outcomes[i]) << "read " << i;
  }
}

TEST(Sharded, ByteIdenticalToUnshardedAcrossShardAndThreadCounts) {
  const auto& w = world();
  const std::string fastq = sample_fastq();
  const Annotation* annotation = &w.synthesizer->annotation();

  const AlignmentRun reference = align_unsharded_reference(
      fastq, w.index111, annotation, sharded_config(1, 1));
  ASSERT_EQ(reference.stats.processed, 600u);
  ASSERT_FALSE(reference.progress_log.entries().empty());
  const std::string want = render_artifacts(reference, 600);

  for (const usize shards : {usize{1}, usize{2}, usize{4}, usize{8}}) {
    for (const usize threads : {usize{1}, usize{4}}) {
      SCOPED_TRACE("shards=" + std::to_string(shards) +
                   " threads=" + std::to_string(threads));
      const ShardedRun run = align_sharded(
          fastq, w.index111, annotation, sharded_config(shards, threads));
      EXPECT_EQ(run.plan.num_shards(), shards);
      EXPECT_EQ(run.global_check_interval, 64u);
      EXPECT_EQ(run.merged.stats.processed, 600u);
      expect_same_outcomes(reference, run.merged);
      EXPECT_EQ(render_artifacts(run.merged, run.plan.total_reads), want);
      AlignmentRun pinned = run.merged;
      pinned.wall_seconds = 0.0;
      EXPECT_EQ(render_sharded_final_log({run.plan, pinned, {}, 0, 0.0}, 100.0),
                render_final_log(pinned, 600, 100.0));
    }
  }
}

TEST(Sharded, ShardProgressUsesShardLocalDenominator) {
  // Regression: per-shard trackers used to be built with the sample's
  // total read count, so a shard's %complete topped out at 1/num_shards.
  const auto& w = world();
  const std::string fastq = sample_fastq(320, 7);
  const ShardedRun run = align_sharded(fastq, w.index111,
                                       &w.synthesizer->annotation(),
                                       sharded_config(4, 1));
  for (usize s = 0; s < run.plan.num_shards(); ++s) {
    SCOPED_TRACE("shard " + std::to_string(s));
    const ShardRange& range = run.plan.ranges[s];
    const auto& entries = run.shard_runs[s].progress_log.entries();
    ASSERT_FALSE(entries.empty());
    for (const ProgressSnapshot& snap : entries) {
      EXPECT_EQ(snap.total_reads, range.num_reads);
    }
    EXPECT_EQ(entries.back().processed, range.num_reads);
    EXPECT_DOUBLE_EQ(entries.back().fraction_processed(), 1.0);
  }
}

TEST(Sharded, MergeIsDeterministicAcrossRepeats) {
  const auto& w = world();
  const std::string fastq = sample_fastq(400, 11);
  const Annotation* annotation = &w.synthesizer->annotation();
  std::string first;
  for (int repeat = 0; repeat < 3; ++repeat) {
    const ShardedRun run =
        align_sharded(fastq, w.index111, annotation, sharded_config(4, 4));
    const std::string artifacts =
        render_artifacts(run.merged, run.plan.total_reads);
    if (repeat == 0) {
      first = artifacts;
    } else {
      EXPECT_EQ(artifacts, first) << "repeat " << repeat;
    }
  }
}

TEST(Sharded, WorkersAttachSharedIndexSingleFlight) {
  // N workers, one load: the in-process analog of FaaS workers attaching
  // one pre-staged v3 index instead of each downloading their own copy.
  const auto& w = world();
  const std::string path = ::testing::TempDir() + "staratlas_shard_index.v3";
  w.index111.save_file(path);

  const std::string fastq = sample_fastq(200, 21);
  const Annotation* annotation = &w.synthesizer->annotation();
  const ShardedConfig config = sharded_config(4, 1);
  const AlignmentRun reference =
      align_unsharded_reference(fastq, w.index111, annotation, config);

  SharedIndexCache cache(ByteSize::from_gib(4.0));
  const ShardedRun run = align_sharded(
      fastq, cache, "r111",
      [&path] { return GenomeIndex::load_file(path, IndexLoadMode::kMmap); },
      annotation, config);
  EXPECT_EQ(cache.loads(), 1u);
  EXPECT_EQ(cache.hits(), config.num_shards - 1);
  expect_same_outcomes(reference, run.merged);
  EXPECT_EQ(render_artifacts(run.merged, run.plan.total_reads),
            render_artifacts(reference, 200));
}

TEST(Sharded, MoreShardsThanCheckpointsAndEmptyTailShards) {
  // 10 reads over 8 shards: several shards are empty, none contains a
  // checkpoint boundary of its own beyond the planner's snapping; the
  // gather must still reconstruct the reference log exactly.
  const auto& w = world();
  const std::string fastq = sample_fastq(10, 33);
  const Annotation* annotation = &w.synthesizer->annotation();
  ShardedConfig config = sharded_config(8, 1);
  config.engine.progress_check_interval = 4;
  const AlignmentRun reference =
      align_unsharded_reference(fastq, w.index111, annotation, config);
  const ShardedRun run =
      align_sharded(fastq, w.index111, annotation, config);
  expect_same_outcomes(reference, run.merged);
  EXPECT_EQ(render_artifacts(run.merged, run.plan.total_reads),
            render_artifacts(reference, 10));
}

TEST(Sharded, DefaultIntervalResolvesLikeEngine) {
  const auto& w = world();
  const std::string fastq = sample_fastq(150, 5);
  ShardedConfig config = sharded_config(2, 1);
  config.engine.progress_check_interval = 0;  // engine default: total/50
  const ShardedRun run = align_sharded(fastq, w.index111,
                                       &w.synthesizer->annotation(), config);
  EXPECT_EQ(run.global_check_interval, 3u);
  const AlignmentRun reference = align_unsharded_reference(
      fastq, w.index111, &w.synthesizer->annotation(), config);
  EXPECT_EQ(render_artifacts(run.merged, run.plan.total_reads),
            render_artifacts(reference, 150));
}

TEST(Sharded, EmptyInput) {
  const auto& w = world();
  const ShardedRun run = align_sharded(std::string_view{}, w.index111,
                                       &w.synthesizer->annotation(),
                                       sharded_config(4, 2));
  EXPECT_EQ(run.merged.stats.processed, 0u);
  EXPECT_TRUE(run.merged.outcomes.empty());
  EXPECT_TRUE(run.merged.progress_log.entries().empty());
  // Zero-read gather still renders a full-shape final log.
  const std::string log = render_sharded_final_log(run, 0.0);
  EXPECT_NE(log.find("Mapping speed"), std::string::npos);
}

}  // namespace
}  // namespace staratlas
