#include "align/junctions.h"

#include <gtest/gtest.h>

#include <sstream>

#include "align/engine.h"
#include "common/error.h"
#include "sim/read_simulator.h"
#include "testutil.h"

namespace staratlas {
namespace {

using staratlas::testing::world;

ReadAlignment alignment_with(std::vector<AlignedSegment> segments,
                             ReadOutcome outcome) {
  ReadAlignment alignment;
  alignment.outcome = outcome;
  AlignmentHit hit;
  hit.segments.assign(segments.begin(), segments.end());
  hit.text_pos = hit.segments.front().text_start;
  alignment.hits.push_back(hit);
  return alignment;
}

TEST(JunctionCollector, RecordsSplicedGap) {
  const auto& w = world();
  JunctionCollector collector(w.index111);
  collector.add(alignment_with({{0, 1'000, 50}, {50, 1'550, 50}},
                               ReadOutcome::kUniqueMapped));
  const auto junctions = collector.junctions();
  ASSERT_EQ(junctions.size(), 1u);
  EXPECT_EQ(junctions[0].contig, 0u);
  EXPECT_EQ(junctions[0].intron_start, 1'050u);
  EXPECT_EQ(junctions[0].intron_end, 1'550u);
  EXPECT_EQ(junctions[0].intron_length(), 500u);
  EXPECT_EQ(junctions[0].unique_reads, 1u);
  EXPECT_EQ(junctions[0].multi_reads, 0u);
  EXPECT_EQ(junctions[0].max_overhang, 50u);
}

TEST(JunctionCollector, SmallGapIsDeletionNotJunction) {
  const auto& w = world();
  JunctionCollector collector(w.index111, /*min_intron=*/21);
  collector.add(alignment_with({{0, 1'000, 50}, {50, 1'060, 50}},
                               ReadOutcome::kUniqueMapped));
  EXPECT_EQ(collector.size(), 0u);
}

TEST(JunctionCollector, MultiMapperCountsSeparately) {
  const auto& w = world();
  JunctionCollector collector(w.index111);
  collector.add(alignment_with({{0, 1'000, 50}, {50, 1'550, 50}},
                               ReadOutcome::kMultiMapped));
  collector.add(alignment_with({{0, 1'000, 50}, {50, 1'550, 50}},
                               ReadOutcome::kUniqueMapped));
  const auto junctions = collector.junctions();
  ASSERT_EQ(junctions.size(), 1u);
  EXPECT_EQ(junctions[0].unique_reads, 1u);
  EXPECT_EQ(junctions[0].multi_reads, 1u);
}

TEST(JunctionCollector, UnmappedIgnored) {
  const auto& w = world();
  JunctionCollector collector(w.index111);
  ReadAlignment unmapped;
  collector.add(unmapped);
  EXPECT_EQ(collector.size(), 0u);
}

TEST(JunctionCollector, MergeAccumulates) {
  const auto& w = world();
  JunctionCollector a(w.index111);
  JunctionCollector b(w.index111);
  a.add(alignment_with({{0, 1'000, 40}, {40, 1'540, 60}},
                       ReadOutcome::kUniqueMapped));
  b.add(alignment_with({{0, 1'000, 40}, {40, 1'540, 60}},
                       ReadOutcome::kUniqueMapped));
  b.add(alignment_with({{0, 5'000, 50}, {50, 6'000, 50}},
                       ReadOutcome::kUniqueMapped));
  a += b;
  const auto junctions = a.junctions();
  ASSERT_EQ(junctions.size(), 2u);
  EXPECT_EQ(junctions[0].unique_reads, 2u);
  EXPECT_EQ(junctions[1].unique_reads, 1u);
}

TEST(JunctionCollector, MergeRejectsDifferentGenomes) {
  // Regression: += used to merge tables from collectors built against
  // different indexes, silently misaligning contig ids so write_tsv
  // printed the wrong contig names.
  const auto& w = world();
  JunctionCollector on_111(w.index111);
  JunctionCollector on_108(w.index108);
  EXPECT_THROW(on_111 += on_108, InternalError);

  JunctionCollector wider_introns(w.index111, 50);
  EXPECT_THROW(on_111 += wider_introns, InternalError);
}

TEST(JunctionCollector, MergeAcceptsSameGenomeAcrossLoads) {
  // Cross-process shards reference separately loaded copies of the same
  // index file: different objects, equal fingerprints, merge allowed.
  const auto& w = world();
  std::stringstream file;
  w.index111.save(file);
  const GenomeIndex copy = GenomeIndex::load(file);
  ASSERT_NE(&copy, &w.index111);
  EXPECT_EQ(copy.fingerprint(), w.index111.fingerprint());
  EXPECT_NE(copy.fingerprint(), w.index108.fingerprint());

  JunctionCollector a(w.index111);
  JunctionCollector b(copy);
  a.add(alignment_with({{0, 1'000, 40}, {40, 1'540, 60}},
                       ReadOutcome::kUniqueMapped));
  b.add(alignment_with({{0, 1'000, 40}, {40, 1'540, 60}},
                       ReadOutcome::kUniqueMapped));
  EXPECT_NO_THROW(a += b);
  ASSERT_EQ(a.junctions().size(), 1u);
  EXPECT_EQ(a.junctions()[0].unique_reads, 2u);
}

TEST(JunctionCollector, MergeRejectsPackedUnpackedMix) {
  // Regression: the fingerprint must encode the text representation, not
  // just the content samples. A v4 (packed) load and a v3 (raw) load of
  // the SAME genome are still different resident encodings; letting their
  // collectors cross-merge would hide an index-file mixup between shard
  // generations (one fleet upgraded to packed indexes, one not), so the
  // merge guard keeps them apart.
  const auto& w = world();
  std::stringstream raw_file;
  w.index111.save(raw_file, GenomeIndex::kVersionV3);
  const GenomeIndex raw_copy = GenomeIndex::load(raw_file);
  std::stringstream packed_file;
  w.index111.save(packed_file, GenomeIndex::kVersionV4);
  const GenomeIndex packed_copy = GenomeIndex::load(packed_file);
  ASSERT_TRUE(packed_copy.packed_text());
  ASSERT_FALSE(raw_copy.packed_text());

  // Same genome, same content samples — only the encoding differs.
  EXPECT_EQ(raw_copy.fingerprint(), w.index111.fingerprint());
  EXPECT_NE(packed_copy.fingerprint(), raw_copy.fingerprint());

  JunctionCollector on_raw(raw_copy);
  JunctionCollector on_packed(packed_copy);
  EXPECT_THROW(on_raw += on_packed, InternalError);

  // Two packed loads of the same genome still merge: shard fleets that
  // uniformly use v4 behave exactly like the v2/v3 cross-load case above.
  std::stringstream packed_file2;
  w.index111.save(packed_file2, GenomeIndex::kVersionV4);
  const GenomeIndex packed_copy2 = GenomeIndex::load(packed_file2);
  EXPECT_EQ(packed_copy.fingerprint(), packed_copy2.fingerprint());
  JunctionCollector on_packed2(packed_copy2);
  on_packed.add(alignment_with({{0, 1'000, 40}, {40, 1'540, 60}},
                               ReadOutcome::kUniqueMapped));
  on_packed2.add(alignment_with({{0, 1'000, 40}, {40, 1'540, 60}},
                                ReadOutcome::kUniqueMapped));
  EXPECT_NO_THROW(on_packed += on_packed2);
  ASSERT_EQ(on_packed.junctions().size(), 1u);
  EXPECT_EQ(on_packed.junctions()[0].unique_reads, 2u);
}

TEST(JunctionCollector, MergeJunctionsFreeFunction) {
  const auto& w = world();
  JunctionCollector a(w.index111);
  JunctionCollector b(w.index111);
  a.add(alignment_with({{0, 1'000, 40}, {40, 1'540, 60}},
                       ReadOutcome::kUniqueMapped));
  b.add(alignment_with({{0, 1'000, 40}, {40, 1'540, 60}},
                       ReadOutcome::kMultiMapped));
  b.add(alignment_with({{0, 5'000, 50}, {50, 6'000, 50}},
                       ReadOutcome::kUniqueMapped));
  const auto merged = merge_junctions({a.junctions(), b.junctions()});
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].unique_reads, 1u);
  EXPECT_EQ(merged[0].multi_reads, 1u);
  EXPECT_EQ(merged[1].unique_reads, 1u);

  // Merge order does not change the result.
  const auto reversed = merge_junctions({b.junctions(), a.junctions()});
  ASSERT_EQ(reversed.size(), merged.size());
  for (usize j = 0; j < merged.size(); ++j) {
    EXPECT_EQ(reversed[j].contig, merged[j].contig);
    EXPECT_EQ(reversed[j].intron_start, merged[j].intron_start);
    EXPECT_EQ(reversed[j].unique_reads, merged[j].unique_reads);
    EXPECT_EQ(reversed[j].multi_reads, merged[j].multi_reads);
  }

  // TSV of the merged vector matches a collector fed the same reads.
  JunctionCollector all(w.index111);
  all.add(alignment_with({{0, 1'000, 40}, {40, 1'540, 60}},
                         ReadOutcome::kUniqueMapped));
  all.add(alignment_with({{0, 1'000, 40}, {40, 1'540, 60}},
                         ReadOutcome::kMultiMapped));
  all.add(alignment_with({{0, 5'000, 50}, {50, 6'000, 50}},
                         ReadOutcome::kUniqueMapped));
  std::ostringstream from_collector;
  all.write_tsv(from_collector);
  std::ostringstream from_merged;
  write_junctions_tsv(from_merged, merged, w.index111);
  EXPECT_EQ(from_merged.str(), from_collector.str());
}

TEST(JunctionCollector, TsvFormat) {
  const auto& w = world();
  JunctionCollector collector(w.index111);
  collector.add(alignment_with({{0, 1'000, 50}, {50, 1'550, 50}},
                               ReadOutcome::kUniqueMapped));
  std::ostringstream out;
  collector.write_tsv(out);
  EXPECT_EQ(out.str(), "1\t1051\t1550\t0\t0\t0\t1\t0\t50\n");
}

// Integration: real exonic reads produce junctions matching the intron
// structure of the annotation.
TEST(JunctionCollector, EngineCollectsRealJunctions) {
  const auto& w = world();
  EngineConfig config;
  config.collect_junctions = true;
  config.num_threads = 2;
  AlignmentEngine engine(w.index111, &w.synthesizer->annotation(),
                               config);
  const ReadSet reads =
      w.simulator->simulate(bulk_rna_profile(), 4'000, Rng(71));
  const AlignmentRun run = engine.run(reads);
  ASSERT_FALSE(run.junctions.empty());

  // The dominant share of junction support must coincide with annotated
  // introns (exon_i.end .. exon_{i+1}.start) on chromosomes. A small
  // remainder is expected: hits on scaffold copies of genes (scaffold
  // coordinates have no annotation) and occasional spurious stitches,
  // both of which real STAR exhibits and filters downstream.
  const Annotation& annotation = w.synthesizer->annotation();
  u64 annotated_support = 0;
  u64 total_support = 0;
  for (const Junction& junction : run.junctions) {
    const u64 support = junction.unique_reads + junction.multi_reads;
    total_support += support;
    for (const Gene& gene : annotation.genes()) {
      if (gene.contig != junction.contig) continue;
      const std::string& chrom = w.r111.contig(gene.contig).sequence;
      for (usize e = 0; e + 1 < gene.exons.size(); ++e) {
        // Compare in the same canonical (leftmost-shifted) space the
        // collector reports in.
        const u64 norm_start = left_shift_intron(
            chrom, gene.exons[e].end, gene.exons[e + 1].start);
        const u64 intron_len = gene.exons[e + 1].start - gene.exons[e].end;
        if (norm_start == junction.intron_start &&
            norm_start + intron_len == junction.intron_end) {
          annotated_support += support;
        }
      }
    }
  }
  EXPECT_GT(total_support, 100u);
  EXPECT_GT(static_cast<double>(annotated_support),
            0.85 * static_cast<double>(total_support));
}

TEST(JunctionCollector, DisabledByDefault) {
  const auto& w = world();
  AlignmentEngine engine(w.index111, &w.synthesizer->annotation(), {});
  const ReadSet reads = w.simulator->simulate(bulk_rna_profile(), 500, Rng(72));
  const AlignmentRun run = engine.run(reads);
  EXPECT_TRUE(run.junctions.empty());
}

}  // namespace
}  // namespace staratlas
