#include "align/progress.h"

#include <gtest/gtest.h>

namespace staratlas {
namespace {

MappingStats chunk(u64 unique, u64 multi, u64 too_many, u64 unmapped) {
  MappingStats stats;
  stats.processed = unique + multi + too_many + unmapped;
  stats.unique = unique;
  stats.multi = multi;
  stats.too_many = too_many;
  stats.unmapped = unmapped;
  return stats;
}

TEST(ProgressTracker, AccumulatesChunks) {
  ProgressTracker tracker(1'000);
  tracker.add(chunk(80, 10, 2, 8));
  tracker.add(chunk(70, 20, 0, 10));
  const ProgressSnapshot snap = tracker.snapshot(12.5);
  EXPECT_EQ(snap.total_reads, 1'000u);
  EXPECT_EQ(snap.processed, 200u);
  EXPECT_EQ(snap.unique, 150u);
  EXPECT_EQ(snap.multi, 30u);
  EXPECT_EQ(snap.too_many, 2u);
  EXPECT_EQ(snap.unmapped, 18u);
  EXPECT_DOUBLE_EQ(snap.elapsed_seconds, 12.5);
}

TEST(ProgressSnapshot, Rates) {
  ProgressTracker tracker(400);
  tracker.add(chunk(60, 20, 10, 10));
  const ProgressSnapshot snap = tracker.snapshot();
  EXPECT_DOUBLE_EQ(snap.fraction_processed(), 0.25);
  // Mapped rate counts unique+multi only (STAR semantics).
  EXPECT_DOUBLE_EQ(snap.mapped_rate(), 0.8);
}

TEST(ProgressSnapshot, EmptySafe) {
  const ProgressSnapshot snap;
  EXPECT_DOUBLE_EQ(snap.fraction_processed(), 0.0);
  EXPECT_DOUBLE_EQ(snap.mapped_rate(), 0.0);
}

TEST(ProgressLog, RendersRows) {
  ProgressLog log;
  ProgressTracker tracker(100);
  tracker.add(chunk(40, 5, 0, 5));
  log.append(tracker.snapshot());
  tracker.add(chunk(40, 5, 0, 5));
  log.append(tracker.snapshot());
  ASSERT_EQ(log.entries().size(), 2u);
  const std::string text = log.render();
  EXPECT_NE(text.find("Reads processed"), std::string::npos);
  EXPECT_NE(text.find("50"), std::string::npos);
  EXPECT_NE(text.find("100"), std::string::npos);
  EXPECT_NE(text.find("90.0%"), std::string::npos);  // mapped rate
}

}  // namespace
}  // namespace staratlas
