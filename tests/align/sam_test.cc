#include "align/sam.h"

#include <gtest/gtest.h>

#include <sstream>

#include "align/aligner.h"
#include "index/packed_sequence.h"
#include "io/text.h"
#include "testutil.h"

namespace staratlas {
namespace {

using staratlas::testing::world;

AlignmentHit hit_with_segments(std::vector<AlignedSegment> segments) {
  AlignmentHit hit;
  hit.segments.assign(segments.begin(), segments.end());
  hit.text_pos = hit.segments.front().text_start;
  return hit;
}

TEST(Cigar, FullMatch) {
  const AlignmentHit hit = hit_with_segments({{0, 1'000, 100}});
  EXPECT_EQ(cigar_string(hit, 100), "100M");
}

TEST(Cigar, SoftClips) {
  const AlignmentHit hit = hit_with_segments({{5, 1'000, 90}});
  EXPECT_EQ(cigar_string(hit, 100), "5S90M5S");
}

TEST(Cigar, SplicedWithIntron) {
  // 50M then a 500 bp intron then 50M.
  const AlignmentHit hit =
      hit_with_segments({{0, 1'000, 50}, {50, 1'550, 50}});
  EXPECT_EQ(cigar_string(hit, 100), "50M500N50M");
}

TEST(Cigar, MixedGapFoldsReadGapIntoM) {
  // Read gap 4, genome gap 304: 40M 300N 4M 56M.
  const AlignmentHit hit =
      hit_with_segments({{0, 1'000, 40}, {44, 1'344, 56}});
  EXPECT_EQ(cigar_string(hit, 100), "40M300N4M56M");
}

TEST(StarMapq, Convention) {
  EXPECT_EQ(star_mapq(1), 255);
  EXPECT_EQ(star_mapq(2), 3);
  EXPECT_EQ(star_mapq(3), 1);
  EXPECT_EQ(star_mapq(4), 1);
  EXPECT_EQ(star_mapq(5), 0);
  EXPECT_EQ(star_mapq(40), 0);
}

TEST(SamWriter, HeaderListsContigs) {
  const auto& w = world();
  std::ostringstream out;
  SamWriter writer(out, w.index111);
  const std::string header = out.str();
  EXPECT_NE(header.find("@HD\tVN:1.6"), std::string::npos);
  EXPECT_NE(header.find("@SQ\tSN:1\tLN:"), std::string::npos);
  EXPECT_NE(header.find("@PG\tID:staratlas"), std::string::npos);
  // One @SQ per contig.
  usize sq_lines = 0;
  std::istringstream lines(header);
  std::string line;
  while (std::getline(lines, line)) {
    sq_lines += starts_with(line, "@SQ") ? 1 : 0;
  }
  EXPECT_EQ(sq_lines, w.index111.contigs().size());
}

TEST(SamWriter, UniqueForwardRecord) {
  const auto& w = world();
  const u64 planted = 37'000;
  FastqRecord read;
  read.name = "r1";
  read.sequence = w.r111.contig(0).sequence.substr(planted, 100);
  read.quality = std::string(100, 'I');

  const Aligner aligner(w.index111, AlignerParams{});
  MappingStats work;
  const ReadAlignment alignment = aligner.align(read.sequence, work);
  ASSERT_EQ(alignment.outcome, ReadOutcome::kUniqueMapped);

  std::ostringstream out;
  SamWriter writer(out, w.index111);
  writer.write_read(read, alignment);

  // Find the record line.
  std::istringstream lines(out.str());
  std::string line;
  std::string record;
  while (std::getline(lines, line)) {
    if (starts_with(line, "r1\t")) record = line;
  }
  ASSERT_FALSE(record.empty());
  const auto fields = split_view(record, '\t');
  ASSERT_GE(fields.size(), 11u);
  EXPECT_EQ(fields[1], "0");                       // flag
  EXPECT_EQ(fields[2], "1");                       // contig name
  EXPECT_EQ(fields[3], std::to_string(planted + 1));  // 1-based pos
  EXPECT_EQ(fields[4], "255");                     // unique MAPQ
  EXPECT_EQ(fields[5], "100M");
  EXPECT_EQ(fields[9], read.sequence);
  EXPECT_NE(record.find("NH:i:1"), std::string::npos);
}

TEST(SamWriter, ReverseRecordStoresReverseComplement) {
  const auto& w = world();
  const u64 planted = 48'000;
  const std::string genome_piece = w.r111.contig(0).sequence.substr(planted, 100);
  FastqRecord read;
  read.name = "r2";
  read.sequence = reverse_complement(genome_piece);
  read.quality = std::string(100, 'F');

  const Aligner aligner(w.index111, AlignerParams{});
  MappingStats work;
  const ReadAlignment alignment = aligner.align(read.sequence, work);
  ASSERT_FALSE(alignment.hits.empty());
  ASSERT_TRUE(alignment.hits[0].reverse);

  std::ostringstream out;
  SamWriter writer(out, w.index111);
  writer.write_read(read, alignment);
  const std::string sam = out.str();
  // Flag 16 and the genome-strand sequence.
  EXPECT_NE(sam.find("r2\t16\t"), std::string::npos);
  EXPECT_NE(sam.find(genome_piece), std::string::npos);
}

TEST(SamWriter, UnmappedRecord) {
  const auto& w = world();
  FastqRecord read;
  read.name = "junk";
  read.sequence = "CCGGCCGGCCGGCCGGCCGGCCGGCCGGCCGGCCGG";
  read.quality = std::string(read.sequence.size(), 'I');
  ReadAlignment alignment;  // unmapped
  std::ostringstream out;
  SamWriter writer(out, w.index111);
  writer.write_read(read, alignment);
  EXPECT_NE(out.str().find("junk\t4\t*\t0\t0\t*"), std::string::npos);
  EXPECT_EQ(writer.records_written(), 1u);
}

TEST(SamWriter, MultimapperEmitsSecondaryRecords) {
  const auto& w = world();
  // Scan the repeat array for a read that multimaps (most do on the 108
  // index; the exact offset depends on copy divergence draws).
  const RepeatRegion& region = w.synthesizer->repeat_regions()[0];
  const Aligner aligner(w.index108, AlignerParams{});
  FastqRecord read;
  read.name = "rep";
  read.quality = std::string(100, 'I');
  ReadAlignment alignment;
  for (u64 offset = 100; offset + 100 < region.end - region.start;
       offset += 137) {
    read.sequence = w.r108.contig(region.contig)
                        .sequence.substr(region.start + offset, 100);
    MappingStats work;
    alignment = aligner.align(read.sequence, work);
    if (alignment.outcome == ReadOutcome::kMultiMapped) break;
  }
  ASSERT_EQ(alignment.outcome, ReadOutcome::kMultiMapped);

  std::ostringstream out;
  SamWriter writer(out, w.index108);
  writer.write_read(read, alignment);
  EXPECT_EQ(writer.records_written(), alignment.hits.size());
  // Exactly one primary (flag without 0x100).
  std::istringstream lines(out.str());
  std::string line;
  usize primary = 0;
  usize secondary = 0;
  while (std::getline(lines, line)) {
    if (!starts_with(line, "rep\t")) continue;
    const auto fields = split_view(line, '\t');
    const auto flag = parse_u64(fields[1]);
    ((flag & 0x100) ? secondary : primary) += 1;
  }
  EXPECT_EQ(primary, 1u);
  EXPECT_EQ(secondary, alignment.hits.size() - 1);
}

}  // namespace
}  // namespace staratlas
