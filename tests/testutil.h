// Shared fixtures for staratlas tests: a small deterministic genome world
// (synthesizer + releases + index + simulator) built once per process.
#pragma once

#include <memory>

#include "genome/synthesizer.h"
#include "index/genome_index.h"
#include "sim/read_simulator.h"

namespace staratlas::testing {

struct TestWorld {
  GenomeSpec spec;
  std::unique_ptr<GenomeSynthesizer> synthesizer;
  Assembly r108;
  Assembly r111;
  GenomeIndex index108;
  GenomeIndex index111;
  std::unique_ptr<ReadSimulator> simulator;
};

/// A compact world (2 chromosomes x 120 kb) shared by alignment tests.
/// Built lazily once; cheap to reference afterwards.
inline const TestWorld& world() {
  static const TestWorld* instance = [] {
    auto* w = new TestWorld();
    w->spec.num_chromosomes = 2;
    w->spec.chromosome_length = 120'000;
    w->spec.genes_per_chromosome = 12;
    w->spec.seed = 1234;
    w->synthesizer = std::make_unique<GenomeSynthesizer>(w->spec);
    w->r108 = w->synthesizer->make_release108();
    w->r111 = w->synthesizer->make_release111();
    w->index108 = GenomeIndex::build(w->r108);
    w->index111 = GenomeIndex::build(w->r111);
    w->simulator = std::make_unique<ReadSimulator>(
        w->r111, w->synthesizer->annotation(),
        w->synthesizer->repeat_regions());
    return w;
  }();
  return *instance;
}

}  // namespace staratlas::testing
