#include "sra/toolkit.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "testutil.h"

namespace staratlas {
namespace {

using staratlas::testing::world;

std::unique_ptr<SraRepository> make_repository(usize num_samples = 6) {
  const auto& w = world();
  CatalogSpec spec;
  spec.num_samples = num_samples;
  spec.reads_at_mean = 400;
  spec.min_reads = 100;
  spec.single_cell_fraction = 0.34;  // ensure a couple of single-cell
  auto simulator = std::make_shared<ReadSimulator>(
      w.r111, w.synthesizer->annotation(), w.synthesizer->repeat_regions());
  return std::make_unique<SraRepository>(make_catalog(spec), simulator);
}

TEST(Repository, LazyMaterialization) {
  auto repo = make_repository();
  EXPECT_EQ(repo->materialized_count(), 0u);
  const std::string accession = repo->catalog()[0].accession;
  repo->fetch(accession);
  EXPECT_EQ(repo->materialized_count(), 1u);
  repo->fetch(accession);  // cached
  EXPECT_EQ(repo->materialized_count(), 1u);
}

TEST(Repository, UnknownAccessionThrows) {
  auto repo = make_repository();
  EXPECT_THROW(repo->fetch("SRR99999999"), InvalidArgument);
  EXPECT_THROW(repo->sample("SRR99999999"), InvalidArgument);
}

TEST(Repository, ContainerMatchesCatalogMetadata) {
  auto repo = make_repository();
  const SraSample& sample = repo->catalog()[1];
  const auto& container = repo->fetch(sample.accession);
  const SraMetadata metadata = sra_peek(container);
  EXPECT_EQ(metadata.accession, sample.accession);
  EXPECT_EQ(metadata.library_type, sample.type);
  EXPECT_EQ(metadata.num_reads, sample.num_reads);
}

TEST(Toolkit, PrefetchReturnsContainer) {
  auto repo = make_repository();
  const std::string accession = repo->catalog()[2].accession;
  const PrefetchResult result = prefetch(*repo, accession);
  EXPECT_EQ(result.bytes_transferred.bytes(), result.container.size());
  EXPECT_EQ(result.metadata.accession, accession);
  EXPECT_GT(result.container.size(), 0u);
}

TEST(Toolkit, DumpRoundTripsSimulation) {
  const auto& w = world();
  auto repo = make_repository();
  const SraSample& sample = repo->catalog()[0];
  const PrefetchResult fetched = prefetch(*repo, sample.accession);
  const DumpResult dumped = fasterq_dump(fetched.container);
  EXPECT_EQ(dumped.reads.size(), sample.num_reads);
  // The decoded reads must equal a direct simulation with the same seed.
  const ReadSet direct = w.simulator->simulate(
      profile_for(sample.type), sample.num_reads, Rng(sample.seed));
  ASSERT_EQ(dumped.reads.size(), direct.size());
  for (usize i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(dumped.reads.reads[i].sequence, direct.reads[i].sequence);
  }
  EXPECT_EQ(dumped.fastq_bytes.bytes(), direct.fastq_bytes.bytes());
}

TEST(Toolkit, PrefetchWithRetrySucceedsAfterTransientFailures) {
  auto repo = make_repository();
  const std::string accession = repo->catalog()[1].accession;
  PrefetchRetryPolicy policy;
  policy.max_attempts = 5;
  policy.backoff_base_secs = 2.0;
  policy.backoff_multiplier = 3.0;
  const PrefetchOutcome outcome = prefetch_with_retry(
      *repo, accession, [](u32 attempt) { return attempt <= 2; }, policy);
  EXPECT_EQ(outcome.attempts, 3u);
  EXPECT_DOUBLE_EQ(outcome.backoff_secs, 2.0 + 6.0);  // after fails 1 and 2
  EXPECT_EQ(outcome.result.metadata.accession, accession);
  EXPECT_GT(outcome.result.container.size(), 0u);
}

TEST(Toolkit, PrefetchWithRetryNullPredicateNeverFails) {
  auto repo = make_repository();
  const std::string accession = repo->catalog()[2].accession;
  const PrefetchOutcome outcome =
      prefetch_with_retry(*repo, accession, nullptr);
  EXPECT_EQ(outcome.attempts, 1u);
  EXPECT_DOUBLE_EQ(outcome.backoff_secs, 0.0);
  EXPECT_EQ(outcome.result.bytes_transferred.bytes(),
            outcome.result.container.size());
}

TEST(Toolkit, PrefetchWithRetryThrowsOnExhaustion) {
  auto repo = make_repository();
  const std::string accession = repo->catalog()[0].accession;
  PrefetchRetryPolicy policy;
  policy.max_attempts = 3;
  u32 calls = 0;
  EXPECT_THROW(prefetch_with_retry(
                   *repo, accession,
                   [&calls](u32) {
                     ++calls;
                     return true;
                   },
                   policy),
               IoError);
  EXPECT_EQ(calls, 3u);  // bounded: exactly max_attempts tries
}

TEST(Toolkit, RetryPolicyBackoffGrows) {
  PrefetchRetryPolicy policy;
  policy.backoff_base_secs = 1.5;
  policy.backoff_multiplier = 2.0;
  EXPECT_DOUBLE_EQ(policy.backoff_secs(1), 1.5);
  EXPECT_DOUBLE_EQ(policy.backoff_secs(2), 3.0);
  EXPECT_DOUBLE_EQ(policy.backoff_secs(3), 6.0);
}

TEST(Toolkit, DumpReportsFastqBiggerThanSra) {
  auto repo = make_repository();
  const std::string accession = repo->catalog()[3].accession;
  const PrefetchResult fetched = prefetch(*repo, accession);
  const DumpResult dumped = fasterq_dump(fetched.container);
  EXPECT_GT(dumped.fastq_bytes.bytes(), fetched.bytes_transferred.bytes());
}

}  // namespace
}  // namespace staratlas
