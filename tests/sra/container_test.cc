#include "sra/container.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "testutil.h"

namespace staratlas {
namespace {

using staratlas::testing::world;

TEST(Rle, RoundTrips) {
  for (const std::string text :
       {std::string("IIIIIIII"), std::string("I#I#I#"), std::string("x"),
        std::string(1'000, 'Q'), std::string("")}) {
    EXPECT_EQ(rle_decode(rle_encode(text)), text);
  }
}

TEST(Rle, LongRunsSplitAt255) {
  const std::string text(700, 'I');
  const auto encoded = rle_encode(text);
  EXPECT_EQ(encoded.size(), 6u);  // 3 runs of <=255
  EXPECT_EQ(rle_decode(encoded), text);
}

TEST(Rle, DecodeRejectsOddLength) {
  EXPECT_THROW(rle_decode({65}), ParseError);
}

TEST(Rle, DecodeRejectsZeroRun) {
  EXPECT_THROW(rle_decode({65, 0}), ParseError);
}

std::vector<FastqRecord> sample_reads(usize n) {
  const auto& w = world();
  return w.simulator->simulate(bulk_rna_profile(), n, Rng(33)).reads;
}

SraMetadata metadata_for(const std::vector<FastqRecord>& reads) {
  SraMetadata metadata;
  metadata.accession = "SRR24100001";
  metadata.library_type = LibraryType::kBulk;
  metadata.tissue = "lung";
  metadata.num_reads = reads.size();
  for (const auto& read : reads) metadata.total_bases += read.sequence.size();
  return metadata;
}

TEST(SraContainer, RoundTripsExactly) {
  const auto reads = sample_reads(200);
  const auto container = sra_encode(metadata_for(reads), reads);
  const auto [metadata, decoded] = sra_decode(container);
  EXPECT_EQ(metadata.accession, "SRR24100001");
  EXPECT_EQ(metadata.tissue, "lung");
  ASSERT_EQ(decoded.size(), reads.size());
  for (usize i = 0; i < reads.size(); ++i) {
    EXPECT_EQ(decoded[i].name, reads[i].name);
    EXPECT_EQ(decoded[i].sequence, reads[i].sequence);
    EXPECT_EQ(decoded[i].quality, reads[i].quality);
  }
}

TEST(SraContainer, PeekReadsHeaderOnly) {
  const auto reads = sample_reads(50);
  const auto container = sra_encode(metadata_for(reads), reads);
  const SraMetadata metadata = sra_peek(container);
  EXPECT_EQ(metadata.num_reads, 50u);
  EXPECT_EQ(metadata.library_type, LibraryType::kBulk);
}

TEST(SraContainer, SmallerThanFastq) {
  const auto reads = sample_reads(500);
  const auto container = sra_encode(metadata_for(reads), reads);
  const ByteSize fastq = fastq_serialized_size(reads);
  // Real SRA runs ~2-3x smaller than FASTQ; ours packs 4 bases/byte + RLE
  // qualities, so at least 1.8x.
  EXPECT_LT(static_cast<double>(container.size()),
            static_cast<double>(fastq.bytes()) / 1.8);
}

TEST(SraContainer, RejectsBadMagic) {
  std::vector<u8> garbage(64, 0x42);
  EXPECT_THROW(sra_decode(garbage), Error);
  EXPECT_THROW(sra_peek(garbage), Error);
}

TEST(SraContainer, RejectsTruncation) {
  const auto reads = sample_reads(20);
  auto container = sra_encode(metadata_for(reads), reads);
  container.resize(container.size() / 2);
  EXPECT_THROW(sra_decode(container), Error);
}

TEST(SraContainer, MetadataMismatchCaught) {
  const auto reads = sample_reads(5);
  SraMetadata bad = metadata_for(reads);
  bad.num_reads = 4;  // lies about the count
  EXPECT_THROW(sra_encode(bad, reads), InternalError);
}

TEST(SraContainer, EmptyRun) {
  SraMetadata metadata;
  metadata.accession = "SRR0";
  const auto container = sra_encode(metadata, {});
  const auto [decoded_meta, decoded] = sra_decode(container);
  EXPECT_TRUE(decoded.empty());
  EXPECT_EQ(decoded_meta.num_reads, 0u);
}

TEST(SraContainer, HandlesNsInReads) {
  std::vector<FastqRecord> reads = {{"r1", "ACGTNNNACGT", "IIIIIIIIIII"}};
  SraMetadata metadata = metadata_for(reads);
  const auto container = sra_encode(metadata, reads);
  const auto [meta, decoded] = sra_decode(container);
  EXPECT_EQ(decoded[0].sequence, "ACGTNNNACGT");
}

}  // namespace
}  // namespace staratlas
