#include "quant/count_matrix.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.h"

namespace staratlas {
namespace {

CountMatrix make_matrix() {
  CountMatrix matrix({"G1", "G2", "G3"});
  GeneCountsTable s1(3);
  s1.per_gene = {10, 0, 5};
  GeneCountsTable s2(3);
  s2.per_gene = {20, 2, 10};
  matrix.add_sample("SRR1", s1);
  matrix.add_sample("SRR2", s2);
  return matrix;
}

TEST(CountMatrix, ShapeAndAccess) {
  const CountMatrix matrix = make_matrix();
  EXPECT_EQ(matrix.num_genes(), 3u);
  EXPECT_EQ(matrix.num_samples(), 2u);
  EXPECT_EQ(matrix.at(0, 0), 10u);
  EXPECT_EQ(matrix.at(1, 1), 2u);
  EXPECT_EQ(matrix.at(2, 1), 10u);
}

TEST(CountMatrix, OutOfRangeThrows) {
  const CountMatrix matrix = make_matrix();
  EXPECT_THROW(matrix.at(3, 0), InternalError);
  EXPECT_THROW(matrix.at(0, 2), InternalError);
}

TEST(CountMatrix, MismatchedSampleRejected) {
  CountMatrix matrix({"G1", "G2"});
  GeneCountsTable bad(3);
  EXPECT_THROW(matrix.add_sample("S", bad), InternalError);
}

TEST(CountMatrix, RowsAndColumns) {
  const CountMatrix matrix = make_matrix();
  EXPECT_EQ(matrix.gene_row(0), (std::vector<double>{10, 20}));
  EXPECT_EQ(matrix.sample_column(1), (std::vector<double>{20, 2, 10}));
}

TEST(CountMatrix, LibrarySizes) {
  const CountMatrix matrix = make_matrix();
  EXPECT_EQ(matrix.library_sizes(), (std::vector<double>{15, 32}));
}

TEST(CountMatrix, TsvFormat) {
  const CountMatrix matrix = make_matrix();
  std::ostringstream out;
  matrix.write_tsv(out);
  const std::string tsv = out.str();
  EXPECT_NE(tsv.find("gene_id\tSRR1\tSRR2"), std::string::npos);
  EXPECT_NE(tsv.find("G1\t10\t20"), std::string::npos);
  EXPECT_NE(tsv.find("G3\t5\t10"), std::string::npos);
}

}  // namespace
}  // namespace staratlas
