#include "quant/deseq2.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"

namespace staratlas {
namespace {

CountMatrix matrix_from(const std::vector<std::vector<u64>>& columns,
                        usize num_genes) {
  std::vector<std::string> gene_ids;
  for (usize g = 0; g < num_genes; ++g) {
    gene_ids.push_back("G" + std::to_string(g));
  }
  CountMatrix matrix(gene_ids);
  for (usize s = 0; s < columns.size(); ++s) {
    GeneCountsTable table(num_genes);
    table.per_gene = columns[s];
    matrix.add_sample("S" + std::to_string(s), table);
  }
  return matrix;
}

TEST(Deseq2, PureScalingRecoversScaleFactors) {
  // Sample 2 is exactly 2x sample 1: size factors must be in ratio 2,
  // and median-of-ratios normalizes them to geometric symmetry.
  const CountMatrix matrix =
      matrix_from({{10, 20, 30, 40}, {20, 40, 60, 80}}, 4);
  const auto factors = deseq2_size_factors(matrix);
  ASSERT_EQ(factors.size(), 2u);
  EXPECT_NEAR(factors[1] / factors[0], 2.0, 1e-9);
  // Geometric mean of factors is 1 for a pure scaling design.
  EXPECT_NEAR(std::sqrt(factors[0] * factors[1]), 1.0, 1e-9);
}

TEST(Deseq2, HandComputedExample) {
  // Two genes, two samples: counts [[2,8],[4,4]].
  // refs: G0 = sqrt(2*8)=4, G1 = sqrt(4*4)=4.
  // sample0 ratios: 2/4=0.5, 4/4=1 -> median = sqrt(0.5*1)=0.7071
  // sample1 ratios: 8/4=2, 4/4=1 -> median = sqrt(2)=1.4142
  const CountMatrix matrix = matrix_from({{2, 4}, {8, 4}}, 2);
  const auto factors = deseq2_size_factors(matrix);
  EXPECT_NEAR(factors[0], std::sqrt(0.5), 1e-9);
  EXPECT_NEAR(factors[1], std::sqrt(2.0), 1e-9);
}

TEST(Deseq2, GenesWithZerosExcludedFromReference) {
  // G1 has a zero in sample 0: it must not influence the factors.
  const CountMatrix with_zero =
      matrix_from({{10, 0, 30}, {20, 999, 60}}, 3);
  const CountMatrix without =
      matrix_from({{10, 30}, {20, 60}}, 2);
  const auto f1 = deseq2_size_factors(with_zero);
  const auto f2 = deseq2_size_factors(without);
  EXPECT_NEAR(f1[0], f2[0], 1e-9);
  EXPECT_NEAR(f1[1], f2[1], 1e-9);
}

TEST(Deseq2, ThrowsWhenNoCommonGenes) {
  // Every gene has a zero somewhere.
  const CountMatrix matrix = matrix_from({{0, 5}, {5, 0}}, 2);
  EXPECT_THROW(deseq2_size_factors(matrix), InvalidArgument);
}

TEST(Deseq2, NormalizeDividesBySizeFactors) {
  const CountMatrix matrix =
      matrix_from({{10, 20, 30, 40}, {20, 40, 60, 80}}, 4);
  const NormalizedCounts normalized = deseq2_normalize(matrix);
  // After normalization both samples should agree gene by gene.
  for (usize g = 0; g < 4; ++g) {
    EXPECT_NEAR(normalized.values[0][g], normalized.values[1][g], 1e-9);
  }
}

TEST(Deseq2, InvariantUnderSampleScaling) {
  // Property: multiplying one sample's counts by k multiplies only its
  // size factor by k (up to the shared geometric normalization).
  Rng rng(77);
  std::vector<u64> base(20);
  for (auto& count : base) count = 5 + rng.uniform(500);
  std::vector<u64> scaled(20);
  for (usize g = 0; g < 20; ++g) scaled[g] = base[g] * 3;
  const CountMatrix matrix = matrix_from({base, base, scaled}, 20);
  const auto factors = deseq2_size_factors(matrix);
  EXPECT_NEAR(factors[2] / factors[0], 3.0, 1e-9);
  EXPECT_NEAR(factors[1] / factors[0], 1.0, 1e-9);
}

TEST(Deseq2, RobustToDifferentialExpressionOutliers) {
  // Median-of-ratios (unlike total-count normalization) shrugs off a few
  // hugely expressed genes. Build two identical samples, then blow up two
  // genes in sample 1: size factors should stay ~equal.
  Rng rng(78);
  std::vector<u64> a(50);
  for (auto& count : a) count = 10 + rng.uniform(200);
  std::vector<u64> b = a;
  b[0] *= 100;
  b[1] *= 50;
  const CountMatrix matrix = matrix_from({a, b}, 50);
  const auto factors = deseq2_size_factors(matrix);
  EXPECT_NEAR(factors[1] / factors[0], 1.0, 0.05);
}

TEST(Deseq2, SingleSampleFactorIsOne) {
  const CountMatrix matrix = matrix_from({{5, 10, 20}}, 3);
  const auto factors = deseq2_size_factors(matrix);
  ASSERT_EQ(factors.size(), 1u);
  EXPECT_NEAR(factors[0], 1.0, 1e-9);
}

}  // namespace
}  // namespace staratlas
