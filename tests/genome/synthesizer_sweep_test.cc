// Parameterized invariants of the genome synthesizer across scales: the
// release size ratio, annotation validity and chromosome sharing must
// hold whatever GenomeSpec a user picks.
#include <gtest/gtest.h>

#include "genome/synthesizer.h"

namespace staratlas {
namespace {

struct ScaleCase {
  usize chromosomes;
  u64 length;
  usize genes;
  u64 seed;
};

class SynthesizerScaleSweep : public ::testing::TestWithParam<ScaleCase> {
 protected:
  GenomeSpec spec() const {
    GenomeSpec spec;
    spec.num_chromosomes = GetParam().chromosomes;
    spec.chromosome_length = GetParam().length;
    spec.genes_per_chromosome = GetParam().genes;
    spec.seed = GetParam().seed;
    return spec;
  }
};

TEST_P(SynthesizerScaleSweep, ReleaseSizeRatioInPaperBand) {
  const GenomeSynthesizer synthesizer(spec());
  const Assembly r108 = synthesizer.make_release108();
  const Assembly r111 = synthesizer.make_release111();
  const double ratio = static_cast<double>(r108.fasta_size().bytes()) /
                       static_cast<double>(r111.fasta_size().bytes());
  // Paper: 85 / 29.5 = 2.88x. The ratio must be scale-invariant.
  EXPECT_GT(ratio, 2.2) << "at scale " << GetParam().length;
  EXPECT_LT(ratio, 3.6) << "at scale " << GetParam().length;
}

TEST_P(SynthesizerScaleSweep, ChromosomesIdenticalAcrossReleases) {
  const GenomeSynthesizer synthesizer(spec());
  const Assembly r108 = synthesizer.make_release108();
  const Assembly r111 = synthesizer.make_release111();
  for (usize c = 0; c < GetParam().chromosomes; ++c) {
    ASSERT_EQ(r108.contig(static_cast<ContigId>(c)).sequence,
              r111.contig(static_cast<ContigId>(c)).sequence);
  }
}

TEST_P(SynthesizerScaleSweep, AnnotationStructurallyValid) {
  const GenomeSynthesizer synthesizer(spec());
  const GenomeSpec s = spec();
  EXPECT_GT(synthesizer.annotation().num_genes(), 0u);
  for (const Gene& gene : synthesizer.annotation().genes()) {
    EXPECT_LT(gene.contig, s.num_chromosomes);
    EXPECT_LE(gene.end(), s.chromosome_length);
    u64 previous_end = 0;
    for (const Exon& exon : gene.exons) {
      EXPECT_GE(exon.start, previous_end);
      EXPECT_LT(exon.start, exon.end);
      previous_end = exon.end;
    }
  }
}

TEST_P(SynthesizerScaleSweep, RepeatRegionsNeverOverlapGenes) {
  const GenomeSynthesizer synthesizer(spec());
  for (const RepeatRegion& region : synthesizer.repeat_regions()) {
    for (const Gene& gene : synthesizer.annotation().genes()) {
      if (gene.contig != region.contig) continue;
      EXPECT_TRUE(gene.end() <= region.start || gene.start() >= region.end);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Scales, SynthesizerScaleSweep,
    ::testing::Values(ScaleCase{1, 60'000, 5, 1}, ScaleCase{2, 100'000, 8, 2},
                      ScaleCase{3, 150'000, 12, 3},
                      ScaleCase{2, 300'000, 25, 4},
                      ScaleCase{4, 80'000, 6, 5}),
    [](const ::testing::TestParamInfo<ScaleCase>& info) {
      return "c" + std::to_string(info.param.chromosomes) + "_len" +
             std::to_string(info.param.length / 1'000) + "k";
    });

}  // namespace
}  // namespace staratlas
