#include "genome/synthesizer.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "testutil.h"

namespace staratlas {
namespace {

using staratlas::testing::world;

TEST(Synthesizer, DeterministicForSameSeed) {
  GenomeSpec spec;
  spec.num_chromosomes = 1;
  spec.chromosome_length = 50'000;
  spec.genes_per_chromosome = 5;
  spec.seed = 77;
  const GenomeSynthesizer a(spec);
  const GenomeSynthesizer b(spec);
  const Assembly ra = a.make_release108();
  const Assembly rb = b.make_release108();
  ASSERT_EQ(ra.num_contigs(), rb.num_contigs());
  for (usize i = 0; i < ra.num_contigs(); ++i) {
    EXPECT_EQ(ra.contig(static_cast<ContigId>(i)).sequence,
              rb.contig(static_cast<ContigId>(i)).sequence);
  }
  EXPECT_EQ(a.annotation().num_genes(), b.annotation().num_genes());
}

TEST(Synthesizer, ChromosomesSharedAcrossReleases) {
  const auto& w = world();
  const usize num_chroms = w.spec.num_chromosomes;
  ASSERT_EQ(w.r108.count_of(ContigClass::kChromosome), num_chroms);
  ASSERT_EQ(w.r111.count_of(ContigClass::kChromosome), num_chroms);
  for (usize c = 0; c < num_chroms; ++c) {
    EXPECT_EQ(w.r108.contig(static_cast<ContigId>(c)).sequence,
              w.r111.contig(static_cast<ContigId>(c)).sequence)
        << "chromosome " << c << " differs between releases";
  }
}

TEST(Synthesizer, ChromosomesComeFirst) {
  const auto& w = world();
  for (usize c = 0; c < w.spec.num_chromosomes; ++c) {
    EXPECT_EQ(w.r108.contig(static_cast<ContigId>(c)).cls,
              ContigClass::kChromosome);
  }
  for (usize c = w.spec.num_chromosomes; c < w.r108.num_contigs(); ++c) {
    EXPECT_NE(w.r108.contig(static_cast<ContigId>(c)).cls,
              ContigClass::kChromosome);
  }
}

TEST(Synthesizer, Release108MuchBiggerLikePaperRatio) {
  const auto& w = world();
  const double ratio = static_cast<double>(w.r108.fasta_size().bytes()) /
                       static_cast<double>(w.r111.fasta_size().bytes());
  // Paper: 85 GiB vs 29.5 GiB = 2.88x. Allow a band.
  EXPECT_GT(ratio, 2.2);
  EXPECT_LT(ratio, 3.8);
}

TEST(Synthesizer, Release108HasFarMoreScaffoldSequence) {
  const auto& w = world();
  const u64 bytes108 = w.r108.length_of(ContigClass::kUnlocalizedScaffold) +
                       w.r108.length_of(ContigClass::kUnplacedScaffold);
  const u64 bytes111 = w.r111.length_of(ContigClass::kUnlocalizedScaffold) +
                       w.r111.length_of(ContigClass::kUnplacedScaffold);
  EXPECT_GT(bytes108, 10 * bytes111);
  const usize count108 = w.r108.count_of(ContigClass::kUnlocalizedScaffold);
  const usize count111 = w.r111.count_of(ContigClass::kUnlocalizedScaffold);
  EXPECT_GT(count108, 3 * count111);
}

TEST(Synthesizer, GenesLieWithinChromosomeGeneZone) {
  const auto& w = world();
  const u64 zone_end = w.spec.chromosome_length * 78 / 100;
  for (const Gene& gene : w.synthesizer->annotation().genes()) {
    EXPECT_LT(gene.contig, w.spec.num_chromosomes);
    EXPECT_LE(gene.end(), zone_end);
    for (const Exon& exon : gene.exons) {
      EXPECT_LT(exon.start, exon.end);
      EXPECT_GE(exon.length(), w.spec.min_exon_length);
      EXPECT_LE(exon.length(), w.spec.max_exon_length);
    }
  }
}

TEST(Synthesizer, RepeatRegionsInGeneFreeTail) {
  const auto& w = world();
  ASSERT_EQ(w.synthesizer->repeat_regions().size(), w.spec.num_chromosomes);
  const u64 zone_end = w.spec.chromosome_length * 78 / 100;
  for (const RepeatRegion& region : w.synthesizer->repeat_regions()) {
    EXPECT_GE(region.start, zone_end);
    EXPECT_LT(region.end, w.spec.chromosome_length);
    const u64 expected_len =
        w.spec.repeat_motif_length * w.spec.repeat_array_copies;
    EXPECT_EQ(region.end - region.start, expected_len);
  }
}

TEST(Synthesizer, RepeatArrayCopiesNearIdentical) {
  const auto& w = world();
  const RepeatRegion& region = w.synthesizer->repeat_regions()[0];
  const std::string& seq = w.r111.contig(region.contig).sequence;
  const u64 motif = w.spec.repeat_motif_length;
  // Compare copy 0 vs copy 1: divergence should be ~2 * copy_divergence.
  usize mismatches = 0;
  for (u64 i = 0; i < motif; ++i) {
    if (seq[region.start + i] != seq[region.start + motif + i]) ++mismatches;
  }
  EXPECT_LT(static_cast<double>(mismatches) / static_cast<double>(motif),
            6.0 * w.spec.repeat_copy_divergence + 0.02);
}

TEST(Synthesizer, GcContentApproximatelyRequested) {
  const auto& w = world();
  const std::string& seq = w.r111.contig(0).sequence;
  usize gc = 0;
  for (char c : seq) gc += (c == 'G' || c == 'C') ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(gc) / static_cast<double>(seq.size()),
              w.spec.gc_content, 0.02);
}

TEST(Synthesizer, UnlocalizedScaffoldsShareChromosomeSequence) {
  const auto& w = world();
  // A genic unlocalized scaffold should be findable as a near-copy: check
  // that at least one scaffold has >90% identity with some chromosome
  // window (probe by exact 20-mers).
  usize matched_scaffolds = 0;
  for (const Contig& contig : w.r108.contigs()) {
    if (contig.cls != ContigClass::kUnlocalizedScaffold) continue;
    const std::string probe = contig.sequence.substr(100, 20);
    bool found = false;
    for (usize c = 0; c < w.spec.num_chromosomes && !found; ++c) {
      found = w.r108.contig(static_cast<ContigId>(c))
                  .sequence.find(probe) != std::string::npos;
    }
    matched_scaffolds += found ? 1 : 0;
  }
  EXPECT_GT(matched_scaffolds, 0u);
}

TEST(ReleaseSpecs, PresetsHaveExpectedShape) {
  const ReleaseSpec r108 = release108_style();
  const ReleaseSpec r111 = release111_style();
  EXPECT_EQ(r108.release, 108);
  EXPECT_EQ(r111.release, 111);
  EXPECT_GT(r108.unlocalized_bytes_fraction,
            10 * r111.unlocalized_bytes_fraction);
  EXPECT_GT(r108.repeat_scaffold_fraction, 0.0);
  EXPECT_EQ(r111.repeat_scaffold_fraction, 0.0);
}

TEST(Synthesizer, InvalidSpecRejected) {
  GenomeSpec spec;
  spec.num_chromosomes = 0;
  EXPECT_THROW(GenomeSynthesizer{spec}, InternalError);
  GenomeSpec spec2;
  spec2.chromosome_length = 100;  // too short
  EXPECT_THROW(GenomeSynthesizer{spec2}, InternalError);
}

}  // namespace
}  // namespace staratlas
