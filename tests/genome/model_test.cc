#include "genome/model.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace staratlas {
namespace {

Assembly make_test_assembly() {
  std::vector<Contig> contigs = {
      {"1", ContigClass::kChromosome, std::string(1000, 'A')},
      {"2", ContigClass::kChromosome, std::string(800, 'C')},
      {"KI270001.1", ContigClass::kUnlocalizedScaffold, std::string(200, 'G')},
      {"GL000001.1", ContigClass::kUnplacedScaffold, std::string(100, 'T')},
  };
  return Assembly("Test species", 111, AssemblyType::kToplevel,
                  std::move(contigs));
}

TEST(Assembly, CountsAndLengths) {
  const Assembly assembly = make_test_assembly();
  EXPECT_EQ(assembly.num_contigs(), 4u);
  EXPECT_EQ(assembly.total_length(), 2100u);
  EXPECT_EQ(assembly.length_of(ContigClass::kChromosome), 1800u);
  EXPECT_EQ(assembly.length_of(ContigClass::kUnlocalizedScaffold), 200u);
  EXPECT_EQ(assembly.length_of(ContigClass::kUnplacedScaffold), 100u);
  EXPECT_EQ(assembly.count_of(ContigClass::kChromosome), 2u);
  EXPECT_EQ(assembly.count_of(ContigClass::kUnlocalizedScaffold), 1u);
}

TEST(Assembly, Lookup) {
  const Assembly assembly = make_test_assembly();
  EXPECT_EQ(assembly.contig_id("2"), 1u);
  EXPECT_NE(assembly.find_contig("KI270001.1"), nullptr);
  EXPECT_EQ(assembly.find_contig("nope"), nullptr);
  EXPECT_THROW(assembly.contig_id("nope"), InvalidArgument);
}

TEST(Assembly, PrimaryAssemblyDropsScaffolds) {
  const Assembly primary = make_test_assembly().primary_assembly();
  EXPECT_EQ(primary.type(), AssemblyType::kPrimaryAssembly);
  EXPECT_EQ(primary.num_contigs(), 2u);
  EXPECT_EQ(primary.total_length(), 1800u);
}

TEST(Assembly, FastaRoundTripPreservesClasses) {
  const Assembly assembly = make_test_assembly();
  const auto records = assembly.to_fasta();
  const Assembly parsed = Assembly::from_fasta(
      assembly.species(), assembly.release(), assembly.type(), records);
  ASSERT_EQ(parsed.num_contigs(), assembly.num_contigs());
  for (usize i = 0; i < parsed.num_contigs(); ++i) {
    EXPECT_EQ(parsed.contig(static_cast<ContigId>(i)).cls,
              assembly.contig(static_cast<ContigId>(i)).cls);
    EXPECT_EQ(parsed.contig(static_cast<ContigId>(i)).sequence,
              assembly.contig(static_cast<ContigId>(i)).sequence);
  }
}

TEST(Assembly, FastaSizeMatchesSerialization) {
  const Assembly assembly = make_test_assembly();
  std::ostringstream out;
  write_fasta(out, assembly.to_fasta(), 60);
  EXPECT_EQ(assembly.fasta_size().bytes(), out.str().size());
}

TEST(Assembly, RejectsEmptyContig) {
  std::vector<Contig> contigs = {{"1", ContigClass::kChromosome, ""}};
  EXPECT_THROW(
      Assembly("s", 1, AssemblyType::kToplevel, std::move(contigs)),
      InternalError);
}

TEST(ContigClassNames, AllNamed) {
  EXPECT_STREQ(contig_class_name(ContigClass::kChromosome), "chromosome");
  EXPECT_STREQ(contig_class_name(ContigClass::kUnlocalizedScaffold),
               "unlocalized");
  EXPECT_STREQ(contig_class_name(ContigClass::kUnplacedScaffold), "unplaced");
  EXPECT_STREQ(assembly_type_name(AssemblyType::kToplevel), "toplevel");
  EXPECT_STREQ(assembly_type_name(AssemblyType::kPrimaryAssembly),
               "primary_assembly");
}

}  // namespace
}  // namespace staratlas
