#include "genome/annotation.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace staratlas {
namespace {

Assembly tiny_assembly() {
  // chromosome "1": positions 0..59 = known pattern for transcript checks.
  std::string seq;
  for (int i = 0; i < 25; ++i) seq += "ACGT";
  std::vector<Contig> contigs = {{"1", ContigClass::kChromosome, seq}};
  return Assembly("t", 1, AssemblyType::kToplevel, std::move(contigs));
}

TEST(Gene, ExonicLengthAndSpan) {
  Gene gene;
  gene.id = "G";
  gene.exons = {{10, 20}, {30, 45}};
  EXPECT_EQ(gene.exonic_length(), 25u);
  EXPECT_EQ(gene.start(), 10u);
  EXPECT_EQ(gene.end(), 45u);
  EXPECT_EQ(gene.span(), 35u);
}

TEST(Gene, TranscriptSequenceConcatenatesExons) {
  const Assembly assembly = tiny_assembly();
  Gene gene;
  gene.id = "G";
  gene.contig = 0;
  gene.exons = {{0, 4}, {8, 12}};
  EXPECT_EQ(gene.transcript_sequence(assembly), "ACGTACGT");
}

TEST(Annotation, SortsExonsAndValidates) {
  Gene gene;
  gene.id = "G";
  gene.exons = {{30, 40}, {10, 20}};
  const Annotation annotation({gene});
  EXPECT_EQ(annotation.gene(0).exons[0].start, 10u);
}

TEST(Annotation, RejectsOverlappingExons) {
  Gene gene;
  gene.id = "G";
  gene.exons = {{10, 25}, {20, 30}};
  EXPECT_THROW(Annotation({gene}), InternalError);
}

TEST(Annotation, RejectsEmptyExonList) {
  Gene gene;
  gene.id = "G";
  EXPECT_THROW(Annotation({gene}), InternalError);
}

TEST(Annotation, FindGene) {
  Gene g1;
  g1.id = "A";
  g1.exons = {{0, 10}};
  Gene g2;
  g2.id = "B";
  g2.exons = {{20, 30}};
  const Annotation annotation({g1, g2});
  EXPECT_EQ(annotation.find_gene("B"), 1u);
  EXPECT_EQ(annotation.find_gene("C"), kNoGene);
}

TEST(Annotation, GenesOnContigSortedByStart) {
  Gene g1;
  g1.id = "A";
  g1.contig = 0;
  g1.exons = {{50, 60}};
  Gene g2;
  g2.id = "B";
  g2.contig = 0;
  g2.exons = {{10, 20}};
  Gene g3;
  g3.id = "C";
  g3.contig = 1;
  g3.exons = {{0, 5}};
  const Annotation annotation({g1, g2, g3});
  const auto on0 = annotation.genes_on_contig(0);
  ASSERT_EQ(on0.size(), 2u);
  EXPECT_EQ(on0[0], 1u);  // B starts first
  EXPECT_EQ(on0[1], 0u);
  EXPECT_EQ(annotation.genes_on_contig(1).size(), 1u);
  EXPECT_TRUE(annotation.genes_on_contig(7).empty());
}

TEST(Annotation, TotalExonicLength) {
  Gene g1;
  g1.id = "A";
  g1.exons = {{0, 10}, {20, 25}};
  const Annotation annotation({g1});
  EXPECT_EQ(annotation.total_exonic_length(), 15u);
}

TEST(Annotation, GtfRoundTrip) {
  const Assembly assembly = tiny_assembly();
  Gene gene;
  gene.id = "SYNG1";
  gene.name = "SYNG1";
  gene.contig = 0;
  gene.strand = '-';
  gene.exons = {{4, 12}, {20, 32}};
  const Annotation annotation({gene});

  const auto features = annotation.to_gtf(assembly);
  // gene + transcript + 2 exons
  ASSERT_EQ(features.size(), 4u);
  EXPECT_EQ(features[0].start, 5u);  // 1-based
  EXPECT_EQ(features[0].end, 32u);

  const Annotation parsed = Annotation::from_gtf(features, assembly);
  ASSERT_EQ(parsed.num_genes(), 1u);
  EXPECT_EQ(parsed.gene(0).id, "SYNG1");
  EXPECT_EQ(parsed.gene(0).strand, '-');
  ASSERT_EQ(parsed.gene(0).exons.size(), 2u);
  EXPECT_EQ(parsed.gene(0).exons[0].start, 4u);
  EXPECT_EQ(parsed.gene(0).exons[0].end, 12u);
  EXPECT_EQ(parsed.gene(0).exons[1].start, 20u);
}

TEST(Annotation, FromGtfUnknownContigThrows) {
  const Assembly assembly = tiny_assembly();
  GtfFeature f;
  f.contig = "chrUnknown";
  f.type = FeatureType::kExon;
  f.start = 1;
  f.end = 10;
  f.gene_id = "G";
  EXPECT_THROW(Annotation::from_gtf({f}, assembly), InvalidArgument);
}

TEST(Annotation, FromGtfGeneWithoutExonsThrows) {
  const Assembly assembly = tiny_assembly();
  GtfFeature f;
  f.contig = "1";
  f.type = FeatureType::kGene;
  f.start = 1;
  f.end = 10;
  f.gene_id = "G";
  EXPECT_THROW(Annotation::from_gtf({f}, assembly), ParseError);
}

}  // namespace
}  // namespace staratlas
