#include "common/vclock.h"

#include <gtest/gtest.h>

namespace staratlas {
namespace {

TEST(VirtualDuration, Constructors) {
  EXPECT_DOUBLE_EQ(VirtualDuration::seconds(90.0).mins(), 1.5);
  EXPECT_DOUBLE_EQ(VirtualDuration::minutes(90.0).hrs(), 1.5);
  EXPECT_DOUBLE_EQ(VirtualDuration::hours(2.0).secs(), 7200.0);
  EXPECT_DOUBLE_EQ(VirtualDuration::zero().secs(), 0.0);
}

TEST(VirtualDuration, Arithmetic) {
  const VirtualDuration a = VirtualDuration::minutes(3);
  const VirtualDuration b = VirtualDuration::seconds(30);
  EXPECT_DOUBLE_EQ((a + b).secs(), 210.0);
  EXPECT_DOUBLE_EQ((a - b).secs(), 150.0);
  EXPECT_DOUBLE_EQ((a * 2.0).mins(), 6.0);
  EXPECT_DOUBLE_EQ(a / b, 6.0);
  EXPECT_LT(b, a);
}

TEST(VirtualDuration, FormattingSubMinute) {
  EXPECT_EQ(VirtualDuration::seconds(12.345).str(), "12.35s");
}

TEST(VirtualDuration, FormattingMinutes) {
  EXPECT_EQ(VirtualDuration::seconds(150).str(), "2m 30.0s");
}

TEST(VirtualDuration, FormattingHours) {
  EXPECT_EQ(VirtualDuration::hours(1.5).str(), "1h 30m 0s");
}

TEST(VirtualDuration, FormattingNegative) {
  EXPECT_EQ((VirtualDuration::zero() - VirtualDuration::hours(2)).str(),
            "-2h 0m 0s");
}

TEST(VirtualTime, Arithmetic) {
  const VirtualTime t0 = VirtualTime::origin();
  const VirtualTime t1 = t0 + VirtualDuration::hours(1);
  EXPECT_DOUBLE_EQ((t1 - t0).hrs(), 1.0);
  EXPECT_LT(t0, t1);
  EXPECT_EQ(t0 + VirtualDuration::zero(), t0);
}

}  // namespace
}  // namespace staratlas
