#include "common/error.h"

#include <gtest/gtest.h>

namespace staratlas {
namespace {

TEST(Error, HierarchyDerivesFromError) {
  EXPECT_THROW(throw ParseError("x"), Error);
  EXPECT_THROW(throw IoError("x"), Error);
  EXPECT_THROW(throw InvalidArgument("x"), Error);
  EXPECT_THROW(throw InternalError("x"), Error);
}

TEST(Error, MessagesArePrefixed) {
  try {
    throw ParseError("bad token");
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "parse error: bad token");
  }
}

TEST(Check, PassingDoesNothing) {
  STARATLAS_CHECK(1 + 1 == 2);  // must not throw
}

TEST(Check, FailingThrowsInternalError) {
  EXPECT_THROW(STARATLAS_CHECK(false), InternalError);
}

TEST(Check, MessageContainsExpressionAndLocation) {
  try {
    STARATLAS_CHECK(2 < 1);
    FAIL() << "should have thrown";
  } catch (const InternalError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 < 1"), std::string::npos);
    EXPECT_NE(what.find("error_test"), std::string::npos);
  }
}

}  // namespace
}  // namespace staratlas
