#include "common/stats.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.h"

namespace staratlas {
namespace {

TEST(Stats, MeanAndSum) {
  const std::vector<double> xs = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(sum(xs), 10.0);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
}

TEST(Stats, WeightedMean) {
  const std::vector<double> xs = {10, 20};
  const std::vector<double> ws = {1, 3};
  EXPECT_DOUBLE_EQ(weighted_mean(xs, ws), 17.5);
}

TEST(Stats, WeightedMeanMismatchedSizesThrows) {
  const std::vector<double> xs = {1, 2};
  const std::vector<double> ws = {1};
  EXPECT_THROW(weighted_mean(xs, ws), InternalError);
}

TEST(Stats, WeightedMeanZeroWeightThrows) {
  const std::vector<double> xs = {1.0};
  const std::vector<double> ws = {0.0};
  EXPECT_THROW(weighted_mean(xs, ws), InternalError);
}

TEST(Stats, Stddev) {
  const std::vector<double> xs = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(stddev(xs), 2.0);
  EXPECT_DOUBLE_EQ(stddev(std::vector<double>{5.0}), 0.0);
}

TEST(Stats, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median(std::vector<double>{3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{4, 1, 2, 3}), 2.5);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{}), 0.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> xs = {10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 50.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 30.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 25), 20.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 12.5), 15.0);
}

TEST(Stats, PercentileBadPThrows) {
  const std::vector<double> xs = {1.0};
  EXPECT_THROW(percentile(xs, -1), InternalError);
  EXPECT_THROW(percentile(xs, 101), InternalError);
}

TEST(Stats, GeometricMean) {
  EXPECT_DOUBLE_EQ(geometric_mean(std::vector<double>{1, 4}), 2.0);
  EXPECT_DOUBLE_EQ(geometric_mean(std::vector<double>{2, 0}), 0.0);
  EXPECT_DOUBLE_EQ(geometric_mean(std::vector<double>{}), 0.0);
}

TEST(RunningStats, MatchesBatch) {
  RunningStats rs;
  const std::vector<double> xs = {2, 4, 4, 4, 5, 5, 7, 9};
  for (double x : xs) rs.add(x);
  EXPECT_EQ(rs.count(), xs.size());
  EXPECT_DOUBLE_EQ(rs.mean(), mean(xs));
  EXPECT_NEAR(rs.stddev(), stddev(xs), 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), 2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
  EXPECT_DOUBLE_EQ(rs.total(), sum(xs));
}

TEST(RunningStats, Empty) {
  RunningStats rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
  EXPECT_DOUBLE_EQ(rs.stddev(), 0.0);
}

}  // namespace
}  // namespace staratlas
