#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "common/error.h"

namespace staratlas {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b()) ? 1 : 0;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformRespectsBound) {
  Rng rng(7);
  for (u64 bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.uniform(bound), bound);
  }
}

TEST(Rng, UniformBoundOneAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.uniform(1), 0u);
}

TEST(Rng, UniformZeroBoundThrows) {
  Rng rng(7);
  EXPECT_THROW(rng.uniform(0), InternalError);
}

TEST(Rng, UniformRangeInclusive) {
  Rng rng(3);
  std::set<i64> seen;
  for (int i = 0; i < 500; ++i) {
    const i64 v = rng.uniform_range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(Rng, Uniform01InHalfOpenUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, Uniform01MeanNearHalf) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
    EXPECT_FALSE(rng.chance(-0.5));
    EXPECT_TRUE(rng.chance(1.5));
  }
}

TEST(Rng, ChanceFrequency) {
  Rng rng(17);
  int hits = 0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, NormalMoments) {
  Rng rng(19);
  const int n = 20'000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, NormalShifted) {
  Rng rng(23);
  double sum = 0.0;
  const int n = 10'000;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, LognormalMedian) {
  Rng rng(29);
  std::vector<double> values;
  for (int i = 0; i < 10'001; ++i) values.push_back(rng.lognormal_median(3.0, 0.8));
  std::nth_element(values.begin(), values.begin() + 5000, values.end());
  EXPECT_NEAR(values[5000], 3.0, 0.15);
}

TEST(Rng, LognormalRequiresPositiveMedian) {
  Rng rng(29);
  EXPECT_THROW(rng.lognormal_median(0.0, 1.0), InternalError);
}

TEST(Rng, ExponentialMean) {
  Rng rng(31);
  double sum = 0.0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.15);
}

TEST(Rng, PoissonSmallLambdaMean) {
  Rng rng(37);
  double sum = 0.0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(2.5));
  EXPECT_NEAR(sum / n, 2.5, 0.1);
}

TEST(Rng, PoissonLargeLambdaMean) {
  Rng rng(41);
  double sum = 0.0;
  const int n = 5'000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(200.0));
  EXPECT_NEAR(sum / n, 200.0, 2.0);
}

TEST(Rng, PoissonZeroLambda) {
  Rng rng(41);
  EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(43);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  const int n = 20'000;
  for (int i = 0; i < n; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(Rng, WeightedIndexAllZeroThrows) {
  Rng rng(43);
  std::vector<double> weights = {0.0, 0.0};
  EXPECT_THROW(rng.weighted_index(weights), InternalError);
}

TEST(Rng, WeightedIndexNegativeThrows) {
  Rng rng(43);
  std::vector<double> weights = {1.0, -0.1};
  EXPECT_THROW(rng.weighted_index(weights), InternalError);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(47);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<usize>(i)] = i;
  auto copy = v;
  rng.shuffle(copy);
  EXPECT_NE(copy, v);  // astronomically unlikely to be identity
  std::sort(copy.begin(), copy.end());
  EXPECT_EQ(copy, v);
}

TEST(Rng, ForkIndependentOfParentStream) {
  Rng a(99);
  Rng fork_before = a.fork(1);
  (void)a();  // advance parent
  Rng b(99);
  Rng fork_same = b.fork(1);
  // Forking is a pure function of (state, salt): same pre-advance state
  // gives the same child.
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fork_before(), fork_same());
}

TEST(Rng, ForkSaltsDiffer) {
  Rng a(99);
  Rng f1 = a.fork(1);
  Rng f2 = a.fork(2);
  int same = 0;
  for (int i = 0; i < 32; ++i) same += (f1() == f2()) ? 1 : 0;
  EXPECT_LT(same, 2);
}

TEST(Rng, ForkByLabelStable) {
  Rng a(99);
  Rng f1 = a.fork("expression");
  Rng f2 = a.fork("expression");
  for (int i = 0; i < 10; ++i) EXPECT_EQ(f1(), f2());
}

TEST(Rng, Hash64Deterministic) {
  EXPECT_EQ(hash64(12345), hash64(12345));
  EXPECT_NE(hash64(12345), hash64(12346));
}

// Distribution smoke: chi-square-ish uniformity over 16 buckets.
TEST(Rng, UniformBucketsBalanced) {
  Rng rng(53);
  int buckets[16] = {};
  const int n = 32'000;
  for (int i = 0; i < n; ++i) ++buckets[rng.uniform(16)];
  for (int b = 0; b < 16; ++b) {
    EXPECT_NEAR(static_cast<double>(buckets[b]), n / 16.0, n / 16.0 * 0.15);
  }
}

}  // namespace
}  // namespace staratlas
