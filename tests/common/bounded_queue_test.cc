// BoundedQueue: the streaming-ingest backpressure primitive. The MPMC
// stress tests here are deliberately racy in their scheduling (many
// producers and consumers hammering one small ring) so the sanitizer job
// that recompiles src/common with ASan/UBSan — and a TSan build, when one
// is run — exercises the queue's locking for real.
#include "common/bounded_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

namespace staratlas {
namespace {

TEST(BoundedQueue, FifoSingleThread) {
  BoundedQueue<int> q(4);
  EXPECT_EQ(q.capacity(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.push(i));
  for (int i = 0; i < 4; ++i) {
    const auto v = q.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_EQ(q.size(), 0u);
}

TEST(BoundedQueue, TryPushFailsWhenFullTryPopWhenEmpty) {
  BoundedQueue<int> q(2);
  EXPECT_FALSE(q.try_pop().has_value());
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));
  EXPECT_EQ(*q.try_pop(), 1);
  EXPECT_TRUE(q.try_push(3));
  EXPECT_EQ(*q.try_pop(), 2);
  EXPECT_EQ(*q.try_pop(), 3);
}

TEST(BoundedQueue, CloseDrainsThenEndsStream) {
  BoundedQueue<int> q(4);
  q.push(1);
  q.push(2);
  q.close();
  EXPECT_TRUE(q.closed());
  EXPECT_FALSE(q.push(3));  // rejected after close
  EXPECT_EQ(*q.pop(), 1);   // pending items still drain
  EXPECT_EQ(*q.pop(), 2);
  EXPECT_FALSE(q.pop().has_value());
  EXPECT_FALSE(q.pop().has_value());  // stays ended
}

TEST(BoundedQueue, CloseWakesBlockedPop) {
  BoundedQueue<int> q(1);
  std::thread waiter([&] { EXPECT_FALSE(q.pop().has_value()); });
  q.close();
  waiter.join();
}

TEST(BoundedQueue, CloseWakesBlockedPush) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.push(1));
  std::thread waiter([&] { EXPECT_FALSE(q.push(2)); });
  q.close();
  waiter.join();
}

TEST(BoundedQueue, MpmcStressPreservesEveryItem) {
  constexpr usize kProducers = 4;
  constexpr usize kConsumers = 4;
  constexpr usize kPerProducer = 5'000;
  BoundedQueue<u64> q(8);  // far smaller than the item count: real contention

  std::atomic<u64> popped_sum{0};
  std::atomic<u64> popped_count{0};
  std::vector<std::thread> consumers;
  for (usize c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      while (const auto v = q.pop()) {
        popped_sum.fetch_add(*v, std::memory_order_relaxed);
        popped_count.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::vector<std::thread> producers;
  for (usize p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (usize i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.push(p * kPerProducer + i + 1));
      }
    });
  }
  for (auto& t : producers) t.join();
  q.close();
  for (auto& t : consumers) t.join();

  const u64 n = kProducers * kPerProducer;
  EXPECT_EQ(popped_count.load(), n);
  EXPECT_EQ(popped_sum.load(), n * (n + 1) / 2);
  EXPECT_LE(q.high_water(), q.capacity());
  EXPECT_GE(q.high_water(), 1u);
}

TEST(BoundedQueue, HighWaterNeverExceedsCapacityUnderBackpressure) {
  // One slow consumer against a fast producer: the ring must absorb at
  // most `capacity` items — this is the peak-memory bound the streaming
  // engine relies on.
  BoundedQueue<int> q(3);
  std::thread producer([&] {
    for (int i = 0; i < 1'000; ++i) ASSERT_TRUE(q.push(i));
    q.close();
  });
  int seen = 0;
  while (q.pop()) ++seen;
  producer.join();
  EXPECT_EQ(seen, 1'000);
  EXPECT_LE(q.high_water(), 3u);
}

}  // namespace
}  // namespace staratlas
