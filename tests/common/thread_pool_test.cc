#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace staratlas {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleDrainsQueue) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&counter] { ++counter; });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, FuturePropagatesException) {
  ThreadPool pool(1);
  auto future = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, SizeReflectsWorkers) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ParallelForBlocks, CoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  parallel_for_blocks(pool, hits.size(), [&](usize begin, usize end) {
    for (usize i = begin; i < end; ++i) ++hits[i];
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForBlocks, EmptyRangeNoop) {
  ThreadPool pool(2);
  bool called = false;
  parallel_for_blocks(pool, 0, [&](usize, usize) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForBlocks, PropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(
      parallel_for_blocks(pool, 10,
                          [](usize begin, usize) {
                            if (begin == 0) throw std::runtime_error("bad");
                          }),
      std::runtime_error);
}

TEST(ParallelForBlocks, ComputesCorrectSum) {
  ThreadPool pool(4);
  std::vector<long> data(10'000);
  std::iota(data.begin(), data.end(), 0);
  std::atomic<long> total{0};
  parallel_for_blocks(pool, data.size(), [&](usize begin, usize end) {
    long local = 0;
    for (usize i = begin; i < end; ++i) local += data[i];
    total += local;
  });
  EXPECT_EQ(total.load(), 10'000L * 9'999 / 2);
}

}  // namespace
}  // namespace staratlas
