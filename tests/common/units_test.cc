#include "common/units.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace staratlas {
namespace {

TEST(ByteSize, Conversions) {
  const ByteSize gib = ByteSize::from_gib(1.0);
  EXPECT_EQ(gib.bytes(), 1ULL << 30);
  EXPECT_DOUBLE_EQ(gib.mib(), 1024.0);
  EXPECT_DOUBLE_EQ(gib.kib(), 1024.0 * 1024.0);
  EXPECT_DOUBLE_EQ(ByteSize::from_tib(1.0).gib(), 1024.0);
}

TEST(ByteSize, PaperSizes) {
  EXPECT_NEAR(ByteSize::from_gib(29.5).gib(), 29.5, 1e-9);
  EXPECT_NEAR(ByteSize::from_gib(85.0).gib(), 85.0, 1e-9);
}

TEST(ByteSize, Arithmetic) {
  const ByteSize a = ByteSize::from_mib(3.0);
  const ByteSize b = ByteSize::from_mib(1.5);
  EXPECT_DOUBLE_EQ((a + b).mib(), 4.5);
  EXPECT_DOUBLE_EQ((a - b).mib(), 1.5);
  EXPECT_DOUBLE_EQ((a * 2.0).mib(), 6.0);
  EXPECT_DOUBLE_EQ((0.5 * a).mib(), 1.5);
  ByteSize c = a;
  c += b;
  EXPECT_DOUBLE_EQ(c.mib(), 4.5);
}

TEST(ByteSize, Comparison) {
  EXPECT_LT(ByteSize::from_gib(29.5), ByteSize::from_gib(85.0));
  EXPECT_EQ(ByteSize(100), ByteSize(100));
  EXPECT_GE(ByteSize(101), ByteSize(100));
}

TEST(ByteSize, StrPicksUnit) {
  EXPECT_EQ(ByteSize(512).str(), "512 B");
  EXPECT_EQ(ByteSize::from_kib(2.0).str(), "2.00 KiB");
  EXPECT_EQ(ByteSize::from_mib(1.5).str(), "1.50 MiB");
  EXPECT_EQ(ByteSize::from_gib(29.5).str(), "29.50 GiB");
  EXPECT_EQ(ByteSize::from_tib(17.0).str(), "17.00 TiB");
  EXPECT_EQ(ByteSize(0).str(), "0 B");
}

struct ParseCase {
  const char* text;
  u64 bytes;
};

class ByteSizeParse : public ::testing::TestWithParam<ParseCase> {};

TEST_P(ByteSizeParse, Parses) {
  EXPECT_EQ(ByteSize::parse(GetParam().text).bytes(), GetParam().bytes);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ByteSizeParse,
    ::testing::Values(ParseCase{"1024", 1024},
                      ParseCase{"1 KiB", 1024},
                      ParseCase{"1KiB", 1024},
                      ParseCase{"2.5 MiB", 2'621'440},
                      ParseCase{"29.5GiB", 31'675'383'808ULL},
                      ParseCase{" 3 GB ", 3ULL << 30},
                      ParseCase{"0 B", 0},
                      ParseCase{"1 T", 1ULL << 40}));

TEST(ByteSizeParseErrors, Malformed) {
  EXPECT_THROW(ByteSize::parse(""), ParseError);
  EXPECT_THROW(ByteSize::parse("GiB"), ParseError);
  EXPECT_THROW(ByteSize::parse("12 XiB"), ParseError);
  EXPECT_THROW(ByteSize::parse("twelve"), ParseError);
}

}  // namespace
}  // namespace staratlas
