// ServiceServer / ServiceClient over a loopback Unix-domain socket: a
// SUBMIT round-trip returns exactly the in-process artifacts, errors
// travel as ERR frames with the admission status names, and STATS/PING/
// DRAIN behave per the protocol comment in rpc.h.
#include "service/rpc.h"

#include <gtest/gtest.h>
#include <unistd.h>

#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "io/fastq.h"
#include "service/artifacts.h"
#include "sim/library_profile.h"
#include "sim/read_simulator.h"
#include "testutil.h"

namespace staratlas {
namespace {

using staratlas::testing::world;

std::shared_ptr<const GenomeIndex> world_index() {
  return {std::shared_ptr<const GenomeIndex>(), &world().index111};
}

std::string fastq_text(const ReadSet& reads) {
  std::ostringstream out;
  write_fastq(out, reads.reads);
  return out.str();
}

// sun_path is ~108 bytes; keep the socket under a short /tmp name rather
// than the (potentially deep) test temp dir.
std::string socket_path(const char* tag) {
  return "/tmp/staratlas_rpc_" + std::string(tag) + "_" +
         std::to_string(::getpid()) + ".sock";
}

struct ServerFixture {
  ServiceConfig config;
  std::unique_ptr<AlignmentService> service;
  std::unique_ptr<ServiceServer> server;

  explicit ServerFixture(const char* tag, usize workers = 2) {
    config.engine.num_threads = workers;
    config.engine.collect_junctions = true;
    config.chunk_size = 32;
    service = std::make_unique<AlignmentService>(
        world_index(), &world().synthesizer->annotation(), config);
    server = std::make_unique<ServiceServer>(
        *service, &world().synthesizer->annotation(), socket_path(tag));
  }
};

TEST(ServiceRpc, SubmitReturnsInProcessArtifactsExactly) {
  ServerFixture fx("submit");
  const ReadSet reads =
      world().simulator->simulate(bulk_rna_profile(), 200, Rng(31));

  // In-process reference through the same service config.
  AlignmentService local(world_index(), &world().synthesizer->annotation(),
                         fx.config);
  SampleSubmission submission;
  submission.tenant = "t";
  submission.name = "s";
  submission.reads = reads;
  const std::string expect = render_sample_artifacts(
      local.submit_and_wait(std::move(submission)), world().index111,
      &world().synthesizer->annotation());

  ServiceClient client(fx.server->socket_path());
  const auto response = client.submit("t", "s", fastq_text(reads));
  ASSERT_TRUE(response.ok) << response.error_code << ": " << response.message;
  EXPECT_EQ(response.body, expect);
}

TEST(ServiceRpc, ConcurrentClientsAllSucceed) {
  ServerFixture fx("multi");
  const ReadSet reads =
      world().simulator->simulate(bulk_rna_profile(), 64, Rng(8));
  const std::string payload = fastq_text(reads);
  const std::string expect = [&] {
    AlignmentService local(world_index(), &world().synthesizer->annotation(),
                           fx.config);
    SampleSubmission submission;
    submission.tenant = "c0";
    submission.name = "s";
    submission.reads = reads;
    return render_sample_artifacts(local.submit_and_wait(std::move(submission)),
                                   world().index111,
                                   &world().synthesizer->annotation());
  }();

  constexpr int kClients = 4;
  std::vector<std::string> bodies(kClients);
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      ServiceClient client(fx.server->socket_path());
      const auto response =
          client.submit("c" + std::to_string(c), "s", payload);
      if (response.ok) bodies[c] = response.body;
    });
  }
  for (auto& t : clients) t.join();
  for (int c = 0; c < kClients; ++c) {
    // Artifacts are tenant-independent (same reads, same index).
    EXPECT_EQ(bodies[c], expect) << "client " << c;
  }
  EXPECT_EQ(fx.service->metrics().samples_completed, 4u);
}

TEST(ServiceRpc, MalformedFastqReturnsParseError) {
  ServerFixture fx("parse");
  ServiceClient client(fx.server->socket_path());
  const auto response =
      client.submit("t", "bad", "@r1\nACGT\n+\nII\n");  // length mismatch
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.error_code, "parse_error");
  // The connection survives an ERR frame.
  EXPECT_TRUE(client.ping().ok);
}

TEST(ServiceRpc, BackpressurePropagatesAsErrFrame) {
  ServerFixture fx("reject", 1);
  fx.server.reset();
  fx.service.reset();
  // Rebuild with a zero-capacity tenant so the rejection is deterministic.
  TenantProfile blocked;
  blocked.max_queued_samples = 0;
  fx.config.tenants["blocked"] = blocked;
  fx.service = std::make_unique<AlignmentService>(
      world_index(), &world().synthesizer->annotation(), fx.config);
  fx.server = std::make_unique<ServiceServer>(
      *fx.service, &world().synthesizer->annotation(), socket_path("reject2"));

  const ReadSet reads =
      world().simulator->simulate(bulk_rna_profile(), 32, Rng(3));
  ServiceClient client(fx.server->socket_path());
  const auto response = client.submit("blocked", "s", fastq_text(reads));
  EXPECT_FALSE(response.ok);
  EXPECT_EQ(response.error_code, "tenant_queue_full");
  // Other tenants are unaffected.
  EXPECT_TRUE(client.submit("open", "s", fastq_text(reads)).ok);
}

TEST(ServiceRpc, PingAndStats) {
  ServerFixture fx("stats");
  ServiceClient client(fx.server->socket_path());
  const auto pong = client.ping();
  ASSERT_TRUE(pong.ok);
  EXPECT_EQ(pong.body, "pong\n");

  const ReadSet reads =
      world().simulator->simulate(bulk_rna_profile(), 48, Rng(5));
  ASSERT_TRUE(client.submit("acme", "s0", fastq_text(reads)).ok);
  const auto stats = client.stats();
  ASSERT_TRUE(stats.ok);
  EXPECT_NE(stats.body.find("samples_completed"), std::string::npos);
  EXPECT_NE(stats.body.find("acme"), std::string::npos);
}

TEST(ServiceRpc, DrainStopsAdmissionAndCompletesInFlight) {
  ServerFixture fx("drain");
  const ReadSet reads =
      world().simulator->simulate(bulk_rna_profile(), 64, Rng(6));
  ServiceClient submitter(fx.server->socket_path());
  ASSERT_TRUE(submitter.submit("t", "before", fastq_text(reads)).ok);

  ServiceClient drainer(fx.server->socket_path());
  ASSERT_TRUE(drainer.drain().ok);
  EXPECT_TRUE(fx.service->draining());

  const auto after = submitter.submit("t", "after", fastq_text(reads));
  EXPECT_FALSE(after.ok);
  EXPECT_EQ(after.error_code, "draining");
}

TEST(ServiceRpc, ConnectToMissingSocketThrows) {
  EXPECT_THROW(ServiceClient("/tmp/staratlas_no_such_socket.sock"), IoError);
}

}  // namespace
}  // namespace staratlas
