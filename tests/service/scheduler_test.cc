// FairShareScheduler properties, checked deterministically through the
// non-blocking try_next_chunk() drain (every dispatch sequence here is a
// pure function of enqueue order, weights and chunk size — no threads).
#include "service/scheduler.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <thread>
#include <vector>

namespace staratlas {
namespace {

using Dispatch = FairShareScheduler::Dispatch;

std::vector<Dispatch> drain(FairShareScheduler& scheduler) {
  std::vector<Dispatch> out;
  while (auto d = scheduler.try_next_chunk()) out.push_back(*d);
  return out;
}

TEST(FairShareScheduler, SingleTenantDispatchesWholeJobInOrder) {
  FairShareScheduler scheduler(64);
  ASSERT_TRUE(scheduler.enqueue("a", 1, 200));
  const auto dispatches = drain(scheduler);
  ASSERT_EQ(dispatches.size(), 4u);  // 64+64+64+8
  u64 expect_begin = 0;
  for (const Dispatch& d : dispatches) {
    EXPECT_EQ(d.job_id, 1u);
    EXPECT_EQ(d.begin, expect_begin);
    expect_begin = d.end;
  }
  EXPECT_TRUE(dispatches.front().first_chunk);
  EXPECT_TRUE(dispatches.back().last_chunk);
  EXPECT_EQ(dispatches.back().end, 200u);
  EXPECT_EQ(scheduler.queued_reads(), 0u);
}

TEST(FairShareScheduler, EqualWeightsAlternateChunks) {
  FairShareScheduler scheduler(32);
  ASSERT_TRUE(scheduler.enqueue("a", 1, 320));
  ASSERT_TRUE(scheduler.enqueue("b", 2, 320));
  const auto dispatches = drain(scheduler);
  ASSERT_EQ(dispatches.size(), 20u);
  // Strict alternation: equal weights, equal chunk costs.
  for (usize i = 0; i + 1 < dispatches.size(); ++i) {
    EXPECT_NE(dispatches[i].tenant, dispatches[i + 1].tenant) << "at " << i;
  }
}

TEST(FairShareScheduler, WeightsSplitProportionally) {
  FairShareScheduler scheduler(32);
  scheduler.set_weight("heavy", 3.0);
  scheduler.set_weight("light", 1.0);
  ASSERT_TRUE(scheduler.enqueue("heavy", 1, 32 * 300));
  ASSERT_TRUE(scheduler.enqueue("light", 2, 32 * 300));
  std::map<TenantId, int> first100;
  for (int i = 0; i < 100; ++i) {
    auto d = scheduler.try_next_chunk();
    ASSERT_TRUE(d.has_value());
    ++first100[d->tenant];
  }
  // 3:1 split within rounding while both stay backlogged.
  EXPECT_NEAR(first100["heavy"], 75, 2);
  EXPECT_NEAR(first100["light"], 25, 2);
}

TEST(FairShareScheduler, LightTenantBoundedDelayUnderHeavyFlood) {
  // Heavy floods 50 ten-chunk samples; light submits one single-chunk
  // sample afterwards. Fair share means light's chunk dispatches within
  // a couple of chunks of joining, not after heavy's whole backlog.
  FairShareScheduler scheduler(64);
  for (u64 j = 0; j < 50; ++j) {
    ASSERT_TRUE(scheduler.enqueue("heavy", j, 64 * 10));
  }
  // Let heavy run a while first (vtime advances).
  for (int i = 0; i < 37; ++i) {
    ASSERT_TRUE(scheduler.try_next_chunk().has_value());
  }
  ASSERT_TRUE(scheduler.enqueue("light", 1000, 64));
  int until_light = 0;
  for (;;) {
    auto d = scheduler.try_next_chunk();
    ASSERT_TRUE(d.has_value());
    if (d->tenant == "light") break;
    ++until_light;
    ASSERT_LT(until_light, 3) << "light tenant starved behind heavy flood";
  }
}

TEST(FairShareScheduler, IdleTenantRejoinsAtFloorWithoutBankedCredit) {
  // Tenant b goes idle while a runs alone; when b returns it must not
  // have banked credit (which would let it monopolize) nor be punished
  // (which would starve it): it rejoins at the virtual floor and shares
  // 50/50 from there.
  FairShareScheduler scheduler(32);
  ASSERT_TRUE(scheduler.enqueue("a", 1, 32 * 100));
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(scheduler.try_next_chunk().has_value());  // a runs alone
  }
  ASSERT_TRUE(scheduler.enqueue("b", 2, 32 * 100));
  std::map<TenantId, int> next40;
  for (int i = 0; i < 40; ++i) {
    auto d = scheduler.try_next_chunk();
    ASSERT_TRUE(d.has_value());
    ++next40[d->tenant];
  }
  EXPECT_NEAR(next40["a"], 20, 1);
  EXPECT_NEAR(next40["b"], 20, 1);
}

TEST(FairShareScheduler, FifoWithinTenant) {
  FairShareScheduler scheduler(64);
  ASSERT_TRUE(scheduler.enqueue("a", 1, 64));
  ASSERT_TRUE(scheduler.enqueue("a", 2, 64));
  ASSERT_TRUE(scheduler.enqueue("a", 3, 64));
  const auto dispatches = drain(scheduler);
  ASSERT_EQ(dispatches.size(), 3u);
  EXPECT_EQ(dispatches[0].job_id, 1u);
  EXPECT_EQ(dispatches[1].job_id, 2u);
  EXPECT_EQ(dispatches[2].job_id, 3u);
}

TEST(FairShareScheduler, WorkConservingWhenOneTenantAlone) {
  // No reservation for absent tenants: a lone tenant gets every dispatch
  // back-to-back even with other tenants registered (weights set).
  FairShareScheduler scheduler(16);
  scheduler.set_weight("ghost", 8.0);
  ASSERT_TRUE(scheduler.enqueue("only", 1, 16 * 10));
  const auto dispatches = drain(scheduler);
  ASSERT_EQ(dispatches.size(), 10u);
  for (const Dispatch& d : dispatches) EXPECT_EQ(d.tenant, "only");
}

TEST(FairShareScheduler, CancelUnstartedKeepsStartedJobs) {
  FairShareScheduler scheduler(32);
  ASSERT_TRUE(scheduler.enqueue("a", 1, 96));  // will start
  ASSERT_TRUE(scheduler.enqueue("a", 2, 96));  // never starts
  ASSERT_TRUE(scheduler.enqueue("b", 3, 96));  // never starts
  auto first = scheduler.try_next_chunk();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->job_id, 1u);

  auto cancelled = scheduler.cancel_unstarted();
  std::sort(cancelled.begin(), cancelled.end());
  ASSERT_EQ(cancelled.size(), 2u);
  EXPECT_EQ(cancelled[0], 2u);
  EXPECT_EQ(cancelled[1], 3u);

  // Job 1's remaining chunks still drain.
  const auto rest = drain(scheduler);
  ASSERT_EQ(rest.size(), 2u);
  EXPECT_EQ(rest[0].job_id, 1u);
  EXPECT_TRUE(rest[1].last_chunk);
}

TEST(FairShareScheduler, CloseRejectsNewJobsAndDrainsRemaining) {
  FairShareScheduler scheduler(64);
  ASSERT_TRUE(scheduler.enqueue("a", 1, 128));
  scheduler.close();
  EXPECT_FALSE(scheduler.enqueue("a", 2, 64));
  EXPECT_EQ(drain(scheduler).size(), 2u);
  // Blocking form returns nullopt once closed and empty.
  EXPECT_FALSE(scheduler.next_chunk().has_value());
}

TEST(FairShareScheduler, CloseWakesBlockedWorkers) {
  FairShareScheduler scheduler(64);
  std::vector<std::thread> workers;
  std::atomic<int> exited{0};
  for (int t = 0; t < 3; ++t) {
    workers.emplace_back([&] {
      while (scheduler.next_chunk().has_value()) {
      }
      ++exited;
    });
  }
  scheduler.close();
  for (auto& worker : workers) worker.join();
  EXPECT_EQ(exited.load(), 3);
}

TEST(FairShareScheduler, SimulatedP99StaysBoundedUnderFlood) {
  // Deterministic latency simulation: unit-cost chunks, one virtual
  // engine. Light submits a single-chunk sample every 20 ticks while
  // heavy keeps a deep backlog. Light's completion delay (ticks from
  // submit to its chunk dispatching) must stay small and bounded —
  // the scheduling-theory version of the bench's p99 gate.
  FairShareScheduler scheduler(1);
  u64 next_heavy = 1;
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(scheduler.enqueue("heavy", next_heavy++, 16));
  }
  std::map<u64, int> submit_tick;
  std::vector<int> light_delays;
  u64 next_light = 100000;
  for (int tick = 0; tick < 2000; ++tick) {
    if (tick % 20 == 0) {
      submit_tick[next_light] = tick;
      ASSERT_TRUE(scheduler.enqueue("light", next_light++, 1));
    }
    auto d = scheduler.try_next_chunk();
    ASSERT_TRUE(d.has_value());
    if (d->tenant == "light") {
      light_delays.push_back(tick - submit_tick[d->job_id]);
    }
    if (d->tenant == "heavy" && d->last_chunk) {
      ASSERT_TRUE(scheduler.enqueue("heavy", next_heavy++, 16));  // refill
    }
  }
  ASSERT_GT(light_delays.size(), 50u);
  int worst = 0;
  for (int delay : light_delays) worst = std::max(worst, delay);
  // Fair share: light waits ~2 ticks (its share slot), never the backlog
  // (which is hundreds of ticks deep).
  EXPECT_LE(worst, 4);
}

}  // namespace
}  // namespace staratlas
