// AlignmentService end-to-end: byte-identity against AlignmentEngine::run,
// multi-tenant completion, backpressure, fairness under flood, graceful
// drain, and the shared-index-cache single-load/pinning contract.
#include "service/service.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "align/final_log.h"
#include "common/rng.h"
#include "index/shared_cache.h"
#include "service/artifacts.h"
#include "sim/library_profile.h"
#include "sim/read_simulator.h"
#include "testutil.h"

namespace staratlas {
namespace {

using staratlas::testing::world;

std::shared_ptr<const GenomeIndex> world_index() {
  // Aliasing shared_ptr: the test world outlives every service here.
  return {std::shared_ptr<const GenomeIndex>(), &world().index111};
}

ServiceConfig small_config(usize workers, usize chunk) {
  ServiceConfig config;
  config.engine.num_threads = workers;
  config.engine.collect_junctions = true;
  config.chunk_size = chunk;
  return config;
}

/// The unsharded reference artifacts for `reads`, rendered through the
/// same artifact path the service responses use.
std::string reference_artifacts(const ReadSet& reads,
                                const EngineConfig& engine_config,
                                AlignmentRun* run_out = nullptr) {
  AlignmentEngine engine(world().index111, &world().synthesizer->annotation(),
                         engine_config);
  AlignmentRun run = engine.run(reads);
  SampleResult as_result;
  as_result.total_reads = reads.size();
  u64 bases = 0;
  for (const auto& read : reads.reads) bases += read.sequence.size();
  as_result.mean_read_length =
      reads.empty() ? 0.0
                    : static_cast<double>(bases) /
                          static_cast<double>(reads.size());
  as_result.stats = run.stats;
  as_result.gene_counts = run.gene_counts;
  as_result.junctions = run.junctions;
  if (run_out) *run_out = run;
  return render_sample_artifacts(as_result, world().index111,
                                 &world().synthesizer->annotation());
}

TEST(AlignmentService, SingleSampleByteIdenticalToEngineRun) {
  const ReadSet reads =
      world().simulator->simulate(bulk_rna_profile(), 300, Rng(4242));
  const ServiceConfig config = small_config(2, 32);

  AlignmentRun reference_run;
  const std::string expect =
      reference_artifacts(reads, config.engine, &reference_run);

  AlignmentService service(world_index(), &world().synthesizer->annotation(),
                           config);
  SampleSubmission submission;
  submission.tenant = "t0";
  submission.name = "s0";
  submission.reads = reads;
  const SampleResult result = service.submit_and_wait(std::move(submission));

  EXPECT_FALSE(result.rejected_at_drain);
  EXPECT_EQ(result.total_reads, reads.size());
  ASSERT_EQ(result.outcomes.size(), reference_run.outcomes.size());
  for (usize i = 0; i < result.outcomes.size(); ++i) {
    ASSERT_EQ(result.outcomes[i], reference_run.outcomes[i]) << "read " << i;
  }
  // The headline gate: rendered artifacts are string-equal to the
  // unsharded CLI path.
  EXPECT_EQ(render_sample_artifacts(result, world().index111,
                                    &world().synthesizer->annotation()),
            expect);
  EXPECT_GE(result.latency_secs, result.queue_secs);
}

TEST(AlignmentService, ManyTenantsManySamplesAllByteIdentical) {
  // Sample sizes straddle chunk boundaries (empty handled separately) so
  // every merge shape occurs; three tenants interleave on two workers.
  const ServiceConfig config = small_config(2, 32);
  AlignmentService service(world_index(), &world().synthesizer->annotation(),
                           config);

  const usize sizes[] = {1, 31, 32, 33, 100, 128, 200};
  struct Pending {
    ReadSet reads;
    AlignmentService::Ticket ticket;
  };
  std::vector<Pending> pending;
  u64 seed = 1;
  for (const char* tenant : {"alpha", "beta", "gamma"}) {
    for (const usize n : sizes) {
      Pending p;
      p.reads = world().simulator->simulate(bulk_rna_profile(), n, Rng(seed));
      SampleSubmission submission;
      submission.tenant = tenant;
      submission.name = "s" + std::to_string(seed);
      submission.reads = p.reads;
      p.ticket = service.submit(std::move(submission));
      ASSERT_EQ(p.ticket.status, SubmitStatus::kAccepted);
      pending.push_back(std::move(p));
      ++seed;
    }
  }
  for (Pending& p : pending) {
    const SampleResult result = p.ticket.result.get();
    ASSERT_FALSE(result.rejected_at_drain);
    EXPECT_EQ(render_sample_artifacts(result, world().index111,
                                      &world().synthesizer->annotation()),
              reference_artifacts(p.reads, config.engine))
        << result.tenant << "/" << result.name;
  }
  const auto metrics = service.metrics();
  EXPECT_EQ(metrics.samples_completed, pending.size());
  EXPECT_EQ(metrics.tenants.at("alpha").completed, std::size(sizes));
  EXPECT_EQ(metrics.queue_depth_samples, 0u);
}

TEST(AlignmentService, EmptySampleCompletesImmediately) {
  AlignmentService service(world_index(), &world().synthesizer->annotation(),
                           small_config(1, 64));
  SampleSubmission submission;
  submission.tenant = "t";
  submission.name = "empty";
  const SampleResult result = service.submit_and_wait(std::move(submission));
  EXPECT_EQ(result.total_reads, 0u);
  EXPECT_EQ(result.stats.processed, 0u);
  EXPECT_TRUE(result.outcomes.empty());
  EXPECT_FALSE(result.rejected_at_drain);
}

TEST(AlignmentService, BackpressureRejectsBeyondTenantCaps) {
  ServiceConfig config = small_config(1, 32);
  TenantProfile tight;
  tight.max_queued_samples = 2;
  config.tenants["tight"] = tight;
  AlignmentService service(world_index(), &world().synthesizer->annotation(),
                           config);

  const ReadSet reads =
      world().simulator->simulate(bulk_rna_profile(), 128, Rng(9));
  std::vector<AlignmentService::Ticket> tickets;
  usize rejected = 0;
  for (int i = 0; i < 8; ++i) {
    SampleSubmission submission;
    submission.tenant = "tight";
    submission.name = "s" + std::to_string(i);
    submission.reads = reads;
    auto ticket = service.submit(std::move(submission));
    if (ticket.status == SubmitStatus::kAccepted) {
      tickets.push_back(std::move(ticket));
    } else {
      EXPECT_EQ(ticket.status, SubmitStatus::kTenantQueueFull);
      ++rejected;
    }
  }
  // At most 2 queued+in-flight at once, so each acceptance beyond the
  // cap must be paid for by a completion that landed mid-burst — a bound
  // the metrics make observable and that holds under any scheduling
  // (completions only grow between the burst and the metrics read, which
  // can only loosen the bound in the safe direction).
  const usize completed_mid_burst = service.metrics().samples_completed;
  EXPECT_EQ(rejected + tickets.size(), 8u);
  EXPECT_LE(tickets.size(), 2u + completed_mid_burst);
  for (auto& ticket : tickets) {
    EXPECT_FALSE(ticket.result.get().rejected_at_drain);
  }
  EXPECT_EQ(service.metrics().tenants.at("tight").rejected, rejected);
}

TEST(AlignmentService, LightTenantCompletesAheadOfHeavyBacklog) {
  // Chunk-granular fair share on one worker: a light single-chunk sample
  // submitted into a deep heavy backlog completes after at most a couple
  // more heavy completions — never behind the whole backlog.
  ServiceConfig config = small_config(1, 32);
  AlignmentService service(world_index(), &world().synthesizer->annotation(),
                           config);
  const ReadSet heavy_reads =
      world().simulator->simulate(bulk_rna_profile(), 256, Rng(21));
  std::vector<AlignmentService::Ticket> heavy;
  for (int i = 0; i < 12; ++i) {
    SampleSubmission submission;
    submission.tenant = "heavy";
    submission.name = "h" + std::to_string(i);
    submission.reads = heavy_reads;
    auto ticket = service.submit(std::move(submission));
    ASSERT_EQ(ticket.status, SubmitStatus::kAccepted);
    heavy.push_back(std::move(ticket));
  }
  // Wait until the flood is mid-stream (first heavy sample done).
  heavy.front().result.wait();

  SampleSubmission light;
  light.tenant = "light";
  light.name = "l0";
  light.reads = world().simulator->simulate(bulk_rna_profile(), 32, Rng(22));
  auto light_ticket = service.submit(std::move(light));
  ASSERT_EQ(light_ticket.status, SubmitStatus::kAccepted);
  light_ticket.result.wait();

  usize heavy_done = 0;
  for (auto& ticket : heavy) {
    if (ticket.result.wait_for(std::chrono::seconds(0)) ==
        std::future_status::ready) {
      ++heavy_done;
    }
  }
  // Several heavies were already done pre-submission; the key claim is
  // that MOST of the backlog was still pending when light finished.
  EXPECT_LE(heavy_done, 6u) << "light tenant waited behind the heavy backlog";
  for (auto& ticket : heavy) ticket.result.wait();
}

TEST(AlignmentService, DrainCompletesInFlightAndRejectsQueued) {
  ServiceConfig config = small_config(1, 32);
  AlignmentService service(world_index(), &world().synthesizer->annotation(),
                           config);
  const ReadSet reads =
      world().simulator->simulate(bulk_rna_profile(), 256, Rng(5));
  std::vector<AlignmentService::Ticket> tickets;
  for (int i = 0; i < 6; ++i) {
    SampleSubmission submission;
    submission.tenant = "t";
    submission.name = "s" + std::to_string(i);
    submission.reads = reads;
    auto ticket = service.submit(std::move(submission));
    ASSERT_EQ(ticket.status, SubmitStatus::kAccepted);
    tickets.push_back(std::move(ticket));
  }
  service.drain();
  EXPECT_TRUE(service.draining());

  usize completed = 0;
  usize rejected = 0;
  for (auto& ticket : tickets) {
    const SampleResult result = ticket.result.get();  // all must resolve
    if (result.rejected_at_drain) {
      ++rejected;
      EXPECT_TRUE(result.outcomes.empty());
      EXPECT_EQ(result.stats.processed, 0u);
    } else {
      ++completed;
      // In-flight samples finish completely, never partially.
      EXPECT_EQ(result.stats.processed, reads.size());
      EXPECT_EQ(result.outcomes.size(), reads.size());
    }
  }
  EXPECT_EQ(completed + rejected, tickets.size());
  EXPECT_GE(rejected, 1u);  // the backlog cannot all have started

  // Post-drain submissions are refused outright.
  SampleSubmission late;
  late.tenant = "t";
  late.name = "late";
  late.reads = reads;
  EXPECT_EQ(service.submit(std::move(late)).status, SubmitStatus::kDraining);
  // Idempotent (and the destructor will call it again).
  service.drain();
}

TEST(AlignmentService, SharedCacheLoadsOnceAndStaysPinned) {
  SharedIndexCache cache(ByteSize::from_gib(4.0));
  usize loader_calls = 0;
  const auto loader = [&loader_calls] {
    ++loader_calls;
    GenomeSpec spec;
    spec.num_chromosomes = 1;
    spec.chromosome_length = 40'000;
    spec.genes_per_chromosome = 4;
    spec.seed = 77;
    const GenomeSynthesizer synthesizer(spec);
    return GenomeIndex::build(synthesizer.make_release111());
  };
  ServiceConfig config;
  config.engine.num_threads = 2;
  config.engine.quant_gene_counts = false;  // loader genome != world annotation
  config.chunk_size = 32;
  {
    AlignmentService service(cache, "svc-index", loader, nullptr, config);
    std::vector<AlignmentService::Ticket> tickets;
    for (int i = 0; i < 10; ++i) {
      SampleSubmission submission;
      submission.tenant = i % 2 ? "a" : "b";
      submission.name = "s" + std::to_string(i);
      submission.reads =
          world().simulator->simulate(bulk_rna_profile(), 64, Rng(i + 1));
      auto ticket = service.submit(std::move(submission));
      ASSERT_EQ(ticket.status, SubmitStatus::kAccepted);
      tickets.push_back(std::move(ticket));
    }
    for (auto& ticket : tickets) ticket.result.wait();

    const auto metrics = service.metrics();
    EXPECT_EQ(metrics.index_cache_loads, 1u);  // zero duplicate loads
    EXPECT_EQ(loader_calls, 1u);
    EXPECT_GE(metrics.index_cache_hits, 10u);  // one pin per sample
    EXPECT_TRUE(cache.resident("svc-index"));
  }
  // Service gone: the entry is unpinned but still cached for the next
  // service (LoadAndKeep semantics).
  EXPECT_TRUE(cache.resident("svc-index"));
  EXPECT_EQ(loader_calls, 1u);
}

}  // namespace
}  // namespace staratlas
