#include "service/admission.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/rng.h"

namespace staratlas {
namespace {

AdmissionLimits limits(usize samples, u64 reads) {
  AdmissionLimits l;
  l.max_total_samples = samples;
  l.max_total_reads = reads;
  return l;
}

TEST(AdmissionController, AdmitsUntilTenantSampleCap) {
  AdmissionController admission(limits(100, 1 << 20));
  TenantProfile profile;
  profile.max_queued_samples = 2;
  admission.set_profile("t", profile);
  EXPECT_EQ(admission.try_admit("t", 10), SubmitStatus::kAccepted);
  EXPECT_EQ(admission.try_admit("t", 10), SubmitStatus::kAccepted);
  EXPECT_EQ(admission.try_admit("t", 10), SubmitStatus::kTenantQueueFull);
  admission.release("t", 10);
  EXPECT_EQ(admission.try_admit("t", 10), SubmitStatus::kAccepted);
}

TEST(AdmissionController, TenantReadCapIndependentOfSampleCap) {
  AdmissionController admission(limits(100, 1 << 20));
  TenantProfile profile;
  profile.max_queued_samples = 100;
  profile.max_queued_reads = 1000;
  admission.set_profile("t", profile);
  EXPECT_EQ(admission.try_admit("t", 900), SubmitStatus::kAccepted);
  EXPECT_EQ(admission.try_admit("t", 200), SubmitStatus::kTenantQueueFull);
  EXPECT_EQ(admission.try_admit("t", 100), SubmitStatus::kAccepted);
}

TEST(AdmissionController, GlobalCapsRejectAcrossTenants) {
  AdmissionController admission(limits(3, 1 << 20));
  EXPECT_EQ(admission.try_admit("a", 1), SubmitStatus::kAccepted);
  EXPECT_EQ(admission.try_admit("b", 1), SubmitStatus::kAccepted);
  EXPECT_EQ(admission.try_admit("c", 1), SubmitStatus::kAccepted);
  EXPECT_EQ(admission.try_admit("d", 1), SubmitStatus::kGlobalQueueFull);
  admission.release("b", 1);
  EXPECT_EQ(admission.try_admit("d", 1), SubmitStatus::kAccepted);
}

TEST(AdmissionController, DrainRejectsEverything) {
  AdmissionController admission(limits(100, 1 << 20));
  EXPECT_EQ(admission.try_admit("t", 1), SubmitStatus::kAccepted);
  admission.begin_drain();
  EXPECT_TRUE(admission.draining());
  EXPECT_EQ(admission.try_admit("t", 1), SubmitStatus::kDraining);
  // Release still works during drain (in-flight samples completing).
  admission.release("t", 1);
  EXPECT_EQ(admission.depths().total_samples, 0u);
  EXPECT_EQ(admission.depths().rejected_draining, 1u);
}

TEST(AdmissionController, DepthsTrackHighWaterAndCounters) {
  AdmissionController admission(limits(100, 1 << 20));
  admission.try_admit("t", 5);
  admission.try_admit("t", 5);
  admission.release("t", 5);
  admission.try_admit("u", 7);
  const auto depths = admission.depths();
  EXPECT_EQ(depths.tenants.at("t").samples, 1u);
  EXPECT_EQ(depths.tenants.at("t").reads, 5u);
  EXPECT_EQ(depths.tenants.at("t").sample_high_water, 2u);
  EXPECT_EQ(depths.tenants.at("t").admitted, 2u);
  EXPECT_EQ(depths.total_samples, 2u);
  EXPECT_EQ(depths.total_reads, 12u);
  EXPECT_EQ(depths.total_sample_high_water, 2u);
}

TEST(AdmissionController, SubmitStatusNames) {
  EXPECT_STREQ(submit_status_name(SubmitStatus::kAccepted), "accepted");
  EXPECT_STREQ(submit_status_name(SubmitStatus::kTenantQueueFull),
               "tenant_queue_full");
  EXPECT_STREQ(submit_status_name(SubmitStatus::kGlobalQueueFull),
               "global_queue_full");
  EXPECT_STREQ(submit_status_name(SubmitStatus::kDraining), "draining");
}

TEST(AdmissionController, HammeredAdmitReleaseStaysCoherent) {
  // Many threads admit/release concurrently against tight caps; the
  // controller's internal accounting (guarded by STARATLAS_CHECKs in
  // release) must never go negative or leak, and the final depths must
  // return to zero.
  AdmissionController admission(limits(16, 1 << 14));
  TenantProfile profile;
  profile.max_queued_samples = 6;
  profile.max_queued_reads = 1 << 12;
  for (const char* t : {"a", "b", "c"}) admission.set_profile(t, profile);

  constexpr int kThreads = 8;
  constexpr int kIters = 200;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(static_cast<u64>(t) + 1);
      const char* tenants[] = {"a", "b", "c"};
      for (int i = 0; i < kIters; ++i) {
        const char* tenant = tenants[rng.uniform(3)];
        const u64 reads = 1 + rng.uniform(512);
        if (admission.try_admit(tenant, reads) == SubmitStatus::kAccepted) {
          admission.release(tenant, reads);
        }
      }
    });
  }
  for (auto& worker : workers) worker.join();
  const auto depths = admission.depths();
  EXPECT_EQ(depths.total_samples, 0u);
  EXPECT_EQ(depths.total_reads, 0u);
  for (const auto& [tenant, depth] : depths.tenants) {
    EXPECT_EQ(depth.samples, 0u) << tenant;
    EXPECT_EQ(depth.reads, 0u) << tenant;
  }
}

}  // namespace
}  // namespace staratlas
