#include "core/atlas_sim.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace staratlas {
namespace {

std::vector<SraSample> small_catalog(usize n = 40, u64 seed = 5) {
  CatalogSpec spec;
  spec.num_samples = n;
  spec.single_cell_fraction = 0.10;
  spec.seed = seed;
  return make_catalog(spec);
}

AtlasConfig base_config() {
  AtlasConfig config;
  config.use_release(111);
  config.asg.max_size = 8;
  config.seed = 77;
  return config;
}

TEST(AtlasSim, CampaignCompletesAllSamples) {
  const auto catalog = small_catalog();
  AtlasSimulation sim(catalog, base_config());
  const AtlasReport report = sim.run();
  EXPECT_EQ(report.samples_total, catalog.size());
  EXPECT_EQ(report.samples_completed + report.samples_early_stopped +
                report.samples_rejected_late + report.samples_dead_lettered,
            catalog.size());
  EXPECT_EQ(report.samples_dead_lettered, 0u);
  EXPECT_GT(report.makespan_hours, 0.0);
  EXPECT_GT(report.total_cost_usd, 0.0);
  EXPECT_GT(report.instance_hours, 0.0);
  EXPECT_GT(report.peak_instances, 0u);
  EXPECT_GT(report.throughput_samples_per_hour(), 0.0);
}

TEST(AtlasSim, EarlyStoppingStopsSingleCellSamples) {
  const auto catalog = small_catalog(60);
  usize single_cell = 0;
  for (const auto& sample : catalog) {
    single_cell += sample.type == LibraryType::kSingleCell ? 1 : 0;
  }
  AtlasSimulation sim(catalog, base_config());
  const AtlasReport report = sim.run();
  // Nearly every single-cell sample is caught; a borderline draw may slip
  // past the noisy checkpoint observation, exactly as in production.
  EXPECT_GE(report.samples_early_stopped + 1, single_cell);
  EXPECT_LE(report.samples_early_stopped, single_cell);
  EXPECT_GT(report.align_hours_saved, 0.0);
}

TEST(AtlasSim, DisablingEarlyStoppingWastesAlignHours) {
  const auto catalog = small_catalog(60);
  AtlasConfig with = base_config();
  AtlasConfig without = base_config();
  without.early_stop.enabled = false;
  const AtlasReport report_with = AtlasSimulation(catalog, with).run();
  const AtlasReport report_without = AtlasSimulation(catalog, without).run();
  EXPECT_EQ(report_without.samples_early_stopped, 0u);
  EXPECT_GT(report_without.unnecessary_align_hours, 0.0);
  EXPECT_LT(report_with.align_hours_spent, report_without.align_hours_spent);
  EXPECT_LT(report_with.total_cost_usd, report_without.total_cost_usd);
}

TEST(AtlasSim, Release108CostsMoreThan111) {
  const auto catalog = small_catalog(30);
  AtlasConfig r111 = base_config();
  AtlasConfig r108 = base_config();
  r108.use_release(108);
  const AtlasReport rep111 = AtlasSimulation(catalog, r111).run();
  const AtlasReport rep108 = AtlasSimulation(catalog, r108).run();
  EXPECT_GT(rep108.align_hours_spent, 5.0 * rep111.align_hours_spent);
  EXPECT_GT(rep108.total_cost_usd, 2.0 * rep111.total_cost_usd);
}

TEST(AtlasSim, SpotCheaperDespiteInterruptions) {
  const auto catalog = small_catalog(40);
  AtlasConfig ondemand = base_config();
  AtlasConfig spot = base_config();
  spot.spot = true;
  spot.mean_time_to_interruption = VirtualDuration::hours(12);
  const AtlasReport rep_od = AtlasSimulation(catalog, ondemand).run();
  const AtlasReport rep_spot = AtlasSimulation(catalog, spot).run();
  EXPECT_LT(rep_spot.total_cost_usd, rep_od.total_cost_usd);
  // Everything still completes (redelivery via visibility timeout).
  EXPECT_EQ(rep_spot.samples_completed + rep_spot.samples_early_stopped +
                rep_spot.samples_rejected_late,
            catalog.size() - rep_spot.samples_dead_lettered);
}

TEST(AtlasSim, FrequentInterruptionsStillConverge) {
  const auto catalog = small_catalog(20);
  AtlasConfig config = base_config();
  config.spot = true;
  config.mean_time_to_interruption = VirtualDuration::hours(1.5);
  config.visibility_timeout = VirtualDuration::hours(2);
  const AtlasReport report = AtlasSimulation(catalog, config).run();
  EXPECT_GE(report.interruptions, 1u);
  EXPECT_EQ(report.samples_completed + report.samples_early_stopped +
                report.samples_rejected_late + report.samples_dead_lettered,
            catalog.size());
}

TEST(AtlasSim, IndexMustFitInstanceMemory) {
  AtlasConfig config = base_config();
  config.use_release(108);            // 85 GiB index
  config.instance_type = "r6a.2xlarge";  // 64 GiB RAM
  EXPECT_THROW(AtlasSimulation(small_catalog(5), config), InvalidArgument);
}

TEST(AtlasSim, SmallerIndexAllowsSmallerInstance) {
  AtlasConfig config = base_config();  // 29.5 GiB index
  config.instance_type = "r6a.2xlarge";
  AtlasSimulation sim(small_catalog(10), config);
  const AtlasReport report = sim.run();
  EXPECT_EQ(report.samples_dead_lettered, 0u);
  EXPECT_GT(report.samples_completed, 0u);
}

TEST(AtlasSim, DeterministicAcrossRuns) {
  const auto catalog = small_catalog(25);
  const AtlasReport a = AtlasSimulation(catalog, base_config()).run();
  const AtlasReport b = AtlasSimulation(catalog, base_config()).run();
  EXPECT_DOUBLE_EQ(a.makespan_hours, b.makespan_hours);
  EXPECT_DOUBLE_EQ(a.total_cost_usd, b.total_cost_usd);
  EXPECT_EQ(a.samples_early_stopped, b.samples_early_stopped);
  EXPECT_EQ(a.instances_launched, b.instances_launched);
}

TEST(AtlasSim, UseReleaseSetsIndexSize) {
  AtlasConfig config;
  config.use_release(108);
  EXPECT_NEAR(config.index_bytes.gib(), 85.0, 1e-9);
  config.use_release(111);
  EXPECT_NEAR(config.index_bytes.gib(), 29.5, 1e-9);
  EXPECT_THROW(config.use_release(110), InternalError);
}

TEST(AtlasSim, AsgScalesFleetWithQueue) {
  const auto catalog = small_catalog(60);
  AtlasConfig config = base_config();
  config.asg.max_size = 6;
  const AtlasReport report = AtlasSimulation(catalog, config).run();
  EXPECT_LE(report.peak_instances, 6u);
  EXPECT_GE(report.peak_instances, 2u);
}

TEST(AtlasSim, EmptyCatalogRejected) {
  EXPECT_THROW(AtlasSimulation({}, base_config()), InternalError);
}

TEST(AtlasSim, MetricsRecorded) {
  const auto catalog = small_catalog(30);
  const AtlasReport report = AtlasSimulation(catalog, base_config()).run();
  for (const char* name :
       {"queue_depth", "instances_running", "cost_usd", "samples_done"}) {
    ASSERT_TRUE(report.metrics.has(name)) << name;
    EXPECT_GE(report.metrics.series(name).points().size(), 2u) << name;
  }
  // Queue drains; completions and cost are monotone non-decreasing.
  EXPECT_DOUBLE_EQ(report.metrics.series("queue_depth").final_value(), 0.0);
  const auto& done = report.metrics.series("samples_done").points();
  const auto& cost = report.metrics.series("cost_usd").points();
  for (usize i = 1; i < done.size(); ++i) {
    EXPECT_GE(done[i].value, done[i - 1].value);
  }
  for (usize i = 1; i < cost.size(); ++i) {
    EXPECT_GE(cost[i].value + 1e-9, cost[i - 1].value);
  }
  EXPECT_DOUBLE_EQ(done.back().value, static_cast<double>(catalog.size()));
  // The sampled cost converges on the billed total.
  EXPECT_NEAR(cost.back().value, report.total_cost_usd,
              0.15 * report.total_cost_usd + 0.01);
}

double total_stage_waste(const AtlasReport& report) {
  double total = 0.0;
  for (usize s = 0; s < kNumSampleStages; ++s) {
    total += report.wasted_hours_stage[s];
  }
  return total;
}

usize samples_terminal(const AtlasReport& report) {
  return report.samples_completed + report.samples_early_stopped +
         report.samples_rejected_late + report.samples_dead_lettered;
}

TEST(AtlasSim, FaultFreeRunReportsNoWaste) {
  const auto catalog = small_catalog(30);
  const AtlasReport report = AtlasSimulation(catalog, base_config()).run();
  EXPECT_DOUBLE_EQ(report.wasted_hours_interrupted, 0.0);
  EXPECT_DOUBLE_EQ(report.wasted_hours_transfer, 0.0);
  EXPECT_DOUBLE_EQ(report.wasted_init_hours, 0.0);
  EXPECT_DOUBLE_EQ(total_stage_waste(report), 0.0);
  EXPECT_EQ(report.requeues_interrupted, 0u);
  EXPECT_EQ(report.requeues_transfer, 0u);
  EXPECT_EQ(report.transfer_faults_injected, 0u);
  EXPECT_EQ(report.queue_stats.visibility_expired, 0u);
  EXPECT_EQ(report.queue_stats.dead_lettered, 0u);
}

TEST(AtlasSim, HeartbeatKeepsLongStagesAlive) {
  // The visibility timeout is far shorter than a single alignment stage;
  // only the periodic ChangeMessageVisibility heartbeat keeps in-flight
  // messages from expiring and double-processing.
  const auto catalog = small_catalog(20);
  AtlasConfig config = base_config();
  config.visibility_timeout = VirtualDuration::minutes(4);
  const AtlasReport report = AtlasSimulation(catalog, config).run();
  EXPECT_GT(report.heartbeats_sent, 0u);
  EXPECT_EQ(report.queue_stats.visibility_expired, 0u);
  EXPECT_EQ(report.samples_dead_lettered, 0u);
  EXPECT_EQ(samples_terminal(report), catalog.size());
  // Exactly one receive and one delete per accession: no duplicates.
  EXPECT_EQ(report.queue_stats.received, catalog.size());
  EXPECT_EQ(report.queue_stats.deleted, catalog.size());
}

TEST(AtlasSim, VisibilityExpiryRedeliversAndFirstCompleterWins) {
  // Heartbeat off + tight timeout: messages expire mid-alignment and get
  // redelivered while the original worker is still going. The first
  // completer wins; later duplicates are deleted on receipt or completion.
  const auto catalog = small_catalog(20);
  AtlasConfig config = base_config();
  config.heartbeat_enabled = false;
  config.visibility_timeout = VirtualDuration::minutes(4);
  config.max_receives = 100;  // the timeout backstop, not the DLQ, recovers
  const AtlasReport report = AtlasSimulation(catalog, config).run();
  EXPECT_EQ(report.heartbeats_sent, 0u);
  EXPECT_GT(report.queue_stats.visibility_expired, 0u);
  EXPECT_GT(report.queue_stats.received,
            static_cast<u64>(catalog.size()));  // redeliveries happened
  EXPECT_EQ(report.samples_dead_lettered, 0u);
  EXPECT_EQ(samples_terminal(report), catalog.size());
}

TEST(AtlasSim, DuplicateOfCompletedDeadLetterNotCountedAsLost) {
  // A stale duplicate can ride the redelivery loop into the DLQ after its
  // accession already completed elsewhere. The queue counts a dead-letter
  // event, but the report must not count the accession as lost (the old
  // accounting compared terminal samples against dlq size and double
  // counted exactly this case).
  const auto catalog = small_catalog(20);
  AtlasConfig config = base_config();
  config.heartbeat_enabled = false;
  config.visibility_timeout = VirtualDuration::minutes(4);
  config.max_receives = 2;
  const AtlasReport report = AtlasSimulation(catalog, config).run();
  EXPECT_GT(report.queue_stats.dead_lettered, 0u);
  EXPECT_EQ(samples_terminal(report), catalog.size());
  EXPECT_GE(report.queue_stats.dead_lettered, report.samples_dead_lettered);
}

TEST(AtlasSim, InterruptionWasteAccountedPerStage) {
  const auto catalog = small_catalog(40);
  AtlasConfig config = base_config();
  config.spot = true;
  config.mean_time_to_interruption = VirtualDuration::hours(1.0);
  const AtlasReport report = AtlasSimulation(catalog, config).run();
  ASSERT_GT(report.interruptions, 0u);
  EXPECT_GT(report.requeues_interrupted, 0u);
  EXPECT_GT(report.wasted_hours_interrupted, 0.0);
  // The per-stage breakdown exactly partitions the wasted total.
  EXPECT_NEAR(total_stage_waste(report),
              report.wasted_hours_interrupted + report.wasted_hours_transfer,
              1e-9);
  // With this many reclaims the tax lands across several stages, and
  // alignment (where the hours are) is among them.
  EXPECT_GT(report.wasted_hours_for(SampleStage::kAlignCheckpoint) +
                report.wasted_hours_for(SampleStage::kAlignRest),
            0.0);
  usize stages_hit = 0;
  for (usize s = 0; s < kNumSampleStages; ++s) {
    stages_hit += report.wasted_hours_stage[s] > 0.0 ? 1 : 0;
  }
  EXPECT_GE(stages_hit, 2u);
  EXPECT_EQ(samples_terminal(report), catalog.size());
}

TEST(AtlasSim, InterruptionDuringInitBillsOnlyElapsed) {
  // Reclaims land inside boot-time index initialization: the elapsed part
  // is billed (it ran) and flagged as wasted; nothing is pre-billed at
  // schedule time for instances that never finish initializing.
  const auto catalog = small_catalog(12);
  AtlasConfig config = base_config();
  config.spot = true;
  config.asg.max_size = 4;
  config.mean_time_to_interruption = VirtualDuration::minutes(5);
  config.max_receives = 200;
  const AtlasReport report = AtlasSimulation(catalog, config).run();
  ASSERT_GT(report.interruptions, 0u);
  EXPECT_GT(report.wasted_init_hours, 0.0);
  // Wasted init is part of init_hours (it did run), so it cannot exceed it.
  EXPECT_LE(report.wasted_init_hours, report.init_hours + 1e-12);
  EXPECT_EQ(samples_terminal(report), catalog.size());
}

TEST(AtlasSim, TransferFaultsRetryAndRequeueDeterministically) {
  const auto catalog = small_catalog(30);
  AtlasConfig config = base_config();
  config.faults.enabled = true;
  config.faults.transfer_failure_rate = 0.35;
  config.faults.max_transfer_attempts = 2;
  config.faults.seed = 99;
  const AtlasReport report = AtlasSimulation(catalog, config).run();
  EXPECT_GT(report.transfer_faults_injected, 0u);
  EXPECT_GT(report.transfer_retries, 0u);
  EXPECT_GT(report.wasted_hours_transfer, 0.0);
  EXPECT_NEAR(total_stage_waste(report),
              report.wasted_hours_interrupted + report.wasted_hours_transfer,
              1e-9);
  EXPECT_EQ(report.samples_dead_lettered, 0u);
  EXPECT_EQ(samples_terminal(report), catalog.size());

  const AtlasReport again = AtlasSimulation(catalog, config).run();
  EXPECT_DOUBLE_EQ(again.makespan_hours, report.makespan_hours);
  EXPECT_DOUBLE_EQ(again.total_cost_usd, report.total_cost_usd);
  EXPECT_EQ(again.transfer_faults_injected, report.transfer_faults_injected);
  EXPECT_EQ(again.requeues_transfer, report.requeues_transfer);
}

TEST(AtlasSim, ChaosRunLosesNoAccessions) {
  // Interruptions and injected transfer faults together, fixed seeds: the
  // campaign must still terminate with every accession accounted for and
  // none lost to the DLQ.
  const auto catalog = small_catalog(40, /*seed=*/9);
  AtlasConfig config = base_config();
  config.spot = true;
  config.mean_time_to_interruption = VirtualDuration::hours(2.0);
  config.faults.enabled = true;
  config.faults.transfer_failure_rate = 0.2;
  config.faults.seed = 4242;
  const AtlasReport report = AtlasSimulation(catalog, config).run();
  EXPECT_GT(report.interruptions, 0u);
  EXPECT_GT(report.transfer_faults_injected, 0u);
  EXPECT_EQ(report.samples_dead_lettered, 0u);
  EXPECT_EQ(report.samples_completed + report.samples_early_stopped +
                report.samples_rejected_late,
            catalog.size());
  EXPECT_NEAR(total_stage_waste(report),
              report.wasted_hours_interrupted + report.wasted_hours_transfer,
              1e-9);
}

TEST(AtlasSim, FaultConfigValidatedAtConstruction) {
  AtlasConfig config = base_config();
  config.faults.enabled = true;
  config.faults.transfer_failure_rate = 1.0;  // would retry forever
  EXPECT_THROW(AtlasSimulation(small_catalog(5), config), InternalError);
}

}  // namespace
}  // namespace staratlas
