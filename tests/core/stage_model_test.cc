#include "core/stage_model.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace staratlas {
namespace {

const InstanceType& r6a4x() { return instance_type("r6a.4xlarge"); }
const InstanceType& r6a8x() { return instance_type("r6a.8xlarge"); }

TEST(StageModel, AlignTimeScalesWithSize) {
  const StageTimeModel model;
  const auto small = model.align_time(ByteSize::from_gib(1.0), 111, r6a4x());
  const auto large = model.align_time(ByteSize::from_gib(10.0), 111, r6a4x());
  EXPECT_NEAR(large / small, 10.0, 1e-9);
}

TEST(StageModel, AlignAnchorMatchesPaperFig4Average) {
  // 155.8 h / 1000 alignments at mean 15.9 GiB -> ~9.35 min per sample on
  // the r6a.4xlarge reference.
  const StageTimeModel model;
  const auto mean_sample =
      model.align_time(ByteSize::from_gib(15.9), 111, r6a4x());
  EXPECT_NEAR(mean_sample.mins(), 9.35, 0.5);
}

TEST(StageModel, Release108SlowdownApplied) {
  StageTimeModel model;
  model.release_slowdown_108 = 12.0;
  const auto fast = model.align_time(ByteSize::from_gib(4.0), 111, r6a4x());
  const auto slow = model.align_time(ByteSize::from_gib(4.0), 108, r6a4x());
  EXPECT_NEAR(slow / fast, 12.0, 1e-9);
}

TEST(StageModel, UnknownReleaseRejected) {
  const StageTimeModel model;
  EXPECT_THROW(model.align_time(ByteSize::from_gib(1.0), 110, r6a4x()),
               InternalError);
}

TEST(StageModel, MoreVcpusFaster) {
  const StageTimeModel model;
  const auto on16 = model.align_time(ByteSize::from_gib(8.0), 111, r6a4x());
  const auto on32 = model.align_time(ByteSize::from_gib(8.0), 111, r6a8x());
  EXPECT_LT(on32, on16);
  // Sublinear: doubling cores gives < 2x speedup.
  EXPECT_GT(on32 * 2.0, on16);
}

TEST(StageModel, PrefetchCappedBySourceBandwidth) {
  const StageTimeModel model;
  // r6a.8xlarge has a 12.5 Gbps NIC but NCBI caps at 1.5 Gbps: both
  // instance types should download equally fast.
  const auto t4x = model.prefetch_time(ByteSize::from_gib(6.9), r6a4x());
  const auto t8x = model.prefetch_time(ByteSize::from_gib(6.9), r6a8x());
  EXPECT_NEAR(t4x.secs(), t8x.secs(), 1e-9);
  EXPECT_GT(t4x.secs(), 30.0);  // 6.9 GiB at 1.5 Gbps ~ 46 s
}

TEST(StageModel, SmallNicLimitsPrefetch) {
  const StageTimeModel model;
  const auto tiny = model.prefetch_time(ByteSize::from_gib(6.9),
                                        instance_type("r6a.large"));
  const auto big = model.prefetch_time(ByteSize::from_gib(6.9), r6a4x());
  EXPECT_GT(tiny.secs(), big.secs());
}

TEST(StageModel, IndexInitFasterForSmallIndex) {
  const StageTimeModel model;
  const auto init111 = model.index_init_time(ByteSize::from_gib(29.5), r6a4x());
  const auto init108 = model.index_init_time(ByteSize::from_gib(85.0), r6a4x());
  EXPECT_NEAR(init108 / init111, 85.0 / 29.5, 1e-9);
  // The paper's point: boot-time overhead drops materially.
  EXPECT_GT(init108.mins() - init111.mins(), 1.0);
}

TEST(StageModel, MmapLoadPathShrinksOnlyTheLoadTerm) {
  StageTimeModel model;
  model.mmap_attach_speedup = 20.0;
  const ByteSize index = ByteSize::from_gib(29.5);
  const auto stream =
      model.index_init_time(index, r6a4x(), IndexLoadPath::kStream);
  const auto mapped = model.index_init_time(index, r6a4x(), IndexLoadPath::kMmap);
  // Default path argument is the stream path (sim outputs unchanged).
  EXPECT_NEAR(model.index_init_time(index, r6a4x()).secs(), stream.secs(),
              1e-12);
  // mmap is strictly faster, but the S3 download term is untouched, so
  // the gap equals (1 - 1/speedup) of the stream-load term exactly.
  EXPECT_LT(mapped, stream);
  const double load_secs = index.gib() / model.shm_load_gibps;
  EXPECT_NEAR(stream.secs() - mapped.secs(), load_secs * (1.0 - 1.0 / 20.0),
              1e-9);
}

TEST(StageModel, RequiredMemoryIncludesHeadroom) {
  const ByteSize need = StageTimeModel::required_memory(ByteSize::from_gib(29.5));
  EXPECT_GT(need.gib(), 29.5);
  EXPECT_LT(need.gib(), 50.0);
  // 111-index fits a 64 GiB box; the 108 index needs the 128 GiB box.
  EXPECT_LT(need, instance_type("r6a.2xlarge").memory);
  const ByteSize need108 = StageTimeModel::required_memory(ByteSize::from_gib(85.0));
  EXPECT_GT(need108, instance_type("r6a.2xlarge").memory);
  EXPECT_LT(need108, instance_type("r6a.4xlarge").memory);
}

TEST(StageModel, DumpScalesWithOutput) {
  const StageTimeModel model;
  const auto small = model.dump_time(ByteSize::from_gib(2.0), r6a4x());
  const auto large = model.dump_time(ByteSize::from_gib(20.0), r6a4x());
  EXPECT_NEAR(large / small, 10.0, 1e-9);
}

}  // namespace
}  // namespace staratlas
