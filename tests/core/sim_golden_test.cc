// Graph-executor equivalence goldens: default-config sim outputs must be
// BIT-IDENTICAL to the pre-graph stage machine. The constants below were
// captured (at %.17g, i.e. round-trip-exact doubles) from the simulator
// immediately before AtlasSimulation::process was reworked to walk the
// pipeline graph; EXPECT_DOUBLE_EQ on them asserts the refactor changed
// no observable number in the SPOT and FIG4 replays — makespans, costs,
// waste partitions, heartbeat and launch counts, everything.
//
// If a deliberate model change moves these numbers, recapture them with
// the same configurations at full precision — do not loosen to NEAR.
#include <gtest/gtest.h>

#include "core/atlas_sim.h"
#include "core/estimate.h"

namespace staratlas {
namespace {

std::vector<SraSample> spot_catalog() {
  CatalogSpec spec;
  spec.num_samples = 250;
  spec.seed = 61;
  return make_catalog(spec);
}

AtlasReport run_spot_config(bool spot, double mtti_hours,
                            double failure_rate = 0.0) {
  AtlasConfig config;
  config.use_release(111);
  config.spot = spot;
  config.mean_time_to_interruption = VirtualDuration::hours(mtti_hours);
  config.asg.max_size = 16;
  config.visibility_timeout = VirtualDuration::hours(12);
  config.seed = 2025;
  if (failure_rate > 0.0) {
    config.faults.enabled = true;
    config.faults.transfer_failure_rate = failure_rate;
    config.faults.seed = 777;
  }
  return AtlasSimulation(spot_catalog(), config).run();
}

TEST(SimGolden, OnDemandReplayBitIdentical) {
  const AtlasReport r = run_spot_config(false, 1e6);
  EXPECT_DOUBLE_EQ(r.makespan_hours, 3.1666666666666665);
  EXPECT_DOUBLE_EQ(r.total_cost_usd, 39.939419950851615);
  EXPECT_DOUBLE_EQ(r.ec2_cost_usd, 39.939419950851615);
  EXPECT_DOUBLE_EQ(r.instance_hours, 44.024933808257963);
  EXPECT_EQ(r.samples_completed, 240u);
  EXPECT_EQ(r.samples_early_stopped, 10u);
  EXPECT_EQ(r.samples_rejected_late, 0u);
  EXPECT_EQ(r.samples_dead_lettered, 0u);
  EXPECT_EQ(r.interruptions, 0u);
  EXPECT_DOUBLE_EQ(r.wasted_hours_interrupted, 0.0);
  EXPECT_DOUBLE_EQ(r.wasted_hours_transfer, 0.0);
  EXPECT_DOUBLE_EQ(r.wasted_init_hours, 0.0);
  EXPECT_DOUBLE_EQ(r.init_hours, 0.32125659925528544);
  EXPECT_EQ(r.heartbeats_sent, 1230u);
  EXPECT_EQ(r.instances_launched, 16u);
  EXPECT_EQ(r.peak_instances, 16u);
  EXPECT_DOUBLE_EQ(r.align_hours_spent, 30.302586078943101);
  EXPECT_DOUBLE_EQ(r.align_hours_saved, 8.028776104325102);
  EXPECT_DOUBLE_EQ(r.unnecessary_align_hours, 0.0);
  EXPECT_DOUBLE_EQ(r.prefetch_hours, 3.1807635342291962);
  EXPECT_DOUBLE_EQ(r.dump_hours, 8.6869942624970484);
  for (double stage_waste : r.wasted_hours_stage) {
    EXPECT_DOUBLE_EQ(stage_waste, 0.0);
  }
}

TEST(SimGolden, CalmSpotReplayBitIdentical) {
  // Calm market (48 h mean TTI): no reclaims land, so the run matches
  // on-demand in everything but price.
  const AtlasReport r = run_spot_config(true, 48.0);
  EXPECT_DOUBLE_EQ(r.makespan_hours, 3.1666666666666665);
  EXPECT_DOUBLE_EQ(r.total_cost_usd, 15.175394683706521);
  EXPECT_DOUBLE_EQ(r.instance_hours, 44.024933808257963);
  EXPECT_EQ(r.samples_completed, 240u);
  EXPECT_EQ(r.samples_early_stopped, 10u);
  EXPECT_DOUBLE_EQ(r.init_hours, 0.32125659925528544);
  EXPECT_EQ(r.heartbeats_sent, 1230u);
  EXPECT_EQ(r.instances_launched, 16u);
}

TEST(SimGolden, HostileSpotReplayBitIdentical) {
  // 1.5 h mean TTI: dozens of reclaims; the waste partition per stage is
  // part of the golden contract.
  const AtlasReport r = run_spot_config(true, 1.5);
  EXPECT_DOUBLE_EQ(r.makespan_hours, 3.6666666666666665);
  EXPECT_DOUBLE_EQ(r.total_cost_usd, 16.721713113806508);
  EXPECT_DOUBLE_EQ(r.instance_hours, 48.51091706935452);
  EXPECT_EQ(r.interruptions, 36u);
  EXPECT_DOUBLE_EQ(r.wasted_hours_interrupted, 3.4367500514991938);
  EXPECT_DOUBLE_EQ(r.init_hours, 0.96376979776585603);
  EXPECT_EQ(r.requeues_interrupted, 35u);
  EXPECT_EQ(r.heartbeats_sent, 1311u);
  EXPECT_EQ(r.instances_launched, 49u);
  ASSERT_EQ(r.wasted_hours_stage.size(), 6u);
  EXPECT_DOUBLE_EQ(r.wasted_hours_stage[0], 0.49270266007840624);
  EXPECT_DOUBLE_EQ(r.wasted_hours_stage[1], 1.1187894345100249);
  EXPECT_DOUBLE_EQ(r.wasted_hours_stage[2], 0.31689125344689295);
  EXPECT_DOUBLE_EQ(r.wasted_hours_stage[3], 1.5055161736626279);
  EXPECT_DOUBLE_EQ(r.wasted_hours_stage[4], 0.0028505298012416664);
  EXPECT_DOUBLE_EQ(r.wasted_hours_stage[5], 0.0);
  EXPECT_DOUBLE_EQ(r.align_hours_spent, 30.30258607894309);
  EXPECT_DOUBLE_EQ(r.align_hours_saved, 8.028776104325102);
  EXPECT_DOUBLE_EQ(r.prefetch_hours, 3.1807635342291944);
  EXPECT_DOUBLE_EQ(r.dump_hours, 8.6869942624970431);
}

TEST(SimGolden, ChaosReplayBitIdentical) {
  // Spot reclaims (4 h TTI) + injected transfer faults at 15%: both
  // requeue paths and the transfer-waste column are exercised.
  const AtlasReport r = run_spot_config(true, 4.0, 0.15);
  EXPECT_DOUBLE_EQ(r.makespan_hours, 3.4166666666666665);
  EXPECT_DOUBLE_EQ(r.total_cost_usd, 15.872608615094194);
  EXPECT_DOUBLE_EQ(r.instance_hours, 46.047602596733952);
  EXPECT_EQ(r.interruptions, 11u);
  EXPECT_DOUBLE_EQ(r.wasted_hours_interrupted, 0.77202681373292703);
  EXPECT_DOUBLE_EQ(r.wasted_hours_transfer, 0.94233970388185828);
  EXPECT_DOUBLE_EQ(r.init_hours, 0.52204197378983852);
  EXPECT_EQ(r.requeues_interrupted, 11u);
  EXPECT_EQ(r.requeues_transfer, 1u);
  EXPECT_EQ(r.heartbeats_sent, 1252u);
  EXPECT_EQ(r.instances_launched, 26u);
  ASSERT_EQ(r.wasted_hours_stage.size(), 6u);
  EXPECT_DOUBLE_EQ(r.wasted_hours_stage[0], 0.62330576746594413);
  EXPECT_DOUBLE_EQ(r.wasted_hours_stage[1], 0.17201605618206992);
  EXPECT_DOUBLE_EQ(r.wasted_hours_stage[2], 0.075902084790338331);
  EXPECT_DOUBLE_EQ(r.wasted_hours_stage[3], 0.40867417218289681);
  EXPECT_DOUBLE_EQ(r.wasted_hours_stage[4], 0.0011351036602028823);
  EXPECT_DOUBLE_EQ(r.wasted_hours_stage[5], 0.43333333333333379);
}

TEST(SimGolden, Fig4CorpusReplayBitIdentical) {
  // The paper corpus (1000 samples, 38 single-cell) through the default
  // configuration.
  CatalogSpec corpus;
  corpus.num_samples = 1000;
  corpus.single_cell_fraction = 0.038;
  corpus.seed = 88;
  AtlasConfig config;
  config.use_release(111);
  config.asg.max_size = 16;
  config.seed = 4242;
  const AtlasReport r = AtlasSimulation(make_catalog(corpus), config).run();
  EXPECT_DOUBLE_EQ(r.makespan_hours, 11.5);
  EXPECT_DOUBLE_EQ(r.total_cost_usd, 161.31489284806344);
  EXPECT_DOUBLE_EQ(r.instance_hours, 177.8162399118865);
  EXPECT_EQ(r.samples_completed, 962u);
  EXPECT_EQ(r.samples_early_stopped, 38u);
  EXPECT_EQ(r.samples_rejected_late, 0u);
  EXPECT_EQ(r.samples_dead_lettered, 0u);
  EXPECT_EQ(r.interruptions, 0u);
  EXPECT_DOUBLE_EQ(r.init_hours, 0.32125659925528544);
  EXPECT_EQ(r.heartbeats_sent, 4924u);
  EXPECT_EQ(r.instances_launched, 16u);
  EXPECT_DOUBLE_EQ(r.align_hours_spent, 123.59255176015773);
  EXPECT_DOUBLE_EQ(r.align_hours_saved, 32.597652829446986);
  EXPECT_DOUBLE_EQ(r.unnecessary_align_hours, 0.0);
  EXPECT_DOUBLE_EQ(r.prefetch_hours, 12.960773603302842);
  EXPECT_DOUBLE_EQ(r.dump_hours, 35.39721350472626);
}

TEST(SimGolden, EstimatorAgreesWithPreGraphClosedForm) {
  // The estimator now plans over the pipeline graph; its outputs must
  // agree with the pre-graph closed form to floating-point noise (the
  // summation order over split alignment stages is the only difference).
  AtlasConfig config;
  config.use_release(111);
  config.asg.max_size = 8;
  const CampaignEstimate est = estimate_campaign(spot_catalog(), config);
  EXPECT_NEAR(est.total_work_hours, 43.503677209002689, 1e-9);
  EXPECT_NEAR(est.align_hours, 30.302586078943104, 1e-9);
  EXPECT_NEAR(est.align_hours_saved, 8.028776104325102, 1e-9);
  EXPECT_EQ(est.expected_early_stops, 10u);
  EXPECT_NEAR(est.makespan_hours, 5.470538188578792, 1e-9);
  EXPECT_NEAR(est.instance_hours, 43.664305508630335, 1e-9);
  EXPECT_NEAR(est.ec2_cost_usd, 39.612257957429442, 1e-8);
  EXPECT_NEAR(est.cost_per_sample_usd, 0.15844903182971776, 1e-10);
}

}  // namespace
}  // namespace staratlas
