#include "core/pipeline.h"

#include <gtest/gtest.h>

#include "common/error.h"

#include "testutil.h"

namespace staratlas {
namespace {

using staratlas::testing::world;

struct PipelineFixture {
  std::unique_ptr<SraRepository> repository;

  PipelineFixture() {
    const auto& w = world();
    CatalogSpec spec;
    spec.num_samples = 8;
    spec.single_cell_fraction = 0.5;
    spec.reads_at_mean = 1'200;
    spec.min_reads = 800;
    spec.seed = 55;
    auto simulator = std::make_shared<ReadSimulator>(
        w.r111, w.synthesizer->annotation(), w.synthesizer->repeat_regions());
    repository =
        std::make_unique<SraRepository>(make_catalog(spec), simulator);
  }

  const SraSample* find(LibraryType type) const {
    for (const auto& sample : repository->catalog()) {
      if (sample.type == type) return &sample;
    }
    return nullptr;
  }
};

TEST(Pipeline, BulkSampleAcceptedEndToEnd) {
  const auto& w = world();
  PipelineFixture fx;
  const SraSample* bulk = fx.find(LibraryType::kBulk);
  ASSERT_NE(bulk, nullptr);

  PipelineConfig config;
  config.engine.progress_check_interval = 100;
  PipelineRunner runner(w.index111, w.synthesizer->annotation(),
                        *fx.repository, config);
  const SampleResult result = runner.process(bulk->accession);
  EXPECT_EQ(result.accession, bulk->accession);
  EXPECT_EQ(result.library_type, LibraryType::kBulk);
  EXPECT_EQ(result.total_reads, bulk->num_reads);
  EXPECT_TRUE(result.accepted);
  EXPECT_FALSE(result.early_stop.stopped);
  EXPECT_GT(result.stats.mapped_rate(), 0.30);
  EXPECT_GT(result.gene_counts.total_counted(), 0u);
  EXPECT_GT(result.fastq_bytes, result.sra_bytes);
  EXPECT_GT(result.align_wall_seconds, 0.0);
}

TEST(Pipeline, SingleCellSampleEarlyStopped) {
  const auto& w = world();
  PipelineFixture fx;
  const SraSample* sc = fx.find(LibraryType::kSingleCell);
  ASSERT_NE(sc, nullptr);

  PipelineConfig config;
  config.engine.progress_check_interval = 50;
  PipelineRunner runner(w.index111, w.synthesizer->annotation(),
                        *fx.repository, config);
  const SampleResult result = runner.process(sc->accession);
  EXPECT_EQ(result.library_type, LibraryType::kSingleCell);
  EXPECT_TRUE(result.early_stop.stopped);
  EXPECT_FALSE(result.accepted);
  EXPECT_LT(result.stats.processed, result.total_reads / 2);
}

TEST(Pipeline, EarlyStopDisabledRunsToCompletion) {
  const auto& w = world();
  PipelineFixture fx;
  const SraSample* sc = fx.find(LibraryType::kSingleCell);
  ASSERT_NE(sc, nullptr);

  PipelineConfig config;
  config.early_stop.enabled = false;
  PipelineRunner runner(w.index111, w.synthesizer->annotation(),
                        *fx.repository, config);
  const SampleResult result = runner.process(sc->accession);
  EXPECT_FALSE(result.early_stop.stopped);
  EXPECT_EQ(result.stats.processed, result.total_reads);
  EXPECT_FALSE(result.accepted);  // still below the atlas threshold
}

TEST(Pipeline, UnknownAccessionThrows) {
  const auto& w = world();
  PipelineFixture fx;
  PipelineRunner runner(w.index111, w.synthesizer->annotation(),
                        *fx.repository, PipelineConfig{});
  EXPECT_THROW(runner.process("SRR00000000"), InvalidArgument);
}

}  // namespace
}  // namespace staratlas
