#include "core/rightsizing.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace staratlas {
namespace {

RightSizingQuery query_for(int release) {
  RightSizingQuery query;
  query.cloud.genome_release = release;
  query.cloud.index_bytes =
      release == 108 ? ByteSize::from_gib(85.0) : ByteSize::from_gib(29.5);
  return query;
}

usize feasible_count(const std::vector<RightSizingOption>& options) {
  usize n = 0;
  for (const auto& option : options) n += option.feasible ? 1 : 0;
  return n;
}

TEST(RightSizing, SmallIndexUnlocksMoreInstanceTypes) {
  const auto options108 = evaluate_instances(query_for(108));
  const auto options111 = evaluate_instances(query_for(111));
  // The paper's §III.A claim: the smaller index admits smaller instances.
  EXPECT_GT(feasible_count(options111), feasible_count(options108));
}

TEST(RightSizing, FeasibilityMatchesMemory) {
  const auto options = evaluate_instances(query_for(108));
  const ByteSize needed =
      StageTimeModel::required_memory(ByteSize::from_gib(85.0));
  for (const auto& option : options) {
    EXPECT_EQ(option.feasible, option.type->memory >= needed)
        << option.type->name;
    if (!option.feasible) {
      EXPECT_FALSE(option.infeasible_reason.empty());
    }
  }
}

TEST(RightSizing, FeasibleSortedByCost) {
  const auto options = evaluate_instances(query_for(111));
  double last = 0.0;
  bool in_feasible_prefix = true;
  for (const auto& option : options) {
    if (!option.feasible) {
      in_feasible_prefix = false;
      continue;
    }
    EXPECT_TRUE(in_feasible_prefix) << "feasible after infeasible";
    EXPECT_GE(option.cost_per_sample_usd, last);
    last = option.cost_per_sample_usd;
  }
}

TEST(RightSizing, BestOptionForSmallIndexIsCheaperThanForLarge) {
  const auto options108 = evaluate_instances(query_for(108));
  const auto options111 = evaluate_instances(query_for(111));
  const RightSizingOption& best108 = best_option(options108);
  const RightSizingOption& best111 = best_option(options111);
  // The 85 GiB index forces >= 128 GiB boxes; the 29.5 GiB one doesn't.
  EXPECT_GE(best108.type->memory.gib(), 128.0);
  EXPECT_LT(best111.type->memory.gib(), 128.0);
  EXPECT_LT(best111.cost_per_sample_usd, best108.cost_per_sample_usd);
}

TEST(RightSizing, SpotPricingLowersCost) {
  RightSizingQuery od = query_for(111);
  RightSizingQuery spot = query_for(111);
  spot.spot = true;
  const double od_cost = best_option(evaluate_instances(od)).cost_per_sample_usd;
  const double spot_cost =
      best_option(evaluate_instances(spot)).cost_per_sample_usd;
  EXPECT_LT(spot_cost, od_cost * 0.6);
}

TEST(RightSizing, MmapLoadPathLowersAmortizedCost) {
  RightSizingQuery stream = query_for(111);
  RightSizingQuery mapped = query_for(111);
  mapped.cloud.index_load_path = IndexLoadPath::kMmap;
  const auto stream_best = best_option(evaluate_instances(stream));
  const auto mapped_best = best_option(evaluate_instances(mapped));
  // The init term shrinks, so per-sample time/cost can only improve; the
  // ranking stays driven by alignment, so the winner's type is stable.
  EXPECT_LT(mapped_best.sample_seconds, stream_best.sample_seconds);
  EXPECT_LE(mapped_best.cost_per_sample_usd, stream_best.cost_per_sample_usd);
}

TEST(RightSizing, NoFeasibleOptionThrows) {
  RightSizingQuery query = query_for(108);
  query.cloud.index_bytes = ByteSize::from_tib(2.0);  // fits nothing
  EXPECT_THROW(best_option(evaluate_instances(query)), InvalidArgument);
}

TEST(RightSizing, SampleSecondsPositiveAndConsistent) {
  for (const auto& option : evaluate_instances(query_for(111))) {
    if (!option.feasible) continue;
    EXPECT_GT(option.sample_seconds, 0.0);
    EXPECT_NEAR(option.samples_per_hour, 3600.0 / option.sample_seconds,
                1e-9);
  }
}

}  // namespace
}  // namespace staratlas
