#include "core/early_stopping.h"

#include <gtest/gtest.h>

#include "common/error.h"

#include "testutil.h"

namespace staratlas {
namespace {

using staratlas::testing::world;

TEST(EarlyStopDecision, RuleMatchesPaper) {
  EarlyStopPolicy policy;  // 10% checkpoint, 30% threshold
  EXPECT_TRUE(early_stop_decision(policy, 0.25));
  EXPECT_TRUE(early_stop_decision(policy, 0.299));
  EXPECT_FALSE(early_stop_decision(policy, 0.30));
  EXPECT_FALSE(early_stop_decision(policy, 0.90));
}

TEST(EarlyStopDecision, DisabledNeverStops)
{
  EarlyStopPolicy policy;
  policy.enabled = false;
  EXPECT_FALSE(early_stop_decision(policy, 0.01));
}

TEST(EarlyStopPolicy, Validation) {
  EarlyStopPolicy ok;
  ok.validate();
  EarlyStopPolicy bad_checkpoint;
  bad_checkpoint.checkpoint_fraction = 0.0;
  EXPECT_THROW(bad_checkpoint.validate(), InvalidArgument);
  bad_checkpoint.checkpoint_fraction = 1.0;
  EXPECT_THROW(bad_checkpoint.validate(), InvalidArgument);
  EarlyStopPolicy bad_rate;
  bad_rate.min_mapped_rate = 1.5;
  EXPECT_THROW(bad_rate.validate(), InvalidArgument);
}

ProgressSnapshot snapshot(u64 total, u64 processed, u64 mapped) {
  ProgressSnapshot snap;
  snap.total_reads = total;
  snap.processed = processed;
  snap.unique = mapped;
  snap.unmapped = processed - mapped;
  return snap;
}

TEST(EarlyStopController, StopsLowMapRateAtCheckpoint) {
  EarlyStopController controller(EarlyStopPolicy{});
  auto callback = controller.callback();
  // Before the checkpoint: keep going regardless of rate.
  EXPECT_EQ(callback(snapshot(1'000, 50, 5)), EngineCommand::kContinue);
  EXPECT_FALSE(controller.decision().evaluated);
  // At 10%: rate 10% < 30% -> abort.
  EXPECT_EQ(callback(snapshot(1'000, 100, 10)), EngineCommand::kAbort);
  EXPECT_TRUE(controller.decision().evaluated);
  EXPECT_TRUE(controller.decision().stopped);
  EXPECT_NEAR(controller.decision().observed_rate, 0.10, 1e-9);
  EXPECT_EQ(controller.decision().at_reads, 100u);
}

TEST(EarlyStopController, PassesHighMapRate) {
  EarlyStopController controller(EarlyStopPolicy{});
  auto callback = controller.callback();
  EXPECT_EQ(callback(snapshot(1'000, 120, 100)), EngineCommand::kContinue);
  EXPECT_TRUE(controller.decision().evaluated);
  EXPECT_FALSE(controller.decision().stopped);
}

TEST(EarlyStopController, OneShotDecision) {
  EarlyStopController controller(EarlyStopPolicy{});
  auto callback = controller.callback();
  EXPECT_EQ(callback(snapshot(1'000, 100, 90)), EngineCommand::kContinue);
  // A later terrible snapshot no longer triggers (decision already made).
  EXPECT_EQ(callback(snapshot(1'000, 500, 90)), EngineCommand::kContinue);
  EXPECT_FALSE(controller.decision().stopped);
}

TEST(EarlyStopController, DisabledPolicyNeverEvaluates) {
  EarlyStopPolicy policy;
  policy.enabled = false;
  EarlyStopController controller(policy);
  auto callback = controller.callback();
  EXPECT_EQ(callback(snapshot(100, 50, 0)), EngineCommand::kContinue);
  EXPECT_FALSE(controller.decision().evaluated);
}

// Integration: real engine + controller on real reads.
TEST(EarlyStopController, AbortsSingleCellAlignment) {
  const auto& w = world();
  const ReadSet reads =
      w.simulator->simulate(single_cell_profile(), 3'000, Rng(61));
  EngineConfig config;
  config.progress_check_interval = 150;  // 5% granularity
  AlignmentEngine engine(w.index111, &w.synthesizer->annotation(),
                               config);
  EarlyStopController controller(EarlyStopPolicy{});
  const AlignmentRun run = engine.run(reads, controller.callback());
  EXPECT_TRUE(run.aborted);
  EXPECT_TRUE(controller.decision().stopped);
  EXPECT_LT(controller.decision().observed_rate, 0.30);
  // The paper's point: ~90% of the alignment work is saved.
  EXPECT_LT(run.stats.processed, reads.size() / 2);
}

TEST(EarlyStopController, LetsBulkAlignmentFinish) {
  const auto& w = world();
  const ReadSet reads =
      w.simulator->simulate(bulk_rna_profile(), 2'000, Rng(62));
  EngineConfig config;
  config.progress_check_interval = 100;
  AlignmentEngine engine(w.index111, &w.synthesizer->annotation(),
                               config);
  EarlyStopController controller(EarlyStopPolicy{});
  const AlignmentRun run = engine.run(reads, controller.callback());
  EXPECT_FALSE(run.aborted);
  EXPECT_TRUE(controller.decision().evaluated);
  EXPECT_FALSE(controller.decision().stopped);
  EXPECT_EQ(run.stats.processed, reads.size());
}

}  // namespace
}  // namespace staratlas
