// Campaign planner: Pareto-frontier properties, constraint handling,
// the estimator/planner/sim shared init-cost regression, and frontier
// validation against the event simulator.
#include "core/planner.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace staratlas {
namespace {

std::vector<SraSample> planner_catalog(usize n = 120) {
  CatalogSpec spec;
  spec.num_samples = n;
  spec.seed = 31;
  return make_catalog(spec);
}

PlannerQuery small_query() {
  PlannerQuery query;
  query.catalog = planner_catalog();
  query.instance_names = {"r6a.2xlarge", "r6a.4xlarge", "r6a.8xlarge",
                          "m6a.4xlarge", "c6a.4xlarge", "c6a.8xlarge"};
  return query;
}

TEST(Planner, EnumeratesFullSearchSpace) {
  PlannerQuery query = small_query();
  query.thread_choices = {0, 16};
  const PlannerResult result = plan_campaign(query);
  // 6 instances x 2 threads x 2 load paths x 2 spot mixes.
  EXPECT_EQ(result.candidates.size(), 48u);
  usize feasible = 0;
  for (const PlanCandidate& candidate : result.candidates) {
    if (candidate.feasible) {
      ++feasible;
      EXPECT_GT(candidate.estimate.makespan_hours, 0.0);
      EXPECT_GT(candidate.estimate.ec2_cost_usd, 0.0);
    } else {
      EXPECT_FALSE(candidate.infeasible_reason.empty());
    }
  }
  EXPECT_GT(feasible, 0u);
  // c6a.4xlarge (32 GiB) cannot hold the 29.5 GiB index + working set.
  for (const PlanCandidate& candidate : result.candidates) {
    if (candidate.instance == "c6a.4xlarge") {
      EXPECT_FALSE(candidate.feasible);
    }
  }
}

TEST(Planner, FrontierIsParetoMinimal) {
  const PlannerResult result = plan_campaign(small_query());
  ASSERT_FALSE(result.frontier.empty());
  // Cost ascends, makespan strictly descends along the frontier.
  for (usize i = 1; i < result.frontier.size(); ++i) {
    const PlanCandidate& prev = result.candidates[result.frontier[i - 1]];
    const PlanCandidate& cur = result.candidates[result.frontier[i]];
    EXPECT_GE(cur.est_cost_usd(), prev.est_cost_usd());
    EXPECT_LT(cur.est_makespan_hours(), prev.est_makespan_hours());
  }
  // No feasible candidate strictly dominates a frontier point.
  for (usize index : result.frontier) {
    const PlanCandidate& point = result.candidates[index];
    for (const PlanCandidate& other : result.candidates) {
      if (!other.feasible) continue;
      const bool dominates =
          other.est_cost_usd() < point.est_cost_usd() &&
          other.est_makespan_hours() < point.est_makespan_hours();
      EXPECT_FALSE(dominates)
          << other.instance << " dominates frontier point " << point.instance;
    }
  }
}

TEST(Planner, ConstraintsSelectBestAndCanBeUnsatisfiable) {
  PlannerQuery query = small_query();
  query.deadline_hours = 8.0;
  const PlannerResult result = plan_campaign(query);
  ASSERT_TRUE(result.best.has_value());
  const PlanCandidate& best = result.candidates[*result.best];
  EXPECT_TRUE(best.meets_deadline);
  EXPECT_LE(best.est_makespan_hours(), query.deadline_hours);
  // Best is the CHEAPEST candidate meeting the constraints.
  for (const PlanCandidate& other : result.candidates) {
    if (other.feasible && other.meets_deadline && other.meets_budget) {
      EXPECT_LE(best.est_cost_usd(), other.est_cost_usd());
    }
  }

  PlannerQuery impossible = small_query();
  impossible.budget_usd = 0.01;  // nothing aligns 120 samples for a cent
  EXPECT_FALSE(plan_campaign(impossible).best.has_value());
}

TEST(Planner, MmapLoadPathDominatesStream) {
  // At equal hourly rate the mmap attach strictly shrinks the per-boot
  // init term, so for every (instance, threads, spot) the mmap candidate
  // is no worse on both axes.
  const PlannerResult result = plan_campaign(small_query());
  for (const PlanCandidate& a : result.candidates) {
    if (!a.feasible || a.load_path != IndexLoadPath::kMmap) continue;
    for (const PlanCandidate& b : result.candidates) {
      if (!b.feasible || b.load_path != IndexLoadPath::kStream) continue;
      if (a.instance != b.instance || a.threads != b.threads ||
          a.spot_mix != b.spot_mix) {
        continue;
      }
      EXPECT_LT(a.est_makespan_hours(), b.est_makespan_hours());
      EXPECT_LT(a.est_cost_usd(), b.est_cost_usd());
    }
  }
}

// The bugfix regression: estimator, planner and event sim must derive
// boot-time init cost from the SAME StageGraph-adjacent estimator
// (campaign_init_hours), for every index load path.
TEST(Planner, InitCostSharedByEstimatorAndSim) {
  for (IndexLoadPath path : {IndexLoadPath::kStream, IndexLoadPath::kMmap}) {
    AtlasConfig config;
    config.use_release(111);
    config.asg.max_size = 8;
    config.index_load_path = path;
    const auto catalog = planner_catalog(60);

    const double per_instance = campaign_init_hours(config);
    ASSERT_GT(per_instance, 0.0);
    const CampaignEstimate estimate = estimate_campaign(catalog, config);
    EXPECT_DOUBLE_EQ(estimate.init_hours_per_instance, per_instance);

    // Fault-free run: every launched instance pays init exactly once, so
    // the sim's aggregate init hours are launches x the shared estimate.
    const AtlasReport report = AtlasSimulation(catalog, config).run();
    ASSERT_EQ(report.interruptions, 0u);
    EXPECT_NEAR(report.init_hours,
                static_cast<double>(report.instances_launched) * per_instance,
                1e-9);
  }
  // And the mmap path is the cheaper one in both views.
  AtlasConfig stream_config;
  stream_config.use_release(111);
  AtlasConfig mmap_config = stream_config;
  mmap_config.index_load_path = IndexLoadPath::kMmap;
  EXPECT_LT(campaign_init_hours(mmap_config),
            campaign_init_hours(stream_config));
}

TEST(Planner, FrontierValidatesAgainstEventSim) {
  PlannerQuery query = small_query();
  PlannerResult result = plan_campaign(query);
  validate_frontier(query, result, /*max_points=*/2);
  ASSERT_FALSE(result.validations.empty());
  ASSERT_LE(result.validations.size(), 2u);
  for (const FrontierValidation& validation : result.validations) {
    EXPECT_GT(validation.sim_makespan_hours, 0.0);
    EXPECT_GT(validation.sim_cost_usd, 0.0);
    // The closed form ignores queueing discreteness and interruption
    // rework; on this small catalog (120 samples over a 16-wide fleet)
    // the discreteness bias is coarser than the bench's 250-sample
    // configuration, hence the wider makespan band.
    EXPECT_LE(validation.cost_rel_error, 0.15);
    EXPECT_LE(validation.makespan_rel_error, 0.40);
  }
}

TEST(Planner, BridgesFromRightSizingQuery) {
  RightSizingQuery advisor;
  advisor.cloud.use_release(108);
  advisor.cloud.index_load_path = IndexLoadPath::kMmap;
  advisor.spot = true;
  const PlannerQuery query = planner_query_from(advisor, planner_catalog(20));
  EXPECT_EQ(query.cloud.genome_release, 108);
  EXPECT_DOUBLE_EQ(query.cloud.index_bytes.gib(), 85.0);
  ASSERT_EQ(query.load_path_choices.size(), 1u);
  EXPECT_EQ(query.load_path_choices[0], IndexLoadPath::kMmap);
  ASSERT_EQ(query.spot_mix_choices.size(), 1u);
  EXPECT_DOUBLE_EQ(query.spot_mix_choices[0], 1.0);
  EXPECT_EQ(query.catalog.size(), 20u);
}

TEST(Planner, RejectsDegenerateQueries) {
  PlannerQuery empty_catalog = small_query();
  empty_catalog.catalog.clear();
  EXPECT_THROW(plan_campaign(empty_catalog), Error);

  PlannerQuery bad_mix = small_query();
  bad_mix.spot_mix_choices = {1.5};
  EXPECT_THROW(plan_campaign(bad_mix), Error);
}

}  // namespace
}  // namespace staratlas
