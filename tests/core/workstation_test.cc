#include "core/workstation.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "testutil.h"

namespace staratlas {
namespace {

using staratlas::testing::world;

struct WorkstationFixture {
  std::unique_ptr<SraRepository> repository;
  std::vector<std::string> accessions;

  explicit WorkstationFixture(double sc_fraction = 0.25) {
    const auto& w = world();
    CatalogSpec spec;
    spec.num_samples = 8;
    spec.single_cell_fraction = sc_fraction;
    spec.reads_at_mean = 1'000;
    spec.min_reads = 800;
    spec.seed = 66;
    auto simulator = std::make_shared<ReadSimulator>(
        w.r111, w.synthesizer->annotation(), w.synthesizer->repeat_regions());
    repository =
        std::make_unique<SraRepository>(make_catalog(spec), simulator);
    for (const auto& sample : repository->catalog()) {
      accessions.push_back(sample.accession);
    }
  }
};

TEST(Workstation, BatchProcessesAllAccessions) {
  const auto& w = world();
  WorkstationFixture fx;
  PipelineConfig config;
  config.engine.progress_check_interval = 100;
  const WorkstationReport report = run_workstation_batch(
      w.index111, w.synthesizer->annotation(), *fx.repository, fx.accessions,
      config);
  EXPECT_EQ(report.samples.size(), fx.accessions.size());
  EXPECT_EQ(report.accepted + report.early_stopped + report.rejected,
            fx.accessions.size());
  EXPECT_GT(report.accepted, 0u);
  EXPECT_GT(report.early_stopped, 0u);  // 2 of 8 are single-cell
  EXPECT_GT(report.align_wall_seconds, 0.0);
}

TEST(Workstation, CountMatrixHoldsAcceptedSamplesOnly) {
  const auto& w = world();
  WorkstationFixture fx;
  PipelineConfig config;
  config.engine.progress_check_interval = 100;
  const WorkstationReport report = run_workstation_batch(
      w.index111, w.synthesizer->annotation(), *fx.repository, fx.accessions,
      config);
  EXPECT_EQ(report.counts.num_samples(), report.accepted);
  EXPECT_EQ(report.counts.num_genes(),
            w.synthesizer->annotation().num_genes());
  // Accepted bulk samples have substantial counted reads.
  for (const double size : report.counts.library_sizes()) {
    EXPECT_GT(size, 100.0);
  }
}

TEST(Workstation, SizeFactorsComputedForAcceptedBatch) {
  const auto& w = world();
  WorkstationFixture fx;
  PipelineConfig config;
  config.engine.progress_check_interval = 100;
  const WorkstationReport report = run_workstation_batch(
      w.index111, w.synthesizer->annotation(), *fx.repository, fx.accessions,
      config);
  ASSERT_EQ(report.size_factors.size(), report.accepted);
  for (const double factor : report.size_factors) {
    EXPECT_GT(factor, 0.1);
    EXPECT_LT(factor, 10.0);
  }
}

TEST(Workstation, EmptyBatch) {
  const auto& w = world();
  WorkstationFixture fx;
  const WorkstationReport report =
      run_workstation_batch(w.index111, w.synthesizer->annotation(),
                            *fx.repository, {}, PipelineConfig{});
  EXPECT_TRUE(report.samples.empty());
  EXPECT_TRUE(report.size_factors.empty());
}

}  // namespace
}  // namespace staratlas
