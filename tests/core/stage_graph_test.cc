// Stage-graph executor: topological validity, cycle rejection, exact
// equivalence of the alignment pipeline's GraphPlan with the legacy
// StageTimeModel::plan_sample arithmetic, the variant-calling pipeline
// running through the unmodified scheduler, and waste-partition
// exactness under spot reclaims for arbitrary DAGs.
#include "core/stage_graph.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.h"
#include "core/atlas_sim.h"

namespace staratlas {
namespace {

std::vector<SraSample> small_catalog(usize n = 40, u64 seed = 5) {
  CatalogSpec spec;
  spec.num_samples = n;
  spec.single_cell_fraction = 0.10;
  spec.seed = seed;
  return make_catalog(spec);
}

AtlasConfig base_config() {
  AtlasConfig config;
  config.use_release(111);
  config.asg.max_size = 8;
  config.seed = 77;
  return config;
}

StageCostFn fixed_cost(double secs) {
  return [secs](const StageContext&) { return VirtualDuration::seconds(secs); };
}

TEST(StageGraph, TopoOrderRespectsDependencies) {
  for (const std::string& name : PipelineCatalog::instance().names()) {
    StageGraph graph = PipelineCatalog::instance().build(name);
    const std::vector<StageId>& topo = graph.topo_order();
    ASSERT_EQ(topo.size(), graph.size()) << name;
    std::vector<usize> position(graph.size());
    for (usize i = 0; i < topo.size(); ++i) position[topo[i]] = i;
    for (StageId id = 0; id < graph.size(); ++id) {
      for (StageId dep : graph.deps(id)) {
        EXPECT_LT(position[dep], position[id])
            << name << ": " << graph.node(id).name << " scheduled before "
            << "its dependency " << graph.node(dep).name;
      }
    }
  }
}

TEST(StageGraph, CatalogKnowsBothPipelines) {
  auto& catalog = PipelineCatalog::instance();
  EXPECT_TRUE(catalog.has("alignment"));
  EXPECT_TRUE(catalog.has("variant_calling"));
  EXPECT_FALSE(catalog.has("nonexistent"));
  EXPECT_THROW(catalog.build("nonexistent"), InvalidArgument);
  EXPECT_TRUE(PipelineCatalog::instance().build("alignment")
                  .supports_early_stop());
  EXPECT_FALSE(PipelineCatalog::instance().build("variant_calling")
                   .supports_early_stop());
}

TEST(StageGraph, AddStageRejectsBadDeps) {
  StageGraph graph("bad");
  StageNode node;
  node.name = "a";
  node.cost = fixed_cost(1.0);
  const StageId a = graph.add_stage(node);
  node.name = "b";
  // Forward/self dependencies cannot exist yet: add_stage is acyclic by
  // construction.
  EXPECT_THROW(graph.add_stage(node, {a + 1}), InvalidArgument);
  StageNode no_cost;
  no_cost.name = "c";
  EXPECT_THROW(graph.add_stage(no_cost, {a}), InvalidArgument);
}

TEST(StageGraph, ValidateRejectsCycles) {
  StageGraph graph("cyclic");
  StageNode node;
  node.cost = fixed_cost(1.0);
  node.name = "a";
  const StageId a = graph.add_stage(node);
  node.name = "b";
  const StageId b = graph.add_stage(node, {a});
  node.name = "c";
  const StageId c = graph.add_stage(node, {b});
  graph.add_edge(c, a);  // closes the loop
  EXPECT_THROW(graph.validate(), InvalidArgument);

  StageGraph empty("empty");
  EXPECT_THROW(empty.validate(), InvalidArgument);
}

TEST(StageGraph, DiamondDagPlansEveryNodeOnce) {
  // a -> {b, c} -> d: a genuine DAG (not a chain) through plan().
  StageGraph graph("diamond");
  StageNode node;
  node.cost = fixed_cost(10.0);
  node.name = "a";
  const StageId a = graph.add_stage(node);
  node.name = "b";
  node.cost = fixed_cost(20.0);
  const StageId b = graph.add_stage(node, {a});
  node.name = "c";
  node.cost = fixed_cost(30.0);
  const StageId c = graph.add_stage(node, {a});
  node.name = "d";
  node.cost = fixed_cost(40.0);
  graph.add_stage(node, {b, c});
  graph.validate();

  const InstanceType& type = instance_type("r6a.4xlarge");
  const StageTimeModel model;
  StageContext ctx;
  ctx.instance = &type;
  ctx.model = &model;
  const GraphPlan plan = graph.plan(ctx, /*stop_early=*/false);
  EXPECT_DOUBLE_EQ(plan.total().secs(), 100.0);
  EXPECT_EQ(graph.topo_order().front(), a);
}

// The graph-planned alignment pipeline must reproduce the legacy
// plan_sample arithmetic stage for stage, bit for bit — this is the
// equivalence on which the golden sim replays rest.
TEST(StageGraph, AlignmentPlanMatchesLegacyStagePlanExactly) {
  const AtlasConfig config = base_config();
  const InstanceType& type = instance_type(config.instance_type);
  StageGraph graph = PipelineCatalog::instance().build("alignment");
  ASSERT_EQ(graph.size(), kNumSampleStages);

  for (const SraSample& sample : small_catalog(30)) {
    for (bool stop_early : {false, true}) {
      const StagePlan legacy = config.stages.plan_sample(
          sample.sra_bytes, sample.fastq_bytes, config.genome_release, type,
          config.early_stop.checkpoint_fraction, stop_early);
      const GraphPlan plan = graph.plan(
          stage_context_for(config, sample, type), stop_early);
      for (usize s = 0; s < kNumSampleStages; ++s) {
        EXPECT_DOUBLE_EQ(plan.duration(s).secs(),
                         legacy.durations[s].secs())
            << sample.accession << " stage " << graph.node(s).name
            << " stop_early=" << stop_early;
      }
      EXPECT_DOUBLE_EQ(plan.align_full.secs(), legacy.align_full.secs());
      EXPECT_DOUBLE_EQ(plan.align_actual().secs(),
                       legacy.align_actual().secs());
      EXPECT_DOUBLE_EQ(plan.total().secs(), legacy.total().secs());
    }
  }
}

TEST(StageGraph, AlignmentStageNamesMatchLegacyLabels) {
  StageGraph graph = PipelineCatalog::instance().build("alignment");
  const std::vector<std::string> names = graph.stage_names();
  ASSERT_EQ(names.size(), kNumSampleStages);
  for (usize s = 0; s < kNumSampleStages; ++s) {
    EXPECT_EQ(names[s], stage_name(static_cast<SampleStage>(s)));
  }
}

// The second pipeline runs through the UNMODIFIED scheduler: same sim,
// same queue/fleet/fault machinery, just a different graph.
TEST(StageGraph, VariantCallingRunsThroughUnmodifiedScheduler) {
  const auto catalog = small_catalog();
  AtlasConfig config = base_config();
  config.pipeline = "variant_calling";
  AtlasSimulation sim(catalog, config);
  const AtlasReport report = sim.run();
  EXPECT_EQ(report.samples_completed + report.samples_rejected_late,
            catalog.size());
  // No decision point in this graph: nothing can early-stop.
  EXPECT_EQ(report.samples_early_stopped, 0u);
  EXPECT_EQ(report.samples_dead_lettered, 0u);
  EXPECT_GT(report.makespan_hours, 0.0);
  EXPECT_GT(report.total_cost_usd, 0.0);
  // Per-stage report columns follow the graph, not the legacy enum.
  EXPECT_EQ(report.stage_names.size(), sim.graph().size());
  EXPECT_EQ(report.wasted_hours_stage.size(), sim.graph().size());
  EXPECT_NE(std::find(report.stage_names.begin(), report.stage_names.end(),
                      "call_variants"),
            report.stage_names.end());
}

double total_stage_waste(const AtlasReport& report) {
  double total = 0.0;
  for (double hours : report.wasted_hours_stage) total += hours;
  return total;
}

// Waste partition exactness: per-stage waste must sum to the interrupted
// + transfer totals, for BOTH pipeline shapes, under heavy spot churn.
TEST(StageGraph, WastePartitionExactUnderSpotReclaims) {
  for (const std::string& pipeline : {"alignment", "variant_calling"}) {
    AtlasConfig config = base_config();
    config.pipeline = pipeline;
    config.spot = true;
    config.mean_time_to_interruption = VirtualDuration::hours(1.0);
    config.faults.enabled = true;
    config.faults.transfer_failure_rate = 0.10;
    config.faults.seed = 99;
    const AtlasReport report =
        AtlasSimulation(small_catalog(60), config).run();
    ASSERT_GT(report.interruptions, 0u) << pipeline;
    EXPECT_GT(total_stage_waste(report), 0.0) << pipeline;
    EXPECT_NEAR(total_stage_waste(report),
                report.wasted_hours_interrupted + report.wasted_hours_transfer,
                1e-9)
        << pipeline;
  }
}

}  // namespace
}  // namespace staratlas
