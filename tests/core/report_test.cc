#include "core/report.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.h"
#include "common/rng.h"
#include "core/maprate_model.h"

namespace staratlas {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"b", "22222"});
  std::ostringstream out;
  table.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("-----"), std::string::npos);
  // Each line has the same structure: 4 lines total (header, rule, 2 rows).
  usize lines = 0;
  for (char c : text) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, 4u);
}

TEST(Table, RejectsWrongCellCount) {
  Table table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), InternalError);
}

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table({}), InternalError);
}

TEST(Strf, FormatsLikePrintf) {
  EXPECT_EQ(strf("%.2f h", 1.5), "1.50 h");
  EXPECT_EQ(strf("$%d", 42), "$42");
  EXPECT_EQ(strf("%s/%s", "a", "b"), "a/b");
}

TEST(MapRateModelSmoke, CalibrationOverridesDefaults) {
  // maprate_model has no dedicated test file; cover it here.
  MapRateModel model;
  model.calibrate({0.9, 0.92, 0.88}, {0.2, 0.24});
  EXPECT_NEAR(model.bulk_mean, 0.9, 1e-9);
  EXPECT_NEAR(model.single_cell_mean, 0.22, 1e-9);
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const double bulk = model.sample_true_rate(LibraryType::kBulk, rng);
    const double sc = model.sample_true_rate(LibraryType::kSingleCell, rng);
    EXPECT_GT(bulk, 0.5);
    EXPECT_LT(sc, 0.5);
    const double obs = model.checkpoint_observation(bulk, rng);
    EXPECT_NEAR(obs, bulk, 0.1);
  }
}

TEST(MapRateModelSmoke, EmptyCalibrationKeepsDefaults) {
  MapRateModel model;
  const double bulk_default = model.bulk_mean;
  model.calibrate({}, {});
  EXPECT_DOUBLE_EQ(model.bulk_mean, bulk_default);
}

}  // namespace
}  // namespace staratlas
