// Scatter/gather vs single-instance economics in the event sim: the
// serverless split buys latency on anything but tiny samples (worker
// align time shrinks with N while the single instance grows linearly),
// while per-GB-second billing keeps its cost above the r6a baseline.
#include "core/shard_sim.h"

#include <gtest/gtest.h>

namespace staratlas {
namespace {

ScatterGatherQuery scatter_query(double sample_gib, usize workers) {
  ScatterGatherQuery query;
  query.sample_fastq = ByteSize::from_gib(sample_gib);
  query.cloud.index_bytes = ByteSize::from_gib(28.0);
  query.num_workers = workers;
  query.worker = faas_class("fn-10gb");
  return query;
}

SingleInstanceQuery single_query(double sample_gib) {
  SingleInstanceQuery query;
  query.sample_fastq = ByteSize::from_gib(sample_gib);
  query.cloud.index_bytes = ByteSize::from_gib(28.0);
  query.instance = instance_type("r6a.4xlarge");
  return query;
}

TEST(ShardSim, SmallFunctionCannotHoldWorkingSet) {
  // 2 GB provisioned < 2 GiB engine headroom: infeasible regardless of
  // the mmap'd index staying out of provisioned memory.
  ScatterGatherQuery query = scatter_query(4.0, 16);
  query.worker = faas_class("fn-2gb");
  const ScatterGatherResult result = simulate_scatter_gather(query);
  EXPECT_FALSE(result.feasible);
  EXPECT_EQ(result.cost_usd, 0.0);
}

TEST(ShardSim, ScatterGatherRunsThroughEventSim) {
  const ScatterGatherResult result =
      simulate_scatter_gather(scatter_query(8.0, 32));
  ASSERT_TRUE(result.feasible);
  EXPECT_EQ(result.workers, 32u);
  // One event per worker landing plus the gather completion.
  EXPECT_EQ(result.sim_events, 33u);
  EXPECT_GT(result.attach.secs(), 0.0);
  EXPECT_GT(result.worker_align.secs(), 0.0);
  // Makespan decomposes: all workers run concurrently, gather follows.
  const double expected = result.cold_start.secs() + result.attach.secs() +
                          result.worker_align.secs() +
                          result.cold_start.secs() + result.gather.secs();
  EXPECT_NEAR(result.makespan.secs(), expected, 1e-6);
  EXPECT_GT(result.cost_usd, 0.0);
}

TEST(ShardSim, MoreWorkersShrinkMakespanButRaiseCost) {
  const ScatterGatherResult few = simulate_scatter_gather(scatter_query(16.0, 8));
  const ScatterGatherResult many =
      simulate_scatter_gather(scatter_query(16.0, 64));
  ASSERT_TRUE(few.feasible);
  ASSERT_TRUE(many.feasible);
  EXPECT_LT(many.worker_align.secs(), few.worker_align.secs());
  EXPECT_LT(many.makespan.secs(), few.makespan.secs());
  // Every extra worker pays its own cold start + index first-touch.
  EXPECT_GT(many.cost_usd, few.cost_usd);
}

TEST(ShardSim, SingleInstanceFeasibilityTracksIndexMemory) {
  const SingleInstanceResult ok = simulate_single_instance(single_query(8.0));
  ASSERT_TRUE(ok.feasible);
  EXPECT_GT(ok.boot_and_init.secs(), 45.0);  // boot + index load
  EXPECT_GT(ok.makespan.secs(), ok.boot_and_init.secs());
  EXPECT_GT(ok.cost_usd, 0.0);

  SingleInstanceQuery cramped = single_query(8.0);
  cramped.cloud.index_bytes = ByteSize::from_gib(130.0);  // needs 136 GiB > 128
  const SingleInstanceResult bad = simulate_single_instance(cramped);
  EXPECT_FALSE(bad.feasible);
}

TEST(ShardSim, LatencyCrossoverFavorsScatterOnLargeSamples) {
  // Both paths carry ~2 minutes of fixed overhead (boot + S3 index load
  // vs cold start + index first-touch), but the scatter makespan grows
  // ~N times slower with sample size, so it wins clearly at scale.
  const double small = 0.1;
  const double large = 32.0;
  const ScatterGatherResult scatter_small =
      simulate_scatter_gather(scatter_query(small, 32));
  const ScatterGatherResult scatter_large =
      simulate_scatter_gather(scatter_query(large, 32));
  const SingleInstanceResult single_small =
      simulate_single_instance(single_query(small));
  const SingleInstanceResult single_large =
      simulate_single_instance(single_query(large));
  ASSERT_TRUE(scatter_small.feasible && scatter_large.feasible);
  ASSERT_TRUE(single_small.feasible && single_large.feasible);

  EXPECT_LT(scatter_large.makespan.secs(), single_large.makespan.secs());
  const double scatter_slope =
      scatter_large.makespan.secs() - scatter_small.makespan.secs();
  const double single_slope =
      single_large.makespan.secs() - single_small.makespan.secs();
  EXPECT_LT(scatter_slope * 4.0, single_slope);
  // Per-GB-second compute is pricier than the r6a's hourly rate, so the
  // cost advantage stays with the single instance even at this size.
  EXPECT_GT(scatter_large.cost_usd, single_large.cost_usd);
}

TEST(ShardSim, Release108SlowdownPropagates) {
  ScatterGatherQuery r108 = scatter_query(8.0, 32);
  r108.cloud.genome_release = 108;
  const ScatterGatherResult slow = simulate_scatter_gather(r108);
  const ScatterGatherResult fast =
      simulate_scatter_gather(scatter_query(8.0, 32));
  EXPECT_GT(slow.worker_align.secs(), fast.worker_align.secs());
}

}  // namespace
}  // namespace staratlas
