#include "core/estimate.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace staratlas {
namespace {

std::vector<SraSample> catalog_of(usize n, double sc = 0.1, u64 seed = 5) {
  CatalogSpec spec;
  spec.num_samples = n;
  spec.single_cell_fraction = sc;
  spec.seed = seed;
  return make_catalog(spec);
}

AtlasConfig config_for(int release) {
  AtlasConfig config;
  config.use_release(release);
  config.asg.max_size = 8;
  config.seed = 77;
  return config;
}

TEST(Estimate, AgreesWithSimulatorOnCost) {
  const auto catalog = catalog_of(60);
  const AtlasConfig config = config_for(111);
  const CampaignEstimate estimate = estimate_campaign(catalog, config);
  const AtlasReport actual = AtlasSimulation(catalog, config).run();
  // The closed form ignores queueing/poll idling, so it undershoots a
  // little; they must agree within 25%.
  EXPECT_NEAR(estimate.ec2_cost_usd, actual.total_cost_usd,
              0.25 * actual.total_cost_usd);
  EXPECT_NEAR(estimate.instance_hours, actual.instance_hours,
              0.25 * actual.instance_hours);
}

TEST(Estimate, PredictsEarlyStops) {
  const auto catalog = catalog_of(100, 0.2);
  usize single_cell = 0;
  for (const auto& sample : catalog) {
    single_cell += sample.type == LibraryType::kSingleCell ? 1 : 0;
  }
  const CampaignEstimate estimate =
      estimate_campaign(catalog, config_for(111));
  EXPECT_EQ(estimate.expected_early_stops, single_cell);
  EXPECT_GT(estimate.align_hours_saved, 0.0);
}

TEST(Estimate, EarlyStopDisabledSavesNothing) {
  const auto catalog = catalog_of(50, 0.2);
  AtlasConfig config = config_for(111);
  config.early_stop.enabled = false;
  const CampaignEstimate estimate = estimate_campaign(catalog, config);
  EXPECT_EQ(estimate.expected_early_stops, 0u);
  EXPECT_DOUBLE_EQ(estimate.align_hours_saved, 0.0);
}

TEST(Estimate, Release108CostsMore) {
  const auto catalog = catalog_of(40);
  AtlasConfig r108 = config_for(108);
  r108.stages.release_slowdown_108 = 12.0;
  const CampaignEstimate e108 = estimate_campaign(catalog, r108);
  const CampaignEstimate e111 = estimate_campaign(catalog, config_for(111));
  EXPECT_GT(e108.ec2_cost_usd, 5.0 * e111.ec2_cost_usd);
  EXPECT_GT(e108.makespan_hours, e111.makespan_hours);
}

TEST(Estimate, SpotCheaperThanOnDemand) {
  const auto catalog = catalog_of(40);
  AtlasConfig spot = config_for(111);
  spot.spot = true;
  const CampaignEstimate e_spot = estimate_campaign(catalog, spot);
  const CampaignEstimate e_od = estimate_campaign(catalog, config_for(111));
  EXPECT_LT(e_spot.ec2_cost_usd, 0.5 * e_od.ec2_cost_usd);
  // Work hours identical; only the rate changes.
  EXPECT_DOUBLE_EQ(e_spot.instance_hours, e_od.instance_hours);
}

TEST(Estimate, MoreInstancesShortenMakespan) {
  const auto catalog = catalog_of(80);
  AtlasConfig narrow = config_for(111);
  narrow.asg.max_size = 2;
  AtlasConfig wide = config_for(111);
  wide.asg.max_size = 16;
  EXPECT_GT(estimate_campaign(catalog, narrow).makespan_hours,
            2.0 * estimate_campaign(catalog, wide).makespan_hours);
}

TEST(Estimate, BootDelayPlumbedFromConfig) {
  // The closed form must use the configured boot delay, not a hardcoded
  // 45 s: stretching the delay by an hour moves the makespan by exactly
  // that hour (boot happens once per instance, off the critical path of
  // per-sample work).
  const auto catalog = catalog_of(40);
  AtlasConfig fast_boot = config_for(111);
  AtlasConfig slow_boot = config_for(111);
  slow_boot.boot_delay =
      fast_boot.boot_delay + VirtualDuration::hours(1);
  const CampaignEstimate fast = estimate_campaign(catalog, fast_boot);
  const CampaignEstimate slow = estimate_campaign(catalog, slow_boot);
  EXPECT_NEAR(slow.makespan_hours - fast.makespan_hours, 1.0, 1e-9);
  // Boot is unbilled wait, not instance work.
  EXPECT_DOUBLE_EQ(slow.instance_hours, fast.instance_hours);
  EXPECT_DOUBLE_EQ(slow.ec2_cost_usd, fast.ec2_cost_usd);
}

TEST(Estimate, EmptyCatalogRejected) {
  EXPECT_THROW(estimate_campaign({}, config_for(111)), InternalError);
}

}  // namespace
}  // namespace staratlas
