// FastqBlockReader must be bit-compatible with FastqReader: same records,
// same byte accounting, same ParseError text. The shared-corpus sweep
// lives in fuzz_test.cc; this file covers the deterministic cases plus the
// batch/arena mechanics.
#include "io/fastq_block.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.h"
#include "io/fastq.h"

namespace staratlas {
namespace {

std::vector<FastqRecord> block_parse(const std::string& text,
                                     usize block_bytes = 64,
                                     usize batch_reads = 3) {
  std::istringstream in(text);
  FastqBlockReader reader(in, block_bytes);
  ReadBatch batch;
  std::vector<FastqRecord> records;
  while (reader.read_batch(batch, batch_reads) > 0) {
    for (usize i = 0; i < batch.size(); ++i) {
      records.push_back({std::string(batch.name(i)),
                         std::string(batch.sequence(i)),
                         std::string(batch.quality(i))});
    }
    batch.clear();
  }
  return records;
}

TEST(FastqBlock, ParsesRecords) {
  const auto records =
      block_parse("@r1\nACGT\n+\nIIII\n@r2 extra\nTT\n+r2\nII\n");
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].name, "r1");
  EXPECT_EQ(records[0].sequence, "ACGT");
  EXPECT_EQ(records[0].quality, "IIII");
  EXPECT_EQ(records[1].name, "r2 extra");
}

TEST(FastqBlock, HandlesCrlfAndBlankLines) {
  const auto records =
      block_parse("@a\r\nAC\r\n+\r\nII\r\n\r\n\n@b\nGG\n+\nII");
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].name, "a");
  EXPECT_EQ(records[0].sequence, "AC");
  EXPECT_EQ(records[1].sequence, "GG");  // unterminated final line accepted
}

TEST(FastqBlock, NormalizesLowercaseAndRejectsBadResidues) {
  EXPECT_EQ(block_parse("@a\nacgt\n+\nIIII\n")[0].sequence, "ACGT");
  EXPECT_THROW(block_parse("@a\nACXT\n+\nIIII\n"), ParseError);
}

TEST(FastqBlock, TinyBlocksForceRefillAndGrowth) {
  // Block far smaller than any line: every next_line crosses a refill,
  // and the buffer must grow to hold the long sequence line.
  std::string seq(300, 'A');
  const std::string text = "@long_read_name_1\n" + seq + "\n+\n" +
                           std::string(300, 'I') + "\n@b\nGG\n+\nII\n";
  const auto records = block_parse(text, /*block_bytes=*/8);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].sequence, seq);
  EXPECT_EQ(records[1].name, "b");
}

TEST(FastqBlock, MatchesGetlineReaderRecordForRecord) {
  const std::string text =
      "@r1\nACGTN\n+\nIIII#\n@r2 desc\nacgt\n+junk ok\n!!!!\n"
      "\n@r3\nT\n+\nI\n";
  std::istringstream in(text);
  const auto expected = read_fastq(in);
  const auto got = block_parse(text, 16, 2);
  ASSERT_EQ(got.size(), expected.size());
  for (usize i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].name, expected[i].name) << i;
    EXPECT_EQ(got[i].sequence, expected[i].sequence) << i;
    EXPECT_EQ(got[i].quality, expected[i].quality) << i;
  }
}

TEST(FastqBlock, ByteAccountingMatchesReaderAndWriter) {
  std::vector<FastqRecord> records = {{"abc", "ACGT", "IIII"},
                                      {"x", "GG", "II"},
                                      {"read.3", "ACGTN", "IIII#"}};
  std::ostringstream out;
  write_fastq(out, records);
  const std::string text = out.str();

  std::istringstream block_in(text);
  FastqBlockReader block(block_in, 32);
  ReadBatch batch;
  while (block.read_batch(batch, 2) > 0) {
  }
  EXPECT_EQ(block.records_read(), records.size());
  EXPECT_EQ(block.serialized_bytes(), text.size());
  EXPECT_EQ(block.serialized_bytes(), fastq_serialized_size(records).bytes());
  EXPECT_EQ(batch.fastq_bytes(), text.size());  // batch not cleared above

  std::istringstream getline_in(text);
  FastqReader reader(getline_in);
  while (reader.next()) {
  }
  EXPECT_EQ(reader.serialized_bytes(), block.serialized_bytes());
}

TEST(FastqBlock, BatchViewsPointIntoArena) {
  std::istringstream in("@a\nACGT\n+\nIIII\n@b\nGG\n+\n!!\n");
  FastqBlockReader reader(in);
  ReadBatch batch;
  ASSERT_EQ(reader.read_batch(batch, 100), 2u);
  const ReadView v0 = batch.view(0);
  EXPECT_EQ(v0.name, "a");
  EXPECT_EQ(v0.sequence, "ACGT");
  EXPECT_EQ(v0.quality, "IIII");
  EXPECT_EQ(batch.view(1).quality, "!!");
  EXPECT_EQ(batch.size(), 2u);
  EXPECT_FALSE(batch.empty());

  // clear() keeps capacity (the recycling contract).
  const u64 cap = batch.capacity_bytes();
  batch.clear();
  EXPECT_TRUE(batch.empty());
  EXPECT_EQ(batch.fastq_bytes(), 0u);
  EXPECT_EQ(batch.capacity_bytes(), cap);
}

TEST(FastqBlock, ReadBatchRespectsMaxReads) {
  std::istringstream in("@a\nA\n+\nI\n@b\nC\n+\nI\n@c\nG\n+\nI\n");
  FastqBlockReader reader(in, 16);
  ReadBatch batch;
  EXPECT_EQ(reader.read_batch(batch, 2), 2u);
  EXPECT_EQ(reader.read_batch(batch, 2), 1u);
  EXPECT_EQ(reader.read_batch(batch, 2), 0u);
  EXPECT_EQ(batch.size(), 3u);  // appended across calls
  EXPECT_EQ(reader.records_read(), 3u);
}

// Error-message parity with FastqReader, byte for byte.
void expect_same_error(const std::string& text) {
  SCOPED_TRACE(text);
  std::string getline_error;
  try {
    std::istringstream in(text);
    read_fastq(in);
  } catch (const ParseError& e) {
    getline_error = e.what();
  }
  ASSERT_FALSE(getline_error.empty()) << "corpus case must be malformed";
  try {
    block_parse(text);
    FAIL() << "block parser accepted malformed input";
  } catch (const ParseError& e) {
    EXPECT_EQ(std::string(e.what()), getline_error);
  }
}

TEST(FastqBlock, ErrorTextMatchesGetlineReader) {
  expect_same_error("r1\nACGT\n+\nIIII\n");            // missing '@'
  expect_same_error("@\nACGT\n+\nIIII\n");             // empty name
  expect_same_error("@r1\nACGT\n+\n");                 // truncated
  expect_same_error("@r1\nACGT\n");                    // truncated earlier
  expect_same_error("@r1\n");                          // truncated earliest
  expect_same_error("@r1\nACGT\nIIII\nIIII\n");        // missing '+'
  expect_same_error("@r1\nACGT\n\nIIII\n");            // blank '+' line
  expect_same_error("@r1\nACGT\n+\nII\n");             // length mismatch
  expect_same_error("@r1\nACGT\n+\nIIII\n@r2\nAC\n");  // second record bad
  expect_same_error("@ok\nAC\n+\nII\n@bad\nACZT\n+\nIIII\n");  // residue
}

}  // namespace
}  // namespace staratlas
