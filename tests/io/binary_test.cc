#include "io/binary.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.h"

namespace staratlas {
namespace {

TEST(Binary, RoundTripsScalarsStringsVectors) {
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  BinaryWriter writer(buffer);
  writer.write_u8(0xAB);
  writer.write_u32(0xDEADBEEF);
  writer.write_u64(~0ULL);
  writer.write_f64(-2.5);
  writer.write_string("hello");
  writer.write_bytes({1, 2, 3});
  writer.write_pod_vector(std::vector<u32>{7, 8, 9});

  BinaryReader reader(buffer);
  EXPECT_EQ(reader.read_u8(), 0xAB);
  EXPECT_EQ(reader.read_u32(), 0xDEADBEEF);
  EXPECT_EQ(reader.read_u64(), ~0ULL);
  EXPECT_DOUBLE_EQ(reader.read_f64(), -2.5);
  EXPECT_EQ(reader.read_string(), "hello");
  EXPECT_EQ(reader.read_bytes(), (std::vector<u8>{1, 2, 3}));
  EXPECT_EQ(reader.read_pod_vector<u32>(), (std::vector<u32>{7, 8, 9}));
}

TEST(Binary, EmptyContainersRoundTrip) {
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  BinaryWriter writer(buffer);
  writer.write_string("");
  writer.write_pod_vector(std::vector<u64>{});
  BinaryReader reader(buffer);
  EXPECT_EQ(reader.read_string(), "");
  EXPECT_TRUE(reader.read_pod_vector<u64>().empty());
}

TEST(Binary, BytesWrittenTracksOutput) {
  std::ostringstream out(std::ios::binary);
  BinaryWriter writer(out);
  writer.write_u32(1);
  writer.write_string("abc");
  EXPECT_EQ(writer.bytes_written(), 4u + 8u + 3u);
}

TEST(Binary, TruncatedReadThrows) {
  std::istringstream in(std::string("\x01\x02", 2), std::ios::binary);
  BinaryReader reader(in);
  EXPECT_THROW(reader.read_u64(), IoError);
}

TEST(Binary, ImplausibleLengthPrefixThrows) {
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  BinaryWriter writer(buffer);
  writer.write_u64(1ULL << 50);  // absurd length prefix
  BinaryReader reader(buffer);
  EXPECT_THROW(reader.read_string(), ParseError);
}

TEST(Binary, TruncatedStringPayloadThrows) {
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  BinaryWriter writer(buffer);
  writer.write_u64(100);  // claims 100 bytes, provides none
  BinaryReader reader(buffer);
  EXPECT_THROW(reader.read_string(), IoError);
}

}  // namespace
}  // namespace staratlas
