#include "io/fastq.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.h"

namespace staratlas {
namespace {

TEST(Fastq, ParsesRecords) {
  std::istringstream in("@r1\nACGT\n+\nIIII\n@r2 extra\nTT\n+r2\nII\n");
  const auto records = read_fastq(in);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].name, "r1");
  EXPECT_EQ(records[0].sequence, "ACGT");
  EXPECT_EQ(records[0].quality, "IIII");
  EXPECT_EQ(records[1].name, "r2 extra");
}

TEST(Fastq, ReaderStreamsAndCounts) {
  std::istringstream in("@a\nAC\n+\nII\n@b\nGG\n+\nII\n");
  FastqReader reader(in);
  EXPECT_EQ(reader.records_read(), 0u);
  EXPECT_TRUE(reader.next().has_value());
  EXPECT_EQ(reader.records_read(), 1u);
  EXPECT_TRUE(reader.next().has_value());
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_EQ(reader.records_read(), 2u);
}

TEST(Fastq, SkipsBlankLinesBetweenRecords) {
  std::istringstream in("@a\nAC\n+\nII\n\n\n@b\nGG\n+\nII\n");
  EXPECT_EQ(read_fastq(in).size(), 2u);
}

TEST(Fastq, RejectsMissingAt) {
  std::istringstream in("r1\nACGT\n+\nIIII\n");
  EXPECT_THROW(read_fastq(in), ParseError);
}

TEST(Fastq, RejectsTruncatedRecord) {
  std::istringstream in("@r1\nACGT\n+\n");
  EXPECT_THROW(read_fastq(in), ParseError);
}

TEST(Fastq, RejectsMissingPlus) {
  std::istringstream in("@r1\nACGT\nIIII\nIIII\n");
  EXPECT_THROW(read_fastq(in), ParseError);
}

TEST(Fastq, RejectsLengthMismatch) {
  std::istringstream in("@r1\nACGT\n+\nII\n");
  EXPECT_THROW(read_fastq(in), ParseError);
}

TEST(Fastq, RejectsEmptyName) {
  std::istringstream in("@\nACGT\n+\nIIII\n");
  EXPECT_THROW(read_fastq(in), ParseError);
}

TEST(Fastq, RoundTrip) {
  std::vector<FastqRecord> records = {{"read.1.exon", "ACGTN", "IIII#"},
                                      {"read.2.junk", "TTTT", "!!!!"}};
  std::ostringstream out;
  write_fastq(out, records);
  std::istringstream in(out.str());
  const auto parsed = read_fastq(in);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].sequence, records[0].sequence);
  EXPECT_EQ(parsed[1].quality, records[1].quality);
}

TEST(Fastq, SerializedSizeMatchesWriter) {
  std::vector<FastqRecord> records = {{"abc", "ACGT", "IIII"},
                                      {"x", "GG", "II"}};
  std::ostringstream out;
  write_fastq(out, records);
  EXPECT_EQ(fastq_serialized_size(records).bytes(), out.str().size());
}

TEST(Fastq, MakeReadSetComputesBytes) {
  std::vector<FastqRecord> records = {{"a", "ACGT", "IIII"}};
  const ReadSet set = make_read_set(records);
  EXPECT_EQ(set.size(), 1u);
  EXPECT_EQ(set.fastq_bytes.bytes(), fastq_serialized_size(records).bytes());
  EXPECT_FALSE(set.empty());
}

TEST(Fastq, ReaderAccumulatesSerializedBytes) {
  std::vector<FastqRecord> records = {{"abc", "ACGT", "IIII"},
                                      {"x longer name", "GG", "II"}};
  std::ostringstream out;
  write_fastq(out, records);

  std::istringstream in(out.str());
  FastqReader reader(in);
  EXPECT_EQ(reader.serialized_bytes(), 0u);
  while (reader.next()) {
  }
  // In-stream accounting must agree with both the writer's actual output
  // and the O(records) re-walk it replaces.
  EXPECT_EQ(reader.serialized_bytes(), out.str().size());
  EXPECT_EQ(reader.serialized_bytes(), fastq_serialized_size(records).bytes());
}

TEST(Fastq, MakeReadSetAcceptsPrecomputedBytes) {
  std::vector<FastqRecord> records = {{"abc", "ACGT", "IIII"},
                                      {"x", "GG", "II"}};
  const ByteSize expected = fastq_serialized_size(records);
  const ReadSet computed = make_read_set(records);
  const ReadSet precomputed = make_read_set(records, expected);
  EXPECT_EQ(computed.fastq_bytes.bytes(), precomputed.fastq_bytes.bytes());
  EXPECT_EQ(precomputed.fastq_bytes.bytes(), expected.bytes());
}

TEST(Fastq, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/staratlas_fastq_test.fq";
  std::vector<FastqRecord> records = {{"a", "ACGT", "IIII"}};
  write_fastq_file(path, records);
  EXPECT_EQ(read_fastq_file(path).size(), 1u);
}

}  // namespace
}  // namespace staratlas
