// ShardPlan: record-boundary snapping must be exact under every FASTQ
// quirk the block parser accepts — '@' at the start of quality lines,
// CRLF endings, blank separator lines — and byte ranges must tile the
// input with read counts that sum to the total.
#include <gtest/gtest.h>

#include <string>

#include "common/error.h"
#include "io/fastq_block.h"
#include "io/read_batch.h"
#include "io/shard_plan.h"

namespace staratlas {
namespace {

/// `n` records whose quality strings deliberately start with '@' (legal
/// phred+33, the classic mid-file ambiguity).
std::string tricky_fastq(usize n, const std::string& line_end = "\n",
                         const std::string& separator = "") {
  std::string out;
  for (usize i = 0; i < n; ++i) {
    const std::string seq = i % 2 ? "ACGTACGTACGT" : "TTGGCCAA";
    std::string qual(seq.size(), '@');  // '@' == phred 31
    out += "@read" + std::to_string(i) + line_end;
    out += seq + line_end;
    out += "+" + line_end;
    out += qual + line_end;
    out += separator;
  }
  return out;
}

void expect_plan_consistent(const std::string& data, const ShardPlan& plan) {
  ASSERT_FALSE(plan.ranges.empty());
  EXPECT_EQ(plan.total_bytes, data.size());
  EXPECT_EQ(plan.ranges.front().byte_begin, 0u);
  EXPECT_EQ(plan.ranges.back().byte_end, data.size());
  u64 reads = 0;
  for (usize i = 0; i < plan.ranges.size(); ++i) {
    const ShardRange& range = plan.ranges[i];
    EXPECT_LE(range.byte_begin, range.byte_end);
    if (i > 0) {
      EXPECT_EQ(range.byte_begin, plan.ranges[i - 1].byte_end) << "shard " << i;
      EXPECT_EQ(range.first_read,
                plan.ranges[i - 1].first_read + plan.ranges[i - 1].num_reads);
    }
    reads += range.num_reads;
    // Every range must parse standalone to exactly its planned count.
    FastqBlockReader reader(
        std::string_view(data).substr(range.byte_begin,
                                      range.byte_end - range.byte_begin));
    ReadBatch batch;
    u64 parsed = 0;
    while (usize got = reader.read_batch(batch, 64)) parsed += got;
    EXPECT_EQ(parsed, range.num_reads) << "shard " << i;
    batch.clear();
  }
  EXPECT_EQ(reads, plan.total_reads);
}

TEST(ShardPlan, TilesAndCountsExactly) {
  const std::string data = tricky_fastq(97);
  for (usize shards : {usize{1}, usize{2}, usize{3}, usize{4}, usize{8},
                       usize{13}}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    const ShardPlan plan = plan_fastq_shards(data, shards);
    ASSERT_EQ(plan.num_shards(), shards);
    EXPECT_EQ(plan.total_reads, 97u);
    expect_plan_consistent(data, plan);
  }
}

TEST(ShardPlan, QualityAtSignDoesNotFoolBoundaries) {
  // Every quality line starts with '@': boundaries must still land on
  // true record headers (the standalone-parse check above would fail on a
  // quality-line boundary with a ParseError or wrong count).
  const std::string data = tricky_fastq(40);
  const ShardPlan plan = plan_fastq_shards(data, 7);
  expect_plan_consistent(data, plan);
  for (usize i = 1; i < plan.ranges.size(); ++i) {
    const ShardRange& range = plan.ranges[i];
    if (range.byte_begin == data.size()) continue;
    EXPECT_EQ(data[range.byte_begin], '@');
    // Heuristic probe agrees with the exact planner at every boundary.
    EXPECT_EQ(next_record_start(data, range.byte_begin), range.byte_begin);
  }
}

TEST(ShardPlan, CrlfAndBlankSeparatorLines) {
  for (const auto& [line_end, separator] :
       {std::pair<std::string, std::string>{"\r\n", ""},
        {"\n", "\n"},
        {"\r\n", "\r\n"}}) {
    const std::string data = tricky_fastq(23, line_end, separator);
    const ShardPlan plan = plan_fastq_shards(data, 5);
    EXPECT_EQ(plan.total_reads, 23u);
    expect_plan_consistent(data, plan);
  }
}

TEST(ShardPlan, MoreShardsThanRecordsYieldsEmptyTails) {
  const std::string data = tricky_fastq(3);
  const ShardPlan plan = plan_fastq_shards(data, 8);
  expect_plan_consistent(data, plan);
  usize non_empty = 0;
  for (const ShardRange& range : plan.ranges) {
    if (!range.empty()) ++non_empty;
  }
  EXPECT_LE(non_empty, 3u);
  EXPECT_TRUE(plan.ranges.back().empty());
  EXPECT_EQ(plan.ranges.back().byte_begin, plan.ranges.back().byte_end);
}

TEST(ShardPlan, EmptyAndBlankOnlyInputs) {
  const ShardPlan empty = plan_fastq_shards("", 4);
  EXPECT_EQ(empty.total_reads, 0u);
  for (const ShardRange& range : empty.ranges) EXPECT_TRUE(range.empty());

  const ShardPlan blanks = plan_fastq_shards("\n\n\r\n\n", 2);
  EXPECT_EQ(blanks.total_reads, 0u);
}

TEST(ShardPlan, TruncatedRecordThrows) {
  std::string data = tricky_fastq(5);
  data += "@orphan\nACGT\n";  // 2 trailing lines: not a multiple of 4
  EXPECT_THROW(plan_fastq_shards(data, 3), ParseError);
  EXPECT_THROW(count_fastq_records(data), ParseError);
}

TEST(ShardPlan, NextRecordStartScansPastQualityLines) {
  const std::string data = tricky_fastq(6);
  // From any byte inside the file, the returned offset is a real record
  // start: its line begins '@' and two non-blank lines later begins '+'.
  for (usize pos = 0; pos < data.size(); pos += 3) {
    const usize start = next_record_start(data, pos);
    if (start == data.size()) continue;
    EXPECT_EQ(data[start], '@');
    EXPECT_TRUE(start == 0 || data[start - 1] == '\n');
    // Parsing from the snapped start succeeds and yields whole records.
    FastqBlockReader reader(std::string_view(data).substr(start));
    ReadBatch batch;
    u64 parsed = 0;
    while (usize got = reader.read_batch(batch, 16)) parsed += got;
    EXPECT_GE(parsed, 1u);
  }
  // Inside the very last record, no further record start exists.
  EXPECT_EQ(next_record_start(data, data.size() - 2), data.size());
  EXPECT_EQ(next_record_start(data, data.size()), data.size());
}

TEST(ShardPlan, CountFastqRecords) {
  EXPECT_EQ(count_fastq_records(""), 0u);
  EXPECT_EQ(count_fastq_records(tricky_fastq(12)), 12u);
  EXPECT_EQ(count_fastq_records(tricky_fastq(12, "\r\n", "\n")), 12u);
}

}  // namespace
}  // namespace staratlas
