#include "io/fasta.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.h"

namespace staratlas {
namespace {

TEST(Fasta, ParsesMultiRecord) {
  std::istringstream in(">chr1 first chromosome\nACGT\nACGT\n>chr2\nTTTT\n");
  const auto records = read_fasta(in);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].name, "chr1");
  EXPECT_EQ(records[0].description, "first chromosome");
  EXPECT_EQ(records[0].sequence, "ACGTACGT");
  EXPECT_EQ(records[1].name, "chr2");
  EXPECT_EQ(records[1].description, "");
  EXPECT_EQ(records[1].sequence, "TTTT");
}

TEST(Fasta, UppercasesAndMapsAmbiguity) {
  std::istringstream in(">c\nacgtRYswN\n");
  const auto records = read_fasta(in);
  EXPECT_EQ(records[0].sequence, "ACGTNNNNN");
}

TEST(Fasta, RejectsDataBeforeHeader) {
  std::istringstream in("ACGT\n>c\nAC\n");
  EXPECT_THROW(read_fasta(in), ParseError);
}

TEST(Fasta, RejectsInvalidResidue) {
  std::istringstream in(">c\nAC-GT\n");
  EXPECT_THROW(read_fasta(in), ParseError);
}

TEST(Fasta, RejectsEmptyName) {
  std::istringstream in("> description only\nACGT\n");
  EXPECT_THROW(read_fasta(in), ParseError);
}

TEST(Fasta, HandlesCrlf) {
  std::istringstream in(">c desc\r\nACGT\r\n");
  const auto records = read_fasta(in);
  EXPECT_EQ(records[0].sequence, "ACGT");
  EXPECT_EQ(records[0].description, "desc");
}

TEST(Fasta, EmptyStreamGivesNoRecords) {
  std::istringstream in("");
  EXPECT_TRUE(read_fasta(in).empty());
}

TEST(Fasta, RoundTripWithWrapping) {
  std::vector<FastaRecord> records = {
      {"chr1", "toplevel", std::string(150, 'A') + std::string(10, 'C')},
      {"KI270001.1", "unlocalized", "ACGTACGT"}};
  std::ostringstream out;
  write_fasta(out, records, 60);
  std::istringstream in(out.str());
  const auto parsed = read_fasta(in);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].name, records[0].name);
  EXPECT_EQ(parsed[0].description, records[0].description);
  EXPECT_EQ(parsed[0].sequence, records[0].sequence);
  EXPECT_EQ(parsed[1].sequence, records[1].sequence);
}

TEST(Fasta, WrapWidthRespected) {
  std::vector<FastaRecord> records = {{"c", "", std::string(100, 'G')}};
  std::ostringstream out;
  write_fasta(out, records, 25);
  std::string line;
  std::istringstream lines(out.str());
  std::getline(lines, line);  // header
  usize data_lines = 0;
  while (std::getline(lines, line)) {
    EXPECT_LE(line.size(), 25u);
    ++data_lines;
  }
  EXPECT_EQ(data_lines, 4u);
}

TEST(Fasta, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/staratlas_fasta_test.fa";
  std::vector<FastaRecord> records = {{"x", "", "ACGTACGTAC"}};
  write_fasta_file(path, records);
  const auto parsed = read_fasta_file(path);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].sequence, "ACGTACGTAC");
}

TEST(Fasta, MissingFileThrows) {
  EXPECT_THROW(read_fasta_file("/nonexistent/nope.fa"), IoError);
}

TEST(NormalizeSequence, MapsUracil) {
  std::string seq = "ACGU";
  normalize_sequence(seq);
  EXPECT_EQ(seq, "ACGN");
}

}  // namespace
}  // namespace staratlas
