#include "io/gtf.h"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.h"

namespace staratlas {
namespace {

constexpr const char* kSample =
    "# comment line\n"
    "1\tens\tgene\t100\t500\t.\t+\t.\tgene_id \"G1\";\n"
    "1\tens\ttranscript\t100\t500\t.\t+\t.\tgene_id \"G1\"; transcript_id \"G1.t1\";\n"
    "1\tens\texon\t100\t200\t.\t+\t.\tgene_id \"G1\"; transcript_id \"G1.t1\";\n"
    "1\tens\tCDS\t120\t180\t.\t+\t.\tgene_id \"G1\"; transcript_id \"G1.t1\";\n"
    "2\tens\texon\t50\t80\t.\t-\t.\tgene_id \"G2\";\n";

TEST(Gtf, ParsesFeaturesSkippingUnknownTypes) {
  std::istringstream in(kSample);
  const auto features = read_gtf(in);
  ASSERT_EQ(features.size(), 4u);  // CDS skipped, comment skipped
  EXPECT_EQ(features[0].type, FeatureType::kGene);
  EXPECT_EQ(features[1].type, FeatureType::kTranscript);
  EXPECT_EQ(features[1].transcript_id, "G1.t1");
  EXPECT_EQ(features[2].type, FeatureType::kExon);
  EXPECT_EQ(features[2].start, 100u);
  EXPECT_EQ(features[2].end, 200u);
  EXPECT_EQ(features[3].strand, '-');
  EXPECT_EQ(features[3].gene_id, "G2");
}

TEST(Gtf, RejectsTooFewFields) {
  std::istringstream in("1\tens\texon\t1\t2\n");
  EXPECT_THROW(read_gtf(in), ParseError);
}

TEST(Gtf, RejectsBadCoordinates) {
  std::istringstream in("1\te\texon\t0\t10\t.\t+\t.\tgene_id \"G\";\n");
  EXPECT_THROW(read_gtf(in), ParseError);
  std::istringstream in2("1\te\texon\t10\t5\t.\t+\t.\tgene_id \"G\";\n");
  EXPECT_THROW(read_gtf(in2), ParseError);
}

TEST(Gtf, RejectsBadStrand) {
  std::istringstream in("1\te\texon\t1\t10\t.\t*\t.\tgene_id \"G\";\n");
  EXPECT_THROW(read_gtf(in), ParseError);
}

TEST(Gtf, RejectsMissingGeneId) {
  std::istringstream in("1\te\texon\t1\t10\t.\t+\t.\tfoo \"bar\";\n");
  EXPECT_THROW(read_gtf(in), ParseError);
}

TEST(Gtf, AttributeKeyMustBeWholeToken) {
  // "mygene_id" must not satisfy a "gene_id" lookup.
  std::istringstream in(
      "1\te\texon\t1\t10\t.\t+\t.\tmygene_id \"X\"; gene_id \"Y\";\n");
  const auto features = read_gtf(in);
  ASSERT_EQ(features.size(), 1u);
  EXPECT_EQ(features[0].gene_id, "Y");
}

TEST(Gtf, RoundTrip) {
  std::vector<GtfFeature> features;
  GtfFeature f;
  f.contig = "1";
  f.type = FeatureType::kExon;
  f.start = 42;
  f.end = 99;
  f.strand = '-';
  f.gene_id = "SYNG00000001";
  f.transcript_id = "SYNG00000001.t1";
  features.push_back(f);

  std::ostringstream out;
  write_gtf(out, features);
  std::istringstream in(out.str());
  const auto parsed = read_gtf(in);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].contig, "1");
  EXPECT_EQ(parsed[0].start, 42u);
  EXPECT_EQ(parsed[0].end, 99u);
  EXPECT_EQ(parsed[0].strand, '-');
  EXPECT_EQ(parsed[0].gene_id, f.gene_id);
  EXPECT_EQ(parsed[0].transcript_id, f.transcript_id);
}

TEST(Gtf, FeatureTypeNames) {
  EXPECT_STREQ(feature_type_name(FeatureType::kGene), "gene");
  EXPECT_STREQ(feature_type_name(FeatureType::kTranscript), "transcript");
  EXPECT_STREQ(feature_type_name(FeatureType::kExon), "exon");
}

}  // namespace
}  // namespace staratlas
