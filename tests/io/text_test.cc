#include "io/text.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace staratlas {
namespace {

TEST(SplitView, BasicAndEmptyFields) {
  const auto fields = split_view("a\tb\t\tc", '\t');
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "b");
  EXPECT_EQ(fields[2], "");
  EXPECT_EQ(fields[3], "c");
}

TEST(SplitView, NoDelimiter) {
  const auto fields = split_view("abc", ',');
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "abc");
}

TEST(SplitView, EmptyString) {
  const auto fields = split_view("", ',');
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "");
}

TEST(TrimView, StripsWhitespace) {
  EXPECT_EQ(trim_view("  hi \t\n"), "hi");
  EXPECT_EQ(trim_view("hi"), "hi");
  EXPECT_EQ(trim_view("   "), "");
  EXPECT_EQ(trim_view(""), "");
}

TEST(StartsWith, Basic) {
  EXPECT_TRUE(starts_with("gene_id \"X\"", "gene_id"));
  EXPECT_FALSE(starts_with("gene", "gene_id"));
  EXPECT_TRUE(starts_with("anything", ""));
}

TEST(ParseU64, ValidAndInvalid) {
  EXPECT_EQ(parse_u64("0"), 0ULL);
  EXPECT_EQ(parse_u64("18446744073709551615"), ~0ULL);
  EXPECT_THROW(parse_u64(""), ParseError);
  EXPECT_THROW(parse_u64("12x"), ParseError);
  EXPECT_THROW(parse_u64("-3"), ParseError);
}

TEST(ParseF64, ValidAndInvalid) {
  EXPECT_DOUBLE_EQ(parse_f64("2.5"), 2.5);
  EXPECT_DOUBLE_EQ(parse_f64("-1e3"), -1000.0);
  EXPECT_THROW(parse_f64("abc"), ParseError);
  EXPECT_THROW(parse_f64("1.5extra"), ParseError);
}

}  // namespace
}  // namespace staratlas
