// Robustness fuzzing: parsers and binary decoders must never crash on
// corrupted input — every failure surfaces as a staratlas::Error.
#include <gtest/gtest.h>

#include <sstream>

#include "common/error.h"
#include "common/rng.h"
#include "align/aligner.h"
#include "index/genome_index.h"
#include "io/fasta.h"
#include "io/fastq.h"
#include "io/gtf.h"
#include "sra/container.h"
#include "testutil.h"

namespace staratlas {
namespace {

using staratlas::testing::world;

// Flip, insert, delete and truncate bytes of a valid payload.
std::string corrupt(std::string payload, Rng& rng) {
  const usize edits = 1 + rng.uniform(8);
  for (usize e = 0; e < edits && !payload.empty(); ++e) {
    switch (rng.uniform(4)) {
      case 0:  // flip
        payload[rng.uniform(payload.size())] =
            static_cast<char>(rng.uniform(256));
        break;
      case 1:  // insert
        payload.insert(payload.begin() + static_cast<i64>(rng.uniform(payload.size())),
                       static_cast<char>(rng.uniform(256)));
        break;
      case 2:  // delete
        payload.erase(payload.begin() + static_cast<i64>(rng.uniform(payload.size())));
        break;
      default:  // truncate
        payload.resize(rng.uniform(payload.size()) + 1);
        break;
    }
  }
  return payload;
}

TEST(Fuzz, FastqParserNeverCrashes) {
  Rng rng(101);
  const std::string valid = "@r1\nACGT\n+\nIIII\n@r2\nGGCC\n+\nIIII\n";
  for (int trial = 0; trial < 300; ++trial) {
    std::istringstream in(corrupt(valid, rng));
    try {
      const auto records = read_fastq(in);
      for (const auto& rec : records) {
        EXPECT_EQ(rec.sequence.size(), rec.quality.size());
      }
    } catch (const Error&) {
      // expected for malformed input
    }
  }
}

TEST(Fuzz, FastaParserNeverCrashes) {
  Rng rng(103);
  const std::string valid = ">chr1 toplevel\nACGTACGT\n>chr2\nTTTT\n";
  for (int trial = 0; trial < 300; ++trial) {
    std::istringstream in(corrupt(valid, rng));
    try {
      read_fasta(in);
    } catch (const Error&) {
    }
  }
}

TEST(Fuzz, GtfParserNeverCrashes) {
  Rng rng(107);
  const std::string valid =
      "1\te\tgene\t1\t100\t.\t+\t.\tgene_id \"G\";\n"
      "1\te\texon\t1\t50\t.\t+\t.\tgene_id \"G\";\n";
  for (int trial = 0; trial < 300; ++trial) {
    std::istringstream in(corrupt(valid, rng));
    try {
      read_gtf(in);
    } catch (const Error&) {
    }
  }
}

TEST(Fuzz, SraDecoderNeverCrashes) {
  const auto& w = world();
  const ReadSet reads = w.simulator->simulate(bulk_rna_profile(), 30, Rng(5));
  SraMetadata metadata;
  metadata.accession = "SRR1";
  metadata.num_reads = reads.size();
  for (const auto& read : reads.reads) {
    metadata.total_bases += read.sequence.size();
  }
  const auto container = sra_encode(metadata, reads.reads);
  const std::string base(container.begin(), container.end());

  Rng rng(109);
  for (int trial = 0; trial < 300; ++trial) {
    const std::string bad = corrupt(base, rng);
    try {
      sra_decode(std::vector<u8>(bad.begin(), bad.end()));
    } catch (const Error&) {
    }
  }
}

TEST(Fuzz, IndexLoaderNeverCrashes) {
  const auto& w = world();
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  w.index111.save(buffer);
  const std::string base = buffer.str();
  Rng rng(113);
  for (int trial = 0; trial < 60; ++trial) {
    std::istringstream in(corrupt(base, rng), std::ios::binary);
    try {
      GenomeIndex::load(in);
    } catch (const Error&) {
    }
  }
}

TEST(Fuzz, AlignerHandlesArbitraryReadBytes) {
  // Reads straight off a sequencer can contain anything our FASTQ layer
  // normalizes; the aligner itself must tolerate any ACGTN string and
  // lengths from 0 to far beyond genome scale.
  const auto& w = world();
  const Aligner aligner(w.index111, AlignerParams{});
  Rng rng(127);
  static const char kAlphabet[] = "ACGTN";
  for (int trial = 0; trial < 200; ++trial) {
    std::string read(rng.uniform(300), 'A');
    for (auto& c : read) c = kAlphabet[rng.uniform(5)];
    MappingStats work;
    const ReadAlignment result = aligner.align(read, work);
    if (result.outcome != ReadOutcome::kUnmapped &&
        result.outcome != ReadOutcome::kTooManyLoci) {
      ASSERT_FALSE(result.hits.empty());
      EXPECT_LE(result.hits.front().score, read.size());
    }
  }
}

}  // namespace
}  // namespace staratlas
