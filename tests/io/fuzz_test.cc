// Robustness fuzzing: parsers and binary decoders must never crash on
// corrupted input — every failure surfaces as a staratlas::Error.
#include <gtest/gtest.h>

#include <sstream>

#include "common/error.h"
#include "common/rng.h"
#include "align/aligner.h"
#include "index/genome_index.h"
#include "io/fasta.h"
#include "io/fastq.h"
#include "io/fastq_block.h"
#include "io/gtf.h"
#include "sra/container.h"
#include "testutil.h"

namespace staratlas {
namespace {

using staratlas::testing::world;

// Flip, insert, delete and truncate bytes of a valid payload.
std::string corrupt(std::string payload, Rng& rng) {
  const usize edits = 1 + rng.uniform(8);
  for (usize e = 0; e < edits && !payload.empty(); ++e) {
    switch (rng.uniform(4)) {
      case 0:  // flip
        payload[rng.uniform(payload.size())] =
            static_cast<char>(rng.uniform(256));
        break;
      case 1:  // insert
        payload.insert(payload.begin() + static_cast<i64>(rng.uniform(payload.size())),
                       static_cast<char>(rng.uniform(256)));
        break;
      case 2:  // delete
        payload.erase(payload.begin() + static_cast<i64>(rng.uniform(payload.size())));
        break;
      default:  // truncate
        payload.resize(rng.uniform(payload.size()) + 1);
        break;
    }
  }
  return payload;
}

TEST(Fuzz, FastqParserNeverCrashes) {
  Rng rng(101);
  const std::string valid = "@r1\nACGT\n+\nIIII\n@r2\nGGCC\n+\nIIII\n";
  for (int trial = 0; trial < 300; ++trial) {
    std::istringstream in(corrupt(valid, rng));
    try {
      const auto records = read_fastq(in);
      for (const auto& rec : records) {
        EXPECT_EQ(rec.sequence.size(), rec.quality.size());
      }
    } catch (const Error&) {
      // expected for malformed input
    }
  }
}

// Result of running a FASTQ parser to completion: the records it produced,
// or the exact error text it died with.
struct FastqParse {
  std::vector<FastqRecord> records;
  std::string error;
};

FastqParse parse_getline(const std::string& text) {
  FastqParse out;
  std::istringstream in(text);
  try {
    out.records = read_fastq(in);
  } catch (const Error& e) {
    out.error = e.what();
  }
  return out;
}

FastqParse parse_block(const std::string& text, usize block_bytes,
                       usize batch_reads) {
  FastqParse out;
  std::istringstream in(text);
  FastqBlockReader reader(in, block_bytes);
  ReadBatch batch;
  try {
    while (reader.read_batch(batch, batch_reads) > 0) {
      for (usize i = 0; i < batch.size(); ++i) {
        out.records.push_back({std::string(batch.name(i)),
                               std::string(batch.sequence(i)),
                               std::string(batch.quality(i))});
      }
      batch.clear();
    }
  } catch (const Error& e) {
    out.error = e.what();
  }
  return out;
}

// The block parser's contract: over ANY input, byte-identical behavior to
// FastqReader — the same record stream on success, the same ParseError
// text on failure. An error aborts read_fastq before it returns anything,
// so on the error path only the message is compared.
void expect_block_parity(const std::string& text, usize block_bytes,
                         usize batch_reads) {
  const FastqParse expected = parse_getline(text);
  const FastqParse got = parse_block(text, block_bytes, batch_reads);
  ASSERT_EQ(got.error, expected.error) << "input: " << ::testing::PrintToString(text);
  if (!expected.error.empty()) return;
  ASSERT_EQ(got.records.size(), expected.records.size());
  for (usize i = 0; i < got.records.size(); ++i) {
    ASSERT_EQ(got.records[i].name, expected.records[i].name) << "read " << i;
    ASSERT_EQ(got.records[i].sequence, expected.records[i].sequence)
        << "read " << i;
    ASSERT_EQ(got.records[i].quality, expected.records[i].quality)
        << "read " << i;
  }
}

TEST(Fuzz, BlockParserMatchesReaderOnCorruptedCorpus) {
  Rng rng(131);
  const std::string valid =
      "@r1\nACGT\n+\nIIII\n@r2 desc\nGGCC\n+r2\nIIII\n\n@r3\nTTAA\n+\n!!!!\n";
  for (int trial = 0; trial < 400; ++trial) {
    const std::string bad = corrupt(valid, rng);
    // Tiny blocks + small batches maximize refill/memmove crossings.
    expect_block_parity(bad, 1 + rng.uniform(48), 1 + rng.uniform(4));
  }
}

TEST(Fuzz, BlockParserMatchesReaderAtEveryTruncationOffset) {
  const std::string valid =
      "@r1\nACGT\n+\nIIII\n@r2 desc\nGGCC\n+r2\nIIII\n@r3\nTT\n+\nII\n";
  for (usize cut = 0; cut <= valid.size(); ++cut) {
    expect_block_parity(valid.substr(0, cut), 7, 2);
  }
}

TEST(Fuzz, BlockParserMatchesReaderOnLineEndingAndJunkVariants) {
  const std::string cases[] = {
      "@a\r\nACGT\r\n+\r\nIIII\r\n@b\r\nGG\r\n+\r\nII\r\n",  // CRLF
      "@a\nACGT\n+\nIIII\n\n\n\n@b\nGG\n+\nII\n",            // blank runs
      "@a\nACGT\n+anything goes here\nIIII\n",               // '+' garbage
      "@a\nACGT\n-not plus\nIIII\n",                         // bad '+' line
      "@a\nACGT\n+\nIIII",            // no trailing newline
      "@a\r\nACGT\r\n+\r\nIIII\r",    // CRLF, no trailing LF
      "\n\n\n",                       // blanks only
      "",                             // empty
      "@a\n\n+\n\n@b\nGG\n+\nII\n",   // empty sequence + quality
      "@a\nacgtn\n+\nIIIII\n",        // lowercase normalization
      "@a\nACRT\n+\nIIII\n",          // ambiguity code -> N
      "@a\nAC!T\n+\nIIII\n",          // invalid residue
      "@\nACGT\n+\nIIII\n",           // empty name
      "@a quality is +@\nAC\n+\n+@\n",  // quality starting with '+'
  };
  for (const auto& text : cases) {
    for (const usize block : {usize{1}, usize{4}, usize{64}, usize{1 << 16}}) {
      expect_block_parity(text, block, 3);
    }
  }
}

TEST(Fuzz, FastaParserNeverCrashes) {
  Rng rng(103);
  const std::string valid = ">chr1 toplevel\nACGTACGT\n>chr2\nTTTT\n";
  for (int trial = 0; trial < 300; ++trial) {
    std::istringstream in(corrupt(valid, rng));
    try {
      read_fasta(in);
    } catch (const Error&) {
    }
  }
}

TEST(Fuzz, GtfParserNeverCrashes) {
  Rng rng(107);
  const std::string valid =
      "1\te\tgene\t1\t100\t.\t+\t.\tgene_id \"G\";\n"
      "1\te\texon\t1\t50\t.\t+\t.\tgene_id \"G\";\n";
  for (int trial = 0; trial < 300; ++trial) {
    std::istringstream in(corrupt(valid, rng));
    try {
      read_gtf(in);
    } catch (const Error&) {
    }
  }
}

TEST(Fuzz, SraDecoderNeverCrashes) {
  const auto& w = world();
  const ReadSet reads = w.simulator->simulate(bulk_rna_profile(), 30, Rng(5));
  SraMetadata metadata;
  metadata.accession = "SRR1";
  metadata.num_reads = reads.size();
  for (const auto& read : reads.reads) {
    metadata.total_bases += read.sequence.size();
  }
  const auto container = sra_encode(metadata, reads.reads);
  const std::string base(container.begin(), container.end());

  Rng rng(109);
  for (int trial = 0; trial < 300; ++trial) {
    const std::string bad = corrupt(base, rng);
    try {
      sra_decode(std::vector<u8>(bad.begin(), bad.end()));
    } catch (const Error&) {
    }
  }
}

TEST(Fuzz, IndexLoaderNeverCrashes) {
  const auto& w = world();
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  w.index111.save(buffer);
  const std::string base = buffer.str();
  Rng rng(113);
  for (int trial = 0; trial < 60; ++trial) {
    std::istringstream in(corrupt(base, rng), std::ios::binary);
    try {
      GenomeIndex::load(in);
    } catch (const Error&) {
    }
  }
}

TEST(Fuzz, AlignerHandlesArbitraryReadBytes) {
  // Reads straight off a sequencer can contain anything our FASTQ layer
  // normalizes; the aligner itself must tolerate any ACGTN string and
  // lengths from 0 to far beyond genome scale.
  const auto& w = world();
  const Aligner aligner(w.index111, AlignerParams{});
  Rng rng(127);
  static const char kAlphabet[] = "ACGTN";
  for (int trial = 0; trial < 200; ++trial) {
    std::string read(rng.uniform(300), 'A');
    for (auto& c : read) c = kAlphabet[rng.uniform(5)];
    MappingStats work;
    const ReadAlignment result = aligner.align(read, work);
    if (result.outcome != ReadOutcome::kUnmapped &&
        result.outcome != ReadOutcome::kTooManyLoci) {
      ASSERT_FALSE(result.hits.empty());
      EXPECT_LE(result.hits.front().score, read.size());
    }
  }
}

}  // namespace
}  // namespace staratlas
