#include "index/footprint.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace staratlas {
namespace {

TEST(ScaleModel, IdentityByDefault) {
  const ScaleModel model;
  EXPECT_EQ(model.map(ByteSize(1000)).bytes(), 1000u);
  EXPECT_DOUBLE_EQ(model.factor(), 1.0);
}

TEST(ScaleModel, CalibrationMapsAnchorExactly) {
  const ScaleModel model = ScaleModel::calibrate(ByteSize::from_mib(2.6),
                                                 ByteSize::from_gib(29.5));
  EXPECT_NEAR(model.map(ByteSize::from_mib(2.6)).gib(), 29.5, 0.01);
}

TEST(ScaleModel, LinearInInput) {
  const ScaleModel model =
      ScaleModel::calibrate(ByteSize(100), ByteSize(1000));
  EXPECT_EQ(model.map(ByteSize(250)).bytes(), 2500u);
}

TEST(ScaleModel, TimeCalibration) {
  const ScaleModel model = ScaleModel::calibrate_time(0.5, 9.35 / 60.0);
  EXPECT_NEAR(model.map_hours(1.0), 2.0 * 9.35 / 60.0, 1e-9);
}

TEST(ScaleModel, ZeroAnchorRejected) {
  EXPECT_THROW(ScaleModel::calibrate(ByteSize(0), ByteSize(10)),
               InternalError);
  EXPECT_THROW(ScaleModel::calibrate_time(0.0, 1.0), InternalError);
}

}  // namespace
}  // namespace staratlas
