// Corruption robustness: a damaged index file must always surface as a
// clean ParseError from load — never a crash, hang, OOM, or a quietly
// wrong index that fails later inside locate()/mmp(). These tests run in
// the sanitized job too, where any out-of-bounds read aborts loudly.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "common/error.h"
#include "common/rng.h"
#include "index/genome_index.h"

namespace staratlas {
namespace {

Assembly small_assembly() {
  // The N's matter for the v4 fuzz: they force a dirty overlay page, so
  // byte flips can hit live packed-codes, slot-table, and exception-block
  // bytes, not just empty sections.
  std::vector<Contig> contigs = {
      {"A", ContigClass::kChromosome,
       "ACGTACGTACGTANATTTCCCGGGACGTACGTACGTANGGCCTTACGT"},
      {"B", ContigClass::kUnlocalizedScaffold, "TTTTGGGGCCCCAAAATTTTGGGG"},
  };
  return Assembly("t", 111, AssemblyType::kToplevel, std::move(contigs));
}

std::string serialized(const GenomeIndex& index, u32 version) {
  std::ostringstream out(std::ios::out | std::ios::binary);
  index.save(out, version);
  return out.str();
}

// Loading `bytes` must either succeed (a flip can hit padding or a
// section a deep check doesn't cover — for v2 there are no checksums over
// the contig names, say, and a changed name byte is valid data) or throw
// ParseError. Anything else — a crash, or IoError escaping — fails.
void expect_clean_load(const std::string& bytes) {
  std::istringstream in(bytes, std::ios::in | std::ios::binary);
  try {
    const GenomeIndex loaded = GenomeIndex::load(in);
    // If it loaded, it must be internally consistent enough to search.
    (void)loaded.mmp("ACGTACGT");
  } catch (const ParseError&) {
    // expected for most corruptions
  }
}

class IndexCorruption : public ::testing::TestWithParam<u32> {};

TEST_P(IndexCorruption, SingleByteFlipsNeverCrash) {
  const GenomeIndex index = GenomeIndex::build(small_assembly());
  const std::string good = serialized(index, GetParam());
  Rng rng(GetParam());
  for (int trial = 0; trial < 400; ++trial) {
    std::string bad = good;
    const usize pos = rng.uniform(bad.size());
    bad[pos] = static_cast<char>(bad[pos] ^ (1 + rng.uniform(255)));
    expect_clean_load(bad);
  }
}

TEST_P(IndexCorruption, TruncationAlwaysParseError) {
  const GenomeIndex index = GenomeIndex::build(small_assembly());
  const std::string good = serialized(index, GetParam());
  Rng rng(GetParam() + 1);
  for (int trial = 0; trial < 100; ++trial) {
    const usize cut = rng.uniform(good.size());
    std::istringstream in(good.substr(0, cut),
                          std::ios::in | std::ios::binary);
    EXPECT_THROW(GenomeIndex::load(in), ParseError) << "cut at " << cut;
  }
}

TEST_P(IndexCorruption, MultiByteGarbageNeverCrashes) {
  const GenomeIndex index = GenomeIndex::build(small_assembly());
  const std::string good = serialized(index, GetParam());
  Rng rng(GetParam() + 2);
  for (int trial = 0; trial < 100; ++trial) {
    std::string bad = good;
    const usize start = rng.uniform(bad.size());
    const usize len = std::min<usize>(1 + rng.uniform(64), bad.size() - start);
    for (usize i = 0; i < len; ++i) {
      bad[start + i] = static_cast<char>(rng.uniform(256));
    }
    expect_clean_load(bad);
  }
}

INSTANTIATE_TEST_SUITE_P(Versions, IndexCorruption,
                         ::testing::Values(GenomeIndex::kVersionV2,
                                           GenomeIndex::kVersionV3,
                                           GenomeIndex::kVersionV4),
                         [](const auto& info) {
                           return "v" + std::to_string(info.param);
                         });

// Targeted contig-metadata corruption: these fields used to pass load
// unchecked and blow up later inside locate(). The validator must reject
// each at load time.
TEST(IndexCorruption, BadContigMetadataRejectedAtLoad) {
  const GenomeIndex index = GenomeIndex::build(small_assembly());
  const std::string good = serialized(index, GenomeIndex::kVersionV2);
  // v2 layout: magic u32, version u32, species (len u64 + "t"), release
  // u32, type u8, num_contigs u64, then contig 0: name (len u64 + "A"),
  // cls u8, text_offset u64, length u64.
  const usize contig0_offset_pos = 4 + 4 + (8 + 1) + 4 + 1 + 8 + (8 + 1) + 1;
  const usize contig0_length_pos = contig0_offset_pos + 8;

  auto with_u64_at = [&](usize pos, u64 value) {
    std::string bad = good;
    for (int i = 0; i < 8; ++i) {
      bad[pos + i] = static_cast<char>((value >> (8 * i)) & 0xff);
    }
    return bad;
  };

  // Offset chain broken: first contig no longer starts at 0.
  {
    std::istringstream in(with_u64_at(contig0_offset_pos, 7));
    EXPECT_THROW(GenomeIndex::load(in), ParseError);
  }
  // Length overruns the text.
  {
    std::istringstream in(with_u64_at(contig0_length_pos, 1'000'000));
    EXPECT_THROW(GenomeIndex::load(in), ParseError);
  }
  // Overlapping/duplicated extent: contig 0 claims the whole text, which
  // breaks the dense-chain invariant against contig 1's offset.
  {
    std::istringstream in(with_u64_at(contig0_length_pos, 72));
    EXPECT_THROW(GenomeIndex::load(in), ParseError);
  }
  // Unchanged bytes still load fine (guards the offsets above).
  {
    std::istringstream in(good);
    EXPECT_NO_THROW(GenomeIndex::load(in));
  }
}

}  // namespace
}  // namespace staratlas
