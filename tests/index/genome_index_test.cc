#include "index/genome_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.h"
#include "common/rng.h"
#include "index/suffix_array.h"
#include "testutil.h"

namespace staratlas {
namespace {

using staratlas::testing::world;

template <typename A, typename B>
bool same_range(const A& a, const B& b) {
  return std::equal(a.begin(), a.end(), b.begin(), b.end());
}

// Writes the index to a real file (mmap needs one) and removes it on scope
// exit.
struct TempIndexFile {
  explicit TempIndexFile(const GenomeIndex& index,
                         u32 version = GenomeIndex::kVersionLatest)
      : path(::testing::TempDir() + "staratlas_index_" +
             std::to_string(reinterpret_cast<uintptr_t>(this)) + ".bin") {
    index.save_file(path, version);
  }
  ~TempIndexFile() { std::remove(path.c_str()); }
  const std::string path;
};

Assembly two_contig_assembly() {
  std::vector<Contig> contigs = {
      {"A", ContigClass::kChromosome,
       "ACGTACGTACGTAAATTTCCCGGGACGTACGTACGT"},
      {"B", ContigClass::kUnlocalizedScaffold,
       "TTTTGGGGCCCCAAAATTTTGGGGCCCCAAAA"},
  };
  return Assembly("t", 111, AssemblyType::kToplevel, std::move(contigs));
}

TEST(GenomeIndex, SuffixArrayIsValid) {
  const GenomeIndex index = GenomeIndex::build(two_contig_assembly());
  EXPECT_TRUE(is_valid_suffix_array(index.text(), index.suffix_array()));
}

TEST(GenomeIndex, TextJoinsContigsWithSeparator) {
  const Assembly assembly = two_contig_assembly();
  const GenomeIndex index = GenomeIndex::build(assembly);
  const std::string expected = assembly.contig(0).sequence + "#" +
                               assembly.contig(1).sequence;
  EXPECT_EQ(index.text(), expected);
}

TEST(GenomeIndex, LocateMapsPositionsToContigs) {
  const Assembly assembly = two_contig_assembly();
  const GenomeIndex index = GenomeIndex::build(assembly);
  const u64 len_a = assembly.contig(0).length();
  EXPECT_EQ(index.locate(0).contig, 0u);
  EXPECT_EQ(index.locate(0).offset, 0u);
  EXPECT_EQ(index.locate(len_a - 1).contig, 0u);
  EXPECT_EQ(index.locate(len_a + 1).contig, 1u);
  EXPECT_EQ(index.locate(len_a + 1).offset, 0u);
  EXPECT_EQ(index.locate(index.text().size() - 1).contig, 1u);
}

TEST(GenomeIndex, MmpFindsPlantedSubstrings) {
  const auto& w = world();
  const GenomeIndex& index = w.index111;
  Rng rng(4);
  for (int trial = 0; trial < 50; ++trial) {
    const std::string& chrom = w.r111.contig(0).sequence;
    const u64 pos = rng.uniform(chrom.size() - 60);
    const std::string query = chrom.substr(pos, 50);
    const MmpResult result = index.mmp(query);
    EXPECT_EQ(result.length, 50u) << "full query should match";
    // One of the reported occurrences must be the planted position.
    bool found = false;
    for (u32 row = result.interval.lo; row < result.interval.hi; ++row) {
      const ContigLocus locus = index.locate(index.sa_position(row));
      if (locus.contig == 0 && locus.offset == pos) found = true;
    }
    EXPECT_TRUE(found) << "planted occurrence missing at trial " << trial;
  }
}

TEST(GenomeIndex, MmpIsMaximal) {
  const auto& w = world();
  const GenomeIndex& index = w.index111;
  const std::string& chrom = w.r111.contig(0).sequence;
  // 30 genome bases followed by junk: MMP should stop at/after 30 but not
  // claim the junk (the junk 25-mer almost surely absent).
  const std::string query = chrom.substr(1'000, 30) + "CCCCCCCCCCGGGGGGGGGGCCCCC";
  const MmpResult result = index.mmp(query);
  EXPECT_GE(result.length, 30u);
  EXPECT_LT(result.length, query.size());
  // Every occurrence must really match the prefix.
  const std::string_view prefix =
      std::string_view(query).substr(0, result.length);
  for (u32 row = result.interval.lo;
       row < std::min(result.interval.hi, result.interval.lo + 5); ++row) {
    const GenomePos pos = index.sa_position(row);
    EXPECT_EQ(index.text().substr(pos, result.length), prefix);
  }
}

TEST(GenomeIndex, MmpAbsentFirstCharGivesZero) {
  // Query of Ns never matches (genome has no N runs by construction here).
  const GenomeIndex index = GenomeIndex::build(two_contig_assembly());
  const MmpResult result = index.mmp("NNNNNNNN");
  EXPECT_EQ(result.length, 0u);
  EXPECT_TRUE(result.interval.empty());
}

TEST(GenomeIndex, MmpNeverCrossesContigBoundary) {
  // Plant a query spanning the end of contig A and start of contig B: the
  // separator must stop the match at the contig end.
  const Assembly assembly = two_contig_assembly();
  const GenomeIndex index = GenomeIndex::build(assembly);
  const std::string& a = assembly.contig(0).sequence;
  const std::string& b = assembly.contig(1).sequence;
  const std::string query = a.substr(a.size() - 10) + b.substr(0, 10);
  const MmpResult result = index.mmp(query);
  EXPECT_LE(result.length, 19u);  // cannot match through the separator
}

TEST(GenomeIndex, ExtendIntervalNarrowsCorrectly) {
  const auto& w = world();
  const GenomeIndex& index = w.index111;
  const std::string& chrom = w.r111.contig(0).sequence;
  const std::string query = chrom.substr(5'000, 25);
  // Manually extend character by character from the full range; final
  // interval must match mmp's.
  SaInterval interval{0, static_cast<u32>(index.suffix_array().size())};
  for (usize d = 0; d < query.size(); ++d) {
    interval = index.extend_interval(interval, d, query[d]);
    ASSERT_FALSE(interval.empty());
  }
  const MmpResult result = index.mmp(query);
  EXPECT_EQ(result.interval.lo, interval.lo);
  EXPECT_EQ(result.interval.hi, interval.hi);
}

TEST(GenomeIndex, LutJumpstartAgreesWithIncrementalSearch) {
  const auto& w = world();
  const GenomeIndex& index = w.index111;
  Rng rng(8);
  static const char kBases[] = "ACGT";
  for (int trial = 0; trial < 100; ++trial) {
    std::string query(24, 'A');
    for (auto& c : query) c = kBases[rng.uniform(4)];
    const MmpResult via_lut = index.mmp(query);
    // Incremental from scratch (bypasses LUT): character-by-character.
    SaInterval interval{0, static_cast<u32>(index.suffix_array().size())};
    usize depth = 0;
    while (depth < query.size()) {
      const SaInterval next = index.extend_interval(interval, depth, query[depth]);
      if (next.empty()) break;
      interval = next;
      ++depth;
    }
    EXPECT_EQ(via_lut.length, depth);
    if (depth > 0) {
      EXPECT_EQ(via_lut.interval.lo, interval.lo);
      EXPECT_EQ(via_lut.interval.hi, interval.hi);
    }
  }
}

TEST(GenomeIndex, StatsReportSizes) {
  const auto& w = world();
  const IndexStats s108 = w.index108.stats();
  const IndexStats s111 = w.index111.stats();
  EXPECT_EQ(s108.num_contigs, w.r108.num_contigs());
  EXPECT_EQ(s108.genome_length, w.r108.total_length());
  EXPECT_GT(s108.total().bytes(), 2 * s111.total().bytes());
  EXPECT_EQ(s111.suffix_array_bytes.bytes(),
            w.index111.suffix_array().size() * sizeof(u32));
}

TEST(GenomeIndex, SaveLoadRoundTrip) {
  const Assembly assembly = two_contig_assembly();
  const GenomeIndex index = GenomeIndex::build(assembly);
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  index.save(buffer);
  const GenomeIndex loaded = GenomeIndex::load(buffer);
  EXPECT_EQ(loaded.text(), index.text());
  EXPECT_TRUE(same_range(loaded.suffix_array(), index.suffix_array()));
  EXPECT_EQ(loaded.prefix_lut_k(), index.prefix_lut_k());
  EXPECT_EQ(loaded.release(), index.release());
  EXPECT_EQ(loaded.contigs().size(), index.contigs().size());
  EXPECT_EQ(loaded.contigs()[1].name, "B");
  // Loaded index must search identically.
  const MmpResult a = index.mmp("ACGTACGT");
  const MmpResult b = loaded.mmp("ACGTACGT");
  EXPECT_EQ(a.length, b.length);
  EXPECT_EQ(a.interval.lo, b.interval.lo);
}

TEST(GenomeIndex, LoadRejectsGarbage) {
  std::istringstream in("not an index at all, definitely not");
  EXPECT_THROW(GenomeIndex::load(in), ParseError);
}

TEST(GenomeIndex, ParallelBuildIsBitIdenticalToSequential) {
  const auto& w = world();
  IndexParams sequential_params;
  sequential_params.num_threads = 1;
  const GenomeIndex sequential = GenomeIndex::build(w.r111, sequential_params);
  for (const usize threads : {2u, 4u, 8u}) {
    IndexParams params;
    params.num_threads = threads;
    const GenomeIndex parallel = GenomeIndex::build(w.r111, params);
    EXPECT_EQ(parallel.text(), sequential.text()) << threads << " threads";
    EXPECT_TRUE(
        same_range(parallel.suffix_array(), sequential.suffix_array()))
        << threads << " threads";
    EXPECT_TRUE(same_range(parallel.prefix_lut(), sequential.prefix_lut()))
        << threads << " threads";
    for (u32 k = 1; k <= 4; ++k) {
      EXPECT_TRUE(same_range(parallel.mini_lut(k), sequential.mini_lut(k)))
          << threads << " threads, mini-LUT k=" << k;
    }
  }
}

TEST(GenomeIndex, StatsIncludeMiniLutBytes) {
  const GenomeIndex index = GenomeIndex::build(two_contig_assembly());
  const IndexStats stats = index.stats();
  // 4 + 16 + 64 + 256 cells of 8 bytes each.
  EXPECT_EQ(stats.mini_lut_bytes.bytes(), 340u * sizeof(LutCell));
  EXPECT_EQ(stats.total().bytes(),
            stats.text_bytes.bytes() + stats.suffix_array_bytes.bytes() +
                stats.lut_bytes.bytes() + stats.mini_lut_bytes.bytes());
}

// Round-trip matrix: every (save version, load path) combination must
// produce an index that searches and reports identically to the original.
TEST(GenomeIndex, RoundTripMatrixSearchesIdentically) {
  const auto& w = world();
  const GenomeIndex& original = w.index111;
  const std::string& chrom = w.r111.contig(0).sequence;
  std::vector<std::string> queries = {"ACGTACGT", "NNNNN", "A", ""};
  Rng rng(21);
  for (int i = 0; i < 20; ++i) {
    queries.push_back(chrom.substr(rng.uniform(chrom.size() - 64), 48));
  }

  struct Case {
    const char* name;
    u32 version;
    IndexLoadMode mode;
  };
  const Case cases[] = {
      {"v2-stream", GenomeIndex::kVersionV2, IndexLoadMode::kStream},
      {"v3-stream", GenomeIndex::kVersionV3, IndexLoadMode::kStream},
      {"v3-mmap", GenomeIndex::kVersionV3, IndexLoadMode::kMmap},
      {"v4-stream", GenomeIndex::kVersionV4, IndexLoadMode::kStream},
      {"v4-mmap", GenomeIndex::kVersionV4, IndexLoadMode::kMmap},
  };
  for (const Case& c : cases) {
    if (c.mode == IndexLoadMode::kMmap && !MappedFile::supported()) continue;
    const bool packed = c.version == GenomeIndex::kVersionV4;
    const TempIndexFile file(original, c.version);
    const GenomeIndex loaded = GenomeIndex::load_file(file.path, c.mode);
    SCOPED_TRACE(c.name);
    EXPECT_EQ(loaded.memory_mapped(), c.mode == IndexLoadMode::kMmap);
    EXPECT_EQ(loaded.packed_text(), packed);
    // v4 carries no raw text; the decoded form must still be byte-equal.
    EXPECT_EQ(loaded.text(), packed ? std::string_view() : original.text());
    EXPECT_EQ(loaded.text_size(), original.text().size());
    EXPECT_EQ(loaded.text_substr(0, original.text().size()), original.text());
    EXPECT_TRUE(same_range(loaded.suffix_array(), original.suffix_array()));
    EXPECT_TRUE(same_range(loaded.prefix_lut(), original.prefix_lut()));
    for (u32 k = 1; k <= 4; ++k) {
      EXPECT_TRUE(same_range(loaded.mini_lut(k), original.mini_lut(k)));
    }
    const IndexStats got = loaded.stats();
    const IndexStats want = original.stats();
    EXPECT_EQ(got.packed_text, packed);
    if (packed) {
      // Everything but the text is unchanged; the text shrinks ~4x.
      EXPECT_EQ(got.suffix_array_bytes.bytes(),
                want.suffix_array_bytes.bytes());
      EXPECT_EQ(got.lut_bytes.bytes(), want.lut_bytes.bytes());
      EXPECT_LT(got.text_bytes.bytes() * 3, want.text_bytes.bytes());
    } else {
      EXPECT_EQ(got.total().bytes(), want.total().bytes());
    }
    EXPECT_EQ(got.genome_length, want.genome_length);
    EXPECT_EQ(got.num_contigs, want.num_contigs);
    for (const std::string& q : queries) {
      const MmpResult a = original.mmp(q);
      const MmpResult b = loaded.mmp(q);
      EXPECT_EQ(a.length, b.length) << "query " << q;
      EXPECT_EQ(a.interval.lo, b.interval.lo) << "query " << q;
      EXPECT_EQ(a.interval.hi, b.interval.hi) << "query " << q;
    }
    // kAuto picks mmap for v3/v4 (when supported) and stream for v2;
    // either way the result must match too.
    const GenomeIndex auto_loaded = GenomeIndex::load_file(file.path);
    EXPECT_EQ(auto_loaded.text_substr(0, original.text().size()),
              original.text());
    if (!packed) {
      EXPECT_EQ(auto_loaded.text(), original.text());
    }
  }
}

TEST(GenomeIndex, MmapChecksumVerificationPasses) {
  if (!MappedFile::supported()) GTEST_SKIP();
  const GenomeIndex index = GenomeIndex::build(two_contig_assembly());
  const TempIndexFile file(index);
  const GenomeIndex mapped =
      GenomeIndex::load_file(file.path, IndexLoadMode::kMmap);
  EXPECT_TRUE(mapped.memory_mapped());
  EXPECT_NO_THROW(mapped.verify_checksums());
  // Owned indexes have nothing to verify; must be a no-op.
  EXPECT_NO_THROW(index.verify_checksums());
}

TEST(GenomeIndex, MmapRejectsV2Files) {
  if (!MappedFile::supported()) GTEST_SKIP();
  const GenomeIndex index = GenomeIndex::build(two_contig_assembly());
  const TempIndexFile file(index, GenomeIndex::kVersionV2);
  EXPECT_THROW(GenomeIndex::load_file(file.path, IndexLoadMode::kMmap),
               ParseError);
  // kAuto must quietly fall back to the stream loader for v2.
  const GenomeIndex loaded = GenomeIndex::load_file(file.path);
  EXPECT_FALSE(loaded.memory_mapped());
  EXPECT_EQ(loaded.text(), index.text());
}

TEST(GenomeIndex, CustomLutK) {
  IndexParams params;
  params.prefix_lut_k = 4;
  const GenomeIndex index = GenomeIndex::build(two_contig_assembly(), params);
  EXPECT_EQ(index.prefix_lut_k(), 4u);
  const MmpResult result = index.mmp("ACGTACGT");
  EXPECT_EQ(result.length, 8u);
}

}  // namespace
}  // namespace staratlas
