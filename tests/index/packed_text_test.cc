// Unit tests for the 2-bit packed text (v4 index representation): the
// injective encoding, the paged exception overlay, the guarded funnel-shift
// extractors, and the wide-word LCP kernels at every SIMD level.
#include "index/packed_text.h"

#include <gtest/gtest.h>

#include <string>

#include "common/error.h"
#include "common/rng.h"

namespace staratlas {
namespace {

std::string random_text(u64 size, u64 seed, double n_rate = 0.01,
                        double sep_rate = 0.002) {
  static const char kBases[] = "ACGT";
  Rng rng(seed);
  std::string text(size, 'A');
  for (auto& c : text) {
    const u64 r = rng.uniform(100'000);
    if (r < static_cast<u64>(n_rate * 100'000)) {
      c = 'N';
    } else if (r < static_cast<u64>((n_rate + sep_rate) * 100'000)) {
      c = '#';
    } else {
      c = kBases[rng.uniform(4)];
    }
  }
  return text;
}

/// Naive per-base LCP reference.
u64 naive_lcp(std::string_view text, u64 tpos, std::string_view query,
              u64 depth, u64 limit) {
  while (depth < limit && text[tpos + depth] == query[depth]) ++depth;
  return depth;
}

TEST(PackedText, DecodeRoundTripsEveryCharacter) {
  const std::string text = random_text(20'000, 7, 0.05, 0.01);
  const PackedText packed = PackedText::pack(text);
  const PackedTextView view = packed.view();
  ASSERT_EQ(view.size, text.size());
  for (u64 i = 0; i < text.size(); ++i) {
    ASSERT_EQ(view.at(i), text[i]) << "position " << i;
  }
  EXPECT_EQ(view.decode(0, text.size()), text);
  EXPECT_EQ(view.decode(12'345, 100), text.substr(12'345, 100));
}

TEST(PackedText, PackRejectsUnknownResidues) {
  EXPECT_THROW(PackedText::pack("ACGTX"), InvalidArgument);
  EXPECT_THROW(PackedText::pack("acgt"), InvalidArgument);
}

TEST(PackedText, CleanPagesShareTheImplicitZeroBlock) {
  // One exception in the last page: every other page must stay slot-free,
  // so the overlay stays one block no matter how long the text is.
  std::string text(5 * kPackedPageBases, 'A');
  text[text.size() - 1] = 'N';
  const PackedText packed = PackedText::pack(text);
  const PackedTextView view = packed.view();
  EXPECT_EQ(view.num_exc_blocks, 1u);
  for (u64 p = 0; p + 1 < view.num_pages; ++p) {
    EXPECT_EQ(view.page_slots[p], kPackedNoExc) << "page " << p;
  }
  EXPECT_NE(view.page_slots[view.num_pages - 1], kPackedNoExc);
  // Footprint: ~0.25 bytes/base + one 512 B block, far under 1 byte/base.
  EXPECT_LT(packed.resident_bytes(), text.size() / 3);
  EXPECT_EQ(view.at(text.size() - 1), 'N');
  EXPECT_EQ(view.at(text.size() - 2), 'A');
}

TEST(PackedText, FromRawValidatesShape) {
  const std::string text = random_text(10'000, 9);
  const PackedText packed = PackedText::pack(text);
  // A faithful rebuild round-trips.
  const PackedText rebuilt =
      PackedText::from_raw(text.size(), packed.codes(), packed.page_slots(),
                           packed.exc_blocks());
  EXPECT_EQ(rebuilt.view().decode(0, text.size()), text);

  // Wrong code-word count.
  auto codes = packed.codes();
  codes.pop_back();
  EXPECT_THROW(PackedText::from_raw(text.size(), codes, packed.page_slots(),
                                    packed.exc_blocks()),
               InvalidArgument);
  // Slot pointing past the block array.
  auto slots = packed.page_slots();
  slots[0] = 1'000'000;
  EXPECT_THROW(PackedText::from_raw(text.size(), packed.codes(), slots,
                                    packed.exc_blocks()),
               InvalidArgument);
  // Dirty guard slot.
  auto slots2 = packed.page_slots();
  slots2.back() = 0;
  EXPECT_THROW(PackedText::from_raw(text.size(), packed.codes(), slots2,
                                    packed.exc_blocks()),
               InvalidArgument);
}

TEST(PackedText, PackQueryRejectsNonAcgtn) {
  u64 codes[20];
  u64 exc[20];
  EXPECT_TRUE(pack_query("ACGTNACGT", codes, exc));
  EXPECT_FALSE(pack_query("ACGT#ACGT", codes, exc));
  EXPECT_FALSE(pack_query("ACGTxACGT", codes, exc));
}

TEST(PackedText, LcpKernelsMatchNaiveAtEveryLevel) {
  const std::string text = random_text(50'000, 11);
  const PackedText packed = PackedText::pack(text);
  const PackedTextView view = packed.view();

  Rng rng(13);
  static const char kBases[] = "ACGTN";
  for (int trial = 0; trial < 300; ++trial) {
    // Query = genome slice with sprinkled mutations, so LCPs of every
    // length (including crossing 32/64/128-base block boundaries) occur.
    const u64 qlen = 1 + rng.uniform(400);
    const u64 tpos = rng.uniform(text.size() - qlen);
    std::string query = text.substr(tpos, qlen);
    for (auto& c : query) {
      if (c == '#') c = 'A';  // queries are reads: no separators
      if (rng.uniform(100) < 3) c = kBases[rng.uniform(5)];
    }
    std::vector<u64> qcodes(packed_code_words(query.size()));
    std::vector<u64> qexc(query.size() / 64 + 2);
    ASSERT_TRUE(pack_query(query, qcodes.data(), qexc.data()));

    const u64 limit = std::min<u64>(qlen, text.size() - tpos);
    const u64 want = naive_lcp(text, tpos, query, 0, limit);
    for (const SimdLevel level :
         {SimdLevel::kScalar, SimdLevel::kSse2, SimdLevel::kAvx2}) {
      const PackedLcpFn kernel = packed_lcp_kernel(level);
      if (!kernel) continue;  // level not compiled on this platform
      if (level > detected_simd_level()) continue;
      EXPECT_EQ(kernel(view, tpos, qcodes.data(), qexc.data(), 0, limit),
                want)
          << "trial " << trial << " level " << static_cast<int>(level);
    }
    // Nonzero starting depth (kernel resumes mid-query).
    if (want > 4) {
      EXPECT_EQ(packed_lcp(view, tpos, qcodes.data(), qexc.data(), want / 2,
                           limit),
                want);
    }
  }
}

TEST(PackedText, MismatchMask32MatchesByteCompare) {
  const std::string text = random_text(8'192, 17, 0.05, 0.01);
  const PackedText packed = PackedText::pack(text);
  const PackedTextView view = packed.view();

  Rng rng(19);
  for (int trial = 0; trial < 200; ++trial) {
    const u64 qlen = 64 + rng.uniform(200);
    const u64 tpos = rng.uniform(text.size() - qlen);
    std::string query = text.substr(tpos, qlen);
    for (auto& c : query) {
      if (c == '#') c = 'C';
      if (rng.uniform(10) < 2) c = "ACGTN"[rng.uniform(5)];
    }
    std::vector<u64> qcodes(packed_code_words(query.size()));
    std::vector<u64> qexc(query.size() / 64 + 2);
    ASSERT_TRUE(pack_query(query, qcodes.data(), qexc.data()));

    const u64 qoff = rng.uniform(qlen - 32);
    const u32 mask = packed_mismatch_mask32(view, tpos + qoff, qcodes.data(),
                                            qexc.data(), qoff);
    for (u32 i = 0; i < 32; ++i) {
      const bool differ = text[tpos + qoff + i] != query[qoff + i];
      EXPECT_EQ((mask >> i) & 1u, differ ? 1u : 0u)
          << "trial " << trial << " bit " << i;
    }
  }
}

TEST(PackedText, ResidentBytesAboutFourTimesSmaller) {
  // Realistic genomes have N's in long clustered runs (assembly gaps,
  // telomeres), not scattered uniformly — so only the few pages those runs
  // touch go dirty and the paged overlay lands close to the ideal 2
  // bits/base, i.e. ~4x under raw bytes. (A dense bitmap would cap the
  // ratio at 2.67x; this test is what rules that design out.)
  std::string text = random_text(1'000'000, 23, 0.0, 0.0);
  for (const u64 run_start : {100'000u, 500'000u, 900'000u}) {
    for (u64 i = 0; i < 5'000; ++i) text[run_start + i] = 'N';
  }
  text[250'000] = '#';
  text[750'000] = '#';
  const PackedText packed = PackedText::pack(text);
  const double ratio =
      static_cast<double>(text.size()) /
      static_cast<double>(packed.resident_bytes());
  EXPECT_GT(ratio, 3.5);
  EXPECT_LE(ratio, 4.0);
}

}  // namespace
}  // namespace staratlas
