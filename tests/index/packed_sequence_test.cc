#include "index/packed_sequence.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"

namespace staratlas {
namespace {

TEST(PackedSequence, RoundTripsAcgt) {
  const std::string seq = "ACGTACGTGGCC";
  const PackedSequence packed = PackedSequence::pack(seq);
  EXPECT_EQ(packed.size(), seq.size());
  EXPECT_EQ(packed.unpack(), seq);
}

TEST(PackedSequence, RoundTripsWithNs) {
  const std::string seq = "ACGTNNACGTN";
  const PackedSequence packed = PackedSequence::pack(seq);
  EXPECT_EQ(packed.unpack(), seq);
  EXPECT_EQ(packed.n_positions().size(), 3u);
}

TEST(PackedSequence, AtMatchesUnpack) {
  const std::string seq = "ACGTNAC";
  const PackedSequence packed = PackedSequence::pack(seq);
  for (usize i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(packed.at(i), seq[i]) << i;
  }
}

TEST(PackedSequence, AtOutOfRangeThrows) {
  const PackedSequence packed = PackedSequence::pack("AC");
  EXPECT_THROW(packed.at(2), InternalError);
}

TEST(PackedSequence, EmptySequence) {
  const PackedSequence packed = PackedSequence::pack("");
  EXPECT_TRUE(packed.empty());
  EXPECT_EQ(packed.unpack(), "");
}

TEST(PackedSequence, RejectsInvalidResidues) {
  EXPECT_THROW(PackedSequence::pack("ACXT"), InvalidArgument);
  EXPECT_THROW(PackedSequence::pack("acgt"), InvalidArgument);  // lowercase
}

TEST(PackedSequence, PackedBytesRoughlyQuarter) {
  const std::string seq(4000, 'G');
  const PackedSequence packed = PackedSequence::pack(seq);
  EXPECT_LE(packed.packed_bytes().bytes(), 1100u);
}

TEST(PackedSequence, RandomRoundTrip) {
  Rng rng(5);
  static const char kBases[] = "ACGTN";
  for (int trial = 0; trial < 20; ++trial) {
    std::string seq(1 + rng.uniform(300), 'A');
    for (auto& c : seq) c = kBases[rng.uniform(5)];
    EXPECT_EQ(PackedSequence::pack(seq).unpack(), seq);
  }
}

TEST(PackedSequence, FromRawValidates) {
  EXPECT_THROW(PackedSequence::from_raw(10, {1}, {}), InternalError);
}

TEST(PackedSequence, CursorMatchesAtEverywhere) {
  Rng rng(7);
  static const char kBases[] = "ACGTN";
  for (int trial = 0; trial < 20; ++trial) {
    std::string seq(1 + rng.uniform(500), 'A');
    for (auto& c : seq) c = kBases[rng.uniform(5)];
    const PackedSequence packed = PackedSequence::pack(seq);
    auto cur = packed.cursor();
    for (usize i = 0; i < seq.size(); ++i) {
      ASSERT_FALSE(cur.done());
      EXPECT_EQ(cur.position(), i);
      EXPECT_EQ(cur.next(), seq[i]) << "trial " << trial << " pos " << i;
    }
    EXPECT_TRUE(cur.done());
  }
}

TEST(PackedSequence, CursorFromMidSequence) {
  // Starting mid-sequence must land n_idx_ past the overlay entries
  // already consumed, including when the start position is itself an N.
  const std::string seq = "NNACGTNNNACGTN";
  const PackedSequence packed = PackedSequence::pack(seq);
  for (u64 start = 0; start <= seq.size(); ++start) {
    auto cur = packed.cursor(start);
    for (usize i = start; i < seq.size(); ++i) {
      EXPECT_EQ(cur.next(), seq[i]) << "start " << start << " pos " << i;
    }
    EXPECT_TRUE(cur.done());
  }
}

TEST(PackedSequence, CursorPastEndThrows) {
  const PackedSequence packed = PackedSequence::pack("AC");
  auto cur = packed.cursor();
  cur.next();
  cur.next();
  EXPECT_TRUE(cur.done());
  EXPECT_THROW(cur.next(), InternalError);
}

TEST(PackedSequence, UnpackRawMatchesUnpack) {
  const std::string seq = "NACGTNNACGTACGTN";
  const PackedSequence packed = PackedSequence::pack(seq);
  std::string out;
  PackedSequence::unpack_raw(packed.size(), packed.codes().data(),
                             packed.n_positions().data(),
                             packed.n_positions().size(), out);
  EXPECT_EQ(out, seq);
  EXPECT_EQ(out, packed.unpack());
}

TEST(BaseCode, RoundTrips) {
  EXPECT_EQ(code_base(base_code('A')), 'A');
  EXPECT_EQ(code_base(base_code('C')), 'C');
  EXPECT_EQ(code_base(base_code('G')), 'G');
  EXPECT_EQ(code_base(base_code('T')), 'T');
  EXPECT_EQ(base_code('N'), 0xff);
  EXPECT_EQ(base_code('x'), 0xff);
}

TEST(ReverseComplement, Basic) {
  EXPECT_EQ(reverse_complement("ACGT"), "ACGT");  // palindrome
  EXPECT_EQ(reverse_complement("AAAC"), "GTTT");
  EXPECT_EQ(reverse_complement("ANC"), "GNT");
  EXPECT_EQ(reverse_complement(""), "");
}

TEST(ReverseComplement, Involution) {
  Rng rng(6);
  static const char kBases[] = "ACGTN";
  std::string seq(200, 'A');
  for (auto& c : seq) c = kBases[rng.uniform(5)];
  EXPECT_EQ(reverse_complement(reverse_complement(seq)), seq);
}

TEST(ReverseComplement, RejectsInvalid) {
  EXPECT_THROW(reverse_complement("AC-T"), InvalidArgument);
}

}  // namespace
}  // namespace staratlas
