#include "index/suffix_array.h"

#include <gtest/gtest.h>

#include <string>

#include "common/rng.h"

namespace staratlas {
namespace {

TEST(SuffixArray, EmptyString) {
  EXPECT_TRUE(build_suffix_array("").empty());
}

TEST(SuffixArray, SingleChar) {
  const auto sa = build_suffix_array("x");
  ASSERT_EQ(sa.size(), 1u);
  EXPECT_EQ(sa[0], 0u);
}

TEST(SuffixArray, Banana) {
  // banana: suffixes sorted = a(5), ana(3), anana(1), banana(0), na(4), nana(2)
  const auto sa = build_suffix_array("banana");
  EXPECT_EQ(sa, (std::vector<u32>{5, 3, 1, 0, 4, 2}));
}

TEST(SuffixArray, Mississippi) {
  const auto sa = build_suffix_array("mississippi");
  EXPECT_TRUE(is_valid_suffix_array("mississippi", sa));
}

TEST(SuffixArray, AllSameCharacter) {
  const std::string text(500, 'A');
  const auto sa = build_suffix_array(text);
  ASSERT_TRUE(is_valid_suffix_array(text, sa));
  // Shortest suffix sorts first for a uniform string.
  EXPECT_EQ(sa[0], 499u);
  EXPECT_EQ(sa[499], 0u);
}

TEST(SuffixArray, TandemRepeats) {
  std::string text;
  for (int i = 0; i < 50; ++i) text += "ACGTACG";
  const auto sa = build_suffix_array(text);
  EXPECT_TRUE(is_valid_suffix_array(text, sa));
}

TEST(SuffixArray, MatchesDoublingOnDnaAlphabet) {
  Rng rng(42);
  static const char kBases[] = "ACGT";
  for (int trial = 0; trial < 10; ++trial) {
    std::string text(200 + rng.uniform(800), 'A');
    for (auto& c : text) c = kBases[rng.uniform(4)];
    const auto fast = build_suffix_array(text);
    const auto reference = build_suffix_array_doubling(text);
    EXPECT_EQ(fast, reference) << "trial " << trial;
  }
}

// Parameterized sweep: random texts over alphabets of different sizes,
// including separator bytes like the genome index uses.
struct SaCase {
  usize length;
  usize alphabet;
  u64 seed;
};

class SuffixArrayProperty : public ::testing::TestWithParam<SaCase> {};

TEST_P(SuffixArrayProperty, SaisAgreesWithReferenceAndIsValid) {
  const SaCase param = GetParam();
  Rng rng(param.seed);
  std::string text(param.length, '\0');
  for (auto& c : text) {
    c = static_cast<char>('#' + rng.uniform(param.alphabet));
  }
  const auto fast = build_suffix_array(text);
  EXPECT_TRUE(is_valid_suffix_array(text, fast));
  EXPECT_EQ(fast, build_suffix_array_doubling(text));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SuffixArrayProperty,
    ::testing::Values(SaCase{1, 1, 1}, SaCase{2, 1, 2}, SaCase{16, 2, 3},
                      SaCase{64, 2, 4}, SaCase{256, 3, 5}, SaCase{512, 4, 6},
                      SaCase{1024, 5, 7}, SaCase{2048, 4, 8},
                      SaCase{4096, 26, 9}, SaCase{1000, 2, 10},
                      SaCase{333, 7, 11}, SaCase{50, 1, 12}));

TEST(SuffixArray, ValidatorCatchesBadArrays) {
  const std::string text = "banana";
  std::vector<u32> sa = {5, 3, 1, 0, 4, 2};
  EXPECT_TRUE(is_valid_suffix_array(text, sa));
  std::swap(sa[0], sa[1]);
  EXPECT_FALSE(is_valid_suffix_array(text, sa));
  EXPECT_FALSE(is_valid_suffix_array(text, {0, 1, 2}));       // wrong size
  EXPECT_FALSE(is_valid_suffix_array(text, {5, 5, 1, 0, 4, 2}));  // dup
}

TEST(SuffixArray, LargeRandomDnaIsValid) {
  Rng rng(99);
  static const char kBases[] = "ACGT";
  std::string text(100'000, 'A');
  for (auto& c : text) c = kBases[rng.uniform(4)];
  const auto sa = build_suffix_array(text);
  EXPECT_TRUE(is_valid_suffix_array(text, sa));
}

}  // namespace
}  // namespace staratlas
