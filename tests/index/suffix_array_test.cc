#include "index/suffix_array.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"

namespace staratlas {
namespace {

TEST(SuffixArray, EmptyString) {
  EXPECT_TRUE(build_suffix_array("").empty());
}

TEST(SuffixArray, SingleChar) {
  const auto sa = build_suffix_array("x");
  ASSERT_EQ(sa.size(), 1u);
  EXPECT_EQ(sa[0], 0u);
}

TEST(SuffixArray, Banana) {
  // banana: suffixes sorted = a(5), ana(3), anana(1), banana(0), na(4), nana(2)
  const auto sa = build_suffix_array("banana");
  EXPECT_EQ(sa, (std::vector<u32>{5, 3, 1, 0, 4, 2}));
}

TEST(SuffixArray, Mississippi) {
  const auto sa = build_suffix_array("mississippi");
  EXPECT_TRUE(is_valid_suffix_array("mississippi", sa));
}

TEST(SuffixArray, AllSameCharacter) {
  const std::string text(500, 'A');
  const auto sa = build_suffix_array(text);
  ASSERT_TRUE(is_valid_suffix_array(text, sa));
  // Shortest suffix sorts first for a uniform string.
  EXPECT_EQ(sa[0], 499u);
  EXPECT_EQ(sa[499], 0u);
}

TEST(SuffixArray, TandemRepeats) {
  std::string text;
  for (int i = 0; i < 50; ++i) text += "ACGTACG";
  const auto sa = build_suffix_array(text);
  EXPECT_TRUE(is_valid_suffix_array(text, sa));
}

TEST(SuffixArray, MatchesDoublingOnDnaAlphabet) {
  Rng rng(42);
  static const char kBases[] = "ACGT";
  for (int trial = 0; trial < 10; ++trial) {
    std::string text(200 + rng.uniform(800), 'A');
    for (auto& c : text) c = kBases[rng.uniform(4)];
    const auto fast = build_suffix_array(text);
    const auto reference = build_suffix_array_doubling(text);
    EXPECT_EQ(fast, reference) << "trial " << trial;
  }
}

// Parameterized sweep: random texts over alphabets of different sizes,
// including separator bytes like the genome index uses. Every case also
// runs the prefix-bucketed parallel builder, which must be bit-identical
// to the SA-IS reference (small cases exercise its sequential fallback,
// the 20k/50k cases its bucketed path).
struct SaCase {
  usize length;
  usize alphabet;
  u64 seed;
};

class SuffixArrayProperty : public ::testing::TestWithParam<SaCase> {};

TEST_P(SuffixArrayProperty, SaisAgreesWithReferenceAndIsValid) {
  const SaCase param = GetParam();
  Rng rng(param.seed);
  std::string text(param.length, '\0');
  for (auto& c : text) {
    c = static_cast<char>('#' + rng.uniform(param.alphabet));
  }
  const auto fast = build_suffix_array(text);
  EXPECT_TRUE(is_valid_suffix_array(text, fast));
  EXPECT_EQ(fast, build_suffix_array_doubling(text));
  ThreadPool pool(4);
  EXPECT_EQ(fast, build_suffix_array_parallel(text, pool));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SuffixArrayProperty,
    ::testing::Values(SaCase{1, 1, 1}, SaCase{2, 1, 2}, SaCase{16, 2, 3},
                      SaCase{64, 2, 4}, SaCase{256, 3, 5}, SaCase{512, 4, 6},
                      SaCase{1024, 5, 7}, SaCase{2048, 4, 8},
                      SaCase{4096, 26, 9}, SaCase{1000, 2, 10},
                      SaCase{333, 7, 11}, SaCase{50, 1, 12},
                      SaCase{20'000, 4, 13}, SaCase{50'000, 5, 14}));

TEST(SuffixArray, ValidatorCatchesBadArrays) {
  const std::string text = "banana";
  std::vector<u32> sa = {5, 3, 1, 0, 4, 2};
  EXPECT_TRUE(is_valid_suffix_array(text, sa));
  std::swap(sa[0], sa[1]);
  EXPECT_FALSE(is_valid_suffix_array(text, sa));
  const std::vector<u32> wrong_size = {0, 1, 2};
  EXPECT_FALSE(is_valid_suffix_array(text, wrong_size));
  const std::vector<u32> duplicate = {5, 5, 1, 0, 4, 2};
  EXPECT_FALSE(is_valid_suffix_array(text, duplicate));
  const std::vector<u32> out_of_range = {5, 3, 1, 0, 4, 6};
  EXPECT_FALSE(is_valid_suffix_array(text, out_of_range));
  // Equal first chars, wrong rest order: ana(3) before a(5) is invalid.
  const std::vector<u32> bad_rest = {3, 5, 1, 0, 4, 2};
  EXPECT_FALSE(is_valid_suffix_array(text, bad_rest));
}

TEST(SuffixArray, ValidatorHandlesUniformText) {
  // All suffixes share every leading char; order is decided purely by the
  // rank-of-rest rule, including the empty-rest edge at both positions.
  const std::string text(64, 'Z');
  const auto sa = build_suffix_array(text);
  EXPECT_TRUE(is_valid_suffix_array(text, sa));
  std::vector<u32> reversed(sa.rbegin(), sa.rend());
  EXPECT_FALSE(is_valid_suffix_array(text, reversed));
}

TEST(SuffixArray, LargeRandomDnaIsValid) {
  Rng rng(99);
  static const char kBases[] = "ACGT";
  std::string text(1'000'000, 'A');
  for (auto& c : text) c = kBases[rng.uniform(4)];
  const auto sa = build_suffix_array(text);
  EXPECT_TRUE(is_valid_suffix_array(text, sa));
}

TEST(SuffixArray, ParallelMatchesSequentialOnLargeDna) {
  Rng rng(7);
  static const char kBases[] = "ACGTN";  // include N runs like real genomes
  std::string text(300'000, 'A');
  for (auto& c : text) c = kBases[rng.uniform(5)];
  // Sprinkle contig separators so bucket 0x23 ('#') is populated too.
  for (usize i = 40'000; i < text.size(); i += 40'000) text[i] = '#';
  const auto sequential = build_suffix_array(text);
  for (const usize threads : {2u, 4u, 8u}) {
    ThreadPool pool(threads);
    EXPECT_EQ(build_suffix_array_parallel(text, pool), sequential)
        << threads << " threads";
  }
}

TEST(SuffixArray, ParallelFallsBackBelowThreshold) {
  // Small inputs take the sequential path inside the parallel entry point;
  // the result must still be the exact suffix array.
  ThreadPool pool(4);
  const std::string text = "bananabandana";
  EXPECT_EQ(build_suffix_array_parallel(text, pool),
            build_suffix_array(text));
}

}  // namespace
}  // namespace staratlas
