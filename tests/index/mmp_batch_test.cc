// Property tests for the batched MMP walker: mmp_batch / mmp_batch_stream
// must resolve every query to exactly the result a per-query mmp() call
// produces, across the corpus shapes that exercise every walker phase
// (LUT jumps, mini-LUT cascade, narrow half-rounds, the <=24-row direct
// scan, N runs, contig-boundary suffixes, empty and tiny queries), and the
// steady state must be allocation-free.
#include <gtest/gtest.h>

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/alloc_counter.h"
#include "common/rng.h"
#include "index/genome_index.h"
#include "testutil.h"

namespace staratlas {
namespace {

using staratlas::testing::world;

void expect_same(const MmpResult& batch, const MmpResult& solo, usize i) {
  EXPECT_EQ(batch.length, solo.length) << "query " << i;
  EXPECT_EQ(batch.interval.lo, solo.interval.lo) << "query " << i;
  EXPECT_EQ(batch.interval.hi, solo.interval.hi) << "query " << i;
}

void check_batch_matches_solo(const GenomeIndex& index,
                              const std::vector<std::string>& corpus) {
  std::vector<std::string_view> queries(corpus.begin(), corpus.end());
  std::vector<MmpResult> results(queries.size());
  index.mmp_batch(queries, results);
  for (usize i = 0; i < queries.size(); ++i) {
    MmpResult solo;
    index.mmp(queries[i], solo);
    expect_same(results[i], solo, i);
  }
}

std::string mutate(std::string s, Rng& rng, int edits) {
  static constexpr char kBases[] = "ACGTN";
  for (int e = 0; e < edits && !s.empty(); ++e) {
    s[rng.uniform(s.size())] = kBases[rng.uniform(5)];
  }
  return s;
}

TEST(MmpBatch, MatchesPerQueryMmpOnRandomCorpus) {
  const auto& w = world();
  const GenomeIndex& index = w.index111;
  const std::string& chrom0 = w.r111.contig(0).sequence;
  const std::string& chrom1 = w.r111.contig(1).sequence;

  Rng rng(20260808);
  std::vector<std::string> corpus;
  // Exact genome substrings of varied lengths: big intervals (short) down
  // to unique hits (long), from both contigs.
  for (int i = 0; i < 120; ++i) {
    const std::string& chrom = (i % 2 == 0) ? chrom0 : chrom1;
    const u64 len = 1 + rng.uniform(120);
    corpus.push_back(chrom.substr(rng.uniform(chrom.size() - len), len));
  }
  // Mutated substrings: the MMP ends mid-query, mixing walk depths.
  for (int i = 0; i < 120; ++i) {
    const u64 len = 8 + rng.uniform(100);
    corpus.push_back(
        mutate(chrom0.substr(rng.uniform(chrom0.size() - len), len), rng,
               1 + static_cast<int>(rng.uniform(4))));
  }
  // Pure random strings (mostly absent prefixes, mini-LUT territory).
  for (int i = 0; i < 60; ++i) {
    std::string q;
    const u64 len = rng.uniform(40);
    for (u64 j = 0; j < len; ++j) q.push_back("ACGTN"[rng.uniform(5)]);
    corpus.push_back(std::move(q));
  }
  check_batch_matches_solo(index, corpus);
}

TEST(MmpBatch, MatchesPerQueryMmpOnEdgeCases) {
  const auto& w = world();
  const GenomeIndex& index = w.index111;
  const std::string& chrom0 = w.r111.contig(0).sequence;
  const std::string& chrom1 = w.r111.contig(1).sequence;

  std::vector<std::string> corpus = {
      "",        // empty query
      "A",       // single chars (shorter than any LUT k)
      "C",
      "G",
      "T",
      "N",                        // absent first char
      "NNNNNNNNNNNNNNNNNNNNNNNN",  // long N run
      "ACGTNNNNACGT",              // N run in the middle
      "AC",  // shorter than the mini-LUT cascade tops out
      "ACG",
      "ACGT",
      chrom0.substr(0, 3),   // tiny genome prefixes
      chrom0.substr(0, 7),
      // Suffixes at the very end of each contig: the walk runs into the
      // '#' separator / end of text.
      chrom0.substr(chrom0.size() - 5),
      chrom0.substr(chrom0.size() - 31),
      chrom1.substr(chrom1.size() - 3),
      // Contig-boundary straddle: cannot match past the separator.
      chrom0.substr(chrom0.size() - 12) + chrom1.substr(0, 12),
      // Last contig's tail plus junk: match must stop at end of text.
      w.r111.contig(w.r111.num_contigs() - 1).sequence.substr(
          w.r111.contig(w.r111.num_contigs() - 1).sequence.size() - 9) +
          "NQNQ",
  };
  check_batch_matches_solo(index, corpus);
}

TEST(MmpBatch, BatchSizesAroundLaneCountAgree) {
  // 0, 1, sub-lane, exactly 64, and multi-wave batch sizes all agree with
  // solo mmp (the refill sweep and partial final wave are exercised).
  const auto& w = world();
  const GenomeIndex& index = w.index111;
  const std::string& chrom = w.r111.contig(0).sequence;
  Rng rng(7);
  for (const usize n : {0u, 1u, 3u, 63u, 64u, 65u, 200u}) {
    std::vector<std::string> corpus;
    for (usize i = 0; i < n; ++i) {
      const u64 len = 1 + rng.uniform(80);
      corpus.push_back(chrom.substr(rng.uniform(chrom.size() - len), len));
    }
    check_batch_matches_solo(index, corpus);
  }
}

/// Feed whose next query depends on the previous result for the same tag —
/// the seed walk's restart pattern — exercising mmp_batch_stream's
/// done-before-refill contract: each walk consumes its read by repeated
/// MMPs (offset += max(length, 1)) and must end with the same offset
/// trajectory as a sequential per-query walk.
class ChainingFeed final : public GenomeIndex::MmpFeed {
 public:
  ChainingFeed(std::span<const std::string> reads,
               std::vector<std::vector<usize>>& trajectories)
      : reads_(reads), offsets_(reads.size(), 0), trajectories_(trajectories) {}

  bool next(std::string_view& query, u32& tag) override {
    if (!ready_.empty()) {
      tag = ready_.back();
      ready_.pop_back();
    } else if (cursor_ < reads_.size()) {
      tag = static_cast<u32>(cursor_++);
    } else {
      return false;
    }
    query = std::string_view(reads_[tag]).substr(offsets_[tag]);
    return true;
  }

  void done(u32 tag, const MmpResult& result) override {
    offsets_[tag] += std::max<usize>(result.length, 1);
    trajectories_[tag].push_back(result.length);
    if (offsets_[tag] < reads_[tag].size()) ready_.push_back(tag);
  }

 private:
  std::span<const std::string> reads_;
  std::vector<usize> offsets_;
  std::vector<std::vector<usize>>& trajectories_;
  std::vector<u32> ready_;
  usize cursor_ = 0;
};

TEST(MmpBatch, StreamChainedRestartsMatchSequentialWalk) {
  const auto& w = world();
  const GenomeIndex& index = w.index111;
  const std::string& chrom = w.r111.contig(0).sequence;

  Rng rng(99);
  std::vector<std::string> reads;
  for (int i = 0; i < 150; ++i) {
    const u64 len = 40 + rng.uniform(80);
    reads.push_back(
        mutate(chrom.substr(rng.uniform(chrom.size() - len), len), rng,
               static_cast<int>(rng.uniform(5))));
  }

  std::vector<std::vector<usize>> streamed(reads.size());
  ChainingFeed feed(reads, streamed);
  index.mmp_batch_stream(feed);

  for (usize i = 0; i < reads.size(); ++i) {
    // Sequential reference walk for read i.
    std::vector<usize> expected;
    MmpResult mmp;
    for (usize offset = 0; offset < reads[i].size();
         offset += std::max<usize>(mmp.length, 1)) {
      index.mmp(std::string_view(reads[i]).substr(offset), mmp);
      expected.push_back(mmp.length);
    }
    EXPECT_EQ(streamed[i], expected) << "read " << i;
  }
}

TEST(MmpBatch, SteadyStateIsAllocationFree) {
  const auto& w = world();
  const GenomeIndex& index = w.index111;
  const std::string& chrom = w.r111.contig(0).sequence;

  Rng rng(5);
  std::vector<std::string> corpus;
  for (int i = 0; i < 200; ++i) {
    const u64 len = 1 + rng.uniform(90);
    corpus.push_back(chrom.substr(rng.uniform(chrom.size() - len), len));
  }
  std::vector<std::string_view> queries(corpus.begin(), corpus.end());
  std::vector<MmpResult> results(queries.size());

  index.mmp_batch(queries, results);  // warm-up (touches text/SA pages)
  const u64 before = alloc_counter::thread_allocations();
  index.mmp_batch(queries, results);
  const u64 after = alloc_counter::thread_allocations();
  EXPECT_EQ(after - before, 0u)
      << "mmp_batch allocated on a warmed second call";
}

}  // namespace
}  // namespace staratlas
