#include "index/shared_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "testutil.h"

namespace staratlas {
namespace {

using staratlas::testing::world;

GenomeIndex small_index(u64 seed) {
  GenomeSpec spec;
  spec.num_chromosomes = 1;
  spec.chromosome_length = 20'000;
  spec.genes_per_chromosome = 2;
  spec.seed = seed;
  const GenomeSynthesizer synthesizer(spec);
  return GenomeIndex::build(synthesizer.make_release111());
}

TEST(SharedIndexCache, LoadsOncePerKey) {
  SharedIndexCache cache(ByteSize::from_gib(1.0));
  int loads = 0;
  auto loader = [&loads] {
    ++loads;
    return small_index(1);
  };
  auto a = cache.acquire("r111", loader);
  auto b = cache.acquire("r111", loader);
  EXPECT_EQ(loads, 1);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(cache.loads(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_TRUE(cache.resident("r111"));
}

TEST(SharedIndexCache, DistinctKeysDistinctIndices) {
  SharedIndexCache cache(ByteSize::from_gib(1.0));
  auto a = cache.acquire("r108", [] { return small_index(1); });
  auto b = cache.acquire("r111", [] { return small_index(2); });
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(cache.entries(), 2u);
  EXPECT_GT(cache.resident_bytes().bytes(), 0u);
}

TEST(SharedIndexCache, EvictsLruWhenOverCapacity) {
  // Capacity fits roughly one small index.
  const ByteSize one = small_index(1).stats().total();
  SharedIndexCache cache(one * 1.5);
  {
    auto a = cache.acquire("a", [] { return small_index(1); });
  }  // released
  auto b = cache.acquire("b", [] { return small_index(2); });
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_FALSE(cache.resident("a"));
  EXPECT_TRUE(cache.resident("b"));
}

TEST(SharedIndexCache, NeverEvictsEntriesInUse) {
  const ByteSize one = small_index(1).stats().total();
  SharedIndexCache cache(one * 1.5);
  auto held = cache.acquire("held", [] { return small_index(1); });
  auto other = cache.acquire("other", [] { return small_index(2); });
  // Both are referenced: nothing evictable even though over budget.
  EXPECT_EQ(cache.evictions(), 0u);
  EXPECT_TRUE(cache.resident("held"));
  EXPECT_TRUE(cache.resident("other"));
  EXPECT_GT(cache.resident_bytes(), one * 1.5);
}

TEST(SharedIndexCache, ConcurrentWorkersShareOneLoad) {
  SharedIndexCache cache(ByteSize::from_gib(1.0));
  std::atomic<int> loads{0};
  auto loader = [&loads] {
    ++loads;
    return small_index(7);
  };
  std::vector<std::thread> workers;
  std::atomic<const GenomeIndex*> first{nullptr};
  for (int t = 0; t < 8; ++t) {
    workers.emplace_back([&] {
      auto index = cache.acquire("shared", loader);
      const GenomeIndex* expected = nullptr;
      first.compare_exchange_strong(expected, index.get());
      EXPECT_EQ(index.get(), first.load());
    });
  }
  for (auto& worker : workers) worker.join();
  EXPECT_EQ(loads.load(), 1);
}

TEST(SharedIndexCache, ZeroCapacityRejected) {
  EXPECT_THROW(SharedIndexCache(ByteSize(0)), InternalError);
}

TEST(SharedIndexCache, ResidentBytesMatchSectionSizes) {
  // The accounting the evictor trusts must equal what the indexes really
  // occupy — including the mini-LUT sections stats() used to omit.
  SharedIndexCache cache(ByteSize::from_gib(1.0));
  auto a = cache.acquire("a", [] { return small_index(1); });
  auto b = cache.acquire("b", [] { return small_index(2); });
  EXPECT_EQ(cache.resident_bytes().bytes(),
            a->stats().total().bytes() + b->stats().total().bytes());
  EXPECT_GT(a->stats().mini_lut_bytes.bytes(), 0u);
}

TEST(SharedIndexCache, DistinctKeysLoadConcurrently) {
  // Each loader waits (bounded) for the other to start: only possible if
  // the cache runs loads for different keys outside any shared lock. The
  // old design held the cache mutex across the loader, serializing these.
  SharedIndexCache cache(ByteSize::from_gib(1.0));
  std::atomic<bool> started_a{false};
  std::atomic<bool> started_b{false};
  std::atomic<bool> overlapped{true};
  const auto await = [&](std::atomic<bool>& other) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (!other.load()) {
      if (std::chrono::steady_clock::now() > deadline) {
        overlapped = false;
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };
  std::thread ta([&] {
    cache.acquire("a", [&] {
      started_a = true;
      await(started_b);
      return small_index(1);
    });
  });
  std::thread tb([&] {
    cache.acquire("b", [&] {
      started_b = true;
      await(started_a);
      return small_index(2);
    });
  });
  ta.join();
  tb.join();
  EXPECT_TRUE(overlapped.load()) << "loads for different keys serialized";
  EXPECT_EQ(cache.loads(), 2u);
}

TEST(SharedIndexCache, HammeredAcrossKeysLoadsEachKeyOnce) {
  SharedIndexCache cache(ByteSize::from_gib(1.0));
  const std::vector<std::string> keys = {"k0", "k1", "k2", "k3"};
  std::atomic<int> loader_calls{0};
  constexpr int kThreads = 8;
  constexpr int kItersPerThread = 40;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(static_cast<u64>(t) + 100);
      for (int i = 0; i < kItersPerThread; ++i) {
        const std::string& key = keys[rng.uniform(keys.size())];
        auto index = cache.acquire(key, [&] {
          ++loader_calls;
          return small_index(42);
        });
        ASSERT_NE(index, nullptr);
        ASSERT_GT(index->text().size(), 0u);
      }
    });
  }
  for (auto& worker : workers) worker.join();
  // Capacity fits everything: each key loads exactly once no matter how
  // the acquires interleave, and every other acquire is a hit.
  EXPECT_EQ(loader_calls.load(), static_cast<int>(keys.size()));
  EXPECT_EQ(cache.loads(), keys.size());
  EXPECT_EQ(cache.hits(), kThreads * kItersPerThread - keys.size());
  EXPECT_EQ(cache.entries(), keys.size());
}

TEST(SharedIndexCache, HammeredUnderTightCapacityStaysConsistent) {
  // Capacity fits ~2 of 4 keys, so eviction and reload churn constantly;
  // entries in use must survive and the counters must stay coherent.
  const ByteSize one = small_index(1).stats().total();
  SharedIndexCache cache(one * 2.5);
  const std::vector<std::string> keys = {"k0", "k1", "k2", "k3"};
  constexpr int kThreads = 4;
  constexpr int kItersPerThread = 25;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(static_cast<u64>(t) + 7);
      for (int i = 0; i < kItersPerThread; ++i) {
        auto index = cache.acquire(keys[rng.uniform(keys.size())],
                                   [] { return small_index(42); });
        // Use the index while holding it: eviction must never free it
        // out from under us.
        ASSERT_TRUE(index->mmp("ACGT").length <= 4u);
      }
    });
  }
  for (auto& worker : workers) worker.join();
  EXPECT_EQ(cache.loads() + cache.hits(),
            static_cast<u64>(kThreads) * kItersPerThread);
  EXPECT_LE(cache.entries(), keys.size());
  EXPECT_GT(cache.evictions(), 0u);
}

TEST(SharedIndexCache, PinnedEntriesSurviveEvictionPressureHammer) {
  // The multi-tenant service's load-bearing property: entries pinned by
  // active samples (live shared_ptrs) must never be evicted, no matter
  // how hard unpinned keys churn the budget. Two long-lived pins hold
  // "svc0"/"svc1" while worker threads thrash six scratch keys through a
  // budget that fits almost nothing — every reload decision happens under
  // pressure with the pins present.
  const ByteSize one = small_index(1).stats().total();
  SharedIndexCache cache(one * 2.5);
  auto pin0 = cache.acquire("svc0", [] { return small_index(1); });
  auto pin1 = cache.acquire("svc1", [] { return small_index(2); });
  const GenomeIndex* raw0 = pin0.get();
  const GenomeIndex* raw1 = pin1.get();

  constexpr int kThreads = 4;
  constexpr int kItersPerThread = 30;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      Rng rng(static_cast<u64>(t) + 11);
      for (int i = 0; i < kItersPerThread; ++i) {
        const std::string key = "scratch" + std::to_string(rng.uniform(6));
        auto index = cache.acquire(key, [] { return small_index(42); });
        ASSERT_LE(index->mmp("ACGT").length, 4u);
        // Re-acquiring a pinned key mid-churn must hit the same object.
        auto again = cache.acquire("svc0", [] { return small_index(99); });
        ASSERT_EQ(again.get(), raw0);
      }
    });
  }
  for (auto& worker : workers) worker.join();

  EXPECT_GT(cache.evictions(), 0u);  // pressure was real
  EXPECT_TRUE(cache.resident("svc0"));
  EXPECT_TRUE(cache.resident("svc1"));
  EXPECT_EQ(cache.acquire("svc0", [] { return small_index(99); }).get(), raw0);
  EXPECT_EQ(cache.acquire("svc1", [] { return small_index(99); }).get(), raw1);
  // Accounting stays coherent after the churn: resident bytes equal the
  // sum over surviving entries, which the pinned pair is part of.
  EXPECT_GE(cache.resident_bytes().bytes(), (one * 2.0).bytes());
  EXPECT_LE(cache.entries(), 8u);
}

TEST(SharedIndexCache, LoaderFailurePropagatesAndRetries) {
  SharedIndexCache cache(ByteSize::from_gib(1.0));
  int calls = 0;
  auto flaky = [&calls]() -> GenomeIndex {
    if (++calls == 1) throw IoError("transient download failure");
    return small_index(3);
  };
  EXPECT_THROW(cache.acquire("r111", flaky), IoError);
  EXPECT_FALSE(cache.resident("r111"));
  // The failed in-flight slot must be forgotten so the next acquire
  // retries the load instead of waiting on a dead future.
  auto index = cache.acquire("r111", flaky);
  EXPECT_NE(index, nullptr);
  EXPECT_EQ(calls, 2);
  EXPECT_TRUE(cache.resident("r111"));
}

}  // namespace
}  // namespace staratlas
