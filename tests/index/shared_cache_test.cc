#include "index/shared_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/error.h"
#include "testutil.h"

namespace staratlas {
namespace {

using staratlas::testing::world;

GenomeIndex small_index(u64 seed) {
  GenomeSpec spec;
  spec.num_chromosomes = 1;
  spec.chromosome_length = 20'000;
  spec.genes_per_chromosome = 2;
  spec.seed = seed;
  const GenomeSynthesizer synthesizer(spec);
  return GenomeIndex::build(synthesizer.make_release111());
}

TEST(SharedIndexCache, LoadsOncePerKey) {
  SharedIndexCache cache(ByteSize::from_gib(1.0));
  int loads = 0;
  auto loader = [&loads] {
    ++loads;
    return small_index(1);
  };
  auto a = cache.acquire("r111", loader);
  auto b = cache.acquire("r111", loader);
  EXPECT_EQ(loads, 1);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(cache.loads(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_TRUE(cache.resident("r111"));
}

TEST(SharedIndexCache, DistinctKeysDistinctIndices) {
  SharedIndexCache cache(ByteSize::from_gib(1.0));
  auto a = cache.acquire("r108", [] { return small_index(1); });
  auto b = cache.acquire("r111", [] { return small_index(2); });
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(cache.entries(), 2u);
  EXPECT_GT(cache.resident_bytes().bytes(), 0u);
}

TEST(SharedIndexCache, EvictsLruWhenOverCapacity) {
  // Capacity fits roughly one small index.
  const ByteSize one = small_index(1).stats().total();
  SharedIndexCache cache(one * 1.5);
  {
    auto a = cache.acquire("a", [] { return small_index(1); });
  }  // released
  auto b = cache.acquire("b", [] { return small_index(2); });
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_FALSE(cache.resident("a"));
  EXPECT_TRUE(cache.resident("b"));
}

TEST(SharedIndexCache, NeverEvictsEntriesInUse) {
  const ByteSize one = small_index(1).stats().total();
  SharedIndexCache cache(one * 1.5);
  auto held = cache.acquire("held", [] { return small_index(1); });
  auto other = cache.acquire("other", [] { return small_index(2); });
  // Both are referenced: nothing evictable even though over budget.
  EXPECT_EQ(cache.evictions(), 0u);
  EXPECT_TRUE(cache.resident("held"));
  EXPECT_TRUE(cache.resident("other"));
  EXPECT_GT(cache.resident_bytes(), one * 1.5);
}

TEST(SharedIndexCache, ConcurrentWorkersShareOneLoad) {
  SharedIndexCache cache(ByteSize::from_gib(1.0));
  std::atomic<int> loads{0};
  auto loader = [&loads] {
    ++loads;
    return small_index(7);
  };
  std::vector<std::thread> workers;
  std::atomic<const GenomeIndex*> first{nullptr};
  for (int t = 0; t < 8; ++t) {
    workers.emplace_back([&] {
      auto index = cache.acquire("shared", loader);
      const GenomeIndex* expected = nullptr;
      first.compare_exchange_strong(expected, index.get());
      EXPECT_EQ(index.get(), first.load());
    });
  }
  for (auto& worker : workers) worker.join();
  EXPECT_EQ(loads.load(), 1);
}

TEST(SharedIndexCache, ZeroCapacityRejected) {
  EXPECT_THROW(SharedIndexCache(ByteSize(0)), InternalError);
}

}  // namespace
}  // namespace staratlas
