# Empty dependencies file for workstation_atlas.
# This may be replaced when dependencies are built.
