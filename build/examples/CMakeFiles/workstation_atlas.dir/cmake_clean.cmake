file(REMOVE_RECURSE
  "CMakeFiles/workstation_atlas.dir/workstation_atlas.cpp.o"
  "CMakeFiles/workstation_atlas.dir/workstation_atlas.cpp.o.d"
  "workstation_atlas"
  "workstation_atlas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workstation_atlas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
