# Empty dependencies file for transcriptomics_atlas.
# This may be replaced when dependencies are built.
