file(REMOVE_RECURSE
  "CMakeFiles/transcriptomics_atlas.dir/transcriptomics_atlas.cpp.o"
  "CMakeFiles/transcriptomics_atlas.dir/transcriptomics_atlas.cpp.o.d"
  "transcriptomics_atlas"
  "transcriptomics_atlas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transcriptomics_atlas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
