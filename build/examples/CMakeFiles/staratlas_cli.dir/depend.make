# Empty dependencies file for staratlas_cli.
# This may be replaced when dependencies are built.
