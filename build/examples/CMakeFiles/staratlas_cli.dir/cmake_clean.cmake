file(REMOVE_RECURSE
  "CMakeFiles/staratlas_cli.dir/staratlas_cli.cpp.o"
  "CMakeFiles/staratlas_cli.dir/staratlas_cli.cpp.o.d"
  "staratlas_cli"
  "staratlas_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/staratlas_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
