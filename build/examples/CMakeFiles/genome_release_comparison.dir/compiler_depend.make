# Empty compiler generated dependencies file for genome_release_comparison.
# This may be replaced when dependencies are built.
