file(REMOVE_RECURSE
  "CMakeFiles/genome_release_comparison.dir/genome_release_comparison.cpp.o"
  "CMakeFiles/genome_release_comparison.dir/genome_release_comparison.cpp.o.d"
  "genome_release_comparison"
  "genome_release_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genome_release_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
