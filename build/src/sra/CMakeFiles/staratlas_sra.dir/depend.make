# Empty dependencies file for staratlas_sra.
# This may be replaced when dependencies are built.
