file(REMOVE_RECURSE
  "CMakeFiles/staratlas_sra.dir/container.cc.o"
  "CMakeFiles/staratlas_sra.dir/container.cc.o.d"
  "CMakeFiles/staratlas_sra.dir/repository.cc.o"
  "CMakeFiles/staratlas_sra.dir/repository.cc.o.d"
  "CMakeFiles/staratlas_sra.dir/toolkit.cc.o"
  "CMakeFiles/staratlas_sra.dir/toolkit.cc.o.d"
  "libstaratlas_sra.a"
  "libstaratlas_sra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/staratlas_sra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
