file(REMOVE_RECURSE
  "libstaratlas_sra.a"
)
