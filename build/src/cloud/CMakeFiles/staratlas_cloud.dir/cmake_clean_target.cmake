file(REMOVE_RECURSE
  "libstaratlas_cloud.a"
)
