# Empty dependencies file for staratlas_cloud.
# This may be replaced when dependencies are built.
