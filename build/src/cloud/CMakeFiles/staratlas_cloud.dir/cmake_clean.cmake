file(REMOVE_RECURSE
  "CMakeFiles/staratlas_cloud.dir/asg.cc.o"
  "CMakeFiles/staratlas_cloud.dir/asg.cc.o.d"
  "CMakeFiles/staratlas_cloud.dir/cost.cc.o"
  "CMakeFiles/staratlas_cloud.dir/cost.cc.o.d"
  "CMakeFiles/staratlas_cloud.dir/ec2.cc.o"
  "CMakeFiles/staratlas_cloud.dir/ec2.cc.o.d"
  "CMakeFiles/staratlas_cloud.dir/event_sim.cc.o"
  "CMakeFiles/staratlas_cloud.dir/event_sim.cc.o.d"
  "CMakeFiles/staratlas_cloud.dir/instance_types.cc.o"
  "CMakeFiles/staratlas_cloud.dir/instance_types.cc.o.d"
  "CMakeFiles/staratlas_cloud.dir/metrics.cc.o"
  "CMakeFiles/staratlas_cloud.dir/metrics.cc.o.d"
  "CMakeFiles/staratlas_cloud.dir/s3.cc.o"
  "CMakeFiles/staratlas_cloud.dir/s3.cc.o.d"
  "CMakeFiles/staratlas_cloud.dir/spot.cc.o"
  "CMakeFiles/staratlas_cloud.dir/spot.cc.o.d"
  "CMakeFiles/staratlas_cloud.dir/sqs.cc.o"
  "CMakeFiles/staratlas_cloud.dir/sqs.cc.o.d"
  "libstaratlas_cloud.a"
  "libstaratlas_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/staratlas_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
