
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cloud/asg.cc" "src/cloud/CMakeFiles/staratlas_cloud.dir/asg.cc.o" "gcc" "src/cloud/CMakeFiles/staratlas_cloud.dir/asg.cc.o.d"
  "/root/repo/src/cloud/cost.cc" "src/cloud/CMakeFiles/staratlas_cloud.dir/cost.cc.o" "gcc" "src/cloud/CMakeFiles/staratlas_cloud.dir/cost.cc.o.d"
  "/root/repo/src/cloud/ec2.cc" "src/cloud/CMakeFiles/staratlas_cloud.dir/ec2.cc.o" "gcc" "src/cloud/CMakeFiles/staratlas_cloud.dir/ec2.cc.o.d"
  "/root/repo/src/cloud/event_sim.cc" "src/cloud/CMakeFiles/staratlas_cloud.dir/event_sim.cc.o" "gcc" "src/cloud/CMakeFiles/staratlas_cloud.dir/event_sim.cc.o.d"
  "/root/repo/src/cloud/instance_types.cc" "src/cloud/CMakeFiles/staratlas_cloud.dir/instance_types.cc.o" "gcc" "src/cloud/CMakeFiles/staratlas_cloud.dir/instance_types.cc.o.d"
  "/root/repo/src/cloud/metrics.cc" "src/cloud/CMakeFiles/staratlas_cloud.dir/metrics.cc.o" "gcc" "src/cloud/CMakeFiles/staratlas_cloud.dir/metrics.cc.o.d"
  "/root/repo/src/cloud/s3.cc" "src/cloud/CMakeFiles/staratlas_cloud.dir/s3.cc.o" "gcc" "src/cloud/CMakeFiles/staratlas_cloud.dir/s3.cc.o.d"
  "/root/repo/src/cloud/spot.cc" "src/cloud/CMakeFiles/staratlas_cloud.dir/spot.cc.o" "gcc" "src/cloud/CMakeFiles/staratlas_cloud.dir/spot.cc.o.d"
  "/root/repo/src/cloud/sqs.cc" "src/cloud/CMakeFiles/staratlas_cloud.dir/sqs.cc.o" "gcc" "src/cloud/CMakeFiles/staratlas_cloud.dir/sqs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/staratlas_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
