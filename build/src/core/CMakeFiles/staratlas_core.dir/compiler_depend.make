# Empty compiler generated dependencies file for staratlas_core.
# This may be replaced when dependencies are built.
