
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/atlas_sim.cc" "src/core/CMakeFiles/staratlas_core.dir/atlas_sim.cc.o" "gcc" "src/core/CMakeFiles/staratlas_core.dir/atlas_sim.cc.o.d"
  "/root/repo/src/core/early_stopping.cc" "src/core/CMakeFiles/staratlas_core.dir/early_stopping.cc.o" "gcc" "src/core/CMakeFiles/staratlas_core.dir/early_stopping.cc.o.d"
  "/root/repo/src/core/estimate.cc" "src/core/CMakeFiles/staratlas_core.dir/estimate.cc.o" "gcc" "src/core/CMakeFiles/staratlas_core.dir/estimate.cc.o.d"
  "/root/repo/src/core/maprate_model.cc" "src/core/CMakeFiles/staratlas_core.dir/maprate_model.cc.o" "gcc" "src/core/CMakeFiles/staratlas_core.dir/maprate_model.cc.o.d"
  "/root/repo/src/core/pipeline.cc" "src/core/CMakeFiles/staratlas_core.dir/pipeline.cc.o" "gcc" "src/core/CMakeFiles/staratlas_core.dir/pipeline.cc.o.d"
  "/root/repo/src/core/report.cc" "src/core/CMakeFiles/staratlas_core.dir/report.cc.o" "gcc" "src/core/CMakeFiles/staratlas_core.dir/report.cc.o.d"
  "/root/repo/src/core/rightsizing.cc" "src/core/CMakeFiles/staratlas_core.dir/rightsizing.cc.o" "gcc" "src/core/CMakeFiles/staratlas_core.dir/rightsizing.cc.o.d"
  "/root/repo/src/core/stage_model.cc" "src/core/CMakeFiles/staratlas_core.dir/stage_model.cc.o" "gcc" "src/core/CMakeFiles/staratlas_core.dir/stage_model.cc.o.d"
  "/root/repo/src/core/workstation.cc" "src/core/CMakeFiles/staratlas_core.dir/workstation.cc.o" "gcc" "src/core/CMakeFiles/staratlas_core.dir/workstation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cloud/CMakeFiles/staratlas_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/align/CMakeFiles/staratlas_align.dir/DependInfo.cmake"
  "/root/repo/build/src/sra/CMakeFiles/staratlas_sra.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/staratlas_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/quant/CMakeFiles/staratlas_quant.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/staratlas_index.dir/DependInfo.cmake"
  "/root/repo/build/src/genome/CMakeFiles/staratlas_genome.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/staratlas_io.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/staratlas_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
