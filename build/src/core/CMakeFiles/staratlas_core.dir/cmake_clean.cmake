file(REMOVE_RECURSE
  "CMakeFiles/staratlas_core.dir/atlas_sim.cc.o"
  "CMakeFiles/staratlas_core.dir/atlas_sim.cc.o.d"
  "CMakeFiles/staratlas_core.dir/early_stopping.cc.o"
  "CMakeFiles/staratlas_core.dir/early_stopping.cc.o.d"
  "CMakeFiles/staratlas_core.dir/estimate.cc.o"
  "CMakeFiles/staratlas_core.dir/estimate.cc.o.d"
  "CMakeFiles/staratlas_core.dir/maprate_model.cc.o"
  "CMakeFiles/staratlas_core.dir/maprate_model.cc.o.d"
  "CMakeFiles/staratlas_core.dir/pipeline.cc.o"
  "CMakeFiles/staratlas_core.dir/pipeline.cc.o.d"
  "CMakeFiles/staratlas_core.dir/report.cc.o"
  "CMakeFiles/staratlas_core.dir/report.cc.o.d"
  "CMakeFiles/staratlas_core.dir/rightsizing.cc.o"
  "CMakeFiles/staratlas_core.dir/rightsizing.cc.o.d"
  "CMakeFiles/staratlas_core.dir/stage_model.cc.o"
  "CMakeFiles/staratlas_core.dir/stage_model.cc.o.d"
  "CMakeFiles/staratlas_core.dir/workstation.cc.o"
  "CMakeFiles/staratlas_core.dir/workstation.cc.o.d"
  "libstaratlas_core.a"
  "libstaratlas_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/staratlas_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
