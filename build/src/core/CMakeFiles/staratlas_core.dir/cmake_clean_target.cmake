file(REMOVE_RECURSE
  "libstaratlas_core.a"
)
