# Empty compiler generated dependencies file for staratlas_quant.
# This may be replaced when dependencies are built.
