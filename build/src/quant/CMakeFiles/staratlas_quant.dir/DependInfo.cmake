
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/quant/count_matrix.cc" "src/quant/CMakeFiles/staratlas_quant.dir/count_matrix.cc.o" "gcc" "src/quant/CMakeFiles/staratlas_quant.dir/count_matrix.cc.o.d"
  "/root/repo/src/quant/deseq2.cc" "src/quant/CMakeFiles/staratlas_quant.dir/deseq2.cc.o" "gcc" "src/quant/CMakeFiles/staratlas_quant.dir/deseq2.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/align/CMakeFiles/staratlas_align.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/staratlas_common.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/staratlas_index.dir/DependInfo.cmake"
  "/root/repo/build/src/genome/CMakeFiles/staratlas_genome.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/staratlas_io.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
