file(REMOVE_RECURSE
  "libstaratlas_quant.a"
)
