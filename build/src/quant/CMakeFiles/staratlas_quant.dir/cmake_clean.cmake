file(REMOVE_RECURSE
  "CMakeFiles/staratlas_quant.dir/count_matrix.cc.o"
  "CMakeFiles/staratlas_quant.dir/count_matrix.cc.o.d"
  "CMakeFiles/staratlas_quant.dir/deseq2.cc.o"
  "CMakeFiles/staratlas_quant.dir/deseq2.cc.o.d"
  "libstaratlas_quant.a"
  "libstaratlas_quant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/staratlas_quant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
