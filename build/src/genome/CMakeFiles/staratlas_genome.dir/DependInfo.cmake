
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/genome/annotation.cc" "src/genome/CMakeFiles/staratlas_genome.dir/annotation.cc.o" "gcc" "src/genome/CMakeFiles/staratlas_genome.dir/annotation.cc.o.d"
  "/root/repo/src/genome/model.cc" "src/genome/CMakeFiles/staratlas_genome.dir/model.cc.o" "gcc" "src/genome/CMakeFiles/staratlas_genome.dir/model.cc.o.d"
  "/root/repo/src/genome/synthesizer.cc" "src/genome/CMakeFiles/staratlas_genome.dir/synthesizer.cc.o" "gcc" "src/genome/CMakeFiles/staratlas_genome.dir/synthesizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/io/CMakeFiles/staratlas_io.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/staratlas_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
