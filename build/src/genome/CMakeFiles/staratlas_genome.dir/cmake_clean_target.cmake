file(REMOVE_RECURSE
  "libstaratlas_genome.a"
)
