file(REMOVE_RECURSE
  "CMakeFiles/staratlas_genome.dir/annotation.cc.o"
  "CMakeFiles/staratlas_genome.dir/annotation.cc.o.d"
  "CMakeFiles/staratlas_genome.dir/model.cc.o"
  "CMakeFiles/staratlas_genome.dir/model.cc.o.d"
  "CMakeFiles/staratlas_genome.dir/synthesizer.cc.o"
  "CMakeFiles/staratlas_genome.dir/synthesizer.cc.o.d"
  "libstaratlas_genome.a"
  "libstaratlas_genome.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/staratlas_genome.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
