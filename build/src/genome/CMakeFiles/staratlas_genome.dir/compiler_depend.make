# Empty compiler generated dependencies file for staratlas_genome.
# This may be replaced when dependencies are built.
