file(REMOVE_RECURSE
  "CMakeFiles/staratlas_common.dir/log.cc.o"
  "CMakeFiles/staratlas_common.dir/log.cc.o.d"
  "CMakeFiles/staratlas_common.dir/rng.cc.o"
  "CMakeFiles/staratlas_common.dir/rng.cc.o.d"
  "CMakeFiles/staratlas_common.dir/stats.cc.o"
  "CMakeFiles/staratlas_common.dir/stats.cc.o.d"
  "CMakeFiles/staratlas_common.dir/thread_pool.cc.o"
  "CMakeFiles/staratlas_common.dir/thread_pool.cc.o.d"
  "CMakeFiles/staratlas_common.dir/units.cc.o"
  "CMakeFiles/staratlas_common.dir/units.cc.o.d"
  "CMakeFiles/staratlas_common.dir/vclock.cc.o"
  "CMakeFiles/staratlas_common.dir/vclock.cc.o.d"
  "libstaratlas_common.a"
  "libstaratlas_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/staratlas_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
