# Empty dependencies file for staratlas_common.
# This may be replaced when dependencies are built.
