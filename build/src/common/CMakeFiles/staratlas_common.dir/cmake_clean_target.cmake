file(REMOVE_RECURSE
  "libstaratlas_common.a"
)
