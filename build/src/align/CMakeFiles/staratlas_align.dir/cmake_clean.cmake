file(REMOVE_RECURSE
  "CMakeFiles/staratlas_align.dir/aligner.cc.o"
  "CMakeFiles/staratlas_align.dir/aligner.cc.o.d"
  "CMakeFiles/staratlas_align.dir/engine.cc.o"
  "CMakeFiles/staratlas_align.dir/engine.cc.o.d"
  "CMakeFiles/staratlas_align.dir/extend.cc.o"
  "CMakeFiles/staratlas_align.dir/extend.cc.o.d"
  "CMakeFiles/staratlas_align.dir/final_log.cc.o"
  "CMakeFiles/staratlas_align.dir/final_log.cc.o.d"
  "CMakeFiles/staratlas_align.dir/gene_counts.cc.o"
  "CMakeFiles/staratlas_align.dir/gene_counts.cc.o.d"
  "CMakeFiles/staratlas_align.dir/junctions.cc.o"
  "CMakeFiles/staratlas_align.dir/junctions.cc.o.d"
  "CMakeFiles/staratlas_align.dir/paired.cc.o"
  "CMakeFiles/staratlas_align.dir/paired.cc.o.d"
  "CMakeFiles/staratlas_align.dir/progress.cc.o"
  "CMakeFiles/staratlas_align.dir/progress.cc.o.d"
  "CMakeFiles/staratlas_align.dir/pseudo.cc.o"
  "CMakeFiles/staratlas_align.dir/pseudo.cc.o.d"
  "CMakeFiles/staratlas_align.dir/record.cc.o"
  "CMakeFiles/staratlas_align.dir/record.cc.o.d"
  "CMakeFiles/staratlas_align.dir/sam.cc.o"
  "CMakeFiles/staratlas_align.dir/sam.cc.o.d"
  "CMakeFiles/staratlas_align.dir/seed.cc.o"
  "CMakeFiles/staratlas_align.dir/seed.cc.o.d"
  "libstaratlas_align.a"
  "libstaratlas_align.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/staratlas_align.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
