file(REMOVE_RECURSE
  "libstaratlas_align.a"
)
