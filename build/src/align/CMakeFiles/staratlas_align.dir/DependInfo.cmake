
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/align/aligner.cc" "src/align/CMakeFiles/staratlas_align.dir/aligner.cc.o" "gcc" "src/align/CMakeFiles/staratlas_align.dir/aligner.cc.o.d"
  "/root/repo/src/align/engine.cc" "src/align/CMakeFiles/staratlas_align.dir/engine.cc.o" "gcc" "src/align/CMakeFiles/staratlas_align.dir/engine.cc.o.d"
  "/root/repo/src/align/extend.cc" "src/align/CMakeFiles/staratlas_align.dir/extend.cc.o" "gcc" "src/align/CMakeFiles/staratlas_align.dir/extend.cc.o.d"
  "/root/repo/src/align/final_log.cc" "src/align/CMakeFiles/staratlas_align.dir/final_log.cc.o" "gcc" "src/align/CMakeFiles/staratlas_align.dir/final_log.cc.o.d"
  "/root/repo/src/align/gene_counts.cc" "src/align/CMakeFiles/staratlas_align.dir/gene_counts.cc.o" "gcc" "src/align/CMakeFiles/staratlas_align.dir/gene_counts.cc.o.d"
  "/root/repo/src/align/junctions.cc" "src/align/CMakeFiles/staratlas_align.dir/junctions.cc.o" "gcc" "src/align/CMakeFiles/staratlas_align.dir/junctions.cc.o.d"
  "/root/repo/src/align/paired.cc" "src/align/CMakeFiles/staratlas_align.dir/paired.cc.o" "gcc" "src/align/CMakeFiles/staratlas_align.dir/paired.cc.o.d"
  "/root/repo/src/align/progress.cc" "src/align/CMakeFiles/staratlas_align.dir/progress.cc.o" "gcc" "src/align/CMakeFiles/staratlas_align.dir/progress.cc.o.d"
  "/root/repo/src/align/pseudo.cc" "src/align/CMakeFiles/staratlas_align.dir/pseudo.cc.o" "gcc" "src/align/CMakeFiles/staratlas_align.dir/pseudo.cc.o.d"
  "/root/repo/src/align/record.cc" "src/align/CMakeFiles/staratlas_align.dir/record.cc.o" "gcc" "src/align/CMakeFiles/staratlas_align.dir/record.cc.o.d"
  "/root/repo/src/align/sam.cc" "src/align/CMakeFiles/staratlas_align.dir/sam.cc.o" "gcc" "src/align/CMakeFiles/staratlas_align.dir/sam.cc.o.d"
  "/root/repo/src/align/seed.cc" "src/align/CMakeFiles/staratlas_align.dir/seed.cc.o" "gcc" "src/align/CMakeFiles/staratlas_align.dir/seed.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/index/CMakeFiles/staratlas_index.dir/DependInfo.cmake"
  "/root/repo/build/src/genome/CMakeFiles/staratlas_genome.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/staratlas_io.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/staratlas_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
