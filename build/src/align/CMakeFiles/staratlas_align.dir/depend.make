# Empty dependencies file for staratlas_align.
# This may be replaced when dependencies are built.
