file(REMOVE_RECURSE
  "CMakeFiles/staratlas_sim.dir/catalog.cc.o"
  "CMakeFiles/staratlas_sim.dir/catalog.cc.o.d"
  "CMakeFiles/staratlas_sim.dir/library_profile.cc.o"
  "CMakeFiles/staratlas_sim.dir/library_profile.cc.o.d"
  "CMakeFiles/staratlas_sim.dir/read_simulator.cc.o"
  "CMakeFiles/staratlas_sim.dir/read_simulator.cc.o.d"
  "libstaratlas_sim.a"
  "libstaratlas_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/staratlas_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
