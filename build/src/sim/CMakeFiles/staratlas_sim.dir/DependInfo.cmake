
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/catalog.cc" "src/sim/CMakeFiles/staratlas_sim.dir/catalog.cc.o" "gcc" "src/sim/CMakeFiles/staratlas_sim.dir/catalog.cc.o.d"
  "/root/repo/src/sim/library_profile.cc" "src/sim/CMakeFiles/staratlas_sim.dir/library_profile.cc.o" "gcc" "src/sim/CMakeFiles/staratlas_sim.dir/library_profile.cc.o.d"
  "/root/repo/src/sim/read_simulator.cc" "src/sim/CMakeFiles/staratlas_sim.dir/read_simulator.cc.o" "gcc" "src/sim/CMakeFiles/staratlas_sim.dir/read_simulator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/genome/CMakeFiles/staratlas_genome.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/staratlas_index.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/staratlas_io.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/staratlas_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
