# Empty dependencies file for staratlas_sim.
# This may be replaced when dependencies are built.
