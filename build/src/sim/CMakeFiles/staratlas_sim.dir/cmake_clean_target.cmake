file(REMOVE_RECURSE
  "libstaratlas_sim.a"
)
