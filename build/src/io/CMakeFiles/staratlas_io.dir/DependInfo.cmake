
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/fasta.cc" "src/io/CMakeFiles/staratlas_io.dir/fasta.cc.o" "gcc" "src/io/CMakeFiles/staratlas_io.dir/fasta.cc.o.d"
  "/root/repo/src/io/fastq.cc" "src/io/CMakeFiles/staratlas_io.dir/fastq.cc.o" "gcc" "src/io/CMakeFiles/staratlas_io.dir/fastq.cc.o.d"
  "/root/repo/src/io/gtf.cc" "src/io/CMakeFiles/staratlas_io.dir/gtf.cc.o" "gcc" "src/io/CMakeFiles/staratlas_io.dir/gtf.cc.o.d"
  "/root/repo/src/io/text.cc" "src/io/CMakeFiles/staratlas_io.dir/text.cc.o" "gcc" "src/io/CMakeFiles/staratlas_io.dir/text.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/staratlas_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
