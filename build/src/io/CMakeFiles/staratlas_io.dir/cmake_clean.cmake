file(REMOVE_RECURSE
  "CMakeFiles/staratlas_io.dir/fasta.cc.o"
  "CMakeFiles/staratlas_io.dir/fasta.cc.o.d"
  "CMakeFiles/staratlas_io.dir/fastq.cc.o"
  "CMakeFiles/staratlas_io.dir/fastq.cc.o.d"
  "CMakeFiles/staratlas_io.dir/gtf.cc.o"
  "CMakeFiles/staratlas_io.dir/gtf.cc.o.d"
  "CMakeFiles/staratlas_io.dir/text.cc.o"
  "CMakeFiles/staratlas_io.dir/text.cc.o.d"
  "libstaratlas_io.a"
  "libstaratlas_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/staratlas_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
