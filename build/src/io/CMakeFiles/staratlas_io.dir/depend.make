# Empty dependencies file for staratlas_io.
# This may be replaced when dependencies are built.
