file(REMOVE_RECURSE
  "libstaratlas_io.a"
)
