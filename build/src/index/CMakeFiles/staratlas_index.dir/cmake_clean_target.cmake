file(REMOVE_RECURSE
  "libstaratlas_index.a"
)
