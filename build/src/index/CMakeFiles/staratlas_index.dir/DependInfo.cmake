
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/index/footprint.cc" "src/index/CMakeFiles/staratlas_index.dir/footprint.cc.o" "gcc" "src/index/CMakeFiles/staratlas_index.dir/footprint.cc.o.d"
  "/root/repo/src/index/genome_index.cc" "src/index/CMakeFiles/staratlas_index.dir/genome_index.cc.o" "gcc" "src/index/CMakeFiles/staratlas_index.dir/genome_index.cc.o.d"
  "/root/repo/src/index/packed_sequence.cc" "src/index/CMakeFiles/staratlas_index.dir/packed_sequence.cc.o" "gcc" "src/index/CMakeFiles/staratlas_index.dir/packed_sequence.cc.o.d"
  "/root/repo/src/index/shared_cache.cc" "src/index/CMakeFiles/staratlas_index.dir/shared_cache.cc.o" "gcc" "src/index/CMakeFiles/staratlas_index.dir/shared_cache.cc.o.d"
  "/root/repo/src/index/suffix_array.cc" "src/index/CMakeFiles/staratlas_index.dir/suffix_array.cc.o" "gcc" "src/index/CMakeFiles/staratlas_index.dir/suffix_array.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/genome/CMakeFiles/staratlas_genome.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/staratlas_io.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/staratlas_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
