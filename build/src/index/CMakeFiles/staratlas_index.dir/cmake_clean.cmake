file(REMOVE_RECURSE
  "CMakeFiles/staratlas_index.dir/footprint.cc.o"
  "CMakeFiles/staratlas_index.dir/footprint.cc.o.d"
  "CMakeFiles/staratlas_index.dir/genome_index.cc.o"
  "CMakeFiles/staratlas_index.dir/genome_index.cc.o.d"
  "CMakeFiles/staratlas_index.dir/packed_sequence.cc.o"
  "CMakeFiles/staratlas_index.dir/packed_sequence.cc.o.d"
  "CMakeFiles/staratlas_index.dir/shared_cache.cc.o"
  "CMakeFiles/staratlas_index.dir/shared_cache.cc.o.d"
  "CMakeFiles/staratlas_index.dir/suffix_array.cc.o"
  "CMakeFiles/staratlas_index.dir/suffix_array.cc.o.d"
  "libstaratlas_index.a"
  "libstaratlas_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/staratlas_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
