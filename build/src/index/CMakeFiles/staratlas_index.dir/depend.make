# Empty dependencies file for staratlas_index.
# This may be replaced when dependencies are built.
