# Empty dependencies file for staratlas_tests.
# This may be replaced when dependencies are built.
