
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/align/aligner_test.cc" "tests/CMakeFiles/staratlas_tests.dir/align/aligner_test.cc.o" "gcc" "tests/CMakeFiles/staratlas_tests.dir/align/aligner_test.cc.o.d"
  "/root/repo/tests/align/engine_test.cc" "tests/CMakeFiles/staratlas_tests.dir/align/engine_test.cc.o" "gcc" "tests/CMakeFiles/staratlas_tests.dir/align/engine_test.cc.o.d"
  "/root/repo/tests/align/extend_test.cc" "tests/CMakeFiles/staratlas_tests.dir/align/extend_test.cc.o" "gcc" "tests/CMakeFiles/staratlas_tests.dir/align/extend_test.cc.o.d"
  "/root/repo/tests/align/final_log_test.cc" "tests/CMakeFiles/staratlas_tests.dir/align/final_log_test.cc.o" "gcc" "tests/CMakeFiles/staratlas_tests.dir/align/final_log_test.cc.o.d"
  "/root/repo/tests/align/gene_counts_test.cc" "tests/CMakeFiles/staratlas_tests.dir/align/gene_counts_test.cc.o" "gcc" "tests/CMakeFiles/staratlas_tests.dir/align/gene_counts_test.cc.o.d"
  "/root/repo/tests/align/junctions_test.cc" "tests/CMakeFiles/staratlas_tests.dir/align/junctions_test.cc.o" "gcc" "tests/CMakeFiles/staratlas_tests.dir/align/junctions_test.cc.o.d"
  "/root/repo/tests/align/paired_test.cc" "tests/CMakeFiles/staratlas_tests.dir/align/paired_test.cc.o" "gcc" "tests/CMakeFiles/staratlas_tests.dir/align/paired_test.cc.o.d"
  "/root/repo/tests/align/progress_test.cc" "tests/CMakeFiles/staratlas_tests.dir/align/progress_test.cc.o" "gcc" "tests/CMakeFiles/staratlas_tests.dir/align/progress_test.cc.o.d"
  "/root/repo/tests/align/pseudo_test.cc" "tests/CMakeFiles/staratlas_tests.dir/align/pseudo_test.cc.o" "gcc" "tests/CMakeFiles/staratlas_tests.dir/align/pseudo_test.cc.o.d"
  "/root/repo/tests/align/recovery_property_test.cc" "tests/CMakeFiles/staratlas_tests.dir/align/recovery_property_test.cc.o" "gcc" "tests/CMakeFiles/staratlas_tests.dir/align/recovery_property_test.cc.o.d"
  "/root/repo/tests/align/sam_test.cc" "tests/CMakeFiles/staratlas_tests.dir/align/sam_test.cc.o" "gcc" "tests/CMakeFiles/staratlas_tests.dir/align/sam_test.cc.o.d"
  "/root/repo/tests/align/seed_test.cc" "tests/CMakeFiles/staratlas_tests.dir/align/seed_test.cc.o" "gcc" "tests/CMakeFiles/staratlas_tests.dir/align/seed_test.cc.o.d"
  "/root/repo/tests/cloud/asg_test.cc" "tests/CMakeFiles/staratlas_tests.dir/cloud/asg_test.cc.o" "gcc" "tests/CMakeFiles/staratlas_tests.dir/cloud/asg_test.cc.o.d"
  "/root/repo/tests/cloud/cost_test.cc" "tests/CMakeFiles/staratlas_tests.dir/cloud/cost_test.cc.o" "gcc" "tests/CMakeFiles/staratlas_tests.dir/cloud/cost_test.cc.o.d"
  "/root/repo/tests/cloud/ec2_test.cc" "tests/CMakeFiles/staratlas_tests.dir/cloud/ec2_test.cc.o" "gcc" "tests/CMakeFiles/staratlas_tests.dir/cloud/ec2_test.cc.o.d"
  "/root/repo/tests/cloud/event_sim_test.cc" "tests/CMakeFiles/staratlas_tests.dir/cloud/event_sim_test.cc.o" "gcc" "tests/CMakeFiles/staratlas_tests.dir/cloud/event_sim_test.cc.o.d"
  "/root/repo/tests/cloud/metrics_test.cc" "tests/CMakeFiles/staratlas_tests.dir/cloud/metrics_test.cc.o" "gcc" "tests/CMakeFiles/staratlas_tests.dir/cloud/metrics_test.cc.o.d"
  "/root/repo/tests/cloud/s3_test.cc" "tests/CMakeFiles/staratlas_tests.dir/cloud/s3_test.cc.o" "gcc" "tests/CMakeFiles/staratlas_tests.dir/cloud/s3_test.cc.o.d"
  "/root/repo/tests/cloud/sqs_sweep_test.cc" "tests/CMakeFiles/staratlas_tests.dir/cloud/sqs_sweep_test.cc.o" "gcc" "tests/CMakeFiles/staratlas_tests.dir/cloud/sqs_sweep_test.cc.o.d"
  "/root/repo/tests/cloud/sqs_test.cc" "tests/CMakeFiles/staratlas_tests.dir/cloud/sqs_test.cc.o" "gcc" "tests/CMakeFiles/staratlas_tests.dir/cloud/sqs_test.cc.o.d"
  "/root/repo/tests/common/error_test.cc" "tests/CMakeFiles/staratlas_tests.dir/common/error_test.cc.o" "gcc" "tests/CMakeFiles/staratlas_tests.dir/common/error_test.cc.o.d"
  "/root/repo/tests/common/rng_test.cc" "tests/CMakeFiles/staratlas_tests.dir/common/rng_test.cc.o" "gcc" "tests/CMakeFiles/staratlas_tests.dir/common/rng_test.cc.o.d"
  "/root/repo/tests/common/stats_test.cc" "tests/CMakeFiles/staratlas_tests.dir/common/stats_test.cc.o" "gcc" "tests/CMakeFiles/staratlas_tests.dir/common/stats_test.cc.o.d"
  "/root/repo/tests/common/thread_pool_test.cc" "tests/CMakeFiles/staratlas_tests.dir/common/thread_pool_test.cc.o" "gcc" "tests/CMakeFiles/staratlas_tests.dir/common/thread_pool_test.cc.o.d"
  "/root/repo/tests/common/units_test.cc" "tests/CMakeFiles/staratlas_tests.dir/common/units_test.cc.o" "gcc" "tests/CMakeFiles/staratlas_tests.dir/common/units_test.cc.o.d"
  "/root/repo/tests/common/vclock_test.cc" "tests/CMakeFiles/staratlas_tests.dir/common/vclock_test.cc.o" "gcc" "tests/CMakeFiles/staratlas_tests.dir/common/vclock_test.cc.o.d"
  "/root/repo/tests/core/atlas_sim_test.cc" "tests/CMakeFiles/staratlas_tests.dir/core/atlas_sim_test.cc.o" "gcc" "tests/CMakeFiles/staratlas_tests.dir/core/atlas_sim_test.cc.o.d"
  "/root/repo/tests/core/early_stopping_test.cc" "tests/CMakeFiles/staratlas_tests.dir/core/early_stopping_test.cc.o" "gcc" "tests/CMakeFiles/staratlas_tests.dir/core/early_stopping_test.cc.o.d"
  "/root/repo/tests/core/estimate_test.cc" "tests/CMakeFiles/staratlas_tests.dir/core/estimate_test.cc.o" "gcc" "tests/CMakeFiles/staratlas_tests.dir/core/estimate_test.cc.o.d"
  "/root/repo/tests/core/pipeline_test.cc" "tests/CMakeFiles/staratlas_tests.dir/core/pipeline_test.cc.o" "gcc" "tests/CMakeFiles/staratlas_tests.dir/core/pipeline_test.cc.o.d"
  "/root/repo/tests/core/report_test.cc" "tests/CMakeFiles/staratlas_tests.dir/core/report_test.cc.o" "gcc" "tests/CMakeFiles/staratlas_tests.dir/core/report_test.cc.o.d"
  "/root/repo/tests/core/rightsizing_test.cc" "tests/CMakeFiles/staratlas_tests.dir/core/rightsizing_test.cc.o" "gcc" "tests/CMakeFiles/staratlas_tests.dir/core/rightsizing_test.cc.o.d"
  "/root/repo/tests/core/stage_model_test.cc" "tests/CMakeFiles/staratlas_tests.dir/core/stage_model_test.cc.o" "gcc" "tests/CMakeFiles/staratlas_tests.dir/core/stage_model_test.cc.o.d"
  "/root/repo/tests/core/workstation_test.cc" "tests/CMakeFiles/staratlas_tests.dir/core/workstation_test.cc.o" "gcc" "tests/CMakeFiles/staratlas_tests.dir/core/workstation_test.cc.o.d"
  "/root/repo/tests/genome/annotation_test.cc" "tests/CMakeFiles/staratlas_tests.dir/genome/annotation_test.cc.o" "gcc" "tests/CMakeFiles/staratlas_tests.dir/genome/annotation_test.cc.o.d"
  "/root/repo/tests/genome/model_test.cc" "tests/CMakeFiles/staratlas_tests.dir/genome/model_test.cc.o" "gcc" "tests/CMakeFiles/staratlas_tests.dir/genome/model_test.cc.o.d"
  "/root/repo/tests/genome/synthesizer_sweep_test.cc" "tests/CMakeFiles/staratlas_tests.dir/genome/synthesizer_sweep_test.cc.o" "gcc" "tests/CMakeFiles/staratlas_tests.dir/genome/synthesizer_sweep_test.cc.o.d"
  "/root/repo/tests/genome/synthesizer_test.cc" "tests/CMakeFiles/staratlas_tests.dir/genome/synthesizer_test.cc.o" "gcc" "tests/CMakeFiles/staratlas_tests.dir/genome/synthesizer_test.cc.o.d"
  "/root/repo/tests/index/footprint_test.cc" "tests/CMakeFiles/staratlas_tests.dir/index/footprint_test.cc.o" "gcc" "tests/CMakeFiles/staratlas_tests.dir/index/footprint_test.cc.o.d"
  "/root/repo/tests/index/genome_index_test.cc" "tests/CMakeFiles/staratlas_tests.dir/index/genome_index_test.cc.o" "gcc" "tests/CMakeFiles/staratlas_tests.dir/index/genome_index_test.cc.o.d"
  "/root/repo/tests/index/packed_sequence_test.cc" "tests/CMakeFiles/staratlas_tests.dir/index/packed_sequence_test.cc.o" "gcc" "tests/CMakeFiles/staratlas_tests.dir/index/packed_sequence_test.cc.o.d"
  "/root/repo/tests/index/shared_cache_test.cc" "tests/CMakeFiles/staratlas_tests.dir/index/shared_cache_test.cc.o" "gcc" "tests/CMakeFiles/staratlas_tests.dir/index/shared_cache_test.cc.o.d"
  "/root/repo/tests/index/suffix_array_test.cc" "tests/CMakeFiles/staratlas_tests.dir/index/suffix_array_test.cc.o" "gcc" "tests/CMakeFiles/staratlas_tests.dir/index/suffix_array_test.cc.o.d"
  "/root/repo/tests/io/binary_test.cc" "tests/CMakeFiles/staratlas_tests.dir/io/binary_test.cc.o" "gcc" "tests/CMakeFiles/staratlas_tests.dir/io/binary_test.cc.o.d"
  "/root/repo/tests/io/fasta_test.cc" "tests/CMakeFiles/staratlas_tests.dir/io/fasta_test.cc.o" "gcc" "tests/CMakeFiles/staratlas_tests.dir/io/fasta_test.cc.o.d"
  "/root/repo/tests/io/fastq_test.cc" "tests/CMakeFiles/staratlas_tests.dir/io/fastq_test.cc.o" "gcc" "tests/CMakeFiles/staratlas_tests.dir/io/fastq_test.cc.o.d"
  "/root/repo/tests/io/fuzz_test.cc" "tests/CMakeFiles/staratlas_tests.dir/io/fuzz_test.cc.o" "gcc" "tests/CMakeFiles/staratlas_tests.dir/io/fuzz_test.cc.o.d"
  "/root/repo/tests/io/gtf_test.cc" "tests/CMakeFiles/staratlas_tests.dir/io/gtf_test.cc.o" "gcc" "tests/CMakeFiles/staratlas_tests.dir/io/gtf_test.cc.o.d"
  "/root/repo/tests/io/text_test.cc" "tests/CMakeFiles/staratlas_tests.dir/io/text_test.cc.o" "gcc" "tests/CMakeFiles/staratlas_tests.dir/io/text_test.cc.o.d"
  "/root/repo/tests/quant/count_matrix_test.cc" "tests/CMakeFiles/staratlas_tests.dir/quant/count_matrix_test.cc.o" "gcc" "tests/CMakeFiles/staratlas_tests.dir/quant/count_matrix_test.cc.o.d"
  "/root/repo/tests/quant/deseq2_test.cc" "tests/CMakeFiles/staratlas_tests.dir/quant/deseq2_test.cc.o" "gcc" "tests/CMakeFiles/staratlas_tests.dir/quant/deseq2_test.cc.o.d"
  "/root/repo/tests/sim/catalog_test.cc" "tests/CMakeFiles/staratlas_tests.dir/sim/catalog_test.cc.o" "gcc" "tests/CMakeFiles/staratlas_tests.dir/sim/catalog_test.cc.o.d"
  "/root/repo/tests/sim/library_profile_test.cc" "tests/CMakeFiles/staratlas_tests.dir/sim/library_profile_test.cc.o" "gcc" "tests/CMakeFiles/staratlas_tests.dir/sim/library_profile_test.cc.o.d"
  "/root/repo/tests/sim/paired_simulator_test.cc" "tests/CMakeFiles/staratlas_tests.dir/sim/paired_simulator_test.cc.o" "gcc" "tests/CMakeFiles/staratlas_tests.dir/sim/paired_simulator_test.cc.o.d"
  "/root/repo/tests/sim/read_simulator_test.cc" "tests/CMakeFiles/staratlas_tests.dir/sim/read_simulator_test.cc.o" "gcc" "tests/CMakeFiles/staratlas_tests.dir/sim/read_simulator_test.cc.o.d"
  "/root/repo/tests/sra/container_test.cc" "tests/CMakeFiles/staratlas_tests.dir/sra/container_test.cc.o" "gcc" "tests/CMakeFiles/staratlas_tests.dir/sra/container_test.cc.o.d"
  "/root/repo/tests/sra/toolkit_test.cc" "tests/CMakeFiles/staratlas_tests.dir/sra/toolkit_test.cc.o" "gcc" "tests/CMakeFiles/staratlas_tests.dir/sra/toolkit_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/staratlas_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/staratlas_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/sra/CMakeFiles/staratlas_sra.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/staratlas_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/quant/CMakeFiles/staratlas_quant.dir/DependInfo.cmake"
  "/root/repo/build/src/align/CMakeFiles/staratlas_align.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/staratlas_index.dir/DependInfo.cmake"
  "/root/repo/build/src/genome/CMakeFiles/staratlas_genome.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/staratlas_io.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/staratlas_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
