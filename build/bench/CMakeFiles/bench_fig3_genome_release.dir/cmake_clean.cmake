file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_genome_release.dir/bench_fig3_genome_release.cpp.o"
  "CMakeFiles/bench_fig3_genome_release.dir/bench_fig3_genome_release.cpp.o.d"
  "bench_fig3_genome_release"
  "bench_fig3_genome_release.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_genome_release.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
