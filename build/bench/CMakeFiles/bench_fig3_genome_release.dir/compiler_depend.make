# Empty compiler generated dependencies file for bench_fig3_genome_release.
# This may be replaced when dependencies are built.
