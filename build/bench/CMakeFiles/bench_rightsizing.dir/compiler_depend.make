# Empty compiler generated dependencies file for bench_rightsizing.
# This may be replaced when dependencies are built.
