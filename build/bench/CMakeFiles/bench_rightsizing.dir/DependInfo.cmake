
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_rightsizing.cpp" "bench/CMakeFiles/bench_rightsizing.dir/bench_rightsizing.cpp.o" "gcc" "bench/CMakeFiles/bench_rightsizing.dir/bench_rightsizing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/staratlas_core.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/staratlas_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/sra/CMakeFiles/staratlas_sra.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/staratlas_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/quant/CMakeFiles/staratlas_quant.dir/DependInfo.cmake"
  "/root/repo/build/src/align/CMakeFiles/staratlas_align.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/staratlas_index.dir/DependInfo.cmake"
  "/root/repo/build/src/genome/CMakeFiles/staratlas_genome.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/staratlas_io.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/staratlas_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
