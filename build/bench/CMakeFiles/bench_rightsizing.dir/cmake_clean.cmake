file(REMOVE_RECURSE
  "CMakeFiles/bench_rightsizing.dir/bench_rightsizing.cpp.o"
  "CMakeFiles/bench_rightsizing.dir/bench_rightsizing.cpp.o.d"
  "bench_rightsizing"
  "bench_rightsizing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rightsizing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
