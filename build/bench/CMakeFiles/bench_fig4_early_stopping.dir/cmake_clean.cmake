file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_early_stopping.dir/bench_fig4_early_stopping.cpp.o"
  "CMakeFiles/bench_fig4_early_stopping.dir/bench_fig4_early_stopping.cpp.o.d"
  "bench_fig4_early_stopping"
  "bench_fig4_early_stopping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_early_stopping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
