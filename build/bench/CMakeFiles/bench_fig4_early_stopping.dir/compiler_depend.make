# Empty compiler generated dependencies file for bench_fig4_early_stopping.
# This may be replaced when dependencies are built.
