# Empty dependencies file for bench_ablation_aligner_params.
# This may be replaced when dependencies are built.
