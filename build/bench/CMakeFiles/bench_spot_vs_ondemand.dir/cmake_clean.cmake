file(REMOVE_RECURSE
  "CMakeFiles/bench_spot_vs_ondemand.dir/bench_spot_vs_ondemand.cpp.o"
  "CMakeFiles/bench_spot_vs_ondemand.dir/bench_spot_vs_ondemand.cpp.o.d"
  "bench_spot_vs_ondemand"
  "bench_spot_vs_ondemand.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_spot_vs_ondemand.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
