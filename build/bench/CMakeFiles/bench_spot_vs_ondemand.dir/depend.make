# Empty dependencies file for bench_spot_vs_ondemand.
# This may be replaced when dependencies are built.
