# Empty compiler generated dependencies file for bench_index_load.
# This may be replaced when dependencies are built.
