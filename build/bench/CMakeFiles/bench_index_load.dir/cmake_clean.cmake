file(REMOVE_RECURSE
  "CMakeFiles/bench_index_load.dir/bench_index_load.cpp.o"
  "CMakeFiles/bench_index_load.dir/bench_index_load.cpp.o.d"
  "bench_index_load"
  "bench_index_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_index_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
