file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_early_stopping.dir/bench_ablation_early_stopping.cpp.o"
  "CMakeFiles/bench_ablation_early_stopping.dir/bench_ablation_early_stopping.cpp.o.d"
  "bench_ablation_early_stopping"
  "bench_ablation_early_stopping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_early_stopping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
