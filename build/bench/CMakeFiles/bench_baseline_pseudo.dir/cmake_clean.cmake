file(REMOVE_RECURSE
  "CMakeFiles/bench_baseline_pseudo.dir/bench_baseline_pseudo.cpp.o"
  "CMakeFiles/bench_baseline_pseudo.dir/bench_baseline_pseudo.cpp.o.d"
  "bench_baseline_pseudo"
  "bench_baseline_pseudo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baseline_pseudo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
