# Empty compiler generated dependencies file for bench_baseline_pseudo.
# This may be replaced when dependencies are built.
