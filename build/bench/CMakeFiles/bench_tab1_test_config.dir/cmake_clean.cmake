file(REMOVE_RECURSE
  "CMakeFiles/bench_tab1_test_config.dir/bench_tab1_test_config.cpp.o"
  "CMakeFiles/bench_tab1_test_config.dir/bench_tab1_test_config.cpp.o.d"
  "bench_tab1_test_config"
  "bench_tab1_test_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab1_test_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
