# Empty compiler generated dependencies file for bench_tab1_test_config.
# This may be replaced when dependencies are built.
