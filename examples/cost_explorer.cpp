// Cost explorer: the right-sizing consequence of the paper's §III.A —
// the 29.5 GiB release-111 index fits instance types the 85 GiB
// release-108 index cannot, unlocking cheaper $/sample.
//
// Run:  ./cost_explorer

#include <iostream>

#include "core/report.h"
#include "core/rightsizing.h"

using namespace staratlas;

namespace {

void explore(int release, ByteSize index_bytes) {
  RightSizingQuery query;
  query.cloud.genome_release = release;
  query.cloud.index_bytes = index_bytes;
  std::cout << "=== release " << release << " index (" << index_bytes.str()
            << ") ===\n";
  Table table({"instance", "vCPU", "RAM", "feasible", "sample time",
               "$/sample", "samples/h"});
  for (const auto& option : evaluate_instances(query)) {
    table.add_row(
        {option.type->name, strf("%u", option.type->vcpus),
         option.type->memory.str(),
         option.feasible ? "yes" : "no: " + option.infeasible_reason,
         option.feasible ? strf("%.0f s", option.sample_seconds) : "-",
         option.feasible ? strf("$%.3f", option.cost_per_sample_usd) : "-",
         option.feasible ? strf("%.1f", option.samples_per_hour) : "-"});
  }
  table.print(std::cout);
  const RightSizingOption& best = best_option(evaluate_instances(query));
  std::cout << "best: " << best.type->name << " at $"
            << best.cost_per_sample_usd << " per sample\n\n";
}

}  // namespace

int main() {
  explore(108, ByteSize::from_gib(85.0));
  explore(111, ByteSize::from_gib(29.5));
  return 0;
}
