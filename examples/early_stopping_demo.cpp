// Early-stopping demo (paper §III.B): align a bulk sample and a
// single-cell sample with the EarlyStopController attached and watch the
// Log.progress.out-style telemetry drive the abort decision.
//
// Run:  ./early_stopping_demo

#include <iostream>

#include "core/pipeline.h"
#include "genome/synthesizer.h"
#include "index/genome_index.h"
#include "sim/read_simulator.h"

using namespace staratlas;

namespace {

void run_sample(const GenomeIndex& index, const Annotation& annotation,
                const ReadSimulator& simulator, const LibraryProfile& profile,
                u64 seed) {
  const ReadSet reads = simulator.simulate(profile, 8'000, Rng(seed));

  EngineConfig config;
  config.num_threads = 2;
  config.progress_check_interval = reads.size() / 50;
  AlignmentEngine engine(index, &annotation, config);

  EarlyStopPolicy policy;  // paper defaults: stop at 10% if <30% mapped
  EarlyStopController controller(policy);
  const AlignmentRun run = engine.run(reads, controller.callback());

  std::cout << "=== " << profile.name << " ("
            << library_type_name(profile.type) << ") ===\n";
  std::cout << run.progress_log.render();
  const EarlyStopDecision& decision = controller.decision();
  if (decision.stopped) {
    std::cout << "EARLY STOP at " << 100.0 * decision.at_fraction
              << "% of reads: mapped rate "
              << 100.0 * decision.observed_rate << "% < "
              << 100.0 * policy.min_mapped_rate << "% threshold\n"
              << "  -> saved aligning "
              << reads.size() - run.stats.processed << " of " << reads.size()
              << " reads ("
              << 100.0 * (1.0 - static_cast<double>(run.stats.processed) /
                                    static_cast<double>(reads.size()))
              << "% of the alignment work)\n\n";
  } else {
    std::cout << "completed: final mapped rate "
              << 100.0 * run.stats.mapped_rate() << "% (unique "
              << 100.0 * run.stats.unique_rate() << "%)\n\n";
  }
}

}  // namespace

int main() {
  GenomeSpec spec;
  spec.num_chromosomes = 2;
  spec.chromosome_length = 200'000;
  spec.genes_per_chromosome = 20;
  spec.seed = 11;
  const GenomeSynthesizer synthesizer(spec);
  const Assembly assembly = synthesizer.make_release111();
  const GenomeIndex index = GenomeIndex::build(assembly);
  const ReadSimulator simulator(assembly, synthesizer.annotation(),
                                synthesizer.repeat_regions());

  run_sample(index, synthesizer.annotation(), simulator, bulk_rna_profile(), 1);
  run_sample(index, synthesizer.annotation(), simulator, single_cell_profile(), 2);
  return 0;
}
