// Genome-release comparison (paper §III.A, Fig 3 in miniature): align the
// SAME sample against a release-108-style and a release-111-style toplevel
// index and compare execution time, index size and mapping rate.
//
// Run:  ./genome_release_comparison

#include <iostream>

#include "align/engine.h"
#include "genome/synthesizer.h"
#include "index/genome_index.h"
#include "sim/read_simulator.h"

using namespace staratlas;

int main() {
  GenomeSpec spec;
  spec.num_chromosomes = 2;
  spec.chromosome_length = 200'000;
  spec.genes_per_chromosome = 20;
  spec.seed = 23;
  const GenomeSynthesizer synthesizer(spec);

  const Assembly r108 = synthesizer.make_release108();
  const Assembly r111 = synthesizer.make_release111();

  // Reads are simulated from the (shared) chromosomes, so the same sample
  // is valid input against both releases — exactly the paper's setup.
  const ReadSimulator simulator(r111, synthesizer.annotation(),
                                synthesizer.repeat_regions());
  const ReadSet sample = simulator.simulate(bulk_rna_profile(), 6'000, Rng(5));
  std::cout << "sample: " << sample.size() << " reads ("
            << sample.fastq_bytes.str() << ")\n\n";

  double secs[2];
  double rates[2];
  int idx = 0;
  for (const Assembly* assembly : {&r108, &r111}) {
    const GenomeIndex index = GenomeIndex::build(*assembly);
    EngineConfig config;
    config.num_threads = 2;
    AlignmentEngine engine(index, &synthesizer.annotation(), config);
    const AlignmentRun run = engine.run(sample);
    secs[idx] = run.wall_seconds;
    rates[idx] = run.stats.mapped_rate();
    std::cout << "release " << assembly->release() << ":  FASTA "
              << assembly->fasta_size().str() << "  index "
              << index.stats().total().str() << "  scaffolds "
              << assembly->num_contigs() - 2 << "\n"
              << "  aligned in " << run.wall_seconds << "s  mapped "
              << 100.0 * run.stats.mapped_rate() << "%  (unique "
              << 100.0 * run.stats.unique_rate() << "%, windows scored "
              << run.stats.windows_scored << ")\n\n";
    ++idx;
  }
  std::cout << "speedup (r108 time / r111 time): " << secs[0] / secs[1]
            << "x   mapping-rate delta: "
            << 100.0 * (rates[0] - rates[1]) << " pp\n"
            << "(paper: >12x weighted average, <1% mean rate difference)\n";
  return 0;
}
