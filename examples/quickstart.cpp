// Quickstart: the staratlas public API in one file.
//
// 1. Synthesize a genome + annotation (release-111-style toplevel).
// 2. Build the STAR-like suffix-array index.
// 3. Simulate a bulk RNA-seq sample.
// 4. Align it with GeneCounts and print STAR-style statistics.
//
// Run:  ./quickstart

#include <iostream>

#include "align/engine.h"
#include "genome/synthesizer.h"
#include "index/genome_index.h"
#include "sim/read_simulator.h"

using namespace staratlas;

int main() {
  // 1. Genome: 2 chromosomes, ~40 genes, plus the toplevel scaffolds of a
  //    release-111-style assembly.
  GenomeSpec spec;
  spec.num_chromosomes = 2;
  spec.chromosome_length = 200'000;
  spec.genes_per_chromosome = 20;
  spec.seed = 7;
  const GenomeSynthesizer synthesizer(spec);
  const Assembly assembly = synthesizer.make_release111();
  std::cout << "assembly: " << assembly.species() << " release "
            << assembly.release() << ", " << assembly.num_contigs()
            << " contigs, " << assembly.total_length() << " bp ("
            << assembly.fasta_size().str() << " as FASTA)\n";

  // 2. Index.
  const GenomeIndex index = GenomeIndex::build(assembly);
  const IndexStats istats = index.stats();
  std::cout << "index: " << istats.total().str() << " (text "
            << istats.text_bytes.str() << ", SA "
            << istats.suffix_array_bytes.str() << ", LUT k="
            << istats.prefix_lut_k << ")\n";

  // 3. A bulk RNA-seq sample.
  const ReadSimulator simulator(assembly, synthesizer.annotation(),
                                synthesizer.repeat_regions());
  const ReadSet reads =
      simulator.simulate(bulk_rna_profile(), 5'000, Rng(42));
  std::cout << "sample: " << reads.size() << " reads, "
            << reads.fastq_bytes.str() << " of FASTQ\n\n";

  // 4. Align with GeneCounts.
  EngineConfig config;
  config.num_threads = 2;
  AlignmentEngine engine(index, &synthesizer.annotation(), config);
  const AlignmentRun run = engine.run(reads);

  std::cout << "aligned " << run.stats.processed << " reads in "
            << run.wall_seconds << "s\n"
            << "  uniquely mapped: " << run.stats.unique << "\n"
            << "  multi-mapped:    " << run.stats.multi << "\n"
            << "  too many loci:   " << run.stats.too_many << "\n"
            << "  unmapped:        " << run.stats.unmapped << "\n"
            << "  mapping rate:    " << 100.0 * run.stats.mapped_rate()
            << "%\n\n";

  // Top-5 expressed genes from the GeneCounts table.
  std::vector<std::pair<u64, GeneId>> ranked;
  for (usize g = 0; g < run.gene_counts.per_gene.size(); ++g) {
    ranked.push_back({run.gene_counts.per_gene[g], static_cast<GeneId>(g)});
  }
  std::sort(ranked.rbegin(), ranked.rend());
  std::cout << "top expressed genes (unique reads):\n";
  for (usize i = 0; i < 5 && i < ranked.size(); ++i) {
    std::cout << "  "
              << synthesizer.annotation().gene(ranked[i].second).id << "  "
              << ranked[i].first << "\n";
  }
  std::cout << "\nGeneCounts buckets: noFeature="
            << run.gene_counts.n_no_feature
            << " ambiguous=" << run.gene_counts.n_ambiguous
            << " multimapping=" << run.gene_counts.n_multimapping
            << " unmapped=" << run.gene_counts.n_unmapped << "\n";
  return 0;
}
