// Transcriptomics Atlas end to end: run the paper's Fig 2 cloud
// architecture in virtual time over a 300-accession catalog, with and
// without the paper's two optimizations, and print throughput/cost.
//
// Run:  ./transcriptomics_atlas

#include <iostream>

#include "core/atlas_sim.h"
#include "core/report.h"

using namespace staratlas;

namespace {

AtlasReport run_config(const std::vector<SraSample>& catalog, int release,
                       bool early_stopping, bool spot) {
  AtlasConfig config;
  config.use_release(release);
  config.early_stop.enabled = early_stopping;
  config.spot = spot;
  config.asg.max_size = 16;
  config.seed = 99;
  // The release-108 index does not fit smaller types; r6a.4xlarge holds both.
  config.instance_type = "r6a.4xlarge";
  AtlasSimulation sim(catalog, config);
  return sim.run();
}

std::string row_label(int release, bool es, bool spot) {
  std::string label = "r" + std::to_string(release);
  label += es ? " +earlystop" : "           ";
  label += spot ? " +spot" : "      ";
  return label;
}

}  // namespace

int main() {
  CatalogSpec catalog_spec;
  catalog_spec.num_samples = 300;
  catalog_spec.seed = 17;
  const std::vector<SraSample> catalog = make_catalog(catalog_spec);
  const CatalogSummary summary = summarize(catalog);
  std::cout << "catalog: " << summary.num_samples << " accessions, "
            << summary.num_single_cell << " single-cell, "
            << summary.total_fastq.str() << " total FASTQ (mean "
            << summary.mean_fastq.str() << ")\n\n";

  Table table({"configuration", "makespan", "cost", "$/sample",
               "samples/h", "early-stopped", "wasted align h"});
  for (const auto& [release, es, spot] :
       {std::tuple{108, false, false}, {111, false, false},
        {111, true, false}, {111, true, true}}) {
    const AtlasReport report = run_config(catalog, release, es, spot);
    table.add_row({row_label(release, es, spot),
                   strf("%.1f h", report.makespan_hours),
                   strf("$%.0f", report.total_cost_usd),
                   strf("$%.2f", report.cost_per_sample_usd()),
                   strf("%.1f", report.throughput_samples_per_hour()),
                   strf("%zu", report.samples_early_stopped),
                   strf("%.1f", report.unnecessary_align_hours)});
  }
  table.print(std::cout);
  std::cout << "\n(virtual time; stage durations anchored to the paper's "
               "measured per-GiB STAR cost)\n";
  return 0;
}
