// staratlas_cli — a file-based command-line front end to the library,
// mirroring a miniature sra-tools + STAR workflow:
//
//   staratlas_cli synthesize --out-dir data [--release 111] [--seed 42]
//       writes genome.fa (toplevel), annotation.gtf
//   staratlas_cli index --fasta data/genome.fa --out data/genome.idx
//   staratlas_cli simulate --fasta data/genome.fa --gtf data/annotation.gtf ...
//       --profile bulk|single_cell --reads 5000 --out data/sample.fastq
//   staratlas_cli align --index data/genome.idx --fastq data/sample.fastq \
//       --gtf data/annotation.gtf --out-prefix data/sample ...
//       [--threads 4] [--shards 4] [--early-stop]
//       writes sample.sam, sample.SJ.out.tab, sample.ReadsPerGene.out.tab,
//       sample.Log.final.out
//   staratlas_cli serve --index data/genome.idx --socket /tmp/sa.sock
//       [--gtf data/annotation.gtf] [--workers 2] [--chunk 256]
//       long-running multi-tenant daemon; loads the index once and aligns
//       every submission against it until a client sends DRAIN
//   staratlas_cli submit --socket /tmp/sa.sock --fastq data/sample.fastq
//       --tenant acme [--name sample] [--out-prefix data/sample]
//       hands one sample to a running daemon; staratlas_cli submit
//       --socket /tmp/sa.sock --drain gracefully drains it
//
// Run without arguments for usage. Exit code 0 on success, 1 on usage
// errors, 2 on runtime failures.

#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "align/engine.h"
#include "common/error.h"
#include "align/final_log.h"
#include "align/junctions.h"
#include "align/sam.h"
#include "align/run_request.h"
#include "align/sharded.h"
#include "core/early_stopping.h"
#include "genome/synthesizer.h"
#include "index/genome_index.h"
#include "io/fasta.h"
#include "io/fastq.h"
#include "io/gtf.h"
#include "service/rpc.h"
#include "service/service.h"
#include "sim/read_simulator.h"

using namespace staratlas;

namespace {

class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        throw InvalidArgument("expected --flag, got '" + key + "'");
      }
      key = key.substr(2);
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[key] = argv[++i];
      } else {
        values_[key] = "";  // boolean flag
      }
    }
  }

  std::string get(const std::string& key, const std::string& fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  std::string require(const std::string& key) const {
    auto it = values_.find(key);
    if (it == values_.end()) throw InvalidArgument("missing --" + key);
    return it->second;
  }
  bool has(const std::string& key) const { return values_.count(key) > 0; }
  u64 get_u64(const std::string& key, u64 fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stoull(it->second);
  }

 private:
  std::map<std::string, std::string> values_;
};

int usage() {
  std::cerr <<
      "usage: staratlas_cli <command> [flags]\n"
      "  synthesize --out-dir DIR [--release 108|111] [--seed N]\n"
      "  index      --fasta FILE --out FILE [--release N] [--threads N]\n"
      "             [--format v3|v4]   (v4 = 2-bit packed genome text)\n"
      "  simulate   --fasta FILE --gtf FILE --out FILE\n"
      "             [--profile bulk|single_cell] [--reads N] [--seed N]\n"
      "  align      --index FILE --fastq FILE --out-prefix P\n"
      "             [--gtf FILE] [--threads N] [--shards N] [--early-stop]\n"
      "             [--no-sam]\n";
  std::cerr <<
      "  serve      --index FILE --socket PATH\n"
      "             [--gtf FILE] [--workers N] [--chunk N]\n"
      "  submit     --socket PATH --fastq FILE --tenant NAME\n"
      "             [--name NAME] [--out-prefix P]\n"
      "  submit     --socket PATH --drain\n";
  return 1;
}

// The synthesize/simulate commands share one genome spec so annotation and
// repeat regions are reproducible from the seed alone.
GenomeSpec cli_spec(u64 seed) {
  GenomeSpec spec;
  spec.num_chromosomes = 2;
  spec.chromosome_length = 200'000;
  spec.genes_per_chromosome = 20;
  spec.seed = seed;
  return spec;
}

int cmd_synthesize(const Args& args) {
  const std::string out_dir = args.require("out-dir");
  const int release = static_cast<int>(args.get_u64("release", 111));
  const u64 seed = args.get_u64("seed", 42);
  std::filesystem::create_directories(out_dir);

  const GenomeSynthesizer synthesizer(cli_spec(seed));
  const Assembly assembly = synthesizer.make_release(
      release == 108 ? release108_style() : release111_style());
  write_fasta_file(out_dir + "/genome.fa", assembly.to_fasta());
  write_gtf_file(out_dir + "/annotation.gtf",
                 synthesizer.annotation().to_gtf(assembly));
  std::cout << "wrote " << out_dir << "/genome.fa ("
            << assembly.fasta_size().str() << ", " << assembly.num_contigs()
            << " contigs, release " << release << ")\n"
            << "wrote " << out_dir << "/annotation.gtf ("
            << synthesizer.annotation().num_genes() << " genes)\n";
  return 0;
}

int cmd_index(const Args& args) {
  const std::string fasta = args.require("fasta");
  const std::string out = args.require("out");
  const int release = static_cast<int>(args.get_u64("release", 0));
  const Assembly assembly = Assembly::from_fasta(
      "cli", release, AssemblyType::kToplevel, read_fasta_file(fasta));
  IndexParams params;
  params.num_threads = args.get_u64("threads", 1);
  const std::string format = args.get("format", "v3");
  u32 version = GenomeIndex::kVersionLatest;
  if (format == "v4") {
    version = GenomeIndex::kVersionV4;
  } else if (format != "v3") {
    std::cerr << "error: --format must be v3 or v4, got '" << format << "'\n";
    return 2;
  }
  const GenomeIndex index = GenomeIndex::build(assembly, params);
  index.save_file(out, version);
  const IndexStats stats = index.stats();
  std::cout << "indexed " << stats.genome_length << " bp into " << out << " ("
            << stats.total().str() << ", LUT k=" << stats.prefix_lut_k
            << (format == "v4" ? ", packed v4" : "") << ")\n";
  return 0;
}

int cmd_simulate(const Args& args) {
  const std::string fasta = args.require("fasta");
  const std::string gtf = args.require("gtf");
  const std::string out = args.require("out");
  const std::string profile_name = args.get("profile", "bulk");
  const usize num_reads = args.get_u64("reads", 5'000);
  const u64 seed = args.get_u64("seed", 7);

  const Assembly assembly = Assembly::from_fasta(
      "cli", 0, AssemblyType::kToplevel, read_fasta_file(fasta));
  const Annotation annotation =
      Annotation::from_gtf(read_gtf_file(gtf), assembly);

  // Recover repeat regions is not possible from FASTA alone; simulate
  // without repeat reads when running from files.
  LibraryProfile profile = profile_name == "single_cell"
                               ? single_cell_profile()
                               : bulk_rna_profile();
  profile.exonic_fraction += profile.repeat_fraction;
  profile.repeat_fraction = 0.0;
  profile.validate();

  const ReadSimulator simulator(assembly, annotation, {});
  const ReadSet reads = simulator.simulate(profile, num_reads, Rng(seed));
  write_fastq_file(out, reads.reads);
  std::cout << "wrote " << out << " (" << reads.size() << " reads, "
            << reads.fastq_bytes.str() << ", profile " << profile.name
            << ")\n";
  return 0;
}

int cmd_align(const Args& args) {
  const std::string index_path = args.require("index");
  const std::string fastq = args.require("fastq");
  const std::string prefix = args.require("out-prefix");

  const GenomeIndex index = GenomeIndex::load_file(index_path);
  const ReadSet reads = make_read_set(read_fastq_file(fastq));

  Annotation annotation;
  const bool quant = args.has("gtf");
  if (quant) {
    // Rebuild a throwaway assembly view for contig-name resolution.
    std::vector<FastaRecord> records;
    for (const ContigMeta& contig : index.contigs()) {
      // text_substr decodes when the index is packed (v4), so the GTF path
      // works against any index version.
      records.push_back({contig.name, "",
                         index.text_substr(contig.text_offset,
                                           contig.length)});
    }
    const Assembly assembly =
        Assembly::from_fasta("cli", index.release(), index.assembly_type(),
                             records);
    annotation = Annotation::from_gtf(read_gtf_file(args.require("gtf")),
                                      assembly);
  }

  EngineConfig config;
  config.num_threads = args.get_u64("threads", 2);
  config.quant_gene_counts = quant;
  config.collect_junctions = true;

  const usize shards = args.get_u64("shards", 1);
  AlignmentEngine engine(index, quant ? &annotation : nullptr, config);

  // All modes go through one request; execute() owns validation (e.g.
  // early-stop x shards rejection) so the CLI carries no mode rules.
  EngineRunRequest request;
  std::string raw;  // keeps sharded input alive across execute()
  if (shards > 1) {
    // Scatter/gather over byte ranges of the file; merged output is
    // byte-identical to the unsharded run.
    std::ifstream in(fastq, std::ios::binary);
    std::stringstream buf;
    buf << in.rdbuf();
    raw = std::move(buf).str();
    request.fastq_text = raw;
    request.num_shards = shards;
  } else {
    request.reads = &reads;
  }
  if (args.has("early-stop")) {
    request.early_stop = EarlyStopPolicy{};  // enabled by default
  }

  AlignmentRun run;
  try {
    run = engine.execute(request);
  } catch (const InvalidArgument& error) {
    std::cerr << error.what() << "\n";
    return 1;
  }

  // Log.final.out
  double mean_length = 0.0;
  for (const auto& read : reads.reads) {
    mean_length += static_cast<double>(read.sequence.size());
  }
  mean_length /= static_cast<double>(reads.size());
  {
    std::ofstream log(prefix + ".Log.final.out");
    log << render_final_log(run, reads.size(), mean_length);
  }
  // SJ.out.tab
  {
    std::ofstream sj(prefix + ".SJ.out.tab");
    write_junctions_tsv(sj, run.junctions, index);
  }
  // ReadsPerGene.out.tab
  if (quant) {
    std::ofstream counts(prefix + ".ReadsPerGene.out.tab");
    run.gene_counts.write_tsv(counts, annotation);
  }
  // SAM (re-aligns to recover per-read hits; fine at CLI scale).
  if (!args.has("no-sam") && !run.aborted) {
    std::ofstream sam_out(prefix + ".sam");
    SamWriter writer(sam_out, index);
    const Aligner aligner(index, config.params);
    MappingStats scratch;
    for (const auto& read : reads.reads) {
      writer.write_read(read, aligner.align(read.sequence, scratch));
    }
    std::cout << "wrote " << prefix << ".sam (" << writer.records_written()
              << " records)\n";
  }

  std::cout << "aligned " << run.stats.processed << "/" << reads.size()
            << " reads: " << 100.0 * run.stats.mapped_rate() << "% mapped"
            << (run.aborted ? " [EARLY-STOPPED]" : "") << "\n"
            << "wrote " << prefix << ".Log.final.out, " << prefix
            << ".SJ.out.tab" << (quant ? ", " + prefix + ".ReadsPerGene.out.tab" : "")
            << "\n";
  return 0;
}

// Contig-name resolution for the GTF against a loaded index (the serve
// path has no FASTA on hand; text_substr decodes packed v4 indexes too).
Annotation annotation_from_index(const GenomeIndex& index,
                                 const std::string& gtf_path) {
  std::vector<FastaRecord> records;
  for (const ContigMeta& contig : index.contigs()) {
    records.push_back(
        {contig.name, "",
         index.text_substr(contig.text_offset, contig.length)});
  }
  const Assembly assembly = Assembly::from_fasta(
      "cli", index.release(), index.assembly_type(), records);
  return Annotation::from_gtf(read_gtf_file(gtf_path), assembly);
}

int cmd_serve(const Args& args) {
  const std::string index_path = args.require("index");
  const std::string socket_path = args.require("socket");

  auto index = std::make_shared<const GenomeIndex>(
      GenomeIndex::load_file(index_path));
  const bool quant = args.has("gtf");
  Annotation annotation;
  if (quant) {
    annotation = annotation_from_index(*index, args.require("gtf"));
  }

  ServiceConfig config;
  config.engine.num_threads = args.get_u64("workers", 2);
  config.engine.quant_gene_counts = quant;
  config.engine.collect_junctions = true;
  config.chunk_size = args.get_u64("chunk", 256);

  AlignmentService service(index, quant ? &annotation : nullptr, config);
  ServiceServer server(service, quant ? &annotation : nullptr, socket_path);
  std::cout << "serving " << index->stats().genome_length << " bp index on "
            << socket_path << " (" << config.engine.num_threads
            << " workers, chunk " << config.chunk_size
            << " reads); DRAIN to stop\n";
  // A DRAIN request flips the service into draining; exit once it does.
  while (!service.draining()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  server.stop();
  const auto metrics = service.metrics();
  std::cout << "drained: " << metrics.samples_completed << " samples, "
            << metrics.reads_completed << " reads across "
            << metrics.tenants.size() << " tenant(s)\n";
  return 0;
}

int cmd_submit(const Args& args) {
  const std::string socket_path = args.require("socket");
  ServiceClient client(socket_path);
  if (args.has("drain")) {
    const auto response = client.drain();
    if (!response.ok) {
      std::cerr << "error: drain failed: " << response.message << "\n";
      return 2;
    }
    std::cout << "service drained\n";
    return 0;
  }

  const std::string fastq_path = args.require("fastq");
  const std::string tenant = args.require("tenant");
  const std::string name = args.get(
      "name", std::filesystem::path(fastq_path).stem().string());
  std::ifstream in(fastq_path, std::ios::binary);
  if (!in) {
    std::cerr << "error: cannot read " << fastq_path << "\n";
    return 2;
  }
  std::stringstream fastq;
  fastq << in.rdbuf();

  const auto response = client.submit(tenant, name, fastq.str());
  if (!response.ok) {
    std::cerr << "rejected (" << response.error_code
              << "): " << response.message << "\n";
    return 2;
  }
  if (args.has("out-prefix")) {
    const std::string out = args.require("out-prefix") + ".service.out";
    std::ofstream artifact(out);
    artifact << response.body;
    std::cout << "wrote " << out << " (" << response.body.size()
              << " bytes)\n";
  } else {
    std::cout << response.body;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    const Args args(argc, argv);
    if (command == "synthesize") return cmd_synthesize(args);
    if (command == "index") return cmd_index(args);
    if (command == "simulate") return cmd_simulate(args);
    if (command == "align") return cmd_align(args);
    if (command == "serve") return cmd_serve(args);
    if (command == "submit") return cmd_submit(args);
    std::cerr << "unknown command: " << command << "\n";
    return usage();
  } catch (const Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
