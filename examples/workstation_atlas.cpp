// Workstation atlas (paper's conclusion: the optimizations apply "outside
// the cloud environment (HPC or workstations)"): process a small batch of
// SRA accessions end to end on this machine — prefetch, fasterq-dump,
// alignment with early stopping, GeneCounts — then DESeq2-normalize the
// accepted samples.
//
// Run:  ./workstation_atlas

#include <iostream>

#include "core/workstation.h"
#include "genome/synthesizer.h"
#include "index/genome_index.h"

using namespace staratlas;

int main() {
  GenomeSpec spec;
  spec.num_chromosomes = 2;
  spec.chromosome_length = 200'000;
  spec.genes_per_chromosome = 20;
  spec.seed = 33;
  const GenomeSynthesizer synthesizer(spec);
  const Assembly assembly = synthesizer.make_release111();
  const GenomeIndex index = GenomeIndex::build(assembly);

  CatalogSpec catalog_spec;
  catalog_spec.num_samples = 10;
  catalog_spec.single_cell_fraction = 0.2;
  catalog_spec.reads_at_mean = 3'000;
  catalog_spec.min_reads = 1'500;
  catalog_spec.seed = 19;
  auto simulator = std::make_shared<ReadSimulator>(
      assembly, synthesizer.annotation(), synthesizer.repeat_regions());
  SraRepository repository(make_catalog(catalog_spec), simulator);

  std::vector<std::string> accessions;
  for (const auto& sample : repository.catalog()) {
    accessions.push_back(sample.accession);
  }

  PipelineConfig config;
  config.engine.num_threads = 4;
  config.engine.progress_check_interval = 200;
  const WorkstationReport report = run_workstation_batch(
      index, synthesizer.annotation(), repository, accessions, config);

  std::cout << "processed " << report.samples.size() << " accessions in "
            << report.align_wall_seconds << "s of alignment:\n";
  for (const SampleResult& sample : report.samples) {
    std::cout << "  " << sample.accession << "  "
              << library_type_name(sample.library_type) << "  ";
    if (sample.early_stop.stopped) {
      std::cout << "EARLY-STOPPED at "
                << 100.0 * sample.early_stop.at_fraction << "% (rate "
                << 100.0 * sample.early_stop.observed_rate << "%)\n";
    } else {
      std::cout << "mapped " << 100.0 * sample.stats.mapped_rate() << "%"
                << (sample.accepted ? "" : " [rejected]") << "\n";
    }
  }
  std::cout << "\natlas content: " << report.accepted
            << " accepted samples x " << report.counts.num_genes()
            << " genes\n";
  if (!report.size_factors.empty()) {
    std::cout << "DESeq2 size factors:";
    for (double factor : report.size_factors) {
      std::cout << " " << factor;
    }
    std::cout << "\n";
  }
  return 0;
}
