#include "service/rpc.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <sstream>

#include "common/error.h"
#include "common/stats.h"
#include "io/fastq.h"
#include "service/artifacts.h"

namespace staratlas {

namespace {

// ---- framing helpers (blocking fd I/O with partial-transfer loops) ----

bool send_all(int fd, const char* data, usize len) {
  while (len > 0) {
    // MSG_NOSIGNAL: a peer that hung up turns into an error return, not a
    // process-killing SIGPIPE on a server thread.
    const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= static_cast<usize>(n);
  }
  return true;
}

bool send_all(int fd, const std::string& data) {
  return send_all(fd, data.data(), data.size());
}

bool recv_all(int fd, char* data, usize len) {
  while (len > 0) {
    const ssize_t n = ::recv(fd, data, len, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    data += n;
    len -= static_cast<usize>(n);
  }
  return true;
}

/// Reads up to (and including) '\n'; false on EOF before any byte.
/// Headers are tens of bytes, so byte-at-a-time reads are fine here.
bool recv_line(int fd, std::string& line, usize max_len = 4096) {
  line.clear();
  char c = 0;
  while (line.size() < max_len) {
    if (!recv_all(fd, &c, 1)) return false;
    if (c == '\n') return true;
    line.push_back(c);
  }
  return false;
}

bool token_ok(const std::string& token) {
  if (token.empty()) return false;
  for (char c : token) {
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') return false;
  }
  return true;
}

bool send_ok(int fd, const std::string& body) {
  std::string header = "OK " + std::to_string(body.size()) + "\n";
  return send_all(fd, header) && send_all(fd, body);
}

bool send_err(int fd, const std::string& code, const std::string& message) {
  return send_all(fd, "ERR " + code + " " + message + "\n");
}

std::string render_metrics(const AlignmentService::Metrics& metrics) {
  std::ostringstream out;
  out << "samples_completed\t" << metrics.samples_completed << "\n";
  out << "reads_completed\t" << metrics.reads_completed << "\n";
  out << "chunks_dispatched\t" << metrics.chunks_dispatched << "\n";
  out << "queue_depth_samples\t" << metrics.queue_depth_samples << "\n";
  out << "queue_high_water\t" << metrics.queue_high_water << "\n";
  out << "index_cache_loads\t" << metrics.index_cache_loads << "\n";
  out << "index_cache_hits\t" << metrics.index_cache_hits << "\n";
  for (const auto& [tenant, tm] : metrics.tenants) {
    out << "tenant\t" << tenant << "\taccepted=" << tm.accepted
        << "\trejected=" << tm.rejected << "\tcompleted=" << tm.completed
        << "\trejected_at_drain=" << tm.rejected_at_drain
        << "\treads=" << tm.reads_completed
        << "\tqueue_high_water=" << tm.queue_high_water
        << "\tp50_ms=" << percentile(tm.latencies, 50.0) * 1e3
        << "\tp99_ms=" << percentile(tm.latencies, 99.0) * 1e3 << "\n";
  }
  return out.str();
}

int connect_unix(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw InvalidArgument("socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw IoError("socket(): " + std::string(std::strerror(errno)));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    throw IoError("connect(" + path + "): " + std::strerror(err));
  }
  return fd;
}

}  // namespace

// ---- server ----------------------------------------------------------

ServiceServer::ServiceServer(AlignmentService& service,
                             const Annotation* annotation,
                             std::string socket_path)
    : service_(&service),
      annotation_(annotation),
      socket_path_(std::move(socket_path)) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path_.size() >= sizeof(addr.sun_path)) {
    throw InvalidArgument("socket path too long: " + socket_path_);
  }
  std::memcpy(addr.sun_path, socket_path_.c_str(), socket_path_.size() + 1);
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw IoError("socket(): " + std::string(std::strerror(errno)));
  }
  ::unlink(socket_path_.c_str());  // replace a stale socket file
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(listen_fd_, 64) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw IoError("bind/listen(" + socket_path_ +
                  "): " + std::strerror(err));
  }
  acceptor_ = std::thread([this] { accept_loop(); });
}

ServiceServer::~ServiceServer() { stop(); }

void ServiceServer::stop() {
  if (stopping_.exchange(true)) return;
  // Shutting down the listening socket pops accept() with an error (the
  // fd is closed only after the acceptor exits — closing an fd another
  // thread is blocked on races against fd reuse); shutting down client
  // fds pops any blocked recv so connection threads unwind.
  ::shutdown(listen_fd_, SHUT_RDWR);
  {
    std::lock_guard lock(mu_);
    for (int fd : open_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  if (acceptor_.joinable()) acceptor_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  std::vector<std::thread> connections;
  {
    std::lock_guard lock(mu_);
    connections.swap(connections_);
  }
  for (auto& thread : connections) thread.join();
  ::unlink(socket_path_.c_str());
}

void ServiceServer::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listen socket closed: server stopping
    }
    std::lock_guard lock(mu_);
    if (stopping_.load()) {
      ::close(fd);
      return;
    }
    open_fds_.push_back(fd);
    connections_.emplace_back([this, fd] { serve_connection(fd); });
  }
}

void ServiceServer::serve_connection(int fd) {
  std::string line;
  while (recv_line(fd, line)) {
    std::istringstream header(line);
    std::string verb;
    header >> verb;
    if (verb == "PING") {
      if (!send_ok(fd, "pong\n")) break;
    } else if (verb == "STATS") {
      if (!send_ok(fd, render_metrics(service_->metrics()))) break;
    } else if (verb == "DRAIN") {
      service_->drain();
      if (!send_ok(fd, "")) break;
    } else if (verb == "SUBMIT") {
      std::string tenant;
      std::string name;
      u64 nbytes = 0;
      header >> tenant >> name >> nbytes;
      if (header.fail() || !token_ok(tenant) || !token_ok(name)) {
        send_err(fd, "internal", "malformed SUBMIT header");
        break;  // framing is lost: drop the connection
      }
      std::string payload(nbytes, '\0');
      if (!recv_all(fd, payload.data(), payload.size())) break;
      SampleSubmission submission;
      submission.tenant = std::move(tenant);
      submission.name = std::move(name);
      try {
        std::istringstream fastq(payload);
        submission.reads = make_read_set(read_fastq(fastq));
      } catch (const Error& e) {
        if (!send_err(fd, "parse_error", e.what())) break;
        continue;
      }
      AlignmentService::Ticket ticket = service_->submit(std::move(submission));
      if (ticket.status != SubmitStatus::kAccepted) {
        if (!send_err(fd, submit_status_name(ticket.status),
                      "submission rejected")) {
          break;
        }
        continue;
      }
      const SampleResult result = ticket.result.get();
      if (result.rejected_at_drain) {
        if (!send_err(fd, "draining", "sample rejected at drain")) break;
        continue;
      }
      const std::string body = render_sample_artifacts(
          result, service_->index(), annotation_);
      if (!send_ok(fd, body)) break;
    } else {
      send_err(fd, "internal", "unknown verb: " + verb);
      break;
    }
  }
  {
    // Deregister before closing so stop() never shutdown()s a closed
    // (and possibly reused) fd number.
    std::lock_guard lock(mu_);
    open_fds_.erase(std::remove(open_fds_.begin(), open_fds_.end(), fd),
                    open_fds_.end());
  }
  ::close(fd);
}

// ---- client ----------------------------------------------------------

ServiceClient::ServiceClient(const std::string& socket_path)
    : fd_(connect_unix(socket_path)) {}

ServiceClient::~ServiceClient() {
  if (fd_ >= 0) ::close(fd_);
}

ServiceClient::Response ServiceClient::request(const std::string& header,
                                               const std::string& payload) {
  Response response;
  if (!send_all(fd_, header) || !send_all(fd_, payload)) {
    throw IoError("service connection lost while sending");
  }
  std::string line;
  if (!recv_line(fd_, line)) {
    throw IoError("service connection closed before a response");
  }
  std::istringstream reply(line);
  std::string status;
  reply >> status;
  if (status == "OK") {
    u64 nbytes = 0;
    reply >> nbytes;
    response.body.assign(nbytes, '\0');
    if (!recv_all(fd_, response.body.data(), response.body.size())) {
      throw IoError("service connection closed mid-body");
    }
    response.ok = true;
    return response;
  }
  if (status == "ERR") {
    reply >> response.error_code;
    std::getline(reply, response.message);
    if (!response.message.empty() && response.message.front() == ' ') {
      response.message.erase(response.message.begin());
    }
    return response;
  }
  throw IoError("malformed service response: " + line);
}

ServiceClient::Response ServiceClient::submit(const std::string& tenant,
                                              const std::string& name,
                                              const std::string& fastq) {
  if (!token_ok(tenant) || !token_ok(name)) {
    throw InvalidArgument("tenant and sample names must be non-empty and "
                          "whitespace-free");
  }
  return request("SUBMIT " + tenant + " " + name + " " +
                     std::to_string(fastq.size()) + "\n",
                 fastq);
}

ServiceClient::Response ServiceClient::stats() { return request("STATS\n", ""); }

ServiceClient::Response ServiceClient::ping() { return request("PING\n", ""); }

ServiceClient::Response ServiceClient::drain() { return request("DRAIN\n", ""); }

}  // namespace staratlas
