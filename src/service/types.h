// Shared vocabulary of the multi-tenant alignment service: tenant
// identities and profiles, sample submissions, and per-sample results.
//
// A submission is an in-memory ReadSet tagged with a tenant; the RPC
// layer (service/rpc.h) parses FASTQ payloads into this form, and the
// in-process API (service/service.h) accepts it directly. Results carry
// everything the CLI align path writes — outcomes, stats, gene counts,
// junctions — so byte-identity against the unsharded CLI path is a
// string comparison of the rendered artifacts.
#pragma once

#include <string>
#include <vector>

#include "align/gene_counts.h"
#include "align/junctions.h"
#include "align/record.h"
#include "common/types.h"
#include "io/fastq.h"

namespace staratlas {

using TenantId = std::string;

/// Per-tenant scheduling and admission knobs. Unknown tenants get the
/// service's default profile on first submission.
struct TenantProfile {
  /// Fair-share weight: a tenant with weight 2 receives twice the engine
  /// share of a weight-1 tenant while both are backlogged.
  double weight = 1.0;
  /// Admission cap: queued + in-flight samples for this tenant.
  usize max_queued_samples = 64;
  /// Admission cap: queued + in-flight reads for this tenant.
  u64 max_queued_reads = 4u << 20;
};

/// Why a submission was (not) admitted.
enum class SubmitStatus : u8 {
  kAccepted = 0,
  kTenantQueueFull,  ///< per-tenant sample or read cap reached
  kGlobalQueueFull,  ///< service-wide sample or read cap reached
  kDraining,         ///< service is draining / shut down
};

const char* submit_status_name(SubmitStatus status);

struct SampleSubmission {
  TenantId tenant;
  std::string name;
  ReadSet reads;
};

/// Completed (or drain-rejected) sample. The accumulators merge the
/// chunk-granular sinks field-wise, so stats/counts/junctions — and the
/// per-read outcomes — are identical to an AlignmentEngine::run over the
/// same reads.
struct SampleResult {
  TenantId tenant;
  std::string name;
  u64 total_reads = 0;
  double mean_read_length = 0.0;
  MappingStats stats;
  GeneCountsTable gene_counts;  ///< empty when quant is off
  std::vector<ReadOutcome> outcomes;
  std::vector<Junction> junctions;  ///< empty unless collecting
  double queue_secs = 0.0;    ///< submit -> first chunk dispatched
  double latency_secs = 0.0;  ///< submit -> completion
  /// True when the sample was still queued at drain time: the service
  /// rejected it cleanly instead of aligning it (its accumulators above
  /// are empty).
  bool rejected_at_drain = false;
};

}  // namespace staratlas
