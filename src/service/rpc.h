// Local RPC front of the alignment service: a Unix-domain stream socket
// with a tiny text-framed protocol, so `staratlas submit` processes hand
// samples to one long-lived `staratlas serve` daemon that owns the
// loaded index (the paper's load-once index amortized across every
// submission on the machine, without shared memory segments).
//
// Wire protocol (one request per line, big payloads length-prefixed):
//
//   SUBMIT <tenant> <name> <nbytes>\n<nbytes of FASTQ>
//     -> OK <nbytes>\n<artifact text>      (sample completed)
//     -> ERR <code> <message>\n            (rejected / failed)
//   STATS\n  -> OK <nbytes>\n<metrics text>
//   PING\n   -> OK 5\npong\n
//   DRAIN\n  -> OK 0\n                     (after the drain completes)
//
// <code> is a submit_status_name (backpressure propagates to the client
// verbatim: tenant_queue_full means THIS tenant is over its share),
// "parse_error" for malformed FASTQ, or "internal".
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "genome/annotation.h"
#include "service/service.h"

namespace staratlas {

/// Serves one AlignmentService over a Unix-domain socket. Connections are
/// handled on their own threads; a SUBMIT blocks its connection (not the
/// server) until the sample completes, so one client naturally pipelines
/// by opening several connections.
class ServiceServer {
 public:
  /// Binds and listens on `socket_path` (an existing socket file is
  /// replaced) and starts the accept loop. `annotation` may be null
  /// (gene-count sections are skipped in responses). Throws IoError on
  /// bind/listen failure.
  ServiceServer(AlignmentService& service, const Annotation* annotation,
                std::string socket_path);
  ~ServiceServer();

  ServiceServer(const ServiceServer&) = delete;
  ServiceServer& operator=(const ServiceServer&) = delete;

  const std::string& socket_path() const { return socket_path_; }

  /// Stops accepting, unblocks in-flight connections and joins every
  /// connection thread. Does NOT drain the service (a DRAIN request or
  /// the service owner does that). Idempotent.
  void stop();

 private:
  void accept_loop();
  void serve_connection(int fd);

  AlignmentService* service_;
  const Annotation* annotation_;
  std::string socket_path_;
  int listen_fd_ = -1;
  std::atomic<bool> stopping_{false};
  std::thread acceptor_;
  std::mutex mu_;  ///< connection registry
  std::vector<int> open_fds_;
  std::vector<std::thread> connections_;
};

/// One connection to a ServiceServer. Methods are synchronous and must
/// not be called concurrently on one client; open several clients to
/// pipeline submissions.
class ServiceClient {
 public:
  /// What came back for a request.
  struct Response {
    bool ok = false;
    std::string error_code;  ///< submit_status_name / parse_error / internal
    std::string message;     ///< human-readable rejection detail
    std::string body;        ///< artifact or metrics text when ok
  };

  /// Connects to `socket_path`; throws IoError when nothing listens.
  explicit ServiceClient(const std::string& socket_path);
  ~ServiceClient();

  ServiceClient(const ServiceClient&) = delete;
  ServiceClient& operator=(const ServiceClient&) = delete;

  /// Submits `fastq` (4-line records) and blocks until the sample
  /// completes or is rejected. `tenant`/`name` must be non-empty and
  /// whitespace-free (they travel on the request line).
  Response submit(const std::string& tenant, const std::string& name,
                  const std::string& fastq);
  Response stats();
  Response ping();
  Response drain();

 private:
  Response request(const std::string& header, const std::string& payload);

  int fd_ = -1;
};

}  // namespace staratlas
