#include "service/scheduler.h"

#include <algorithm>

#include "common/error.h"

namespace staratlas {

FairShareScheduler::FairShareScheduler(usize chunk_size)
    : chunk_size_(chunk_size) {
  STARATLAS_CHECK(chunk_size_ >= 1);
}

void FairShareScheduler::set_weight(const TenantId& tenant, double weight) {
  STARATLAS_CHECK(weight > 0.0);
  std::lock_guard lock(mu_);
  tenants_[tenant].weight = weight;
}

double FairShareScheduler::virtual_floor_locked() const {
  double floor = global_vtime_;
  bool runnable = false;
  for (const auto& [id, tenant] : tenants_) {
    if (tenant.jobs.empty()) continue;
    floor = runnable ? std::min(floor, tenant.vtime) : tenant.vtime;
    runnable = true;
  }
  return floor;
}

bool FairShareScheduler::enqueue(const TenantId& tenant_id, u64 job_id,
                                 u64 total_reads) {
  STARATLAS_CHECK(total_reads >= 1);
  {
    std::lock_guard lock(mu_);
    if (closed_) return false;
    // Compute the floor BEFORE inserting so an idle tenant rejoins at the
    // current virtual time: it neither spends credit banked while idle
    // nor starts behind tenants that kept running.
    const double floor = virtual_floor_locked();
    Tenant& tenant = tenants_[tenant_id];
    if (tenant.jobs.empty()) tenant.vtime = std::max(tenant.vtime, floor);
    tenant.jobs.push_back(Job{job_id, total_reads, 0});
    queued_reads_ += total_reads;
  }
  cv_.notify_one();
  return true;
}

std::optional<FairShareScheduler::Dispatch>
FairShareScheduler::dispatch_locked() {
  // Runnable tenant with the minimum virtual time; ties resolve in map
  // (tenant-id) order, which keeps dispatch sequences deterministic for
  // the fairness tests.
  Tenant* best = nullptr;
  const TenantId* best_id = nullptr;
  for (auto& [id, tenant] : tenants_) {
    if (tenant.jobs.empty()) continue;
    if (!best || tenant.vtime < best->vtime) {
      best = &tenant;
      best_id = &id;
    }
  }
  if (!best) return std::nullopt;

  Job& job = best->jobs.front();
  Dispatch out;
  out.job_id = job.id;
  out.begin = job.next;
  out.end = std::min<u64>(job.total, job.next + chunk_size_);
  out.first_chunk = out.begin == 0;
  out.last_chunk = out.end == job.total;
  out.tenant = *best_id;
  job.next = out.end;
  queued_reads_ -= out.end - out.begin;
  ++chunks_dispatched_;
  global_vtime_ = best->vtime;
  best->vtime +=
      static_cast<double>(out.end - out.begin) / best->weight;
  if (out.last_chunk) best->jobs.pop_front();
  return out;
}

std::optional<FairShareScheduler::Dispatch> FairShareScheduler::next_chunk() {
  std::unique_lock lock(mu_);
  for (;;) {
    // Dispatch-then-check: a waiter woken for a job another waiter
    // consumed must go back to sleep, not return early.
    if (auto dispatch = dispatch_locked()) return dispatch;
    if (closed_) return std::nullopt;
    cv_.wait(lock);
  }
}

std::optional<FairShareScheduler::Dispatch>
FairShareScheduler::try_next_chunk() {
  std::lock_guard lock(mu_);
  return dispatch_locked();
}

std::vector<u64> FairShareScheduler::cancel_unstarted() {
  std::lock_guard lock(mu_);
  std::vector<u64> cancelled;
  for (auto& [id, tenant] : tenants_) {
    std::deque<Job> kept;
    for (Job& job : tenant.jobs) {
      if (job.next == 0) {
        cancelled.push_back(job.id);
        queued_reads_ -= job.total;
      } else {
        kept.push_back(job);
      }
    }
    tenant.jobs = std::move(kept);
  }
  return cancelled;
}

void FairShareScheduler::close() {
  {
    std::lock_guard lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

usize FairShareScheduler::queued_jobs() const {
  std::lock_guard lock(mu_);
  usize n = 0;
  for (const auto& [id, tenant] : tenants_) n += tenant.jobs.size();
  return n;
}

u64 FairShareScheduler::queued_reads() const {
  std::lock_guard lock(mu_);
  return queued_reads_;
}

u64 FairShareScheduler::chunks_dispatched() const {
  std::lock_guard lock(mu_);
  return chunks_dispatched_;
}

double FairShareScheduler::tenant_vtime(const TenantId& tenant) const {
  std::lock_guard lock(mu_);
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0.0 : it->second.vtime;
}

}  // namespace staratlas
