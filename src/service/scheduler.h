// FairShareScheduler: work-conserving weighted fair queueing of sample
// chunks across tenants (stride scheduling over a virtual clock).
//
// The schedulable unit is a CHUNK — chunk_size reads of one sample — not
// a whole sample, which is what makes scheduling preemptive at chunk
// granularity: a tenant that floods thousand-sample backlogs still hands
// the engine back after every chunk, so a light tenant's sample waits for
// at most one in-flight chunk per worker plus its weighted share, never
// for the heavy tenant's whole backlog.
//
// Mechanics: each tenant carries a virtual time that advances by
// chunk_reads / weight as its chunks dispatch; the runnable tenant with
// the smallest virtual time dispatches next. A tenant waking from idle
// joins at the current virtual floor (it cannot bank credit while idle,
// and cannot be punished for having been idle). Samples are FIFO within
// a tenant. The scheduler is work-conserving by construction: whenever
// any tenant has a pending chunk, next_chunk() dispatches — a lone
// tenant gets the whole engine.
#pragma once

#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <vector>

#include "service/types.h"

namespace staratlas {

class FairShareScheduler {
 public:
  explicit FairShareScheduler(usize chunk_size);

  /// One dispatched chunk: reads [begin, end) of job `job_id`.
  struct Dispatch {
    u64 job_id = 0;
    u64 begin = 0;
    u64 end = 0;
    bool first_chunk = false;  ///< begin == 0 (the job just started)
    bool last_chunk = false;   ///< end == total (job fully dispatched)
    TenantId tenant;
  };

  void set_weight(const TenantId& tenant, double weight);

  /// Queues a job of `total_reads` (>= 1) reads. FIFO within the tenant.
  /// Returns false (job not queued) once the scheduler is closed.
  bool enqueue(const TenantId& tenant, u64 job_id, u64 total_reads);

  /// Blocks for the next chunk under the fair-share policy; nullopt once
  /// the scheduler is closed and every queued chunk has been dispatched.
  std::optional<Dispatch> next_chunk();

  /// Non-blocking next_chunk: nullopt when nothing is pending right now.
  std::optional<Dispatch> try_next_chunk();

  /// Removes every job that has not dispatched any chunk yet and returns
  /// their ids — the drain path: started jobs keep dispatching, queued
  /// ones are handed back for clean rejection.
  std::vector<u64> cancel_unstarted();

  /// Stops accepting jobs and wakes every waiter; remaining chunks still
  /// drain through next_chunk. Idempotent.
  void close();

  usize chunk_size() const { return chunk_size_; }
  usize queued_jobs() const;
  u64 queued_reads() const;  ///< not-yet-dispatched reads across jobs
  u64 chunks_dispatched() const;
  /// Virtual time of `tenant` (0 when never seen) — fairness tests.
  double tenant_vtime(const TenantId& tenant) const;

 private:
  struct Job {
    u64 id = 0;
    u64 total = 0;
    u64 next = 0;  ///< first undispatched read
  };
  struct Tenant {
    double weight = 1.0;
    double vtime = 0.0;
    std::deque<Job> jobs;
  };

  /// The virtual floor: min vtime over runnable tenants, else the vtime
  /// of the last dispatch. Callers hold mu_.
  double virtual_floor_locked() const;
  std::optional<Dispatch> dispatch_locked();

  const usize chunk_size_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<TenantId, Tenant> tenants_;
  double global_vtime_ = 0.0;
  u64 queued_reads_ = 0;
  u64 chunks_dispatched_ = 0;
  bool closed_ = false;
};

}  // namespace staratlas
