#include "service/types.h"

namespace staratlas {

const char* submit_status_name(SubmitStatus status) {
  switch (status) {
    case SubmitStatus::kAccepted:
      return "accepted";
    case SubmitStatus::kTenantQueueFull:
      return "tenant_queue_full";
    case SubmitStatus::kGlobalQueueFull:
      return "global_queue_full";
    case SubmitStatus::kDraining:
      return "draining";
  }
  return "unknown";
}

}  // namespace staratlas
