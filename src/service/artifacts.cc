#include "service/artifacts.h"

#include <sstream>

#include "align/engine.h"
#include "align/final_log.h"
#include "align/junctions.h"

namespace staratlas {

std::string render_sample_artifacts(const SampleResult& result,
                                    const GenomeIndex& index,
                                    const Annotation* annotation) {
  AlignmentRun run;
  run.stats = result.stats;
  run.wall_seconds = 0.0;
  std::string out =
      render_final_log(run, result.total_reads, result.mean_read_length);
  if (annotation && !result.gene_counts.per_gene.empty()) {
    std::ostringstream counts;
    result.gene_counts.write_tsv(counts, *annotation);
    out += counts.str();
  }
  std::ostringstream sj;
  write_junctions_tsv(sj, result.junctions, index);
  out += sj.str();
  return out;
}

}  // namespace staratlas
