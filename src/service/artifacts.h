// Rendering a completed sample to the CLI align path's artifact text —
// the byte-identity surface of the service: Log.final (wall pinned to 0
// so the text is timing-independent), ReadsPerGene TSV when gene counts
// were produced, and the SJ TSV. The RPC server ships this string as the
// SUBMIT response body; tests string-compare it against the same
// rendering of an AlignmentEngine::run over the same reads.
#pragma once

#include <string>

#include "genome/annotation.h"
#include "index/genome_index.h"
#include "service/types.h"

namespace staratlas {

/// `annotation` may be null (or counts absent) — the counts section is
/// skipped then. Junctions render whenever the result carries any.
std::string render_sample_artifacts(const SampleResult& result,
                                    const GenomeIndex& index,
                                    const Annotation* annotation);

}  // namespace staratlas
