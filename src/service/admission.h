// AdmissionController: bounded-queue admission for the multi-tenant
// service.
//
// Every submission passes through try_admit() before it may enter the
// scheduler; the controller tracks queued + in-flight samples and reads
// per tenant and service-wide, and rejects — never blocks — when a cap is
// reached. Rejection is the service's backpressure signal: a client that
// floods past its share sees kTenantQueueFull immediately instead of
// growing an unbounded queue, exactly the BoundedQueue contract lifted to
// sample granularity. release() returns capacity when a sample completes
// or is drain-rejected.
#pragma once

#include <map>
#include <mutex>

#include "service/types.h"

namespace staratlas {

/// Service-wide admission caps (per-tenant caps live in TenantProfile).
struct AdmissionLimits {
  usize max_total_samples = 1024;  ///< queued + in-flight, all tenants
  u64 max_total_reads = 32u << 20;
};

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionLimits limits) : limits_(limits) {}

  /// Registers `tenant`'s profile (first submission wins otherwise).
  void set_profile(const TenantId& tenant, const TenantProfile& profile);

  /// Admits a sample of `reads` reads for `tenant`, reserving capacity,
  /// or returns the rejection reason without side effects.
  SubmitStatus try_admit(const TenantId& tenant, u64 reads);

  /// Returns the capacity reserved by a prior successful try_admit.
  void release(const TenantId& tenant, u64 reads);

  /// Flips the controller into draining: every later try_admit returns
  /// kDraining. Idempotent.
  void begin_drain();
  bool draining() const;

  struct TenantDepth {
    usize samples = 0;       ///< currently queued + in-flight
    u64 reads = 0;
    usize sample_high_water = 0;
    u64 admitted = 0;
    u64 rejected = 0;        ///< kTenantQueueFull + kGlobalQueueFull
  };
  struct Depths {
    std::map<TenantId, TenantDepth> tenants;
    usize total_samples = 0;
    u64 total_reads = 0;
    usize total_sample_high_water = 0;
    u64 rejected_draining = 0;
  };
  Depths depths() const;

 private:
  struct TenantState {
    TenantProfile profile;
    TenantDepth depth;
  };

  AdmissionLimits limits_;
  mutable std::mutex mu_;
  std::map<TenantId, TenantState> tenants_;
  usize total_samples_ = 0;
  u64 total_reads_ = 0;
  usize total_high_water_ = 0;
  u64 rejected_draining_ = 0;
  bool draining_ = false;
};

}  // namespace staratlas
