// AlignmentService: a long-running multi-tenant alignment daemon over one
// shared engine pool and one shared, mmap-attachable genome index.
//
// This is the refactor that turns core/pipeline + align/engine from a
// batch job into a system: submissions from many tenants pass admission
// control (bounded queues, reject-don't-block backpressure), are cut into
// chunk-granular work units, and are scheduled weighted-fair across
// tenants onto a pool of worker threads that all call the engine's
// align_chunk hook. Every tenant attaches the SAME index — acquired once
// per sample through the single-flight SharedIndexCache, whose pinned
// entries (shared_ptr refcounts) make resident-bytes eviction safe under
// load: an index held by an active sample is never evicted, everything
// else yields when the budget demands it.
//
// Determinism: per-sample results (outcomes, stats, gene counts,
// junctions) are byte-identical to AlignmentEngine::run on the same
// reads, whatever the worker count or cross-tenant interleaving — chunk
// results are read-indexed and the accumulator merges are field-wise
// sums, the same argument that makes run() deterministic.
#pragma once

#include <future>
#include <map>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "align/engine.h"
#include "index/shared_cache.h"
#include "service/admission.h"
#include "service/scheduler.h"
#include "service/types.h"

namespace staratlas {

struct ServiceConfig {
  /// Engine configuration; num_threads is the worker-pool width.
  EngineConfig engine;
  /// Scheduling quantum in reads (the preemption granularity).
  usize chunk_size = 256;
  /// Service-wide admission caps.
  AdmissionLimits admission;
  /// Profile applied to tenants with no explicit entry.
  TenantProfile default_profile;
  /// Explicit per-tenant profiles (weight + admission caps).
  std::map<TenantId, TenantProfile> tenants;
};

class AlignmentService {
 public:
  /// A submission's handle. `result` is valid only when status is
  /// kAccepted; it also resolves (with rejected_at_drain set) for samples
  /// the drain path rejects after admission.
  struct Ticket {
    SubmitStatus status = SubmitStatus::kAccepted;
    std::shared_future<SampleResult> result;
  };

  /// Per-tenant service metrics.
  struct TenantMetrics {
    u64 accepted = 0;
    u64 rejected = 0;
    u64 completed = 0;
    u64 rejected_at_drain = 0;
    u64 reads_completed = 0;
    usize queue_high_water = 0;
    /// Submit-to-completion seconds of every completed sample, in
    /// completion order (p50/p99 are percentile() over this).
    std::vector<double> latencies;
  };
  struct Metrics {
    std::map<TenantId, TenantMetrics> tenants;
    u64 chunks_dispatched = 0;
    u64 samples_completed = 0;
    u64 reads_completed = 0;
    usize queue_depth_samples = 0;  ///< queued + in-flight right now
    usize queue_high_water = 0;
    u64 index_cache_loads = 0;  ///< 0 when constructed without a cache
    u64 index_cache_hits = 0;
  };

  /// Serves `index` directly (tests; no cache involved).
  AlignmentService(std::shared_ptr<const GenomeIndex> index,
                   const Annotation* annotation, ServiceConfig config);

  /// Attaches the index through `cache` (single-flight; the service holds
  /// one pin for its lifetime and every admitted sample holds another
  /// while active, so the entry cannot be evicted under load). The cache
  /// must outlive the service.
  AlignmentService(SharedIndexCache& cache, const std::string& index_key,
                   const SharedIndexCache::Loader& loader,
                   const Annotation* annotation, ServiceConfig config);

  /// Drains and joins the workers.
  ~AlignmentService();

  AlignmentService(const AlignmentService&) = delete;
  AlignmentService& operator=(const AlignmentService&) = delete;

  /// Admission-controlled, non-blocking submission. Rejection (queue full,
  /// draining) returns immediately with the reason — backpressure is the
  /// caller's signal to slow down, not a blocked thread.
  Ticket submit(SampleSubmission submission);

  /// Submits and blocks for the result; throws InvalidArgument when the
  /// submission is rejected at admission.
  SampleResult submit_and_wait(SampleSubmission submission);

  /// Graceful drain: stops admission, cleanly rejects every sample that
  /// has not started (their futures resolve with rejected_at_drain), lets
  /// in-flight samples complete, and joins the workers. Idempotent.
  void drain();

  bool draining() const { return admission_.draining(); }
  const ServiceConfig& config() const { return config_; }
  const GenomeIndex& index() const { return *index_; }
  Metrics metrics() const;

 private:
  struct Session;

  void start_workers();
  void ensure_tenant(const TenantId& tenant);
  void worker_loop(usize slot);
  /// Resolves the session's future, returns admission capacity and
  /// records metrics. Called with no service locks held.
  void finalize(std::unique_ptr<Session> session, bool rejected_at_drain);
  std::unique_ptr<Session> take_session(u64 id);

  ServiceConfig config_;
  SharedIndexCache* cache_ = nullptr;  ///< null when index passed directly
  std::string index_key_;
  SharedIndexCache::Loader loader_;  ///< per-sample re-acquire (cache mode)
  std::shared_ptr<const GenomeIndex> index_;  ///< the service's own pin
  std::unique_ptr<AlignmentEngine> engine_;
  AdmissionController admission_;
  FairShareScheduler scheduler_;

  mutable std::mutex mu_;  ///< sessions map + metrics + tenant registry
  std::map<u64, std::unique_ptr<Session>> sessions_;
  std::set<TenantId> registered_tenants_;
  u64 next_session_id_ = 1;
  Metrics metrics_;

  std::mutex drain_mu_;  ///< serializes drain(); never nests inside mu_
  bool drained_ = false;  ///< guarded by drain_mu_

  std::vector<std::thread> workers_;
};

}  // namespace staratlas
