#include "service/admission.h"

#include <algorithm>

#include "common/error.h"

namespace staratlas {

void AdmissionController::set_profile(const TenantId& tenant,
                                      const TenantProfile& profile) {
  std::lock_guard lock(mu_);
  tenants_[tenant].profile = profile;
}

SubmitStatus AdmissionController::try_admit(const TenantId& tenant,
                                            u64 reads) {
  std::lock_guard lock(mu_);
  if (draining_) {
    ++rejected_draining_;
    return SubmitStatus::kDraining;
  }
  TenantState& state = tenants_[tenant];  // default profile on first touch
  // Per-tenant caps first: a tenant over its own share is told so even
  // when the service as a whole still has room.
  if (state.depth.samples + 1 > state.profile.max_queued_samples ||
      state.depth.reads + reads > state.profile.max_queued_reads) {
    ++state.depth.rejected;
    return SubmitStatus::kTenantQueueFull;
  }
  if (total_samples_ + 1 > limits_.max_total_samples ||
      total_reads_ + reads > limits_.max_total_reads) {
    ++state.depth.rejected;
    return SubmitStatus::kGlobalQueueFull;
  }
  ++state.depth.samples;
  state.depth.reads += reads;
  ++state.depth.admitted;
  state.depth.sample_high_water =
      std::max(state.depth.sample_high_water, state.depth.samples);
  ++total_samples_;
  total_reads_ += reads;
  total_high_water_ = std::max(total_high_water_, total_samples_);
  return SubmitStatus::kAccepted;
}

void AdmissionController::release(const TenantId& tenant, u64 reads) {
  std::lock_guard lock(mu_);
  auto it = tenants_.find(tenant);
  STARATLAS_CHECK(it != tenants_.end());
  TenantDepth& depth = it->second.depth;
  STARATLAS_CHECK(depth.samples >= 1 && depth.reads >= reads);
  STARATLAS_CHECK(total_samples_ >= 1 && total_reads_ >= reads);
  --depth.samples;
  depth.reads -= reads;
  --total_samples_;
  total_reads_ -= reads;
}

void AdmissionController::begin_drain() {
  std::lock_guard lock(mu_);
  draining_ = true;
}

bool AdmissionController::draining() const {
  std::lock_guard lock(mu_);
  return draining_;
}

AdmissionController::Depths AdmissionController::depths() const {
  std::lock_guard lock(mu_);
  Depths out;
  for (const auto& [tenant, state] : tenants_) {
    out.tenants.emplace(tenant, state.depth);
  }
  out.total_samples = total_samples_;
  out.total_reads = total_reads_;
  out.total_sample_high_water = total_high_water_;
  out.rejected_draining = rejected_draining_;
  return out;
}

}  // namespace staratlas
