#include "service/service.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "align/run_request.h"
#include "common/error.h"

namespace staratlas {

namespace {

double seconds_between(std::chrono::steady_clock::time_point from,
                       std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

}  // namespace

/// One admitted sample's life inside the service: immutable inputs, the
/// chunk-merge accumulators, and the completion promise. Workers touch
/// the accumulators only under `mu`; `reads` is immutable after
/// construction so align_chunk reads it lock-free.
struct AlignmentService::Session {
  u64 id = 0;
  TenantId tenant;
  std::string name;
  ReadSet reads;
  /// Per-sample cache pin (cache mode): holds the entry resident for the
  /// sample's whole life, so eviction can never pull the index out from
  /// under an active alignment.
  std::shared_ptr<const GenomeIndex> pin;
  std::promise<SampleResult> promise;
  std::shared_future<SampleResult> future;
  std::chrono::steady_clock::time_point submitted;

  std::mutex mu;
  ChunkSink acc;  ///< engine-dimensioned accumulators (merged chunk sinks)
  std::vector<ReadOutcome> outcomes;
  usize chunks_done = 0;
  usize chunks_total = 0;
  bool first_dispatched = false;
  double queue_secs = 0.0;
};

AlignmentService::AlignmentService(std::shared_ptr<const GenomeIndex> index,
                                   const Annotation* annotation,
                                   ServiceConfig config)
    : config_(std::move(config)),
      index_(std::move(index)),
      engine_(std::make_unique<AlignmentEngine>(*index_, annotation,
                                                config_.engine)),
      admission_(config_.admission),
      scheduler_(config_.chunk_size) {
  start_workers();
}

AlignmentService::AlignmentService(SharedIndexCache& cache,
                                   const std::string& index_key,
                                   const SharedIndexCache::Loader& loader,
                                   const Annotation* annotation,
                                   ServiceConfig config)
    : config_(std::move(config)),
      cache_(&cache),
      index_key_(index_key),
      loader_(loader),
      index_(cache.acquire(index_key, loader)),
      engine_(std::make_unique<AlignmentEngine>(*index_, annotation,
                                                config_.engine)),
      admission_(config_.admission),
      scheduler_(config_.chunk_size) {
  start_workers();
}

AlignmentService::~AlignmentService() { drain(); }

void AlignmentService::start_workers() {
  for (const auto& [tenant, profile] : config_.tenants) {
    admission_.set_profile(tenant, profile);
    scheduler_.set_weight(tenant, profile.weight);
    registered_tenants_.insert(tenant);
  }
  const usize slots = engine_->prepare_worker_slots();
  workers_.reserve(slots);
  for (usize slot = 0; slot < slots; ++slot) {
    workers_.emplace_back([this, slot] { worker_loop(slot); });
  }
}

void AlignmentService::ensure_tenant(const TenantId& tenant) {
  {
    std::lock_guard lock(mu_);
    if (!registered_tenants_.insert(tenant).second) return;
  }
  admission_.set_profile(tenant, config_.default_profile);
  scheduler_.set_weight(tenant, config_.default_profile.weight);
}

AlignmentService::Ticket AlignmentService::submit(SampleSubmission submission) {
  const auto now = std::chrono::steady_clock::now();
  // The service is the fourth engine entrypoint: every submission is
  // validated as an in-memory run request at admission (the same single
  // validation point the direct entrypoints use), then executed through
  // the chunk hooks for fair-share interleaving instead of execute().
  EngineRunRequest request;
  request.reads = &submission.reads;
  request.mode = EngineRunRequest::Mode::kMemory;
  request.validate();
  ensure_tenant(submission.tenant);

  Ticket ticket;
  const u64 total_reads = submission.reads.size();
  ticket.status = admission_.try_admit(submission.tenant, total_reads);
  if (ticket.status != SubmitStatus::kAccepted) return ticket;

  auto session = std::make_unique<Session>();
  session->tenant = std::move(submission.tenant);
  session->name = std::move(submission.name);
  session->reads = std::move(submission.reads);
  session->submitted = now;
  session->future = session->promise.get_future().share();
  session->acc = engine_->make_chunk_sink();
  session->outcomes.assign(total_reads, ReadOutcome::kUnmapped);
  session->chunks_total =
      (total_reads + config_.chunk_size - 1) / config_.chunk_size;
  // Every admitted sample re-acquires through the cache: a hit that adds
  // one more pin, keeping the entry unevictable while any sample runs.
  if (cache_) session->pin = cache_->acquire(index_key_, loader_);
  ticket.result = session->future;

  const TenantId tenant = session->tenant;
  u64 id = 0;
  {
    std::lock_guard lock(mu_);
    id = next_session_id_++;
    session->id = id;
    ++metrics_.tenants[tenant].accepted;
    sessions_.emplace(id, std::move(session));
  }

  if (total_reads == 0) {
    // Nothing to schedule: complete immediately (the scheduler's jobs are
    // >= 1 read by contract).
    finalize(take_session(id), /*rejected_at_drain=*/false);
    return ticket;
  }
  if (!scheduler_.enqueue(tenant, id, total_reads)) {
    // Lost the race with drain(): the scheduler closed after admission
    // said yes. Resolve as a clean drain rejection, like a queued sample.
    finalize(take_session(id), /*rejected_at_drain=*/true);
  }
  return ticket;
}

SampleResult AlignmentService::submit_and_wait(SampleSubmission submission) {
  Ticket ticket = submit(std::move(submission));
  if (ticket.status != SubmitStatus::kAccepted) {
    throw InvalidArgument(std::string("submission rejected: ") +
                          submit_status_name(ticket.status));
  }
  return ticket.result.get();
}

void AlignmentService::worker_loop(usize slot) {
  ChunkSink sink = engine_->make_chunk_sink();
  std::vector<ReadOutcome> scratch;
  while (auto dispatch = scheduler_.next_chunk()) {
    Session* session = nullptr;
    {
      std::lock_guard lock(mu_);
      auto it = sessions_.find(dispatch->job_id);
      STARATLAS_CHECK(it != sessions_.end());
      session = it->second.get();
    }
    if (dispatch->first_chunk) {
      std::lock_guard lock(session->mu);
      if (!session->first_dispatched) {
        session->first_dispatched = true;
        session->queue_secs = seconds_between(
            session->submitted, std::chrono::steady_clock::now());
      }
    }
    const usize count = dispatch->end - dispatch->begin;
    if (scratch.size() < count) scratch.resize(count);
    engine_->align_chunk(session->reads, dispatch->begin, dispatch->end, slot,
                         sink, std::span(scratch).first(count));
    bool last = false;
    {
      std::lock_guard lock(session->mu);
      session->acc.stats += sink.stats;
      session->acc.counts += sink.counts;
      if (session->acc.junctions) *session->acc.junctions += *sink.junctions;
      std::copy_n(scratch.begin(), count,
                  session->outcomes.begin() + dispatch->begin);
      last = ++session->chunks_done == session->chunks_total;
    }
    // The finalizing worker is the only one still referencing the
    // session once every chunk has merged, so it may take ownership.
    if (last) {
      finalize(take_session(dispatch->job_id), /*rejected_at_drain=*/false);
    }
  }
}

std::unique_ptr<AlignmentService::Session> AlignmentService::take_session(
    u64 id) {
  std::lock_guard lock(mu_);
  auto it = sessions_.find(id);
  STARATLAS_CHECK(it != sessions_.end());
  std::unique_ptr<Session> session = std::move(it->second);
  sessions_.erase(it);
  return session;
}

void AlignmentService::finalize(std::unique_ptr<Session> session,
                                bool rejected_at_drain) {
  SampleResult result;
  result.tenant = session->tenant;
  result.name = session->name;
  result.total_reads = session->reads.size();
  if (result.total_reads > 0) {
    u64 bases = 0;
    for (const auto& read : session->reads.reads) bases += read.sequence.size();
    result.mean_read_length =
        static_cast<double>(bases) / static_cast<double>(result.total_reads);
  }
  result.rejected_at_drain = rejected_at_drain;
  result.latency_secs = seconds_between(session->submitted,
                                        std::chrono::steady_clock::now());
  if (!rejected_at_drain) {
    result.stats = session->acc.stats;
    result.gene_counts = std::move(session->acc.counts);
    result.outcomes = std::move(session->outcomes);
    if (session->acc.junctions) {
      result.junctions = session->acc.junctions->junctions();
    }
    result.queue_secs = session->queue_secs;
  }

  {
    std::lock_guard lock(mu_);
    TenantMetrics& tm = metrics_.tenants[result.tenant];
    if (rejected_at_drain) {
      ++tm.rejected_at_drain;
    } else {
      ++tm.completed;
      tm.reads_completed += result.total_reads;
      tm.latencies.push_back(result.latency_secs);
      ++metrics_.samples_completed;
      metrics_.reads_completed += result.total_reads;
    }
  }
  // Metrics before release: an accept enabled by this release must then
  // observe the completion in metrics (the backpressure tests count on
  // accepted <= cap + samples_completed holding under any schedule).
  admission_.release(result.tenant, result.total_reads);
  session->promise.set_value(std::move(result));
}

void AlignmentService::drain() {
  std::lock_guard drain_lock(drain_mu_);
  if (drained_) return;
  admission_.begin_drain();
  // Queued-but-unstarted samples are handed back by the scheduler and
  // rejected cleanly; samples with any dispatched chunk run to completion.
  for (u64 id : scheduler_.cancel_unstarted()) {
    finalize(take_session(id), /*rejected_at_drain=*/true);
  }
  scheduler_.close();
  for (auto& worker : workers_) worker.join();
  workers_.clear();
  drained_ = true;
  std::lock_guard lock(mu_);
  STARATLAS_CHECK(sessions_.empty());
}

AlignmentService::Metrics AlignmentService::metrics() const {
  const AdmissionController::Depths depths = admission_.depths();
  Metrics out;
  {
    std::lock_guard lock(mu_);
    out = metrics_;
  }
  out.chunks_dispatched = scheduler_.chunks_dispatched();
  out.queue_depth_samples = depths.total_samples;
  out.queue_high_water = depths.total_sample_high_water;
  for (const auto& [tenant, depth] : depths.tenants) {
    TenantMetrics& tm = out.tenants[tenant];
    tm.rejected = depth.rejected;
    tm.queue_high_water = depth.sample_high_water;
  }
  if (cache_) {
    out.index_cache_loads = cache_->loads();
    out.index_cache_hits = cache_->hits();
  }
  return out;
}

}  // namespace staratlas
