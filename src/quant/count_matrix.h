// Gene x sample count matrix assembled from per-sample GeneCounts tables —
// the input to the pipeline's DESeq2 normalization stage.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "align/gene_counts.h"
#include "common/types.h"

namespace staratlas {

class CountMatrix {
 public:
  CountMatrix() = default;
  explicit CountMatrix(std::vector<std::string> gene_ids);

  usize num_genes() const { return gene_ids_.size(); }
  usize num_samples() const { return sample_names_.size(); }
  const std::vector<std::string>& gene_ids() const { return gene_ids_; }
  const std::vector<std::string>& sample_names() const { return sample_names_; }

  /// Appends one sample column. The table's per_gene vector must match
  /// num_genes().
  void add_sample(const std::string& name, const GeneCountsTable& counts);

  /// Raw count for (gene, sample).
  u64 at(usize gene, usize sample) const;

  /// One gene's counts across samples.
  std::vector<double> gene_row(usize gene) const;
  /// One sample's counts across genes.
  std::vector<double> sample_column(usize sample) const;

  /// Library size (total counts) per sample.
  std::vector<double> library_sizes() const;

  /// TSV with a header row of sample names.
  void write_tsv(std::ostream& out) const;

 private:
  std::vector<std::string> gene_ids_;
  std::vector<std::string> sample_names_;
  std::vector<std::vector<u64>> columns_;  ///< [sample][gene]
};

}  // namespace staratlas
