#include "quant/count_matrix.h"

#include <ostream>

#include "common/error.h"

namespace staratlas {

CountMatrix::CountMatrix(std::vector<std::string> gene_ids)
    : gene_ids_(std::move(gene_ids)) {}

void CountMatrix::add_sample(const std::string& name,
                             const GeneCountsTable& counts) {
  STARATLAS_CHECK(counts.per_gene.size() == gene_ids_.size());
  sample_names_.push_back(name);
  columns_.push_back(counts.per_gene);
}

u64 CountMatrix::at(usize gene, usize sample) const {
  STARATLAS_CHECK(gene < num_genes() && sample < num_samples());
  return columns_[sample][gene];
}

std::vector<double> CountMatrix::gene_row(usize gene) const {
  STARATLAS_CHECK(gene < num_genes());
  std::vector<double> row(num_samples());
  for (usize s = 0; s < num_samples(); ++s) {
    row[s] = static_cast<double>(columns_[s][gene]);
  }
  return row;
}

std::vector<double> CountMatrix::sample_column(usize sample) const {
  STARATLAS_CHECK(sample < num_samples());
  return std::vector<double>(columns_[sample].begin(), columns_[sample].end());
}

std::vector<double> CountMatrix::library_sizes() const {
  std::vector<double> sizes(num_samples(), 0.0);
  for (usize s = 0; s < num_samples(); ++s) {
    for (u64 c : columns_[s]) sizes[s] += static_cast<double>(c);
  }
  return sizes;
}

void CountMatrix::write_tsv(std::ostream& out) const {
  out << "gene_id";
  for (const auto& name : sample_names_) out << '\t' << name;
  out << '\n';
  for (usize g = 0; g < num_genes(); ++g) {
    out << gene_ids_[g];
    for (usize s = 0; s < num_samples(); ++s) out << '\t' << columns_[s][g];
    out << '\n';
  }
}

}  // namespace staratlas
