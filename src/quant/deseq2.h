// DESeq2's median-of-ratios count normalization — the pipeline's final
// stage (Fig 1, step 4). Implements the estimateSizeFactors math:
//
//   ref_g   = geometric mean of gene g's counts across samples
//   ratio_s = median over genes of count_{g,s} / ref_g  (genes with
//             ref_g > 0 only)
//   norm_{g,s} = count_{g,s} / ratio_s
#pragma once

#include <vector>

#include "quant/count_matrix.h"

namespace staratlas {

/// Per-sample size factors. Throws InvalidArgument when no gene has
/// nonzero counts in every sample (the estimator is undefined then).
std::vector<double> deseq2_size_factors(const CountMatrix& matrix);

struct NormalizedCounts {
  std::vector<double> size_factors;            ///< per sample
  std::vector<std::vector<double>> values;     ///< [sample][gene]
};

/// Full normalization: size factors + normalized count matrix.
NormalizedCounts deseq2_normalize(const CountMatrix& matrix);

}  // namespace staratlas
