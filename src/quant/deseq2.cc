#include "quant/deseq2.h"

#include <cmath>

#include "common/error.h"
#include "common/stats.h"

namespace staratlas {

std::vector<double> deseq2_size_factors(const CountMatrix& matrix) {
  const usize num_genes = matrix.num_genes();
  const usize num_samples = matrix.num_samples();
  STARATLAS_CHECK(num_samples > 0);

  // Log geometric mean per gene; genes with any zero count are excluded
  // (their log ref is -inf), exactly as DESeq2 does.
  std::vector<double> log_ref(num_genes);
  std::vector<bool> usable(num_genes, true);
  for (usize g = 0; g < num_genes; ++g) {
    double log_sum = 0.0;
    for (usize s = 0; s < num_samples; ++s) {
      const u64 count = matrix.at(g, s);
      if (count == 0) {
        usable[g] = false;
        break;
      }
      log_sum += std::log(static_cast<double>(count));
    }
    log_ref[g] = usable[g] ? log_sum / static_cast<double>(num_samples) : 0.0;
  }

  std::vector<double> factors(num_samples);
  for (usize s = 0; s < num_samples; ++s) {
    std::vector<double> log_ratios;
    log_ratios.reserve(num_genes);
    for (usize g = 0; g < num_genes; ++g) {
      if (!usable[g]) continue;
      log_ratios.push_back(std::log(static_cast<double>(matrix.at(g, s))) -
                           log_ref[g]);
    }
    if (log_ratios.empty()) {
      throw InvalidArgument(
          "DESeq2 size factors undefined: no gene has nonzero counts in "
          "every sample");
    }
    factors[s] = std::exp(median(log_ratios));
  }
  return factors;
}

NormalizedCounts deseq2_normalize(const CountMatrix& matrix) {
  NormalizedCounts result;
  result.size_factors = deseq2_size_factors(matrix);
  result.values.resize(matrix.num_samples());
  for (usize s = 0; s < matrix.num_samples(); ++s) {
    result.values[s].resize(matrix.num_genes());
    for (usize g = 0; g < matrix.num_genes(); ++g) {
      result.values[s][g] =
          static_cast<double>(matrix.at(g, s)) / result.size_factors[s];
    }
  }
  return result;
}

}  // namespace staratlas
