#include "io/gtf.h"

#include <fstream>
#include <istream>
#include <ostream>

#include "common/error.h"
#include "io/text.h"

namespace staratlas {

const char* feature_type_name(FeatureType type) {
  switch (type) {
    case FeatureType::kGene: return "gene";
    case FeatureType::kTranscript: return "transcript";
    case FeatureType::kExon: return "exon";
  }
  return "?";
}

namespace {
// Extracts the value of `key "value";` from a GTF attribute column.
std::string attribute_value(std::string_view attrs, std::string_view key) {
  usize pos = 0;
  while (pos < attrs.size()) {
    const usize key_pos = attrs.find(key, pos);
    if (key_pos == std::string_view::npos) return {};
    const usize after = key_pos + key.size();
    // Must be a whole token: preceded by start/space/;, followed by space.
    const bool ok_before =
        key_pos == 0 || attrs[key_pos - 1] == ' ' || attrs[key_pos - 1] == ';';
    if (!ok_before || after >= attrs.size() || attrs[after] != ' ') {
      pos = after;
      continue;
    }
    const usize open = attrs.find('"', after);
    if (open == std::string_view::npos) return {};
    const usize close = attrs.find('"', open + 1);
    if (close == std::string_view::npos) return {};
    return std::string(attrs.substr(open + 1, close - open - 1));
  }
  return {};
}
}  // namespace

std::vector<GtfFeature> read_gtf(std::istream& in) {
  std::vector<GtfFeature> features;
  std::string line;
  u64 line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    const auto fields = split_view(line, '\t');
    if (fields.size() < 9) {
      throw ParseError("GTF line " + std::to_string(line_no) +
                       ": expected 9 tab-separated fields");
    }
    GtfFeature feature;
    feature.contig = std::string(fields[0]);
    const std::string_view type = fields[2];
    if (type == "gene") {
      feature.type = FeatureType::kGene;
    } else if (type == "transcript") {
      feature.type = FeatureType::kTranscript;
    } else if (type == "exon") {
      feature.type = FeatureType::kExon;
    } else {
      continue;  // CDS, UTR, ... not needed for GeneCounts
    }
    feature.start = parse_u64(fields[3]);
    feature.end = parse_u64(fields[4]);
    if (feature.start == 0 || feature.end < feature.start) {
      throw ParseError("GTF line " + std::to_string(line_no) +
                       ": bad coordinates");
    }
    if (fields[6] != "+" && fields[6] != "-") {
      throw ParseError("GTF line " + std::to_string(line_no) + ": bad strand");
    }
    feature.strand = fields[6][0];
    feature.gene_id = attribute_value(fields[8], "gene_id");
    feature.transcript_id = attribute_value(fields[8], "transcript_id");
    if (feature.gene_id.empty()) {
      throw ParseError("GTF line " + std::to_string(line_no) +
                       ": missing gene_id attribute");
    }
    features.push_back(std::move(feature));
  }
  return features;
}

std::vector<GtfFeature> read_gtf_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot open GTF file: " + path);
  return read_gtf(in);
}

void write_gtf(std::ostream& out, const std::vector<GtfFeature>& features) {
  for (const auto& f : features) {
    out << f.contig << "\tstaratlas\t" << feature_type_name(f.type) << '\t'
        << f.start << '\t' << f.end << "\t.\t" << f.strand << "\t.\t"
        << "gene_id \"" << f.gene_id << "\";";
    if (!f.transcript_id.empty()) {
      out << " transcript_id \"" << f.transcript_id << "\";";
    }
    out << '\n';
  }
}

void write_gtf_file(const std::string& path,
                    const std::vector<GtfFeature>& features) {
  std::ofstream out(path);
  if (!out) throw IoError("cannot open GTF file for writing: " + path);
  write_gtf(out, features);
  if (!out) throw IoError("failed writing GTF file: " + path);
}

}  // namespace staratlas
