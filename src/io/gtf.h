// Minimal GTF (gene transfer format) support: the subset STAR needs for
// --quantMode GeneCounts — gene and exon features with gene_id attributes.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.h"

namespace staratlas {

enum class FeatureType { kGene, kTranscript, kExon };

const char* feature_type_name(FeatureType type);

struct GtfFeature {
  std::string contig;
  FeatureType type = FeatureType::kExon;
  u64 start = 1;  ///< 1-based inclusive, per GTF convention
  u64 end = 1;    ///< 1-based inclusive
  char strand = '+';
  std::string gene_id;
  std::string transcript_id;  ///< empty for gene features
};

/// Parses GTF text; lines starting with '#' are comments. Unknown feature
/// types are skipped. Throws ParseError on structurally bad lines.
std::vector<GtfFeature> read_gtf(std::istream& in);

/// Reads a GTF file from disk.
std::vector<GtfFeature> read_gtf_file(const std::string& path);

/// Writes features as tab-separated GTF with gene_id/transcript_id
/// attributes.
void write_gtf(std::ostream& out, const std::vector<GtfFeature>& features);

/// Writes a GTF file to disk.
void write_gtf_file(const std::string& path,
                    const std::vector<GtfFeature>& features);

}  // namespace staratlas
