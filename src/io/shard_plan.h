// ShardPlan: partitions one in-memory FASTQ sample into N byte-ranges
// snapped to record boundaries, for scatter/gather alignment (the
// serverless follow-up paper's "split the reads across many small
// workers" step).
//
// The planner sees the whole buffer (memory-mapped file, decoded
// container), so it counts records exactly while walking lines once: a
// record start is every 4th non-blank line from offset 0, which sidesteps
// the classic FASTQ ambiguity that a quality line may begin with '@'.
// Each range therefore carries its exact first-read index and read count
// — the gather stage needs both to rebuild the unsharded progress log
// bit-identically (io-layer cousin of the engine's in-order commit).
//
// next_record_start() is the local heuristic form for callers that land
// mid-file without global context (a worker probing a byte offset): it
// disambiguates with the STAR/seqkit rule "line k is a record start iff
// it begins with '@' and line k+2 begins with '+'" — quality lines may
// start with '@', but sequence lines never start with '+'. Tests verify
// it agrees with the exact planner on every planned boundary.
#pragma once

#include <string_view>
#include <vector>

#include "common/types.h"

namespace staratlas {

/// One shard's slice of the sample. Byte ranges are half-open, tile the
/// input exactly, and begin on a record boundary (or at end-of-input for
/// empty tail shards when num_shards exceeds the record count).
struct ShardRange {
  usize byte_begin = 0;
  usize byte_end = 0;
  u64 first_read = 0;  ///< global index of the range's first record
  u64 num_reads = 0;   ///< exact record count within the range

  bool empty() const { return num_reads == 0; }
};

struct ShardPlan {
  usize total_bytes = 0;
  u64 total_reads = 0;
  std::vector<ShardRange> ranges;  ///< exactly num_shards entries

  usize num_shards() const { return ranges.size(); }
};

/// Splits `data` into `num_shards` contiguous ranges of near-equal byte
/// size, each snapped forward to the next record boundary. Single O(data)
/// newline walk; O(1) memory beyond the plan itself. Shards past the last
/// record come back empty (byte_begin == byte_end == data.size()), so any
/// shard count is valid. Throws ParseError if the non-blank line count is
/// not a multiple of 4 (truncated record) — the same inputs the block
/// parser would reject, caught before any worker starts.
ShardPlan plan_fastq_shards(std::string_view data, usize num_shards);

/// First record boundary at or after `pos`, found heuristically: scans
/// forward to the next line start, then returns the first non-blank line
/// L_k that begins with '@' whose second-next non-blank line begins with
/// '+'. Returns data.size() when no full record follows. Handles CRLF and
/// blank separator lines like the block parser.
usize next_record_start(std::string_view data, usize pos);

/// Exact record count of a well-formed buffer (non-blank lines / 4).
/// Throws ParseError when the non-blank line count is not a multiple of 4.
u64 count_fastq_records(std::string_view data);

}  // namespace staratlas
