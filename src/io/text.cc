#include "io/text.h"

#include <cctype>
#include <charconv>

#include "common/error.h"

namespace staratlas {

std::vector<std::string_view> split_view(std::string_view text, char delim) {
  std::vector<std::string_view> fields;
  std::size_t start = 0;
  for (;;) {
    const std::size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      fields.push_back(text.substr(start));
      return fields;
    }
    fields.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim_view(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return text.substr(begin, end - begin);
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

unsigned long long parse_u64(std::string_view text) {
  unsigned long long value = 0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    throw ParseError("expected unsigned integer, got '" + std::string(text) + "'");
  }
  return value;
}

double parse_f64(std::string_view text) {
  double value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    throw ParseError("expected number, got '" + std::string(text) + "'");
  }
  return value;
}

}  // namespace staratlas
