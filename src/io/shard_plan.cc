#include "io/shard_plan.h"

#include <cstring>

#include "common/error.h"

namespace staratlas {

namespace {

/// Calls fn(line_start, content_len) for every line of `data`, with the
/// trailing '\r' of CRLF endings excluded from content_len. Returns the
/// number of non-blank lines seen.
template <typename Fn>
u64 for_each_line(std::string_view data, Fn&& fn) {
  u64 nonblank = 0;
  usize pos = 0;
  while (pos < data.size()) {
    const char* nl = static_cast<const char*>(
        std::memchr(data.data() + pos, '\n', data.size() - pos));
    const usize line_end = nl ? static_cast<usize>(nl - data.data())
                              : data.size();
    usize content_end = line_end;
    if (content_end > pos && data[content_end - 1] == '\r') --content_end;
    if (content_end > pos) {
      fn(pos, nonblank);
      ++nonblank;
    }
    pos = nl ? line_end + 1 : data.size();
  }
  return nonblank;
}

[[noreturn]] void throw_truncated(u64 nonblank) {
  throw ParseError("FASTQ line count " + std::to_string(nonblank) +
                   " is not a multiple of 4 (truncated record)");
}

}  // namespace

ShardPlan plan_fastq_shards(std::string_view data, usize num_shards) {
  STARATLAS_CHECK(num_shards >= 1);
  ShardPlan plan;
  plan.total_bytes = data.size();

  // Byte targets t_i = i * size / n; each shard boundary is the first
  // record start at or past its target, found in one forward line walk.
  std::vector<usize> snapped(num_shards, data.size());
  std::vector<u64> reads_before(num_shards, 0);
  usize next_target = 1;  // boundary 0 is pinned to offset 0

  const u64 nonblank = for_each_line(data, [&](usize line_start, u64 seen) {
    if (seen % 4 != 0) return;  // only every 4th non-blank line starts a record
    while (next_target < num_shards &&
           line_start >= data.size() * next_target / num_shards) {
      snapped[next_target] = line_start;
      reads_before[next_target] = seen / 4;
      ++next_target;
    }
  });
  if (nonblank % 4 != 0) throw_truncated(nonblank);
  plan.total_reads = nonblank / 4;
  for (; next_target < num_shards; ++next_target) {
    snapped[next_target] = data.size();
    reads_before[next_target] = plan.total_reads;
  }

  plan.ranges.resize(num_shards);
  for (usize i = 0; i < num_shards; ++i) {
    ShardRange& range = plan.ranges[i];
    range.byte_begin = i == 0 ? 0 : snapped[i];
    range.byte_end = i + 1 < num_shards ? snapped[i + 1] : data.size();
    range.first_read = i == 0 ? 0 : reads_before[i];
    const u64 end_read =
        i + 1 < num_shards ? reads_before[i + 1] : plan.total_reads;
    range.num_reads = end_read - range.first_read;
  }
  return plan;
}

usize next_record_start(std::string_view data, usize pos) {
  if (pos >= data.size()) return data.size();
  // Land on a line start: pos is one already iff it is 0 or follows '\n'.
  usize line = pos;
  if (pos > 0 && data[pos - 1] != '\n') {
    const usize nl = data.find('\n', pos);
    if (nl == std::string_view::npos) return data.size();
    line = nl + 1;
  }
  // Collect the next few non-blank line starts. From any line of a
  // well-formed record the next record start is at most 4 lines away, so
  // a 12-line window always contains candidate k and its k+2 probe.
  constexpr usize kWindow = 12;
  usize starts[kWindow];
  usize count = 0;
  while (line < data.size() && count < kWindow) {
    const usize nl = data.find('\n', line);
    const usize line_end = nl == std::string_view::npos ? data.size() : nl;
    usize content_end = line_end;
    if (content_end > line && data[content_end - 1] == '\r') --content_end;
    if (content_end > line) starts[count++] = line;
    if (nl == std::string_view::npos) break;
    line = nl + 1;
  }
  for (usize k = 0; k + 2 < count; ++k) {
    // Quality lines may start with '@' but sequence lines never start
    // with '+', so "line k is '@' and line k+2 is '+'" is unambiguous.
    if (data[starts[k]] == '@' && data[starts[k + 2]] == '+') {
      return starts[k];
    }
  }
  return data.size();
}

u64 count_fastq_records(std::string_view data) {
  const u64 nonblank = for_each_line(data, [](usize, u64) {});
  if (nonblank % 4 != 0) throw_truncated(nonblank);
  return nonblank / 4;
}

}  // namespace staratlas
