#include "io/fastq.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <vector>

#include "common/error.h"
#include "io/fasta.h"

namespace staratlas {

namespace {
// File streams default to a tiny (often 8 KiB) stdio-style buffer; FASTQ
// files are large and line-oriented, so give disk I/O a block-sized one.
// pubsetbuf must be applied before open() to take effect.
constexpr usize kFileBufferBytes = 256 * 1024;
}  // namespace

bool FastqReader::get_line(std::string& out) {
  if (!std::getline(*in_, out)) return false;
  ++line_;
  if (!out.empty() && out.back() == '\r') out.pop_back();
  return true;
}

std::optional<FastqRecord> FastqReader::next() {
  std::string header;
  // Skip blank lines between records (lenient, like most tools).
  do {
    if (!get_line(header)) return std::nullopt;
  } while (header.empty());

  if (header[0] != '@') {
    throw ParseError("FASTQ line " + std::to_string(line_) +
                     ": expected '@' header, got '" + header + "'");
  }
  FastqRecord rec;
  rec.name = header.substr(1);
  if (rec.name.empty()) {
    throw ParseError("FASTQ line " + std::to_string(line_) + ": empty read name");
  }

  std::string plus;
  if (!get_line(rec.sequence) || !get_line(plus) || !get_line(rec.quality)) {
    throw ParseError("FASTQ record truncated at line " + std::to_string(line_));
  }
  if (plus.empty() || plus[0] != '+') {
    throw ParseError("FASTQ line " + std::to_string(line_ - 1) +
                     ": expected '+' separator");
  }
  if (rec.sequence.size() != rec.quality.size()) {
    throw ParseError("FASTQ record '" + rec.name +
                     "': sequence/quality length mismatch");
  }
  normalize_sequence(rec.sequence);
  ++count_;
  // '@' + name + '\n' + seq + '\n' + "+\n" + qual + '\n'
  bytes_ += 1 + rec.name.size() + 1 + rec.sequence.size() + 1 + 2 +
            rec.quality.size() + 1;
  return rec;
}

std::vector<FastqRecord> read_fastq(std::istream& in) {
  FastqReader reader(in);
  std::vector<FastqRecord> records;
  while (auto rec = reader.next()) records.push_back(std::move(*rec));
  return records;
}

std::vector<FastqRecord> read_fastq_file(const std::string& path) {
  std::vector<char> buffer(kFileBufferBytes);
  std::ifstream in;
  in.rdbuf()->pubsetbuf(buffer.data(),
                        static_cast<std::streamsize>(buffer.size()));
  in.open(path);
  if (!in) throw IoError("cannot open FASTQ file: " + path);
  auto records = read_fastq(in);
  // getline-at-EOF leaves failbit set on a clean read; badbit is the one
  // that distinguishes a mid-file I/O error from end of file.
  if (in.bad()) throw IoError("I/O error while reading FASTQ file: " + path);
  return records;
}

void write_fastq(std::ostream& out, const std::vector<FastqRecord>& records) {
  for (const auto& rec : records) {
    out << '@' << rec.name << '\n'
        << rec.sequence << "\n+\n"
        << rec.quality << '\n';
  }
}

void write_fastq_file(const std::string& path,
                      const std::vector<FastqRecord>& records) {
  std::vector<char> buffer(kFileBufferBytes);
  std::ofstream out;
  out.rdbuf()->pubsetbuf(buffer.data(),
                         static_cast<std::streamsize>(buffer.size()));
  out.open(path);
  if (!out) throw IoError("cannot open FASTQ file for writing: " + path);
  write_fastq(out, records);
  out.flush();
  if (!out) throw IoError("failed writing FASTQ file: " + path);
}

ByteSize fastq_serialized_size(const std::vector<FastqRecord>& records) {
  u64 bytes = 0;
  for (const auto& rec : records) {
    // '@' + name + '\n' + seq + '\n' + "+\n" + qual + '\n'
    bytes += 1 + rec.name.size() + 1 + rec.sequence.size() + 1 + 2 +
             rec.quality.size() + 1;
  }
  return ByteSize(bytes);
}

ReadSet make_read_set(std::vector<FastqRecord> records) {
  return make_read_set(std::move(records), ByteSize());
}

ReadSet make_read_set(std::vector<FastqRecord> records, ByteSize fastq_bytes) {
  ReadSet set;
  set.fastq_bytes = fastq_bytes.bytes() ? fastq_bytes
                                        : fastq_serialized_size(records);
  set.reads = std::move(records);
  return set;
}

}  // namespace staratlas
