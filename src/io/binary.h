// Little binary (de)serialization layer for index/SRA container files.
// All integers are little-endian fixed-width; strings and vectors are
// length-prefixed with u64. Header-only.
#pragma once

#include <algorithm>
#include <cstring>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/types.h"

namespace staratlas {

/// FNV-1a 64-bit checksum. Used for the per-section integrity words in the
/// v3 genome-index format; not cryptographic, just corruption detection.
inline u64 fnv1a64(const void* data, usize n) {
  const u8* bytes = static_cast<const u8*>(data);
  u64 hash = 0xcbf29ce484222325ULL;
  for (usize i = 0; i < n; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

class BinaryWriter {
 public:
  explicit BinaryWriter(std::ostream& out) : out_(&out) {}

  void write_u8(u8 v) { write_raw(&v, 1); }
  void write_u32(u32 v) { write_le(v); }
  void write_u64(u64 v) { write_le(v); }
  void write_f64(double v) {
    u64 bits;
    std::memcpy(&bits, &v, sizeof(bits));
    write_le(bits);
  }
  void write_string(const std::string& s) {
    write_u64(s.size());
    write_raw(s.data(), s.size());
  }
  void write_bytes(const std::vector<u8>& v) {
    write_u64(v.size());
    write_raw(v.data(), v.size());
  }
  template <typename T>
  void write_pod_vector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    write_u64(v.size());
    write_raw(v.data(), v.size() * sizeof(T));
  }
  /// Raw bytes with no length prefix (for externally described sections).
  void write_blob(const void* data, usize n) { write_raw(data, n); }
  /// Pads with zero bytes until bytes_written() is a multiple of
  /// `alignment`. The page-aligned index sections rely on this.
  void pad_to(u64 alignment) {
    static const char kZeros[256] = {};
    while (written_ % alignment != 0) {
      const u64 take = std::min<u64>(alignment - written_ % alignment,
                                     sizeof(kZeros));
      write_raw(kZeros, take);
    }
  }
  /// Bytes written so far through this writer.
  u64 bytes_written() const { return written_; }

 private:
  template <typename T>
  void write_le(T v) {
    // Host is little-endian on all supported targets; serialize directly.
    write_raw(&v, sizeof(v));
  }
  void write_raw(const void* data, usize n) {
    out_->write(static_cast<const char*>(data), static_cast<std::streamsize>(n));
    if (!*out_) throw IoError("binary write failed");
    written_ += n;
  }
  std::ostream* out_;
  u64 written_ = 0;
};

class BinaryReader {
 public:
  explicit BinaryReader(std::istream& in) : in_(&in) {}

  u8 read_u8() {
    u8 v;
    read_raw(&v, 1);
    return v;
  }
  u32 read_u32() { return read_le<u32>(); }
  u64 read_u64() { return read_le<u64>(); }
  double read_f64() {
    const u64 bits = read_le<u64>();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::string read_string() {
    std::string s;
    read_string_into(s);
    return s;
  }
  std::vector<u8> read_bytes() {
    std::vector<u8> v;
    read_bytes_into(v);
    return v;
  }
  template <typename T>
  std::vector<T> read_pod_vector() {
    std::vector<T> v;
    read_pod_vector_into(v);
    return v;
  }

  /// Raw bytes with no length prefix (for externally described sections).
  void read_blob(void* out, usize n) { read_raw(out, n); }
  /// Discards exactly `n` bytes (section padding in sequential loads).
  void skip(u64 n) {
    char scratch[1024];
    while (n > 0) {
      const u64 take = std::min<u64>(n, sizeof(scratch));
      read_raw(scratch, take);
      n -= take;
    }
  }
  /// Bytes consumed so far through this reader.
  u64 bytes_read() const { return consumed_; }

  // _into forms reuse the destination's capacity — record-at-a-time
  // decoders (SraStreamDecoder) call these with per-stream scratch so
  // steady-state decoding stops allocating.
  void read_string_into(std::string& s) {
    const u64 n = read_size();
    s.clear();
    read_chunked(s, n);
  }
  void read_bytes_into(std::vector<u8>& v) {
    const u64 n = read_size();
    v.clear();
    read_chunked(v, n);
  }
  template <typename T>
  void read_pod_vector_into(std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    const u64 n = read_size();
    if (n > (~u64{0}) / sizeof(T)) {
      throw ParseError("binary vector length overflows");
    }
    v.clear();
    read_chunked(v, n);
  }

 private:
  template <typename T>
  T read_le() {
    T v;
    read_raw(&v, sizeof(v));
    return v;
  }
  u64 read_size() {
    const u64 n = read_le<u64>();
    // Guard against corrupted length prefixes allocating the universe.
    if (n > (1ULL << 40)) throw ParseError("binary length prefix implausibly large");
    return n;
  }
  void read_raw(void* data, usize n) {
    in_->read(static_cast<char*>(data), static_cast<std::streamsize>(n));
    if (static_cast<usize>(in_->gcount()) != n) {
      throw IoError("binary read truncated");
    }
    consumed_ += n;
  }
  /// Grows `out` to n elements in bounded chunks so a corrupted length
  /// prefix fails with IoError at end-of-stream instead of attempting a
  /// terabyte allocation up front.
  template <typename Container>
  void read_chunked(Container& out, u64 n) {
    using Element = typename Container::value_type;
    constexpr u64 kChunkBytes = 1ULL << 20;
    const u64 chunk_elems = std::max<u64>(1, kChunkBytes / sizeof(Element));
    u64 done = 0;
    while (done < n) {
      const u64 take = std::min(chunk_elems, n - done);
      out.resize(done + take);
      read_raw(out.data() + done, take * sizeof(Element));
      done += take;
    }
  }
  std::istream* in_;
  u64 consumed_ = 0;
};

}  // namespace staratlas
