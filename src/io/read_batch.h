// ReadBatch: an arena-backed batch of FASTQ records for the streaming
// ingest path.
//
// A batch owns one contiguous byte arena holding every record's name,
// sequence and quality back to back, plus a 16-byte-per-record offset
// table. Consumers borrow records as non-owning ReadViews, so filling and
// aligning a batch costs zero per-read heap allocations once the arena
// has grown to the workload's high-water mark — clear() keeps capacity,
// which is what lets the engine recycle a fixed ring of batches and cap
// peak ingest memory at (batches in flight) x (batch arena bytes) instead
// of the whole FASTQ.
#pragma once

#include <algorithm>
#include <cstring>
#include <memory>
#include <string_view>
#include <vector>

#include "align/record.h"
#include "common/types.h"

namespace staratlas {

/// Append-only byte buffer backing a ReadBatch. A std::vector<char> would
/// do, but its range-insert runs a capacity check per call and its growth
/// value-initializes — measurable on the block parser's hot path, where
/// every record costs three appends. This keeps append to one branch and
/// one memcpy.
class ByteArena {
 public:
  usize size() const { return size_; }
  usize capacity() const { return cap_; }
  const char* data() const { return data_.get(); }
  char* data() { return data_.get(); }

  /// Drops the contents but keeps the allocation.
  void clear() { size_ = 0; }

  void reserve(usize n) {
    if (n > cap_) grow_to(n);
  }

  /// Appends raw bytes; returns their offset.
  u64 append(const char* src, usize len) {
    if (size_ + len > cap_) grow_to(std::max(size_ + len, cap_ * 2));
    std::memcpy(data_.get() + size_, src, len);
    const u64 offset = size_;
    size_ += len;
    return offset;
  }

 private:
  void grow_to(usize n) {
    std::unique_ptr<char[]> bigger(new char[n]);
    if (size_ > 0) std::memcpy(bigger.get(), data_.get(), size_);
    data_ = std::move(bigger);
    cap_ = n;
  }

  std::unique_ptr<char[]> data_;
  usize size_ = 0;
  usize cap_ = 0;
};

class ReadBatch {
 public:
  usize size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }

  /// Drops all records but keeps arena and table capacity for reuse.
  void clear() {
    arena_.clear();
    records_.clear();
    fastq_bytes_ = 0;
  }

  void reserve(usize num_reads, usize arena_bytes) {
    records_.reserve(num_reads);
    arena_.reserve(arena_bytes);
  }

  std::string_view name(usize i) const {
    const Record& rec = records_[i];
    return {arena_.data() + rec.offset, rec.name_len};
  }
  std::string_view sequence(usize i) const {
    const Record& rec = records_[i];
    return {arena_.data() + rec.offset + rec.name_len, rec.seq_len};
  }
  std::string_view quality(usize i) const {
    const Record& rec = records_[i];
    return {arena_.data() + rec.offset + rec.name_len + rec.seq_len,
            rec.seq_len};
  }
  ReadView view(usize i) const { return {name(i), sequence(i), quality(i)}; }

  /// Copies one complete record into the arena. `quality` must be the same
  /// length as `sequence` (validated by the parsers before they commit).
  void append(std::string_view name, std::string_view sequence,
              std::string_view quality) {
    const u64 offset = append_bytes(name.data(), name.size());
    append_bytes(sequence.data(), sequence.size());
    append_bytes(quality.data(), quality.size());
    commit(offset, static_cast<u32>(name.size()),
           static_cast<u32>(sequence.size()));
  }

  // Staged low-level API for the block parser: copy raw spans in, validate,
  // normalize the sequence span in place, then commit the offset-table
  // entry. Nothing committed is visible until commit(); bytes appended for
  // a record that fails validation are simply orphaned in the arena.

  /// Appends raw bytes; returns their arena offset.
  u64 append_bytes(const char* data, usize len) {
    return arena_.append(data, len);
  }

  /// Mutable arena access (in-place sequence normalization).
  char* arena_at(u64 offset) { return arena_.data() + offset; }

  /// Commits one record whose name/sequence/quality were appended
  /// contiguously at `offset`; quality length equals sequence length.
  void commit(u64 offset, u32 name_len, u32 seq_len) {
    records_.push_back({offset, name_len, seq_len});
    // Serialized 4-line form: '@' name '\n' seq '\n' "+\n" qual '\n'.
    fastq_bytes_ += 1 + name_len + 1 + seq_len + 1 + 2 + seq_len + 1;
  }

  /// Exact serialized size of the contained records' 4-line FASTQ form.
  u64 fastq_bytes() const { return fastq_bytes_; }

  /// Allocated footprint (capacity, not size) — what a recycled batch
  /// permanently holds; the engine sums this for its peak-memory bound.
  u64 capacity_bytes() const {
    return arena_.capacity() + records_.capacity() * sizeof(Record);
  }

 private:
  struct Record {
    u64 offset;    ///< name starts here; sequence and quality follow
    u32 name_len;
    u32 seq_len;   ///< quality has the same length
  };

  ByteArena arena_;
  std::vector<Record> records_;
  u64 fastq_bytes_ = 0;
};

}  // namespace staratlas
