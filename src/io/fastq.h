// FASTQ reading and writing, streaming and whole-file.
//
// ReadSet is the in-memory form the aligner consumes: a flat vector of
// reads plus the total byte size of the FASTQ representation (the paper
// weights its Fig 3 speedup by FASTQ size, so we track it faithfully).
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"
#include "common/units.h"

namespace staratlas {

struct FastqRecord {
  std::string name;      ///< without the leading '@'
  std::string sequence;  ///< ACGTN
  std::string quality;   ///< phred+33, same length as sequence
};

/// Pull-based FASTQ parser over any istream.
class FastqReader {
 public:
  explicit FastqReader(std::istream& in) : in_(&in) {}

  /// Returns the next record, or nullopt at end of stream.
  /// Throws ParseError on malformed records (truncated block, '+' line
  /// missing, length mismatch between sequence and quality).
  std::optional<FastqRecord> next();

  /// Number of records returned so far.
  u64 records_read() const { return count_; }

  /// Exact serialized size of the 4-line FASTQ form of every record
  /// returned so far, accumulated during the parse — callers building a
  /// ReadSet can take this instead of re-walking every record.
  u64 serialized_bytes() const { return bytes_; }

 private:
  std::istream* in_;
  u64 count_ = 0;
  u64 line_ = 0;
  u64 bytes_ = 0;
  bool get_line(std::string& out);
};

/// Reads an entire stream.
std::vector<FastqRecord> read_fastq(std::istream& in);

/// Reads a FASTQ file from disk.
std::vector<FastqRecord> read_fastq_file(const std::string& path);

/// Writes records in 4-line FASTQ form.
void write_fastq(std::ostream& out, const std::vector<FastqRecord>& records);

/// Writes a FASTQ file to disk.
void write_fastq_file(const std::string& path,
                      const std::vector<FastqRecord>& records);

/// The aligner's input: reads plus their on-disk FASTQ size.
struct ReadSet {
  std::vector<FastqRecord> reads;
  ByteSize fastq_bytes;  ///< exact serialized size of the 4-line form

  usize size() const { return reads.size(); }
  bool empty() const { return reads.empty(); }
};

/// Computes the exact size of the serialized 4-line FASTQ form.
ByteSize fastq_serialized_size(const std::vector<FastqRecord>& records);

/// Builds a ReadSet (computing fastq_bytes) from records.
ReadSet make_read_set(std::vector<FastqRecord> records);

/// O(1) form for callers whose parser already accumulated the byte count
/// (FastqReader::serialized_bytes, SraStreamDecoder::serialized_bytes).
ReadSet make_read_set(std::vector<FastqRecord> records, ByteSize fastq_bytes);

}  // namespace staratlas
