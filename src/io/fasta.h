// FASTA reading and writing.
//
// Genomes in staratlas use the alphabet {A,C,G,T,N}; lowercase input is
// uppercased on read (soft-masking is not preserved, matching how STAR
// treats the genome by default).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.h"

namespace staratlas {

struct FastaRecord {
  std::string name;         ///< first word after '>'
  std::string description;  ///< remainder of the header line (may be empty)
  std::string sequence;     ///< uppercase ACGTN
};

/// Reads all records from a FASTA stream. Throws ParseError on malformed
/// input (data before the first header, invalid residues).
std::vector<FastaRecord> read_fasta(std::istream& in);

/// Reads a FASTA file from disk. Throws IoError if it cannot be opened.
std::vector<FastaRecord> read_fasta_file(const std::string& path);

/// Writes records with sequence lines wrapped at `width` columns.
void write_fasta(std::ostream& out, const std::vector<FastaRecord>& records,
                 usize width = 60);

/// Writes a FASTA file to disk. Throws IoError on failure.
void write_fasta_file(const std::string& path,
                      const std::vector<FastaRecord>& records, usize width = 60);

/// Validates and normalizes a nucleotide string in place: uppercases and
/// maps any non-ACGT residue code (IUPAC ambiguity letters) to 'N'.
/// Throws ParseError on characters that are not plausible residues.
void normalize_sequence(std::string& seq);

/// Span form of normalize_sequence for arena-resident sequences (the block
/// FASTQ parser normalizes in place after copying raw bytes in). Same
/// table, same ParseError text.
void normalize_sequence_span(char* data, usize len);

}  // namespace staratlas
