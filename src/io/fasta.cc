#include "io/fasta.h"

#include <array>
#include <cctype>
#include <fstream>
#include <istream>
#include <ostream>

#include "common/error.h"
#include "io/text.h"

namespace staratlas {

namespace {
// Residue normalization table: ACGT stay, IUPAC ambiguity codes -> N,
// anything else is invalid (0).
std::array<char, 256> build_residue_table() {
  std::array<char, 256> table{};
  table.fill(0);
  const std::string keep = "ACGT";
  const std::string to_n = "NRYSWKMBDHVU";  // U (RNA) treated as ambiguity
  for (char c : keep) {
    table[static_cast<unsigned char>(c)] = c;
    table[static_cast<unsigned char>(std::tolower(c))] = c;
  }
  for (char c : to_n) {
    table[static_cast<unsigned char>(c)] = 'N';
    table[static_cast<unsigned char>(std::tolower(c))] = 'N';
  }
  return table;
}
const std::array<char, 256> kResidue = build_residue_table();
}  // namespace

void normalize_sequence(std::string& seq) {
  for (char& c : seq) {
    const char mapped = kResidue[static_cast<unsigned char>(c)];
    if (mapped == 0) {
      throw ParseError(std::string("invalid residue '") + c + "'");
    }
    c = mapped;
  }
}

std::vector<FastaRecord> read_fasta(std::istream& in) {
  std::vector<FastaRecord> records;
  std::string line;
  bool have_record = false;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (line[0] == '>') {
      FastaRecord rec;
      const std::string_view header = std::string_view(line).substr(1);
      const std::size_t space = header.find_first_of(" \t");
      if (space == std::string_view::npos) {
        rec.name = std::string(header);
      } else {
        rec.name = std::string(header.substr(0, space));
        rec.description = std::string(trim_view(header.substr(space + 1)));
      }
      if (rec.name.empty()) throw ParseError("FASTA header with empty name");
      records.push_back(std::move(rec));
      have_record = true;
      continue;
    }
    if (!have_record) throw ParseError("FASTA sequence data before first header");
    std::string chunk = line;
    normalize_sequence(chunk);
    records.back().sequence += chunk;
  }
  return records;
}

std::vector<FastaRecord> read_fasta_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot open FASTA file: " + path);
  return read_fasta(in);
}

void write_fasta(std::ostream& out, const std::vector<FastaRecord>& records,
                 usize width) {
  STARATLAS_CHECK(width > 0);
  for (const auto& rec : records) {
    out << '>' << rec.name;
    if (!rec.description.empty()) out << ' ' << rec.description;
    out << '\n';
    for (usize pos = 0; pos < rec.sequence.size(); pos += width) {
      out << std::string_view(rec.sequence).substr(pos, width) << '\n';
    }
  }
}

void write_fasta_file(const std::string& path,
                      const std::vector<FastaRecord>& records, usize width) {
  std::ofstream out(path);
  if (!out) throw IoError("cannot open FASTA file for writing: " + path);
  write_fasta(out, records, width);
  if (!out) throw IoError("failed writing FASTA file: " + path);
}

}  // namespace staratlas
