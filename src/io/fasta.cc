#include "io/fasta.h"

#include <array>
#include <cctype>
#include <fstream>
#include <istream>
#include <ostream>

#include "common/error.h"
#include "common/simd.h"
#include "io/text.h"

#if defined(STARATLAS_X86_SIMD)
#include <immintrin.h>
#endif

namespace staratlas {

namespace {
// Residue normalization table: ACGT stay, IUPAC ambiguity codes -> N,
// anything else is invalid (0).
std::array<char, 256> build_residue_table() {
  std::array<char, 256> table{};
  table.fill(0);
  const std::string keep = "ACGT";
  const std::string to_n = "NRYSWKMBDHVU";  // U (RNA) treated as ambiguity
  for (char c : keep) {
    table[static_cast<unsigned char>(c)] = c;
    table[static_cast<unsigned char>(std::tolower(c))] = c;
  }
  for (char c : to_n) {
    table[static_cast<unsigned char>(c)] = 'N';
    table[static_cast<unsigned char>(std::tolower(c))] = 'N';
  }
  return table;
}
const std::array<char, 256> kResidue = build_residue_table();
}  // namespace

void normalize_sequence(std::string& seq) {
  normalize_sequence_span(seq.data(), seq.size());
}

#if defined(STARATLAS_X86_SIMD)
namespace {
// Vector kernels for normalize_sequence_span. Clearing bit 0x20
// uppercases letters; after the mask the compares accept exactly the byte
// set kResidue accepts (only the case pair {c, c|0x20} collapses onto
// each letter). Each chunk is validated BEFORE it is overwritten, so on
// failure the bytes are still pristine for the caller's table rescan,
// which reports the first bad residue with the same message as the scalar
// path. Kernels return the index of the first unprocessed byte (the tail,
// or the start of a chunk containing an invalid residue).

usize normalize_kernel_sse2(char* data, usize len) {
  const __m128i case_mask = _mm_set1_epi8(static_cast<char>(0xDF));
  const __m128i n_fill = _mm_set1_epi8('N');
  auto eq = [](__m128i v, char c) {
    return _mm_cmpeq_epi8(v, _mm_set1_epi8(c));
  };
  usize i = 0;
  for (; i + 16 <= len; i += 16) {
    const __m128i raw =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + i));
    const __m128i up = _mm_and_si128(raw, case_mask);
    const __m128i acgt =
        _mm_or_si128(_mm_or_si128(eq(up, 'A'), eq(up, 'C')),
                     _mm_or_si128(eq(up, 'G'), eq(up, 'T')));
    __m128i amb = _mm_or_si128(
        _mm_or_si128(_mm_or_si128(eq(up, 'N'), eq(up, 'R')),
                     _mm_or_si128(eq(up, 'Y'), eq(up, 'S'))),
        _mm_or_si128(_mm_or_si128(eq(up, 'W'), eq(up, 'K')),
                     _mm_or_si128(eq(up, 'M'), eq(up, 'B'))));
    amb = _mm_or_si128(
        amb, _mm_or_si128(_mm_or_si128(eq(up, 'D'), eq(up, 'H')),
                          _mm_or_si128(eq(up, 'V'), eq(up, 'U'))));
    if (_mm_movemask_epi8(_mm_or_si128(acgt, amb)) != 0xFFFF) break;
    // acgt -> uppercased residue, valid ambiguity code -> 'N'.
    const __m128i out = _mm_or_si128(_mm_and_si128(acgt, up),
                                     _mm_andnot_si128(acgt, n_fill));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(data + i), out);
  }
  return i;
}

// AVX2 kernel: nibble classification through vpshufb instead of 16
// broadcasted compares (which spill the register file). After up = c&0xDF
// every accepted byte has high nibble 4 or 5; two 16-entry tables indexed
// by the low nibble give the normalized output byte for each high nibble
// (0 = invalid), and masking with the high-nibble compare composes them.
__attribute__((target("avx2"))) usize normalize_kernel_avx2(char* data,
                                                            usize len) {
  // High nibble 4: A->A, B->N, C->C, D->N, G->G, H->N, K->N, M->N, N->N.
  const __m128i t4 = _mm_setr_epi8(0, 'A', 'N', 'C', 'N', 0, 0, 'G', 'N', 0,
                                   0, 'N', 0, 'N', 'N', 0);
  // High nibble 5: R->N, S->N, T->T, U->N, V->N, W->N, Y->N.
  const __m128i t5 = _mm_setr_epi8(0, 0, 'N', 'N', 'T', 'N', 'N', 'N', 0,
                                   'N', 0, 0, 0, 0, 0, 0);
  const __m256i tbl4 = _mm256_broadcastsi128_si256(t4);
  const __m256i tbl5 = _mm256_broadcastsi128_si256(t5);
  const __m256i case_mask = _mm256_set1_epi8(static_cast<char>(0xDF));
  const __m256i lo_mask = _mm256_set1_epi8(0x0F);
  const __m256i hi4 = _mm256_set1_epi8(0x40);
  const __m256i hi5 = _mm256_set1_epi8(0x50);
  const __m256i zero = _mm256_setzero_si256();
  usize i = 0;
  for (; i + 32 <= len; i += 32) {
    const __m256i raw =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + i));
    const __m256i up = _mm256_and_si256(raw, case_mask);
    const __m256i lo = _mm256_and_si256(up, lo_mask);
    const __m256i hi = _mm256_andnot_si256(lo_mask, up);
    const __m256i is4 = _mm256_cmpeq_epi8(hi, hi4);
    const __m256i is5 = _mm256_cmpeq_epi8(hi, hi5);
    const __m256i out = _mm256_or_si256(
        _mm256_and_si256(is4, _mm256_shuffle_epi8(tbl4, lo)),
        _mm256_and_si256(is5, _mm256_shuffle_epi8(tbl5, lo)));
    // A zero output byte marks an invalid residue; leave the chunk
    // untouched for the caller's table rescan.
    if (_mm256_movemask_epi8(_mm256_cmpeq_epi8(out, zero)) != 0) break;
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(data + i), out);
  }
  return i;
}

// The scalar path is the caller's table loop below, so the scalar
// "kernel" processes nothing and hands the whole span to it.
usize normalize_kernel_scalar(char*, usize) { return 0; }

using NormalizeKernel = usize (*)(char*, usize);
}  // namespace
#endif  // STARATLAS_X86_SIMD

void normalize_sequence_span(char* data, usize len) {
  usize i = 0;
#if defined(STARATLAS_X86_SIMD)
  static const NormalizeKernel kKernel = pick_kernel(
      &normalize_kernel_scalar, &normalize_kernel_sse2,
      &normalize_kernel_avx2);
  i = kKernel(data, len);
#endif
  for (; i < len; ++i) {
    const char mapped = kResidue[static_cast<unsigned char>(data[i])];
    if (mapped == 0) {
      throw ParseError(std::string("invalid residue '") + data[i] + "'");
    }
    data[i] = mapped;
  }
}

std::vector<FastaRecord> read_fasta(std::istream& in) {
  std::vector<FastaRecord> records;
  std::string line;
  bool have_record = false;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (line[0] == '>') {
      FastaRecord rec;
      const std::string_view header = std::string_view(line).substr(1);
      const std::size_t space = header.find_first_of(" \t");
      if (space == std::string_view::npos) {
        rec.name = std::string(header);
      } else {
        rec.name = std::string(header.substr(0, space));
        rec.description = std::string(trim_view(header.substr(space + 1)));
      }
      if (rec.name.empty()) throw ParseError("FASTA header with empty name");
      records.push_back(std::move(rec));
      have_record = true;
      continue;
    }
    if (!have_record) throw ParseError("FASTA sequence data before first header");
    std::string chunk = line;
    normalize_sequence(chunk);
    records.back().sequence += chunk;
  }
  return records;
}

std::vector<FastaRecord> read_fasta_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw IoError("cannot open FASTA file: " + path);
  return read_fasta(in);
}

void write_fasta(std::ostream& out, const std::vector<FastaRecord>& records,
                 usize width) {
  STARATLAS_CHECK(width > 0);
  for (const auto& rec : records) {
    out << '>' << rec.name;
    if (!rec.description.empty()) out << ' ' << rec.description;
    out << '\n';
    for (usize pos = 0; pos < rec.sequence.size(); pos += width) {
      out << std::string_view(rec.sequence).substr(pos, width) << '\n';
    }
  }
}

void write_fasta_file(const std::string& path,
                      const std::vector<FastaRecord>& records, usize width) {
  std::ofstream out(path);
  if (!out) throw IoError("cannot open FASTA file for writing: " + path);
  write_fasta(out, records, width);
  if (!out) throw IoError("failed writing FASTA file: " + path);
}

}  // namespace staratlas
