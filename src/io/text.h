// Tiny text utilities shared by the parsers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace staratlas {

/// Splits on a single delimiter; keeps empty fields.
std::vector<std::string_view> split_view(std::string_view text, char delim);

/// Removes leading/trailing ASCII whitespace.
std::string_view trim_view(std::string_view text);

/// True if `text` begins with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// Parses a non-negative integer; throws ParseError on junk.
unsigned long long parse_u64(std::string_view text);

/// Parses a double; throws ParseError on junk.
double parse_f64(std::string_view text);

}  // namespace staratlas
