// Block FASTQ parser: the streaming-ingest replacement for FastqReader.
//
// Reads the input in 256 KiB blocks and scans for newlines with memchr,
// carving records straight into a ReadBatch arena — no per-read
// std::string allocation, no per-line copy through std::getline. Parsing
// semantics are bit-compatible with FastqReader: the same records come
// out in the same order, CRLF line endings and blank lines between
// records are handled identically, and every malformed input raises a
// ParseError with the exact same message (including line numbers), which
// tests/io/fuzz_test.cc asserts over a shared corpus.
#pragma once

#include <iosfwd>
#include <string_view>
#include <vector>

#include "common/types.h"
#include "io/read_batch.h"

namespace staratlas {

class FastqBlockReader {
 public:
  static constexpr usize kDefaultBlockBytes = 256 * 1024;

  /// The reader borrows `in`; it must outlive the reader. `block_bytes`
  /// is the refill granularity (the buffer grows beyond it only when a
  /// single line is longer than the block).
  explicit FastqBlockReader(std::istream& in,
                            usize block_bytes = kDefaultBlockBytes);

  /// Zero-copy memory mode: parses `data` in place (an mmap'd file, a
  /// decoded container, a test corpus) without the stream double-copy.
  /// `data` must outlive the reader; the newline index is built in
  /// 16 MiB windows as parsing advances.
  explicit FastqBlockReader(std::string_view data);

  /// Parses up to `max_reads` records, appending them to `batch` (which
  /// is not cleared first). Returns the number appended; 0 means end of
  /// stream. Throws ParseError exactly as FastqReader::next would.
  usize read_batch(ReadBatch& batch, usize max_reads);

  /// Number of records returned so far.
  u64 records_read() const { return count_; }

  /// Exact serialized size of the 4-line FASTQ form of every record
  /// returned so far — accumulated during the parse so callers never need
  /// an O(records) fastq_serialized_size() walk.
  u64 serialized_bytes() const { return bytes_; }

 private:
  /// Memory-mode index granularity. The newline index holds one window at
  /// a time, so its footprint is bounded by the window (a u32 per line)
  /// instead of growing with the whole input.
  static constexpr usize kIndexWindowBytes = 16 * 1024 * 1024;

  /// Next logical line (newline-terminated or the unterminated tail) with
  /// any trailing '\r' stripped, as a window into the block buffer. The
  /// window is valid only until the next next_line() call. Returns false
  /// at end of stream.
  bool next_line(const char** data, usize* len);

  /// Rebuilds nl_ with the offsets of every '\n' in
  /// base_[from, scan_end), relative to `rel_base` (<= from). Offsets are
  /// u32: a window never spans more than 4 GiB.
  void index_newlines(usize from, usize scan_end, usize rel_base);

  /// Parses one record into `batch`; false on clean end of stream.
  bool parse_record(ReadBatch& batch);

  std::istream* in_;        ///< null in memory mode
  std::vector<char> buf_;   ///< block buffer (unused in memory mode)
  const char* base_ = nullptr;  ///< current window: buf_ or borrowed memory
  std::vector<u32> nl_;  ///< newline offsets, relative to nl_base_
  usize nl_head_ = 0;    ///< next unconsumed entry in nl_
  usize nl_base_ = 0;    ///< absolute offset nl_ entries are relative to
  usize nl_scanned_ = 0;  ///< one past the last byte swept for newlines
  usize pos_ = 0;    ///< next unconsumed byte in the window
  usize limit_ = 0;  ///< one past the last valid byte in the window
  bool eof_ = false;
  u64 count_ = 0;
  u64 line_ = 0;
  u64 bytes_ = 0;
};

}  // namespace staratlas
