#include "io/fastq_block.h"

#include <algorithm>
#include <cstring>
#include <istream>
#include <limits>
#include <string>

#include "common/error.h"
#include "common/simd.h"
#include "io/fasta.h"

#if defined(STARATLAS_X86_SIMD)
#include <immintrin.h>
#endif

namespace staratlas {

namespace {
#if defined(STARATLAS_X86_SIMD)
// Newline scan kernels: one vectorized sweep per refill (or per 16 MiB
// window in memory mode) builds the newline index, so the per-line cost
// is a table pop instead of a short-span memchr call. Offsets are emitted
// 128 input bytes per iteration through u64 masks, written with raw
// stores: a 128-byte span holds at most 128 newlines, so guaranteeing
// that much headroom up front removes the per-push capacity branch that
// otherwise dominates (a push_back loop runs at barely half this speed).
// Offsets are stored relative to the scan pointer `p` and fit u32 because
// no window spans more than 4 GiB.
void scan_newlines_sse2(const char* p, usize from, usize limit,
                        std::vector<u32>& out) {
  usize n = out.size();
  usize i = from;
  const __m128i nl = _mm_set1_epi8('\n');
  for (; i + 128 <= limit; i += 128) {
    if (n + 128 > out.size()) out.resize(std::max(out.size() * 2, n + 1024));
    u64 m0 = 0;
    u64 m1 = 0;
    for (int k = 0; k < 4; ++k) {
      const __m128i a = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(p + i + 16 * k));
      const __m128i b = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(p + i + 64 + 16 * k));
      m0 |= static_cast<u64>(static_cast<u32>(
                _mm_movemask_epi8(_mm_cmpeq_epi8(a, nl))))
            << (16 * k);
      m1 |= static_cast<u64>(static_cast<u32>(
                _mm_movemask_epi8(_mm_cmpeq_epi8(b, nl))))
            << (16 * k);
    }
    u32* dst = out.data();
    while (m0) {
      dst[n++] = static_cast<u32>(i + static_cast<usize>(__builtin_ctzll(m0)));
      m0 &= m0 - 1;
    }
    while (m1) {
      dst[n++] =
          static_cast<u32>(i + 64 + static_cast<usize>(__builtin_ctzll(m1)));
      m1 &= m1 - 1;
    }
  }
  out.resize(n);
  for (; i < limit; ++i) {
    if (p[i] == '\n') out.push_back(static_cast<u32>(i));
  }
}

__attribute__((target("avx2"))) void scan_newlines_avx2(
    const char* p, usize from, usize limit, std::vector<u32>& out) {
  usize n = out.size();
  usize i = from;
  const __m256i nl = _mm256_set1_epi8('\n');
  for (; i + 128 <= limit; i += 128) {
    if (n + 128 > out.size()) out.resize(std::max(out.size() * 2, n + 1024));
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i + 32));
    const __m256i c =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i + 64));
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i + 96));
    u64 m0 = static_cast<u64>(static_cast<u32>(
                 _mm256_movemask_epi8(_mm256_cmpeq_epi8(a, nl)))) |
             (static_cast<u64>(static_cast<u32>(_mm256_movemask_epi8(
                  _mm256_cmpeq_epi8(b, nl))))
              << 32);
    u64 m1 = static_cast<u64>(static_cast<u32>(
                 _mm256_movemask_epi8(_mm256_cmpeq_epi8(c, nl)))) |
             (static_cast<u64>(static_cast<u32>(_mm256_movemask_epi8(
                  _mm256_cmpeq_epi8(d, nl))))
              << 32);
    u32* dst = out.data();
    while (m0) {
      dst[n++] = static_cast<u32>(i + static_cast<usize>(__builtin_ctzll(m0)));
      m0 &= m0 - 1;
    }
    while (m1) {
      dst[n++] =
          static_cast<u32>(i + 64 + static_cast<usize>(__builtin_ctzll(m1)));
      m1 &= m1 - 1;
    }
  }
  out.resize(n);
  for (; i < limit; ++i) {
    if (p[i] == '\n') out.push_back(static_cast<u32>(i));
  }
}

// Scalar reference: the same byte loop the non-x86 build uses, routed
// through the kernel table so STARATLAS_FORCE_SCALAR exercises it.
void scan_newlines_scalar(const char* p, usize from, usize limit,
                          std::vector<u32>& out) {
  for (usize i = from; i < limit; ++i) {
    if (p[i] == '\n') out.push_back(static_cast<u32>(i));
  }
}

using ScanKernel = void (*)(const char*, usize, usize, std::vector<u32>&);
#endif  // STARATLAS_X86_SIMD
}  // namespace

FastqBlockReader::FastqBlockReader(std::istream& in, usize block_bytes)
    : in_(&in), buf_(block_bytes ? block_bytes : kDefaultBlockBytes) {
  base_ = buf_.data();
}

FastqBlockReader::FastqBlockReader(std::string_view data)
    : in_(nullptr), base_(data.data()), limit_(data.size()), eof_(true) {
  // FASTQ lines are rarely shorter than ~30 bytes; over-reserving a
  // little avoids growth copies of the index while it is built.
  nl_.reserve(std::min(data.size(), kIndexWindowBytes) / 24 + 16);
  index_newlines(0, std::min(data.size(), kIndexWindowBytes), 0);
}

void FastqBlockReader::index_newlines(usize from, usize scan_end,
                                      usize rel_base) {
  nl_.clear();
  nl_head_ = 0;
  nl_base_ = rel_base;
#if defined(STARATLAS_X86_SIMD)
  static const ScanKernel kKernel = pick_kernel(
      &scan_newlines_scalar, &scan_newlines_sse2, &scan_newlines_avx2);
  kKernel(base_ + rel_base, from - rel_base, scan_end - rel_base, nl_);
#else
  for (usize i = from; i < scan_end; ++i) {
    if (base_[i] == '\n') nl_.push_back(static_cast<u32>(i - rel_base));
  }
#endif
  nl_scanned_ = scan_end;
}

bool FastqBlockReader::next_line(const char** data, usize* len) {
  for (;;) {
    if (nl_head_ < nl_.size()) {
      const usize nl_at = nl_base_ + nl_[nl_head_++];
      const char* base = base_ + pos_;
      usize n = nl_at - pos_;
      pos_ = nl_at + 1;
      ++line_;
      if (n > 0 && base[n - 1] == '\r') --n;
      *data = base;
      *len = n;
      return true;
    }
    if (nl_scanned_ < limit_) {
      // Memory mode: the index covers one window at a time, so its
      // footprint stays bounded by the window instead of the input.
      // (Stream refills always scan up to limit_, so only memory mode
      // gets here.) The scan always advances a full window past
      // nl_scanned_, and offsets are re-based at pos_ — the start of the
      // current partial line — which only drifts behind nl_scanned_ when
      // one line spans multiple windows.
      const usize scan_end = std::min(limit_, nl_scanned_ + kIndexWindowBytes);
      if (scan_end - pos_ > static_cast<usize>(std::numeric_limits<u32>::max())) {
        throw ParseError("FASTQ line longer than 4 GiB");
      }
      index_newlines(nl_scanned_, scan_end, pos_);
      continue;
    }
    if (eof_) {
      if (pos_ >= limit_) return false;
      // Unterminated final line: getline returns it too.
      const char* base = base_ + pos_;
      usize n = limit_ - pos_;
      pos_ = limit_;
      ++line_;
      if (n > 0 && base[n - 1] == '\r') --n;
      *data = base;
      *len = n;
      return true;
    }
    // Refill. The index is exhausted, so [pos_, limit_) is a partial line
    // with no newline in it: slide it to the front, read one block, and
    // index only the fresh bytes.
    if (pos_ > 0) {
      std::memmove(buf_.data(), buf_.data() + pos_, limit_ - pos_);
      limit_ -= pos_;
      pos_ = 0;
    } else if (limit_ == buf_.size()) {
      // A single line longer than the block: double the buffer. Offsets
      // in nl_ are u32, so a line cannot outgrow 4 GiB of buffer.
      if (static_cast<u64>(buf_.size()) * 2 > (u64{1} << 32)) {
        throw ParseError("FASTQ line longer than 4 GiB");
      }
      buf_.resize(buf_.size() * 2);
    }
    base_ = buf_.data();
    const usize fresh_from = limit_;
    in_->read(buf_.data() + limit_,
              static_cast<std::streamsize>(buf_.size() - limit_));
    const usize got = static_cast<usize>(in_->gcount());
    limit_ += got;
    if (got == 0) {
      eof_ = true;
      nl_.clear();
      nl_head_ = 0;
      nl_scanned_ = limit_;
    } else {
      index_newlines(fresh_from, limit_, 0);
    }
  }
}

bool FastqBlockReader::parse_record(ReadBatch& batch) {
  const char* data = nullptr;
  usize len = 0;
  // Skip blank lines between records (lenient, like most tools).
  do {
    if (!next_line(&data, &len)) return false;
  } while (len == 0);

  if (data[0] != '@') {
    throw ParseError("FASTQ line " + std::to_string(line_) +
                     ": expected '@' header, got '" + std::string(data, len) +
                     "'");
  }
  if (len == 1) {
    throw ParseError("FASTQ line " + std::to_string(line_) +
                     ": empty read name");
  }
  // Copy name/sequence/quality contiguously into the arena as each line is
  // scanned (the line window dies at the next next_line call), validate,
  // then normalize the sequence span in place and commit.
  const u64 offset = batch.append_bytes(data + 1, len - 1);
  const u32 name_len = static_cast<u32>(len - 1);

  if (!next_line(&data, &len)) {
    throw ParseError("FASTQ record truncated at line " +
                     std::to_string(line_));
  }
  batch.append_bytes(data, len);
  const u32 seq_len = static_cast<u32>(len);

  if (!next_line(&data, &len)) {
    throw ParseError("FASTQ record truncated at line " +
                     std::to_string(line_));
  }
  const bool plus_ok = len > 0 && data[0] == '+';

  if (!next_line(&data, &len)) {
    throw ParseError("FASTQ record truncated at line " +
                     std::to_string(line_));
  }
  const u32 qual_len = static_cast<u32>(len);
  batch.append_bytes(data, len);
  if (!plus_ok) {
    throw ParseError("FASTQ line " + std::to_string(line_ - 1) +
                     ": expected '+' separator");
  }
  if (seq_len != qual_len) {
    throw ParseError("FASTQ record '" +
                     std::string(batch.arena_at(offset), name_len) +
                     "': sequence/quality length mismatch");
  }
  normalize_sequence_span(batch.arena_at(offset + name_len), seq_len);
  batch.commit(offset, name_len, seq_len);
  ++count_;
  bytes_ += 1 + name_len + 1 + seq_len + 1 + 2 + seq_len + 1;
  return true;
}

usize FastqBlockReader::read_batch(ReadBatch& batch, usize max_reads) {
  usize appended = 0;
  while (appended < max_reads && parse_record(batch)) ++appended;
  return appended;
}

}  // namespace staratlas
