#include "sim/read_simulator.h"

#include <algorithm>
#include <cstdio>

#include "common/error.h"
#include "index/packed_sequence.h"

namespace staratlas {

namespace {
constexpr u64 kMinTranscriptMargin = 20;

std::string read_name(const char* origin, u64 ordinal) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "read.%llu.%s",
                static_cast<unsigned long long>(ordinal), origin);
  return buf;
}
}  // namespace

ReadSimulator::ReadSimulator(const Assembly& assembly,
                             const Annotation& annotation,
                             std::vector<RepeatRegion> repeats)
    : assembly_(&assembly),
      annotation_(&annotation),
      repeats_(std::move(repeats)) {
  STARATLAS_CHECK(assembly.count_of(ContigClass::kChromosome) > 0);
  for (usize g = 0; g < annotation.num_genes(); ++g) {
    const Gene& gene = annotation.gene(static_cast<GeneId>(g));
    STARATLAS_CHECK(gene.contig < assembly.num_contigs());
    if (gene.exonic_length() >= 100 + kMinTranscriptMargin) {
      usable_genes_.push_back(static_cast<GeneId>(g));
    }
  }
}

void ReadSimulator::apply_errors(std::string& seq, double error_rate,
                                 Rng& rng) const {
  static const char kBases[] = "ACGT";
  for (char& c : seq) {
    if (rng.chance(error_rate)) {
      char replacement = kBases[rng.uniform(4)];
      while (replacement == c) replacement = kBases[rng.uniform(4)];
      c = replacement;
    }
  }
}

std::string ReadSimulator::quality_string(u64 length, Rng& rng) const {
  // Mostly high quality with occasional dips — enough structure that the
  // RLE codec in the SRA container has something real to compress.
  std::string quality(length, 'I');
  for (auto& q : quality) {
    if (rng.chance(0.02)) q = static_cast<char>('#' + rng.uniform(20));
  }
  return quality;
}

FastqRecord ReadSimulator::make_exonic(const LibraryProfile& profile, Rng& rng,
                                       const std::vector<double>& expression,
                                       u64 ordinal) const {
  STARATLAS_CHECK(!usable_genes_.empty());
  const GeneId gene_id =
      usable_genes_[rng.weighted_index(expression)];
  const Gene& gene = annotation_->gene(gene_id);
  const std::string transcript = gene.transcript_sequence(*assembly_);
  STARATLAS_CHECK(transcript.size() >= profile.read_length);
  const u64 pos = rng.uniform(transcript.size() - profile.read_length + 1);
  std::string seq = transcript.substr(pos, profile.read_length);
  if (gene.strand == '-') seq = reverse_complement(seq);
  apply_errors(seq, profile.error_rate, rng);
  FastqRecord rec;
  rec.name = read_name("exon", ordinal);
  rec.quality = quality_string(seq.size(), rng);
  rec.sequence = std::move(seq);
  return rec;
}

FastqRecord ReadSimulator::make_genomic(const LibraryProfile& profile,
                                        Rng& rng, u64 ordinal,
                                        bool intronic) const {
  // Intronic: a position inside a random gene span. Intergenic: anywhere
  // on a chromosome.
  const auto& contigs = assembly_->contigs();
  u64 pos = 0;
  ContigId contig = 0;
  if (intronic && !usable_genes_.empty()) {
    const Gene& gene =
        annotation_->gene(usable_genes_[rng.uniform(usable_genes_.size())]);
    contig = gene.contig;
    const u64 span = gene.span();
    if (span > profile.read_length) {
      pos = gene.start() + rng.uniform(span - profile.read_length);
    } else {
      pos = gene.start();
    }
  } else {
    // Uniform over chromosomes by length.
    std::vector<double> weights;
    for (const auto& c : contigs) {
      weights.push_back(c.cls == ContigClass::kChromosome
                            ? static_cast<double>(c.length())
                            : 0.0);
    }
    contig = static_cast<ContigId>(rng.weighted_index(weights));
    pos = rng.uniform(contigs[contig].length() - profile.read_length);
  }
  std::string seq =
      contigs[contig].sequence.substr(pos, profile.read_length);
  if (rng.chance(0.5)) seq = reverse_complement(seq);
  apply_errors(seq, profile.error_rate, rng);
  FastqRecord rec;
  rec.name = read_name(intronic ? "intron" : "intergenic", ordinal);
  rec.quality = quality_string(seq.size(), rng);
  rec.sequence = std::move(seq);
  return rec;
}

FastqRecord ReadSimulator::make_repeat(const LibraryProfile& profile, Rng& rng,
                                       u64 ordinal) const {
  STARATLAS_CHECK(!repeats_.empty());
  const RepeatRegion& region = repeats_[rng.uniform(repeats_.size())];
  const u64 region_len = region.end - region.start;
  STARATLAS_CHECK(region_len > profile.read_length);
  const u64 pos = region.start + rng.uniform(region_len - profile.read_length);
  std::string seq = assembly_->contig(region.contig)
                        .sequence.substr(pos, profile.read_length);
  if (rng.chance(0.5)) seq = reverse_complement(seq);
  apply_errors(seq, profile.error_rate, rng);
  FastqRecord rec;
  rec.name = read_name("repeat", ordinal);
  rec.quality = quality_string(seq.size(), rng);
  rec.sequence = std::move(seq);
  return rec;
}

FastqRecord ReadSimulator::make_junk(const LibraryProfile& profile, Rng& rng,
                                     u64 ordinal) const {
  // Junk reads model what dominates a 3'-tag single-cell library aligned
  // like bulk data: poly-A tails, adapter concatemers, and foreign
  // (ambient/microbial) sequence. None of it aligns to the genome.
  static const char kBases[] = "ACGT";
  std::string seq(profile.read_length, 'A');
  const double draw = rng.uniform01();
  if (draw < 0.35) {
    // Poly-A with sporadic miscalls.
    for (auto& c : seq) {
      if (rng.chance(0.05)) c = kBases[rng.uniform(4)];
    }
  } else if (draw < 0.55) {
    // Adapter concatemer: a short motif tiled across the read.
    Rng motif_rng = rng.fork("adapter");
    std::string adapter(34, 'A');
    for (auto& c : adapter) c = kBases[motif_rng.uniform(4)];
    for (usize i = 0; i < seq.size(); ++i) {
      seq[i] = adapter[i % adapter.size()];
    }
    // A couple of point changes so concatemers are not all identical.
    for (auto& c : seq) {
      if (rng.chance(0.02)) c = kBases[rng.uniform(4)];
    }
  } else {
    // Foreign random sequence.
    for (auto& c : seq) c = kBases[rng.uniform(4)];
  }
  FastqRecord rec;
  rec.name = read_name("junk", ordinal);
  rec.quality = quality_string(seq.size(), rng);
  rec.sequence = std::move(seq);
  return rec;
}

std::string ReadSimulator::sample_fragment(
    const LibraryProfile& profile, const FragmentModel& fragments, Rng& rng,
    const std::vector<double>& expression) const {
  const u64 min_len = profile.read_length + 10;
  u64 frag_len = static_cast<u64>(std::max(
      static_cast<double>(min_len),
      rng.normal(static_cast<double>(fragments.mean_length),
                 static_cast<double>(fragments.sd))));

  const std::vector<double> mixture = {
      profile.exonic_fraction, profile.intronic_fraction,
      profile.intergenic_fraction, profile.repeat_fraction,
      profile.junk_fraction};
  switch (rng.weighted_index(mixture)) {
    case 0: {  // exonic: fragment of a spliced transcript
      const GeneId gene_id = usable_genes_[rng.weighted_index(expression)];
      const Gene& gene = annotation_->gene(gene_id);
      const std::string transcript = gene.transcript_sequence(*assembly_);
      frag_len = std::min<u64>(frag_len, transcript.size());
      if (frag_len < profile.read_length) return {};
      const u64 pos = rng.uniform(transcript.size() - frag_len + 1);
      std::string fragment = transcript.substr(pos, frag_len);
      if (gene.strand == '-') fragment = reverse_complement(fragment);
      return fragment;
    }
    case 1:    // intronic: genomic fragment inside a gene span
    case 2: {  // intergenic: genomic fragment anywhere
      const auto& contigs = assembly_->contigs();
      std::vector<double> weights;
      for (const auto& c : contigs) {
        weights.push_back(c.cls == ContigClass::kChromosome
                              ? static_cast<double>(c.length())
                              : 0.0);
      }
      const auto contig = static_cast<ContigId>(rng.weighted_index(weights));
      const u64 max_pos = contigs[contig].length() - frag_len;
      return contigs[contig].sequence.substr(rng.uniform(max_pos), frag_len);
    }
    case 3: {  // repeat
      const RepeatRegion& region = repeats_[rng.uniform(repeats_.size())];
      const u64 region_len = region.end - region.start;
      frag_len = std::min<u64>(frag_len, region_len);
      const u64 pos = region.start + rng.uniform(region_len - frag_len + 1);
      return assembly_->contig(region.contig).sequence.substr(pos, frag_len);
    }
    default:
      return {};  // junk pair
  }
}

ReadPairSet ReadSimulator::simulate_pairs(const LibraryProfile& profile,
                                          usize num_pairs,
                                          const FragmentModel& fragments,
                                          Rng rng) const {
  profile.validate();
  STARATLAS_CHECK(!usable_genes_.empty());
  STARATLAS_CHECK(fragments.mean_length >= profile.read_length);

  Rng expr_rng = rng.fork("expression");
  std::vector<double> expression(usable_genes_.size());
  for (auto& level : expression) {
    level = expr_rng.lognormal_median(1.0, profile.expression_ln_sigma);
  }

  ReadPairSet pairs;
  pairs.mate1.reserve(num_pairs);
  pairs.mate2.reserve(num_pairs);
  const u64 read_len = profile.read_length;
  for (usize p = 0; p < num_pairs; ++p) {
    std::string fragment =
        sample_fragment(profile, fragments, rng, expression);
    FastqRecord r1;
    FastqRecord r2;
    if (fragment.size() >= read_len) {
      // Random sequencing strand of the fragment.
      if (rng.chance(0.5)) fragment = reverse_complement(fragment);
      std::string seq1 = fragment.substr(0, read_len);
      std::string seq2 =
          reverse_complement(fragment.substr(fragment.size() - read_len));
      apply_errors(seq1, profile.error_rate, rng);
      apply_errors(seq2, profile.error_rate, rng);
      r1.sequence = std::move(seq1);
      r2.sequence = std::move(seq2);
      r1.name = read_name("frag/1", p);
      r2.name = read_name("frag/2", p);
    } else {
      // Junk pair: both mates unmappable.
      r1 = make_junk(profile, rng, p);
      r2 = make_junk(profile, rng, p);
      r1.name = read_name("junk/1", p);
      r2.name = read_name("junk/2", p);
    }
    r1.quality = quality_string(r1.sequence.size(), rng);
    r2.quality = quality_string(r2.sequence.size(), rng);
    pairs.mate1.push_back(std::move(r1));
    pairs.mate2.push_back(std::move(r2));
  }
  pairs.fastq_bytes = fastq_serialized_size(pairs.mate1) +
                      fastq_serialized_size(pairs.mate2);
  return pairs;
}

ReadSet ReadSimulator::simulate(const LibraryProfile& profile, usize num_reads,
                                Rng rng) const {
  profile.validate();
  STARATLAS_CHECK(!usable_genes_.empty());

  // Per-sample expression levels (lognormal skew over usable genes).
  Rng expr_rng = rng.fork("expression");
  std::vector<double> expression(usable_genes_.size());
  for (auto& level : expression) {
    level = expr_rng.lognormal_median(1.0, profile.expression_ln_sigma);
  }

  std::vector<FastqRecord> reads;
  reads.reserve(num_reads);
  const std::vector<double> mixture = {
      profile.exonic_fraction, profile.intronic_fraction,
      profile.intergenic_fraction, profile.repeat_fraction,
      profile.junk_fraction};
  for (usize r = 0; r < num_reads; ++r) {
    switch (rng.weighted_index(mixture)) {
      case 0: reads.push_back(make_exonic(profile, rng, expression, r)); break;
      case 1: reads.push_back(make_genomic(profile, rng, r, /*intronic=*/true)); break;
      case 2: reads.push_back(make_genomic(profile, rng, r, /*intronic=*/false)); break;
      case 3: reads.push_back(make_repeat(profile, rng, r)); break;
      default: reads.push_back(make_junk(profile, rng, r)); break;
    }
  }
  return make_read_set(std::move(reads));
}

}  // namespace staratlas
