#include "sim/library_profile.h"

#include <cmath>

#include "common/error.h"

namespace staratlas {

const char* library_type_name(LibraryType type) {
  switch (type) {
    case LibraryType::kBulk: return "bulk";
    case LibraryType::kSingleCell: return "single_cell";
  }
  return "?";
}

void LibraryProfile::validate() const {
  const double total = exonic_fraction + intronic_fraction +
                       intergenic_fraction + repeat_fraction + junk_fraction;
  if (std::fabs(total - 1.0) > 1e-9) {
    throw InvalidArgument("library profile fractions sum to " +
                          std::to_string(total) + ", expected 1.0");
  }
  if (error_rate < 0.0 || error_rate > 0.2) {
    throw InvalidArgument("implausible error rate");
  }
  if (read_length < 30) {
    throw InvalidArgument("read length too short to align");
  }
}

LibraryProfile bulk_rna_profile() {
  LibraryProfile profile;
  profile.name = "bulk_polyA";
  profile.type = LibraryType::kBulk;
  profile.exonic_fraction = 0.78;
  profile.intronic_fraction = 0.06;
  profile.intergenic_fraction = 0.02;
  profile.repeat_fraction = 0.06;
  profile.junk_fraction = 0.08;
  profile.error_rate = 0.003;
  profile.expression_ln_sigma = 1.0;
  profile.validate();
  return profile;
}

LibraryProfile single_cell_profile() {
  LibraryProfile profile;
  profile.name = "single_cell_3prime";
  profile.type = LibraryType::kSingleCell;
  profile.exonic_fraction = 0.18;
  profile.intronic_fraction = 0.02;
  profile.intergenic_fraction = 0.01;
  profile.repeat_fraction = 0.04;
  profile.junk_fraction = 0.75;
  profile.error_rate = 0.006;
  profile.expression_ln_sigma = 1.6;  // shallow, skewed expression
  profile.validate();
  return profile;
}

LibraryProfile profile_for(LibraryType type) {
  return type == LibraryType::kBulk ? bulk_rna_profile()
                                    : single_cell_profile();
}

}  // namespace staratlas
