#include "sim/catalog.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/error.h"

namespace staratlas {

namespace {
const char* kTissues[] = {"lung",   "liver", "heart",  "kidney", "brain",
                          "muscle", "skin",  "spleen", "colon",  "blood"};
}

std::vector<SraSample> make_catalog(const CatalogSpec& spec) {
  STARATLAS_CHECK(spec.num_samples > 0);
  STARATLAS_CHECK(spec.single_cell_fraction >= 0.0 &&
                  spec.single_cell_fraction <= 1.0);
  STARATLAS_CHECK(spec.mean_fastq.bytes() > 0);
  STARATLAS_CHECK(spec.reads_at_mean >= spec.min_reads);

  Rng rng(spec.seed);

  // Exact single-cell count, shuffled positions.
  const usize num_single_cell = static_cast<usize>(
      std::llround(spec.single_cell_fraction *
                   static_cast<double>(spec.num_samples)));
  std::vector<LibraryType> types(spec.num_samples, LibraryType::kBulk);
  for (usize i = 0; i < num_single_cell && i < types.size(); ++i) {
    types[i] = LibraryType::kSingleCell;
  }
  rng.shuffle(types);

  // Lognormal sizes with the requested overall MEAN. The bulk median is
  // deflated so that, after the single-cell multiplier, the catalog-wide
  // mean still equals spec.mean_fastq (mean = median * e^{s^2/2}).
  const double sc_fraction = static_cast<double>(num_single_cell) /
                             static_cast<double>(spec.num_samples);
  const double mean_inflation =
      1.0 + sc_fraction * (spec.single_cell_size_multiplier - 1.0);
  const double median_bytes =
      static_cast<double>(spec.mean_fastq.bytes()) / mean_inflation /
      std::exp(spec.size_ln_sigma * spec.size_ln_sigma / 2.0);

  std::vector<SraSample> catalog;
  catalog.reserve(spec.num_samples);
  for (usize i = 0; i < spec.num_samples; ++i) {
    SraSample sample;
    char acc[32];
    std::snprintf(acc, sizeof(acc), "SRR24%06llu",
                  static_cast<unsigned long long>(100'000 + i));
    sample.accession = acc;
    sample.type = types[i];
    sample.tissue = sample.type == LibraryType::kSingleCell
                        ? "single_cell"
                        : kTissues[rng.uniform(std::size(kTissues))];
    double fastq_bytes = rng.lognormal_median(median_bytes, spec.size_ln_sigma);
    if (sample.type == LibraryType::kSingleCell) {
      fastq_bytes *= spec.single_cell_size_multiplier;
    }
    sample.fastq_bytes = ByteSize(static_cast<u64>(fastq_bytes));
    // SRA containers run ~2.3x smaller than the FASTQ they decode to.
    sample.sra_bytes = ByteSize(static_cast<u64>(fastq_bytes / 2.3));
    const double scale =
        fastq_bytes / static_cast<double>(spec.mean_fastq.bytes());
    sample.num_reads = std::max<u64>(
        spec.min_reads,
        static_cast<u64>(static_cast<double>(spec.reads_at_mean) * scale));
    sample.seed = hash64(spec.seed * 1'000'003 + i);
    catalog.push_back(std::move(sample));
  }
  return catalog;
}

CatalogSummary summarize(const std::vector<SraSample>& catalog) {
  CatalogSummary summary;
  summary.num_samples = catalog.size();
  u64 total_bytes = 0;
  for (const auto& sample : catalog) {
    if (sample.type == LibraryType::kSingleCell) ++summary.num_single_cell;
    total_bytes += sample.fastq_bytes.bytes();
    summary.total_reads += sample.num_reads;
  }
  summary.total_fastq = ByteSize(total_bytes);
  summary.mean_fastq = ByteSize(
      catalog.empty() ? 0 : total_bytes / catalog.size());
  return summary;
}

}  // namespace staratlas
