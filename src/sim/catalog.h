// SRA sample catalog: the queue of accessions the Transcriptomics Atlas
// pipeline processes. Sizes follow the paper's corpus statistics (mean
// FASTQ 15.9 GiB at paper scale; ~3.8% single-cell libraries, i.e. 38 of
// 1000 alignments early-stopped in Fig 4).
#pragma once

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "common/units.h"
#include "sim/library_profile.h"

namespace staratlas {

struct SraSample {
  std::string accession;  ///< "SRR2400xxxx"
  LibraryType type = LibraryType::kBulk;
  std::string tissue;
  ByteSize sra_bytes;    ///< paper-scale modeled .sra object size
  ByteSize fastq_bytes;  ///< paper-scale modeled FASTQ size (~2.3x sra)
  u64 num_reads = 0;     ///< synthetic-scale reads actually simulated
  u64 seed = 0;          ///< read-simulation seed for this sample
};

struct CatalogSpec {
  usize num_samples = 1000;
  /// Fraction of single-cell libraries (paper: 38 / 1000).
  double single_cell_fraction = 0.038;
  /// Paper-scale mean FASTQ size across the WHOLE catalog (Fig 3 corpus:
  /// 15.9 GiB mean). Bulk sizes are scaled down internally so this overall
  /// mean holds despite the single-cell multiplier.
  ByteSize mean_fastq = ByteSize::from_gib(15.9);
  /// Log-space sigma of the sample-size lognormal.
  double size_ln_sigma = 0.55;
  /// Single-cell runs are far deeper than bulk (3'-tag libraries sequence
  /// hundreds of millions of reads); this multiplier on their size is what
  /// makes 38/1000 alignments account for ~20% of total STAR time (Fig 4).
  double single_cell_size_multiplier = 7.0;
  /// Synthetic reads for a mean-sized sample; scales linearly with size.
  u64 reads_at_mean = 20'000;
  u64 min_reads = 2'000;
  u64 seed = 7;
};

/// Deterministically generates a catalog. The number of single-cell
/// samples is exact (round(num_samples * fraction)), matching the paper's
/// "38 out of 1000" phrasing; their positions in the queue are shuffled.
std::vector<SraSample> make_catalog(const CatalogSpec& spec);

/// Summary statistics used by bench headers.
struct CatalogSummary {
  usize num_samples = 0;
  usize num_single_cell = 0;
  ByteSize total_fastq;
  ByteSize mean_fastq;
  u64 total_reads = 0;
};
CatalogSummary summarize(const std::vector<SraSample>& catalog);

}  // namespace staratlas
