// RNA-seq library composition profiles.
//
// The paper's early-stopping result rests on one empirical fact: bulk
// poly-A libraries map well (>80%) while the single-cell libraries in
// their corpus mapped below 30% ("lack of complete mRNA coverage within
// the library"). We model a library as a mixture over read origins; the
// mapping-rate separation then *emerges* from real alignment, rather than
// being hardcoded.
#pragma once

#include <string>

#include "common/types.h"

namespace staratlas {

enum class LibraryType : u8 { kBulk = 0, kSingleCell = 1 };

const char* library_type_name(LibraryType type);

struct LibraryProfile {
  std::string name;
  LibraryType type = LibraryType::kBulk;

  // Mixture over read origins; fractions must sum to 1.
  double exonic_fraction = 0.0;      ///< from spliced transcripts
  double intronic_fraction = 0.0;    ///< from unspliced gene spans
  double intergenic_fraction = 0.0;  ///< from random genomic positions
  double repeat_fraction = 0.0;      ///< from satellite repeat arrays
  double junk_fraction = 0.0;        ///< adapter/poly-A/foreign — unmappable

  double error_rate = 0.003;  ///< per-base substitution errors
  u64 read_length = 100;
  /// Log-space sigma of the per-gene expression lognormal.
  double expression_ln_sigma = 1.0;

  /// Throws InvalidArgument unless fractions sum to ~1.
  void validate() const;
};

/// Bulk poly-A RNA-seq: maps in the high 80s, mostly exonic.
LibraryProfile bulk_rna_profile();

/// 3'-tag single-cell library processed as if bulk (the data the paper's
/// early stopping weeds out): dominated by unmappable template-switch
/// artifacts, poly-A and ambient junk; maps well below 30%.
LibraryProfile single_cell_profile();

/// Profile lookup by library type.
LibraryProfile profile_for(LibraryType type);

}  // namespace staratlas
