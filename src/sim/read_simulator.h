// Read simulator: samples FASTQ reads from a genome according to a
// LibraryProfile. Reads are always drawn from the CHROMOSOMES (identical
// across releases), so the same simulated sample can be aligned against
// any release of the assembly — exactly the paper's Fig 3 setup.
#pragma once

#include "common/rng.h"
#include "genome/annotation.h"
#include "genome/model.h"
#include "genome/synthesizer.h"
#include "io/fastq.h"
#include "sim/library_profile.h"

namespace staratlas {

/// Paired-end fragment-size model (FR orientation).
struct FragmentModel {
  u64 mean_length = 260;
  u64 sd = 40;
};

/// A paired-end sample: mate1[i] and mate2[i] are ends of one fragment,
/// mate2 reported in sequencing orientation (reverse complement of the
/// fragment's 3' end).
struct ReadPairSet {
  std::vector<FastqRecord> mate1;
  std::vector<FastqRecord> mate2;
  ByteSize fastq_bytes;  ///< both FASTQ files combined

  usize size() const { return mate1.size(); }
  bool empty() const { return mate1.empty(); }
};

class ReadSimulator {
 public:
  /// `assembly` supplies the chromosomes (any release works — chromosomes
  /// are shared); `annotation` the genes; `repeats` the satellite arrays.
  ReadSimulator(const Assembly& assembly, const Annotation& annotation,
                std::vector<RepeatRegion> repeats);

  /// Simulates `num_reads` reads. Deterministic in `rng`.
  ReadSet simulate(const LibraryProfile& profile, usize num_reads,
                   Rng rng) const;

  /// Simulates `num_pairs` FR read pairs. Deterministic in `rng`.
  ReadPairSet simulate_pairs(const LibraryProfile& profile, usize num_pairs,
                             const FragmentModel& fragments, Rng rng) const;

 private:
  /// Extracts a source fragment for a paired read according to the
  /// profile mixture; empty string means "junk pair".
  std::string sample_fragment(const LibraryProfile& profile,
                              const FragmentModel& fragments, Rng& rng,
                              const std::vector<double>& expression) const;
  FastqRecord make_exonic(const LibraryProfile& profile, Rng& rng,
                          const std::vector<double>& expression,
                          u64 ordinal) const;
  FastqRecord make_genomic(const LibraryProfile& profile, Rng& rng,
                           u64 ordinal, bool intronic) const;
  FastqRecord make_repeat(const LibraryProfile& profile, Rng& rng,
                          u64 ordinal) const;
  FastqRecord make_junk(const LibraryProfile& profile, Rng& rng,
                        u64 ordinal) const;
  void apply_errors(std::string& seq, double error_rate, Rng& rng) const;
  std::string quality_string(u64 length, Rng& rng) const;

  const Assembly* assembly_;
  const Annotation* annotation_;
  std::vector<RepeatRegion> repeats_;
  std::vector<GeneId> usable_genes_;  ///< exonic length >= read length + margin
};

}  // namespace staratlas
