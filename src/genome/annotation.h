// Gene annotation: the structure STAR's --quantMode GeneCounts consumes.
// Coordinates are 0-based half-open on the owning contig; GTF conversion
// handles the 1-based inclusive convention.
#pragma once

#include <string>
#include <vector>

#include "common/types.h"
#include "genome/model.h"
#include "io/gtf.h"

namespace staratlas {

struct Exon {
  u64 start = 0;  ///< 0-based inclusive
  u64 end = 0;    ///< 0-based exclusive

  u64 length() const { return end - start; }
};

struct Gene {
  std::string id;    ///< e.g. "SYNG00000123"
  std::string name;  ///< display symbol
  ContigId contig = 0;
  char strand = '+';
  std::vector<Exon> exons;  ///< sorted, non-overlapping

  u64 start() const { return exons.empty() ? 0 : exons.front().start; }
  u64 end() const { return exons.empty() ? 0 : exons.back().end; }
  u64 span() const { return end() - start(); }
  u64 exonic_length() const;

  /// Spliced transcript sequence (exons concatenated; forward strand —
  /// the read simulator handles reverse-complementing for '-' genes).
  std::string transcript_sequence(const Assembly& assembly) const;
};

class Annotation {
 public:
  Annotation() = default;
  explicit Annotation(std::vector<Gene> genes);

  const std::vector<Gene>& genes() const { return genes_; }
  const Gene& gene(GeneId id) const;
  usize num_genes() const { return genes_.size(); }

  /// Finds a gene index by its id string; returns kNoGene if absent.
  GeneId find_gene(const std::string& gene_id) const;

  /// All genes on one contig, in start order.
  std::vector<GeneId> genes_on_contig(ContigId contig) const;

  /// Total exonic residues across all genes.
  u64 total_exonic_length() const;

  /// Serializes to GTF features (gene + transcript + exon rows).
  std::vector<GtfFeature> to_gtf(const Assembly& assembly) const;

  /// Builds an annotation from GTF features, resolving contig names through
  /// the assembly. Exons are grouped by gene_id; gene/transcript rows are
  /// validated but exons define the structure. Throws on unknown contigs.
  static Annotation from_gtf(const std::vector<GtfFeature>& features,
                             const Assembly& assembly);

 private:
  std::vector<Gene> genes_;
};

}  // namespace staratlas
