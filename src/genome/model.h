// Genome assembly model.
//
// Mirrors the Ensembl distinction the paper's Optimization A hinges on:
// a "toplevel" assembly contains chromosomes *plus* unlocalized/unplaced
// scaffolds, while "primary_assembly" omits the scaffolds. Between release
// 108-style and 111-style assemblies the scaffolds shrink dramatically
// because most were placed onto chromosomes.
#pragma once

#include <string>
#include <vector>

#include "common/types.h"
#include "common/units.h"
#include "io/fasta.h"

namespace staratlas {

enum class ContigClass {
  kChromosome,
  kUnlocalizedScaffold,  ///< known chromosome, unknown position
  kUnplacedScaffold,     ///< unknown chromosome
};

const char* contig_class_name(ContigClass cls);

struct Contig {
  std::string name;
  ContigClass cls = ContigClass::kChromosome;
  std::string sequence;  ///< uppercase ACGTN

  u64 length() const { return sequence.size(); }
};

/// Which sequence set an assembly file contains.
enum class AssemblyType { kToplevel, kPrimaryAssembly };

const char* assembly_type_name(AssemblyType type);

class Assembly {
 public:
  Assembly() = default;
  Assembly(std::string species, int release, AssemblyType type,
           std::vector<Contig> contigs);

  const std::string& species() const { return species_; }
  int release() const { return release_; }
  AssemblyType type() const { return type_; }

  const std::vector<Contig>& contigs() const { return contigs_; }
  const Contig& contig(ContigId id) const;
  usize num_contigs() const { return contigs_.size(); }

  /// Finds a contig by name; returns nullptr if absent.
  const Contig* find_contig(const std::string& name) const;
  /// Index of a contig by name; throws InvalidArgument if absent.
  ContigId contig_id(const std::string& name) const;

  /// Total residues across all contigs.
  u64 total_length() const;
  /// Total residues in contigs of one class.
  u64 length_of(ContigClass cls) const;
  /// Number of contigs of one class.
  usize count_of(ContigClass cls) const;

  /// FASTA size of this assembly (headers + wrapped sequence lines).
  ByteSize fasta_size() const;

  /// Drops scaffolds, keeping chromosomes only (the "primary_assembly").
  Assembly primary_assembly() const;

  /// Serializes to FASTA records; the contig class is encoded in the
  /// description field so round-trips preserve it.
  std::vector<FastaRecord> to_fasta() const;

  /// Rebuilds an assembly from FASTA records produced by to_fasta(); contig
  /// classes are recovered from the description (defaulting to chromosome).
  static Assembly from_fasta(std::string species, int release, AssemblyType type,
                             const std::vector<FastaRecord>& records);

 private:
  std::string species_;
  int release_ = 0;
  AssemblyType type_ = AssemblyType::kToplevel;
  std::vector<Contig> contigs_;
};

}  // namespace staratlas
