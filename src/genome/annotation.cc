#include "genome/annotation.h"

#include <algorithm>
#include <map>

#include "common/error.h"

namespace staratlas {

u64 Gene::exonic_length() const {
  u64 total = 0;
  for (const auto& exon : exons) total += exon.length();
  return total;
}

std::string Gene::transcript_sequence(const Assembly& assembly) const {
  const std::string& seq = assembly.contig(contig).sequence;
  std::string transcript;
  transcript.reserve(exonic_length());
  for (const auto& exon : exons) {
    STARATLAS_CHECK(exon.end <= seq.size());
    transcript.append(seq, exon.start, exon.length());
  }
  return transcript;
}

Annotation::Annotation(std::vector<Gene> genes) : genes_(std::move(genes)) {
  for (auto& gene : genes_) {
    STARATLAS_CHECK(!gene.id.empty());
    STARATLAS_CHECK(!gene.exons.empty());
    std::sort(gene.exons.begin(), gene.exons.end(),
              [](const Exon& a, const Exon& b) { return a.start < b.start; });
    for (usize i = 0; i < gene.exons.size(); ++i) {
      STARATLAS_CHECK(gene.exons[i].start < gene.exons[i].end);
      if (i > 0) STARATLAS_CHECK(gene.exons[i - 1].end <= gene.exons[i].start);
    }
  }
}

const Gene& Annotation::gene(GeneId id) const {
  STARATLAS_CHECK(id < genes_.size());
  return genes_[id];
}

GeneId Annotation::find_gene(const std::string& gene_id) const {
  for (usize i = 0; i < genes_.size(); ++i) {
    if (genes_[i].id == gene_id) return static_cast<GeneId>(i);
  }
  return kNoGene;
}

std::vector<GeneId> Annotation::genes_on_contig(ContigId contig) const {
  std::vector<GeneId> ids;
  for (usize i = 0; i < genes_.size(); ++i) {
    if (genes_[i].contig == contig) ids.push_back(static_cast<GeneId>(i));
  }
  std::sort(ids.begin(), ids.end(), [this](GeneId a, GeneId b) {
    return genes_[a].start() < genes_[b].start();
  });
  return ids;
}

u64 Annotation::total_exonic_length() const {
  u64 total = 0;
  for (const auto& gene : genes_) total += gene.exonic_length();
  return total;
}

std::vector<GtfFeature> Annotation::to_gtf(const Assembly& assembly) const {
  std::vector<GtfFeature> features;
  for (const auto& gene : genes_) {
    const std::string& contig_name = assembly.contig(gene.contig).name;
    GtfFeature gene_row;
    gene_row.contig = contig_name;
    gene_row.type = FeatureType::kGene;
    gene_row.start = gene.start() + 1;
    gene_row.end = gene.end();
    gene_row.strand = gene.strand;
    gene_row.gene_id = gene.id;
    features.push_back(gene_row);

    GtfFeature tx_row = gene_row;
    tx_row.type = FeatureType::kTranscript;
    tx_row.transcript_id = gene.id + ".t1";
    features.push_back(tx_row);

    for (const auto& exon : gene.exons) {
      GtfFeature exon_row = tx_row;
      exon_row.type = FeatureType::kExon;
      exon_row.start = exon.start + 1;
      exon_row.end = exon.end;
      features.push_back(exon_row);
    }
  }
  return features;
}

Annotation Annotation::from_gtf(const std::vector<GtfFeature>& features,
                                const Assembly& assembly) {
  struct Builder {
    Gene gene;
    bool seen = false;
  };
  std::map<std::string, Builder> by_id;
  std::vector<std::string> order;
  for (const auto& f : features) {
    auto [it, inserted] = by_id.try_emplace(f.gene_id);
    if (inserted) order.push_back(f.gene_id);
    Builder& b = it->second;
    if (!b.seen) {
      b.gene.id = f.gene_id;
      b.gene.name = f.gene_id;
      b.gene.contig = assembly.contig_id(f.contig);
      b.gene.strand = f.strand;
      b.seen = true;
    }
    if (f.type == FeatureType::kExon) {
      STARATLAS_CHECK(f.start >= 1);
      b.gene.exons.push_back({f.start - 1, f.end});
    }
  }
  std::vector<Gene> genes;
  genes.reserve(order.size());
  for (const auto& id : order) {
    Builder& b = by_id[id];
    if (b.gene.exons.empty()) {
      throw ParseError("gene '" + id + "' has no exon features");
    }
    std::sort(b.gene.exons.begin(), b.gene.exons.end(),
              [](const Exon& a, const Exon& e) { return a.start < e.start; });
    genes.push_back(std::move(b.gene));
  }
  return Annotation(std::move(genes));
}

}  // namespace staratlas
