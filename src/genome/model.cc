#include "genome/model.h"

#include "common/error.h"

namespace staratlas {

const char* contig_class_name(ContigClass cls) {
  switch (cls) {
    case ContigClass::kChromosome: return "chromosome";
    case ContigClass::kUnlocalizedScaffold: return "unlocalized";
    case ContigClass::kUnplacedScaffold: return "unplaced";
  }
  return "?";
}

const char* assembly_type_name(AssemblyType type) {
  switch (type) {
    case AssemblyType::kToplevel: return "toplevel";
    case AssemblyType::kPrimaryAssembly: return "primary_assembly";
  }
  return "?";
}

Assembly::Assembly(std::string species, int release, AssemblyType type,
                   std::vector<Contig> contigs)
    : species_(std::move(species)),
      release_(release),
      type_(type),
      contigs_(std::move(contigs)) {
  for (const auto& c : contigs_) {
    STARATLAS_CHECK(!c.name.empty());
    STARATLAS_CHECK(!c.sequence.empty());
  }
}

const Contig& Assembly::contig(ContigId id) const {
  STARATLAS_CHECK(id < contigs_.size());
  return contigs_[id];
}

const Contig* Assembly::find_contig(const std::string& name) const {
  for (const auto& c : contigs_) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

ContigId Assembly::contig_id(const std::string& name) const {
  for (usize i = 0; i < contigs_.size(); ++i) {
    if (contigs_[i].name == name) return static_cast<ContigId>(i);
  }
  throw InvalidArgument("no contig named '" + name + "'");
}

u64 Assembly::total_length() const {
  u64 total = 0;
  for (const auto& c : contigs_) total += c.length();
  return total;
}

u64 Assembly::length_of(ContigClass cls) const {
  u64 total = 0;
  for (const auto& c : contigs_) {
    if (c.cls == cls) total += c.length();
  }
  return total;
}

usize Assembly::count_of(ContigClass cls) const {
  usize n = 0;
  for (const auto& c : contigs_) n += (c.cls == cls) ? 1 : 0;
  return n;
}

ByteSize Assembly::fasta_size() const {
  constexpr u64 kWrap = 60;
  u64 bytes = 0;
  for (const auto& c : contigs_) {
    // ">name class\n" header.
    bytes += 1 + c.name.size() + 1 +
             std::string(contig_class_name(c.cls)).size() + 1;
    const u64 len = c.length();
    bytes += len + (len + kWrap - 1) / kWrap;  // residues + newlines
  }
  return ByteSize(bytes);
}

Assembly Assembly::primary_assembly() const {
  std::vector<Contig> kept;
  for (const auto& c : contigs_) {
    if (c.cls == ContigClass::kChromosome) kept.push_back(c);
  }
  return Assembly(species_, release_, AssemblyType::kPrimaryAssembly,
                  std::move(kept));
}

std::vector<FastaRecord> Assembly::to_fasta() const {
  std::vector<FastaRecord> records;
  records.reserve(contigs_.size());
  for (const auto& c : contigs_) {
    records.push_back({c.name, contig_class_name(c.cls), c.sequence});
  }
  return records;
}

Assembly Assembly::from_fasta(std::string species, int release,
                              AssemblyType type,
                              const std::vector<FastaRecord>& records) {
  std::vector<Contig> contigs;
  contigs.reserve(records.size());
  for (const auto& rec : records) {
    Contig c;
    c.name = rec.name;
    c.sequence = rec.sequence;
    if (rec.description == "unlocalized") {
      c.cls = ContigClass::kUnlocalizedScaffold;
    } else if (rec.description == "unplaced") {
      c.cls = ContigClass::kUnplacedScaffold;
    } else {
      c.cls = ContigClass::kChromosome;
    }
    contigs.push_back(std::move(c));
  }
  return Assembly(std::move(species), release, type, std::move(contigs));
}

}  // namespace staratlas
