#include "genome/synthesizer.h"

#include <algorithm>
#include <cstdio>

#include "common/error.h"

namespace staratlas {

ReleaseSpec release108_style() {
  ReleaseSpec spec;
  spec.release = 108;
  // Scaffold volume tuned so toplevel(108) ~ 2.9x toplevel(111), matching
  // the paper's 85 GiB vs 29.5 GiB.
  spec.unlocalized_bytes_fraction = 1.85;
  spec.unplaced_count = 6;
  spec.min_scaffold_length = 8'000;
  spec.max_scaffold_length = 24'000;
  spec.scaffold_divergence = 0.008;
  spec.genic_bias = 0.95;
  spec.repeat_scaffold_fraction = 0.55;
  return spec;
}

ReleaseSpec release111_style() {
  ReleaseSpec spec;
  spec.release = 111;
  spec.unlocalized_bytes_fraction = 0.05;
  spec.unplaced_count = 2;
  spec.min_scaffold_length = 4'000;
  spec.max_scaffold_length = 16'000;
  spec.scaffold_divergence = 0.01;
  spec.genic_bias = 0.5;
  spec.repeat_scaffold_fraction = 0.0;
  return spec;
}

GenomeSynthesizer::GenomeSynthesizer(const GenomeSpec& spec) : spec_(spec) {
  STARATLAS_CHECK(spec.num_chromosomes > 0);
  STARATLAS_CHECK(spec.chromosome_length >= 10'000);
  STARATLAS_CHECK(spec.min_exons_per_gene >= 1);
  STARATLAS_CHECK(spec.min_exons_per_gene <= spec.max_exons_per_gene);
  STARATLAS_CHECK(spec.min_exon_length >= 30);
  STARATLAS_CHECK(spec.min_exon_length <= spec.max_exon_length);
  STARATLAS_CHECK(spec.min_intron_length <= spec.max_intron_length);
  STARATLAS_CHECK(spec.gc_content > 0.0 && spec.gc_content < 1.0);
  STARATLAS_CHECK(spec.repeat_motif_length >= 50);
  Rng rng(spec.seed);
  repeat_motif_ = random_sequence(rng, spec_.repeat_motif_length);
  build_primary(rng);
}

std::string GenomeSynthesizer::random_sequence(Rng& rng, u64 length) const {
  std::string seq(length, 'A');
  const double gc = spec_.gc_content;
  for (auto& c : seq) {
    const double draw = rng.uniform01();
    if (draw < gc / 2.0) {
      c = 'G';
    } else if (draw < gc) {
      c = 'C';
    } else if (draw < gc + (1.0 - gc) / 2.0) {
      c = 'A';
    } else {
      c = 'T';
    }
  }
  return seq;
}

std::string GenomeSynthesizer::repeat_array(Rng& rng, usize copies) const {
  static const char kBases[] = "ACGT";
  std::string array;
  array.reserve(copies * repeat_motif_.size());
  for (usize copy = 0; copy < copies; ++copy) {
    std::string unit = repeat_motif_;
    for (char& c : unit) {
      if (rng.chance(spec_.repeat_copy_divergence)) {
        c = kBases[rng.uniform(4)];
      }
    }
    array += unit;
  }
  return array;
}

void GenomeSynthesizer::build_primary(Rng& rng) {
  std::vector<Gene> genes;
  chromosomes_.reserve(spec_.num_chromosomes);
  u64 gene_counter = 0;

  // Genes occupy the first ~78% of each chromosome; the repeat array sits
  // at 85% so reads from genes and reads from repeats never overlap.
  const u64 gene_zone_end = spec_.chromosome_length * 78 / 100;
  const u64 repeat_start = spec_.chromosome_length * 85 / 100;
  const u64 repeat_len = spec_.repeat_motif_length * spec_.repeat_array_copies;
  STARATLAS_CHECK(repeat_start + repeat_len < spec_.chromosome_length);

  for (usize chrom_idx = 0; chrom_idx < spec_.num_chromosomes; ++chrom_idx) {
    Contig chromosome;
    chromosome.name = std::to_string(chrom_idx + 1);
    chromosome.cls = ContigClass::kChromosome;
    chromosome.sequence = random_sequence(rng, spec_.chromosome_length);

    // Splice the satellite array into the gene-free tail.
    const std::string array = repeat_array(rng, spec_.repeat_array_copies);
    chromosome.sequence.replace(repeat_start, array.size(), array);
    repeat_regions_.push_back({static_cast<ContigId>(chrom_idx), repeat_start,
                               repeat_start + array.size()});

    // Lay genes left-to-right with random intergenic gaps.
    u64 cursor = 200 + rng.uniform(800);
    for (usize g = 0; g < spec_.genes_per_chromosome; ++g) {
      Gene gene;
      char id_buf[32];
      std::snprintf(id_buf, sizeof(id_buf), "SYNG%08llu",
                    static_cast<unsigned long long>(++gene_counter));
      gene.id = id_buf;
      std::snprintf(id_buf, sizeof(id_buf), "GENE%llu",
                    static_cast<unsigned long long>(gene_counter));
      gene.name = id_buf;
      gene.contig = static_cast<ContigId>(chrom_idx);
      gene.strand = rng.chance(0.5) ? '+' : '-';

      const usize num_exons = static_cast<usize>(rng.uniform_range(
          static_cast<i64>(spec_.min_exons_per_gene),
          static_cast<i64>(spec_.max_exons_per_gene)));
      u64 pos = cursor;
      bool fits = true;
      for (usize e = 0; e < num_exons; ++e) {
        const u64 exon_len = static_cast<u64>(
            rng.uniform_range(static_cast<i64>(spec_.min_exon_length),
                              static_cast<i64>(spec_.max_exon_length)));
        if (pos + exon_len >= gene_zone_end) {
          fits = false;
          break;
        }
        gene.exons.push_back({pos, pos + exon_len});
        pos += exon_len;
        if (e + 1 < num_exons) {
          const u64 intron_len = static_cast<u64>(
              rng.uniform_range(static_cast<i64>(spec_.min_intron_length),
                                static_cast<i64>(spec_.max_intron_length)));
          pos += intron_len;
        }
      }
      if (!fits || gene.exons.empty()) break;  // gene zone full
      cursor = pos + 300 + rng.uniform(1'500);  // intergenic gap
      genes.push_back(std::move(gene));
    }
    chromosomes_.push_back(std::move(chromosome));
  }
  annotation_ = Annotation(std::move(genes));
}

Assembly GenomeSynthesizer::make_release(const ReleaseSpec& release) const {
  STARATLAS_CHECK(release.min_scaffold_length >= 1'000);
  STARATLAS_CHECK(release.min_scaffold_length <= release.max_scaffold_length);
  STARATLAS_CHECK(release.scaffold_divergence >= 0.0 &&
                  release.scaffold_divergence < 0.5);
  STARATLAS_CHECK(release.repeat_scaffold_fraction >= 0.0 &&
                  release.repeat_scaffold_fraction <= 1.0);
  STARATLAS_CHECK(release.unlocalized_bytes_fraction >= 0.0 &&
                  release.unlocalized_bytes_fraction <= 10.0);

  Rng rng = Rng(spec_.seed).fork(static_cast<u64>(release.release) * 7919 + 17);

  std::vector<Contig> contigs = chromosomes_;  // chromosomes first, shared
  u64 scaffold_counter = 0;
  static const char kBases[] = "ACGT";

  auto mutate = [&](std::string& seq) {
    for (char& c : seq) {
      if (rng.chance(release.scaffold_divergence)) {
        c = kBases[rng.uniform(4)];
      }
    }
  };
  auto scaffold_name = [&](const char* prefix) {
    char name_buf[48];
    std::snprintf(name_buf, sizeof(name_buf), "%s%04llu.1", prefix,
                  static_cast<unsigned long long>(++scaffold_counter));
    return std::string(name_buf);
  };

  // Unlocalized scaffolds. Two flavors:
  //  * genic near-copies of chromosome windows centered on exons, so that
  //    RNA-seq reads genuinely multimap between chromosome and scaffold;
  //  * repeat arrays — tandem copies of the satellite motif, so that reads
  //    from the chromosomal repeat region explode in candidate loci.
  // Both are real properties of pre-110 GRCh38 toplevel scaffolds.
  for (usize chrom_idx = 0; chrom_idx < chromosomes_.size(); ++chrom_idx) {
    const std::string& chrom_seq = chromosomes_[chrom_idx].sequence;
    const auto gene_ids =
        annotation_.genes_on_contig(static_cast<ContigId>(chrom_idx));
    const u64 bytes_budget = static_cast<u64>(
        release.unlocalized_bytes_fraction * static_cast<double>(chrom_seq.size()));
    u64 bytes_emitted = 0;
    while (bytes_emitted < bytes_budget) {
      u64 length = static_cast<u64>(rng.uniform_range(
          static_cast<i64>(release.min_scaffold_length),
          static_cast<i64>(release.max_scaffold_length)));

      Contig scaffold;
      scaffold.cls = ContigClass::kUnlocalizedScaffold;

      if (rng.chance(release.repeat_scaffold_fraction)) {
        // Fewer, larger satellite arrays (same byte budget).
        length = static_cast<u64>(static_cast<double>(length) *
                                  release.repeat_scaffold_length_multiplier);
        bytes_emitted += length;
        scaffold.name = scaffold_name("KN99");
        const usize copies =
            std::max<usize>(2, length / spec_.repeat_motif_length);
        scaffold.sequence = repeat_array(rng, copies);
        contigs.push_back(std::move(scaffold));
        continue;
      }
      bytes_emitted += length;

      u64 center;
      if (!gene_ids.empty() && rng.chance(release.genic_bias)) {
        const Gene& gene =
            annotation_.gene(gene_ids[rng.uniform(gene_ids.size())]);
        const Exon& exon = gene.exons[rng.uniform(gene.exons.size())];
        center = (exon.start + exon.end) / 2;
      } else {
        center = rng.uniform(chrom_seq.size());
      }
      const u64 half = length / 2;
      const u64 begin = center > half ? center - half : 0;
      const u64 end = std::min<u64>(begin + length, chrom_seq.size());
      if (end <= begin + 1'000) continue;  // degenerate window at the edge

      scaffold.name = scaffold_name("KI27");
      scaffold.sequence = chrom_seq.substr(begin, end - begin);
      mutate(scaffold.sequence);
      contigs.push_back(std::move(scaffold));
    }
  }

  // Unplaced scaffolds: novel random sequence (index bulk, no multimapping).
  for (usize s = 0; s < release.unplaced_count; ++s) {
    const u64 length = static_cast<u64>(
        rng.uniform_range(static_cast<i64>(release.min_scaffold_length),
                          static_cast<i64>(release.max_scaffold_length)));
    Contig scaffold;
    scaffold.name = scaffold_name("GL00");
    scaffold.cls = ContigClass::kUnplacedScaffold;
    scaffold.sequence = random_sequence(rng, length);
    contigs.push_back(std::move(scaffold));
  }

  return Assembly("Synthetica sapiens", release.release,
                  AssemblyType::kToplevel, std::move(contigs));
}

}  // namespace staratlas
