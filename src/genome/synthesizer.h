// Synthetic genome + annotation generator.
//
// Emits matched pairs of assemblies that reproduce, at MiB scale, the
// difference between Ensembl GRCh38 toplevel release 108 and release 111:
//
//  * both releases share IDENTICAL chromosomes and gene annotation
//    (the primary assembly did not change between those releases);
//  * the 108-style release carries many unlocalized scaffolds that
//    near-duplicate genic windows of the chromosomes (~1% divergence)
//    plus scaffolds that are repeat arrays (satellite-like tandem
//    repeats also present in the chromosomes) — this is what made the
//    real toplevel FASTA 85 GiB and exploded STAR's candidate loci;
//  * the 111-style release keeps only a small residue of scaffolds
//    (most were placed onto chromosomes by release 110).
//
// Because chromosomes always come first in the contig list, one Annotation
// is valid for every release built from the same synthesizer.
#pragma once

#include "common/rng.h"
#include "common/types.h"
#include "genome/annotation.h"
#include "genome/model.h"

namespace staratlas {

/// Shape of the shared primary assembly (chromosomes + genes + repeats).
struct GenomeSpec {
  usize num_chromosomes = 3;
  u64 chromosome_length = 300'000;
  usize genes_per_chromosome = 30;
  usize min_exons_per_gene = 2;
  usize max_exons_per_gene = 7;
  u64 min_exon_length = 90;
  u64 max_exon_length = 350;
  u64 min_intron_length = 60;
  u64 max_intron_length = 1'200;
  double gc_content = 0.41;  ///< human-like
  /// Satellite-like tandem repeat: one array per chromosome, placed in the
  /// gene-free tail of the chromosome (a stand-in for centromeric repeats).
  u64 repeat_motif_length = 171;  ///< alpha-satellite-sized
  usize repeat_array_copies = 10;
  /// Within-array copies are near-identical, like real satellite DNA —
  /// this is what makes repeat-derived reads explode in candidate loci.
  double repeat_copy_divergence = 0.002;
  u64 seed = 42;
};

/// A repeat-array region within a contig (0-based half-open).
struct RepeatRegion {
  ContigId contig = 0;
  u64 start = 0;
  u64 end = 0;
};

/// Shape of one release's scaffold complement.
struct ReleaseSpec {
  int release = 111;
  /// Total unlocalized-scaffold bytes per chromosome, as a fraction of the
  /// chromosome length — scaffold volume scales with the genome so the
  /// toplevel/primary size ratio is invariant to GenomeSpec scale.
  double unlocalized_bytes_fraction = 0.04;
  /// Unplaced scaffolds (random novel sequence).
  usize unplaced_count = 2;
  u64 min_scaffold_length = 4'000;
  u64 max_scaffold_length = 40'000;
  /// Point-mutation rate applied to duplicated scaffold sequence.
  double scaffold_divergence = 0.01;
  /// Probability that a genic scaffold window is centered on a gene.
  double genic_bias = 0.9;
  /// Fraction of unlocalized scaffolds that are repeat arrays (tandem
  /// copies of the chromosome repeat motif) rather than genic copies.
  double repeat_scaffold_fraction = 0.0;
  /// Repeat scaffolds are drawn this much longer than genic ones (real
  /// satellite-bearing scaffolds are long arrays); fewer, larger arrays
  /// keep the per-read window count below the multimap cap while
  /// concentrating stitching work.
  double repeat_scaffold_length_multiplier = 3.0;
};

/// Ensembl-release-style presets. The 108 preset is tuned so that
/// toplevel_108 / toplevel_111 FASTA size lands near the paper's
/// 85 GiB / 29.5 GiB = 2.9x ratio, with scaffold content split between
/// genic near-copies (multimapping) and repeat arrays (seed explosion).
ReleaseSpec release108_style();
ReleaseSpec release111_style();

class GenomeSynthesizer {
 public:
  explicit GenomeSynthesizer(const GenomeSpec& spec);

  const GenomeSpec& spec() const { return spec_; }

  /// The annotation shared by all releases from this synthesizer.
  const Annotation& annotation() const { return annotation_; }

  /// Chromosome regions occupied by the satellite repeat arrays; the read
  /// simulator samples "repeat contamination" reads from these.
  const std::vector<RepeatRegion>& repeat_regions() const {
    return repeat_regions_;
  }

  /// Builds a toplevel assembly for the given release spec. Deterministic
  /// in (GenomeSpec::seed, ReleaseSpec::release).
  Assembly make_release(const ReleaseSpec& release) const;

  /// Convenience: the matched pair used throughout the benches.
  Assembly make_release108() const { return make_release(release108_style()); }
  Assembly make_release111() const { return make_release(release111_style()); }

 private:
  std::string random_sequence(Rng& rng, u64 length) const;
  std::string repeat_array(Rng& rng, usize copies) const;
  void build_primary(Rng& rng);

  GenomeSpec spec_;
  std::string repeat_motif_;
  std::vector<Contig> chromosomes_;
  std::vector<RepeatRegion> repeat_regions_;
  Annotation annotation_;
};

}  // namespace staratlas
