#include "index/index_storage.h"

#include <utility>

#include "common/error.h"

#if defined(__unix__) || defined(__APPLE__)
#define STARATLAS_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define STARATLAS_HAVE_MMAP 0
#endif

namespace staratlas {

MappedFile::~MappedFile() {
#if STARATLAS_HAVE_MMAP
  if (data_ != nullptr) ::munmap(data_, size_);
#endif
}

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)) {}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
#if STARATLAS_HAVE_MMAP
    if (data_ != nullptr) ::munmap(data_, size_);
#endif
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

bool MappedFile::supported() { return STARATLAS_HAVE_MMAP != 0; }

MappedFile MappedFile::map(const std::string& path) {
#if STARATLAS_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throw IoError("cannot open index file: " + path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw IoError("cannot stat index file: " + path);
  }
  if (st.st_size <= 0) {
    ::close(fd);
    throw ParseError("index file is empty: " + path);
  }
  const usize size = static_cast<usize>(st.st_size);
  void* p = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (p == MAP_FAILED) throw IoError("mmap failed for index file: " + path);
  MappedFile file;
  file.data_ = static_cast<u8*>(p);
  file.size_ = size;
  return file;
#else
  throw IoError("mmap index load unsupported on this platform: " + path);
#endif
}

}  // namespace staratlas
