#include "index/shared_cache.h"

#include <vector>

#include "common/error.h"

namespace staratlas {

SharedIndexCache::SharedIndexCache(ByteSize capacity_bytes)
    : capacity_(capacity_bytes) {
  STARATLAS_CHECK(capacity_.bytes() > 0);
}

std::shared_ptr<const GenomeIndex> SharedIndexCache::acquire(
    const std::string& key, const Loader& loader) {
  std::unique_lock lock(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    ++hits_;
    it->second.last_use = ++clock_;
    return it->second.index;
  }
  // Load outside the lock would allow duplicate loads; the load is the
  // expensive part, so hold the lock for correctness and simplicity —
  // workers block behind one shared load, exactly like waiting on the shm
  // segment to appear.
  ++loads_;
  auto index = std::make_shared<const GenomeIndex>(loader());
  Entry entry;
  entry.index = index;
  entry.bytes = index->stats().total();
  entry.last_use = ++clock_;
  entries_.emplace(key, std::move(entry));
  evict_if_needed_locked();
  return index;
}

void SharedIndexCache::evict_if_needed_locked() {
  for (;;) {
    ByteSize total;
    for (const auto& [key, entry] : entries_) total += entry.bytes;
    if (total <= capacity_) return;
    // Evict the least-recently-used entry nobody references (use_count
    // 1 = only the cache holds it).
    std::map<std::string, Entry>::iterator victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.index.use_count() > 1) continue;
      if (victim == entries_.end() ||
          it->second.last_use < victim->second.last_use) {
        victim = it;
      }
    }
    if (victim == entries_.end()) return;  // everything in use: over budget
    entries_.erase(victim);
    ++evictions_;
  }
}

bool SharedIndexCache::resident(const std::string& key) const {
  std::lock_guard lock(mu_);
  return entries_.count(key) > 0;
}

usize SharedIndexCache::entries() const {
  std::lock_guard lock(mu_);
  return entries_.size();
}

ByteSize SharedIndexCache::resident_bytes() const {
  std::lock_guard lock(mu_);
  ByteSize total;
  for (const auto& [key, entry] : entries_) total += entry.bytes;
  return total;
}

}  // namespace staratlas
