#include "index/shared_cache.h"

#include "common/error.h"

namespace staratlas {

SharedIndexCache::SharedIndexCache(ByteSize capacity_bytes)
    : capacity_(capacity_bytes) {
  STARATLAS_CHECK(capacity_.bytes() > 0);
}

std::shared_ptr<const GenomeIndex> SharedIndexCache::acquire(
    const std::string& key, const Loader& loader) {
  std::promise<std::shared_ptr<const GenomeIndex>> promise;
  IndexFuture future;
  bool owns_load = false;
  {
    std::lock_guard lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++hits_;
      it->second.last_use = ++clock_;
      return it->second.index;
    }
    auto flight = inflight_.find(key);
    if (flight != inflight_.end()) {
      // Someone else is loading this key right now; piggyback on their
      // load instead of duplicating it.
      ++hits_;
      future = flight->second;
    } else {
      ++loads_;
      owns_load = true;
      future = promise.get_future().share();
      inflight_.emplace(key, future);
    }
  }

  if (!owns_load) {
    // Blocks until the owning loader publishes; rethrows its exception.
    return future.get();
  }

  // We own the load. Run the loader with no lock held so loads for other
  // keys — and every cache query — proceed concurrently.
  try {
    auto index = std::make_shared<const GenomeIndex>(loader());
    const ByteSize bytes = index->stats().total();
    {
      std::lock_guard lock(mu_);
      Entry entry;
      entry.index = index;
      entry.bytes = bytes;
      entry.last_use = ++clock_;
      resident_bytes_ += bytes;
      entries_.emplace(key, std::move(entry));
      inflight_.erase(key);
      evict_if_needed_locked();
    }
    promise.set_value(index);
    return index;
  } catch (...) {
    // Forget the failed key first so a subsequent acquire retries, then
    // fan the error out to every piggybacked waiter.
    {
      std::lock_guard lock(mu_);
      inflight_.erase(key);
    }
    promise.set_exception(std::current_exception());
    throw;
  }
}

void SharedIndexCache::evict_if_needed_locked() {
  while (resident_bytes_ > capacity_) {
    // Evict the least-recently-used entry nobody references (use_count
    // 1 = only the cache holds it).
    std::map<std::string, Entry>::iterator victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.index.use_count() > 1) continue;
      if (victim == entries_.end() ||
          it->second.last_use < victim->second.last_use) {
        victim = it;
      }
    }
    if (victim == entries_.end()) return;  // everything in use: over budget
    resident_bytes_ -= victim->second.bytes;
    entries_.erase(victim);
    ++evictions_;
  }
}

bool SharedIndexCache::resident(const std::string& key) const {
  std::lock_guard lock(mu_);
  return entries_.count(key) > 0;
}

usize SharedIndexCache::entries() const {
  std::lock_guard lock(mu_);
  return entries_.size();
}

ByteSize SharedIndexCache::resident_bytes() const {
  std::lock_guard lock(mu_);
  return resident_bytes_;
}

u64 SharedIndexCache::loads() const {
  std::lock_guard lock(mu_);
  return loads_;
}

u64 SharedIndexCache::hits() const {
  std::lock_guard lock(mu_);
  return hits_;
}

u64 SharedIndexCache::evictions() const {
  std::lock_guard lock(mu_);
  return evictions_;
}

}  // namespace staratlas
