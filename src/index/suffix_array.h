// Suffix array construction.
//
// The production path is SA-IS (linear time, linear memory), the same
// family of algorithm STAR uses for its genome generation step. A simple
// prefix-doubling builder is kept as a reference implementation for
// property tests and as a fallback for pathological alphabets.
#pragma once

#include <string_view>
#include <vector>

#include "common/types.h"

namespace staratlas {

/// Builds the suffix array of `text` (all suffixes, no sentinel in the
/// output) using SA-IS. O(n) time. Text may contain arbitrary bytes.
std::vector<u32> build_suffix_array(std::string_view text);

/// Reference O(n log^2 n) prefix-doubling construction; used by tests to
/// validate the SA-IS implementation on random inputs.
std::vector<u32> build_suffix_array_doubling(std::string_view text);

/// Verifies that `sa` is the suffix array of `text` (sorted, a permutation).
/// O(n log n)-ish; intended for tests and debug assertions.
bool is_valid_suffix_array(std::string_view text, const std::vector<u32>& sa);

}  // namespace staratlas
