// Suffix array construction.
//
// The production single-thread path is SA-IS (linear time, linear memory),
// the same family of algorithm STAR uses for its genome generation step.
// `build_suffix_array_parallel` is the multi-thread path: it partitions
// suffixes by their leading two bytes and sorts the buckets concurrently
// (the shape of real STAR's `--runThreadN` index build). Both produce the
// one true suffix array, so their outputs are bit-identical; SA-IS stays
// the reference the parallel builder is property-tested against. A simple
// prefix-doubling builder is kept as a second reference implementation.
#pragma once

#include <span>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace staratlas {

class ThreadPool;

/// Builds the suffix array of `text` (all suffixes, no sentinel in the
/// output) using SA-IS. O(n) time. Text may contain arbitrary bytes.
std::vector<u32> build_suffix_array(std::string_view text);

/// Parallel construction on `pool`: bucket suffixes by leading 2-byte
/// prefix (counted and scattered in parallel), sort buckets concurrently,
/// concatenate in bucket order. Output is bit-identical to
/// `build_suffix_array` for every input (the suffix array is unique).
/// Falls back to SA-IS for small inputs where fan-out cannot pay off.
/// Worst case O(n^2 log n) on pathological single-symbol texts; genomes
/// are nowhere near it.
std::vector<u32> build_suffix_array_parallel(std::string_view text,
                                             ThreadPool& pool);

/// Reference O(n log^2 n) prefix-doubling construction; used by tests to
/// validate the SA-IS implementation on random inputs.
std::vector<u32> build_suffix_array_doubling(std::string_view text);

/// Verifies that `sa` is the suffix array of `text` (sorted, a
/// permutation). O(n): adjacent suffixes are compared through the rank
/// (inverse) permutation instead of materialized substrings, so property
/// tests can afford genome-scale inputs.
bool is_valid_suffix_array(std::string_view text, std::span<const u32> sa);

}  // namespace staratlas
