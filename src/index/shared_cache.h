// SharedIndexCache — the in-process analog of STAR's
// `--genomeLoad LoadAndKeep` shared-memory index (Fig 2: "downloads the
// pre-computed STAR index and loads it into system memory during the
// initialization phase").
//
// Multiple pipeline workers on one machine share a single loaded index
// per key instead of each paying the load cost; entries are refcounted
// via shared_ptr and evicted once released when capacity demands it.
#pragma once

#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/types.h"
#include "common/units.h"
#include "index/genome_index.h"

namespace staratlas {

class SharedIndexCache {
 public:
  using Loader = std::function<GenomeIndex()>;

  /// `capacity_bytes` caps the total resident index bytes; entries still
  /// referenced by callers are never evicted (like shm segments in use).
  explicit SharedIndexCache(ByteSize capacity_bytes);

  /// Returns the index for `key`, invoking `loader` only on first use
  /// (thread-safe; concurrent callers for the same key share one load).
  std::shared_ptr<const GenomeIndex> acquire(const std::string& key,
                                             const Loader& loader);

  /// True if `key` is currently resident.
  bool resident(const std::string& key) const;

  usize entries() const;
  ByteSize resident_bytes() const;
  u64 loads() const { return loads_; }
  u64 hits() const { return hits_; }
  u64 evictions() const { return evictions_; }

 private:
  struct Entry {
    std::shared_ptr<const GenomeIndex> index;
    ByteSize bytes;
    u64 last_use = 0;
  };
  void evict_if_needed_locked();

  ByteSize capacity_;
  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
  u64 clock_ = 0;
  u64 loads_ = 0;
  u64 hits_ = 0;
  u64 evictions_ = 0;
};

}  // namespace staratlas
