// SharedIndexCache — the in-process analog of STAR's
// `--genomeLoad LoadAndKeep` shared-memory index (Fig 2: "downloads the
// pre-computed STAR index and loads it into system memory during the
// initialization phase").
//
// Multiple pipeline workers on one machine share a single loaded index
// per key instead of each paying the load cost; entries are refcounted
// via shared_ptr and evicted once released when capacity demands it.
//
// Loads are single-flight: concurrent acquire() calls for the same key
// coalesce onto one loader invocation (waiters block on a shared_future),
// while loads for *different* keys proceed fully in parallel — the cache
// mutex is held only for map surgery, never across a loader call.
#pragma once

#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/types.h"
#include "common/units.h"
#include "index/genome_index.h"

namespace staratlas {

class SharedIndexCache {
 public:
  using Loader = std::function<GenomeIndex()>;

  /// `capacity_bytes` caps the total resident index bytes; entries still
  /// referenced by callers are never evicted (like shm segments in use).
  explicit SharedIndexCache(ByteSize capacity_bytes);

  /// Returns the index for `key`, invoking `loader` only on first use.
  /// Thread-safe and single-flight: concurrent callers for the same key
  /// share one load (the first caller runs the loader, the rest wait on
  /// its future and count as hits); callers for different keys load
  /// concurrently. A loader exception propagates to every waiter and the
  /// failed key is forgotten, so a later acquire retries the load.
  std::shared_ptr<const GenomeIndex> acquire(const std::string& key,
                                             const Loader& loader);

  /// True if `key` is currently resident (in-flight loads don't count).
  bool resident(const std::string& key) const;

  usize entries() const;
  ByteSize resident_bytes() const;
  u64 loads() const;
  u64 hits() const;
  u64 evictions() const;

 private:
  struct Entry {
    std::shared_ptr<const GenomeIndex> index;
    ByteSize bytes;
    u64 last_use = 0;
  };
  using IndexFuture = std::shared_future<std::shared_ptr<const GenomeIndex>>;

  void evict_if_needed_locked();

  ByteSize capacity_;
  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
  /// Keys whose load is running right now; same-key acquires wait here.
  std::map<std::string, IndexFuture> inflight_;
  /// Sum of entries_[*].bytes, maintained incrementally so eviction and
  /// resident_bytes() are O(log n) / O(1) instead of re-summing the map.
  ByteSize resident_bytes_;
  u64 clock_ = 0;
  u64 loads_ = 0;
  u64 hits_ = 0;
  u64 evictions_ = 0;
};

}  // namespace staratlas
