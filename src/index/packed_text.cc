#include "index/packed_text.h"

#include <bit>
#include <chrono>
#include <cstring>
#include <string>

#include "common/error.h"
#include "index/packed_sequence.h"

#if defined(STARATLAS_X86_SIMD)
#include <immintrin.h>
#endif

namespace staratlas {

namespace {

// Sets the 2-bit code and (optionally) the overlay bit for one base while
// packing. Exceptions reuse the code channel: 'N' -> 0, '#' -> 1, keeping
// char -> (code, exc) injective so packed equality is char equality.
struct BaseEncoding {
  u8 code;
  bool exc;
};

inline BaseEncoding encode_base(char c) {
  const u8 code = base_code(c);
  if (code != 0xff) return {code, false};
  if (c == 'N') return {0, true};
  if (c == '#') return {1, true};
  throw InvalidArgument(std::string("packed text: cannot pack residue '") +
                        c + "'");
}

// Resolves the exact mismatch offset inside a block whose combined XOR
// test fired: steps 32 bases at a time with the scalar rule, which every
// kernel shares so all levels report identical positions.
inline u64 resolve_mismatch(const PackedTextView& text, u64 tpos,
                            const u64* qcodes, const u64* qexc, u64 depth,
                            u64 limit) {
  while (depth < limit) {
    const u64 rem = limit - depth;
    u64 x = text.extract_codes(tpos + depth) ^
            packed_extract_codes(qcodes, depth);
    u32 e = text.extract_exc(tpos + depth) ^
            packed_extract_bits32(qexc, depth);
    if (rem < 32) {
      x &= (u64{1} << (2 * rem)) - 1;
      e &= (u32{1} << rem) - 1;
    }
    if (x | e) {
      const u64 mc = x ? static_cast<u64>(std::countr_zero(x)) / 2 : 32;
      const u64 me = e ? static_cast<u64>(std::countr_zero(e)) : 32;
      return depth + (mc < me ? mc : me);
    }
    depth += rem < 32 ? rem : 32;
  }
  return limit;
}

u64 lcp_scalar(const PackedTextView& text, u64 tpos, const u64* qcodes,
               const u64* qexc, u64 depth, u64 limit) {
  return resolve_mismatch(text, tpos, qcodes, qexc, depth, limit);
}

#if defined(STARATLAS_X86_SIMD)

// 64 bases per early-out check: two 32-base code windows plus one 64-bit
// overlay window, OR-reduced in one xmm register.
__attribute__((target("sse2"))) u64 lcp_sse2(const PackedTextView& text,
                                             u64 tpos, const u64* qcodes,
                                             const u64* qexc, u64 depth,
                                             u64 limit) {
  while (depth + 64 <= limit) {
    const u64 x0 = text.extract_codes(tpos + depth) ^
                   packed_extract_codes(qcodes, depth);
    const u64 x1 = text.extract_codes(tpos + depth + 32) ^
                   packed_extract_codes(qcodes, depth + 32);
    const u64 e = text.extract_exc64(tpos + depth) ^
                  packed_extract_bits64(qexc, depth);
    const __m128i xv = _mm_or_si128(_mm_set_epi64x(static_cast<i64>(x1),
                                                   static_cast<i64>(x0)),
                                    _mm_set1_epi64x(static_cast<i64>(e)));
    const __m128i zero = _mm_setzero_si128();
    if (_mm_movemask_epi8(_mm_cmpeq_epi8(xv, zero)) != 0xFFFF) {
      return resolve_mismatch(text, tpos, qcodes, qexc, depth, limit);
    }
    depth += 64;
  }
  return resolve_mismatch(text, tpos, qcodes, qexc, depth, limit);
}

// 128 bases per early-out check: four code windows + two overlay windows
// folded into one ymm testz.
__attribute__((target("avx2"))) u64 lcp_avx2(const PackedTextView& text,
                                             u64 tpos, const u64* qcodes,
                                             const u64* qexc, u64 depth,
                                             u64 limit) {
  while (depth + 128 <= limit) {
    const u64 x0 = text.extract_codes(tpos + depth) ^
                   packed_extract_codes(qcodes, depth);
    const u64 x1 = text.extract_codes(tpos + depth + 32) ^
                   packed_extract_codes(qcodes, depth + 32);
    const u64 x2 = text.extract_codes(tpos + depth + 64) ^
                   packed_extract_codes(qcodes, depth + 64);
    const u64 x3 = text.extract_codes(tpos + depth + 96) ^
                   packed_extract_codes(qcodes, depth + 96);
    const u64 e0 = text.extract_exc64(tpos + depth) ^
                   packed_extract_bits64(qexc, depth);
    const u64 e1 = text.extract_exc64(tpos + depth + 64) ^
                   packed_extract_bits64(qexc, depth + 64);
    const __m256i xv = _mm256_set_epi64x(
        static_cast<i64>(x3 | e1), static_cast<i64>(x2),
        static_cast<i64>(x1 | e0), static_cast<i64>(x0));
    if (!_mm256_testz_si256(xv, xv)) {
      return resolve_mismatch(text, tpos, qcodes, qexc, depth, limit);
    }
    depth += 128;
  }
  while (depth + 64 <= limit) {
    const u64 x0 = text.extract_codes(tpos + depth) ^
                   packed_extract_codes(qcodes, depth);
    const u64 x1 = text.extract_codes(tpos + depth + 32) ^
                   packed_extract_codes(qcodes, depth + 32);
    const u64 e = text.extract_exc64(tpos + depth) ^
                  packed_extract_bits64(qexc, depth);
    if ((x0 | x1 | e) != 0) {
      return resolve_mismatch(text, tpos, qcodes, qexc, depth, limit);
    }
    depth += 64;
  }
  return resolve_mismatch(text, tpos, qcodes, qexc, depth, limit);
}

#endif  // STARATLAS_X86_SIMD

}  // namespace

void PackedTextView::decode_into(u64 pos, u64 len, char* out) const {
  STARATLAS_CHECK(pos + len <= size);
  for (u64 i = 0; i < len; ++i) out[i] = at(pos + i);
}

std::string PackedTextView::decode(u64 pos, u64 len) const {
  std::string out(len, '\0');
  decode_into(pos, len, out.data());
  return out;
}

PackedText PackedText::pack(std::string_view text) {
  PackedText packed;
  packed.size_ = text.size();
  packed.codes_.assign(packed_code_words(text.size()), 0);
  const u64 pages = packed_pages(text.size());
  packed.page_slots_.assign(pages + 1, kPackedNoExc);

  for (u64 i = 0; i < text.size(); ++i) {
    const BaseEncoding enc = encode_base(text[i]);
    packed.codes_[i >> 5] |= u64{enc.code} << ((i & 31) * 2);
    if (!enc.exc) continue;
    const u64 page = i >> 12;
    u32& slot = packed.page_slots_[page];
    if (slot == kPackedNoExc) {
      slot = static_cast<u32>(packed.exc_blocks_.size() / kPackedPageWords);
      packed.exc_blocks_.resize(packed.exc_blocks_.size() + kPackedPageWords,
                                0);
    }
    packed.exc_blocks_[u64{slot} * kPackedPageWords + ((i >> 6) & 63)] |=
        u64{1} << (i & 63);
  }
  return packed;
}

PackedText PackedText::from_raw(u64 size, std::vector<u64> codes,
                                std::vector<u32> page_slots,
                                std::vector<u64> exc_blocks) {
  if (codes.size() != packed_code_words(size)) {
    throw InvalidArgument("packed text: code word count mismatch");
  }
  const u64 pages = packed_pages(size);
  if (page_slots.size() != pages + 1) {
    throw InvalidArgument("packed text: page slot count mismatch");
  }
  if (exc_blocks.size() % kPackedPageWords != 0) {
    throw InvalidArgument("packed text: exception block size mismatch");
  }
  const u64 num_blocks = exc_blocks.size() / kPackedPageWords;
  for (u64 p = 0; p < page_slots.size(); ++p) {
    const u32 slot = page_slots[p];
    if (slot == kPackedNoExc) continue;
    // The guard slot must stay clean and every real slot must point at an
    // existing block, or exc_word() would read out of bounds.
    if (p == pages || slot >= num_blocks) {
      throw InvalidArgument("packed text: page slot out of range");
    }
  }
  PackedText packed;
  packed.size_ = size;
  packed.codes_ = std::move(codes);
  packed.page_slots_ = std::move(page_slots);
  packed.exc_blocks_ = std::move(exc_blocks);
  return packed;
}

PackedTextView PackedText::view() const {
  PackedTextView v;
  v.codes = codes_.data();
  v.page_slots = page_slots_.data();
  v.exc_blocks = exc_blocks_.data();
  v.size = size_;
  v.num_pages = page_slots_.empty() ? 0 : page_slots_.size() - 1;
  v.num_exc_blocks = exc_blocks_.size() / kPackedPageWords;
  return v;
}

u64 PackedText::resident_bytes() const {
  return codes_.size() * sizeof(u64) + page_slots_.size() * sizeof(u32) +
         exc_blocks_.size() * sizeof(u64);
}

bool pack_query(std::string_view q, u64* codes, u64* exc) {
  // Packing runs once per query on the MMP hot path, so it is a single
  // pass accumulating into registers and storing each word exactly once
  // — no validation pre-pass, no memset, no per-char read-modify-write
  // of the output. An invalid character aborts mid-pass: the buffers
  // then hold an unspecified prefix, which is fine because every caller
  // that sees `false` switches to the per-base decode path and never
  // reads them.
  const u64 n = q.size();
  u64 cw = 0;  // code word being filled (32 bases)
  u64 ew = 0;  // overlay word being filled (64 bases)
  for (u64 i = 0; i < n; ++i) {
    const u8 code = base_code(q[i]);
    if (code != 0xff) {
      cw |= u64{code} << ((i & 31) * 2);
    } else if (q[i] == 'N') {
      ew |= u64{1} << (i & 63);  // 'N': code stays 0
    } else {
      return false;
    }
    if ((i & 31) == 31) {
      codes[i >> 5] = cw;
      cw = 0;
    }
    if ((i & 63) == 63) {
      exc[i >> 6] = ew;
      ew = 0;
    }
  }
  if (n & 31) codes[n >> 5] = cw;
  if (n & 63) exc[n >> 6] = ew;
  codes[packed_code_words(n) - 1] = 0;  // guard word
  exc[(n + 63) / 64] = 0;               // guard word
  return true;
}

PackedLcpFn packed_lcp_kernel(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return &lcp_scalar;
#if defined(STARATLAS_X86_SIMD)
    case SimdLevel::kSse2:
      return &lcp_sse2;
    case SimdLevel::kAvx2:
      return &lcp_avx2;
#else
    case SimdLevel::kSse2:
    case SimdLevel::kAvx2:
      return nullptr;
#endif
  }
  return &lcp_scalar;
}

namespace {

volatile u64 g_calibration_sink;  // keeps timed LCP calls from folding away

struct CalibratedLcp {
  PackedLcpFn fn;
  SimdLevel level;
};

/// One timing window for a kernel: cache-resident read-shaped LCPs.
/// The workload has to look like the hot path or the measurement picks
/// the wrong winner — two properties matter. (1) Misaligned text
/// offsets: suffix-array positions are arbitrary, so 31 of 32 hot-path
/// calls pay the funnel-shift extraction; timing at offset 0 hits the
/// aligned shift==0 fast path and flatters exactly the wide kernels the
/// calibration exists to distrust. (2) Read-length matches with early
/// mismatches mixed in: a typical LCP resolves within a few dozen bases
/// (where a wide kernel pays its block check *and* the shared
/// resolve_mismatch) and even a full read match fills only one or two
/// 64/128-base blocks — an unbounded full-match loop overweights the
/// wide kernels' best case.
struct CalibrationQuery {
  u64 tpos;
  u64 len;
  u64 qcodes[512 / 32 + 1];
  u64 qexc[512 / 64 + 2];
};

double time_lcp_window(PackedLcpFn fn, const PackedTextView& view,
                       const CalibrationQuery* queries, usize num_queries) {
  const auto start = std::chrono::steady_clock::now();
  u64 sink = 0;
  for (int iter = 0; iter < 200; ++iter) {
    for (usize qi = 0; qi < num_queries; ++qi) {
      sink += fn(view, queries[qi].tpos, queries[qi].qcodes,
                 queries[qi].qexc, 0, queries[qi].len);
    }
  }
  g_calibration_sink = sink;
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Widest-advertised is the wrong pick on a meaningful slice of cloud
/// vCPUs: AVX2 is frequently emulated or down-clocked and loses to the
/// scalar kernel by 2-3x. Since every level is outcome-identical, the
/// dispatch can simply measure instead of trusting CPUID: pack a small
/// deterministic buffer, time each permitted kernel on it, keep the
/// fastest. The rounds interleave the kernels and each keeps its best
/// window, so a steal-time or frequency spike hits all levels alike
/// instead of poisoning whichever one it landed on; a wider level must
/// also beat scalar by >5% — under pure noise the tie goes to the
/// portable kernel. Runs once per process (~2 ms).
CalibratedLcp calibrate_packed_lcp() {
  const PackedLcpFn scalar = packed_lcp_kernel(SimdLevel::kScalar);
  const SimdLevel max_level = active_simd_level();
  if (max_level == SimdLevel::kScalar) return {scalar, SimdLevel::kScalar};

  std::string raw(1 << 13, 'A');
  u64 state = 0x9E3779B97F4A7C15ULL;
  for (usize i = 0; i < raw.size(); ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    raw[i] = "ACGT"[(state >> 59) & 3];
    if ((state >> 61) == 7 && (i & 1023) == 511) raw[i] = 'N';
  }
  const PackedText text = PackedText::pack(raw);
  // Sixteen queries at co-prime misaligned offsets (covering a spread of
  // (pos & 31) phases), shaped like the mmp_batch direct scan's rows:
  // read-prefix lengths of 30-120 bases, half matching to the end (the
  // true suffix-array row) and half mismatching within a few dozen bases
  // (the sibling rows of the interval). A corpus of long full matches
  // here would overweight the wide kernels' best case and repeat the
  // CPUID mistake with extra steps.
  CalibrationQuery queries[16];
  for (usize qi = 0; qi < 16; ++qi) {
    const u64 len = 30 + 6 * qi;  // 30..120
    queries[qi].tpos = 129 * qi + 7;
    queries[qi].len = len;
    std::string slice = raw.substr(queries[qi].tpos, len);
    if ((qi & 1) == 0) {
      const usize mut = 7 + 5 * qi;  // early mismatch, always < len
      slice[mut] = slice[mut] == 'A' ? 'C' : 'A';
    }
    const bool ok =
        pack_query(slice, queries[qi].qcodes, queries[qi].qexc);
    STARATLAS_CHECK(ok);
  }

  CalibratedLcp candidates[3];
  double best_secs[3];
  usize n = 0;
  for (const SimdLevel level :
       {SimdLevel::kScalar, SimdLevel::kSse2, SimdLevel::kAvx2}) {
    if (level > max_level) break;
    const PackedLcpFn fn = packed_lcp_kernel(level);
    if (!fn) break;
    candidates[n] = {fn, level};
    best_secs[n] = 1e30;
    ++n;
  }
  // Warm-up (page/branch/AVX2-unit warm-up), then interleaved rounds.
  for (usize k = 0; k < n; ++k) {
    time_lcp_window(candidates[k].fn, text.view(), queries, 16);
  }
  for (int round = 0; round < 7; ++round) {
    for (usize k = 0; k < n; ++k) {
      const double secs =
          time_lcp_window(candidates[k].fn, text.view(), queries, 16);
      best_secs[k] = best_secs[k] < secs ? best_secs[k] : secs;
    }
  }
  usize pick = 0;  // scalar
  for (usize k = 1; k < n; ++k) {
    if (best_secs[k] < 0.95 * best_secs[pick]) pick = k;
  }
  return candidates[pick];
}

const CalibratedLcp& calibrated_lcp() {
  static const CalibratedLcp kPick = calibrate_packed_lcp();
  return kPick;
}

}  // namespace

u64 packed_lcp(const PackedTextView& text, u64 tpos, const u64* qcodes,
               const u64* qexc, u64 depth, u64 limit) {
  return calibrated_lcp().fn(text, tpos, qcodes, qexc, depth, limit);
}

SimdLevel packed_lcp_active_level() { return calibrated_lcp().level; }

}  // namespace staratlas
