#include "index/footprint.h"

#include "common/error.h"

namespace staratlas {

ScaleModel ScaleModel::calibrate(ByteSize synthetic_anchor,
                                 ByteSize paper_anchor) {
  STARATLAS_CHECK(synthetic_anchor.bytes() > 0);
  return ScaleModel(static_cast<double>(paper_anchor.bytes()) /
                    static_cast<double>(synthetic_anchor.bytes()));
}

ScaleModel ScaleModel::calibrate_time(double synthetic_anchor_secs,
                                      double paper_anchor_hours) {
  STARATLAS_CHECK(synthetic_anchor_secs > 0.0);
  return ScaleModel(paper_anchor_hours / synthetic_anchor_secs);
}

ByteSize ScaleModel::map(ByteSize synthetic) const {
  return ByteSize(
      static_cast<u64>(static_cast<double>(synthetic.bytes()) * factor_));
}

double ScaleModel::map_hours(double synthetic_secs) const {
  return synthetic_secs * factor_;
}

}  // namespace staratlas
