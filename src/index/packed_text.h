// 2-bit packed genome text with a paged exception overlay — the v4 index
// representation of the concatenated contig string.
//
// The raw text alphabet is A/C/G/T plus two rare exceptions: 'N'
// (ambiguous base) and '#' (the inter-contig separator). Each base stores
// a 2-bit code (A=0 C=1 G=2 T=3, 32 bases per u64 word); exceptional
// positions additionally set one bit in an overlay bitmap and reuse the
// code channel to disambiguate ('N' packs as code 0, '#' as code 1). The
// (code, exception-bit) pair is therefore *injective* over the alphabet,
// which is what makes the wide compares exact: two positions hold equal
// characters iff their code pair AND their exception bits are equal, so a
// 32-base LCP step is one 64-bit XOR of codes plus one 32-bit XOR of
// overlay bits, and the first mismatch falls out of two ctz's — no byte
// verification pass.
//
// The overlay is paged rather than dense so the resident footprint stays
// at ~2 bits/base (the "~4x smaller than 1 byte/base" the economics layer
// consumes): the text is split into 4096-base pages; a per-page u32 slot
// table maps pages that contain at least one exception to a 512-byte
// dense bitmap block, and all other pages (the overwhelming majority of a
// genome) share the implicit all-zero block. Lookup stays O(1) and
// branch-predictable: clean pages resolve to constant zero from the slot
// table alone.
//
// Every word array carries one trailing zero guard word so the funnel-
// shift extraction of an arbitrary-phase 32-base window may always read
// word w and w+1 without bounds checks (the guard is serialized with the
// section, so memory-mapped views inherit it).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/simd.h"
#include "common/types.h"

namespace staratlas {

/// Bases per 64-bit code word.
inline constexpr u64 kPackedBasesPerWord = 32;
/// Bases per exception-overlay page.
inline constexpr u64 kPackedPageBases = 4096;
/// 64-bit overlay words per page (4096 bits).
inline constexpr u64 kPackedPageWords = kPackedPageBases / 64;
/// Slot value marking a page with no exceptions.
inline constexpr u32 kPackedNoExc = 0xffffffffu;

/// Code-word count for `size` bases, including the trailing guard word.
constexpr u64 packed_code_words(u64 size) {
  return (size + kPackedBasesPerWord - 1) / kPackedBasesPerWord + 1;
}
/// Overlay pages covering `size` bases (excluding the guard slot).
constexpr u64 packed_pages(u64 size) {
  return (size + kPackedPageBases - 1) / kPackedPageBases;
}

/// Extracts 32 consecutive 2-bit codes starting at base `pos` from a
/// dense code array (little-endian within words: base pos+i occupies bits
/// [2i, 2i+2) of the result). Requires a guard word past the last real
/// word, which packed arrays always carry.
inline u64 packed_extract_codes(const u64* words, u64 pos) {
  const u64 w = pos >> 5;
  const u32 shift = static_cast<u32>(pos & 31) * 2;
  const u64 lo = words[w] >> shift;
  // shift == 64 is UB, so the aligned phase short-circuits.
  return shift == 0 ? lo : lo | (words[w + 1] << (64 - shift));
}

/// Extracts 32 overlay bits starting at bit `pos` from a dense bitmap
/// (bit pos+i lands in bit i). Same guard-word requirement.
inline u32 packed_extract_bits32(const u64* words, u64 pos) {
  const u64 w = pos >> 6;
  const u32 shift = static_cast<u32>(pos & 63);
  const u64 lo = words[w] >> shift;
  return static_cast<u32>(shift == 0 ? lo : lo | (words[w + 1] << (64 - shift)));
}

/// 64-bit variant of packed_extract_bits32 for the wider kernels.
inline u64 packed_extract_bits64(const u64* words, u64 pos) {
  const u64 w = pos >> 6;
  const u32 shift = static_cast<u32>(pos & 63);
  const u64 lo = words[w] >> shift;
  return shift == 0 ? lo : lo | (words[w + 1] << (64 - shift));
}

/// Borrowed view over a packed text (owned vectors or a memory-mapped v4
/// index section). Plain pointers: this is passed by value into the MMP
/// and extension hot loops.
struct PackedTextView {
  const u64* codes = nullptr;       ///< 2-bit codes, +1 guard word
  const u32* page_slots = nullptr;  ///< per page: block slot or kPackedNoExc
  const u64* exc_blocks = nullptr;  ///< kPackedPageWords words per block
  u64 size = 0;                     ///< bases
  u64 num_pages = 0;                ///< excludes the trailing guard slot
  u64 num_exc_blocks = 0;

  bool active() const { return codes != nullptr; }

  /// Overlay word `word_idx` (bit b = base word_idx*64+b is exceptional).
  /// Clean pages cost one slot load; word_idx may extend one page past
  /// the end (the guard slot is kPackedNoExc).
  u64 exc_word(u64 word_idx) const {
    const u32 slot = page_slots[word_idx >> 6];
    return slot == kPackedNoExc
               ? 0
               : exc_blocks[u64{slot} * kPackedPageWords + (word_idx & 63)];
  }

  /// 32 codes starting at base `pos` (pos < size).
  u64 extract_codes(u64 pos) const { return packed_extract_codes(codes, pos); }

  /// 32 overlay bits starting at base `pos`.
  u32 extract_exc(u64 pos) const {
    const u64 w = pos >> 6;
    const u32 shift = static_cast<u32>(pos & 63);
    const u64 lo = exc_word(w) >> shift;
    return static_cast<u32>(shift == 0 ? lo
                                       : lo | (exc_word(w + 1) << (64 - shift)));
  }

  /// 64 overlay bits starting at base `pos`.
  u64 extract_exc64(u64 pos) const {
    const u64 w = pos >> 6;
    const u32 shift = static_cast<u32>(pos & 63);
    const u64 lo = exc_word(w) >> shift;
    return shift == 0 ? lo : lo | (exc_word(w + 1) << (64 - shift));
  }

  /// Decoded character at `pos` — byte-equal to the raw text this view
  /// was packed from. Total over arbitrary bit patterns (corrupt inputs
  /// decode to *some* character; checksums, not decode, reject them).
  char at(u64 pos) const {
    const u32 code =
        static_cast<u32>(codes[pos >> 5] >> ((pos & 31) * 2)) & 3u;
    const bool exc = (exc_word(pos >> 6) >> (pos & 63)) & 1u;
    if (exc) return code == 0 ? 'N' : '#';
    return "ACGT"[code];
  }

  /// Decodes `len` characters starting at `pos` into `out`.
  void decode_into(u64 pos, u64 len, char* out) const;
  std::string decode(u64 pos, u64 len) const;
};

/// Owning packed text: built once at index build/save time or
/// deserialized from a v4 index stream.
class PackedText {
 public:
  PackedText() = default;

  /// Packs a concatenated genome text. Throws InvalidArgument on
  /// characters outside ACGTN#.
  static PackedText pack(std::string_view text);

  /// Rebuilds from deserialized arrays, validating sizes and slot-table
  /// integrity (every slot in range, guard slot clean). Throws
  /// InvalidArgument on malformed input.
  static PackedText from_raw(u64 size, std::vector<u64> codes,
                             std::vector<u32> page_slots,
                             std::vector<u64> exc_blocks);

  PackedTextView view() const;

  u64 size() const { return size_; }
  /// Resident bytes of the packed representation (codes + slot table +
  /// exception blocks) — what IndexStats::text_bytes reports for v4.
  u64 resident_bytes() const;

  const std::vector<u64>& codes() const { return codes_; }
  const std::vector<u32>& page_slots() const { return page_slots_; }
  const std::vector<u64>& exc_blocks() const { return exc_blocks_; }

 private:
  u64 size_ = 0;
  std::vector<u64> codes_;       ///< packed_code_words(size_) words
  std::vector<u32> page_slots_;  ///< packed_pages(size_) + 1 slots
  std::vector<u64> exc_blocks_;  ///< kPackedPageWords words per dirty page
};

/// Packs a query (read or read suffix) into caller-provided buffers:
/// `codes` must hold packed_code_words(q.size()) words and `exc`
/// (q.size() + 63) / 64 + 1 words; both are fully written including the
/// guard words. Returns false if the query contains a character outside
/// ACGTN — the buffers then hold an unspecified prefix, which callers
/// never read: they take the per-base decode path instead, keeping byte
/// semantics exact for arbitrary input.
bool pack_query(std::string_view q, u64* codes, u64* exc);

/// LCP continuation against packed text: returns the smallest i in
/// [depth, limit) where query base i differs from text base tpos + i, or
/// `limit` when the whole range matches. Requires tpos + limit <= size
/// and limit <= packed query length. All levels are bit-identical; the
/// wider levels process 64/128-base blocks per early-out check.
using PackedLcpFn = u64 (*)(const PackedTextView& text, u64 tpos,
                            const u64* qcodes, const u64* qexc, u64 depth,
                            u64 limit);

/// Kernel for an explicit level (nullptr when the build lacks it).
PackedLcpFn packed_lcp_kernel(SimdLevel level);

/// Dispatched form. Unlike the static widest-wins pick used elsewhere,
/// the packed LCP kernel is chosen by a one-time *calibration*: each
/// permitted level is timed on a synthetic packed buffer at first use and
/// the fastest wins. Cloud vCPUs routinely advertise AVX2 yet execute it
/// slower than scalar code (emulation, down-clocking) — trusting the
/// CPUID width there costs 2-3x on the MMP hot path. All levels return
/// identical results (SimdParity tests), so the choice affects speed
/// only; STARATLAS_FORCE_SCALAR still pins the scalar kernel.
u64 packed_lcp(const PackedTextView& text, u64 tpos, const u64* qcodes,
               const u64* qexc, u64 depth, u64 limit);

/// Level the calibrated packed_lcp() dispatch settled on (for bench and
/// log labels). Triggers calibration on first call.
SimdLevel packed_lcp_active_level();

/// 32-bit mismatch mask for text [tpos, tpos+32) vs packed query bases
/// [qpos, qpos+32): bit i set iff the characters differ. Both full strips
/// must be in range. This is the packed-text strip primitive of the
/// striped extension DP.
inline u32 packed_mismatch_mask32(const PackedTextView& text, u64 tpos,
                                  const u64* qcodes, const u64* qexc,
                                  u64 qpos) {
  const u64 x =
      text.extract_codes(tpos) ^ packed_extract_codes(qcodes, qpos);
  const u32 e = text.extract_exc(tpos) ^ packed_extract_bits32(qexc, qpos);
  // Compress each 2-bit code-mismatch pair to one bit, then fold in the
  // overlay mismatches (injective encoding: char-equal iff both clear).
  u64 m = (x | (x >> 1)) & 0x5555555555555555ULL;
  m = (m | (m >> 1)) & 0x3333333333333333ULL;
  m = (m | (m >> 2)) & 0x0F0F0F0F0F0F0F0FULL;
  m = (m | (m >> 4)) & 0x00FF00FF00FF00FFULL;
  m = (m | (m >> 8)) & 0x0000FFFF0000FFFFULL;
  m = (m | (m >> 16)) & 0x00000000FFFFFFFFULL;
  return static_cast<u32>(m) | e;
}

}  // namespace staratlas
