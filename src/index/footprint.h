// Maps synthetic index/FASTQ byte counts to the paper-scale GiB figures.
//
// Our genomes are MiB-scale; the paper's are GiB-scale. All *shape* results
// (speedups, ratios, crossovers) are measured on the real synthetic data;
// absolute GiB/hours reported next to the paper's numbers are produced by
// this linear scale model, calibrated once per experiment against a single
// anchor (e.g. "the release-111-style index corresponds to 29.5 GiB").
#pragma once

#include "common/units.h"

namespace staratlas {

class ScaleModel {
 public:
  /// Identity model (factor 1).
  ScaleModel() = default;

  /// Model mapping synthetic sizes to paper sizes such that
  /// `synthetic_anchor` maps exactly to `paper_anchor`.
  static ScaleModel calibrate(ByteSize synthetic_anchor, ByteSize paper_anchor);

  /// Time-scale variant: maps synthetic seconds to paper hours such that
  /// `synthetic_anchor_secs` maps to `paper_anchor_hours`.
  static ScaleModel calibrate_time(double synthetic_anchor_secs,
                                   double paper_anchor_hours);

  ByteSize map(ByteSize synthetic) const;
  double map_hours(double synthetic_secs) const;
  double factor() const { return factor_; }

 private:
  explicit ScaleModel(double factor) : factor_(factor) {}
  double factor_ = 1.0;
};

}  // namespace staratlas
