#include "index/genome_index.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <fstream>

#include "common/error.h"
#include "index/packed_sequence.h"
#include "index/suffix_array.h"
#include "io/binary.h"

namespace staratlas {

namespace {
constexpr char kSeparator = '#';
constexpr u32 kIndexMagic = 0x53544152;  // "STAR"
constexpr u32 kIndexVersion = 2;

u32 auto_lut_k(u64 text_size) {
  // Aim for 4^k ~ text_size / 16 so the LUT is dense but small.
  u32 k = 4;
  u64 cells = 256;
  while (cells * 16 < text_size && k < 12) {
    ++k;
    cells *= 4;
  }
  return k;
}
}  // namespace

GenomeIndex GenomeIndex::build(const Assembly& assembly,
                               const IndexParams& params) {
  STARATLAS_CHECK(assembly.num_contigs() > 0);
  GenomeIndex index;
  index.species_ = assembly.species();
  index.release_ = assembly.release();
  index.type_ = assembly.type();

  u64 total = 0;
  for (const auto& contig : assembly.contigs()) {
    total += contig.length() + 1;
  }
  index.text_.reserve(total);
  for (const auto& contig : assembly.contigs()) {
    ContigMeta meta;
    meta.name = contig.name;
    meta.cls = contig.cls;
    meta.text_offset = index.text_.size();
    meta.length = contig.length();
    index.contigs_.push_back(std::move(meta));
    index.text_ += contig.sequence;
    index.text_ += kSeparator;
  }
  index.text_.pop_back();  // no trailing separator

  index.sa_ = build_suffix_array(index.text_);
  index.lut_k_ =
      params.prefix_lut_k ? params.prefix_lut_k : auto_lut_k(index.text_.size());
  STARATLAS_CHECK(index.lut_k_ >= 2 && index.lut_k_ <= 14);
  index.build_lut();
  index.build_mini_luts();
  return index;
}

void GenomeIndex::build_lut() {
  const u64 cells = u64{1} << (2 * lut_k_);
  lut_.assign(cells, {0, 0});

  // Walk the suffix array once; suffixes beginning with the same pure-ACGT
  // k-mer form one contiguous block, and block codes appear in increasing
  // order (byte order of A<C<G<T matches code order).
  u64 current_code = ~u64{0};
  for (usize row = 0; row < sa_.size(); ++row) {
    const u64 pos = sa_[row];
    if (pos + lut_k_ > text_.size()) continue;
    u64 code = 0;
    bool valid = true;
    for (u32 j = 0; j < lut_k_; ++j) {
      const u8 b = base_code(text_[pos + j]);
      if (b == 0xff) {
        valid = false;
        break;
      }
      code = (code << 2) | b;
    }
    if (!valid) continue;
    if (code != current_code) {
      current_code = code;
      lut_[code][0] = static_cast<u32>(row);
    }
    lut_[code][1] = static_cast<u32>(row) + 1;
  }
}

void GenomeIndex::build_mini_luts() {
  for (u32 k = 1; k <= 4; ++k) {
    mini_lut_[k - 1].assign(u64{1} << (2 * k), {0, 0});
  }
  // One SA pass; each row contributes to every prefix length its leading
  // pure-ACGT run covers. Unlike the main LUT, a block here includes
  // suffixes with a separator or N *after* the prefix — exactly the set
  // incremental narrowing from the full range would produce.
  for (usize row = 0; row < sa_.size(); ++row) {
    const u64 pos = sa_[row];
    u64 code = 0;
    for (u32 k = 1; k <= 4; ++k) {
      if (pos + k > text_.size()) break;
      const u8 b = base_code(text_[pos + k - 1]);
      if (b == 0xff) break;
      code = (code << 2) | b;
      auto& cell = mini_lut_[k - 1][code];
      if (cell[0] == cell[1]) cell[0] = static_cast<u32>(row);
      cell[1] = static_cast<u32>(row) + 1;
    }
  }
}

ContigLocus GenomeIndex::locate(GenomePos text_pos) const {
  STARATLAS_CHECK(text_pos < text_.size());
  // Binary search for the contig whose [text_offset, text_offset+length)
  // contains text_pos.
  usize lo = 0;
  usize hi = contigs_.size();
  while (lo + 1 < hi) {
    const usize mid = (lo + hi) / 2;
    if (contigs_[mid].text_offset <= text_pos) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const ContigMeta& meta = contigs_[lo];
  STARATLAS_CHECK(text_pos >= meta.text_offset &&
                  text_pos < meta.text_offset + meta.length);
  return {static_cast<ContigId>(lo), text_pos - meta.text_offset};
}

SaInterval GenomeIndex::extend_interval(SaInterval interval, usize depth,
                                        char c) const {
  if (interval.empty()) return interval;
  // Among suffixes in [lo, hi) — all sharing the same `depth`-char prefix —
  // find the subrange whose next character is `c`. Suffixes shorter than
  // depth+1 sort first within the range.
  const auto char_at = [&](u32 row) -> int {
    const u64 pos = static_cast<u64>(sa_[row]) + depth;
    return pos < text_.size() ? static_cast<unsigned char>(text_[pos]) : -1;
  };
  const int target = static_cast<unsigned char>(c);
  u32 lo = interval.lo;
  u32 hi = interval.hi;
  // lower_bound for target.
  {
    u32 a = lo;
    u32 b = hi;
    while (a < b) {
      const u32 mid = a + (b - a) / 2;
      if (char_at(mid) < target) {
        a = mid + 1;
      } else {
        b = mid;
      }
    }
    lo = a;
  }
  // upper_bound for target.
  {
    u32 a = lo;
    u32 b = hi;
    while (a < b) {
      const u32 mid = a + (b - a) / 2;
      if (char_at(mid) <= target) {
        a = mid + 1;
      } else {
        b = mid;
      }
    }
    hi = a;
  }
  return {lo, hi};
}

MmpResult GenomeIndex::mmp(std::string_view query) const {
  MmpResult result;
  mmp(query, result);
  return result;
}

void GenomeIndex::mmp(std::string_view query, MmpResult& result) const {
  SaInterval interval{0, static_cast<u32>(sa_.size())};
  usize depth = 0;

  // Jump-start with the prefix LUT when the leading k-mer is pure ACGT.
  if (query.size() >= lut_k_) {
    u64 code = 0;
    bool valid = true;
    for (u32 j = 0; j < lut_k_; ++j) {
      const u8 b = base_code(query[j]);
      if (b == 0xff) {
        valid = false;
        break;
      }
      code = (code << 2) | b;
    }
    if (valid) {
      const SaInterval hit{lut_[code][0], lut_[code][1]};
      if (!hit.empty()) {
        interval = hit;
        depth = lut_k_;
      }
      // If the k-mer is absent the MMP is shorter than k; fall through to
      // the cascade below.
    }
  }

  // Main LUT could not jump (short query, absent k-mer, or an early N):
  // jump with the longest cascade LUT whose block is nonempty. This pins
  // the walk to a short-prefix SA block instead of binary-searching down
  // from the full range — the case every failing seed walk and every
  // read-tail restart hits.
  if (depth == 0 && !query.empty()) {
    u64 code = 0;
    u32 pure = 0;
    const u32 kmax = static_cast<u32>(std::min<usize>(4, query.size()));
    for (u32 j = 0; j < kmax; ++j) {
      const u8 b = base_code(query[j]);
      if (b == 0xff) break;
      code = (code << 2) | b;
      ++pure;
    }
    for (u32 k = pure; k >= 1; --k) {
      const auto& cell = mini_lut_[k - 1][code >> (2 * (pure - k))];
      const SaInterval hit{cell[0], cell[1]};
      if (!hit.empty()) {
        interval = hit;
        depth = k;
        break;
      }
    }
  }

  while (depth < query.size()) {
    if (interval.count() == 1) {
      // Single candidate suffix: extending by binary search would just
      // re-confirm this row, so compare against the text directly. This
      // is the common case for unique reads once the LUT (or a few
      // narrowing steps) pins the interval, and it turns O(log n) SA
      // probes per character into one text byte. Compare a word at a
      // time: the matched stretch is most of the read for unique reads.
      const u64 pos = sa_[interval.lo];
      const u64 limit = std::min<u64>(query.size(), text_.size() - pos);
      const char* t = text_.data() + pos;
      const char* q = query.data();
      while (depth + sizeof(u64) <= limit) {
        u64 tw;
        u64 qw;
        std::memcpy(&tw, t + depth, sizeof(u64));
        std::memcpy(&qw, q + depth, sizeof(u64));
        if (tw != qw) {
          // First differing byte within the word (little-endian).
          depth += static_cast<u64>(std::countr_zero(tw ^ qw)) / 8;
          result.length = depth;
          result.interval = depth > 0 ? interval : SaInterval{};
          return;
        }
        depth += sizeof(u64);
      }
      while (depth < limit && t[depth] == q[depth]) ++depth;
      break;
    }
    const SaInterval narrowed = extend_interval(interval, depth, query[depth]);
    if (narrowed.empty()) break;
    interval = narrowed;
    ++depth;
  }
  result.length = depth;
  result.interval = depth > 0 ? interval : SaInterval{};
}

IndexStats GenomeIndex::stats() const {
  IndexStats stats;
  stats.text_bytes = ByteSize(text_.size());
  stats.suffix_array_bytes = ByteSize(sa_.size() * sizeof(u32));
  stats.lut_bytes = ByteSize(lut_.size() * sizeof(lut_[0]));
  stats.genome_length = text_.size() - (contigs_.size() - 1);
  stats.num_contigs = contigs_.size();
  stats.prefix_lut_k = lut_k_;
  return stats;
}

void GenomeIndex::save(std::ostream& out) const {
  BinaryWriter writer(out);
  writer.write_u32(kIndexMagic);
  writer.write_u32(kIndexVersion);
  writer.write_string(species_);
  writer.write_u32(static_cast<u32>(release_));
  writer.write_u8(type_ == AssemblyType::kToplevel ? 0 : 1);
  writer.write_u64(contigs_.size());
  for (const auto& meta : contigs_) {
    writer.write_string(meta.name);
    writer.write_u8(static_cast<u8>(meta.cls));
    writer.write_u64(meta.text_offset);
    writer.write_u64(meta.length);
  }
  writer.write_string(text_);
  writer.write_pod_vector(sa_);
  writer.write_u32(lut_k_);
  // On-disk layout predates the interleaved in-memory LUT: split back
  // into the lo array then the hi array so version 2 stays readable.
  std::vector<u32> bound(lut_.size());
  for (usize i = 0; i < lut_.size(); ++i) bound[i] = lut_[i][0];
  writer.write_pod_vector(bound);
  for (usize i = 0; i < lut_.size(); ++i) bound[i] = lut_[i][1];
  writer.write_pod_vector(bound);
}

GenomeIndex GenomeIndex::load(std::istream& in) {
  BinaryReader reader(in);
  if (reader.read_u32() != kIndexMagic) {
    throw ParseError("not a staratlas genome index (bad magic)");
  }
  const u32 version = reader.read_u32();
  if (version != kIndexVersion) {
    throw ParseError("unsupported index version " + std::to_string(version));
  }
  GenomeIndex index;
  index.species_ = reader.read_string();
  index.release_ = static_cast<int>(reader.read_u32());
  index.type_ = reader.read_u8() == 0 ? AssemblyType::kToplevel
                                      : AssemblyType::kPrimaryAssembly;
  const u64 num_contigs = reader.read_u64();
  index.contigs_.reserve(num_contigs);
  for (u64 i = 0; i < num_contigs; ++i) {
    ContigMeta meta;
    meta.name = reader.read_string();
    meta.cls = static_cast<ContigClass>(reader.read_u8());
    meta.text_offset = reader.read_u64();
    meta.length = reader.read_u64();
    index.contigs_.push_back(std::move(meta));
  }
  index.text_ = reader.read_string();
  index.sa_ = reader.read_pod_vector<u32>();
  index.lut_k_ = reader.read_u32();
  const std::vector<u32> lo = reader.read_pod_vector<u32>();
  const std::vector<u32> hi = reader.read_pod_vector<u32>();
  if (lo.size() != hi.size()) {
    throw ParseError("index corrupt: LUT bound size mismatch");
  }
  index.lut_.resize(lo.size());
  for (usize i = 0; i < lo.size(); ++i) index.lut_[i] = {lo[i], hi[i]};
  if (index.sa_.size() != index.text_.size()) {
    throw ParseError("index corrupt: SA/text size mismatch");
  }
  index.build_mini_luts();
  return index;
}

void GenomeIndex::save_file(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw IoError("cannot open index file for writing: " + path);
  save(out);
  if (!out) throw IoError("failed writing index file: " + path);
}

GenomeIndex GenomeIndex::load_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open index file: " + path);
  return load(in);
}

}  // namespace staratlas
