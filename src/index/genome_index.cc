#include "index/genome_index.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>

#include "common/error.h"
#include "common/thread_pool.h"
#include "index/packed_sequence.h"
#include "index/suffix_array.h"
#include "io/binary.h"

namespace staratlas {

namespace {
constexpr char kSeparator = '#';
constexpr u32 kIndexMagic = 0x53544152;  // "STAR"
constexpr u64 kSectionAlign = 4096;      // page size: mmap'd sections start here

// v3/v4 section ids, in file order. v4 appends the packed-text sections
// and writes the raw text section with length 0 (the packed form *is*
// the text), which is what makes a v4 file both smaller on disk and
// smaller resident after an mmap attach.
enum SectionId : u32 {
  kSecMeta = 1,
  kSecText = 2,
  kSecSa = 3,
  kSecLut = 4,
  kSecMini1 = 5,  // 5..8 = cascade LUTs k=1..4
  kSecPackedCodes = 9,
  kSecPackedSlots = 10,
  kSecPackedExc = 11,
};
constexpr usize kNumSectionsV3 = 8;
constexpr usize kNumSectionsV4 = 11;
// Header: magic u32, version u32, count u64, then per section
// {id u32, reserved u32, offset u64, length u64, checksum u64}.
constexpr u64 kSectionEntryBytes = 32;

usize sections_for_version(u32 version) {
  return version == GenomeIndex::kVersionV4 ? kNumSectionsV4 : kNumSectionsV3;
}

// Expected serialized lengths of the packed-text sections for a genome of
// `text_size` bases (guard words/slots included — mmap views borrow them
// straight from the file).
u64 packed_codes_bytes(u64 text_size) {
  return packed_code_words(text_size) * sizeof(u64);
}
u64 packed_slots_bytes(u64 text_size) {
  return (packed_pages(text_size) + 1) * sizeof(u32);
}

u32 auto_lut_k(u64 text_size) {
  // Aim for 4^k ~ text_size / 16 so the LUT is dense but small.
  u32 k = 4;
  u64 cells = 256;
  while (cells * 16 < text_size && k < 12) {
    ++k;
    cells *= 4;
  }
  return k;
}

u64 align_up(u64 v, u64 alignment) {
  return (v + alignment - 1) / alignment * alignment;
}

[[noreturn]] void corrupt(const std::string& what) {
  throw ParseError("index corrupt: " + what);
}

// Slot-table integrity shared by the v4 load paths: every referenced
// block must exist and the guard slot must be clean, or exc_word() would
// read out of bounds on a corrupt file. O(pages) = ~1/1000 of the text,
// cheap enough even for the O(header) mmap attach.
void validate_packed_slots(std::span<const u32> slots, u64 pages,
                           u64 num_blocks) {
  if (slots.size() != pages + 1) corrupt("packed slot table size mismatch");
  for (u64 p = 0; p < slots.size(); ++p) {
    const u32 slot = slots[p];
    if (slot == kPackedNoExc) continue;
    if (p == pages || slot >= num_blocks) {
      corrupt("packed slot out of range");
    }
  }
}
}  // namespace

GenomeIndex GenomeIndex::build(const Assembly& assembly,
                               const IndexParams& params) {
  STARATLAS_CHECK(assembly.num_contigs() > 0);
  GenomeIndex index;
  index.species_ = assembly.species();
  index.release_ = assembly.release();
  index.type_ = assembly.type();

  const usize threads =
      params.num_threads == 0
          ? std::max<usize>(1, std::thread::hardware_concurrency())
          : params.num_threads;

  // Contig offsets are a pure prefix sum, so the text buffer can be
  // preallocated and contigs copied into their slots independently.
  u64 total = 0;
  for (const auto& contig : assembly.contigs()) {
    total += contig.length() + 1;
  }
  std::string& text = index.storage_.text_owned;
  text.resize(total - 1);  // no trailing separator
  index.contigs_.reserve(assembly.num_contigs());
  u64 offset = 0;
  for (const auto& contig : assembly.contigs()) {
    ContigMeta meta;
    meta.name = contig.name;
    meta.cls = contig.cls;
    meta.text_offset = offset;
    meta.length = contig.length();
    index.contigs_.push_back(std::move(meta));
    offset += contig.length() + 1;
  }
  const auto copy_contigs = [&](usize begin, usize end) {
    for (usize c = begin; c < end; ++c) {
      const ContigMeta& meta = index.contigs_[c];
      std::memcpy(text.data() + meta.text_offset,
                  assembly.contigs()[c].sequence.data(), meta.length);
      if (c + 1 < index.contigs_.size()) {
        text[meta.text_offset + meta.length] = kSeparator;
      }
    }
  };

  index.lut_k_ = params.prefix_lut_k ? params.prefix_lut_k
                                     : auto_lut_k(text.size());
  STARATLAS_CHECK(index.lut_k_ >= 2 && index.lut_k_ <= 14);

  if (threads > 1) {
    ThreadPool pool(threads);
    parallel_for_blocks(pool, index.contigs_.size(), copy_contigs);
    index.storage_.sa_owned = build_suffix_array_parallel(text, pool);
    index.build_lut_parallel(pool);
    index.build_mini_luts_parallel(pool);
  } else {
    copy_contigs(0, index.contigs_.size());
    index.storage_.sa_owned = build_suffix_array(text);
    index.build_lut();
    index.build_mini_luts();
  }
  return index;
}

void GenomeIndex::build_lut() {
  const std::string& text = storage_.text_owned;
  const std::vector<u32>& sa = storage_.sa_owned;
  const u64 cells = u64{1} << (2 * lut_k_);
  storage_.lut_owned.assign(cells, {0, 0});
  auto& lut = storage_.lut_owned;

  // Walk the suffix array once; suffixes beginning with the same pure-ACGT
  // k-mer form one contiguous block, and block codes appear in increasing
  // order (byte order of A<C<G<T matches code order).
  u64 current_code = ~u64{0};
  for (usize row = 0; row < sa.size(); ++row) {
    const u64 pos = sa[row];
    if (pos + lut_k_ > text.size()) continue;
    u64 code = 0;
    bool valid = true;
    for (u32 j = 0; j < lut_k_; ++j) {
      const u8 b = base_code(text[pos + j]);
      if (b == 0xff) {
        valid = false;
        break;
      }
      code = (code << 2) | b;
    }
    if (!valid) continue;
    if (code != current_code) {
      current_code = code;
      lut[code][0] = static_cast<u32>(row);
    }
    lut[code][1] = static_cast<u32>(row) + 1;
  }
}

void GenomeIndex::build_lut_parallel(ThreadPool& pool) {
  const std::string& text = storage_.text_owned;
  const std::vector<u32>& sa = storage_.sa_owned;
  const u64 cells = u64{1} << (2 * lut_k_);
  storage_.lut_owned.assign(cells, {0, 0});
  auto& lut = storage_.lut_owned;

  // Sharded single pass: each shard scans a contiguous SA row range and
  // emits its (code, lo, hi) runs in row order. Because the rows of one
  // k-mer are contiguous in the SA, a run split across shards merges by
  // extending hi; merging in shard order makes the result independent of
  // scheduling and equal to the sequential walk.
  struct Run {
    u64 code;
    u32 lo;
    u32 hi;
  };
  const usize shards = std::min<usize>(sa.size(), pool.size() * 4);
  if (shards == 0) return;
  std::vector<std::vector<Run>> shard_runs(shards);
  const usize per_shard = (sa.size() + shards - 1) / shards;
  std::vector<std::future<void>> futures;
  futures.reserve(shards);
  for (usize s = 0; s < shards; ++s) {
    futures.push_back(pool.submit([&, s] {
      const usize begin = s * per_shard;
      const usize end = std::min(sa.size(), begin + per_shard);
      std::vector<Run>& runs = shard_runs[s];
      u64 current_code = ~u64{0};
      for (usize row = begin; row < end; ++row) {
        const u64 pos = sa[row];
        if (pos + lut_k_ > text.size()) continue;
        u64 code = 0;
        bool valid = true;
        for (u32 j = 0; j < lut_k_; ++j) {
          const u8 b = base_code(text[pos + j]);
          if (b == 0xff) {
            valid = false;
            break;
          }
          code = (code << 2) | b;
        }
        if (!valid) continue;
        if (code != current_code) {
          current_code = code;
          runs.push_back({code, static_cast<u32>(row), static_cast<u32>(row)});
        }
        runs.back().hi = static_cast<u32>(row) + 1;
      }
    }));
  }
  for (auto& f : futures) f.get();
  for (const auto& runs : shard_runs) {
    for (const Run& run : runs) {
      auto& cell = lut[run.code];
      if (cell[0] == cell[1]) cell[0] = run.lo;
      cell[1] = run.hi;
    }
  }
}

void GenomeIndex::build_mini_luts() {
  const std::string& text = storage_.text_owned;
  const std::vector<u32>& sa = storage_.sa_owned;
  for (u32 k = 1; k <= 4; ++k) {
    storage_.mini_owned[k - 1].assign(u64{1} << (2 * k), {0, 0});
  }
  // One SA pass; each row contributes to every prefix length its leading
  // pure-ACGT run covers. Unlike the main LUT, a block here includes
  // suffixes with a separator or N *after* the prefix — exactly the set
  // incremental narrowing from the full range would produce.
  for (usize row = 0; row < sa.size(); ++row) {
    const u64 pos = sa[row];
    u64 code = 0;
    for (u32 k = 1; k <= 4; ++k) {
      if (pos + k > text.size()) break;
      const u8 b = base_code(text[pos + k - 1]);
      if (b == 0xff) break;
      code = (code << 2) | b;
      auto& cell = storage_.mini_owned[k - 1][code];
      if (cell[0] == cell[1]) cell[0] = static_cast<u32>(row);
      cell[1] = static_cast<u32>(row) + 1;
    }
  }
}

void GenomeIndex::build_mini_luts_parallel(ThreadPool& pool) {
  const std::string& text = storage_.text_owned;
  const std::vector<u32>& sa = storage_.sa_owned;
  for (u32 k = 1; k <= 4; ++k) {
    storage_.mini_owned[k - 1].assign(u64{1} << (2 * k), {0, 0});
  }
  // 340 cells per shard — shard-local copies are cheap, and merging them
  // in shard order (same contiguous-block argument as the main LUT) keeps
  // the result bit-identical to the sequential pass.
  using MiniSet = std::array<std::vector<LutCell>, 4>;
  const usize shards = std::min<usize>(sa.size(), pool.size() * 4);
  if (shards == 0) return;
  std::vector<MiniSet> shard_minis(shards);
  const usize per_shard = (sa.size() + shards - 1) / shards;
  std::vector<std::future<void>> futures;
  futures.reserve(shards);
  for (usize s = 0; s < shards; ++s) {
    futures.push_back(pool.submit([&, s] {
      MiniSet& local = shard_minis[s];
      for (u32 k = 1; k <= 4; ++k) {
        local[k - 1].assign(u64{1} << (2 * k), {0, 0});
      }
      const usize begin = s * per_shard;
      const usize end = std::min(sa.size(), begin + per_shard);
      for (usize row = begin; row < end; ++row) {
        const u64 pos = sa[row];
        u64 code = 0;
        for (u32 k = 1; k <= 4; ++k) {
          if (pos + k > text.size()) break;
          const u8 b = base_code(text[pos + k - 1]);
          if (b == 0xff) break;
          code = (code << 2) | b;
          auto& cell = local[k - 1][code];
          if (cell[0] == cell[1]) cell[0] = static_cast<u32>(row);
          cell[1] = static_cast<u32>(row) + 1;
        }
      }
    }));
  }
  for (auto& f : futures) f.get();
  for (const MiniSet& local : shard_minis) {
    for (u32 k = 1; k <= 4; ++k) {
      auto& global = storage_.mini_owned[k - 1];
      const auto& shard = local[k - 1];
      for (usize code = 0; code < shard.size(); ++code) {
        if (shard[code][0] == shard[code][1]) continue;  // untouched
        auto& cell = global[code];
        if (cell[0] == cell[1]) cell[0] = shard[code][0];
        cell[1] = shard[code][1];
      }
    }
  }
}

ContigLocus GenomeIndex::locate(GenomePos text_pos) const {
  STARATLAS_CHECK(text_pos < storage_.text_size());
  // Binary search for the contig whose [text_offset, text_offset+length)
  // contains text_pos.
  usize lo = 0;
  usize hi = contigs_.size();
  while (lo + 1 < hi) {
    const usize mid = (lo + hi) / 2;
    if (contigs_[mid].text_offset <= text_pos) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const ContigMeta& meta = contigs_[lo];
  STARATLAS_CHECK(text_pos >= meta.text_offset &&
                  text_pos < meta.text_offset + meta.length);
  return {static_cast<ContigId>(lo), text_pos - meta.text_offset};
}

namespace {

/// Byte-order rank of a packed (code, exception) pair: '#' < 'A' < 'C' <
/// 'G' < 'N' < 'T' — the order raw-text suffix comparison sees, so block
/// compares over packed text narrow exactly like byte compares.
inline u32 packed_char_rank(u32 code, u32 exc) {
  static constexpr u32 kBase[4] = {1, 2, 3, 5};  // A C G T
  return exc ? (code == 0 ? 4 : 0) : kBase[code];  // N / '#'
}

/// Compresses a XOR of two 2-bit code words to a per-base mismatch mask
/// (bit i set iff base i's codes differ) — packed_mismatch_mask32's fold.
inline u32 fold_code_mismatch32(u64 x) {
  u64 m = (x | (x >> 1)) & 0x5555555555555555ULL;
  m = (m | (m >> 1)) & 0x3333333333333333ULL;
  m = (m | (m >> 2)) & 0x0F0F0F0F0F0F0F0FULL;
  m = (m | (m >> 4)) & 0x00FF00FF00FF00FFULL;
  m = (m | (m >> 8)) & 0x0000FFFF0000FFFFULL;
  m = (m | (m >> 16)) & 0x00000000FFFFFFFFULL;
  return static_cast<u32>(m);
}

/// Three-way byte-order compare of text block [pos, pos+len) against
/// packed query bases [qpos, qpos+len), len <= 32, in one code-word +
/// overlay extraction per side. A block truncated by the text end sorts
/// first (the char_at == -1 convention of extend_interval). Guard words
/// make the end-of-array extractions safe; bases past min(len, text end)
/// are masked out of the decision.
inline int packed_block_compare(const PackedTextView& ptext, u64 tsize,
                                u64 pos, const u64* qcodes, const u64* qexc,
                                u64 qpos, u32 len) {
  if (pos >= tsize) return -1;
  const u32 n = static_cast<u32>(std::min<u64>(len, tsize - pos));
  const u64 tc = ptext.extract_codes(pos);
  const u32 te = ptext.extract_exc(pos);
  const u64 qc = packed_extract_codes(qcodes, qpos);
  const u32 qe = packed_extract_bits32(qexc, qpos);
  const u32 mismatch = fold_code_mismatch32(tc ^ qc) | (te ^ qe);
  const u32 first =
      mismatch == 0 ? 32 : static_cast<u32>(std::countr_zero(mismatch));
  if (first >= n) return n == len ? 0 : -1;
  const u32 trank = packed_char_rank((tc >> (2 * first)) & 3u,
                                     (te >> first) & 1u);
  const u32 qrank = packed_char_rank((qc >> (2 * first)) & 3u,
                                     (qe >> first) & 1u);
  return trank < qrank ? -1 : 1;
}

}  // namespace

SaInterval GenomeIndex::extend_interval_packed_block(SaInterval interval,
                                                     usize depth,
                                                     const u64* qcodes,
                                                     const u64* qexc,
                                                     u32 len) const {
  STARATLAS_CHECK(storage_.has_packed());
  STARATLAS_CHECK(len >= 1 && len <= kPackedBasesPerWord);
  if (interval.empty()) return interval;
  const std::span<const u32> sa = storage_.sa();
  const u64 tsize = storage_.text_size();
  const PackedTextView ptext = storage_.packed_view();
  const auto compare = [&](u32 row) {
    return packed_block_compare(ptext, tsize,
                                static_cast<u64>(sa[row]) + depth, qcodes,
                                qexc, depth, len);
  };
  u32 a = interval.lo;
  u32 b = interval.hi;
  while (a < b) {
    const u32 mid = a + (b - a) / 2;
    if (compare(mid) < 0) {
      a = mid + 1;
    } else {
      b = mid;
    }
  }
  const u32 lo = a;
  b = interval.hi;
  while (a < b) {
    const u32 mid = a + (b - a) / 2;
    if (compare(mid) <= 0) {
      a = mid + 1;
    } else {
      b = mid;
    }
  }
  return {lo, a};
}

SaInterval GenomeIndex::extend_interval(SaInterval interval, usize depth,
                                        char c) const {
  if (interval.empty()) return interval;
  const std::string_view text = storage_.text();
  const std::span<const u32> sa = storage_.sa();
  const u64 tsize = storage_.text_size();
  const bool packed = storage_.has_packed();
  const PackedTextView ptext = storage_.packed_view();
  // Among suffixes in [lo, hi) — all sharing the same `depth`-char prefix —
  // find the subrange whose next character is `c`. Suffixes shorter than
  // depth+1 sort first within the range. Packed decode preserves byte
  // order ('#' < ACGT < beyond), so the narrowing is encoding-independent.
  const auto char_at = [&](u32 row) -> int {
    const u64 pos = static_cast<u64>(sa[row]) + depth;
    if (pos >= tsize) return -1;
    return static_cast<unsigned char>(packed ? ptext.at(pos) : text[pos]);
  };
  const int target = static_cast<unsigned char>(c);
  u32 lo = interval.lo;
  u32 hi = interval.hi;
  // lower_bound for target.
  {
    u32 a = lo;
    u32 b = hi;
    while (a < b) {
      const u32 mid = a + (b - a) / 2;
      if (char_at(mid) < target) {
        a = mid + 1;
      } else {
        b = mid;
      }
    }
    lo = a;
  }
  // upper_bound for target.
  {
    u32 a = lo;
    u32 b = hi;
    while (a < b) {
      const u32 mid = a + (b - a) / 2;
      if (char_at(mid) <= target) {
        a = mid + 1;
      } else {
        b = mid;
      }
    }
    hi = a;
  }
  return {lo, hi};
}

MmpResult GenomeIndex::mmp(std::string_view query) const {
  MmpResult result;
  mmp(query, result);
  return result;
}

void GenomeIndex::mmp(std::string_view query, MmpResult& result) const {
  const std::string_view text = storage_.text();
  const std::span<const u32> sa = storage_.sa();
  const std::span<const LutCell> lut = storage_.lut();
  SaInterval interval{0, static_cast<u32>(sa.size())};
  usize depth = 0;

  // Jump-start with the prefix LUT when the leading k-mer is pure ACGT.
  if (query.size() >= lut_k_) {
    u64 code = 0;
    bool valid = true;
    for (u32 j = 0; j < lut_k_; ++j) {
      const u8 b = base_code(query[j]);
      if (b == 0xff) {
        valid = false;
        break;
      }
      code = (code << 2) | b;
    }
    if (valid) {
      const SaInterval hit{lut[code][0], lut[code][1]};
      if (!hit.empty()) {
        interval = hit;
        depth = lut_k_;
      }
      // If the k-mer is absent the MMP is shorter than k; fall through to
      // the cascade below.
    }
  }

  // Main LUT could not jump (short query, absent k-mer, or an early N):
  // jump with the longest cascade LUT whose block is nonempty. This pins
  // the walk to a short-prefix SA block instead of binary-searching down
  // from the full range — the case every failing seed walk and every
  // read-tail restart hits.
  if (depth == 0 && !query.empty()) {
    u64 code = 0;
    u32 pure = 0;
    const u32 kmax = static_cast<u32>(std::min<usize>(4, query.size()));
    for (u32 j = 0; j < kmax; ++j) {
      const u8 b = base_code(query[j]);
      if (b == 0xff) break;
      code = (code << 2) | b;
      ++pure;
    }
    for (u32 k = pure; k >= 1; --k) {
      const auto& cell = storage_.mini(k)[code >> (2 * (pure - k))];
      const SaInterval hit{cell[0], cell[1]};
      if (!hit.empty()) {
        interval = hit;
        depth = k;
        break;
      }
    }
  }

  if (storage_.has_packed()) {
    // Packed text: same walk, but the single-candidate scan runs the
    // wide-word packed LCP kernel (32/64/128 bases per compare) instead
    // of byte words. Queries that exceed the stack packing budget or
    // contain non-ACGTN characters take the per-base decode fallback,
    // which preserves exact byte semantics for arbitrary input.
    const PackedTextView ptext = storage_.packed_view();
    constexpr usize kMaxPacked = 512;
    u64 qc[kMaxPacked / 32 + 1];
    u64 qe[kMaxPacked / 64 + 1];
    const bool packable =
        query.size() <= kMaxPacked && pack_query(query, qc, qe);
    while (depth < query.size()) {
      if (interval.count() == 1) {
        const u64 pos = sa[interval.lo];
        const u64 limit = std::min<u64>(query.size(), ptext.size - pos);
        if (packable) {
          depth = packed_lcp(ptext, pos, qc, qe, depth, limit);
        } else {
          while (depth < limit && ptext.at(pos + depth) == query[depth]) {
            ++depth;
          }
        }
        break;
      }
      if (packable) {
        // Wide-block narrowing: consume up to 32 characters per
        // equal-range pass, one code-word extraction per probe instead of
        // one decoded base. An empty block range means the walk ends
        // strictly inside the block — the per-char fallback below finds
        // the exact end (or pins a single candidate for the scan above),
        // so results are bit-identical to the per-char walk.
        const u32 len = static_cast<u32>(
            std::min<u64>(kPackedBasesPerWord, query.size() - depth));
        if (len > 1) {
          const SaInterval block =
              extend_interval_packed_block(interval, depth, qc, qe, len);
          if (!block.empty()) {
            interval = block;
            depth += len;
            continue;
          }
          while (interval.count() > 1 && depth < query.size()) {
            const SaInterval narrowed =
                extend_interval(interval, depth, query[depth]);
            if (narrowed.empty()) {
              result.length = depth;
              result.interval = depth > 0 ? interval : SaInterval{};
              return;
            }
            interval = narrowed;
            ++depth;
          }
          continue;
        }
      }
      const SaInterval narrowed =
          extend_interval(interval, depth, query[depth]);
      if (narrowed.empty()) break;
      interval = narrowed;
      ++depth;
    }
    result.length = depth;
    result.interval = depth > 0 ? interval : SaInterval{};
    return;
  }

  while (depth < query.size()) {
    if (interval.count() == 1) {
      // Single candidate suffix: extending by binary search would just
      // re-confirm this row, so compare against the text directly. This
      // is the common case for unique reads once the LUT (or a few
      // narrowing steps) pins the interval, and it turns O(log n) SA
      // probes per character into one text byte. Compare a word at a
      // time: the matched stretch is most of the read for unique reads.
      const u64 pos = sa[interval.lo];
      const u64 limit = std::min<u64>(query.size(), text.size() - pos);
      const char* t = text.data() + pos;
      const char* q = query.data();
      while (depth + sizeof(u64) <= limit) {
        u64 tw;
        u64 qw;
        std::memcpy(&tw, t + depth, sizeof(u64));
        std::memcpy(&qw, q + depth, sizeof(u64));
        if (tw != qw) {
          // First differing byte within the word (little-endian).
          depth += static_cast<u64>(std::countr_zero(tw ^ qw)) / 8;
          result.length = depth;
          result.interval = depth > 0 ? interval : SaInterval{};
          return;
        }
        depth += sizeof(u64);
      }
      while (depth < limit && t[depth] == q[depth]) ++depth;
      break;
    }
    const SaInterval narrowed = extend_interval(interval, depth, query[depth]);
    if (narrowed.empty()) break;
    interval = narrowed;
    ++depth;
  }
  result.length = depth;
  result.interval = depth > 0 ? interval : SaInterval{};
}

namespace {

/// Lockstep batch walker behind GenomeIndex::mmp_batch. Lane state is
/// struct-of-arrays so each wave phase runs as a tight loop over a dense
/// active-lane list; per-lane state machines were measured slower than
/// this shape (dispatch overhead ate the latency win).
///
/// Wave structure, per round of up to kLanes in-flight queries:
///   jump:    compute LUT codes for every lane, prefetch the LUT cells
///            across lanes, then read them (mini-LUT cascade fallback,
///            exactly as mmp()).
///   narrow:  lanes whose interval is still wide binary-search one query
///            character at a time (the lower-then-upper bound rounds of
///            extend_interval). Each half-round first issues every lane's
///            sa[mid] load and prefetches the text byte it points at,
///            then consumes them — lane A's DRAM miss hides behind lanes
///            B..Z instead of stalling the walk.
///   gather:  lanes whose interval fits kT rows read the rows' text
///            positions and prefetch all of them at once.
///   compare: per row, LCP against the query (word-at-a-time); the
///            maximal rows form a contiguous block (LCP over a sorted
///            suffix block is unimodal), which becomes the result
///            interval. This replaces the per-character narrowing for
///            small intervals and is where unique reads spend their walk.
///   apply:   results are written out and freed lanes refill from the
///            query list.
struct MmpBatchWalker {
  static constexpr u32 kT = 24;       ///< direct-scan row threshold
  static constexpr usize kLanes = 64; ///< in-flight queries
  /// Stack budget for per-lane packed queries; longer (or non-ACGTN)
  /// queries fall back to the per-base decode compare.
  static constexpr usize kMaxPackedQuery = 512;
  static constexpr usize kQWords = kMaxPackedQuery / 32 + 1;
  static constexpr usize kEWords = kMaxPackedQuery / 64 + 1;

  const std::string_view text;
  const std::span<const u32> sa;
  const std::span<const LutCell> lut;
  const u32 lut_k;
  const GenomeIndex& index;
  /// Inactive (null codes) for raw-text indexes; when active, `text` is
  /// empty and every text access below goes through the packed view.
  const PackedTextView ptext;
  const u64 tsize;

  // Lane state (index = lane).
  const char* q[kLanes];
  u32 qlen[kLanes];
  // Per-lane packed query (filled at refill when the text is packed, so
  // the packing cost amortizes over the lane's whole walk).
  u64 qcodes[kLanes][kQWords];
  u64 qexc[kLanes][kEWords];
  bool qpacked[kLanes];
  u32 ilo[kLanes], ihi[kLanes], depth[kLanes];
  // Narrow state: current bounds [a, b), probe row, lower-bound result,
  // and whether we are in the lower (0) or upper (1) bound pass.
  u32 a[kLanes], b[kLanes], mid[kLanes], nlo[kLanes];
  u8 nmode[kLanes];
  i32 target[kLanes];
  // Wide-block narrowing (packed text + packed lane): characters consumed
  // per equal-range pass. 1 = per-char probes (raw text, unpackable
  // query, or the fallback after a block came up empty).
  u32 blen[kLanes];
  // Set once a lane's wide block found no matching suffix: the walk ends
  // within that block, so the lane finishes it per-char (retrying wider
  // blocks would re-fail and waste probes).
  bool single[kLanes];
  // Gathered text positions of a small interval's rows.
  u64 rpos[kLanes][kT];
  u32 rn[kLanes];
  // advance_bounds() outcome: 0 = next character started (still
  // narrowing), 1 = direct scan next, 2 = walk finished.
  u8 state[kLanes];
  u32 tag[kLanes];  ///< feed tag of the query the lane is resolving

  explicit MmpBatchWalker(const GenomeIndex& idx)
      : text(idx.text()),
        sa(idx.suffix_array()),
        lut(idx.prefix_lut()),
        lut_k(idx.prefix_lut_k()),
        index(idx),
        ptext(idx.packed_view()),
        tsize(idx.text_size()) {}

  /// Text character for the narrow probes: raw byte or packed decode.
  i32 probe_char(u64 pos) const {
    if (pos >= tsize) return -1;
    return static_cast<unsigned char>(ptext.active() ? ptext.at(pos)
                                                     : text[pos]);
  }

  /// Prefetch of the text backing position `pos` (the code word when
  /// packed — the overlay's slot table is tiny and stays cache-resident).
  void prefetch_text(u64 pos) const {
    if (ptext.active()) {
      __builtin_prefetch(&ptext.codes[pos >> 5]);
    } else {
      __builtin_prefetch(text.data() + pos);
    }
  }

  void start_char(usize i) {
    // Packed lanes narrow by up to a whole 32-base code word per pass —
    // one funnel-shift extraction per probe — unless a previous block of
    // this walk already came up empty (single-char fallback).
    blen[i] = ptext.active() && qpacked[i] && !single[i]
                  ? std::min<u32>(static_cast<u32>(kPackedBasesPerWord),
                                  qlen[i] - depth[i])
                  : 1;
    target[i] = static_cast<unsigned char>(q[i][depth[i]]);
    a[i] = ilo[i];
    b[i] = ihi[i];
    nmode[i] = 0;
    mid[i] = a[i] + (b[i] - a[i]) / 2;
    __builtin_prefetch(&sa[mid[i]]);
  }

  /// After one probe was consumed: true when another probe is pending
  /// (mid computed and prefetched); false with state[i] set otherwise.
  bool advance_bounds(usize i) {
    for (;;) {
      if (a[i] < b[i]) {
        mid[i] = a[i] + (b[i] - a[i]) / 2;
        __builtin_prefetch(&sa[mid[i]]);
        return true;
      }
      if (nmode[i] == 0) {
        // Lower bound done; run the upper bound over [lower, ihi).
        nlo[i] = a[i];
        b[i] = ihi[i];
        nmode[i] = 1;
        continue;
      }
      // Both bounds done: the narrowed interval is [nlo, a).
      if (nlo[i] == a[i]) {
        if (blen[i] > 1) {
          // No suffix matches the whole block: the walk terminates
          // within it. Re-narrow the same depth one character at a time
          // to find exactly where (bit-identical to a per-char walk).
          single[i] = true;
          start_char(i);
          state[i] = 0;
          return false;
        }
        state[i] = 2;  // next char absent: keep interval/depth, finish
        return false;
      }
      ilo[i] = nlo[i];
      ihi[i] = a[i];
      depth[i] += blen[i];
      if (depth[i] >= qlen[i]) {
        state[i] = 2;
        return false;
      }
      if (ihi[i] - ilo[i] > kT) {
        start_char(i);
        state[i] = 0;
        return false;
      }
      state[i] = 1;  // small enough for the direct scan
      return false;
    }
  }

  void classify(usize i, u8* narrow, usize& n_nar, u8* direct, usize& n_dir,
                u8* done, usize& n_done) {
    if (depth[i] >= qlen[i]) {
      done[n_done++] = static_cast<u8>(i);
      return;
    }
    if (ihi[i] - ilo[i] > kT) {
      start_char(i);
      narrow[n_nar++] = static_cast<u8>(i);
      return;
    }
    direct[n_dir++] = static_cast<u8>(i);
  }

  /// Claims the next query from the feed into lane `i`.
  bool refill(GenomeIndex::MmpFeed& feed, usize i) {
    std::string_view query;
    u32 t = 0;
    if (!feed.next(query, t)) return false;
    q[i] = query.data();
    qlen[i] = static_cast<u32>(query.size());
    tag[i] = t;
    single[i] = false;
    if (ptext.active()) {
      qpacked[i] = query.size() <= kMaxPackedQuery &&
                   pack_query(query, qcodes[i], qexc[i]);
    }
    return true;
  }

  void run(GenomeIndex::MmpFeed& feed) {
    u8 active[kLanes];
    usize n_active = 0;
    for (usize i = 0; i < kLanes && refill(feed, i); ++i) {
      active[n_active++] = static_cast<u8>(i);
    }

    u8 narrow[kLanes], direct[kLanes], done[kLanes];
    u64 codes[kLanes];
    while (n_active > 0) {
      usize n_nar = 0, n_dir = 0, n_done = 0;
      // Jump: codes + LUT prefetch across lanes, then the cell reads.
      for (usize k = 0; k < n_active; ++k) {
        const usize i = active[k];
        const std::string_view query(q[i], qlen[i]);
        codes[i] = ~u64{0};
        if (query.size() >= lut_k) {
          u64 code = 0;
          bool valid = true;
          for (u32 j = 0; j < lut_k; ++j) {
            const u8 c = base_code(query[j]);
            if (c == 0xff) {
              valid = false;
              break;
            }
            code = (code << 2) | c;
          }
          if (valid) {
            codes[i] = code;
            __builtin_prefetch(&lut[code]);
          }
        }
      }
      for (usize k = 0; k < n_active; ++k) {
        const usize i = active[k];
        ilo[i] = 0;
        ihi[i] = static_cast<u32>(sa.size());
        depth[i] = 0;
        if (codes[i] != ~u64{0}) {
          const LutCell& cell = lut[codes[i]];
          if (cell[0] != cell[1]) {
            ilo[i] = cell[0];
            ihi[i] = cell[1];
            depth[i] = lut_k;
          }
        }
        if (depth[i] == 0 && qlen[i] > 0) {
          // Mini-LUT cascade, exactly as mmp().
          u64 code = 0;
          u32 pure = 0;
          const u32 kmax = std::min<u32>(4, qlen[i]);
          for (u32 j = 0; j < kmax; ++j) {
            const u8 c = base_code(q[i][j]);
            if (c == 0xff) break;
            code = (code << 2) | c;
            ++pure;
          }
          for (u32 kk = pure; kk >= 1; --kk) {
            const LutCell& cell = index.mini_lut(kk)[code >> (2 * (pure - kk))];
            if (cell[0] != cell[1]) {
              ilo[i] = cell[0];
              ihi[i] = cell[1];
              depth[i] = kk;
              break;
            }
          }
        }
        classify(i, narrow, n_nar, direct, n_dir, done, n_done);
      }

      // Narrow rounds: issue all lanes' probes, then consume them.
      while (n_nar > 0) {
        for (usize k = 0; k < n_nar; ++k) {
          const usize i = narrow[k];
          rpos[i][0] = sa[mid[i]];
          prefetch_text(rpos[i][0] + depth[i]);
        }
        usize kept = 0;
        for (usize k = 0; k < n_nar; ++k) {
          const usize i = narrow[k];
          bool go_right;
          if (blen[i] > 1) {
            const int cmp =
                packed_block_compare(ptext, tsize, rpos[i][0] + depth[i],
                                     qcodes[i], qexc[i], depth[i], blen[i]);
            go_right = nmode[i] == 0 ? cmp < 0 : cmp <= 0;
          } else {
            const i32 c = probe_char(rpos[i][0] + depth[i]);
            go_right = nmode[i] == 0 ? (c < target[i]) : (c <= target[i]);
          }
          if (go_right) {
            a[i] = mid[i] + 1;
          } else {
            b[i] = mid[i];
          }
          if (advance_bounds(i)) {
            narrow[kept++] = static_cast<u8>(i);
          } else if (state[i] == 0) {
            narrow[kept++] = static_cast<u8>(i);  // next char started
          } else if (state[i] == 1) {
            direct[n_dir++] = static_cast<u8>(i);
          } else {
            done[n_done++] = static_cast<u8>(i);
          }
        }
        n_nar = kept;
      }

      // Gather: read the rows of every direct lane, prefetch their text.
      for (usize k = 0; k < n_dir; ++k) {
        const usize i = direct[k];
        const u32 n = ihi[i] - ilo[i];
        rn[i] = n;
        for (u32 r = 0; r < n; ++r) {
          rpos[i][r] = sa[ilo[i] + r];
          prefetch_text(rpos[i][r] + depth[i]);
        }
      }
      // Compare: per-row LCP, then extract the maximal contiguous block.
      for (usize k = 0; k < n_dir; ++k) {
        const usize i = direct[k];
        const char* qq = q[i];
        u32 lens[kT];
        u32 best = depth[i];
        for (u32 r = 0; r < rn[i]; ++r) {
          const u64 limit = std::min<u64>(qlen[i], tsize - rpos[i][r]);
          u64 d = depth[i];
          if (ptext.active()) {
            // Packed text: wide-word kernel (32/64/128 bases per XOR)
            // when the lane's query packed; per-base decode otherwise.
            if (qpacked[i]) {
              d = packed_lcp(ptext, rpos[i][r], qcodes[i], qexc[i], d,
                             limit);
            } else {
              while (d < limit && ptext.at(rpos[i][r] + d) == qq[d]) ++d;
            }
            lens[r] = static_cast<u32>(d);
            if (lens[r] > best) best = lens[r];
            continue;
          }
          const char* t = text.data() + rpos[i][r];
          while (d + sizeof(u64) <= limit) {
            u64 tw, qw;
            std::memcpy(&tw, t + d, sizeof(u64));
            std::memcpy(&qw, qq + d, sizeof(u64));
            const u64 x = tw ^ qw;
            if (x != 0) {
              d += static_cast<u64>(std::countr_zero(x)) / 8;
              goto row_done;
            }
            d += sizeof(u64);
          }
          while (d < limit && t[d] == qq[d]) ++d;
        row_done:
          lens[r] = static_cast<u32>(d);
          if (lens[r] > best) best = lens[r];
        }
        if (best > depth[i]) {
          u32 lo = 0;
          while (lens[lo] < best) ++lo;
          u32 hi = rn[i];
          while (lens[hi - 1] < best) --hi;
          ilo[i] += lo;
          ihi[i] = ilo[i] + (hi - lo);
          depth[i] = best;
        }
        done[n_done++] = static_cast<u8>(i);
      }

      // Apply: deliver every result first — each may hand the feed new
      // work (a walk's next restart) — then refill the freed lanes.
      for (usize k = 0; k < n_done; ++k) {
        const usize i = done[k];
        MmpResult out;
        out.length = depth[i];
        out.interval =
            depth[i] > 0 ? SaInterval{ilo[i], ihi[i]} : SaInterval{};
        feed.done(tag[i], out);
      }
      usize new_active = 0;
      for (usize k = 0; k < n_done; ++k) {
        const usize i = done[k];
        if (!refill(feed, i)) break;  // dry now; no in-flight queries left
        active[new_active++] = static_cast<u8>(i);
      }
      n_active = new_active;
    }
  }
};

/// Adapts the span-based mmp_batch onto the streaming walker.
class SpanFeed final : public GenomeIndex::MmpFeed {
 public:
  SpanFeed(std::span<const std::string_view> queries,
           std::span<MmpResult> results)
      : queries_(queries), results_(results) {}

  bool next(std::string_view& query, u32& tag) override {
    if (next_ >= queries_.size()) return false;
    query = queries_[next_];
    tag = static_cast<u32>(next_);
    ++next_;
    return true;
  }

  void done(u32 tag, const MmpResult& result) override {
    results_[tag] = result;
  }

 private:
  std::span<const std::string_view> queries_;
  std::span<MmpResult> results_;
  usize next_ = 0;
};

}  // namespace

void GenomeIndex::mmp_batch_stream(MmpFeed& feed) const {
  MmpBatchWalker walker(*this);
  walker.run(feed);
}

void GenomeIndex::mmp_batch(std::span<const std::string_view> queries,
                            std::span<MmpResult> results) const {
  STARATLAS_CHECK(queries.size() == results.size());
  if (queries.empty()) return;
  SpanFeed feed(queries, results);
  MmpBatchWalker walker(*this);
  walker.run(feed);
}

IndexStats GenomeIndex::stats() const {
  IndexStats stats;
  if (storage_.has_packed()) {
    // Resident packed text: 2-bit codes + per-page slot table + dirty
    // overlay blocks — ~0.25 bytes/base vs 1 byte/base raw, the ~4x the
    // footprint/rightsizing layer consumes.
    const PackedTextView v = storage_.packed_view();
    stats.text_bytes =
        ByteSize(packed_code_words(v.size) * sizeof(u64) +
                 (v.num_pages + 1) * sizeof(u32) +
                 v.num_exc_blocks * kPackedPageWords * sizeof(u64));
    stats.packed_text = true;
  } else {
    stats.text_bytes = ByteSize(storage_.text().size());
  }
  stats.suffix_array_bytes = ByteSize(storage_.sa().size() * sizeof(u32));
  stats.lut_bytes = ByteSize(storage_.lut().size() * sizeof(LutCell));
  u64 mini_bytes = 0;
  for (u32 k = 1; k <= 4; ++k) {
    mini_bytes += storage_.mini(k).size() * sizeof(LutCell);
  }
  stats.mini_lut_bytes = ByteSize(mini_bytes);
  stats.genome_length = storage_.text_size() - (contigs_.size() - 1);
  stats.num_contigs = contigs_.size();
  stats.prefix_lut_k = lut_k_;
  return stats;
}

std::string GenomeIndex::text_substr(u64 pos, u64 len) const {
  const u64 tsize = storage_.text_size();
  STARATLAS_CHECK(pos <= tsize);
  len = std::min(len, tsize - pos);
  if (!storage_.has_packed()) {
    return std::string(storage_.text().substr(pos, len));
  }
  return storage_.packed_view().decode(pos, len);
}

u64 GenomeIndex::fingerprint() const {
  // FNV-1a over the identity-bearing metadata plus sampled text bytes.
  // O(contigs): cheap enough to compute on demand wherever two collectors
  // from different processes (or different load paths) must prove they
  // were built against the same genome before merging.
  u64 h = 14695981039346656037ull;
  const auto mix_byte = [&h](u8 byte) {
    h ^= byte;
    h *= 1099511628211ull;
  };
  const auto mix_u64 = [&](u64 v) {
    for (int i = 0; i < 8; ++i) mix_byte(static_cast<u8>(v >> (8 * i)));
  };
  const auto mix_str = [&](std::string_view s) {
    mix_u64(s.size());
    for (char c : s) mix_byte(static_cast<u8>(c));
  };
  mix_str(species_);
  mix_u64(static_cast<u64>(release_));
  mix_byte(static_cast<u8>(type_));
  mix_u64(lut_k_);
  const u64 tsize = storage_.text_size();
  mix_u64(tsize);
  mix_u64(contigs_.size());
  for (const ContigMeta& contig : contigs_) {
    mix_str(contig.name);
    mix_byte(static_cast<u8>(contig.cls));
    mix_u64(contig.text_offset);
    mix_u64(contig.length);
  }
  // Sampled content guards against same-shaped but different genomes.
  // text_substr decodes to the original bytes, so the content mix is
  // encoding-independent.
  const usize sample = static_cast<usize>(std::min<u64>(tsize, 64));
  mix_str(text_substr(0, sample));
  mix_str(text_substr(tsize - sample, sample));
  // Text-encoding tag (0 = raw bytes, 1 = 2-bit packed): a packed-v4 and
  // a raw-v3 load of the same genome must *not* cross-merge through the
  // JunctionCollector fingerprint guard — their collectors hold
  // different index representations even though the genome is the same.
  // Deliberately not the raw version number, so v2 and v3 loads (both
  // raw) keep merging as before.
  mix_byte(storage_.has_packed() ? 1 : 0);
  return h;
}

// ---------------------------------------------------------------------------
// Serialization.

void GenomeIndex::save(std::ostream& out, u32 version) const {
  if (version == kVersionV2) {
    save_v2(out);
  } else if (version == kVersionV3 || version == kVersionV4) {
    save_sectioned(out, version);
  } else {
    throw InvalidArgument("unsupported index save version " +
                          std::to_string(version));
  }
}

void GenomeIndex::save_v2(std::ostream& out) const {
  BinaryWriter writer(out);
  writer.write_u32(kIndexMagic);
  writer.write_u32(kVersionV2);
  writer.write_string(species_);
  writer.write_u32(static_cast<u32>(release_));
  writer.write_u8(type_ == AssemblyType::kToplevel ? 0 : 1);
  writer.write_u64(contigs_.size());
  for (const auto& meta : contigs_) {
    writer.write_string(meta.name);
    writer.write_u8(static_cast<u8>(meta.cls));
    writer.write_u64(meta.text_offset);
    writer.write_u64(meta.length);
  }
  // A packed (v4-loaded) index decodes its text for the raw formats, so
  // v4 -> v2/v3 -> load round-trips land byte-identical.
  const std::string raw_backing =
      storage_.has_packed()
          ? storage_.packed_view().decode(0, storage_.text_size())
          : std::string();
  const std::string_view text =
      storage_.has_packed() ? std::string_view(raw_backing) : storage_.text();
  writer.write_u64(text.size());
  writer.write_blob(text.data(), text.size());
  const std::span<const u32> sa = storage_.sa();
  writer.write_u64(sa.size());
  writer.write_blob(sa.data(), sa.size() * sizeof(u32));
  writer.write_u32(lut_k_);
  // v2 on-disk layout predates the interleaved in-memory LUT: split back
  // into the lo array then the hi array so version 2 stays readable.
  const std::span<const LutCell> lut = storage_.lut();
  std::vector<u32> bound(lut.size());
  for (usize i = 0; i < lut.size(); ++i) bound[i] = lut[i][0];
  writer.write_pod_vector(bound);
  for (usize i = 0; i < lut.size(); ++i) bound[i] = lut[i][1];
  writer.write_pod_vector(bound);
}

std::string GenomeIndex::serialize_meta() const {
  std::ostringstream buf(std::ios::out | std::ios::binary);
  BinaryWriter writer(buf);
  writer.write_string(species_);
  writer.write_u32(static_cast<u32>(release_));
  writer.write_u8(type_ == AssemblyType::kToplevel ? 0 : 1);
  writer.write_u32(lut_k_);
  writer.write_u64(storage_.text_size());
  writer.write_u64(storage_.sa().size());
  writer.write_u64(storage_.lut().size());
  writer.write_u64(contigs_.size());
  for (const auto& meta : contigs_) {
    writer.write_string(meta.name);
    writer.write_u8(static_cast<u8>(meta.cls));
    writer.write_u64(meta.text_offset);
    writer.write_u64(meta.length);
  }
  return buf.str();
}

void GenomeIndex::parse_meta(const std::string& blob, u64& text_size,
                             u64& sa_size, u64& lut_cells) {
  std::istringstream in(blob, std::ios::in | std::ios::binary);
  BinaryReader reader(in);
  species_ = reader.read_string();
  release_ = static_cast<int>(reader.read_u32());
  type_ = reader.read_u8() == 0 ? AssemblyType::kToplevel
                                : AssemblyType::kPrimaryAssembly;
  lut_k_ = reader.read_u32();
  text_size = reader.read_u64();
  sa_size = reader.read_u64();
  lut_cells = reader.read_u64();
  const u64 num_contigs = reader.read_u64();
  if (num_contigs > text_size + 1) corrupt("contig count exceeds text");
  contigs_.clear();
  // A corrupt count larger than the blob can back runs out of bytes in
  // the read loop below (IoError -> ParseError); don't let it drive a
  // giant up-front allocation.
  contigs_.reserve(std::min<u64>(num_contigs, 1 << 20));
  for (u64 i = 0; i < num_contigs; ++i) {
    ContigMeta meta;
    meta.name = reader.read_string();
    meta.cls = static_cast<ContigClass>(reader.read_u8());
    meta.text_offset = reader.read_u64();
    meta.length = reader.read_u64();
    contigs_.push_back(std::move(meta));
  }
}

void GenomeIndex::save_sectioned(std::ostream& out, u32 version) const {
  const std::string meta = serialize_meta();
  const std::span<const u32> sa = storage_.sa();
  const std::span<const LutCell> lut = storage_.lut();
  const bool packed_out = version == kVersionV4;

  // Raw text payload: empty for v4 (the packed sections carry the text);
  // decoded on the fly when a packed index saves the raw v3 format.
  std::string raw_backing;
  std::string_view text;
  if (!packed_out) {
    if (storage_.has_packed()) {
      raw_backing = storage_.packed_view().decode(0, storage_.text_size());
      text = raw_backing;
    } else {
      text = storage_.text();
    }
  }
  // Packed payload for v4: borrowed from storage when already packed,
  // packed on the fly from a raw index otherwise.
  PackedText packed_tmp;
  PackedTextView pv;
  if (packed_out) {
    if (storage_.has_packed()) {
      pv = storage_.packed_view();
    } else {
      packed_tmp = PackedText::pack(storage_.text());
      pv = packed_tmp.view();
    }
  }

  struct Payload {
    u32 id;
    const void* data;
    u64 length;
  };
  std::vector<Payload> payloads = {
      {kSecMeta, meta.data(), meta.size()},
      {kSecText, text.data(), text.size()},
      {kSecSa, sa.data(), sa.size() * sizeof(u32)},
      {kSecLut, lut.data(), lut.size() * sizeof(LutCell)},
      {kSecMini1 + 0, storage_.mini(1).data(),
       storage_.mini(1).size() * sizeof(LutCell)},
      {kSecMini1 + 1, storage_.mini(2).data(),
       storage_.mini(2).size() * sizeof(LutCell)},
      {kSecMini1 + 2, storage_.mini(3).data(),
       storage_.mini(3).size() * sizeof(LutCell)},
      {kSecMini1 + 3, storage_.mini(4).data(),
       storage_.mini(4).size() * sizeof(LutCell)},
  };
  if (packed_out) {
    payloads.push_back(
        {kSecPackedCodes, pv.codes, packed_code_words(pv.size) * sizeof(u64)});
    payloads.push_back(
        {kSecPackedSlots, pv.page_slots, (pv.num_pages + 1) * sizeof(u32)});
    payloads.push_back({kSecPackedExc, pv.exc_blocks,
                        pv.num_exc_blocks * kPackedPageWords * sizeof(u64)});
  }

  BinaryWriter writer(out);
  writer.write_u32(kIndexMagic);
  writer.write_u32(version);
  writer.write_u64(payloads.size());
  u64 offset = kSectionAlign;  // header page
  for (Payload& p : payloads) {
    if (p.length == 0) p.data = "";  // keep fnv/write off null pointers
    writer.write_u32(p.id);
    writer.write_u32(0);  // reserved
    writer.write_u64(offset);
    writer.write_u64(p.length);
    writer.write_u64(fnv1a64(p.data, p.length));
    offset = align_up(offset + p.length, kSectionAlign);
  }
  for (const Payload& p : payloads) {
    writer.pad_to(kSectionAlign);
    writer.write_blob(p.data, p.length);
  }
}

GenomeIndex GenomeIndex::load(std::istream& in) {
  try {
    BinaryReader reader(in);
    if (reader.read_u32() != kIndexMagic) {
      throw ParseError("not a staratlas genome index (bad magic)");
    }
    const u32 version = reader.read_u32();
    if (version == kVersionV2) return load_v2(reader);
    if (version == kVersionV3 || version == kVersionV4) {
      return load_sectioned_stream(reader, version);
    }
    throw ParseError("unsupported index version " + std::to_string(version));
  } catch (const IoError& e) {
    // A corrupt length prefix or truncated file surfaces as a short read
    // deep in the reader; fold it into the one corruption exception type
    // callers are promised.
    throw ParseError(std::string("index truncated or unreadable: ") +
                     e.what());
  }
}

GenomeIndex GenomeIndex::load_v2(BinaryReader& reader) {
  GenomeIndex index;
  index.species_ = reader.read_string();
  index.release_ = static_cast<int>(reader.read_u32());
  index.type_ = reader.read_u8() == 0 ? AssemblyType::kToplevel
                                      : AssemblyType::kPrimaryAssembly;
  const u64 num_contigs = reader.read_u64();
  index.contigs_.reserve(std::min<u64>(num_contigs, 1 << 20));
  for (u64 i = 0; i < num_contigs; ++i) {
    ContigMeta meta;
    meta.name = reader.read_string();
    meta.cls = static_cast<ContigClass>(reader.read_u8());
    meta.text_offset = reader.read_u64();
    meta.length = reader.read_u64();
    index.contigs_.push_back(std::move(meta));
  }
  reader.read_string_into(index.storage_.text_owned);
  reader.read_pod_vector_into(index.storage_.sa_owned);
  index.lut_k_ = reader.read_u32();
  if (index.lut_k_ < 2 || index.lut_k_ > 14) corrupt("LUT k out of range");
  const std::vector<u32> lo = reader.read_pod_vector<u32>();
  const std::vector<u32> hi = reader.read_pod_vector<u32>();
  if (lo.size() != hi.size()) corrupt("LUT bound size mismatch");
  index.storage_.lut_owned.resize(lo.size());
  for (usize i = 0; i < lo.size(); ++i) {
    index.storage_.lut_owned[i] = {lo[i], hi[i]};
  }
  // v2 has no checksums: deep-validate before touching the data, then
  // rebuild the mini-LUTs (v2 never stored them).
  index.validate_loaded(/*deep=*/true);
  index.build_mini_luts();
  return index;
}

GenomeIndex GenomeIndex::load_sectioned_stream(BinaryReader& reader,
                                               u32 version) {
  const usize num_sections = sections_for_version(version);
  const u64 count = reader.read_u64();
  if (count != num_sections) corrupt("bad section count");
  std::vector<SectionInfo> sections(num_sections);
  u64 prev_end = 0;
  for (usize i = 0; i < num_sections; ++i) {
    SectionInfo& s = sections[i];
    s.id = reader.read_u32();
    reader.read_u32();  // reserved
    s.offset = reader.read_u64();
    s.length = reader.read_u64();
    s.checksum = reader.read_u64();
    if (s.id != i + 1) corrupt("unexpected section order");
    if (s.offset % kSectionAlign != 0 || s.offset < kSectionAlign) {
      corrupt("misaligned section offset");
    }
    if (s.offset < prev_end) corrupt("overlapping sections");
    if (s.length > (1ULL << 40)) corrupt("section length implausibly large");
    prev_end = s.offset + s.length;
  }

  GenomeIndex index;
  u64 text_size = 0;
  u64 sa_size = 0;
  u64 lut_cells = 0;
  std::string meta_blob;
  std::vector<u64> pcodes;
  std::vector<u32> pslots;
  std::vector<u64> pexc;
  for (usize i = 0; i < num_sections; ++i) {
    const SectionInfo& s = sections[i];
    STARATLAS_CHECK(s.offset >= reader.bytes_read());
    reader.skip(s.offset - reader.bytes_read());
    u64 checksum = 0;
    switch (s.id) {
      case kSecMeta: {
        meta_blob.resize(s.length);
        reader.read_blob(meta_blob.data(), s.length);
        checksum = fnv1a64(meta_blob.data(), s.length);
        // Verify before parsing: every later section trusts the sizes the
        // meta block declares.
        if (checksum != s.checksum) corrupt("checksum mismatch in section 1");
        index.parse_meta(meta_blob, text_size, sa_size, lut_cells);
        break;
      }
      case kSecText: {
        // v4 stores no raw text; the packed sections carry it.
        const u64 expected = version == kVersionV4 ? 0 : text_size;
        if (s.length != expected) corrupt("text section size mismatch");
        index.storage_.text_owned.resize(s.length);
        reader.read_blob(index.storage_.text_owned.data(), s.length);
        checksum = fnv1a64(index.storage_.text_owned.data(), s.length);
        break;
      }
      case kSecPackedCodes: {
        if (s.length != packed_codes_bytes(text_size)) {
          corrupt("packed code section size mismatch");
        }
        pcodes.resize(s.length / sizeof(u64));
        reader.read_blob(pcodes.data(), s.length);
        checksum = fnv1a64(pcodes.data(), s.length);
        break;
      }
      case kSecPackedSlots: {
        if (s.length != packed_slots_bytes(text_size)) {
          corrupt("packed slot section size mismatch");
        }
        pslots.resize(s.length / sizeof(u32));
        reader.read_blob(pslots.data(), s.length);
        checksum = fnv1a64(pslots.data(), s.length);
        break;
      }
      case kSecPackedExc: {
        if (s.length % (kPackedPageWords * sizeof(u64)) != 0) {
          corrupt("packed exception section size mismatch");
        }
        pexc.resize(s.length / sizeof(u64));
        reader.read_blob(pexc.data(), s.length);
        checksum = fnv1a64(pexc.data(), s.length);
        break;
      }
      case kSecSa: {
        if (s.length != sa_size * sizeof(u32)) {
          corrupt("SA section size mismatch");
        }
        index.storage_.sa_owned.resize(sa_size);
        reader.read_blob(index.storage_.sa_owned.data(), s.length);
        checksum = fnv1a64(index.storage_.sa_owned.data(), s.length);
        break;
      }
      case kSecLut: {
        if (s.length != lut_cells * sizeof(LutCell)) {
          corrupt("LUT section size mismatch");
        }
        index.storage_.lut_owned.resize(lut_cells);
        checksum = 0;
        reader.read_blob(index.storage_.lut_owned.data(), s.length);
        checksum = fnv1a64(index.storage_.lut_owned.data(), s.length);
        break;
      }
      default: {
        const u32 k = s.id - kSecMini1 + 1;
        const u64 cells = u64{1} << (2 * k);
        if (s.length != cells * sizeof(LutCell)) {
          corrupt("mini-LUT section size mismatch");
        }
        auto& mini = index.storage_.mini_owned[k - 1];
        mini.resize(cells);
        reader.read_blob(mini.data(), s.length);
        checksum = fnv1a64(mini.data(), s.length);
        break;
      }
    }
    if (checksum != s.checksum) {
      corrupt("checksum mismatch in section " + std::to_string(s.id));
    }
  }
  if (version == kVersionV4) {
    // from_raw re-validates array sizes and the slot table; surface its
    // rejections as the one corruption exception type loads promise.
    try {
      index.storage_.packed_owned = PackedText::from_raw(
          text_size, std::move(pcodes), std::move(pslots), std::move(pexc));
    } catch (const InvalidArgument& e) {
      corrupt(e.what());
    }
    index.storage_.packed_size = text_size;
    index.storage_.packed = true;
  }
  index.validate_loaded(/*deep=*/true);
  return index;
}

GenomeIndex GenomeIndex::load_sectioned_mmap(MappedFile file,
                                             const std::string& path) {
  const u8* base = file.data();
  const usize file_size = file.size();
  const auto read_at = [&](u64 offset, auto& out) {
    if (offset + sizeof(out) > file_size) corrupt("header past end of file");
    std::memcpy(&out, base + offset, sizeof(out));
  };
  u32 magic = 0;
  u32 version = 0;
  read_at(0, magic);
  read_at(4, version);
  if (magic != kIndexMagic) {
    throw ParseError("not a staratlas genome index (bad magic): " + path);
  }
  if (version != kVersionV3 && version != kVersionV4) {
    throw ParseError("index version " + std::to_string(version) +
                     " cannot be memory-mapped; use stream load");
  }
  const usize num_sections = sections_for_version(version);
  u64 count = 0;
  read_at(8, count);
  if (count != num_sections) corrupt("bad section count");

  GenomeIndex index;
  index.sections_.resize(num_sections);
  u64 prev_end = 0;
  for (usize i = 0; i < num_sections; ++i) {
    SectionInfo& s = index.sections_[i];
    const u64 entry = 16 + i * kSectionEntryBytes;
    read_at(entry, s.id);
    read_at(entry + 8, s.offset);
    read_at(entry + 16, s.length);
    read_at(entry + 24, s.checksum);
    if (s.id != i + 1) corrupt("unexpected section order");
    if (s.offset % kSectionAlign != 0 || s.offset < kSectionAlign) {
      corrupt("misaligned section offset");
    }
    if (s.offset < prev_end) corrupt("overlapping sections");
    if (s.length > file_size || s.offset > file_size - s.length) {
      corrupt("section past end of file");
    }
    prev_end = s.offset + s.length;
  }

  // The meta section is tiny; copy and parse it. Everything else becomes
  // a borrowed view — no bytes move, the kernel pages them in on demand.
  const SectionInfo& meta = index.sections_[0];
  const std::string meta_blob(reinterpret_cast<const char*>(base + meta.offset),
                              meta.length);
  if (fnv1a64(meta_blob.data(), meta_blob.size()) != meta.checksum) {
    corrupt("checksum mismatch in section 1");
  }
  u64 text_size = 0;
  u64 sa_size = 0;
  u64 lut_cells = 0;
  index.parse_meta(meta_blob, text_size, sa_size, lut_cells);

  const SectionInfo& text = index.sections_[1];
  const SectionInfo& sa = index.sections_[2];
  const SectionInfo& lut = index.sections_[3];
  const u64 expected_text = version == kVersionV4 ? 0 : text_size;
  if (text.length != expected_text) corrupt("text section size mismatch");
  if (sa.length != sa_size * sizeof(u32)) corrupt("SA section size mismatch");
  if (lut.length != lut_cells * sizeof(LutCell)) {
    corrupt("LUT section size mismatch");
  }
  index.storage_.file = std::move(file);
  const u8* data = index.storage_.file.data();
  index.storage_.mapped = true;
  index.storage_.text_view = std::string_view(
      reinterpret_cast<const char*>(data + text.offset), text.length);
  index.storage_.sa_view = std::span<const u32>(
      reinterpret_cast<const u32*>(data + sa.offset), sa_size);
  index.storage_.lut_view = std::span<const LutCell>(
      reinterpret_cast<const LutCell*>(data + lut.offset), lut_cells);
  for (u32 k = 1; k <= 4; ++k) {
    const SectionInfo& mini = index.sections_[3 + k];
    const u64 cells = u64{1} << (2 * k);
    if (mini.length != cells * sizeof(LutCell)) {
      corrupt("mini-LUT section size mismatch");
    }
    index.storage_.mini_view[k - 1] = std::span<const LutCell>(
        reinterpret_cast<const LutCell*>(data + mini.offset), cells);
  }
  if (version == kVersionV4) {
    const SectionInfo& pc = index.sections_[8];
    const SectionInfo& ps = index.sections_[9];
    const SectionInfo& pe = index.sections_[10];
    if (pc.length != packed_codes_bytes(text_size)) {
      corrupt("packed code section size mismatch");
    }
    if (ps.length != packed_slots_bytes(text_size)) {
      corrupt("packed slot section size mismatch");
    }
    if (pe.length % (kPackedPageWords * sizeof(u64)) != 0) {
      corrupt("packed exception section size mismatch");
    }
    index.storage_.packed_codes_view = std::span<const u64>(
        reinterpret_cast<const u64*>(data + pc.offset),
        pc.length / sizeof(u64));
    index.storage_.packed_slots_view = std::span<const u32>(
        reinterpret_cast<const u32*>(data + ps.offset),
        ps.length / sizeof(u32));
    index.storage_.packed_exc_view = std::span<const u64>(
        reinterpret_cast<const u64*>(data + pe.offset),
        pe.length / sizeof(u64));
    // The slot table is the one packed structure whose corruption turns
    // into out-of-bounds reads rather than wrong answers, so it is
    // validated even on the O(header) attach (it is ~1/1000 the text).
    validate_packed_slots(index.storage_.packed_slots_view,
                          packed_pages(text_size),
                          pe.length / (kPackedPageWords * sizeof(u64)));
    index.storage_.packed_size = text_size;
    index.storage_.packed = true;
  }
  // Structural checks only: a deep scan would fault in every page,
  // defeating the O(header) attach. verify_checksums() is the on-demand
  // integrity pass.
  index.validate_loaded(/*deep=*/false);
  return index;
}

void GenomeIndex::validate_loaded(bool deep) const {
  const u64 tsize = storage_.text_size();
  const std::span<const u32> sa = storage_.sa();
  const std::span<const LutCell> lut = storage_.lut();
  if (lut_k_ < 2 || lut_k_ > 14) corrupt("LUT k out of range");
  if (sa.size() != tsize) corrupt("SA/text size mismatch");
  if (lut.size() != (u64{1} << (2 * lut_k_))) corrupt("LUT size mismatch");
  if (contigs_.empty()) corrupt("no contigs");
  // Contig metadata must tile the text exactly: offsets form a dense
  // chain with one separator byte between contigs and no overhang. A
  // corrupt offset/length would otherwise pass load and fail deep inside
  // locate() during alignment.
  u64 expect = 0;
  for (usize i = 0; i < contigs_.size(); ++i) {
    const ContigMeta& meta = contigs_[i];
    if (meta.text_offset != expect) corrupt("contig offsets not contiguous");
    if (meta.length > tsize - meta.text_offset) {
      corrupt("contig extends past text");
    }
    expect = meta.text_offset + meta.length + 1;
  }
  if (expect != tsize + 1) corrupt("contig chain does not cover text");
  if (deep) {
    const u64 n = tsize;
    for (const u32 pos : sa) {
      if (pos >= n) corrupt("SA entry out of range");
    }
    const auto check_cells = [n](std::span<const LutCell> cells) {
      for (const LutCell& cell : cells) {
        if (cell[0] > cell[1] || cell[1] > n) corrupt("LUT cell out of range");
      }
    };
    check_cells(lut);
    for (u32 k = 1; k <= 4; ++k) {
      if (!storage_.mini(k).empty()) check_cells(storage_.mini(k));
    }
  }
}

void GenomeIndex::verify_checksums() const {
  if (!storage_.mapped) return;
  const u8* base = storage_.file.data();
  for (const SectionInfo& s : sections_) {
    if (fnv1a64(base + s.offset, s.length) != s.checksum) {
      corrupt("checksum mismatch in section " + std::to_string(s.id));
    }
  }
}

void GenomeIndex::save_file(const std::string& path, u32 version) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw IoError("cannot open index file for writing: " + path);
  save(out, version);
  if (!out) throw IoError("failed writing index file: " + path);
}

GenomeIndex GenomeIndex::load_file(const std::string& path,
                                   IndexLoadMode mode) {
  if (mode == IndexLoadMode::kAuto) {
    mode = IndexLoadMode::kStream;
    if (MappedFile::supported()) {
      std::ifstream probe(path, std::ios::binary);
      if (!probe) throw IoError("cannot open index file: " + path);
      u32 header[2] = {0, 0};
      probe.read(reinterpret_cast<char*>(header), sizeof header);
      if (probe.gcount() == sizeof header && header[0] == kIndexMagic &&
          (header[1] == kVersionV3 || header[1] == kVersionV4)) {
        mode = IndexLoadMode::kMmap;
      }
    }
  }
  if (mode == IndexLoadMode::kMmap) {
    return load_sectioned_mmap(MappedFile::map(path), path);
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open index file: " + path);
  return load(in);
}

}  // namespace staratlas
