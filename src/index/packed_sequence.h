// 2-bit packed nucleotide storage with an N-position overlay.
//
// Used by the SRA container codec and by the index footprint accounting
// (STAR's real index stores the genome 1 byte/base; packed form models the
// compressed on-disk/in-object-store representation).
#pragma once

#include <array>
#include <string>
#include <vector>

#include "common/types.h"
#include "common/units.h"

namespace staratlas {

class PackedSequence {
 public:
  PackedSequence() = default;

  /// Packs an ACGTN string. Throws InvalidArgument on other characters.
  static PackedSequence pack(std::string_view seq);

  /// Unpacks back to an ACGTN string.
  std::string unpack() const;

  /// Hot-path form: unpacks into `out` (resized, capacity reused), so the
  /// streaming SRA decoder's per-record unpack is allocation-free once
  /// warm.
  void unpack_into(std::string& out) const;

  u64 size() const { return length_; }
  bool empty() const { return length_ == 0; }

  /// Residue at position i (ACGT or N). Random access: pays a binary
  /// search over the N overlay per call — for sequential walks use a
  /// Cursor, which merges the overlay in O(1) amortized per base.
  char at(u64 i) const;

  /// Sequential accessor. The old decoder loops called at() per base,
  /// which re-ran the overlay binary search length times; the cursor
  /// positions itself in the sorted overlay once and then just compares
  /// the front entry as it advances.
  class Cursor {
   public:
    explicit Cursor(const PackedSequence& seq, u64 start = 0);
    bool done() const { return pos_ >= seq_->length_; }
    u64 position() const { return pos_; }
    /// Residue at position(), then advances. Checks !done().
    char next();

   private:
    const PackedSequence* seq_;
    u64 pos_;
    usize n_idx_;  ///< first overlay entry >= pos_
  };
  Cursor cursor(u64 start = 0) const { return Cursor(*this, start); }

  /// Single-pass decode over raw codec fields, overlay merged on the fly
  /// — shared by unpack_into and the SRA container's record decoder.
  /// Caller is responsible for validating the field shapes first.
  static void unpack_raw(u64 length, const u8* codes, const u64* n_positions,
                         usize num_n, std::string& out);

  /// Bytes used by the packed representation (codes + N overlay).
  ByteSize packed_bytes() const;

  /// Raw access for serialization.
  const std::vector<u8>& codes() const { return codes_; }
  const std::vector<u64>& n_positions() const { return n_positions_; }
  static PackedSequence from_raw(u64 length, std::vector<u8> codes,
                                 std::vector<u64> n_positions);

 private:
  u64 length_ = 0;
  std::vector<u8> codes_;         ///< 4 bases per byte
  std::vector<u64> n_positions_;  ///< sorted positions stored as 'A' in codes_
};

namespace detail {
inline constexpr std::array<u8, 256> kBaseCodes = [] {
  std::array<u8, 256> table{};
  table.fill(0xff);
  table['A'] = 0;
  table['C'] = 1;
  table['G'] = 2;
  table['T'] = 3;
  return table;
}();
}  // namespace detail

/// 2-bit code for A/C/G/T (0..3); 0xff for anything else. Inline: the MMP
/// prefix-LUT lookup calls this per leading base of every seed walk.
inline u8 base_code(char base) {
  return detail::kBaseCodes[static_cast<u8>(base)];
}
/// Inverse of base_code for 0..3.
char code_base(u8 code);
/// Reverse complement of an ACGTN string (N maps to N).
std::string reverse_complement(std::string_view seq);
/// Hot-path form: writes into `out` (resized, capacity reused), so a
/// per-thread buffer makes repeated calls allocation-free.
void reverse_complement(std::string_view seq, std::string& out);

}  // namespace staratlas
