// 2-bit packed nucleotide storage with an N-position overlay.
//
// Used by the SRA container codec and by the index footprint accounting
// (STAR's real index stores the genome 1 byte/base; packed form models the
// compressed on-disk/in-object-store representation).
#pragma once

#include <array>
#include <string>
#include <vector>

#include "common/types.h"
#include "common/units.h"

namespace staratlas {

class PackedSequence {
 public:
  PackedSequence() = default;

  /// Packs an ACGTN string. Throws InvalidArgument on other characters.
  static PackedSequence pack(std::string_view seq);

  /// Unpacks back to an ACGTN string.
  std::string unpack() const;

  /// Hot-path form: unpacks into `out` (resized, capacity reused), so the
  /// streaming SRA decoder's per-record unpack is allocation-free once
  /// warm.
  void unpack_into(std::string& out) const;

  u64 size() const { return length_; }
  bool empty() const { return length_ == 0; }

  /// Residue at position i (ACGT or N).
  char at(u64 i) const;

  /// Bytes used by the packed representation (codes + N overlay).
  ByteSize packed_bytes() const;

  /// Raw access for serialization.
  const std::vector<u8>& codes() const { return codes_; }
  const std::vector<u64>& n_positions() const { return n_positions_; }
  static PackedSequence from_raw(u64 length, std::vector<u8> codes,
                                 std::vector<u64> n_positions);

 private:
  u64 length_ = 0;
  std::vector<u8> codes_;         ///< 4 bases per byte
  std::vector<u64> n_positions_;  ///< sorted positions stored as 'A' in codes_
};

namespace detail {
inline constexpr std::array<u8, 256> kBaseCodes = [] {
  std::array<u8, 256> table{};
  table.fill(0xff);
  table['A'] = 0;
  table['C'] = 1;
  table['G'] = 2;
  table['T'] = 3;
  return table;
}();
}  // namespace detail

/// 2-bit code for A/C/G/T (0..3); 0xff for anything else. Inline: the MMP
/// prefix-LUT lookup calls this per leading base of every seed walk.
inline u8 base_code(char base) {
  return detail::kBaseCodes[static_cast<u8>(base)];
}
/// Inverse of base_code for 0..3.
char code_base(u8 code);
/// Reverse complement of an ACGTN string (N maps to N).
std::string reverse_complement(std::string_view seq);
/// Hot-path form: writes into `out` (resized, capacity reused), so a
/// per-thread buffer makes repeated calls allocation-free.
void reverse_complement(std::string_view seq, std::string& out);

}  // namespace staratlas
