// IndexStorage: the backing memory of a GenomeIndex.
//
// Two modes. *Owned*: the index owns its containers — the build path and
// the v2/v3 stream loaders fill these. *Mapped*: the big sections (text,
// suffix array, LUT, mini-LUTs) are std::span views into an mmap'd v3
// index file, so "loading" is O(header) and the kernel pages sections in
// on first touch — the in-process analog of attaching to STAR's
// `--genomeLoad LoadAndKeep` shared-memory segment. Accessors derive the
// view per call from whichever mode is active, which keeps moved-from
// small-string/vector pitfalls out of the picture (mmap pointers and
// vector heap buffers are stable across moves).
#pragma once

#include <array>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace staratlas {

/// One prefix-LUT cell: [lo, hi) suffix-array rows.
using LutCell = std::array<u32, 2>;

/// RAII read-only file mapping. Move-only; unmaps on destruction.
class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile();
  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  /// Maps `path` read-only. Throws IoError on open/map failure,
  /// ParseError on an empty file.
  static MappedFile map(const std::string& path);

  /// False when the platform has no mmap; callers fall back to streams.
  static bool supported();

  const u8* data() const { return data_; }
  usize size() const { return size_; }
  bool active() const { return data_ != nullptr; }

 private:
  u8* data_ = nullptr;
  usize size_ = 0;
};

struct IndexStorage {
  // Owned mode (build path and stream loads). Empty when mapped.
  std::string text_owned;
  std::vector<u32> sa_owned;
  std::vector<LutCell> lut_owned;
  std::array<std::vector<LutCell>, 4> mini_owned;

  // Mapped mode: the mapping plus borrowed section views into it.
  MappedFile file;
  std::string_view text_view;
  std::span<const u32> sa_view;
  std::span<const LutCell> lut_view;
  std::array<std::span<const LutCell>, 4> mini_view;
  bool mapped = false;

  std::string_view text() const {
    return mapped ? text_view : std::string_view(text_owned);
  }
  std::span<const u32> sa() const {
    return mapped ? sa_view : std::span<const u32>(sa_owned);
  }
  std::span<const LutCell> lut() const {
    return mapped ? lut_view : std::span<const LutCell>(lut_owned);
  }
  /// Cascade LUT for prefix length `k` in 1..4.
  std::span<const LutCell> mini(u32 k) const {
    return mapped ? mini_view[k - 1]
                  : std::span<const LutCell>(mini_owned[k - 1]);
  }
};

}  // namespace staratlas
