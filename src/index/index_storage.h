// IndexStorage: the backing memory of a GenomeIndex.
//
// Two modes. *Owned*: the index owns its containers — the build path and
// the v2/v3 stream loaders fill these. *Mapped*: the big sections (text,
// suffix array, LUT, mini-LUTs) are std::span views into an mmap'd v3
// index file, so "loading" is O(header) and the kernel pages sections in
// on first touch — the in-process analog of attaching to STAR's
// `--genomeLoad LoadAndKeep` shared-memory segment. Accessors derive the
// view per call from whichever mode is active, which keeps moved-from
// small-string/vector pitfalls out of the picture (mmap pointers and
// vector heap buffers are stable across moves).
#pragma once

#include <array>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"
#include "index/packed_text.h"

namespace staratlas {

/// One prefix-LUT cell: [lo, hi) suffix-array rows.
using LutCell = std::array<u32, 2>;

/// RAII read-only file mapping. Move-only; unmaps on destruction.
class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile();
  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  /// Maps `path` read-only. Throws IoError on open/map failure,
  /// ParseError on an empty file.
  static MappedFile map(const std::string& path);

  /// False when the platform has no mmap; callers fall back to streams.
  static bool supported();

  const u8* data() const { return data_; }
  usize size() const { return size_; }
  bool active() const { return data_ != nullptr; }

 private:
  u8* data_ = nullptr;
  usize size_ = 0;
};

struct IndexStorage {
  // Owned mode (build path and stream loads). Empty when mapped.
  std::string text_owned;
  std::vector<u32> sa_owned;
  std::vector<LutCell> lut_owned;
  std::array<std::vector<LutCell>, 4> mini_owned;

  // Packed text (v4 loads). The raw `text` stays empty in this mode —
  // packedness is a property of how the index was loaded, and the whole
  // point is not paying for the 1 byte/base copy. Owned for stream
  // loads, spans into `file` for mmap attaches.
  PackedText packed_owned;
  std::span<const u64> packed_codes_view;
  std::span<const u32> packed_slots_view;
  std::span<const u64> packed_exc_view;
  u64 packed_size = 0;
  bool packed = false;

  // Mapped mode: the mapping plus borrowed section views into it.
  MappedFile file;
  std::string_view text_view;
  std::span<const u32> sa_view;
  std::span<const LutCell> lut_view;
  std::array<std::span<const LutCell>, 4> mini_view;
  bool mapped = false;

  std::string_view text() const {
    return mapped ? text_view : std::string_view(text_owned);
  }
  bool has_packed() const { return packed; }
  /// Genome text length regardless of encoding.
  u64 text_size() const { return packed ? packed_size : text().size(); }
  /// View over the packed text; inactive (null codes) when unpacked.
  PackedTextView packed_view() const {
    if (!packed) return PackedTextView{};
    if (!mapped) return packed_owned.view();
    PackedTextView v;
    v.codes = packed_codes_view.data();
    v.page_slots = packed_slots_view.data();
    v.exc_blocks = packed_exc_view.data();
    v.size = packed_size;
    v.num_pages = packed_slots_view.empty() ? 0 : packed_slots_view.size() - 1;
    v.num_exc_blocks = packed_exc_view.size() / kPackedPageWords;
    return v;
  }
  std::span<const u32> sa() const {
    return mapped ? sa_view : std::span<const u32>(sa_owned);
  }
  std::span<const LutCell> lut() const {
    return mapped ? lut_view : std::span<const LutCell>(lut_owned);
  }
  /// Cascade LUT for prefix length `k` in 1..4.
  std::span<const LutCell> mini(u32 k) const {
    return mapped ? mini_view[k - 1]
                  : std::span<const LutCell>(mini_owned[k - 1]);
  }
};

}  // namespace staratlas
