#include "index/packed_sequence.h"

#include <algorithm>

#include "common/error.h"

namespace staratlas {

u8 base_code(char base) {
  switch (base) {
    case 'A': return 0;
    case 'C': return 1;
    case 'G': return 2;
    case 'T': return 3;
    default: return 0xff;
  }
}

char code_base(u8 code) {
  static constexpr char kBases[] = "ACGT";
  STARATLAS_CHECK(code < 4);
  return kBases[code];
}

std::string reverse_complement(std::string_view seq) {
  std::string out(seq.size(), 'N');
  for (usize i = 0; i < seq.size(); ++i) {
    char c;
    switch (seq[seq.size() - 1 - i]) {
      case 'A': c = 'T'; break;
      case 'C': c = 'G'; break;
      case 'G': c = 'C'; break;
      case 'T': c = 'A'; break;
      case 'N': c = 'N'; break;
      default:
        throw InvalidArgument("reverse_complement: invalid residue");
    }
    out[i] = c;
  }
  return out;
}

PackedSequence PackedSequence::pack(std::string_view seq) {
  PackedSequence packed;
  packed.length_ = seq.size();
  packed.codes_.assign((seq.size() + 3) / 4, 0);
  for (usize i = 0; i < seq.size(); ++i) {
    u8 code = base_code(seq[i]);
    if (code == 0xff) {
      if (seq[i] != 'N') {
        throw InvalidArgument(std::string("cannot pack residue '") + seq[i] + "'");
      }
      packed.n_positions_.push_back(i);
      code = 0;  // store N as A; overlay restores it
    }
    packed.codes_[i / 4] |= static_cast<u8>(code << ((i % 4) * 2));
  }
  return packed;
}

std::string PackedSequence::unpack() const {
  std::string seq(length_, 'A');
  for (u64 i = 0; i < length_; ++i) {
    const u8 byte = codes_[i / 4];
    seq[i] = code_base((byte >> ((i % 4) * 2)) & 0x3);
  }
  for (u64 pos : n_positions_) seq[pos] = 'N';
  return seq;
}

char PackedSequence::at(u64 i) const {
  STARATLAS_CHECK(i < length_);
  if (std::binary_search(n_positions_.begin(), n_positions_.end(), i)) {
    return 'N';
  }
  const u8 byte = codes_[i / 4];
  return code_base((byte >> ((i % 4) * 2)) & 0x3);
}

ByteSize PackedSequence::packed_bytes() const {
  return ByteSize(codes_.size() + n_positions_.size() * sizeof(u64) +
                  sizeof(u64));
}

PackedSequence PackedSequence::from_raw(u64 length, std::vector<u8> codes,
                                        std::vector<u64> n_positions) {
  STARATLAS_CHECK(codes.size() == (length + 3) / 4);
  STARATLAS_CHECK(std::is_sorted(n_positions.begin(), n_positions.end()));
  PackedSequence packed;
  packed.length_ = length;
  packed.codes_ = std::move(codes);
  packed.n_positions_ = std::move(n_positions);
  return packed;
}

}  // namespace staratlas
