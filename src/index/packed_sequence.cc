#include "index/packed_sequence.h"

#include <algorithm>
#include <array>

#include "common/error.h"

namespace staratlas {

char code_base(u8 code) {
  static constexpr char kBases[] = "ACGT";
  STARATLAS_CHECK(code < 4);
  return kBases[code];
}

std::string reverse_complement(std::string_view seq) {
  std::string out;
  reverse_complement(seq, out);
  return out;
}

void reverse_complement(std::string_view seq, std::string& out) {
  // Table-driven complement (zero byte = invalid residue): one load per
  // base instead of a branch ladder, which matters because the aligner
  // reverse-complements every read.
  static constexpr std::array<char, 256> kComplement = [] {
    std::array<char, 256> table{};
    table['A'] = 'T';
    table['C'] = 'G';
    table['G'] = 'C';
    table['T'] = 'A';
    table['N'] = 'N';
    return table;
  }();
  out.resize(seq.size());
  for (usize i = 0; i < seq.size(); ++i) {
    const char c = kComplement[static_cast<u8>(seq[seq.size() - 1 - i])];
    if (c == 0) throw InvalidArgument("reverse_complement: invalid residue");
    out[i] = c;
  }
}

PackedSequence PackedSequence::pack(std::string_view seq) {
  PackedSequence packed;
  packed.length_ = seq.size();
  packed.codes_.assign((seq.size() + 3) / 4, 0);
  for (usize i = 0; i < seq.size(); ++i) {
    u8 code = base_code(seq[i]);
    if (code == 0xff) {
      if (seq[i] != 'N') {
        throw InvalidArgument(std::string("cannot pack residue '") + seq[i] + "'");
      }
      packed.n_positions_.push_back(i);
      code = 0;  // store N as A; overlay restores it
    }
    packed.codes_[i / 4] |= static_cast<u8>(code << ((i % 4) * 2));
  }
  return packed;
}

std::string PackedSequence::unpack() const {
  std::string seq;
  unpack_into(seq);
  return seq;
}

void PackedSequence::unpack_into(std::string& out) const {
  unpack_raw(length_, codes_.data(), n_positions_.data(), n_positions_.size(),
             out);
}

void PackedSequence::unpack_raw(u64 length, const u8* codes,
                                const u64* n_positions, usize num_n,
                                std::string& out) {
  // Single pass with the sorted overlay merged in as it goes. The old
  // decode patched N's in a second pass over the finished string, which
  // re-touched a cold cache line per overlay entry; per-base at() calls
  // were worse still (a binary search per residue).
  static constexpr char kBases[] = "ACGT";
  out.resize(length);
  usize n_idx = 0;
  for (u64 i = 0; i < length; ++i) {
    if (n_idx < num_n && n_positions[n_idx] == i) {
      out[i] = 'N';
      ++n_idx;
      continue;
    }
    out[i] = kBases[(codes[i >> 2] >> ((i & 3) * 2)) & 0x3];
  }
}

char PackedSequence::at(u64 i) const {
  STARATLAS_CHECK(i < length_);
  if (std::binary_search(n_positions_.begin(), n_positions_.end(), i)) {
    return 'N';
  }
  const u8 byte = codes_[i / 4];
  return code_base((byte >> ((i % 4) * 2)) & 0x3);
}

PackedSequence::Cursor::Cursor(const PackedSequence& seq, u64 start)
    : seq_(&seq), pos_(start) {
  n_idx_ = static_cast<usize>(
      std::lower_bound(seq.n_positions_.begin(), seq.n_positions_.end(),
                       start) -
      seq.n_positions_.begin());
}

char PackedSequence::Cursor::next() {
  STARATLAS_CHECK(pos_ < seq_->length_);
  const u64 i = pos_++;
  if (n_idx_ < seq_->n_positions_.size() &&
      seq_->n_positions_[n_idx_] == i) {
    ++n_idx_;
    return 'N';
  }
  static constexpr char kBases[] = "ACGT";
  return kBases[(seq_->codes_[i >> 2] >> ((i & 3) * 2)) & 0x3];
}

ByteSize PackedSequence::packed_bytes() const {
  return ByteSize(codes_.size() + n_positions_.size() * sizeof(u64) +
                  sizeof(u64));
}

PackedSequence PackedSequence::from_raw(u64 length, std::vector<u8> codes,
                                        std::vector<u64> n_positions) {
  STARATLAS_CHECK(codes.size() == (length + 3) / 4);
  STARATLAS_CHECK(std::is_sorted(n_positions.begin(), n_positions.end()));
  // A corrupt overlay must not drive unpack() out of bounds.
  STARATLAS_CHECK(n_positions.empty() || n_positions.back() < length);
  PackedSequence packed;
  packed.length_ = length;
  packed.codes_ = std::move(codes);
  packed.n_positions_ = std::move(n_positions);
  return packed;
}

}  // namespace staratlas
