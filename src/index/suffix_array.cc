#include "index/suffix_array.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <numeric>

#include "common/error.h"
#include "common/thread_pool.h"

namespace staratlas {

namespace {

// SA-IS over an integer string `s` that ends with a unique smallest
// sentinel (value 0, occurring exactly once, at the end). Writes the full
// suffix array (including the sentinel suffix at sa[0]) into `sa`.
void sais(const std::vector<u32>& s, std::vector<u32>& sa, u32 alphabet) {
  const usize n = s.size();
  sa.assign(n, ~u32{0});
  if (n == 1) {
    sa[0] = 0;
    return;
  }

  // Classify suffixes: true = S-type, false = L-type.
  std::vector<bool> is_s(n);
  is_s[n - 1] = true;
  for (usize i = n - 1; i-- > 0;) {
    is_s[i] = s[i] < s[i + 1] || (s[i] == s[i + 1] && is_s[i + 1]);
  }
  auto is_lms = [&](usize i) { return i > 0 && is_s[i] && !is_s[i - 1]; };

  // Bucket boundaries per symbol.
  std::vector<u32> counts(alphabet, 0);
  for (u32 c : s) ++counts[c];
  std::vector<u32> heads(alphabet), tails(alphabet);
  auto reset_buckets = [&] {
    u32 acc = 0;
    for (u32 c = 0; c < alphabet; ++c) {
      heads[c] = acc;
      acc += counts[c];
      tails[c] = acc;  // one past the end
    }
  };

  // Induced sort given LMS suffixes already placed (from bucket tails).
  auto induce = [&] {
    reset_buckets();
    // L-types, left to right from bucket heads.
    for (usize i = 0; i < n; ++i) {
      const u32 j = sa[i];
      if (j == ~u32{0} || j == 0) continue;
      if (!is_s[j - 1]) sa[heads[s[j - 1]]++] = j - 1;
    }
    reset_buckets();
    // S-types, right to left from bucket tails.
    for (usize i = n; i-- > 0;) {
      const u32 j = sa[i];
      if (j == ~u32{0} || j == 0) continue;
      if (is_s[j - 1]) sa[--tails[s[j - 1]]] = j - 1;
    }
  };

  // Step 1: place LMS suffixes in text order at bucket tails, induce.
  std::vector<u32> lms_positions;
  for (usize i = 1; i < n; ++i) {
    if (is_lms(i)) lms_positions.push_back(static_cast<u32>(i));
  }
  reset_buckets();
  sa.assign(n, ~u32{0});
  for (u32 p : lms_positions) sa[--tails[s[p]]] = p;
  induce();

  // Step 2: name LMS substrings in their induced order.
  std::vector<u32> lms_order;
  lms_order.reserve(lms_positions.size());
  for (usize i = 0; i < n; ++i) {
    const u32 j = sa[i];
    if (j != ~u32{0} && is_lms(j)) lms_order.push_back(j);
  }
  std::vector<u32> name_of(n, 0);
  u32 names = 0;
  if (!lms_order.empty()) {
    name_of[lms_order[0]] = 0;
    for (usize k = 1; k < lms_order.size(); ++k) {
      const u32 a = lms_order[k - 1];
      const u32 b = lms_order[k];
      // Compare LMS substrings [a .. next LMS after a] and likewise for b.
      bool equal = true;
      for (usize d = 0;; ++d) {
        const bool a_lms = d > 0 && is_lms(a + d);
        const bool b_lms = d > 0 && is_lms(b + d);
        if (s[a + d] != s[b + d] || is_s[a + d] != is_s[b + d]) {
          equal = false;
          break;
        }
        if (a_lms || b_lms) {
          equal = a_lms && b_lms;
          break;
        }
      }
      if (!equal) ++names;
      name_of[b] = names;
    }
    ++names;  // count, not max index
  }

  // Step 3: order the LMS suffixes.
  std::vector<u32> lms_sorted;
  if (names == lms_positions.size()) {
    // All names unique: induced order is already the LMS suffix order.
    lms_sorted = lms_order;
  } else {
    // Recurse on the reduced string of LMS names (in text order).
    std::vector<u32> reduced(lms_positions.size());
    for (usize k = 0; k < lms_positions.size(); ++k) {
      reduced[k] = name_of[lms_positions[k]];
    }
    // The last LMS is the sentinel position, whose name is the unique
    // minimum, so `reduced` itself ends with its smallest symbol — but the
    // recursion requires value 0 unique at the end; shift others if needed.
    // name_of assigns 0 to the induced-first LMS which is always the
    // sentinel (it sorts first), so reduced ends with 0 and no other 0
    // exists unless duplicates — in that case sentinel shares name 0 only
    // with equal substrings, impossible since sentinel is unique. Safe.
    std::vector<u32> sub_sa;
    sais(reduced, sub_sa, names);
    lms_sorted.resize(lms_positions.size());
    for (usize k = 0; k < sub_sa.size(); ++k) {
      lms_sorted[k] = lms_positions[sub_sa[k]];
    }
  }

  // Step 4: final induced sort from correctly ordered LMS suffixes.
  sa.assign(n, ~u32{0});
  reset_buckets();
  for (usize k = lms_sorted.size(); k-- > 0;) {
    const u32 p = lms_sorted[k];
    sa[--tails[s[p]]] = p;
  }
  induce();
}

}  // namespace

std::vector<u32> build_suffix_array(std::string_view text) {
  const usize n = text.size();
  if (n == 0) return {};
  STARATLAS_CHECK(n < (~u32{0}) - 2);
  // Shift bytes by +1 so 0 is free for the sentinel.
  std::vector<u32> s(n + 1);
  for (usize i = 0; i < n; ++i) {
    s[i] = static_cast<u32>(static_cast<unsigned char>(text[i])) + 1;
  }
  s[n] = 0;
  std::vector<u32> sa;
  sais(s, sa, 257);
  // Drop the sentinel suffix (always sa[0]).
  return std::vector<u32>(sa.begin() + 1, sa.end());
}

namespace {

// Bucket key for the parallel builder: the leading two bytes of the
// suffix, with "no second byte" (the length-1 suffix) ordered before
// every real second byte — exactly how lexicographic order ranks a
// 1-char suffix against longer suffixes sharing its first byte.
constexpr usize kPrefixBuckets = 256 * 257;

inline u32 suffix_bucket(std::string_view text, usize i) {
  const u32 b0 = static_cast<unsigned char>(text[i]);
  const u32 b1 = i + 1 < text.size()
                     ? static_cast<unsigned char>(text[i + 1]) + 1
                     : 0;
  return b0 * 257 + b1;
}

}  // namespace

std::vector<u32> build_suffix_array_parallel(std::string_view text,
                                             ThreadPool& pool) {
  const usize n = text.size();
  // Below this size the bucket bookkeeping costs more than SA-IS.
  constexpr usize kParallelThreshold = 1 << 15;
  if (n < kParallelThreshold || pool.size() <= 1) {
    return build_suffix_array(text);
  }
  STARATLAS_CHECK(n < (~u32{0}) - 2);

  // Pass 1: parallel bucket counting (block-local histograms summed under
  // a mutex; sums commute, so the result is schedule-independent).
  std::vector<u32> counts(kPrefixBuckets, 0);
  std::mutex merge_mu;
  parallel_for_blocks(pool, n, [&](usize begin, usize end) {
    std::vector<u32> local(kPrefixBuckets, 0);
    for (usize i = begin; i < end; ++i) ++local[suffix_bucket(text, i)];
    std::lock_guard lock(merge_mu);
    for (usize b = 0; b < kPrefixBuckets; ++b) counts[b] += local[b];
  });

  std::vector<u32> bucket_start(kPrefixBuckets + 1, 0);
  for (usize b = 0; b < kPrefixBuckets; ++b) {
    bucket_start[b + 1] = bucket_start[b] + counts[b];
  }

  // Pass 2: parallel scatter. Within-bucket arrival order depends on
  // scheduling, but the per-bucket sort below imposes a total order on
  // distinct suffixes, so the final array is deterministic anyway.
  std::vector<u32> sa(n);
  std::vector<std::atomic<u32>> cursor(kPrefixBuckets);
  for (usize b = 0; b < kPrefixBuckets; ++b) {
    cursor[b].store(bucket_start[b], std::memory_order_relaxed);
  }
  parallel_for_blocks(pool, n, [&](usize begin, usize end) {
    for (usize i = begin; i < end; ++i) {
      const u32 slot = cursor[suffix_bucket(text, i)].fetch_add(
          1, std::memory_order_relaxed);
      sa[slot] = static_cast<u32>(i);
    }
  });

  // Pass 3: sort each multi-element bucket, biggest first so the long
  // poles start early. Every multi-element bucket holds suffixes of
  // length >= 2 sharing their first two bytes; compare from offset 2.
  std::vector<u32> heavy;
  for (usize b = 0; b < kPrefixBuckets; ++b) {
    if (counts[b] > 1) heavy.push_back(static_cast<u32>(b));
  }
  std::sort(heavy.begin(), heavy.end(),
            [&](u32 a, u32 b) { return counts[a] > counts[b]; });
  std::atomic<usize> next{0};
  const auto sort_worker = [&] {
    for (;;) {
      const usize h = next.fetch_add(1, std::memory_order_relaxed);
      if (h >= heavy.size()) return;
      const u32 b = heavy[h];
      const auto first = sa.begin() + bucket_start[b];
      const auto last = sa.begin() + bucket_start[b + 1];
      std::sort(first, last, [&](u32 x, u32 y) {
        return text.substr(x + 2) < text.substr(y + 2);
      });
    }
  };
  std::vector<std::future<void>> workers;
  workers.reserve(pool.size());
  for (usize t = 0; t < pool.size(); ++t) {
    workers.push_back(pool.submit(sort_worker));
  }
  for (auto& w : workers) w.get();
  return sa;
}

std::vector<u32> build_suffix_array_doubling(std::string_view text) {
  const usize n = text.size();
  std::vector<u32> sa(n);
  std::iota(sa.begin(), sa.end(), 0);
  if (n == 0) return sa;

  std::vector<i64> rank(n), next_rank(n);
  for (usize i = 0; i < n; ++i) {
    rank[i] = static_cast<unsigned char>(text[i]);
  }
  for (usize k = 1;; k *= 2) {
    auto key = [&](u32 i) {
      const i64 second = (i + k < n) ? rank[i + k] : -1;
      return std::pair<i64, i64>(rank[i], second);
    };
    std::sort(sa.begin(), sa.end(),
              [&](u32 a, u32 b) { return key(a) < key(b); });
    next_rank[sa[0]] = 0;
    for (usize i = 1; i < n; ++i) {
      next_rank[sa[i]] =
          next_rank[sa[i - 1]] + (key(sa[i - 1]) < key(sa[i]) ? 1 : 0);
    }
    rank = next_rank;
    if (rank[sa[n - 1]] == static_cast<i64>(n) - 1) break;
  }
  return sa;
}

bool is_valid_suffix_array(std::string_view text, std::span<const u32> sa) {
  const usize n = text.size();
  if (sa.size() != n) return false;
  // rank = inverse permutation; filling it also validates sa is a
  // permutation of [0, n).
  std::vector<u32> rank(n, ~u32{0});
  for (usize row = 0; row < n; ++row) {
    const u32 p = sa[row];
    if (p >= n || rank[p] != ~u32{0}) return false;
    rank[p] = static_cast<u32>(row);
  }
  // Adjacent suffixes a < b iff (text[a], rest-of-a) < (text[b], rest-of-b),
  // and the rests are themselves suffixes whose order the rank array
  // already encodes — no substring materialization, O(1) per pair.
  for (usize i = 1; i < n; ++i) {
    const u32 a = sa[i - 1];
    const u32 b = sa[i];
    const auto ca = static_cast<unsigned char>(text[a]);
    const auto cb = static_cast<unsigned char>(text[b]);
    if (ca != cb) {
      if (ca > cb) return false;
      continue;
    }
    if (a + 1 == n) continue;          // empty rest sorts first: a < b holds
    if (b + 1 == n) return false;      // b's rest empty but a's is not
    if (rank[a + 1] >= rank[b + 1]) return false;
  }
  return true;
}

}  // namespace staratlas
