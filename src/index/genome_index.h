// GenomeIndex: the precomputed data structure the aligner loads into
// memory, mirroring STAR's genome index (suffix array + prefix lookup).
//
// The index concatenates all contigs with a '#' separator byte between
// them, so no suffix-array match can span a contig boundary, then builds a
// suffix array and a k-mer prefix lookup table that jump-starts Maximal
// Mappable Prefix searches. Construction is thread-pool parallel when
// IndexParams::num_threads > 1 (bit-identical to the sequential SA-IS
// reference path). On-disk formats: v2 (length-prefixed stream, mini-LUTs
// recomputed on load), v3 (page-aligned checksummed sections, mini-LUTs
// serialized, mmap-able for O(header) zero-copy loads via IndexStorage),
// and v4 (v3 layout, but the genome text ships 2-bit packed with a paged
// exception overlay — see index/packed_text.h — so the resident text is
// ~4x smaller and every hot compare runs on packed words; searches and
// stats stay bit-identical to a raw-text load of the same genome).
#pragma once

#include <array>
#include <iosfwd>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"
#include "common/units.h"
#include "genome/model.h"
#include "index/index_storage.h"

namespace staratlas {

class BinaryReader;
class ThreadPool;

struct IndexParams {
  /// Prefix lookup k-mer length; 0 = auto (scales with genome size).
  u32 prefix_lut_k = 0;
  /// Build threads; 1 = the sequential SA-IS reference path, 0 = one per
  /// hardware thread, >1 = prefix-bucketed parallel build (bit-identical
  /// output, property-tested against the sequential path).
  usize num_threads = 1;
};

/// How load_file materializes an index file.
enum class IndexLoadMode : u8 {
  kAuto = 0,  ///< mmap for v3/v4 files when available, else stream
  kStream,    ///< copy every section through BinaryReader (v2, v3 or v4)
  kMmap,      ///< zero-copy mmap; requires a v3 or v4 file
};

/// Half-open range [lo, hi) of suffix-array rows.
struct SaInterval {
  u32 lo = 0;
  u32 hi = 0;
  u32 count() const { return hi - lo; }
  bool empty() const { return lo >= hi; }
};

/// Result of a Maximal Mappable Prefix search: the longest prefix of the
/// query occurring in the genome, and the SA rows of its occurrences.
struct MmpResult {
  usize length = 0;      ///< matched prefix length (0 = first char absent)
  SaInterval interval;   ///< occurrences of that prefix
};

/// Location of a text position within the assembly.
struct ContigLocus {
  ContigId contig = 0;
  u64 offset = 0;  ///< 0-based within the contig
};

struct ContigMeta {
  std::string name;
  ContigClass cls = ContigClass::kChromosome;
  u64 text_offset = 0;  ///< start within the concatenated text
  u64 length = 0;
};

struct IndexStats {
  ByteSize text_bytes;  ///< resident text: raw bytes, or packed words (v4)
  ByteSize suffix_array_bytes;
  ByteSize lut_bytes;
  ByteSize mini_lut_bytes;  ///< the four cascade LUTs (resident like the rest)
  ByteSize total() const {
    return text_bytes + suffix_array_bytes + lut_bytes + mini_lut_bytes;
  }
  u64 genome_length = 0;  ///< residues (without separators)
  usize num_contigs = 0;
  u32 prefix_lut_k = 0;
  bool packed_text = false;  ///< text_bytes counts the 2-bit representation
};

class GenomeIndex {
 public:
  static constexpr u32 kVersionV2 = 2;
  static constexpr u32 kVersionV3 = 3;
  static constexpr u32 kVersionV4 = 4;
  /// Default interchange format. v4 (packed text) is opt-in: it changes
  /// what text() returns (empty; use text_char/text_substr), so callers
  /// ask for it explicitly via save(out, kVersionV4).
  static constexpr u32 kVersionLatest = kVersionV3;

  GenomeIndex() = default;

  /// Builds the index from an assembly. O(genome); parallel across
  /// IndexParams::num_threads.
  static GenomeIndex build(const Assembly& assembly,
                           const IndexParams& params = {});

  const std::string& species() const { return species_; }
  int release() const { return release_; }
  AssemblyType assembly_type() const { return type_; }

  const std::vector<ContigMeta>& contigs() const { return contigs_; }
  /// Raw concatenated text. Empty for v4 (packed) loads — use text_size /
  /// text_char / text_substr, which work for every encoding.
  std::string_view text() const { return storage_.text(); }
  /// Genome text length (contigs + separators) regardless of encoding.
  u64 text_size() const { return storage_.text_size(); }
  /// True when the text is resident in 2-bit packed form (v4 load).
  bool packed_text() const { return storage_.has_packed(); }
  /// Packed-text view; inactive unless packed_text().
  PackedTextView packed_view() const { return storage_.packed_view(); }
  /// Character at `pos` in the concatenated text, decoding if packed.
  char text_char(u64 pos) const { return text_at(pos); }
  /// Decoded copy of text [pos, pos+len) — the encoding-independent form
  /// of text().substr(pos, len).
  std::string text_substr(u64 pos, u64 len) const;
  std::span<const u32> suffix_array() const { return storage_.sa(); }
  std::span<const LutCell> prefix_lut() const { return storage_.lut(); }
  /// Cascade LUT for prefix length `k` in 1..4.
  std::span<const LutCell> mini_lut(u32 k) const { return storage_.mini(k); }
  u32 prefix_lut_k() const { return lut_k_; }
  /// True when the big sections are borrowed from an mmap'd file.
  bool memory_mapped() const { return storage_.mapped; }

  /// Suffix-array row -> genome text position.
  GenomePos sa_position(u32 row) const { return storage_.sa()[row]; }

  /// Maps a concatenated-text position to (contig, offset). Positions that
  /// land on a separator are invalid; callers never produce them because
  /// matches cannot span separators.
  ContigLocus locate(GenomePos text_pos) const;

  /// Longest prefix of `query` present in the genome, with occurrences.
  MmpResult mmp(std::string_view query) const;

  /// Hot-path form of mmp(): writes into a caller-provided result so the
  /// seed-walk loop reuses one MmpResult for every restart. Performs no
  /// heap allocation.
  void mmp(std::string_view query, MmpResult& out) const;

  /// Batched mmp(): resolves queries[i] into results[i] for every i, with
  /// results identical to per-query mmp() calls. Internally up to 64
  /// queries walk the suffix array in lockstep — each binary-search round
  /// issues all lanes' SA probes with software prefetches before any lane
  /// consumes one, so the dependent DRAM loads that serialize a lone walk
  /// overlap across lanes instead. Small intervals (<= 24 rows) skip the
  /// per-character narrowing entirely: the rows' suffixes are gathered,
  /// prefetched, and LCP-compared directly, which is exact because the
  /// LCP against a sorted suffix block is unimodal, so the maximal-prefix
  /// rows form the contiguous block this scan extracts. Performs no heap
  /// allocation. `queries.size()` must equal `results.size()`.
  void mmp_batch(std::span<const std::string_view> queries,
                 std::span<MmpResult> results) const;

  /// Pull interface for mmp_batch_stream(). The walker calls next() to
  /// claim a free lane's query and done() exactly once per issued query;
  /// within one wave round every result is delivered through done()
  /// before any next() call of that round, so a caller whose next query
  /// depends on the previous result (the seed walk's restarts) can chain
  /// work without ever draining the lanes.
  class MmpFeed {
   public:
    virtual ~MmpFeed() = default;
    /// Supplies the next pending query and an opaque tag, or returns
    /// false when nothing is pending right now. Called again after later
    /// done() deliveries, which may have created new pending work.
    virtual bool next(std::string_view& query, u32& tag) = 0;
    /// Delivers the result of the query issued under `tag`. Delivery
    /// order across tags follows lane completion, not issue order.
    virtual void done(u32 tag, const MmpResult& result) = 0;
  };

  /// Pull-driven mmp_batch: keeps up to 64 lockstep lanes full from
  /// `feed` until it runs dry. Each query's result is identical to a
  /// per-query mmp() call. Performs no heap allocation.
  void mmp_batch_stream(MmpFeed& feed) const;

  /// Narrows `interval` (matching `depth` query chars) to suffixes whose
  /// next character equals `c`. Exposed for the aligner's seed logic.
  SaInterval extend_interval(SaInterval interval, usize depth, char c) const;

  /// Wide-block form of extend_interval for packed (v4) indexes: narrows
  /// by the next `len` (1..32) query characters in ONE equal-range pass.
  /// Each SA probe funnel-shift-extracts a whole 32-base code word plus
  /// its overlay strip and compares the block at once, instead of
  /// decoding one base per probe per character — 2 log|interval| probes
  /// for `len` characters rather than 2·len·log|interval|. `qcodes` /
  /// `qexc` are the pack_query() form of the query; the block is query
  /// bases [depth, depth+len). An empty result means no suffix matches
  /// the whole block, i.e. the walk terminates strictly within it — fall
  /// back to per-char extend_interval to locate the exact end (results
  /// stay bit-identical to the per-char walk). Requires has_packed().
  SaInterval extend_interval_packed_block(SaInterval interval, usize depth,
                                          const u64* qcodes, const u64* qexc,
                                          u32 len) const;

  IndexStats stats() const;

  /// Stable identity hash (FNV-1a over species/release/type/LUT-k, contig
  /// metadata, and sampled text bytes). Equal for any two loads of the
  /// same index — stream, mmap, or another process — so cross-shard merge
  /// layers can verify two result collectors reference the same genome
  /// without comparing full text. O(contigs).
  u64 fingerprint() const;

  /// Serialization (binary, versioned). `version` is kVersionV2,
  /// kVersionV3 or kVersionV4; v3/v4 are page-aligned/checksummed and
  /// mmap-able, v4 additionally ships the text 2-bit packed. Any load can
  /// save any version (packed text is decoded or packed on the fly).
  void save(std::ostream& out, u32 version = kVersionLatest) const;
  void save_file(const std::string& path, u32 version = kVersionLatest) const;
  /// Stream load; accepts v2, v3 and v4. Corruption (including
  /// truncation) surfaces as ParseError.
  static GenomeIndex load(std::istream& in);
  static GenomeIndex load_file(const std::string& path,
                               IndexLoadMode mode = IndexLoadMode::kAuto);

  /// Recomputes the per-section checksums of a memory-mapped index against
  /// the file's section table; throws ParseError on mismatch. O(file) —
  /// the mmap load path skips it by default to stay O(header), like
  /// attaching to an already-resident shm segment. No-op for owned
  /// indexes (their sections were verified or built in-process).
  void verify_checksums() const;

 private:
  struct SectionInfo {
    u32 id = 0;
    u64 offset = 0;
    u64 length = 0;
    u64 checksum = 0;
  };

  void build_lut();
  void build_mini_luts();
  void build_lut_parallel(ThreadPool& pool);
  void build_mini_luts_parallel(ThreadPool& pool);
  /// Structural validation shared by every load path; `deep` additionally
  /// scans SA entries and LUT cells for out-of-range values (the v2 path,
  /// which has no checksums to catch corruption).
  void validate_loaded(bool deep) const;
  void save_v2(std::ostream& out) const;
  /// v3 and v4 share the sectioned writer; v4 appends the packed-text
  /// sections and leaves the raw text section empty.
  void save_sectioned(std::ostream& out, u32 version) const;
  std::string serialize_meta() const;
  void parse_meta(const std::string& blob, u64& text_size, u64& sa_size,
                  u64& lut_cells);
  static GenomeIndex load_v2(BinaryReader& reader);
  static GenomeIndex load_sectioned_stream(BinaryReader& reader, u32 version);
  static GenomeIndex load_sectioned_mmap(MappedFile file,
                                         const std::string& path);

  /// Character at `pos`, '\0' past the end. The scalar fallback every
  /// search path shares: raw loads read the byte, packed loads decode it,
  /// so byte-level comparison semantics are identical in both modes.
  char text_at(u64 pos) const {
    if (storage_.has_packed()) {
      return pos < storage_.packed_size ? storage_.packed_view().at(pos)
                                        : '\0';
    }
    const std::string_view text = storage_.text();
    return pos < text.size() ? text[pos] : '\0';
  }

  std::string species_;
  int release_ = 0;
  AssemblyType type_ = AssemblyType::kToplevel;
  std::vector<ContigMeta> contigs_;
  u32 lut_k_ = 0;
  /// Backing memory: owned containers or mmap'd section views. The main
  /// LUT is interleaved ([lo, hi] per k-mer code) so a lookup touches one
  /// cache line — MMP calls are the aligner's hottest operation and each
  /// one starts with this load. The v2 on-disk layout stays split (lo
  /// array, hi array) for compatibility; v3 stores cells interleaved.
  /// Cascade mini-LUTs cover prefix lengths 1..4 (4^k cells each): when
  /// the main LUT cannot jump — query shorter than k, leading k-mer
  /// absent, or an early N — these pin the walk to a short-prefix SA block
  /// instead of binary-searching down from the full range. 340 cells
  /// total, so they stay cache-resident.
  IndexStorage storage_;
  /// v3 mmap only: the file's section table, for verify_checksums().
  std::vector<SectionInfo> sections_;
};

}  // namespace staratlas
