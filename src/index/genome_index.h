// GenomeIndex: the precomputed data structure the aligner loads into
// memory, mirroring STAR's genome index (suffix array + prefix lookup).
//
// The index concatenates all contigs with a '#' separator byte between
// them, so no suffix-array match can span a contig boundary, then builds a
// suffix array (SA-IS) and a k-mer prefix lookup table that jump-starts
// Maximal Mappable Prefix searches.
#pragma once

#include <array>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"
#include "common/units.h"
#include "genome/model.h"

namespace staratlas {

struct IndexParams {
  /// Prefix lookup k-mer length; 0 = auto (scales with genome size).
  u32 prefix_lut_k = 0;
};

/// Half-open range [lo, hi) of suffix-array rows.
struct SaInterval {
  u32 lo = 0;
  u32 hi = 0;
  u32 count() const { return hi - lo; }
  bool empty() const { return lo >= hi; }
};

/// Result of a Maximal Mappable Prefix search: the longest prefix of the
/// query occurring in the genome, and the SA rows of its occurrences.
struct MmpResult {
  usize length = 0;      ///< matched prefix length (0 = first char absent)
  SaInterval interval;   ///< occurrences of that prefix
};

/// Location of a text position within the assembly.
struct ContigLocus {
  ContigId contig = 0;
  u64 offset = 0;  ///< 0-based within the contig
};

struct ContigMeta {
  std::string name;
  ContigClass cls = ContigClass::kChromosome;
  u64 text_offset = 0;  ///< start within the concatenated text
  u64 length = 0;
};

struct IndexStats {
  ByteSize text_bytes;
  ByteSize suffix_array_bytes;
  ByteSize lut_bytes;
  ByteSize total() const { return text_bytes + suffix_array_bytes + lut_bytes; }
  u64 genome_length = 0;  ///< residues (without separators)
  usize num_contigs = 0;
  u32 prefix_lut_k = 0;
};

class GenomeIndex {
 public:
  GenomeIndex() = default;

  /// Builds the index from an assembly. Single-threaded, O(genome).
  static GenomeIndex build(const Assembly& assembly,
                           const IndexParams& params = {});

  const std::string& species() const { return species_; }
  int release() const { return release_; }
  AssemblyType assembly_type() const { return type_; }

  const std::vector<ContigMeta>& contigs() const { return contigs_; }
  const std::string& text() const { return text_; }
  const std::vector<u32>& suffix_array() const { return sa_; }
  u32 prefix_lut_k() const { return lut_k_; }

  /// Suffix-array row -> genome text position.
  GenomePos sa_position(u32 row) const { return sa_[row]; }

  /// Maps a concatenated-text position to (contig, offset). Positions that
  /// land on a separator are invalid; callers never produce them because
  /// matches cannot span separators.
  ContigLocus locate(GenomePos text_pos) const;

  /// Longest prefix of `query` present in the genome, with occurrences.
  MmpResult mmp(std::string_view query) const;

  /// Hot-path form of mmp(): writes into a caller-provided result so the
  /// seed-walk loop reuses one MmpResult for every restart. Performs no
  /// heap allocation.
  void mmp(std::string_view query, MmpResult& out) const;

  /// Narrows `interval` (matching `depth` query chars) to suffixes whose
  /// next character equals `c`. Exposed for the aligner's seed logic.
  SaInterval extend_interval(SaInterval interval, usize depth, char c) const;

  IndexStats stats() const;

  /// Serialization (binary, versioned).
  void save(std::ostream& out) const;
  static GenomeIndex load(std::istream& in);
  void save_file(const std::string& path) const;
  static GenomeIndex load_file(const std::string& path);

 private:
  void build_lut();
  void build_mini_luts();
  char text_at(u64 pos) const {
    return pos < text_.size() ? text_[pos] : '\0';
  }

  std::string species_;
  int release_ = 0;
  AssemblyType type_ = AssemblyType::kToplevel;
  std::vector<ContigMeta> contigs_;
  std::string text_;       ///< contigs joined by '#'
  std::vector<u32> sa_;
  u32 lut_k_ = 0;
  /// Prefix LUT, one [lo, hi) SA-row pair per k-mer code. Interleaved so a
  /// lookup touches one cache line, not one per bound — MMP calls are the
  /// aligner's hottest operation and each one starts with this load. The
  /// serialized format stays split (lo array, hi array) for compatibility.
  std::vector<std::array<u32, 2>> lut_;
  /// Cascade LUTs for prefix lengths 1..4 (mini_lut_[k-1] has 4^k cells).
  /// When the main LUT cannot jump — query shorter than k, leading k-mer
  /// absent, or an early N — these pin the walk to a short-prefix SA block
  /// instead of binary-searching down from the full range. 340 cells
  /// total, so they stay cache-resident. Rebuilt on load, never stored.
  std::array<std::vector<std::array<u32, 2>>, 4> mini_lut_;
};

}  // namespace staratlas
