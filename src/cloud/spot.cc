#include "cloud/spot.h"

namespace staratlas {

VirtualDuration SpotMarket::sample_time_to_interruption() {
  return VirtualDuration::seconds(rng_.exponential(mean_tti_.secs()));
}

}  // namespace staratlas
