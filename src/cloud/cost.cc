#include "cloud/cost.h"

#include "common/error.h"

namespace staratlas {

void CostMeter::add_instance_time(const InstanceType& type, double seconds,
                                  bool spot) {
  STARATLAS_CHECK(seconds >= 0.0);
  const double usd = type.hourly(spot) * seconds / 3600.0;
  by_category_[std::string("ec2_") + (spot ? "spot" : "ondemand")] += usd;
  instance_hours_ += seconds / 3600.0;
}

void CostMeter::add(const std::string& category, double usd) {
  by_category_[category] += usd;
}

double CostMeter::total_usd() const {
  double total = 0.0;
  for (const auto& [category, usd] : by_category_) total += usd;
  return total;
}

double CostMeter::category_usd(const std::string& category) const {
  auto it = by_category_.find(category);
  return it == by_category_.end() ? 0.0 : it->second;
}

}  // namespace staratlas
