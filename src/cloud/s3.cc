#include "cloud/s3.h"

#include "common/error.h"

namespace staratlas {

void S3Bucket::put(const std::string& key, ByteSize size) {
  objects_[key] = size;
  ++puts_;
}

std::optional<ByteSize> S3Bucket::head(const std::string& key) const {
  auto it = objects_.find(key);
  if (it == objects_.end()) return std::nullopt;
  return it->second;
}

ByteSize S3Bucket::get(const std::string& key) {
  auto it = objects_.find(key);
  if (it == objects_.end()) {
    throw InvalidArgument("s3://" + name_ + "/" + key + " does not exist");
  }
  ++gets_;
  return it->second;
}

bool S3Bucket::contains(const std::string& key) const {
  return objects_.count(key) > 0;
}

void S3Bucket::remove(const std::string& key) { objects_.erase(key); }

ByteSize S3Bucket::total_bytes() const {
  ByteSize total;
  for (const auto& [key, size] : objects_) total += size;
  return total;
}

VirtualDuration S3Bucket::transfer_time(ByteSize size, double gbps,
                                        double efficiency) {
  STARATLAS_CHECK(gbps > 0.0 && efficiency > 0.0 && efficiency <= 1.0);
  const double bytes_per_sec = gbps * 1e9 / 8.0 * efficiency;
  return VirtualDuration::seconds(static_cast<double>(size.bytes()) /
                                  bytes_per_sec);
}

}  // namespace staratlas
