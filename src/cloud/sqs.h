// SQS-style message queue: at-least-once delivery with visibility
// timeouts, redelivery, and a dead-letter queue — the coordination point
// of the paper's Fig 2 architecture (SRA IDs in, workers polling).
#pragma once

#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cloud/event_sim.h"
#include "common/types.h"

namespace staratlas {

struct SqsMessage {
  std::string body;
  u64 receipt_handle = 0;  ///< pass to delete_message / return_message
  u32 receive_count = 1;
};

struct SqsStats {
  u64 sent = 0;
  u64 received = 0;
  u64 deleted = 0;
  u64 visibility_expired = 0;  ///< redeliveries due to timeout
  u64 visibility_extended = 0;  ///< ChangeMessageVisibility heartbeats
  u64 dead_lettered = 0;
};

class SqsQueue {
 public:
  /// Messages received but not deleted become visible again after
  /// `visibility_timeout`; after `max_receives` deliveries they go to the
  /// dead-letter queue instead.
  SqsQueue(SimKernel& kernel, VirtualDuration visibility_timeout,
           u32 max_receives = 5);

  void send(std::string body);

  /// Non-blocking poll. Returns nullopt when no message is visible.
  std::optional<SqsMessage> receive();

  /// Acknowledges (removes) an in-flight message.
  void delete_message(u64 receipt_handle);

  /// Returns an in-flight message to the queue immediately (used by
  /// workers on spot interruption instead of waiting out the timeout).
  void return_message(u64 receipt_handle);

  /// ChangeMessageVisibility analog: restarts the in-flight message's
  /// visibility timer so long-running work does not spuriously expire and
  /// double-process. Returns false (no-op) when the receipt is unknown —
  /// the message already expired, was deleted, or was returned.
  bool extend_visibility(u64 receipt_handle, VirtualDuration timeout);

  /// Invoked with the message body the moment a message is moved to the
  /// dead-letter queue, so consumers can track terminal state per item
  /// instead of inferring it from dlq size (which double-counts stale
  /// duplicates of already-completed work).
  using DeadLetterFn = std::function<void(const std::string& body)>;
  void set_on_dead_letter(DeadLetterFn fn) { on_dead_letter_ = std::move(fn); }

  usize visible_count() const { return visible_.size(); }
  usize in_flight_count() const { return in_flight_.size(); }
  /// ApproximateNumberOfMessages: visible + in flight.
  usize approximate_depth() const { return visible_count() + in_flight_count(); }
  const std::vector<std::string>& dead_letter_queue() const { return dlq_; }
  const SqsStats& stats() const { return stats_; }

 private:
  struct InFlight {
    std::string body;
    u32 receive_count;
    SimKernel::EventId timer;
  };
  void expire(u64 receipt_handle);

  SimKernel* kernel_;
  VirtualDuration visibility_timeout_;
  u32 max_receives_;
  DeadLetterFn on_dead_letter_;
  u64 next_receipt_ = 1;
  std::deque<std::pair<std::string, u32>> visible_;  ///< (body, receive_count)
  std::unordered_map<u64, InFlight> in_flight_;
  std::vector<std::string> dlq_;
  SqsStats stats_;
};

}  // namespace staratlas
