// S3-style object store with a byte-accurate inventory and a bandwidth
// transfer model. Holds the pre-built genome indices the workers download
// at boot and the per-sample results they upload (Fig 2).
#pragma once

#include <map>
#include <optional>
#include <string>

#include "common/types.h"
#include "common/units.h"
#include "common/vclock.h"

namespace staratlas {

class S3Bucket {
 public:
  explicit S3Bucket(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  void put(const std::string& key, ByteSize size);
  /// Object size if present.
  std::optional<ByteSize> head(const std::string& key) const;
  /// Object size; throws InvalidArgument when absent.
  ByteSize get(const std::string& key);
  bool contains(const std::string& key) const;
  void remove(const std::string& key);

  usize num_objects() const { return objects_.size(); }
  ByteSize total_bytes() const;
  u64 put_count() const { return puts_; }
  u64 get_count() const { return gets_; }

  /// Transfer time for `size` at `gbps` line rate with a realistic
  /// sustained efficiency factor.
  static VirtualDuration transfer_time(ByteSize size, double gbps,
                                       double efficiency = 0.85);

 private:
  std::string name_;
  std::map<std::string, ByteSize> objects_;
  u64 puts_ = 0;
  u64 gets_ = 0;
};

}  // namespace staratlas
