#include "cloud/event_sim.h"

#include "common/error.h"

namespace staratlas {

SimKernel::EventId SimKernel::schedule_at(VirtualTime t, EventFn fn) {
  STARATLAS_CHECK(fn != nullptr);
  if (t < now_) t = now_;
  const EventId id = next_id_++;
  const Key key{t.secs(), id};
  queue_.emplace(key, std::move(fn));
  keys_.emplace(id, key);
  return id;
}

SimKernel::EventId SimKernel::schedule_after(VirtualDuration delay,
                                             EventFn fn) {
  if (delay < VirtualDuration::zero()) delay = VirtualDuration::zero();
  return schedule_at(now_ + delay, std::move(fn));
}

void SimKernel::cancel(EventId id) {
  auto it = keys_.find(id);
  if (it == keys_.end()) return;
  queue_.erase(it->second);
  keys_.erase(it);
}

void SimKernel::run() {
  while (!queue_.empty()) {
    auto it = queue_.begin();
    const Key key = it->first;
    EventFn fn = std::move(it->second);
    queue_.erase(it);
    keys_.erase(key.second);
    now_ = VirtualTime(key.first);
    ++processed_;
    fn();
  }
}

void SimKernel::run_until(VirtualTime deadline) {
  while (!queue_.empty() && queue_.begin()->first.first <= deadline.secs()) {
    auto it = queue_.begin();
    const Key key = it->first;
    EventFn fn = std::move(it->second);
    queue_.erase(it);
    keys_.erase(key.second);
    now_ = VirtualTime(key.first);
    ++processed_;
    fn();
  }
  if (now_ < deadline) now_ = deadline;
}

}  // namespace staratlas
