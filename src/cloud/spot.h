// Spot market model: interruption arrival process for spot instances.
// The paper runs its ASG "in spot mode for cheaper processing"; the cost
// of that choice is requeued work when instances are reclaimed.
#pragma once

#include "common/rng.h"
#include "common/vclock.h"

namespace staratlas {

class SpotMarket {
 public:
  /// Interruptions arrive per-instance as a Poisson process with the given
  /// mean time between reclaims (AWS publishes ~5% monthly interruption
  /// frequencies for calm pools; stress tests use much shorter means).
  explicit SpotMarket(Rng rng, VirtualDuration mean_time_to_interruption =
                                   VirtualDuration::hours(48.0))
      : rng_(rng), mean_tti_(mean_time_to_interruption) {}

  /// Samples a time-to-interruption for a newly launched spot instance.
  VirtualDuration sample_time_to_interruption();

  VirtualDuration mean_time_to_interruption() const { return mean_tti_; }

 private:
  Rng rng_;
  VirtualDuration mean_tti_;
};

}  // namespace staratlas
