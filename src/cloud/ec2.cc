#include "cloud/ec2.h"

#include "common/error.h"

namespace staratlas {

Ec2Fleet::Ec2Fleet(SimKernel& kernel, CostMeter& cost, SpotMarket* spot_market,
                   VirtualDuration boot_delay)
    : kernel_(&kernel),
      cost_(&cost),
      spot_market_(spot_market),
      boot_delay_(boot_delay) {}

u64 Ec2Fleet::launch(const InstanceType& type, bool spot) {
  if (spot) STARATLAS_CHECK(spot_market_ != nullptr);
  const u64 id = next_id_++;
  Ec2Instance instance;
  instance.id = id;
  instance.type = &type;
  instance.spot = spot;
  instance.launched_at = kernel_->now();
  instances_.emplace(id, instance);

  kernel_->schedule_after(boot_delay_, [this, id] {
    auto it = instances_.find(id);
    if (it == instances_.end() || it->second.state != InstanceState::kPending) {
      return;  // terminated while booting
    }
    it->second.state = InstanceState::kRunning;
    if (on_ready_) on_ready_(id);
  });

  if (spot) {
    const VirtualDuration tti = spot_market_->sample_time_to_interruption();
    reclaim_timers_[id] =
        kernel_->schedule_after(tti, [this, id] { reclaim(id); });
  }
  return id;
}

void Ec2Fleet::terminate(u64 id) {
  auto it = instances_.find(id);
  STARATLAS_CHECK(it != instances_.end());
  Ec2Instance& instance = it->second;
  if (instance.state == InstanceState::kTerminated) return;
  instance.state = InstanceState::kTerminated;
  instance.terminated_at = kernel_->now();
  cost_->add_instance_time(*instance.type,
                           (instance.terminated_at - instance.launched_at).secs(),
                           instance.spot);
  auto timer = reclaim_timers_.find(id);
  if (timer != reclaim_timers_.end()) {
    kernel_->cancel(timer->second);
    reclaim_timers_.erase(timer);
  }
}

void Ec2Fleet::terminate_all() {
  for (auto& [id, instance] : instances_) {
    if (instance.state != InstanceState::kTerminated) terminate(id);
  }
}

void Ec2Fleet::reclaim(u64 id) {
  auto it = instances_.find(id);
  if (it == instances_.end() ||
      it->second.state == InstanceState::kTerminated) {
    return;
  }
  ++interruptions_;
  terminate(id);
  if (on_interrupted_) on_interrupted_(id);
}

const Ec2Instance& Ec2Fleet::instance(u64 id) const {
  auto it = instances_.find(id);
  STARATLAS_CHECK(it != instances_.end());
  return it->second;
}

double Ec2Fleet::accrued_running_cost(VirtualTime now) const {
  double usd = 0.0;
  for (const auto& [id, instance] : instances_) {
    if (instance.state == InstanceState::kTerminated) continue;
    usd += instance.type->hourly(instance.spot) *
           (now - instance.launched_at).secs() / 3600.0;
  }
  return usd;
}

usize Ec2Fleet::running_count() const {
  usize count = 0;
  for (const auto& [id, instance] : instances_) {
    if (instance.state == InstanceState::kRunning ||
        instance.state == InstanceState::kPending) {
      ++count;
    }
  }
  return count;
}

}  // namespace staratlas
