// AutoScalingGroup: periodically sizes the fleet to the SQS backlog
// (target-tracking on backlog-per-instance, the standard pattern for
// queue-driven worker fleets like the paper's Fig 2).
//
// Scale-out launches instances directly. Scale-in is by attrition: workers
// call `should_release()` between tasks and self-terminate when the group
// is over its desired capacity — an instance is never killed mid-sample.
#pragma once

#include <functional>

#include "cloud/ec2.h"
#include "cloud/event_sim.h"
#include "common/types.h"

namespace staratlas {

struct AsgPolicy {
  usize min_size = 0;
  usize max_size = 16;
  /// Target queue backlog per running instance.
  double target_backlog_per_instance = 2.0;
  VirtualDuration evaluation_period = VirtualDuration::minutes(1);
};

class AutoScalingGroup {
 public:
  /// `backlog_fn` reports the current queue depth (visible + in flight).
  AutoScalingGroup(SimKernel& kernel, Ec2Fleet& fleet,
                   const InstanceType& type, bool spot, AsgPolicy policy,
                   std::function<usize()> backlog_fn);

  /// Mixed-purchase form: `spot_fraction` of launches (deterministically
  /// interleaved so every prefix of the launch sequence holds the ratio)
  /// are spot, the rest on-demand. 0.0 and 1.0 reproduce the pure
  /// on-demand / pure spot launch sequences exactly.
  AutoScalingGroup(SimKernel& kernel, Ec2Fleet& fleet,
                   const InstanceType& type, double spot_fraction,
                   AsgPolicy policy, std::function<usize()> backlog_fn);

  /// Starts periodic evaluation (first evaluation immediately).
  void start();
  /// Stops evaluating; does not terminate instances.
  void stop();

  usize desired_capacity() const { return desired_; }
  const AsgPolicy& policy() const { return policy_; }
  const InstanceType& type() const { return *type_; }
  bool spot() const { return spot_fraction_ >= 1.0; }
  double spot_fraction() const { return spot_fraction_; }
  u64 scale_out_events() const { return scale_outs_; }

  /// True when the fleet exceeds desired capacity; the calling worker
  /// should self-terminate. Decrements the internal over-capacity budget.
  bool should_release();

 private:
  void evaluate();

  SimKernel* kernel_;
  Ec2Fleet* fleet_;
  const InstanceType* type_;
  double spot_fraction_;
  AsgPolicy policy_;
  std::function<usize()> backlog_fn_;
  bool running_ = false;
  usize desired_ = 0;
  u64 scale_outs_ = 0;
  u64 launches_ = 0;  ///< lifetime launch count (drives the spot mix)
  SimKernel::EventId timer_ = 0;
};

}  // namespace staratlas
