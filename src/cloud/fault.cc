#include "cloud/fault.h"

#include <algorithm>

#include "common/error.h"

namespace staratlas {

void FaultConfig::validate() const {
  STARATLAS_CHECK(transfer_failure_rate >= 0.0 && transfer_failure_rate < 1.0);
  STARATLAS_CHECK(max_transfer_attempts >= 1);
  STARATLAS_CHECK(transfer_backoff_base >= VirtualDuration::zero());
  STARATLAS_CHECK(transfer_backoff_multiplier >= 1.0);
}

FaultInjector::FaultInjector(FaultConfig config) : config_(config) {
  config_.validate();
}

std::optional<double> FaultInjector::sample_transfer_failure(
    const std::string& op) {
  if (!enabled()) return std::nullopt;
  auto it = op_rngs_.find(op);
  if (it == op_rngs_.end()) {
    it = op_rngs_.emplace(op, Rng(config_.seed).fork(op)).first;
  }
  Rng& rng = it->second;
  // Both values are drawn on every call so the per-op stream position
  // depends only on the attempt count, not on past outcomes.
  const double failure_draw = rng.uniform01();
  const double fraction = rng.uniform01();
  if (failure_draw >= config_.transfer_failure_rate) return std::nullopt;
  ++injected_total_;
  ++injected_by_op_[op];
  return fraction;
}

VirtualDuration FaultInjector::backoff(u32 failed_attempts) const {
  STARATLAS_CHECK(failed_attempts >= 1);
  double delay = config_.transfer_backoff_base.secs();
  for (u32 i = 1; i < failed_attempts; ++i) {
    delay *= config_.transfer_backoff_multiplier;
  }
  return std::min(VirtualDuration::seconds(delay),
                  config_.transfer_backoff_cap);
}

u64 FaultInjector::injected(const std::string& op) const {
  auto it = injected_by_op_.find(op);
  return it == injected_by_op_.end() ? 0 : it->second;
}

}  // namespace staratlas
