// FaaS (Lambda-style) worker classes: the serverless complement to the
// EC2 catalog. The follow-up paper ("Serverless Approach to Running
// Resource-Intensive STAR Aligner") scatters one sample's reads over many
// small function workers; these classes capture what makes that economics
// different from an r6a instance — sub-second cold start, small RAM,
// per-millisecond duration billing proportional to provisioned memory,
// and compute that scales with memory (Lambda grants ~1 vCPU per 1769 MB).
#pragma once

#include <string>
#include <vector>

#include "cloud/instance_types.h"
#include "common/types.h"
#include "common/units.h"

namespace staratlas {

struct FaasClass {
  std::string name;
  ByteSize memory;
  /// Effective vCPU share (fractional below one full core, ~1 vCPU per
  /// 1769 MB like Lambda).
  double vcpus = 0.0;
  /// USD per GB-second of provisioned memory (x86 Lambda pricing).
  double usd_per_gb_second = 0.0000166667;
  /// Flat per-request charge.
  double usd_per_invocation = 0.0000002;
  /// Runtime + snapshot restore before user code runs.
  double cold_start_seconds = 0.35;
  /// Sustained network/shared-FS bandwidth available to one function.
  double network_gbps = 0.6;

  /// Billed cost of one invocation running `seconds`: duration rounded up
  /// to the millisecond, billed against provisioned memory GB.
  double invoke_cost(double seconds) const;

  /// InstanceType view for the StageTimeModel formulas (vCPUs rounded to
  /// at least 1; hourly prices derived from the GB-second rate so either
  /// billing path prices a full hour identically).
  InstanceType as_instance() const;
};

/// Lambda-like memory tiers (2–10 GB).
const std::vector<FaasClass>& faas_catalog();

/// Lookup by name; throws InvalidArgument if unknown.
const FaasClass& faas_class(const std::string& name);

}  // namespace staratlas
