// EC2 instance-type catalog with the shapes and (approximate, us-east-1,
// 2024) prices relevant to the paper: the memory-optimized r6a family the
// authors used (the index must fit in RAM), plus general-purpose and
// compute-optimized contenders for the right-sizing analysis.
#pragma once

#include <string>
#include <vector>

#include "common/types.h"
#include "common/units.h"

namespace staratlas {

struct InstanceType {
  std::string name;
  u32 vcpus = 0;
  ByteSize memory;
  double on_demand_hourly = 0.0;  ///< USD
  double spot_hourly = 0.0;       ///< USD, typical (not bid-simulated)
  double network_gbps = 0.0;      ///< sustained baseline

  double hourly(bool spot) const { return spot ? spot_hourly : on_demand_hourly; }
};

/// All known instance types.
const std::vector<InstanceType>& instance_catalog();

/// Lookup by name; throws InvalidArgument if unknown.
const InstanceType& instance_type(const std::string& name);

}  // namespace staratlas
