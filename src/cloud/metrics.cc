#include "cloud/metrics.h"

#include <algorithm>
#include <ostream>

#include "common/error.h"

namespace staratlas {

void MetricSeries::add(VirtualTime time, double value) {
  if (!points_.empty()) {
    STARATLAS_CHECK(time >= points_.back().time);
  }
  points_.push_back({time, value});
}

double MetricSeries::max() const {
  if (points_.empty()) return 0.0;
  double best = points_.front().value;
  for (const auto& point : points_) best = std::max(best, point.value);
  return best;
}

double MetricSeries::mean() const {
  if (points_.empty()) return 0.0;
  double total = 0.0;
  for (const auto& point : points_) total += point.value;
  return total / static_cast<double>(points_.size());
}

double MetricSeries::final_value() const {
  return points_.empty() ? 0.0 : points_.back().value;
}

double MetricSeries::time_weighted_mean() const {
  if (points_.size() < 2) return 0.0;
  double weighted = 0.0;
  double span = 0.0;
  for (usize i = 1; i < points_.size(); ++i) {
    const double dt = (points_[i].time - points_[i - 1].time).secs();
    weighted += points_[i - 1].value * dt;
    span += dt;
  }
  return span > 0.0 ? weighted / span : 0.0;
}

void MetricsRecorder::record(const std::string& name, VirtualTime time,
                             double value) {
  series_[name].add(time, value);
}

const MetricSeries& MetricsRecorder::series(const std::string& name) const {
  auto it = series_.find(name);
  STARATLAS_CHECK(it != series_.end());
  return it->second;
}

std::vector<std::string> MetricsRecorder::names() const {
  std::vector<std::string> names;
  names.reserve(series_.size());
  for (const auto& [name, series] : series_) names.push_back(name);
  return names;
}

void MetricsRecorder::write_csv(std::ostream& out) const {
  out << "metric,time_seconds,value\n";
  for (const auto& [name, series] : series_) {
    for (const auto& point : series.points()) {
      out << name << ',' << point.time.secs() << ',' << point.value << '\n';
    }
  }
}

}  // namespace staratlas
