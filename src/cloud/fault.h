// Deterministic fault injection for the cloud simulator: a seeded
// per-operation failure process used to exercise the retry/requeue paths
// (transfer failures during prefetch and S3 uploads) without giving up
// reproducibility. Each operation label gets its own forked RNG stream,
// so adding a new injection point never perturbs existing draws.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "common/rng.h"
#include "common/types.h"
#include "common/vclock.h"

namespace staratlas {

struct FaultConfig {
  /// Master switch; a disabled injector never draws randomness, so runs
  /// with faults off are bit-identical to runs without an injector.
  bool enabled = false;
  /// Per-attempt probability that a transfer (prefetch, S3 put/get) fails.
  double transfer_failure_rate = 0.0;
  /// Total tries of a transfer before the worker gives up and requeues
  /// the sample (bounded retries).
  u32 max_transfer_attempts = 4;
  /// First retry delay; attempt k waits base * multiplier^k, capped.
  VirtualDuration transfer_backoff_base = VirtualDuration::seconds(30);
  double transfer_backoff_multiplier = 2.0;
  VirtualDuration transfer_backoff_cap = VirtualDuration::minutes(30);
  u64 seed = 0xFA177;

  void validate() const;
};

class FaultInjector {
 public:
  /// Default-constructed injector is disabled (injects nothing).
  FaultInjector() = default;
  explicit FaultInjector(FaultConfig config);

  bool enabled() const {
    return config_.enabled && config_.transfer_failure_rate > 0.0;
  }

  /// One failure draw for a transfer attempt of operation `op`. Returns
  /// nullopt on success; on failure, the fraction of the attempt that
  /// completed before the fault hit, in [0, 1).
  std::optional<double> sample_transfer_failure(const std::string& op);

  /// Backoff before retrying after `failed_attempts` failures (>= 1).
  VirtualDuration backoff(u32 failed_attempts) const;

  u32 max_attempts() const { return config_.max_transfer_attempts; }
  u64 injected_total() const { return injected_total_; }
  /// Failures injected for one operation label (0 when never drawn).
  u64 injected(const std::string& op) const;

 private:
  FaultConfig config_{};
  std::map<std::string, Rng> op_rngs_;
  std::map<std::string, u64> injected_by_op_;
  u64 injected_total_ = 0;
};

}  // namespace staratlas
