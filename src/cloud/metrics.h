// CloudWatch-style metrics: named time series sampled in virtual time.
// The atlas simulation records queue depth, fleet size, cumulative cost
// and completed samples so campaigns can be inspected after the fact
// (write_csv feeds straight into any plotting tool).
#pragma once

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "common/types.h"
#include "common/vclock.h"

namespace staratlas {

struct MetricPoint {
  VirtualTime time;
  double value = 0.0;
};

class MetricSeries {
 public:
  void add(VirtualTime time, double value);

  const std::vector<MetricPoint>& points() const { return points_; }
  bool empty() const { return points_.empty(); }
  /// Largest recorded value (seeded from the first point, so all-negative
  /// series report their true maximum). Defined as 0 when empty.
  double max() const;
  double mean() const;
  /// Last recorded value (0 when empty).
  double final_value() const;
  /// Time-weighted average over the recorded span (0 when < 2 points).
  double time_weighted_mean() const;

 private:
  std::vector<MetricPoint> points_;
};

class MetricsRecorder {
 public:
  /// Appends a sample to the named series (created on demand).
  void record(const std::string& name, VirtualTime time, double value);

  const MetricSeries& series(const std::string& name) const;
  bool has(const std::string& name) const { return series_.count(name) > 0; }
  std::vector<std::string> names() const;

  /// Long-format CSV: metric,time_seconds,value.
  void write_csv(std::ostream& out) const;

 private:
  std::map<std::string, MetricSeries> series_;
};

}  // namespace staratlas
