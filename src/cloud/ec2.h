// EC2 fleet model: instance lifecycle (pending -> running -> terminated),
// boot delays, per-second billing, and spot reclaims.
#pragma once

#include <functional>
#include <map>
#include <string>

#include "cloud/cost.h"
#include "cloud/event_sim.h"
#include "cloud/instance_types.h"
#include "cloud/spot.h"
#include "common/types.h"

namespace staratlas {

enum class InstanceState : u8 { kPending, kRunning, kTerminated };

struct Ec2Instance {
  u64 id = 0;
  const InstanceType* type = nullptr;
  bool spot = false;
  InstanceState state = InstanceState::kPending;
  VirtualTime launched_at;
  VirtualTime terminated_at;
};

class Ec2Fleet {
 public:
  /// on_ready(id) fires when a launched instance finishes booting;
  /// on_interrupted(id) fires when the spot market reclaims it (the
  /// instance is already terminated when the callback runs).
  Ec2Fleet(SimKernel& kernel, CostMeter& cost, SpotMarket* spot_market,
           VirtualDuration boot_delay = VirtualDuration::seconds(45));

  using ReadyFn = std::function<void(u64)>;
  using InterruptedFn = std::function<void(u64)>;
  void set_on_ready(ReadyFn fn) { on_ready_ = std::move(fn); }
  void set_on_interrupted(InterruptedFn fn) { on_interrupted_ = std::move(fn); }

  /// Launches an instance; billing starts immediately (pending time is
  /// billed, as on EC2). Returns the instance id.
  u64 launch(const InstanceType& type, bool spot);

  /// Terminates an instance and bills its lifetime. Safe on already
  /// terminated ids.
  void terminate(u64 id);

  /// Terminates everything still running (end-of-run cleanup + billing).
  void terminate_all();

  const Ec2Instance& instance(u64 id) const;
  usize running_count() const;
  /// USD accrued so far by instances that are still alive (billed only at
  /// termination; this estimates the in-flight spend for live metrics).
  double accrued_running_cost(VirtualTime now) const;
  usize launched_total() const { return instances_.size(); }
  u64 interruptions() const { return interruptions_; }

 private:
  void reclaim(u64 id);

  SimKernel* kernel_;
  CostMeter* cost_;
  SpotMarket* spot_market_;
  VirtualDuration boot_delay_;
  ReadyFn on_ready_;
  InterruptedFn on_interrupted_;
  u64 next_id_ = 1;
  u64 interruptions_ = 0;
  std::map<u64, Ec2Instance> instances_;
  std::map<u64, SimKernel::EventId> reclaim_timers_;
};

}  // namespace staratlas
