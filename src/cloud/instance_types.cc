#include "cloud/instance_types.h"

#include "common/error.h"

namespace staratlas {

const std::vector<InstanceType>& instance_catalog() {
  // Prices: approximate on-demand us-east-1 (2024); spot at the typical
  // ~62% discount the paper's cost argument assumes.
  static const std::vector<InstanceType> kCatalog = {
      // memory-optimized (8 GiB RAM / vCPU) — the paper's family
      {"r6a.large", 2, ByteSize::from_gib(16), 0.1134, 0.0431, 0.78},
      {"r6a.xlarge", 4, ByteSize::from_gib(32), 0.2268, 0.0862, 1.56},
      {"r6a.2xlarge", 8, ByteSize::from_gib(64), 0.4536, 0.1724, 3.12},
      {"r6a.4xlarge", 16, ByteSize::from_gib(128), 0.9072, 0.3447, 6.25},
      {"r6a.8xlarge", 32, ByteSize::from_gib(256), 1.8144, 0.6895, 12.5},
      {"r6a.12xlarge", 48, ByteSize::from_gib(384), 2.7216, 1.0342, 18.75},
      // general purpose (4 GiB / vCPU)
      {"m6a.2xlarge", 8, ByteSize::from_gib(32), 0.3456, 0.1313, 3.12},
      {"m6a.4xlarge", 16, ByteSize::from_gib(64), 0.6912, 0.2627, 6.25},
      {"m6a.8xlarge", 32, ByteSize::from_gib(128), 1.3824, 0.5253, 12.5},
      // compute optimized (2 GiB / vCPU)
      {"c6a.4xlarge", 16, ByteSize::from_gib(32), 0.6120, 0.2326, 6.25},
      {"c6a.8xlarge", 32, ByteSize::from_gib(64), 1.2240, 0.4651, 12.5},
  };
  return kCatalog;
}

const InstanceType& instance_type(const std::string& name) {
  for (const auto& type : instance_catalog()) {
    if (type.name == name) return type;
  }
  throw InvalidArgument("unknown instance type: " + name);
}

}  // namespace staratlas
