// Discrete-event simulation kernel: a virtual clock plus an ordered event
// queue. Everything in staratlas::cloud advances through this kernel, so a
// whole day of cluster activity simulates in milliseconds and every run is
// exactly reproducible.
#pragma once

#include <functional>
#include <map>
#include <unordered_map>

#include "common/types.h"
#include "common/vclock.h"

namespace staratlas {

class SimKernel {
 public:
  using EventFn = std::function<void()>;
  using EventId = u64;

  VirtualTime now() const { return now_; }

  /// Schedules `fn` at absolute virtual time `t` (>= now). Returns an id
  /// usable with cancel().
  EventId schedule_at(VirtualTime t, EventFn fn);

  /// Schedules `fn` after a relative delay (clamped to >= 0).
  EventId schedule_after(VirtualDuration delay, EventFn fn);

  /// Cancels a pending event; no-op if it already ran or was cancelled.
  void cancel(EventId id);

  /// Runs events until the queue is empty.
  void run();

  /// Runs events with time <= deadline; leaves later events queued and
  /// advances the clock to the deadline.
  void run_until(VirtualTime deadline);

  u64 events_processed() const { return processed_; }
  usize pending_events() const { return queue_.size(); }

 private:
  using Key = std::pair<double, EventId>;  // (seconds, seq) for stable order

  VirtualTime now_;
  EventId next_id_ = 1;
  u64 processed_ = 0;
  std::map<Key, EventFn> queue_;
  std::unordered_map<EventId, Key> keys_;
};

}  // namespace staratlas
