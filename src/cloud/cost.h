// Cloud cost accounting: per-second instance billing plus categorized
// extras (storage, requests). Powers the paper's cost-minimization goal.
#pragma once

#include <map>
#include <string>

#include "cloud/instance_types.h"
#include "common/types.h"

namespace staratlas {

class CostMeter {
 public:
  /// Bills `seconds` of one instance (per-second billing, like EC2 Linux).
  void add_instance_time(const InstanceType& type, double seconds, bool spot);

  /// Adds an arbitrary categorized cost (e.g. "s3_storage").
  void add(const std::string& category, double usd);

  double total_usd() const;
  double category_usd(const std::string& category) const;
  const std::map<std::string, double>& breakdown() const { return by_category_; }
  double instance_hours() const { return instance_hours_; }

 private:
  std::map<std::string, double> by_category_;
  double instance_hours_ = 0.0;
};

}  // namespace staratlas
