#include "cloud/asg.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace staratlas {

AutoScalingGroup::AutoScalingGroup(SimKernel& kernel, Ec2Fleet& fleet,
                                   const InstanceType& type, bool spot,
                                   AsgPolicy policy,
                                   std::function<usize()> backlog_fn)
    : AutoScalingGroup(kernel, fleet, type, spot ? 1.0 : 0.0, policy,
                       std::move(backlog_fn)) {}

AutoScalingGroup::AutoScalingGroup(SimKernel& kernel, Ec2Fleet& fleet,
                                   const InstanceType& type,
                                   double spot_fraction, AsgPolicy policy,
                                   std::function<usize()> backlog_fn)
    : kernel_(&kernel),
      fleet_(&fleet),
      type_(&type),
      spot_fraction_(spot_fraction),
      policy_(policy),
      backlog_fn_(std::move(backlog_fn)) {
  STARATLAS_CHECK(spot_fraction_ >= 0.0 && spot_fraction_ <= 1.0);
  STARATLAS_CHECK(policy_.min_size <= policy_.max_size);
  STARATLAS_CHECK(policy_.target_backlog_per_instance > 0.0);
  STARATLAS_CHECK(backlog_fn_ != nullptr);
  desired_ = policy_.min_size;
}

void AutoScalingGroup::start() {
  if (running_) return;
  running_ = true;
  evaluate();
}

void AutoScalingGroup::stop() {
  if (!running_) return;
  running_ = false;
  kernel_->cancel(timer_);
}

void AutoScalingGroup::evaluate() {
  if (!running_) return;
  const usize backlog = backlog_fn_();
  const usize by_backlog = static_cast<usize>(std::ceil(
      static_cast<double>(backlog) / policy_.target_backlog_per_instance));
  desired_ = std::clamp(by_backlog, policy_.min_size, policy_.max_size);

  const usize running = fleet_->running_count();
  if (desired_ > running) {
    const usize to_launch = desired_ - running;
    for (usize i = 0; i < to_launch; ++i) {
      // Deterministic spot/on-demand interleave: launch n is spot iff the
      // integer spot quota floor(n * fraction) advances at n. Fractions
      // 0 and 1 degenerate to pure fleets, so classic configs see the
      // exact historical launch sequence.
      ++launches_;
      const bool spot =
          std::floor(static_cast<double>(launches_) * spot_fraction_) >
          std::floor(static_cast<double>(launches_ - 1) * spot_fraction_);
      fleet_->launch(*type_, spot);
    }
    ++scale_outs_;
  }
  // Scale-in happens by worker attrition via should_release().

  timer_ = kernel_->schedule_after(policy_.evaluation_period,
                                   [this] { evaluate(); });
}

bool AutoScalingGroup::should_release() {
  return fleet_->running_count() > desired_;
}

}  // namespace staratlas
