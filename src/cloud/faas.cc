#include "cloud/faas.h"

#include <cmath>

#include "common/error.h"

namespace staratlas {

double FaasClass::invoke_cost(double seconds) const {
  const double billed_ms = std::ceil(std::max(0.0, seconds) * 1000.0);
  const double gb = static_cast<double>(memory.bytes()) / 1e9;
  return billed_ms / 1000.0 * gb * usd_per_gb_second + usd_per_invocation;
}

InstanceType FaasClass::as_instance() const {
  InstanceType type;
  type.name = name;
  type.vcpus = static_cast<u32>(std::max(1.0, std::round(vcpus)));
  type.memory = memory;
  type.on_demand_hourly = invoke_cost(3600.0);
  type.spot_hourly = type.on_demand_hourly;  // no spot market for functions
  type.network_gbps = network_gbps;
  return type;
}

const std::vector<FaasClass>& faas_catalog() {
  // vCPU share = memory MB / 1769 (Lambda's allocation rule); cold starts
  // grow mildly with package/runtime size. Defaults for the billing
  // fields come from the struct initializers.
  static const std::vector<FaasClass> kCatalog = [] {
    std::vector<FaasClass> catalog;
    const auto add = [&](const char* name, double gb, double cold) {
      FaasClass cls;
      cls.name = name;
      cls.memory = ByteSize(static_cast<u64>(gb * 1e9));
      cls.vcpus = gb * 1000.0 / 1769.0;
      cls.cold_start_seconds = cold;
      catalog.push_back(cls);
    };
    add("fn-2gb", 2.0, 0.30);
    add("fn-4gb", 4.0, 0.35);
    add("fn-6gb", 6.0, 0.40);
    add("fn-8gb", 8.0, 0.45);
    add("fn-10gb", 10.0, 0.50);
    return catalog;
  }();
  return kCatalog;
}

const FaasClass& faas_class(const std::string& name) {
  for (const auto& cls : faas_catalog()) {
    if (cls.name == name) return cls;
  }
  throw InvalidArgument("unknown FaaS class: " + name);
}

}  // namespace staratlas
