#include "cloud/sqs.h"

#include "common/error.h"

namespace staratlas {

SqsQueue::SqsQueue(SimKernel& kernel, VirtualDuration visibility_timeout,
                   u32 max_receives)
    : kernel_(&kernel),
      visibility_timeout_(visibility_timeout),
      max_receives_(max_receives) {
  STARATLAS_CHECK(max_receives_ >= 1);
}

void SqsQueue::send(std::string body) {
  visible_.emplace_back(std::move(body), 0);
  ++stats_.sent;
}

std::optional<SqsMessage> SqsQueue::receive() {
  if (visible_.empty()) return std::nullopt;
  auto [body, prior_receives] = std::move(visible_.front());
  visible_.pop_front();

  const u64 receipt = next_receipt_++;
  SqsMessage message;
  message.body = body;
  message.receipt_handle = receipt;
  message.receive_count = prior_receives + 1;

  InFlight entry;
  entry.body = std::move(body);
  entry.receive_count = message.receive_count;
  entry.timer = kernel_->schedule_after(
      visibility_timeout_, [this, receipt] { expire(receipt); });
  in_flight_.emplace(receipt, std::move(entry));
  ++stats_.received;
  return message;
}

void SqsQueue::delete_message(u64 receipt_handle) {
  auto it = in_flight_.find(receipt_handle);
  if (it == in_flight_.end()) return;  // already expired: delete is a no-op
  kernel_->cancel(it->second.timer);
  in_flight_.erase(it);
  ++stats_.deleted;
}

void SqsQueue::return_message(u64 receipt_handle) {
  auto it = in_flight_.find(receipt_handle);
  if (it == in_flight_.end()) return;
  kernel_->cancel(it->second.timer);
  visible_.emplace_back(std::move(it->second.body), it->second.receive_count);
  in_flight_.erase(it);
}

bool SqsQueue::extend_visibility(u64 receipt_handle, VirtualDuration timeout) {
  auto it = in_flight_.find(receipt_handle);
  if (it == in_flight_.end()) return false;
  kernel_->cancel(it->second.timer);
  it->second.timer = kernel_->schedule_after(
      timeout, [this, receipt_handle] { expire(receipt_handle); });
  ++stats_.visibility_extended;
  return true;
}

void SqsQueue::expire(u64 receipt_handle) {
  auto it = in_flight_.find(receipt_handle);
  if (it == in_flight_.end()) return;
  ++stats_.visibility_expired;
  const bool dead = it->second.receive_count >= max_receives_;
  if (dead) {
    dlq_.push_back(std::move(it->second.body));
    ++stats_.dead_lettered;
  } else {
    visible_.emplace_back(std::move(it->second.body),
                          it->second.receive_count);
  }
  in_flight_.erase(it);
  // After the queue is consistent: the callback may inspect it freely.
  if (dead && on_dead_letter_) on_dead_letter_(dlq_.back());
}

}  // namespace staratlas
