#include "sra/repository.h"

#include "common/error.h"
#include "sra/container.h"

namespace staratlas {

SraRepository::SraRepository(std::vector<SraSample> catalog,
                             std::shared_ptr<const ReadSimulator> simulator)
    : catalog_(std::move(catalog)), simulator_(std::move(simulator)) {
  STARATLAS_CHECK(simulator_ != nullptr);
}

const SraSample& SraRepository::sample(const std::string& accession) const {
  for (const auto& s : catalog_) {
    if (s.accession == accession) return s;
  }
  throw InvalidArgument("unknown accession: " + accession);
}

const std::vector<u8>& SraRepository::fetch(const std::string& accession) {
  auto it = store_.find(accession);
  if (it != store_.end()) return it->second;

  const SraSample& meta = sample(accession);
  const LibraryProfile profile = profile_for(meta.type);
  const ReadSet reads =
      simulator_->simulate(profile, meta.num_reads, Rng(meta.seed));

  SraMetadata header;
  header.accession = meta.accession;
  header.library_type = meta.type;
  header.tissue = meta.tissue;
  header.num_reads = reads.size();
  for (const auto& read : reads.reads) header.total_bases += read.sequence.size();

  auto [inserted, ok] =
      store_.emplace(accession, sra_encode(header, reads.reads));
  STARATLAS_CHECK(ok);
  return inserted->second;
}

ByteSize SraRepository::container_bytes(const std::string& accession) {
  return ByteSize(fetch(accession).size());
}

}  // namespace staratlas
