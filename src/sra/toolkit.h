// sra-tools stand-ins: `prefetch` (repository -> local container) and
// `fasterq-dump` (container -> FASTQ ReadSet). Both do the real data work;
// the time each stage takes on cloud hardware is modeled separately by the
// pipeline's StageTimeModel (src/core), parameterized by the byte/read
// counts these tools report.
#pragma once

#include "common/types.h"
#include "common/units.h"
#include "io/fastq.h"
#include "sra/container.h"
#include "sra/repository.h"

namespace staratlas {

struct PrefetchResult {
  std::vector<u8> container;  ///< the downloaded .sra bytes
  ByteSize bytes_transferred;
  SraMetadata metadata;
};

/// Simulates `prefetch <accession>`: materializes and "downloads" the
/// container from the repository.
PrefetchResult prefetch(SraRepository& repository,
                        const std::string& accession);

struct DumpResult {
  ReadSet reads;
  SraMetadata metadata;
  ByteSize fastq_bytes;  ///< size of the decoded FASTQ representation
};

/// Simulates `fasterq-dump`: decodes a container into FASTQ reads.
DumpResult fasterq_dump(const std::vector<u8>& container);

}  // namespace staratlas
