// sra-tools stand-ins: `prefetch` (repository -> local container) and
// `fasterq-dump` (container -> FASTQ ReadSet). Both do the real data work;
// the time each stage takes on cloud hardware is modeled separately by the
// pipeline's StageTimeModel (src/core), parameterized by the byte/read
// counts these tools report.
#pragma once

#include <functional>

#include "common/types.h"
#include "common/units.h"
#include "io/fastq.h"
#include "sra/container.h"
#include "sra/repository.h"

namespace staratlas {

struct PrefetchResult {
  std::vector<u8> container;  ///< the downloaded .sra bytes
  ByteSize bytes_transferred;
  SraMetadata metadata;
};

/// Simulates `prefetch <accession>`: materializes and "downloads" the
/// container from the repository.
PrefetchResult prefetch(SraRepository& repository,
                        const std::string& accession);

/// Bounded exponential backoff for flaky downloads (sra-tools' prefetch
/// retries transient NCBI failures the same way).
struct PrefetchRetryPolicy {
  u32 max_attempts = 4;
  double backoff_base_secs = 1.0;
  double backoff_multiplier = 2.0;

  /// Delay before the retry after `failed_attempts` (>= 1) failures.
  double backoff_secs(u32 failed_attempts) const;
};

struct PrefetchOutcome {
  PrefetchResult result;
  u32 attempts = 1;          ///< tries used, including the successful one
  double backoff_secs = 0.0; ///< total backoff the caller owes (simulated)
};

/// `prefetch` with bounded retry-with-backoff. `fail_attempt(attempt)`
/// (1-based) reports whether that try hits a transient transfer fault —
/// bind a FaultInjector, a flaky-network stub, or a test lambda; pass
/// nullptr for the never-failing default. Throws IoError when all
/// attempts fail.
PrefetchOutcome prefetch_with_retry(
    SraRepository& repository, const std::string& accession,
    const std::function<bool(u32 attempt)>& fail_attempt,
    const PrefetchRetryPolicy& policy = {});

struct DumpResult {
  ReadSet reads;
  SraMetadata metadata;
  ByteSize fastq_bytes;  ///< size of the decoded FASTQ representation
};

/// Simulates `fasterq-dump`: decodes a container into FASTQ reads.
DumpResult fasterq_dump(const std::vector<u8>& container);

/// Streaming form of fasterq-dump: yields batches of decoded reads on
/// demand so the pipeline can overlap the dump stage with alignment
/// (AlignmentEngine::run_stream) instead of materializing the whole
/// ReadSet first. Borrows the container; it must outlive the stream.
class FasterqDumpStream {
 public:
  explicit FasterqDumpStream(const std::vector<u8>& container)
      : decoder_(container) {}

  const SraMetadata& metadata() const { return decoder_.metadata(); }

  /// Decodes up to `max_reads` records into `batch` (appended). Returns
  /// the count appended; 0 means the container is fully decoded and the
  /// total-bases invariant has been verified.
  usize next_batch(ReadBatch& batch, usize max_reads) {
    return decoder_.next_batch(batch, max_reads);
  }

  u64 records_dumped() const { return decoder_.records_decoded(); }

  /// FASTQ-serialized size of everything dumped so far.
  ByteSize fastq_bytes() const { return ByteSize(decoder_.serialized_bytes()); }

 private:
  SraStreamDecoder decoder_;
};

}  // namespace staratlas
