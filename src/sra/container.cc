#include "sra/container.h"

#include <algorithm>
#include <sstream>
#include <streambuf>

#include "common/error.h"
#include "index/packed_sequence.h"
#include "io/binary.h"

namespace staratlas {

namespace {
constexpr u32 kSraMagic = 0x53524131;  // "SRA1"
constexpr u32 kSraVersion = 1;

/// Read-only streambuf over caller-owned bytes: lets the stream decoder
/// walk a container without first copying it into a stringstream.
class MemoryBuf : public std::streambuf {
 public:
  MemoryBuf(const char* data, usize size) {
    char* p = const_cast<char*>(data);
    setg(p, p, p + size);
  }
};

/// Inverse of PackedSequence packing over raw codec fields, with the
/// validation a corrupt container needs, writing into a reused buffer.
void unpack_sequence(u64 length, const std::vector<u8>& codes,
                     const std::vector<u64>& n_positions, std::string& out) {
  if (codes.size() != (length + 3) / 4) {
    throw ParseError("SRA container: sequence codes length mismatch");
  }
  if (!std::is_sorted(n_positions.begin(), n_positions.end()) ||
      (!n_positions.empty() && n_positions.back() >= length)) {
    throw ParseError("SRA container: corrupt N-position overlay");
  }
  PackedSequence::unpack_raw(length, codes.data(), n_positions.data(),
                             n_positions.size(), out);
}

/// rle_decode into a reused buffer.
void rle_decode_into(const std::vector<u8>& encoded, std::string& out) {
  if (encoded.size() % 2 != 0) throw ParseError("RLE stream has odd length");
  out.clear();
  for (usize i = 0; i < encoded.size(); i += 2) {
    const char c = static_cast<char>(encoded[i]);
    const usize run = encoded[i + 1];
    if (run == 0) throw ParseError("RLE run of zero");
    out.append(run, c);
  }
}

void write_header(BinaryWriter& writer, const SraMetadata& metadata) {
  writer.write_u32(kSraMagic);
  writer.write_u32(kSraVersion);
  writer.write_string(metadata.accession);
  writer.write_u8(static_cast<u8>(metadata.library_type));
  writer.write_string(metadata.tissue);
  writer.write_u64(metadata.num_reads);
  writer.write_u64(metadata.total_bases);
}

SraMetadata read_header(BinaryReader& reader) {
  if (reader.read_u32() != kSraMagic) {
    throw ParseError("not an SRA container (bad magic)");
  }
  const u32 version = reader.read_u32();
  if (version != kSraVersion) {
    throw ParseError("unsupported SRA container version " +
                     std::to_string(version));
  }
  SraMetadata metadata;
  metadata.accession = reader.read_string();
  metadata.library_type = static_cast<LibraryType>(reader.read_u8());
  metadata.tissue = reader.read_string();
  metadata.num_reads = reader.read_u64();
  metadata.total_bases = reader.read_u64();
  return metadata;
}
}  // namespace

std::vector<u8> rle_encode(const std::string& text) {
  std::vector<u8> out;
  usize i = 0;
  while (i < text.size()) {
    const char c = text[i];
    usize run = 1;
    while (i + run < text.size() && text[i + run] == c && run < 255) ++run;
    out.push_back(static_cast<u8>(c));
    out.push_back(static_cast<u8>(run));
    i += run;
  }
  return out;
}

std::string rle_decode(const std::vector<u8>& encoded) {
  std::string out;
  rle_decode_into(encoded, out);
  return out;
}

std::vector<u8> sra_encode(const SraMetadata& metadata,
                           const std::vector<FastqRecord>& reads) {
  STARATLAS_CHECK(metadata.num_reads == reads.size());
  std::ostringstream buffer(std::ios::binary);
  BinaryWriter writer(buffer);
  write_header(writer, metadata);
  for (const auto& read : reads) {
    writer.write_string(read.name);
    const PackedSequence packed = PackedSequence::pack(read.sequence);
    writer.write_u64(packed.size());
    writer.write_bytes(packed.codes());
    writer.write_pod_vector(packed.n_positions());
    writer.write_bytes(rle_encode(read.quality));
  }
  const std::string str = buffer.str();
  return std::vector<u8>(str.begin(), str.end());
}

SraMetadata sra_peek(const std::vector<u8>& container) {
  std::istringstream in(
      std::string(container.begin(), container.end()), std::ios::binary);
  BinaryReader reader(in);
  return read_header(reader);
}

std::pair<SraMetadata, std::vector<FastqRecord>> sra_decode(
    const std::vector<u8>& container) {
  SraStreamDecoder decoder(container);
  std::vector<FastqRecord> reads;
  // Reserve defensively: a corrupted header must not drive allocation.
  reads.reserve(std::min<u64>(decoder.metadata().num_reads, 1u << 20));
  FastqRecord read;
  while (decoder.next(read)) reads.push_back(std::move(read));
  return {decoder.metadata(), std::move(reads)};
}

struct SraStreamDecoder::Cursor {
  MemoryBuf buf;
  std::istream in;
  BinaryReader reader;
  // Per-record scratch, reused so steady-state decode stops allocating.
  std::vector<u8> codes;
  std::vector<u64> n_positions;
  std::vector<u8> rle;
  FastqRecord rec;

  explicit Cursor(const std::vector<u8>& container)
      : buf(reinterpret_cast<const char*>(container.data()), container.size()),
        in(&buf),
        reader(in) {}
};

SraStreamDecoder::SraStreamDecoder(const std::vector<u8>& container)
    : cursor_(std::make_unique<Cursor>(container)) {
  metadata_ = read_header(cursor_->reader);
}

SraStreamDecoder::~SraStreamDecoder() = default;

bool SraStreamDecoder::next(FastqRecord& out) {
  if (done_) return false;
  if (decoded_ == metadata_.num_reads) {
    done_ = true;
    if (total_bases_seen_ != metadata_.total_bases) {
      throw ParseError("SRA container: total_bases mismatch");
    }
    return false;
  }
  Cursor& c = *cursor_;
  c.reader.read_string_into(out.name);
  const u64 length = c.reader.read_u64();
  c.reader.read_bytes_into(c.codes);
  c.reader.read_pod_vector_into(c.n_positions);
  unpack_sequence(length, c.codes, c.n_positions, out.sequence);
  c.reader.read_bytes_into(c.rle);
  rle_decode_into(c.rle, out.quality);
  if (out.quality.size() != out.sequence.size()) {
    throw ParseError("SRA container: quality/sequence length mismatch");
  }
  total_bases_seen_ += length;
  ++decoded_;
  // '@' + name + '\n' + seq + '\n' + "+\n" + qual + '\n'
  bytes_ += 1 + out.name.size() + 1 + out.sequence.size() + 1 + 2 +
            out.quality.size() + 1;
  return true;
}

usize SraStreamDecoder::next_batch(ReadBatch& batch, usize max_reads) {
  usize appended = 0;
  while (appended < max_reads && next(cursor_->rec)) {
    batch.append(cursor_->rec.name, cursor_->rec.sequence,
                 cursor_->rec.quality);
    ++appended;
  }
  return appended;
}

}  // namespace staratlas
