#include "sra/container.h"

#include <algorithm>
#include <sstream>

#include "common/error.h"
#include "index/packed_sequence.h"
#include "io/binary.h"

namespace staratlas {

namespace {
constexpr u32 kSraMagic = 0x53524131;  // "SRA1"
constexpr u32 kSraVersion = 1;

void write_header(BinaryWriter& writer, const SraMetadata& metadata) {
  writer.write_u32(kSraMagic);
  writer.write_u32(kSraVersion);
  writer.write_string(metadata.accession);
  writer.write_u8(static_cast<u8>(metadata.library_type));
  writer.write_string(metadata.tissue);
  writer.write_u64(metadata.num_reads);
  writer.write_u64(metadata.total_bases);
}

SraMetadata read_header(BinaryReader& reader) {
  if (reader.read_u32() != kSraMagic) {
    throw ParseError("not an SRA container (bad magic)");
  }
  const u32 version = reader.read_u32();
  if (version != kSraVersion) {
    throw ParseError("unsupported SRA container version " +
                     std::to_string(version));
  }
  SraMetadata metadata;
  metadata.accession = reader.read_string();
  metadata.library_type = static_cast<LibraryType>(reader.read_u8());
  metadata.tissue = reader.read_string();
  metadata.num_reads = reader.read_u64();
  metadata.total_bases = reader.read_u64();
  return metadata;
}
}  // namespace

std::vector<u8> rle_encode(const std::string& text) {
  std::vector<u8> out;
  usize i = 0;
  while (i < text.size()) {
    const char c = text[i];
    usize run = 1;
    while (i + run < text.size() && text[i + run] == c && run < 255) ++run;
    out.push_back(static_cast<u8>(c));
    out.push_back(static_cast<u8>(run));
    i += run;
  }
  return out;
}

std::string rle_decode(const std::vector<u8>& encoded) {
  if (encoded.size() % 2 != 0) throw ParseError("RLE stream has odd length");
  std::string out;
  for (usize i = 0; i < encoded.size(); i += 2) {
    const char c = static_cast<char>(encoded[i]);
    const usize run = encoded[i + 1];
    if (run == 0) throw ParseError("RLE run of zero");
    out.append(run, c);
  }
  return out;
}

std::vector<u8> sra_encode(const SraMetadata& metadata,
                           const std::vector<FastqRecord>& reads) {
  STARATLAS_CHECK(metadata.num_reads == reads.size());
  std::ostringstream buffer(std::ios::binary);
  BinaryWriter writer(buffer);
  write_header(writer, metadata);
  for (const auto& read : reads) {
    writer.write_string(read.name);
    const PackedSequence packed = PackedSequence::pack(read.sequence);
    writer.write_u64(packed.size());
    writer.write_bytes(packed.codes());
    writer.write_pod_vector(packed.n_positions());
    writer.write_bytes(rle_encode(read.quality));
  }
  const std::string str = buffer.str();
  return std::vector<u8>(str.begin(), str.end());
}

SraMetadata sra_peek(const std::vector<u8>& container) {
  std::istringstream in(
      std::string(container.begin(), container.end()), std::ios::binary);
  BinaryReader reader(in);
  return read_header(reader);
}

std::pair<SraMetadata, std::vector<FastqRecord>> sra_decode(
    const std::vector<u8>& container) {
  std::istringstream in(
      std::string(container.begin(), container.end()), std::ios::binary);
  BinaryReader reader(in);
  const SraMetadata metadata = read_header(reader);
  std::vector<FastqRecord> reads;
  // Reserve defensively: a corrupted header must not drive allocation.
  reads.reserve(std::min<u64>(metadata.num_reads, 1u << 20));
  u64 total_bases = 0;
  for (u64 r = 0; r < metadata.num_reads; ++r) {
    FastqRecord read;
    read.name = reader.read_string();
    const u64 length = reader.read_u64();
    std::vector<u8> codes = reader.read_bytes();
    std::vector<u64> n_positions = reader.read_pod_vector<u64>();
    read.sequence =
        PackedSequence::from_raw(length, std::move(codes), std::move(n_positions))
            .unpack();
    read.quality = rle_decode(reader.read_bytes());
    if (read.quality.size() != read.sequence.size()) {
      throw ParseError("SRA container: quality/sequence length mismatch");
    }
    total_bases += length;
    reads.push_back(std::move(read));
  }
  if (total_bases != metadata.total_bases) {
    throw ParseError("SRA container: total_bases mismatch");
  }
  return {metadata, std::move(reads)};
}

}  // namespace staratlas
