// In-process stand-in for the NCBI SRA repository: accession -> encoded
// container. Content is materialized lazily (simulating on first access)
// so a 1000-sample catalog does not cost 1000 upfront simulations.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/types.h"
#include "common/units.h"
#include "genome/synthesizer.h"
#include "sim/catalog.h"
#include "sim/read_simulator.h"

namespace staratlas {

class SraRepository {
 public:
  /// The repository simulates reads with `simulator` on first access.
  SraRepository(std::vector<SraSample> catalog,
                std::shared_ptr<const ReadSimulator> simulator);

  const std::vector<SraSample>& catalog() const { return catalog_; }

  /// Finds a sample by accession; throws InvalidArgument if absent.
  const SraSample& sample(const std::string& accession) const;

  /// Returns the encoded container for `accession`, materializing it on
  /// first access (deterministic in the sample's seed).
  const std::vector<u8>& fetch(const std::string& accession);

  /// Actual bytes of the materialized container (synthetic scale).
  ByteSize container_bytes(const std::string& accession);

  usize materialized_count() const { return store_.size(); }

 private:
  std::vector<SraSample> catalog_;
  std::shared_ptr<const ReadSimulator> simulator_;
  std::map<std::string, std::vector<u8>> store_;
};

}  // namespace staratlas
