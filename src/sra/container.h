// The ".sra" container codec: a compact binary run archive holding reads
// as 2-bit packed sequence plus run-length-encoded qualities. Stands in
// for NCBI's proprietary SRA format; like the real thing it is ~2-3x
// smaller than the FASTQ it decodes to, and decoding it is real work
// (fasterq-dump's role in the pipeline).
#pragma once

#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "common/types.h"
#include "common/units.h"
#include "io/fastq.h"
#include "io/read_batch.h"
#include "sim/library_profile.h"

namespace staratlas {

struct SraMetadata {
  std::string accession;
  LibraryType library_type = LibraryType::kBulk;
  std::string tissue;
  u64 num_reads = 0;
  u64 total_bases = 0;
};

/// Encodes reads into the container byte stream.
std::vector<u8> sra_encode(const SraMetadata& metadata,
                           const std::vector<FastqRecord>& reads);

/// Reads just the metadata header without decoding the payload.
SraMetadata sra_peek(const std::vector<u8>& container);

/// Decodes the full container. Round-trips sequences, names and qualities
/// exactly. Throws ParseError on corrupt input.
std::pair<SraMetadata, std::vector<FastqRecord>> sra_decode(
    const std::vector<u8>& container);

/// Incremental container decoder — the record-at-a-time engine under both
/// sra_decode (whole container) and the pipeline's streaming fasterq-dump
/// stage (batches under backpressure, so peak ingest memory is a few
/// batches, not the whole sample). The header is read and validated at
/// construction; records decode on demand with reused scratch buffers.
class SraStreamDecoder {
 public:
  /// Borrows `container`; it must outlive the decoder.
  explicit SraStreamDecoder(const std::vector<u8>& container);
  ~SraStreamDecoder();

  const SraMetadata& metadata() const { return metadata_; }

  /// Decodes the next record into `out` (buffers reused). Returns false
  /// at end of container — at which point the total-bases invariant has
  /// been checked. Throws ParseError/IoError on corruption, with the same
  /// messages as sra_decode.
  bool next(FastqRecord& out);

  /// Decodes up to `max_reads` records, appending them to `batch`.
  /// Returns the number appended (0 = end of container).
  usize next_batch(ReadBatch& batch, usize max_reads);

  u64 records_decoded() const { return decoded_; }

  /// Exact serialized 4-line FASTQ size of every record decoded so far
  /// (the whole sample once next() has returned false) — accumulated
  /// in-stream so ReadSet construction needs no O(records) re-walk.
  u64 serialized_bytes() const { return bytes_; }

 private:
  struct Cursor;  ///< stream + reader + scratch (keeps <sstream> out of the hot includes)
  SraMetadata metadata_;
  std::unique_ptr<Cursor> cursor_;
  u64 decoded_ = 0;
  u64 bytes_ = 0;
  bool done_ = false;
  u64 total_bases_seen_ = 0;
};

/// Run-length encodes a quality string ((char, count) pairs).
std::vector<u8> rle_encode(const std::string& text);
/// Inverse of rle_encode.
std::string rle_decode(const std::vector<u8>& encoded);

}  // namespace staratlas
