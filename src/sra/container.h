// The ".sra" container codec: a compact binary run archive holding reads
// as 2-bit packed sequence plus run-length-encoded qualities. Stands in
// for NCBI's proprietary SRA format; like the real thing it is ~2-3x
// smaller than the FASTQ it decodes to, and decoding it is real work
// (fasterq-dump's role in the pipeline).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.h"
#include "common/units.h"
#include "io/fastq.h"
#include "sim/library_profile.h"

namespace staratlas {

struct SraMetadata {
  std::string accession;
  LibraryType library_type = LibraryType::kBulk;
  std::string tissue;
  u64 num_reads = 0;
  u64 total_bases = 0;
};

/// Encodes reads into the container byte stream.
std::vector<u8> sra_encode(const SraMetadata& metadata,
                           const std::vector<FastqRecord>& reads);

/// Reads just the metadata header without decoding the payload.
SraMetadata sra_peek(const std::vector<u8>& container);

/// Decodes the full container. Round-trips sequences, names and qualities
/// exactly. Throws ParseError on corrupt input.
std::pair<SraMetadata, std::vector<FastqRecord>> sra_decode(
    const std::vector<u8>& container);

/// Run-length encodes a quality string ((char, count) pairs).
std::vector<u8> rle_encode(const std::string& text);
/// Inverse of rle_encode.
std::string rle_decode(const std::vector<u8>& encoded);

}  // namespace staratlas
