#include "sra/toolkit.h"

namespace staratlas {

PrefetchResult prefetch(SraRepository& repository,
                        const std::string& accession) {
  PrefetchResult result;
  result.container = repository.fetch(accession);
  result.bytes_transferred = ByteSize(result.container.size());
  result.metadata = sra_peek(result.container);
  return result;
}

DumpResult fasterq_dump(const std::vector<u8>& container) {
  DumpResult result;
  auto [metadata, reads] = sra_decode(container);
  result.metadata = std::move(metadata);
  result.reads = make_read_set(std::move(reads));
  result.fastq_bytes = result.reads.fastq_bytes;
  return result;
}

}  // namespace staratlas
