#include "sra/toolkit.h"

#include <algorithm>

#include "common/error.h"

namespace staratlas {

double PrefetchRetryPolicy::backoff_secs(u32 failed_attempts) const {
  double delay = backoff_base_secs;
  for (u32 i = 1; i < failed_attempts; ++i) delay *= backoff_multiplier;
  return delay;
}

PrefetchResult prefetch(SraRepository& repository,
                        const std::string& accession) {
  PrefetchResult result;
  result.container = repository.fetch(accession);
  result.bytes_transferred = ByteSize(result.container.size());
  result.metadata = sra_peek(result.container);
  return result;
}

PrefetchOutcome prefetch_with_retry(
    SraRepository& repository, const std::string& accession,
    const std::function<bool(u32 attempt)>& fail_attempt,
    const PrefetchRetryPolicy& policy) {
  STARATLAS_CHECK(policy.max_attempts >= 1);
  PrefetchOutcome outcome;
  for (u32 attempt = 1; attempt <= policy.max_attempts; ++attempt) {
    if (!fail_attempt || !fail_attempt(attempt)) {
      outcome.result = prefetch(repository, accession);
      outcome.attempts = attempt;
      return outcome;
    }
    if (attempt == policy.max_attempts) break;
    outcome.backoff_secs += policy.backoff_secs(attempt);
  }
  throw IoError("prefetch " + accession + " failed after " +
                std::to_string(policy.max_attempts) + " attempts");
}

DumpResult fasterq_dump(const std::vector<u8>& container) {
  DumpResult result;
  SraStreamDecoder decoder(container);
  std::vector<FastqRecord> reads;
  reads.reserve(std::min<u64>(decoder.metadata().num_reads, 1u << 20));
  FastqRecord read;
  while (decoder.next(read)) reads.push_back(std::move(read));
  result.metadata = decoder.metadata();
  // The decoder accumulated the serialized size in-stream, so ReadSet
  // construction needs no O(records) re-walk.
  result.reads = make_read_set(std::move(reads),
                               ByteSize(decoder.serialized_bytes()));
  result.fastq_bytes = result.reads.fastq_bytes;
  return result;
}

}  // namespace staratlas
