#include "core/planner.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"

namespace staratlas {

AtlasConfig planner_config(const PlannerQuery& query,
                           const PlanCandidate& candidate) {
  AtlasConfig config;
  config.instance_type = candidate.instance;
  config.pipeline = query.cloud.pipeline;
  config.genome_release = query.cloud.genome_release;
  config.index_bytes = query.cloud.index_bytes;
  config.index_load_path = candidate.load_path;
  config.align_threads = candidate.threads;
  config.spot = candidate.spot_mix >= 1.0;
  config.spot_mix = candidate.spot_mix;
  config.asg.max_size = query.max_fleet;
  config.early_stop = query.early_stop;
  config.stages = query.cloud.stages;
  config.boot_delay = query.boot_delay;
  config.mean_time_to_interruption = query.mean_time_to_interruption;
  return config;
}

PlannerResult plan_campaign(const PlannerQuery& query) {
  STARATLAS_CHECK(!query.catalog.empty());
  STARATLAS_CHECK(!query.thread_choices.empty());
  STARATLAS_CHECK(!query.load_path_choices.empty());
  STARATLAS_CHECK(!query.spot_mix_choices.empty());
  for (double mix : query.spot_mix_choices) {
    STARATLAS_CHECK(mix >= 0.0 && mix <= 1.0);
  }

  std::vector<const InstanceType*> instances;
  if (query.instance_names.empty()) {
    for (const InstanceType& type : instance_catalog()) {
      instances.push_back(&type);
    }
  } else {
    for (const std::string& name : query.instance_names) {
      instances.push_back(&instance_type(name));
    }
  }

  PlannerResult result;
  const ByteSize needed = query.cloud.required_memory();
  for (const InstanceType* type : instances) {
    for (u32 threads : query.thread_choices) {
      for (IndexLoadPath load_path : query.load_path_choices) {
        for (double spot_mix : query.spot_mix_choices) {
          PlanCandidate candidate;
          candidate.instance = type->name;
          candidate.threads = threads;
          candidate.load_path = load_path;
          candidate.spot_mix = spot_mix;
          if (type->memory < needed) {
            candidate.feasible = false;
            candidate.infeasible_reason = "needs " + needed.str() +
                                          " RAM, has " + type->memory.str();
            result.candidates.push_back(std::move(candidate));
            continue;
          }
          candidate.feasible = true;
          candidate.estimate = estimate_campaign(
              query.catalog, planner_config(query, candidate));
          candidate.meets_deadline =
              query.deadline_hours <= 0.0 ||
              candidate.estimate.makespan_hours <= query.deadline_hours;
          candidate.meets_budget =
              query.budget_usd <= 0.0 ||
              candidate.estimate.ec2_cost_usd <= query.budget_usd;
          result.candidates.push_back(std::move(candidate));
        }
      }
    }
  }

  // Pareto frontier over (cost, makespan): sweep cost-ascending, keep
  // candidates that strictly improve makespan.
  std::vector<usize> feasible;
  for (usize i = 0; i < result.candidates.size(); ++i) {
    if (result.candidates[i].feasible) feasible.push_back(i);
  }
  std::sort(feasible.begin(), feasible.end(), [&](usize a, usize b) {
    const PlanCandidate& ca = result.candidates[a];
    const PlanCandidate& cb = result.candidates[b];
    if (ca.est_cost_usd() != cb.est_cost_usd()) {
      return ca.est_cost_usd() < cb.est_cost_usd();
    }
    if (ca.est_makespan_hours() != cb.est_makespan_hours()) {
      return ca.est_makespan_hours() < cb.est_makespan_hours();
    }
    return a < b;  // deterministic tiebreak
  });
  double best_makespan = std::numeric_limits<double>::infinity();
  for (usize index : feasible) {
    const PlanCandidate& candidate = result.candidates[index];
    if (candidate.est_makespan_hours() < best_makespan) {
      result.frontier.push_back(index);
      best_makespan = candidate.est_makespan_hours();
    }
  }

  // Best: cheapest feasible candidate meeting both constraints.
  for (usize index : feasible) {
    const PlanCandidate& candidate = result.candidates[index];
    if (candidate.meets_deadline && candidate.meets_budget) {
      result.best = index;
      break;  // feasible[] is cost-ascending
    }
  }
  return result;
}

void validate_frontier(const PlannerQuery& query, PlannerResult& result,
                       usize max_points) {
  const usize count = max_points == 0
                          ? result.frontier.size()
                          : std::min(max_points, result.frontier.size());
  for (usize i = 0; i < count; ++i) {
    const usize index = result.frontier[i];
    const PlanCandidate& candidate = result.candidates[index];
    AtlasSimulation sim(query.catalog, planner_config(query, candidate));
    const AtlasReport report = sim.run();
    FrontierValidation validation;
    validation.candidate_index = index;
    validation.sim_makespan_hours = report.makespan_hours;
    validation.sim_cost_usd = report.ec2_cost_usd;
    validation.makespan_rel_error =
        report.makespan_hours > 0.0
            ? std::abs(candidate.est_makespan_hours() -
                       report.makespan_hours) /
                  report.makespan_hours
            : 0.0;
    validation.cost_rel_error =
        report.ec2_cost_usd > 0.0
            ? std::abs(candidate.est_cost_usd() - report.ec2_cost_usd) /
                  report.ec2_cost_usd
            : 0.0;
    result.validations.push_back(validation);
  }
}

PlannerQuery planner_query_from(const RightSizingQuery& query,
                                std::vector<SraSample> catalog) {
  PlannerQuery planner;
  planner.cloud = query.cloud;
  planner.catalog = std::move(catalog);
  planner.load_path_choices = {query.cloud.index_load_path};
  planner.spot_mix_choices = {query.spot ? 1.0 : 0.0};
  return planner;
}

}  // namespace staratlas
