#include "core/report.h"

#include <cstdarg>
#include <cstdio>
#include <ostream>

#include "common/error.h"

namespace staratlas {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  STARATLAS_CHECK(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  STARATLAS_CHECK(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& out) const {
  std::vector<usize> widths(headers_.size());
  for (usize c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (usize c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (usize c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "" : "  ");
      out << row[c];
      for (usize pad = row[c].size(); pad < widths[c]; ++pad) out << ' ';
    }
    out << '\n';
  };
  print_row(headers_);
  usize total = 0;
  for (usize c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c == 0 ? 0 : 2);
  }
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string strf(const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  return buf;
}

}  // namespace staratlas
