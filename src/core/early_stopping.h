// Forwarding header: early stopping moved to src/align (the engine's
// EngineRunRequest carries an EarlyStopPolicy, and align must not depend
// on core). Include align/early_stopping.h directly in new code.
#pragma once

#include "align/early_stopping.h"  // IWYU pragma: export
