// Early stopping for STAR alignment (paper §III.B).
//
// STAR reports the running mapped-read percentage in Log.progress.out.
// The paper's analysis of 1000 runs showed that once 10% of reads are
// processed the final mapping rate is already predictable, so alignments
// whose rate is below the atlas acceptance threshold (30%) can be aborted,
// saving ~19.5% of total STAR compute. The controller below implements
// that rule against our engine's progress stream.
#pragma once

#include "align/engine.h"
#include "common/types.h"

namespace staratlas {

struct EarlyStopPolicy {
  bool enabled = true;
  /// Fraction of reads processed before the one-shot decision (paper: 10%).
  double checkpoint_fraction = 0.10;
  /// Minimum acceptable mapping rate (paper: 30%).
  double min_mapped_rate = 0.30;

  void validate() const;
};

struct EarlyStopDecision {
  bool evaluated = false;     ///< checkpoint reached
  bool stopped = false;       ///< alignment aborted
  double observed_rate = 0.0; ///< mapped rate at the checkpoint
  double at_fraction = 0.0;   ///< actual fraction processed at decision
  u64 at_reads = 0;
};

/// Pure decision rule (used by both the live controller and the cloud
/// simulator): stop iff the policy is enabled and the observed rate at the
/// checkpoint is below the threshold.
bool early_stop_decision(const EarlyStopPolicy& policy, double observed_rate);

/// Attaches the paper's rule to an AlignmentEngine progress stream.
/// One-shot: evaluates at the first snapshot at/after the checkpoint.
class EarlyStopController {
 public:
  explicit EarlyStopController(const EarlyStopPolicy& policy);

  /// The callback to pass to AlignmentEngine::run. The controller must
  /// outlive the run.
  ProgressCallback callback();

  const EarlyStopDecision& decision() const { return decision_; }

 private:
  EarlyStopPolicy policy_;
  EarlyStopDecision decision_;
};

}  // namespace staratlas
