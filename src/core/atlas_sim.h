// AtlasSimulation: the paper's Fig 2 architecture end to end, in virtual
// time — SQS queue of SRA accessions, an autoscaled (optionally spot) EC2
// fleet, per-instance boot-time index initialization, the four pipeline
// stages per sample, early stopping, S3 result uploads, and full cost
// accounting.
//
// Stage durations come from StageTimeModel (anchored to the paper's
// measured per-GiB STAR cost and this repo's measured release-108
// slowdown); each sample's mapping rate comes from MapRateModel
// (calibrated from real alignment runs).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "cloud/asg.h"
#include "cloud/cost.h"
#include "cloud/ec2.h"
#include "cloud/event_sim.h"
#include "cloud/metrics.h"
#include "cloud/s3.h"
#include "cloud/sqs.h"
#include "core/early_stopping.h"
#include "core/maprate_model.h"
#include "core/stage_model.h"
#include "sim/catalog.h"

namespace staratlas {

struct AtlasConfig {
  std::string instance_type = "r6a.4xlarge";
  bool spot = false;
  AsgPolicy asg{.min_size = 0,
                .max_size = 16,
                .target_backlog_per_instance = 2.0,
                .evaluation_period = VirtualDuration::minutes(1)};
  int genome_release = 111;
  /// Paper-scale index object size (85 GiB for r108, 29.5 GiB for r111).
  ByteSize index_bytes = ByteSize::from_gib(29.5);
  EarlyStopPolicy early_stop{};  ///< .enabled toggles the optimization
  StageTimeModel stages{};
  MapRateModel maprate{};
  VirtualDuration visibility_timeout = VirtualDuration::hours(8);
  VirtualDuration mean_time_to_interruption = VirtualDuration::hours(24);
  VirtualDuration poll_idle_backoff = VirtualDuration::seconds(20);
  /// Metrics sampling period (queue depth, fleet, cost, completions).
  VirtualDuration metrics_interval = VirtualDuration::minutes(5);
  u64 seed = 1234;

  /// Convenience: set release + matching paper-scale index size.
  void use_release(int release);
};

struct AtlasReport {
  usize samples_total = 0;
  usize samples_completed = 0;      ///< full alignment, accepted
  usize samples_early_stopped = 0;  ///< aborted at the checkpoint
  usize samples_rejected_late = 0;  ///< completed but below threshold
  usize samples_dead_lettered = 0;
  double makespan_hours = 0.0;
  double align_hours_spent = 0.0;
  double align_hours_saved = 0.0;       ///< by early stopping
  double unnecessary_align_hours = 0.0; ///< spent on ultimately rejected samples
  double prefetch_hours = 0.0;
  double dump_hours = 0.0;
  double init_hours = 0.0;  ///< index download + shm load across boots
  double total_cost_usd = 0.0;
  double ec2_cost_usd = 0.0;
  double instance_hours = 0.0;
  u64 interruptions = 0;
  usize peak_instances = 0;
  usize instances_launched = 0;
  /// Time series sampled during the run: "queue_depth",
  /// "instances_running", "cost_usd", "samples_done".
  MetricsRecorder metrics;

  double throughput_samples_per_hour() const {
    return makespan_hours > 0.0
               ? static_cast<double>(samples_completed + samples_early_stopped +
                                     samples_rejected_late) /
                     makespan_hours
               : 0.0;
  }
  double cost_per_sample_usd() const {
    const usize done =
        samples_completed + samples_early_stopped + samples_rejected_late;
    return done > 0 ? total_cost_usd / static_cast<double>(done) : 0.0;
  }
};

class AtlasSimulation {
 public:
  AtlasSimulation(std::vector<SraSample> catalog, AtlasConfig config);

  /// Runs the whole campaign to completion and returns the report.
  AtlasReport run();

 private:
  struct SampleRuntime {
    const SraSample* sample = nullptr;
    double true_rate = 0.0;
    bool done = false;  ///< guards against duplicate (redelivered) work
  };

  void sample_metrics();
  void worker_ready(u64 instance_id);
  void poll(u64 instance_id);
  void process(u64 instance_id, SqsMessage message);
  bool all_terminal() const;
  void maybe_finish();
  bool instance_alive(u64 instance_id) const;

  std::vector<SraSample> catalog_;
  AtlasConfig config_;
  const InstanceType* type_ = nullptr;

  SimKernel kernel_;
  CostMeter cost_;
  SpotMarket spot_market_;
  Ec2Fleet fleet_;
  SqsQueue queue_;
  S3Bucket index_bucket_{"atlas-index"};
  S3Bucket results_bucket_{"atlas-results"};
  AutoScalingGroup asg_;

  std::map<std::string, SampleRuntime> samples_;
  /// Receipt handle of the message each busy instance is working on, so a
  /// spot interruption (2-minute notice) can return it to the queue
  /// immediately instead of waiting out the visibility timeout.
  std::map<u64, u64> active_receipt_;
  Rng noise_rng_{0};
  AtlasReport report_;
  usize terminal_samples_ = 0;
  bool finished_ = false;
};

}  // namespace staratlas
