// AtlasSimulation: the paper's Fig 2 architecture end to end, in virtual
// time — SQS queue of SRA accessions, an autoscaled (optionally spot) EC2
// fleet, per-instance boot-time index initialization, the four pipeline
// stages per sample, early stopping, S3 result uploads, and full cost
// accounting.
//
// Stage durations come from StageTimeModel (anchored to the paper's
// measured per-GiB STAR cost and this repo's measured release-108
// slowdown); each sample's mapping rate comes from MapRateModel
// (calibrated from real alignment runs).
//
// Execution is a per-stage state machine (prefetch -> dump -> align to the
// early-stop checkpoint -> align rest -> postprocess -> upload): each stage
// completion is its own kernel event, so a spot interruption lands inside a
// specific stage and the partial hours burned on the reclaimed instance are
// accounted as wasted work (workers are stateless, matching the paper — a
// redelivered sample restarts from scratch). A periodic visibility
// heartbeat (the ChangeMessageVisibility analog) keeps long alignments from
// spuriously expiring against the queue's visibility timeout, and a
// deterministic FaultInjector can perturb the transfer stages (prefetch,
// S3 upload) to exercise bounded retry-with-backoff and requeue paths.
#pragma once

#include <array>
#include <map>
#include <string>
#include <vector>

#include "cloud/asg.h"
#include "cloud/cost.h"
#include "cloud/ec2.h"
#include "cloud/event_sim.h"
#include "cloud/fault.h"
#include "cloud/metrics.h"
#include "cloud/s3.h"
#include "cloud/sqs.h"
#include "align/early_stop_policy.h"
#include "core/maprate_model.h"
#include "core/stage_graph.h"
#include "core/stage_model.h"
#include "sim/catalog.h"

namespace staratlas {

struct AtlasConfig {
  std::string instance_type = "r6a.4xlarge";
  bool spot = false;
  /// Spot share of the fleet's launches, in [0,1]; negative = derive
  /// from the `spot` bool (the planner's spot-mix dimension — 0.0 and
  /// 1.0 reproduce the pure fleets exactly).
  double spot_mix = -1.0;
  /// Pipeline to run, looked up in the PipelineCatalog ("alignment" is
  /// the paper's 4-stage chain; "variant_calling" proves the scheduler
  /// is workload-agnostic).
  std::string pipeline = "alignment";
  /// Thread cap for compute stages; 0 = all instance vCPUs (the
  /// planner's thread-count dimension; default leaves costs unchanged).
  u32 align_threads = 0;
  /// How workers materialize the index at boot (the planner's load-path
  /// dimension; kStream is the historical default).
  IndexLoadPath index_load_path = IndexLoadPath::kStream;
  AsgPolicy asg{.min_size = 0,
                .max_size = 16,
                .target_backlog_per_instance = 2.0,
                .evaluation_period = VirtualDuration::minutes(1)};
  int genome_release = 111;
  /// Paper-scale index object size (85 GiB for r108, 29.5 GiB for r111).
  ByteSize index_bytes = ByteSize::from_gib(29.5);
  EarlyStopPolicy early_stop{};  ///< .enabled toggles the optimization
  StageTimeModel stages{};
  MapRateModel maprate{};
  VirtualDuration visibility_timeout = VirtualDuration::hours(8);
  /// SQS redrive policy: deliveries before a message dead-letters.
  u32 max_receives = 5;
  /// Periodic ChangeMessageVisibility heartbeat while a sample is being
  /// processed. Zero means "auto": half the visibility timeout.
  VirtualDuration heartbeat_interval = VirtualDuration::zero();
  bool heartbeat_enabled = true;
  /// Deterministic fault injection (transfer failures). Disabled by
  /// default: a disabled injector draws no randomness, so fault-free runs
  /// are unchanged.
  FaultConfig faults{};
  VirtualDuration mean_time_to_interruption = VirtualDuration::hours(24);
  /// EC2 pending->running boot delay (plumbed to both the fleet model and
  /// the closed-form estimator so they agree by construction).
  VirtualDuration boot_delay = VirtualDuration::seconds(45);
  VirtualDuration poll_idle_backoff = VirtualDuration::seconds(20);
  /// Metrics sampling period (queue depth, fleet, cost, completions).
  VirtualDuration metrics_interval = VirtualDuration::minutes(5);
  u64 seed = 1234;

  /// Convenience: set release + matching paper-scale index size.
  void use_release(int release);

  /// The spot launch fraction the fleet actually uses (resolves the
  /// spot_mix = negative "derive from the spot bool" default).
  double effective_spot_fraction() const {
    if (spot_mix >= 0.0) return spot_mix;
    return spot ? 1.0 : 0.0;
  }

  /// Effective heartbeat period (resolves the zero = auto default).
  VirtualDuration effective_heartbeat_interval() const;
};

struct AtlasReport {
  usize samples_total = 0;
  usize samples_completed = 0;      ///< full alignment, accepted
  usize samples_early_stopped = 0;  ///< aborted at the checkpoint
  usize samples_rejected_late = 0;  ///< completed but below threshold
  usize samples_dead_lettered = 0;  ///< accessions lost to the DLQ
  double makespan_hours = 0.0;
  double align_hours_spent = 0.0;
  double align_hours_saved = 0.0;       ///< by early stopping
  double unnecessary_align_hours = 0.0; ///< spent on ultimately rejected samples
  double prefetch_hours = 0.0;
  double dump_hours = 0.0;
  double init_hours = 0.0;  ///< index download + shm load, as actually run
  double total_cost_usd = 0.0;
  double ec2_cost_usd = 0.0;
  double instance_hours = 0.0;
  u64 interruptions = 0;
  usize peak_instances = 0;
  usize instances_launched = 0;

  // --- fault-tolerance accounting (the true interruption tax) ---
  /// Partial per-sample hours burned on spot-reclaimed instances; the
  /// redelivered sample restarts from scratch, so this work is lost.
  double wasted_hours_interrupted = 0.0;
  /// Sample hours discarded by transfer-retry exhaustion (burned attempt
  /// fractions, backoff idle time, and prior completed stages redone
  /// after the requeue).
  double wasted_hours_transfer = 0.0;
  /// Per-stage breakdown; sums to wasted_hours_interrupted +
  /// wasted_hours_transfer. Indexed by the pipeline graph's StageId
  /// (== SampleStage order for the default alignment pipeline).
  std::vector<double> wasted_hours_stage =
      std::vector<double>(kNumSampleStages, 0.0);
  /// Stage labels, index-aligned with wasted_hours_stage (the graph's
  /// node names; filled by run()).
  std::vector<std::string> stage_names;
  /// Partial boot-time index initialization lost to reclaims (also
  /// included in init_hours — it did run, it just bought nothing).
  double wasted_init_hours = 0.0;
  usize requeues_interrupted = 0;  ///< messages returned on spot notice
  usize requeues_transfer = 0;     ///< requeues after retry exhaustion
  u64 transfer_faults_injected = 0;
  u64 transfer_retries = 0;        ///< retried (non-exhausting) failures
  u64 heartbeats_sent = 0;         ///< visibility extensions issued
  /// Final queue counters (sent/received/expired/extended/dead-lettered).
  SqsStats queue_stats;

  /// Time series sampled during the run: "queue_depth",
  /// "instances_running", "cost_usd", "samples_done".
  MetricsRecorder metrics;

  double wasted_hours_for(SampleStage stage) const {
    return wasted_hours_stage[static_cast<usize>(stage)];
  }
  double throughput_samples_per_hour() const {
    return makespan_hours > 0.0
               ? static_cast<double>(samples_completed + samples_early_stopped +
                                     samples_rejected_late) /
                     makespan_hours
               : 0.0;
  }
  double cost_per_sample_usd() const {
    const usize done =
        samples_completed + samples_early_stopped + samples_rejected_late;
    return done > 0 ? total_cost_usd / static_cast<double>(done) : 0.0;
  }
};

/// The StageContext one sample is planned with — shared by the simulator
/// and the closed-form estimator so their per-stage arithmetic cannot
/// diverge. The returned context borrows `type` and `config.stages`;
/// both must outlive any plan() call using it.
StageContext stage_context_for(const AtlasConfig& config,
                               const SraSample& sample,
                               const InstanceType& type);

class AtlasSimulation {
 public:
  AtlasSimulation(std::vector<SraSample> catalog, AtlasConfig config);

  /// The pipeline DAG this campaign walks (from the PipelineCatalog).
  const StageGraph& graph() const { return graph_; }

  /// Runs the whole campaign to completion and returns the report.
  AtlasReport run();

 private:
  struct SampleRuntime {
    const SraSample* sample = nullptr;
    double true_rate = 0.0;
    bool done = false;          ///< completed somewhere (first wins)
    bool dead_lettered = false; ///< lost to the DLQ before completing
    bool terminal() const { return done || dead_lettered; }
  };

  /// One sample being processed on one instance: the stage machine's
  /// per-instance state. Destroyed on completion, interruption, or
  /// transfer-exhaustion requeue.
  struct ActiveWork {
    u64 receipt = 0;
    std::string accession;
    GraphPlan plan;
    usize step = 0;            ///< position in the graph's topo order
    u32 failed_attempts = 0;   ///< of the current (transfer) stage
    VirtualTime sample_started;
    VirtualTime stage_started;
    /// Hours of each successfully completed stage, by StageId (for the
    /// waste breakdown).
    std::vector<double> completed_hours;
    SimKernel::EventId heartbeat_timer = 0;
  };

  void sample_metrics();
  void worker_ready(u64 instance_id);
  void init_done(u64 instance_id);
  void poll(u64 instance_id);
  void process(u64 instance_id, SqsMessage message);
  /// Enters work.stage: zero-length stages advance inline; transfer
  /// stages consult the fault injector; real stages schedule stage_done.
  void start_stage(u64 instance_id);
  void stage_done(u64 instance_id, u64 receipt);
  void complete_sample(u64 instance_id);
  /// Gives the in-flight sample back to the queue after transfer-retry
  /// exhaustion; the instance returns to polling.
  void requeue_after_transfer_failure(u64 instance_id);
  void on_interrupted(u64 instance_id);
  void on_dead_letter(const std::string& accession);
  void heartbeat(u64 instance_id, u64 receipt);
  /// Valid active entry for this receipt on a live instance, else null
  /// (the work completed, was requeued, or the instance was reclaimed).
  ActiveWork* active_work(u64 instance_id, u64 receipt);
  bool all_terminal() const;
  void maybe_finish();
  bool instance_alive(u64 instance_id) const;

  std::vector<SraSample> catalog_;
  AtlasConfig config_;
  /// The pipeline DAG this campaign runs (from the PipelineCatalog);
  /// every stage walk, cost plan and waste bucket goes through it.
  StageGraph graph_;
  const InstanceType* type_ = nullptr;

  SimKernel kernel_;
  CostMeter cost_;
  SpotMarket spot_market_;
  Ec2Fleet fleet_;
  SqsQueue queue_;
  S3Bucket index_bucket_{"atlas-index"};
  S3Bucket results_bucket_{"atlas-results"};
  AutoScalingGroup asg_;
  FaultInjector faults_;

  std::map<std::string, SampleRuntime> samples_;
  /// The stage machine state of each busy instance (also how a spot
  /// interruption finds the in-flight receipt to return immediately).
  std::map<u64, ActiveWork> active_;
  /// Boot-time initialization start per instance, so init hours are
  /// accounted as far as they actually ran (a reclaim mid-init bills the
  /// elapsed part only).
  std::map<u64, VirtualTime> init_started_;
  Rng noise_rng_{0};
  AtlasReport report_;
  usize terminal_samples_ = 0;       ///< accessions completed
  usize dead_lettered_samples_ = 0;  ///< accessions lost (not duplicates)
  bool finished_ = false;
};

}  // namespace staratlas
