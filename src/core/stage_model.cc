#include "core/stage_model.h"

#include <algorithm>
#include <cmath>

#include "cloud/s3.h"
#include "common/error.h"

namespace staratlas {

namespace {
double vcpu_speedup(double vcpus, double alpha) {
  // Throughput relative to the 16-vCPU reference: (v/16)^alpha.
  return std::pow(vcpus / 16.0, alpha);
}
}  // namespace

VirtualDuration StageTimeModel::prefetch_time(ByteSize sra_bytes,
                                              const InstanceType& type) const {
  const double gbps = std::min(sra_source_gbps_cap, type.network_gbps);
  return S3Bucket::transfer_time(sra_bytes, gbps);
}

VirtualDuration StageTimeModel::dump_time(ByteSize fastq_bytes,
                                          const InstanceType& type) const {
  const double speedup =
      vcpu_speedup(static_cast<double>(type.vcpus), vcpu_scaling_alpha);
  return VirtualDuration::seconds(dump_secs_per_gib_16vcpu *
                                  fastq_bytes.gib() / speedup);
}

VirtualDuration StageTimeModel::align_time(ByteSize fastq_bytes,
                                           int genome_release,
                                           const InstanceType& type) const {
  STARATLAS_CHECK(genome_release == 108 || genome_release == 111);
  const double slowdown =
      genome_release == 108 ? release_slowdown_108 : 1.0;
  const double speedup =
      vcpu_speedup(static_cast<double>(type.vcpus), vcpu_scaling_alpha);
  return VirtualDuration::seconds(align_secs_per_gib_r111_16vcpu * slowdown *
                                  fastq_bytes.gib() / speedup);
}

VirtualDuration StageTimeModel::postprocess_time() const {
  return VirtualDuration::seconds(postprocess_secs);
}

VirtualDuration StageTimeModel::index_init_time(ByteSize index_bytes,
                                                const InstanceType& type,
                                                IndexLoadPath path) const {
  STARATLAS_CHECK(mmap_attach_speedup >= 1.0);
  const VirtualDuration download =
      S3Bucket::transfer_time(index_bytes, type.network_gbps);
  double load_secs = index_bytes.gib() / shm_load_gibps;
  if (path == IndexLoadPath::kMmap) load_secs /= mmap_attach_speedup;
  return download + VirtualDuration::seconds(load_secs);
}

const char* stage_name(SampleStage stage) {
  switch (stage) {
    case SampleStage::kPrefetch: return "prefetch";
    case SampleStage::kDump: return "dump";
    case SampleStage::kAlignCheckpoint: return "align_ckpt";
    case SampleStage::kAlignRest: return "align_rest";
    case SampleStage::kPostprocess: return "postprocess";
    case SampleStage::kUpload: return "upload";
  }
  return "unknown";
}

VirtualDuration StagePlan::total() const {
  VirtualDuration sum;
  for (const VirtualDuration& d : durations) sum += d;
  return sum;
}

StagePlan StageTimeModel::plan_sample(ByteSize sra_bytes, ByteSize fastq_bytes,
                                      int genome_release,
                                      const InstanceType& type,
                                      double checkpoint_fraction,
                                      bool stop_early) const {
  STARATLAS_CHECK(checkpoint_fraction > 0.0 && checkpoint_fraction <= 1.0);
  StagePlan plan;
  plan.stop_early = stop_early;
  plan.align_full = align_time(fastq_bytes, genome_release, type);
  auto set = [&plan](SampleStage stage, VirtualDuration d) {
    plan.durations[static_cast<usize>(stage)] = d;
  };
  set(SampleStage::kPrefetch, prefetch_time(sra_bytes, type));
  set(SampleStage::kDump, dump_time(fastq_bytes, type));
  set(SampleStage::kAlignCheckpoint, plan.align_full * checkpoint_fraction);
  set(SampleStage::kAlignRest,
      stop_early ? VirtualDuration::zero()
                 : plan.align_full * (1.0 - checkpoint_fraction));
  set(SampleStage::kPostprocess,
      stop_early ? VirtualDuration::zero() : postprocess_time());
  set(SampleStage::kUpload, VirtualDuration::zero());
  return plan;
}

ByteSize StageTimeModel::required_memory(ByteSize index_bytes) {
  // Index resident in shared memory + STAR working set + OS headroom.
  return index_bytes + ByteSize::from_gib(6.0);
}

}  // namespace staratlas
