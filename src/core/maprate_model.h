// Mapping-rate distributions by library type, used by the cloud simulator
// to give every catalog sample a "true" final mapping rate plus a noisy
// checkpoint observation.
//
// The default parameters are CALIBRATED FROM REAL ALIGNMENT: the Fig 4
// bench first aligns a panel of simulated bulk and single-cell samples
// with the real engine and refits this model from the measured rates, so
// the cloud-scale accounting inherits measured behaviour. The constants
// below are the values that calibration typically produces (documented in
// EXPERIMENTS.md) so the model is also usable standalone.
#pragma once

#include "common/rng.h"
#include "sim/library_profile.h"

namespace staratlas {

struct MapRateModel {
  double bulk_mean = 0.86;
  double bulk_sd = 0.035;
  double single_cell_mean = 0.22;
  double single_cell_sd = 0.028;
  /// Std-dev of the checkpoint estimate around the true rate (binomial
  /// sampling noise at ~10% of reads is tiny; this also absorbs the
  /// within-file nonstationarity STAR progress shows).
  double checkpoint_noise_sd = 0.012;

  /// True final mapping rate for a sample (clamped to [0.02, 0.99]).
  double sample_true_rate(LibraryType type, Rng& rng) const;

  /// Observation of the true rate at the early-stop checkpoint.
  double checkpoint_observation(double true_rate, Rng& rng) const;

  /// Replaces the distribution parameters from measured data; each vector
  /// holds final mapped rates of really-aligned samples. Vectors may be
  /// empty (that side keeps defaults).
  void calibrate(const std::vector<double>& bulk_rates,
                 const std::vector<double>& single_cell_rates);
};

}  // namespace staratlas
