// Stage-graph pipeline executor model: a genomics pipeline as a DAG of
// resource-annotated stages (GenomeFlow-style), replacing the hardcoded
// prefetch->dump->align->postprocess chain.
//
// A StageGraph is a set of nodes — each with a cost function over a
// StageContext, resource hints (cores, RAM, bandwidth, spot-safety), and
// explicit data edges — validated for acyclicity and walked in a
// deterministic topological order. The paper's 4-stage alignment chain is
// one registered pipeline in the PipelineCatalog; a variant-calling-shaped
// pipeline (reusing the aligner stage's cost model) is a second, proving
// the simulator/scheduler needs no per-workload changes: AtlasSimulation,
// estimate_campaign and the campaign planner all consume the graph, never
// the chain.
//
// Determinism contract: for the registered "alignment" pipeline the
// deterministic topological order equals the historical SampleStage enum
// order and every node's cost function reproduces StageTimeModel's
// plan_sample arithmetic expression-for-expression, so default-config
// simulations are bit-identical to the pre-graph chain (asserted by
// tests/core/sim_golden_test.cc against captured pre-refactor outputs).
#pragma once

#include <array>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "cloud/instance_types.h"
#include "common/units.h"
#include "common/vclock.h"
#include "core/stage_model.h"

namespace staratlas {

/// Node handle within one StageGraph (dense, insertion-ordered).
using StageId = u32;

/// What kind of work a stage does — drives fault injection (transfers are
/// the retryable operations) and the planner's bottleneck reasoning.
enum class StageKind : u8 {
  kTransfer = 0,  ///< network transfer (retryable, fault-injectable)
  kCompute,       ///< CPU-bound work that scales with vCPUs
  kFixed,         ///< fixed bookkeeping cost, instance-independent
};

/// Which legacy report bucket a stage's hours land in. The graph is
/// general; the atlas report still breaks out the paper's headline
/// prefetch/dump/align columns, and roles are how nodes opt into them.
enum class StageRole : u8 {
  kGeneric = 0,
  kPrefetch,
  kDump,
  kAlign,
};

/// Resource hints for the planner and (future) co-scheduling: how much of
/// the instance a stage actually drives.
struct StageResources {
  double cores = 1.0;           ///< fraction of instance vCPUs in use
  ByteSize ram = ByteSize::from_gib(2.0);  ///< beyond the resident index
  double bandwidth_gbps = 0.0;  ///< sustained network draw
  bool spot_safe = true;        ///< restartable without correctness loss
  bool checkpointable = false;  ///< partial progress survives a reclaim
};

/// Everything a stage cost function may depend on for one sample. Pure
/// data: cost functions must be deterministic functions of this context.
struct StageContext {
  ByteSize sra_bytes;
  ByteSize fastq_bytes;
  int genome_release = 111;
  const InstanceType* instance = nullptr;
  const StageTimeModel* model = nullptr;
  double checkpoint_fraction = 0.10;
  /// Thread cap for compute stages; 0 = all instance vCPUs. Non-zero
  /// values clamp the vCPU count the compute cost model sees (the
  /// planner's thread-count search dimension).
  u32 align_threads = 0;

  /// The instance as compute stages see it: vcpus clamped to
  /// align_threads when set. With align_threads == 0 this is a field-wise
  /// copy, so cost arithmetic is unchanged.
  InstanceType effective_instance() const;
};

/// Virtual-time cost of one stage for one sample. Must not branch on
/// early-stop state — skipping is the graph's job (skip_on_early_stop).
using StageCostFn = std::function<VirtualDuration(const StageContext&)>;

struct StageNode {
  std::string name;  ///< stable label (reports, fault-injector streams)
  StageKind kind = StageKind::kCompute;
  StageRole role = StageRole::kGeneric;
  StageResources resources;
  /// Zero-length when the sample early-stops (the post-checkpoint
  /// alignment remainder and everything downstream of the decision).
  bool skip_on_early_stop = false;
  StageCostFn cost;
};

/// One sample's planned per-node durations over a StageGraph — the graph
/// generalization of StagePlan. Node ids index `durations`.
struct GraphPlan {
  std::vector<VirtualDuration> durations;
  bool stop_early = false;
  /// Full (un-stopped) alignment time, for saved-hours accounting.
  VirtualDuration align_full;
  /// Per-role duration sums (indexed by StageRole), accumulated in node
  /// id order so the alignment chain reproduces StagePlan::align_actual's
  /// checkpoint-then-rest addition order exactly.
  std::array<VirtualDuration, 4> role_totals{};

  VirtualDuration duration(StageId id) const { return durations[id]; }
  VirtualDuration role_total(StageRole role) const {
    return role_totals[static_cast<usize>(role)];
  }
  VirtualDuration align_actual() const { return role_total(StageRole::kAlign); }
  VirtualDuration total() const;
};

/// A validated DAG of stages. Construction order defines node ids;
/// `add_stage` only accepts already-existing dependencies (so a graph
/// built through it is acyclic by construction), while `add_edge` can
/// wire arbitrary edges afterwards — `validate()` then proves acyclicity
/// via Kahn's algorithm and caches the deterministic topological order
/// (smallest ready id first, which for a chain is insertion order).
class StageGraph {
 public:
  StageGraph() = default;
  explicit StageGraph(std::string name) : name_(std::move(name)) {}

  /// Appends a node depending on `deps` (each must already exist). Throws
  /// InvalidArgument on unknown deps or a missing cost function.
  StageId add_stage(StageNode node, std::vector<StageId> deps = {});

  /// Adds edge from -> to after the fact (diamonds, fan-in). May create a
  /// cycle; validate() rejects it.
  void add_edge(StageId from, StageId to);

  /// Full (un-stopped) alignment duration for one sample — the
  /// saved-hours denominator. Registered separately from the (possibly
  /// checkpoint-split) align nodes so the value is computed by ONE direct
  /// cost-model call, never reassembled from split parts (float identity).
  void set_align_full(StageCostFn fn) { align_full_ = std::move(fn); }

  /// Proves the graph is a non-empty DAG and caches the topological
  /// order. Throws InvalidArgument on an empty graph or a cycle.
  void validate();

  usize size() const { return nodes_.size(); }
  bool empty() const { return nodes_.empty(); }
  const std::string& name() const { return name_; }
  const StageNode& node(StageId id) const { return nodes_[id]; }
  const std::vector<StageId>& deps(StageId id) const { return deps_[id]; }

  /// Deterministic topological order (validate() first).
  const std::vector<StageId>& topo_order() const;

  /// True when any node is skippable — i.e. the pipeline has an
  /// early-stop decision point at all.
  bool supports_early_stop() const;

  /// Per-node stage names in id order (report labels).
  std::vector<std::string> stage_names() const;

  /// Plans one sample: every node's cost over `ctx`, with
  /// skip-on-early-stop nodes zero-length when `ctx.stop_early` holds.
  GraphPlan plan(const StageContext& ctx, bool stop_early) const;

 private:
  std::string name_;
  std::vector<StageNode> nodes_;
  std::vector<std::vector<StageId>> deps_;
  StageCostFn align_full_;
  std::vector<StageId> topo_;
  bool validated_ = false;
};

/// Builds the paper's 4-stage alignment chain (6 nodes: the align stage is
/// split at the early-stop checkpoint, plus the zero-length upload node
/// where S3 faults land). Cost functions reproduce
/// StageTimeModel::plan_sample exactly.
StageGraph alignment_pipeline();

/// A variant-calling-shaped pipeline reusing the aligner cost stage:
/// prefetch -> dump -> align -> {sort_markdup, qc} -> call -> upload
/// (a diamond — qc and sort/markdup both consume the alignment, upload
/// fans both branches back in). No early-stop decision point.
StageGraph variant_calling_pipeline();

/// Registry of named pipelines. The simulator, estimator and planner look
/// workloads up here — adding a pipeline requires no scheduler changes.
class PipelineCatalog {
 public:
  using Builder = std::function<StageGraph()>;

  /// Process-wide catalog, pre-seeded with "alignment" and
  /// "variant_calling".
  static PipelineCatalog& instance();

  /// Registers (or replaces) a named pipeline.
  void register_pipeline(const std::string& name, Builder builder);

  /// Builds and validates a registered pipeline; throws InvalidArgument
  /// for unknown names.
  StageGraph build(const std::string& name) const;

  bool has(const std::string& name) const;
  std::vector<std::string> names() const;

 private:
  PipelineCatalog();
  mutable std::mutex mutex_;
  std::map<std::string, Builder> builders_;
};

}  // namespace staratlas
