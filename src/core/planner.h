// Campaign planner: searches instance type x thread count x index load
// path x spot mix under cost/deadline constraints — the optimizer the
// group's "Accelerating Cloud-Based Transcriptomics" paper gestures at.
//
// Every candidate is costed by the closed-form estimator
// (estimate_campaign), which plans samples over the SAME pipeline graph
// the event simulator walks, and every candidate carries the exact
// AtlasConfig (planner_config) that reproduces it in the simulator — so
// frontier points can be validated end-to-end against the event sim
// (validate_frontier), which bench_planner gates in CI.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "align/early_stop_policy.h"
#include "core/atlas_sim.h"
#include "core/cloud_context.h"
#include "core/estimate.h"
#include "core/rightsizing.h"
#include "sim/catalog.h"

namespace staratlas {

struct PlannerQuery {
  /// Index size / release / stage model / pipeline. The context's
  /// index_load_path is ignored: the load path is a search dimension.
  CloudContext cloud{};
  std::vector<SraSample> catalog;
  EarlyStopPolicy early_stop{};
  usize max_fleet = 16;
  VirtualDuration boot_delay = VirtualDuration::seconds(45);
  VirtualDuration mean_time_to_interruption = VirtualDuration::hours(24);

  // ---- constraints (0 = unconstrained) ------------------------------
  double deadline_hours = 0.0;
  double budget_usd = 0.0;

  // ---- search space -------------------------------------------------
  /// Instance types to consider; empty = the whole instance catalog.
  std::vector<std::string> instance_names;
  /// Compute-stage thread caps; 0 = all instance vCPUs.
  std::vector<u32> thread_choices{0};
  std::vector<IndexLoadPath> load_path_choices{IndexLoadPath::kStream,
                                               IndexLoadPath::kMmap};
  /// Spot share of the fleet's launches (0 = pure on-demand, 1 = pure
  /// spot, intermediate = deterministically interleaved mixed fleet).
  std::vector<double> spot_mix_choices{0.0, 1.0};
};

struct PlanCandidate {
  std::string instance;
  u32 threads = 0;  ///< 0 = all vCPUs
  IndexLoadPath load_path = IndexLoadPath::kStream;
  double spot_mix = 0.0;
  bool feasible = false;
  std::string infeasible_reason;
  CampaignEstimate estimate;
  bool meets_deadline = true;
  bool meets_budget = true;

  double est_makespan_hours() const { return estimate.makespan_hours; }
  double est_cost_usd() const { return estimate.ec2_cost_usd; }
};

/// One frontier point replayed through the event simulator.
struct FrontierValidation {
  usize candidate_index = 0;  ///< into PlannerResult::candidates
  double sim_makespan_hours = 0.0;
  double sim_cost_usd = 0.0;
  double makespan_rel_error = 0.0;  ///< |est - sim| / sim
  double cost_rel_error = 0.0;
};

struct PlannerResult {
  /// Every evaluated candidate, in deterministic search order.
  std::vector<PlanCandidate> candidates;
  /// Indices of the Pareto-minimal (cost, makespan) feasible candidates,
  /// cost-ascending (so makespan strictly descends along it).
  std::vector<usize> frontier;
  /// Cheapest feasible candidate meeting BOTH constraints (ties broken
  /// by makespan); nullopt when no candidate satisfies them.
  std::optional<usize> best;
  std::vector<FrontierValidation> validations;
};

/// The exact simulator configuration a candidate describes — the bridge
/// that makes every planner point sim-checkable. Shares init-cost
/// plumbing with the estimator by construction (campaign_init_hours).
AtlasConfig planner_config(const PlannerQuery& query,
                           const PlanCandidate& candidate);

/// Enumerates and costs the search space, computes the Pareto frontier
/// and picks the best constrained candidate. Purely closed-form: no
/// event simulation (see validate_frontier).
PlannerResult plan_campaign(const PlannerQuery& query);

/// Replays up to `max_points` frontier candidates (0 = all) through the
/// event simulator and records relative cost/makespan errors in
/// result.validations.
void validate_frontier(const PlannerQuery& query, PlannerResult& result,
                       usize max_points = 0);

/// Bridge from the right-sizing advisor's per-sample view to a campaign
/// query: seeds the planner with the advisor's cloud context and spot
/// preference (the planner is the campaign-level refinement of
/// evaluate_instances' per-sample ranking).
PlannerQuery planner_query_from(const RightSizingQuery& query,
                                std::vector<SraSample> catalog);

}  // namespace staratlas
