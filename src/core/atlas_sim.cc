#include "core/atlas_sim.h"

#include <algorithm>

#include "common/error.h"

namespace staratlas {

void AtlasConfig::use_release(int release) {
  STARATLAS_CHECK(release == 108 || release == 111);
  genome_release = release;
  index_bytes = release == 108 ? ByteSize::from_gib(85.0)
                               : ByteSize::from_gib(29.5);
}

StageContext stage_context_for(const AtlasConfig& config,
                               const SraSample& sample,
                               const InstanceType& type) {
  StageContext ctx;
  ctx.sra_bytes = sample.sra_bytes;
  ctx.fastq_bytes = sample.fastq_bytes;
  ctx.genome_release = config.genome_release;
  ctx.instance = &type;
  ctx.model = &config.stages;
  ctx.checkpoint_fraction = config.early_stop.checkpoint_fraction;
  ctx.align_threads = config.align_threads;
  return ctx;
}

VirtualDuration AtlasConfig::effective_heartbeat_interval() const {
  return heartbeat_interval > VirtualDuration::zero() ? heartbeat_interval
                                                      : visibility_timeout * 0.5;
}

AtlasSimulation::AtlasSimulation(std::vector<SraSample> catalog,
                                 AtlasConfig config)
    : catalog_(std::move(catalog)),
      config_(std::move(config)),
      graph_(PipelineCatalog::instance().build(config_.pipeline)),
      type_(&instance_type(config_.instance_type)),
      spot_market_(Rng(config_.seed).fork("spot"),
                   config_.mean_time_to_interruption),
      fleet_(kernel_, cost_, &spot_market_, config_.boot_delay),
      queue_(kernel_, config_.visibility_timeout, config_.max_receives),
      asg_(kernel_, fleet_, *type_, config_.effective_spot_fraction(),
           config_.asg,
           [this] { return queue_.approximate_depth(); }),
      faults_(config_.faults),
      noise_rng_(Rng(config_.seed).fork("noise")) {
  STARATLAS_CHECK(!catalog_.empty());
  config_.early_stop.validate();

  // The index must fit in instance memory — the feasibility constraint the
  // paper's right-sizing argument is built on.
  const ByteSize needed = StageTimeModel::required_memory(config_.index_bytes);
  if (needed > type_->memory) {
    throw InvalidArgument("index (" + config_.index_bytes.str() +
                          ") does not fit in " + type_->name + " memory (" +
                          type_->memory.str() + ")");
  }

  index_bucket_.put("star-index-r" + std::to_string(config_.genome_release),
                    config_.index_bytes);

  for (const auto& sample : catalog_) {
    SampleRuntime runtime;
    runtime.sample = &sample;
    Rng rate_rng = Rng(sample.seed).fork("true_rate");
    runtime.true_rate =
        config_.maprate.sample_true_rate(sample.type, rate_rng);
    samples_.emplace(sample.accession, runtime);
  }
}

bool AtlasSimulation::instance_alive(u64 instance_id) const {
  return fleet_.instance(instance_id).state == InstanceState::kRunning;
}

AtlasReport AtlasSimulation::run() {
  report_ = AtlasReport{};
  report_.samples_total = catalog_.size();
  report_.wasted_hours_stage.assign(graph_.size(), 0.0);
  report_.stage_names = graph_.stage_names();

  fleet_.set_on_ready([this](u64 id) { worker_ready(id); });
  fleet_.set_on_interrupted([this](u64 id) { on_interrupted(id); });
  queue_.set_on_dead_letter(
      [this](const std::string& body) { on_dead_letter(body); });

  for (const auto& sample : catalog_) queue_.send(sample.accession);
  asg_.start();
  sample_metrics();
  kernel_.run();

  report_.samples_dead_lettered = dead_lettered_samples_;
  report_.makespan_hours = kernel_.now().secs() / 3600.0;
  report_.total_cost_usd = cost_.total_usd();
  report_.ec2_cost_usd =
      cost_.category_usd("ec2_spot") + cost_.category_usd("ec2_ondemand");
  report_.instance_hours = cost_.instance_hours();
  report_.interruptions = fleet_.interruptions();
  report_.instances_launched = fleet_.launched_total();
  report_.transfer_faults_injected = faults_.injected_total();
  report_.queue_stats = queue_.stats();
  return report_;
}

void AtlasSimulation::sample_metrics() {
  const VirtualTime now = kernel_.now();
  report_.metrics.record("queue_depth", now,
                         static_cast<double>(queue_.approximate_depth()));
  report_.metrics.record("instances_running", now,
                         static_cast<double>(fleet_.running_count()));
  report_.metrics.record("cost_usd", now,
                         cost_.total_usd() + fleet_.accrued_running_cost(now));
  report_.metrics.record("samples_done", now,
                         static_cast<double>(terminal_samples_));
  if (!finished_) {
    kernel_.schedule_after(config_.metrics_interval,
                           [this] { sample_metrics(); });
  }
}

void AtlasSimulation::worker_ready(u64 instance_id) {
  report_.peak_instances =
      std::max(report_.peak_instances, fleet_.running_count());
  // Boot-time initialization: download the index from S3 and load it into
  // shared memory (Fig 2's "initialization phase"). Hours are billed when
  // (and as far as) the init actually runs, not up front — a reclaim
  // mid-initialization bills the elapsed part only.
  index_bucket_.get("star-index-r" + std::to_string(config_.genome_release));
  const VirtualDuration init = config_.stages.index_init_time(
      config_.index_bytes, *type_, config_.index_load_path);
  init_started_[instance_id] = kernel_.now();
  kernel_.schedule_after(init, [this, instance_id] { init_done(instance_id); });
}

void AtlasSimulation::init_done(u64 instance_id) {
  if (finished_) return;
  auto it = init_started_.find(instance_id);
  if (it == init_started_.end()) return;  // reclaimed mid-init (billed there)
  report_.init_hours += (kernel_.now() - it->second).hrs();
  init_started_.erase(it);
  poll(instance_id);
}

void AtlasSimulation::poll(u64 instance_id) {
  if (finished_ || !instance_alive(instance_id)) return;
  if (asg_.should_release()) {
    fleet_.terminate(instance_id);
    return;
  }
  std::optional<SqsMessage> message = queue_.receive();
  if (!message) {
    if (all_terminal()) {
      fleet_.terminate(instance_id);
      maybe_finish();
      return;
    }
    // Queue momentarily empty (work may still be in flight elsewhere, or
    // redeliveries pending): back off and poll again.
    kernel_.schedule_after(config_.poll_idle_backoff,
                           [this, instance_id] { poll(instance_id); });
    return;
  }
  process(instance_id, std::move(*message));
}

void AtlasSimulation::process(u64 instance_id, SqsMessage message) {
  auto it = samples_.find(message.body);
  STARATLAS_CHECK(it != samples_.end());
  const SampleRuntime& runtime = it->second;
  if (runtime.done) {
    // A redelivered duplicate of work that already completed elsewhere.
    queue_.delete_message(message.receipt_handle);
    poll(instance_id);
    return;
  }
  const SraSample& sample = *runtime.sample;

  // Early-stopping decision from the Log.progress.out-equivalent telemetry
  // at the checkpoint fraction. (Drawn at receive time so the noise stream
  // depends only on the processing order, as it always has; redelivered
  // samples restart from scratch and re-observe. The draw happens even
  // for pipelines without a decision point, keeping the noise stream —
  // and thus cross-pipeline comparisons — aligned.)
  const double observed = config_.maprate.checkpoint_observation(
      runtime.true_rate, noise_rng_);
  const bool stop_early = graph_.supports_early_stop() &&
                          early_stop_decision(config_.early_stop, observed);

  ActiveWork work;
  work.receipt = message.receipt_handle;
  work.accession = message.body;
  work.plan = graph_.plan(stage_context_for(config_, sample, *type_),
                          stop_early);
  work.completed_hours.assign(graph_.size(), 0.0);
  work.sample_started = kernel_.now();
  work.stage_started = kernel_.now();
  auto [active_it, inserted] = active_.emplace(instance_id, std::move(work));
  STARATLAS_CHECK(inserted);

  if (config_.heartbeat_enabled) {
    const u64 receipt = active_it->second.receipt;
    active_it->second.heartbeat_timer = kernel_.schedule_after(
        config_.effective_heartbeat_interval(),
        [this, instance_id, receipt] { heartbeat(instance_id, receipt); });
  }
  start_stage(instance_id);
}

void AtlasSimulation::start_stage(u64 instance_id) {
  auto it = active_.find(instance_id);
  STARATLAS_CHECK(it != active_.end());
  ActiveWork& work = it->second;
  const std::vector<StageId>& topo = graph_.topo_order();
  while (work.step < topo.size()) {
    const StageId stage_id = topo[work.step];
    const StageNode& node = graph_.node(stage_id);
    const VirtualDuration duration = work.plan.duration(stage_id);
    work.stage_started = kernel_.now();

    if (node.kind == StageKind::kTransfer && faults_.enabled()) {
      if (auto fraction = faults_.sample_transfer_failure(node.name)) {
        ++work.failed_attempts;
        const VirtualDuration burned = duration * *fraction;
        const u64 receipt = work.receipt;
        if (work.failed_attempts >= faults_.max_attempts()) {
          // Out of retries: burn the partial attempt, then hand the
          // sample back to the queue for another worker.
          report_.wasted_hours_stage[stage_id] += burned.hrs();
          report_.wasted_hours_transfer += burned.hrs();
          work.stage_started = kernel_.now() + burned;  // pre-charged window
          kernel_.schedule_after(burned, [this, instance_id, receipt] {
            if (finished_ || active_work(instance_id, receipt) == nullptr) {
              return;
            }
            requeue_after_transfer_failure(instance_id);
          });
          return;
        }
        const VirtualDuration backoff = faults_.backoff(work.failed_attempts);
        ++report_.transfer_retries;
        report_.wasted_hours_stage[stage_id] += (burned + backoff).hrs();
        report_.wasted_hours_transfer += (burned + backoff).hrs();
        // The whole retry window is charged as transfer waste up front;
        // advancing stage_started past it keeps a reclaim inside the
        // window from double-counting the same hours as interruption loss.
        work.stage_started = kernel_.now() + burned + backoff;
        kernel_.schedule_after(
            burned + backoff, [this, instance_id, receipt] {
              if (finished_ || active_work(instance_id, receipt) == nullptr) {
                return;
              }
              start_stage(instance_id);  // next attempt of the same stage
            });
        return;
      }
    }

    if (duration > VirtualDuration::zero()) {
      const u64 receipt = work.receipt;
      kernel_.schedule_after(duration, [this, instance_id, receipt] {
        stage_done(instance_id, receipt);
      });
      return;
    }
    // Zero-length stage (skipped align remainder / postprocess on early
    // stop, upload bookkeeping): advance inline, no kernel event.
    work.completed_hours[stage_id] = 0.0;
    ++work.step;
    work.failed_attempts = 0;
  }
  complete_sample(instance_id);
}

void AtlasSimulation::stage_done(u64 instance_id, u64 receipt) {
  if (finished_) return;
  ActiveWork* work = active_work(instance_id, receipt);
  if (work == nullptr) return;  // reclaimed or requeued since scheduling
  work->completed_hours[graph_.topo_order()[work->step]] =
      (kernel_.now() - work->stage_started).hrs();
  ++work->step;
  work->failed_attempts = 0;
  // Stage-boundary heartbeat: prove liveness after every stage in
  // addition to the periodic timer (ChangeMessageVisibility is cheap).
  if (config_.heartbeat_enabled &&
      queue_.extend_visibility(receipt, config_.visibility_timeout)) {
    ++report_.heartbeats_sent;
  }
  start_stage(instance_id);
}

void AtlasSimulation::complete_sample(u64 instance_id) {
  auto it = active_.find(instance_id);
  STARATLAS_CHECK(it != active_.end());
  const ActiveWork work = std::move(it->second);
  active_.erase(it);
  if (work.heartbeat_timer != 0) kernel_.cancel(work.heartbeat_timer);

  const GraphPlan& plan = work.plan;
  SampleRuntime& rt = samples_.at(work.accession);
  if (rt.done) {
    // Another worker finished a redelivered copy first.
    queue_.delete_message(work.receipt);
    poll(instance_id);
    return;
  }
  rt.done = true;
  if (rt.dead_lettered) {
    // A stale duplicate of this accession dead-lettered while this copy
    // was still running; the completion is real (results uploaded), so
    // the accession is not lost after all.
    rt.dead_lettered = false;
    --dead_lettered_samples_;
  }

  report_.prefetch_hours += plan.role_total(StageRole::kPrefetch).hrs();
  report_.dump_hours += plan.role_total(StageRole::kDump).hrs();
  report_.align_hours_spent += plan.align_actual().hrs();

  if (plan.stop_early) {
    ++report_.samples_early_stopped;
    report_.align_hours_saved +=
        (plan.align_full - plan.align_actual()).hrs();
    results_bucket_.put("rejected/" + work.accession, ByteSize(4096));
  } else {
    const bool accepted =
        rt.true_rate >= config_.early_stop.min_mapped_rate;
    if (accepted) {
      ++report_.samples_completed;
    } else {
      // Without early stopping (or on a near-threshold miss) the full
      // alignment ran and the sample is rejected afterwards — the
      // paper's "unnecessary compute" (Fig 4, yellow).
      ++report_.samples_rejected_late;
      report_.unnecessary_align_hours += plan.align_full.hrs();
    }
    results_bucket_.put(
        (accepted ? "counts/" : "rejected/") + work.accession,
        ByteSize::from_mib(2.0));
  }
  queue_.delete_message(work.receipt);
  ++terminal_samples_;

  if (all_terminal()) {
    fleet_.terminate(instance_id);
    maybe_finish();
    return;
  }
  poll(instance_id);
}

void AtlasSimulation::requeue_after_transfer_failure(u64 instance_id) {
  auto it = active_.find(instance_id);
  STARATLAS_CHECK(it != active_.end());
  const ActiveWork work = std::move(it->second);
  active_.erase(it);
  if (work.heartbeat_timer != 0) kernel_.cancel(work.heartbeat_timer);

  // Whatever this instance had already finished for the sample will be
  // redone from scratch by whoever receives the redelivery.
  for (usize s = 0; s < graph_.size(); ++s) {
    report_.wasted_hours_stage[s] += work.completed_hours[s];
    report_.wasted_hours_transfer += work.completed_hours[s];
  }
  ++report_.requeues_transfer;
  queue_.return_message(work.receipt);
  poll(instance_id);
}

void AtlasSimulation::on_interrupted(u64 instance_id) {
  // Spot gives a 2-minute interruption notice: the worker returns its
  // in-flight message so another instance can pick it up immediately
  // (the visibility timeout remains the backstop for hard crashes).
  auto init_it = init_started_.find(instance_id);
  if (init_it != init_started_.end()) {
    const double hrs = (kernel_.now() - init_it->second).hrs();
    report_.init_hours += hrs;
    report_.wasted_init_hours += hrs;
    init_started_.erase(init_it);
  }

  auto it = active_.find(instance_id);
  if (it == active_.end()) return;
  const ActiveWork work = std::move(it->second);
  active_.erase(it);
  if (work.heartbeat_timer != 0) kernel_.cancel(work.heartbeat_timer);

  // Workers are stateless (paper §II): the redelivered sample restarts
  // from scratch, so everything burned here is the interruption tax.
  double wasted = 0.0;
  for (usize s = 0; s < graph_.size(); ++s) {
    report_.wasted_hours_stage[s] += work.completed_hours[s];
    wasted += work.completed_hours[s];
  }
  if (work.step < graph_.size()) {
    // Partial progress into the in-flight stage. Clamped: during a retry
    // window stage_started sits in the future (the window is pre-charged
    // as transfer waste).
    const double partial =
        std::max(0.0, (kernel_.now() - work.stage_started).hrs());
    report_.wasted_hours_stage[graph_.topo_order()[work.step]] += partial;
    wasted += partial;
  }
  report_.wasted_hours_interrupted += wasted;
  ++report_.requeues_interrupted;
  queue_.return_message(work.receipt);
}

void AtlasSimulation::on_dead_letter(const std::string& accession) {
  SampleRuntime& rt = samples_.at(accession);
  // A stale duplicate of already-terminal work carries no new loss — the
  // old accounting (terminal + dlq.size()) double-counted exactly this
  // case and could end the simulation with samples still pending.
  if (rt.terminal()) return;
  rt.dead_lettered = true;
  ++dead_lettered_samples_;
  if (all_terminal()) maybe_finish();
}

void AtlasSimulation::heartbeat(u64 instance_id, u64 receipt) {
  if (finished_) return;
  ActiveWork* work = active_work(instance_id, receipt);
  if (work == nullptr) return;
  if (queue_.extend_visibility(receipt, config_.visibility_timeout)) {
    ++report_.heartbeats_sent;
  }
  work->heartbeat_timer = kernel_.schedule_after(
      config_.effective_heartbeat_interval(),
      [this, instance_id, receipt] { heartbeat(instance_id, receipt); });
}

AtlasSimulation::ActiveWork* AtlasSimulation::active_work(u64 instance_id,
                                                          u64 receipt) {
  auto it = active_.find(instance_id);
  if (it == active_.end() || it->second.receipt != receipt) return nullptr;
  if (!instance_alive(instance_id)) return nullptr;
  return &it->second;
}

bool AtlasSimulation::all_terminal() const {
  return terminal_samples_ + dead_lettered_samples_ >= catalog_.size();
}

void AtlasSimulation::maybe_finish() {
  if (finished_ || !all_terminal()) return;
  finished_ = true;
  asg_.stop();
  fleet_.terminate_all();
  // Instances still in boot-time initialization ran it this far; bill the
  // elapsed part (end-of-run rampdown, not interruption waste).
  for (const auto& [id, started] : init_started_) {
    report_.init_hours += (kernel_.now() - started).hrs();
  }
  init_started_.clear();
}

}  // namespace staratlas
