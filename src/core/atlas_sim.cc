#include "core/atlas_sim.h"

#include <algorithm>

#include "common/error.h"

namespace staratlas {

void AtlasConfig::use_release(int release) {
  STARATLAS_CHECK(release == 108 || release == 111);
  genome_release = release;
  index_bytes = release == 108 ? ByteSize::from_gib(85.0)
                               : ByteSize::from_gib(29.5);
}

AtlasSimulation::AtlasSimulation(std::vector<SraSample> catalog,
                                 AtlasConfig config)
    : catalog_(std::move(catalog)),
      config_(std::move(config)),
      type_(&instance_type(config_.instance_type)),
      spot_market_(Rng(config_.seed).fork("spot"),
                   config_.mean_time_to_interruption),
      fleet_(kernel_, cost_, &spot_market_),
      queue_(kernel_, config_.visibility_timeout),
      asg_(kernel_, fleet_, *type_, config_.spot, config_.asg,
           [this] { return queue_.approximate_depth(); }),
      noise_rng_(Rng(config_.seed).fork("noise")) {
  STARATLAS_CHECK(!catalog_.empty());
  config_.early_stop.validate();

  // The index must fit in instance memory — the feasibility constraint the
  // paper's right-sizing argument is built on.
  const ByteSize needed = StageTimeModel::required_memory(config_.index_bytes);
  if (needed > type_->memory) {
    throw InvalidArgument("index (" + config_.index_bytes.str() +
                          ") does not fit in " + type_->name + " memory (" +
                          type_->memory.str() + ")");
  }

  index_bucket_.put("star-index-r" + std::to_string(config_.genome_release),
                    config_.index_bytes);

  for (const auto& sample : catalog_) {
    SampleRuntime runtime;
    runtime.sample = &sample;
    Rng rate_rng = Rng(sample.seed).fork("true_rate");
    runtime.true_rate =
        config_.maprate.sample_true_rate(sample.type, rate_rng);
    samples_.emplace(sample.accession, runtime);
  }
}

bool AtlasSimulation::instance_alive(u64 instance_id) const {
  return fleet_.instance(instance_id).state == InstanceState::kRunning;
}

AtlasReport AtlasSimulation::run() {
  report_ = AtlasReport{};
  report_.samples_total = catalog_.size();

  fleet_.set_on_ready([this](u64 id) { worker_ready(id); });
  fleet_.set_on_interrupted([this](u64 instance_id) {
    // Spot gives a 2-minute interruption notice: the worker returns its
    // in-flight message so another instance can pick it up immediately
    // (the visibility timeout remains the backstop for hard crashes).
    auto it = active_receipt_.find(instance_id);
    if (it != active_receipt_.end()) {
      queue_.return_message(it->second);
      active_receipt_.erase(it);
    }
  });

  for (const auto& sample : catalog_) queue_.send(sample.accession);
  asg_.start();
  sample_metrics();
  kernel_.run();

  report_.samples_dead_lettered = queue_.dead_letter_queue().size();
  report_.makespan_hours = kernel_.now().secs() / 3600.0;
  report_.total_cost_usd = cost_.total_usd();
  report_.ec2_cost_usd =
      cost_.category_usd("ec2_spot") + cost_.category_usd("ec2_ondemand");
  report_.instance_hours = cost_.instance_hours();
  report_.interruptions = fleet_.interruptions();
  report_.instances_launched = fleet_.launched_total();
  return report_;
}

void AtlasSimulation::sample_metrics() {
  const VirtualTime now = kernel_.now();
  report_.metrics.record("queue_depth", now,
                         static_cast<double>(queue_.approximate_depth()));
  report_.metrics.record("instances_running", now,
                         static_cast<double>(fleet_.running_count()));
  report_.metrics.record("cost_usd", now,
                         cost_.total_usd() + fleet_.accrued_running_cost(now));
  report_.metrics.record("samples_done", now,
                         static_cast<double>(terminal_samples_));
  if (!finished_) {
    kernel_.schedule_after(config_.metrics_interval,
                           [this] { sample_metrics(); });
  }
}

void AtlasSimulation::worker_ready(u64 instance_id) {
  report_.peak_instances =
      std::max(report_.peak_instances, fleet_.running_count());
  // Boot-time initialization: download the index from S3 and load it into
  // shared memory (Fig 2's "initialization phase").
  index_bucket_.get("star-index-r" + std::to_string(config_.genome_release));
  const VirtualDuration init =
      config_.stages.index_init_time(config_.index_bytes, *type_);
  report_.init_hours += init.hrs();
  kernel_.schedule_after(init, [this, instance_id] { poll(instance_id); });
}

void AtlasSimulation::poll(u64 instance_id) {
  if (finished_ || !instance_alive(instance_id)) return;
  if (asg_.should_release()) {
    fleet_.terminate(instance_id);
    return;
  }
  std::optional<SqsMessage> message = queue_.receive();
  if (!message) {
    if (all_terminal()) {
      fleet_.terminate(instance_id);
      maybe_finish();
      return;
    }
    // Queue momentarily empty (work may still be in flight elsewhere, or
    // redeliveries pending): back off and poll again.
    kernel_.schedule_after(config_.poll_idle_backoff,
                           [this, instance_id] { poll(instance_id); });
    return;
  }
  process(instance_id, std::move(*message));
}

void AtlasSimulation::process(u64 instance_id, SqsMessage message) {
  auto it = samples_.find(message.body);
  STARATLAS_CHECK(it != samples_.end());
  const SampleRuntime& runtime = it->second;
  if (runtime.done) {
    // A redelivered duplicate of work that already completed elsewhere.
    queue_.delete_message(message.receipt_handle);
    poll(instance_id);
    return;
  }
  const SraSample& sample = *runtime.sample;

  const VirtualDuration prefetch =
      config_.stages.prefetch_time(sample.sra_bytes, *type_);
  const VirtualDuration dump =
      config_.stages.dump_time(sample.fastq_bytes, *type_);
  const VirtualDuration align_full = config_.stages.align_time(
      sample.fastq_bytes, config_.genome_release, *type_);

  // Early-stopping decision from the Log.progress.out-equivalent telemetry
  // at the checkpoint fraction.
  const double observed = config_.maprate.checkpoint_observation(
      runtime.true_rate, noise_rng_);
  const bool stop_early =
      early_stop_decision(config_.early_stop, observed);
  const VirtualDuration align_actual =
      stop_early ? align_full * config_.early_stop.checkpoint_fraction
                 : align_full;
  const VirtualDuration post =
      stop_early ? VirtualDuration::zero() : config_.stages.postprocess_time();

  const VirtualDuration total = prefetch + dump + align_actual + post;
  const u64 receipt = message.receipt_handle;
  const std::string accession = message.body;
  active_receipt_[instance_id] = receipt;

  kernel_.schedule_after(total, [this, instance_id, receipt, accession,
                                 prefetch, dump, align_actual, align_full,
                                 stop_early] {
    if (finished_) return;
    if (!instance_alive(instance_id)) {
      // Spot-reclaimed mid-sample: the interruption handler already
      // returned the message (or the visibility timeout will).
      return;
    }
    active_receipt_.erase(instance_id);
    SampleRuntime& rt = samples_.at(accession);
    if (rt.done) {
      // Another worker finished a redelivered copy first.
      queue_.delete_message(receipt);
      poll(instance_id);
      return;
    }
    rt.done = true;

    report_.prefetch_hours += prefetch.hrs();
    report_.dump_hours += dump.hrs();
    report_.align_hours_spent += align_actual.hrs();

    if (stop_early) {
      ++report_.samples_early_stopped;
      report_.align_hours_saved += (align_full - align_actual).hrs();
      results_bucket_.put("rejected/" + accession, ByteSize(4096));
    } else {
      const bool accepted =
          rt.true_rate >= config_.early_stop.min_mapped_rate;
      if (accepted) {
        ++report_.samples_completed;
      } else {
        // Without early stopping (or on a near-threshold miss) the full
        // alignment ran and the sample is rejected afterwards — the
        // paper's "unnecessary compute" (Fig 4, yellow).
        ++report_.samples_rejected_late;
        report_.unnecessary_align_hours += align_full.hrs();
      }
      results_bucket_.put(
          (accepted ? "counts/" : "rejected/") + accession,
          ByteSize::from_mib(2.0));
    }
    queue_.delete_message(receipt);
    ++terminal_samples_;

    if (all_terminal()) {
      fleet_.terminate(instance_id);
      maybe_finish();
      return;
    }
    poll(instance_id);
  });
}

bool AtlasSimulation::all_terminal() const {
  return terminal_samples_ + queue_.dead_letter_queue().size() >=
         catalog_.size();
}

void AtlasSimulation::maybe_finish() {
  if (finished_ || !all_terminal()) return;
  finished_ = true;
  asg_.stop();
  fleet_.terminate_all();
}

}  // namespace staratlas
