#include "core/estimate.h"

#include <algorithm>

#include "common/error.h"
#include "core/stage_graph.h"

namespace staratlas {

double campaign_init_hours(const AtlasConfig& config) {
  const InstanceType& type = instance_type(config.instance_type);
  return config.stages
      .index_init_time(config.index_bytes, type, config.index_load_path)
      .hrs();
}

CampaignEstimate estimate_campaign(const std::vector<SraSample>& catalog,
                                   const AtlasConfig& config) {
  STARATLAS_CHECK(!catalog.empty());
  const InstanceType& type = instance_type(config.instance_type);
  StageGraph graph = PipelineCatalog::instance().build(config.pipeline);
  const bool has_decision_point = graph.supports_early_stop();

  CampaignEstimate estimate;
  for (const SraSample& sample : catalog) {
    const bool stops = has_decision_point && config.early_stop.enabled &&
                       sample.type == LibraryType::kSingleCell;
    const GraphPlan plan =
        graph.plan(stage_context_for(config, sample, type), stops);
    estimate.align_hours += plan.align_actual().hrs();
    if (stops) {
      ++estimate.expected_early_stops;
      estimate.align_hours_saved +=
          (plan.align_full - plan.align_actual()).hrs();
    }
    estimate.total_work_hours += plan.total().hrs();
  }

  // Fleet-level: work spread over the ASG's maximum parallelism, plus one
  // boot + index initialization per instance.
  const double fleet = static_cast<double>(std::max<usize>(
      1, std::min(config.asg.max_size,
                  catalog.size())));
  estimate.init_hours_per_instance = campaign_init_hours(config);
  estimate.makespan_hours = estimate.total_work_hours / fleet +
                            estimate.init_hours_per_instance +
                            config.boot_delay.hrs();
  estimate.instance_hours =
      estimate.total_work_hours + fleet * estimate.init_hours_per_instance;
  // Blended purchase price over the configured spot mix (pure fleets
  // reproduce type.hourly exactly).
  const double spot_fraction = config.effective_spot_fraction();
  const double hourly = spot_fraction * type.spot_hourly +
                        (1.0 - spot_fraction) * type.on_demand_hourly;
  estimate.ec2_cost_usd = estimate.instance_hours * hourly;
  estimate.cost_per_sample_usd =
      estimate.ec2_cost_usd / static_cast<double>(catalog.size());
  return estimate;
}

}  // namespace staratlas
