#include "core/estimate.h"

#include <algorithm>

#include "common/error.h"

namespace staratlas {

CampaignEstimate estimate_campaign(const std::vector<SraSample>& catalog,
                                   const AtlasConfig& config) {
  STARATLAS_CHECK(!catalog.empty());
  const InstanceType& type = instance_type(config.instance_type);
  const StageTimeModel& stages = config.stages;

  CampaignEstimate estimate;
  for (const SraSample& sample : catalog) {
    const double prefetch =
        stages.prefetch_time(sample.sra_bytes, type).hrs();
    const double dump = stages.dump_time(sample.fastq_bytes, type).hrs();
    const double align_full =
        stages.align_time(sample.fastq_bytes, config.genome_release, type)
            .hrs();
    const bool stops = config.early_stop.enabled &&
                       sample.type == LibraryType::kSingleCell;
    const double align = stops
                             ? align_full * config.early_stop.checkpoint_fraction
                             : align_full;
    const double post = stops ? 0.0 : stages.postprocess_time().hrs();
    estimate.align_hours += align;
    if (stops) {
      ++estimate.expected_early_stops;
      estimate.align_hours_saved += align_full - align;
    }
    estimate.total_work_hours += prefetch + dump + align + post;
  }

  // Fleet-level: work spread over the ASG's maximum parallelism, plus one
  // boot + index initialization per instance.
  const double fleet = static_cast<double>(std::max<usize>(
      1, std::min(config.asg.max_size,
                  catalog.size())));
  const double init_hours =
      stages.index_init_time(config.index_bytes, type).hrs();
  estimate.makespan_hours = estimate.total_work_hours / fleet + init_hours +
                            config.boot_delay.hrs();
  estimate.instance_hours =
      estimate.total_work_hours + fleet * init_hours;
  estimate.ec2_cost_usd = estimate.instance_hours * type.hourly(config.spot);
  estimate.cost_per_sample_usd =
      estimate.ec2_cost_usd / static_cast<double>(catalog.size());
  return estimate;
}

}  // namespace staratlas
