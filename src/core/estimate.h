// Closed-form campaign estimator: predicts makespan, instance hours and
// cost of an atlas campaign from the catalog and configuration WITHOUT
// running the event simulation — the back-of-envelope a platform engineer
// does before launching (and a cross-check on the simulator: the two must
// agree when queueing effects are small).
#pragma once

#include <vector>

#include "core/atlas_sim.h"
#include "sim/catalog.h"

namespace staratlas {

struct CampaignEstimate {
  double total_work_hours = 0.0;     ///< sum of per-sample pipeline time
  double align_hours = 0.0;          ///< alignment share (after early stop)
  double align_hours_saved = 0.0;    ///< expected early-stop savings
  usize expected_early_stops = 0;
  double makespan_hours = 0.0;       ///< work / fleet + boot/init overhead
  double instance_hours = 0.0;
  double ec2_cost_usd = 0.0;
  double cost_per_sample_usd = 0.0;
};

/// Deterministic expectation (uses each sample's library type directly —
/// the estimator assumes the early-stop rule is accurate, which ABL-ES
/// justifies at the paper's design point).
CampaignEstimate estimate_campaign(const std::vector<SraSample>& catalog,
                                   const AtlasConfig& config);

}  // namespace staratlas
